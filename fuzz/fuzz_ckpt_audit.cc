/**
 * @file
 * Structure-aware fuzz target: mutate a *valid* checkpoint, repair
 * its CRCs, then restore and audit.
 *
 * The container's CRC discipline means blind byte flips almost always
 * die in CheckpointReader::fromBuffer() -- which exercises the
 * container parser but never the per-component restore logic or the
 * invariant auditor. This harness goes deeper:
 *
 *  1. a pristine checkpoint is built once, in-process, from a short
 *     warm run (so it is always format-current and its fingerprint
 *     always matches);
 *  2. the fuzz input is decoded as a list of (offset, byte) patches
 *     applied to the pristine image;
 *  3. the container is re-walked and every payload CRC plus the
 *     header CRC is recomputed -- the corruption is now *exactly what
 *     a CRC cannot catch* (a flipped bit after the checksum was
 *     taken, a logic bug in a writer);
 *  4. the result is restored into a fresh Simulator. Either the
 *     restore fails with a coded Status (Archiver bounds checks,
 *     section layout checks), or it succeeds and a short audited
 *     measurement window runs, giving every component's audit() and
 *     the cross-component conservation checks a chance to flag state
 *     the parser had no way to reject.
 *
 * A crash, sanitizer report, or panic anywhere in that pipeline is a
 * bug; audit violations are a *success* (they are the detection).
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/sim_fixture.hh"
#include "sim/api.hh"
#include "trace/workloads.hh"
#include "util/crc32.hh"
#include "util/status.hh"
#include "verify/audit.hh"

using namespace ebcp;
using ebcp_fuzz::fuzzConfig;
using ebcp_fuzz::fuzzPrefetcher;

namespace
{

/** Build the pristine warm checkpoint once per process. */
const std::string &
pristineCheckpoint()
{
    static const std::string blob = [] {
        Simulator sim(fuzzConfig(), fuzzPrefetcher());
        auto src = makeWorkload("database");
        if (!sim.runWarm(*src, ebcp_fuzz::kFixtureWarmInsts).ok())
            std::abort();
        StatusOr<std::string> b = sim.serializeCheckpoint(*src);
        if (!b.ok())
            std::abort();
        return b.take();
    }();
    return blob;
}

std::uint32_t
readU32(const std::string &b, std::size_t at)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= std::uint32_t{static_cast<unsigned char>(b[at + i])}
             << (8 * i);
    return v;
}

std::uint64_t
readU64(const std::string &b, std::size_t at)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= std::uint64_t{static_cast<unsigned char>(b[at + i])}
             << (8 * i);
    return v;
}

void
writeU32(std::string &b, std::size_t at, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        b[at + i] = static_cast<char>(v >> (8 * i));
}

/**
 * Recompute the header CRC and every section payload CRC in place,
 * walking the documented container layout. Returns false when the
 * mutated image no longer walks (structural damage) -- callers then
 * feed it through unchanged, which exercises the container parser's
 * own rejection paths instead.
 */
bool
fixCrcs(std::string &b)
{
    // magic(8) version(4) fingerprint(8) count(4) header_crc(4)
    constexpr std::size_t kHeader = 8 + 4 + 8 + 4;
    if (b.size() < kHeader + 4)
        return false;
    const std::uint32_t count = readU32(b, 8 + 4 + 8);
    writeU32(b, kHeader, crc32(b.data(), kHeader));
    std::size_t pos = kHeader + 4;
    for (std::uint32_t i = 0; i < count; ++i) {
        if (pos + 4 > b.size())
            return false;
        const std::uint32_t name_len = readU32(b, pos);
        pos += 4;
        if (name_len > b.size() - pos)
            return false;
        pos += name_len;
        if (pos + 12 > b.size())
            return false;
        const std::uint64_t payload_len = readU64(b, pos);
        pos += 8;
        if (payload_len > b.size() - pos - 4)
            return false;
        writeU32(b, pos, crc32(b.data() + pos + 4,
                               static_cast<std::size_t>(payload_len)));
        pos += 4 + static_cast<std::size_t>(payload_len);
    }
    return pos == b.size();
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    std::string blob = pristineCheckpoint();

    // Decode the input as 5-byte (u32 offset, u8 value) patches. The
    // offset wraps over the image so every corpus byte is meaningful.
    constexpr std::size_t kMaxPatches = 256;
    std::size_t patches = 0;
    for (std::size_t i = 0; i + 5 <= size && patches < kMaxPatches;
         i += 5, ++patches) {
        std::uint32_t off = 0;
        std::memcpy(&off, data + i, 4);
        blob[off % blob.size()] = static_cast<char>(data[i + 4]);
    }
    fixCrcs(blob);

    Simulator sim(fuzzConfig(), fuzzPrefetcher());
    auto src = makeWorkload("database");
    const Status s = sim.restoreCheckpoint(blob, *src);
    if (!s.ok()) {
        if (s.message().empty())
            std::abort();
        return 0;
    }

    // Restore accepted the mutated state: hunt for invariant damage
    // with a densely audited measurement window. In -DEBCP_AUDIT=OFF
    // builds configureAudit() rejects any cadence, so fall back to an
    // unaudited window (the run itself still shakes out crashes).
    AuditOptions audit;
    audit.cadence = AuditCadence::EveryN;
    audit.everyTicks = 200;
    audit.policy = AuditPolicy::Collect;
    (void)sim.configureAudit(audit);

    StatusOr<SimResults> r = sim.runMeasure(*src, 2000);
    if (!r.ok() && r.status().message().empty())
        std::abort();
    return 0;
}
