/**
 * @file
 * Fuzz target: whole-simulator checkpoint restore, in both sweep
 * policies.
 *
 * Input bytes are treated as an EBCPCKPT container and restored into
 * a freshly built Simulator whose configuration matches the corpus
 * seeds (so inputs that keep the header intact reach section parsing
 * and per-component Archiver loads, not just the fingerprint check).
 *
 *  - Strict mode contract: restoreCheckpoint() either succeeds or
 *    returns a coded Status with a diagnostic; a failed restore must
 *    not crash, leak (ASan), or read out of bounds.
 *  - Rebuild mode contract (what SweepRunner does on CkptPolicy::
 *    Rebuild): after a failed restore the same configuration must
 *    still support a cold warm-up + measurement -- i.e. a corrupt
 *    checkpoint poisons nothing beyond the Simulator instance it was
 *    restored into.
 */

#include <cstdint>
#include <cstdlib>
#include <string>

#include "fuzz/sim_fixture.hh"
#include "sim/api.hh"
#include "trace/workloads.hh"
#include "util/status.hh"

using namespace ebcp;
using ebcp_fuzz::fuzzConfig;
using ebcp_fuzz::fuzzPrefetcher;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string blob(reinterpret_cast<const char *>(data), size);

    // Strict leg: restore and, when it succeeds, prove the restored
    // state actually simulates.
    {
        Simulator sim(fuzzConfig(), fuzzPrefetcher());
        auto src = makeWorkload("database");
        const Status s = sim.restoreCheckpoint(blob, *src);
        if (s.ok()) {
            StatusOr<SimResults> r = sim.runMeasure(*src, 1000);
            if (!r.ok() && r.status().message().empty())
                std::abort();
        } else if (s.message().empty()) {
            std::abort(); // coded Status, never a bare failure
        }
    }

    // Rebuild leg: a failed restore must leave the configuration
    // perfectly usable for the cold fallback the sweep performs.
    {
        Simulator sim(fuzzConfig(), fuzzPrefetcher());
        auto src = makeWorkload("database");
        if (!sim.restoreCheckpoint(blob, *src).ok()) {
            Simulator cold(fuzzConfig(), fuzzPrefetcher());
            auto cold_src = makeWorkload("database");
            if (!cold.runWarm(*cold_src, 200).ok())
                std::abort();
            if (!cold.runMeasure(*cold_src, 200).ok())
                std::abort();
        }
    }
    return 0;
}
