/**
 * @file
 * Standalone driver for the fuzz harnesses: corpus replay plus a
 * bounded, deterministic mutation loop.
 *
 * libFuzzer needs clang; this driver needs nothing. Each fuzz target
 * is harness TU + this file, which makes the corpus a portable
 * regression suite:
 *
 *     fuzz_json corpus/json corpus/regressions/json
 *         replay every file in the listed files/directories
 *
 *     fuzz_json --smoke 2000 --seed 7 corpus/json
 *         replay, then run 2000 mutation iterations: each iteration
 *         picks a corpus input round-robin, applies 1-8 random
 *         mutations (byte flips, truncations, splices, duplications)
 *         from a SplitMix64 stream, and feeds the result to the
 *         harness. Fixed seed => bit-identical byte sequences on
 *         every run, so a smoke failure is reproducible by rerunning
 *         the same command line.
 *
 * The driver only orchestrates; crashes are detected by the process
 * dying (sanitizers abort). Exit 0 = every input survived.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

namespace
{

constexpr std::size_t kMaxInputBytes = 1 << 20;

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    std::uint8_t buf[1 << 14];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        out.insert(out.end(), buf, buf + n);
        if (out.size() > kMaxInputBytes) {
            out.resize(kMaxInputBytes);
            break;
        }
    }
    std::fclose(f);
    return true;
}

/** Collect regular files under @p path (one level; corpora are flat). */
void
collectInputs(const std::string &path, std::vector<std::string> &out)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
        std::fprintf(stderr, "fuzz: cannot stat '%s'\n", path.c_str());
        std::exit(2);
    }
    if (S_ISREG(st.st_mode)) {
        out.push_back(path);
        return;
    }
    if (!S_ISDIR(st.st_mode))
        return;
    DIR *d = ::opendir(path.c_str());
    if (!d)
        return;
    std::vector<std::string> entries;
    while (dirent *e = ::readdir(d)) {
        if (e->d_name[0] == '.')
            continue;
        std::string child = path + "/" + e->d_name;
        struct stat cst{};
        if (::stat(child.c_str(), &cst) == 0 && S_ISREG(cst.st_mode))
            entries.push_back(std::move(child));
    }
    ::closedir(d);
    // Deterministic replay order regardless of directory layout.
    std::sort(entries.begin(), entries.end());
    out.insert(out.end(), entries.begin(), entries.end());
}

void
mutate(std::vector<std::uint8_t> &buf, std::uint64_t &rng)
{
    const unsigned rounds = 1 + splitmix64(rng) % 8;
    for (unsigned i = 0; i < rounds; ++i) {
        const std::uint64_t op = splitmix64(rng) % 6;
        const std::size_t n = buf.size();
        switch (op) {
        case 0: // flip one byte
            if (n)
                buf[splitmix64(rng) % n] ^=
                    static_cast<std::uint8_t>(1 + splitmix64(rng) % 255);
            break;
        case 1: // overwrite a byte with an interesting value
            if (n) {
                static const std::uint8_t magic[] = {0x00, 0x01, 0x7f,
                                                     0x80, 0xff, 0xfe};
                buf[splitmix64(rng) % n] =
                    magic[splitmix64(rng) % sizeof magic];
            }
            break;
        case 2: // truncate
            if (n)
                buf.resize(splitmix64(rng) % n);
            break;
        case 3: { // insert a short random run
            const std::size_t pos = n ? splitmix64(rng) % (n + 1) : 0;
            const std::size_t len = 1 + splitmix64(rng) % 8;
            std::vector<std::uint8_t> run(len);
            for (auto &b : run)
                b = static_cast<std::uint8_t>(splitmix64(rng));
            if (buf.size() + len <= kMaxInputBytes)
                buf.insert(buf.begin() + pos, run.begin(), run.end());
            break;
        }
        case 4: { // duplicate a span (CRC-fooling repetition)
            if (n < 2)
                break;
            const std::size_t len =
                1 + splitmix64(rng) % std::min<std::size_t>(n, 64);
            const std::size_t from = splitmix64(rng) % (n - len + 1);
            const std::size_t to = splitmix64(rng) % (n + 1);
            if (buf.size() + len > kMaxInputBytes)
                break;
            std::vector<std::uint8_t> span(buf.begin() + from,
                                           buf.begin() + from + len);
            buf.insert(buf.begin() + to, span.begin(), span.end());
            break;
        }
        default: { // erase a span
            if (!n)
                break;
            const std::size_t len =
                1 + splitmix64(rng) % std::min<std::size_t>(n, 64);
            const std::size_t from = splitmix64(rng) % n;
            const std::size_t end = std::min(n, from + len);
            buf.erase(buf.begin() + from, buf.begin() + end);
            break;
        }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t smoke = 0;
    std::uint64_t seed = 0x243f6a8885a308d3ULL; // pi digits; arbitrary
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0 && i + 1 < argc) {
            smoke = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::fprintf(stderr,
                         "usage: %s [--smoke N] [--seed S] "
                         "corpus-file-or-dir...\n", argv[0]);
            return 2;
        } else {
            paths.push_back(argv[i]);
        }
    }

    std::vector<std::string> files;
    for (const std::string &p : paths)
        collectInputs(p, files);

    // The empty input is always part of the corpus: parsers meet
    // zero-length files in the wild and harnesses must survive them.
    LLVMFuzzerTestOneInput(nullptr, 0);

    std::vector<std::vector<std::uint8_t>> corpus;
    for (const std::string &f : files) {
        std::vector<std::uint8_t> bytes;
        if (!readFile(f, bytes)) {
            std::fprintf(stderr, "fuzz: cannot read '%s'\n", f.c_str());
            return 2;
        }
        LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
        corpus.push_back(std::move(bytes));
    }

    std::uint64_t rng = seed;
    for (std::uint64_t i = 0; i < smoke; ++i) {
        std::vector<std::uint8_t> buf =
            corpus.empty() ? std::vector<std::uint8_t>{}
                           : corpus[i % corpus.size()];
        mutate(buf, rng);
        LLVMFuzzerTestOneInput(buf.data(), buf.size());
    }

    std::printf("fuzz: %zu corpus inputs + empty input replayed"
                "%s%llu mutation iterations: clean\n",
                corpus.size(), smoke ? ", " : ", ",
                static_cast<unsigned long long>(smoke));
    return 0;
}
