/**
 * @file
 * Fuzz target: the JSON parser behind every machine-readable artifact
 * (ebcp-stats-v1 reports, telemetry validation, bench reports).
 *
 * parseJson() must return either a value tree or a coded Corruption
 * status for arbitrary bytes -- never crash, never recurse off the
 * stack (the parser bounds nesting), never leave the tree in a state
 * that faults on traversal. On success the harness walks the whole
 * tree, so a dangling container would be caught under ASan.
 */

#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "util/json.hh"
#include "util/status.hh"

using namespace ebcp;

namespace
{

std::uint64_t
walk(const JsonValue &v, std::uint64_t budget)
{
    if (budget == 0)
        return 0;
    --budget;
    switch (v.type) {
    case JsonValue::Type::Array:
        for (const JsonValue &e : v.array)
            budget = walk(e, budget);
        break;
    case JsonValue::Type::Object:
        for (const auto &[k, e] : v.object) {
            (void)k;
            budget = walk(e, budget);
        }
        break;
    default:
        // Touch the scalar payloads so ASan sees every byte.
        if (v.isString() && !v.string.empty() &&
            v.string.front() == '\0' && v.string.back() == '\0')
            return budget; // contents are legal; just read them
        break;
    }
    return budget;
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string_view text(reinterpret_cast<const char *>(data),
                                size);
    StatusOr<JsonValue> parsed = parseJson(text);
    if (parsed.ok()) {
        walk(parsed.value(), 1 << 20);
    } else if (parsed.status().message().empty()) {
        std::abort(); // rejections must carry a diagnostic
    }
    return 0;
}
