/**
 * @file
 * Seed-corpus generator for the binary fuzz targets.
 *
 *     fuzz_make_seeds <corpus-root>
 *
 * writes fresh seeds into <corpus-root>/{trace_reader,ckpt_restore,
 * ckpt_audit}/. The JSON and config corpora are plain text and live
 * directly in git; the binary seeds are generated from the live
 * writers so they track the current formats (and the checkpoint
 * seeds track the current config fingerprint -- see
 * fuzz/sim_fixture.hh). The checked-in copies under fuzz/corpus/ are
 * what ctest replays; rerun this tool and re-commit whenever a format
 * or the fixture configuration changes.
 *
 * Seeds deliberately include near-valid corruption (a flipped payload
 * byte, a truncated tail) so even a mutation-free replay exercises
 * the rejection paths, and so the smoke mutator starts from inputs on
 * both sides of every validity boundary.
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <sys/stat.h>

#include "ckpt/checkpoint.hh"
#include "fuzz/sim_fixture.hh"
#include "sim/api.hh"
#include "trace/trace_file.hh"
#include "trace/workloads.hh"
#include "util/status.hh"

using namespace ebcp;

namespace
{

void
writeFileOrDie(const std::string &path, const std::string &data)
{
    const Status s = ckpt::atomicWriteFile(path, data);
    if (!s.ok()) {
        std::fprintf(stderr, "fuzz_make_seeds: %s\n",
                     s.toString().c_str());
        std::exit(1);
    }
    std::printf("  %s (%zu bytes)\n", path.c_str(), data.size());
}

std::string
slurpOrDie(const std::string &path)
{
    StatusOr<std::string> data = ckpt::readFile(path);
    if (!data.ok()) {
        std::fprintf(stderr, "fuzz_make_seeds: %s\n",
                     data.status().toString().c_str());
        std::exit(1);
    }
    return data.take();
}

void
makeTraceSeeds(const std::string &dir)
{
    // A small but multi-chunk v2 capture of the paper's database
    // workload: 3 full chunks of 16 records plus a partial tail.
    const std::string valid = dir + "/valid_v2.bin";
    {
        StatusOr<std::unique_ptr<TraceFileWriter>> w =
            TraceFileWriter::open(valid, /*chunk_records=*/16);
        if (!w.ok())
            std::exit(1);
        auto src = makeWorkload("database");
        if (!w.value()->capture(*src, 56).ok() ||
            !w.value()->close().ok())
            std::exit(1);
        std::printf("  %s\n", valid.c_str());
    }
    std::string bytes = slurpOrDie(valid);

    // One flipped byte inside the first chunk payload: CRC mismatch.
    std::string flipped = bytes;
    if (flipped.size() > 40)
        flipped[40] = static_cast<char>(flipped[40] ^ 0x20);
    writeFileOrDie(dir + "/bitflip_chunk.bin", flipped);

    // Truncated mid-chunk: the incomplete-tail path.
    writeFileOrDie(dir + "/truncated.bin",
                   bytes.substr(0, bytes.size() * 2 / 3));

    // A v1 header with a short raw-record tail: the no-integrity
    // legacy path plus truncated-record handling.
    std::string v1("EBCPTRC1", 8);
    const std::uint32_t version = 1;
    // Match the v2 header's record size so the tail parses as a
    // truncated record rather than random garbage.
    const std::uint32_t rec_size =
        bytes.size() > 15
            ? (static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[12])) |
               static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[13])) << 8 |
               static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[14])) << 16 |
               static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[15])) << 24)
            : 32;
    for (unsigned i = 0; i < 4; ++i)
        v1.push_back(static_cast<char>(version >> (8 * i)));
    for (unsigned i = 0; i < 4; ++i)
        v1.push_back(static_cast<char>(rec_size >> (8 * i)));
    for (unsigned i = 0; i < rec_size + rec_size / 2; ++i)
        v1.push_back(static_cast<char>(i * 7));
    writeFileOrDie(dir + "/valid_v1_truncated_tail.bin", v1);
}

void
makeCkptSeeds(const std::string &restore_dir,
              const std::string &audit_dir)
{
    Simulator sim(ebcp_fuzz::fuzzConfig(), ebcp_fuzz::fuzzPrefetcher());
    auto src = makeWorkload("database");
    if (!sim.runWarm(*src, ebcp_fuzz::kFixtureWarmInsts).ok())
        std::exit(1);
    StatusOr<std::string> blob = sim.serializeCheckpoint(*src);
    if (!blob.ok())
        std::exit(1);
    const std::string &bytes = blob.value();

    writeFileOrDie(restore_dir + "/pristine.ckpt", bytes);
    writeFileOrDie(restore_dir + "/truncated.ckpt",
                   bytes.substr(0, bytes.size() / 2));
    std::string flipped = bytes;
    if (flipped.size() > 64)
        flipped[64] = static_cast<char>(flipped[64] ^ 0x01);
    writeFileOrDie(restore_dir + "/bitflip.ckpt", flipped);

    // ckpt_audit seeds are patch scripts (u32 offset, u8 value)*,
    // not checkpoints: a couple of single-byte pokes into the body,
    // and a burst of pokes across the image.
    auto patch = [](std::uint32_t off, std::uint8_t val) {
        std::string p;
        for (unsigned i = 0; i < 4; ++i)
            p.push_back(static_cast<char>(off >> (8 * i)));
        p.push_back(static_cast<char>(val));
        return p;
    };
    writeFileOrDie(audit_dir + "/poke_one.bin", patch(200, 0xff));
    std::string burst;
    for (std::uint32_t i = 0; i < 32; ++i)
        burst += patch(97 * (i + 1), static_cast<std::uint8_t>(i * 11));
    writeFileOrDie(audit_dir + "/poke_burst.bin", burst);
}

void
mkdirOrDie(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
        std::fprintf(stderr, "fuzz_make_seeds: cannot mkdir %s\n",
                     dir.c_str());
        std::exit(1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
        return 2;
    }
    const std::string root = argv[1];
    mkdirOrDie(root);
    for (const char *sub : {"trace_reader", "ckpt_restore",
                            "ckpt_audit"})
        mkdirOrDie(root + "/" + sub);

    std::printf("trace seeds:\n");
    makeTraceSeeds(root + "/trace_reader");
    std::printf("checkpoint seeds:\n");
    makeCkptSeeds(root + "/ckpt_restore", root + "/ckpt_audit");
    return 0;
}
