/**
 * @file
 * Fuzz target: the key=value configuration parser and the
 * unknown-key checker (the typo-suggestion path) that every bench and
 * example CLI funnels its argv through.
 *
 * Input bytes are split on newlines into argv-style tokens (embedded
 * NULs are legal in fuzz input but not in argv, so they terminate the
 * token early, exactly as execve would). parseArgs() must either
 * yield a store or a coded InvalidArgument; on success the typed
 * accessors and checkKnownKeys() -- whose nearest-key suggestion does
 * edit-distance work over attacker-controlled strings -- must run
 * without a crash.
 */

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/config.hh"
#include "util/status.hh"

using namespace ebcp;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    constexpr std::size_t kMaxTokens = 64;
    constexpr std::size_t kMaxTokenBytes = 512;

    std::vector<std::string> tokens;
    tokens.emplace_back("fuzz_config"); // argv[0], skipped by parseArgs
    std::string cur;
    for (std::size_t i = 0; i < size && tokens.size() < kMaxTokens;
         ++i) {
        const char c = static_cast<char>(data[i]);
        if (c == '\n') {
            tokens.push_back(cur);
            cur.clear();
        } else if (cur.size() < kMaxTokenBytes) {
            cur.push_back(c);
        }
    }
    if (!cur.empty() && tokens.size() < kMaxTokens)
        tokens.push_back(cur);

    std::vector<char *> argv;
    argv.reserve(tokens.size());
    for (std::string &t : tokens)
        argv.push_back(t.data());

    StatusOr<ConfigStore> cs =
        ConfigStore::parseArgs(static_cast<int>(argv.size()),
                               argv.data());
    if (!cs.ok()) {
        if (cs.status().message().empty())
            std::abort(); // rejections must carry a diagnostic
        return 0;
    }

    const ConfigStore &store = cs.value();
    // Unknown-key checking: the suggestion machinery runs over every
    // fuzzed key against a realistic known-key list.
    (void)store.checkKnownKeys({"workload", "prefetcher", "warm",
                                "measure", "degree", "jobs", "seed",
                                "trace_policy", "ckpt_policy",
                                "table_entries", "watchdog"});
    // Typed accessors: malformed values must come back as Status, and
    // present-but-valid values must parse without crashing.
    (void)store.tryGetU64("warm", 0);
    (void)store.tryGetU64("measure", 0);
    (void)store.tryGetDouble("degree", 0.0);
    (void)store.tryGetBool("dump_stats", false);
    (void)store.tryGetString("workload", "");
    return 0;
}
