/**
 * @file
 * Shared plumbing for the fuzz harnesses.
 *
 * Every harness exports the libFuzzer entry point
 * `LLVMFuzzerTestOneInput(data, size)`. Under a libFuzzer-capable
 * toolchain (clang, -DEBCP_FUZZ=ON) the target links
 * `-fsanitize=fuzzer` and libFuzzer drives it; everywhere else the
 * same translation unit links fuzz/driver_main.cc, which replays
 * corpus files and runs a bounded deterministic mutation loop -- so
 * plain ctest replays every corpus input on any compiler, and the
 * fuzz-smoke stage of scripts/check.sh works under GCC+ASan/UBSan.
 *
 * Harness ground rules (what "no bug" means):
 *  - arbitrary input bytes may produce a coded Status, never a crash,
 *    sanitizer report, uncontrolled allocation, or hang;
 *  - a harness must bound any simulation it runs (instruction caps,
 *    loop=false trace sources) so wall-clock stays fuzzing-friendly.
 */

#ifndef EBCP_FUZZ_FUZZ_COMMON_HH
#define EBCP_FUZZ_FUZZ_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

namespace ebcp_fuzz
{

/**
 * Write @p data to a stable per-process scratch path and return the
 * path; harnesses for file-based parsers (the trace reader) feed each
 * input through it. The file is truncated and rewritten per call.
 */
inline std::string
writeScratchFile(const std::uint8_t *data, std::size_t size,
                 const char *tag)
{
    static std::string dir = [] {
        const char *t = std::getenv("TMPDIR");
        return std::string(t && *t ? t : "/tmp");
    }();
    std::string path = dir + "/ebcp_fuzz_" + tag + "_" +
                       std::to_string(static_cast<unsigned long>(
                           ::getpid())) + ".bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::perror("fuzz: cannot open scratch file");
        std::abort();
    }
    if (size != 0 && std::fwrite(data, 1, size, f) != size) {
        std::perror("fuzz: cannot write scratch file");
        std::abort();
    }
    std::fclose(f);
    return path;
}

} // namespace ebcp_fuzz

#endif // EBCP_FUZZ_FUZZ_COMMON_HH
