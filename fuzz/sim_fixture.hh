/**
 * @file
 * The one simulator configuration shared by the checkpoint fuzz
 * harnesses and fuzz_make_seeds.
 *
 * Checkpoints embed a fingerprint of (SimConfig, PrefetcherParams,
 * cores) and restore refuses a mismatch, so the harnesses and the
 * seed generator must agree bit-for-bit on this configuration or the
 * corpus would never get past the header check. Change it here and
 * regenerate the seeds (fuzz_make_seeds <corpus-dir>); stale seeds
 * are not an error -- they degrade into fingerprint-rejection
 * exercises -- but they stop covering the deep restore paths.
 */

#ifndef EBCP_FUZZ_SIM_FIXTURE_HH
#define EBCP_FUZZ_SIM_FIXTURE_HH

#include <cstdint>

#include "sim/api.hh"

namespace ebcp_fuzz
{

inline ebcp::SimConfig
fuzzConfig()
{
    ebcp::SimConfig cfg;
    // Mutated state must not be able to hang a harness: the forward-
    // progress watchdog converts a livelock into a coded Stalled
    // status, which is a legal (and interesting) outcome.
    cfg.watchdogTicks = 2'000'000;
    return cfg;
}

inline ebcp::PrefetcherParams
fuzzPrefetcher()
{
    ebcp::PrefetcherParams pf;
    pf.name = "ebcp";
    return pf;
}

/** Warm-up window used for the pristine seed/fixture checkpoint. */
constexpr std::uint64_t kFixtureWarmInsts = 20'000;

} // namespace ebcp_fuzz

#endif // EBCP_FUZZ_SIM_FIXTURE_HH
