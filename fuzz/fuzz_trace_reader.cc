/**
 * @file
 * Fuzz target: the trace v1/v2 file reader under all three read
 * policies.
 *
 * Input bytes become a trace file on disk; the harness opens it with
 * FileTraceSource under Strict, SkipCorrupt and StopAtCorrupt and
 * drains it with a hard record cap (loop=false, so a "valid" fuzzed
 * file terminates). Any outcome is acceptable except a crash,
 * sanitizer report or unbounded read: open() may fail with a coded
 * Status, next() may stop early, status() may turn non-ok -- but a
 * Strict source that reports corruption must never keep delivering
 * records, and the corruption counters must stay consistent with the
 * policy (SkipCorrupt is the only policy allowed to skip past a bad
 * chunk).
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "cpu/trace.hh"
#include "fuzz/fuzz_common.hh"
#include "trace/trace_file.hh"
#include "util/status.hh"

using namespace ebcp;

namespace
{

constexpr std::uint64_t kMaxRecords = 1 << 17;

void
drainUnderPolicy(const std::string &path, TraceReadPolicy policy)
{
    StatusOr<std::unique_ptr<FileTraceSource>> src =
        FileTraceSource::open(path, /*loop=*/false, policy);
    if (!src.ok()) {
        // Rejected at open: the status must be coded, with a message.
        if (src.status().ok() || src.status().message().empty())
            std::abort();
        return;
    }
    FileTraceSource &s = *src.value();
    TraceRecord rec{};
    std::uint64_t n = 0;
    while (n < kMaxRecords && s.next(rec))
        ++n;
    if (n >= kMaxRecords)
        std::abort(); // a non-looping fuzzed file must terminate
    // Strict: after a corruption status, the stream must have ended.
    if (policy == TraceReadPolicy::Strict && !s.status().ok()) {
        if (s.next(rec))
            std::abort();
    }
    // Only SkipCorrupt may both observe corrupt chunks and keep
    // counting skipped records.
    if (policy != TraceReadPolicy::SkipCorrupt &&
        s.recordsSkipped() != 0)
        std::abort();
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string path =
        ebcp_fuzz::writeScratchFile(data, size, "trace");
    drainUnderPolicy(path, TraceReadPolicy::Strict);
    drainUnderPolicy(path, TraceReadPolicy::SkipCorrupt);
    drainUnderPolicy(path, TraceReadPolicy::StopAtCorrupt);
    std::remove(path.c_str());
    return 0;
}
