/**
 * @file
 * Demonstrates the epoch MLP model of Section 2.1: measures CPI_perf
 * with a perfect L2, measures EPI on the real hierarchy, solves for
 * the Overlap term, and shows that the analytical decomposition
 *
 *   CPI_overall = CPI_perf (1 - Overlap) + EPI * MissPenalty
 *
 * predicts the measured CPI -- and that reducing EPI (by enabling the
 * prefetcher) moves CPI along the model's line.
 *
 * Usage:
 *   epoch_model_demo [workload=database] [warm=2000000]
 *                    [measure=4000000]
 */

#include <iostream>

#include "epoch/mlp_model.hh"
#include "sim/api.hh"
#include "stats/table.hh"
#include "trace/workloads.hh"
#include "util/config.hh"

using namespace ebcp;

int
main(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    const std::string workload = cs.getString("workload", "database");
    const std::uint64_t warm = cs.getU64("warm", 2'000'000);
    const std::uint64_t measure = cs.getU64("measure", 4'000'000);
    const double penalty = static_cast<double>(MemConfig{}.latency);

    PrefetcherParams none;
    none.name = "null";

    // 1. CPI_perf: the furthest on-chip cache never misses.
    SimConfig perf_cfg;
    perf_cfg.perfectL2 = true;
    auto s1 = makeWorkload(workload);
    SimResults perf = runOnce(perf_cfg, none, *s1, warm, measure);

    // 2. The real baseline.
    SimConfig cfg;
    auto s2 = makeWorkload(workload);
    SimResults base = runOnce(cfg, none, *s2, warm, measure);

    // 3. Solve the model for Overlap.
    EpochModel m;
    m.cpiPerf = perf.cpi;
    m.epi = base.epochsPer1k / 1000.0;
    m.missPenalty = penalty;
    m.overlap = solveOverlap(base.cpi, perf.cpi, m.epi, penalty);

    std::cout << "Epoch MLP model on '" << workload << "'\n\n"
              << "  CPI_perf (perfect L2) = " << perf.cpi << "\n"
              << "  measured CPI_overall  = " << base.cpi << "\n"
              << "  measured EPI          = " << m.epi << " ("
              << base.epochsPer1k << " epochs/1000 insts)\n"
              << "  miss penalty          = " << penalty << " cycles\n"
              << "  solved Overlap        = " << m.overlap << "\n\n"
              << "  model reconstruction: CPI = " << perf.cpi << " * (1 - "
              << m.overlap << ") + " << m.epi << " * " << penalty
              << " = " << m.cpiOverall() << "\n";

    // 4. Enable the prefetcher: the measured point should land near
    //    the model's prediction for the measured EPI reduction.
    PrefetcherParams pf;
    pf.name = "ebcp";
    auto s3 = makeWorkload(workload);
    SimResults with_pf = runOnce(cfg, pf, *s3, warm, measure);

    const double epi_cut =
        1.0 - with_pf.epochsPer1k / base.epochsPer1k;
    const double predicted = predictCpiAfterEpochReduction(m, epi_cut);

    AsciiTable t("EPI reduction vs CPI (the paper's linearity argument)");
    t.setHeader({"", "EPI/1000", "CPI measured", "CPI model"});
    t.addRow("no prefetch",
             {base.epochsPer1k, base.cpi, m.cpiOverall()});
    t.addRow("ebcp", {with_pf.epochsPer1k, with_pf.cpi, predicted});
    t.print(std::cout);

    std::cout << "\nEPI reduction " << epi_cut * 100.0
              << "% -> model predicts CPI " << predicted
              << ", measured " << with_pf.cpi
              << " (the residual is the latency of late prefetches,"
                 " which shorten\n epochs without eliminating them)\n";
    return 0;
}
