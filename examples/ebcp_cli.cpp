/**
 * @file
 * The full-configuration command-line driver: every knob of the
 * simulator and of the prefetchers, exposed as key=value arguments.
 *
 * Usage examples:
 * *   ebcp_cli workload=database prefetcher=ebcp degree=8 \
 *            table_entries=1048576 warm=4000000 measure=8000000
 *   ebcp_cli trace=/tmp/db.trc prefetcher=solihin-6-1
 *   ebcp_cli workload=specjbb cores=4 prefetcher=ebcp per_core=1
 *   ebcp_cli workload=tpcw prefetcher=ghb-large dump_stats=1
 *
 * Run with help=1 for the full knob list.
 */

#include <iostream>

#include "sim/cmp_system.hh"
#include "sim/simulator.hh"
#include "trace/trace_file.hh"
#include "trace/workloads.hh"
#include "util/config.hh"

using namespace ebcp;

namespace
{

void
printHelp()
{
    std::cout <<
        "ebcp_cli key=value ...\n"
        "\n"
        "run control:\n"
        "  workload=database|tpcw|specjbb|specjas   synthetic workload\n"
        "  trace=PATH          replay a trace file instead\n"
        "  seed=N              workload seed override\n"
        "  warm=N measure=N    window sizes (insts)\n"
        "  cores=N             CMP mode with N cores (workloads only)\n"
        "  dump_stats=0|1      dump every statistic after the run\n"
        "\n"
        "prefetcher:\n"
        "  prefetcher=null|ebcp|ebcp-minus|stream|ghb[-small|-large]|\n"
        "             tcp[-small|-large]|sms|solihin[-3-2|-6-1]\n"
        "  degree=N            EBCP prefetch degree / entry slots\n"
        "  table_entries=N     EBCP/Solihin table entries (pow2)\n"
        "  train_all=0|1       EBCP: key every oldest-epoch miss\n"
        "  on_chip_table=0|1   EBCP: idealized zero-cost table\n"
        "  per_core=0|1        EBCP: per-core EMABs in CMP mode\n"
        "\n"
        "machine:\n"
        "  l2_kb=N             L2 size in KB (default 2048)\n"
        "  pf_buffer=N         prefetch buffer entries (default 64)\n"
        "  bw_scale=F          memory bandwidth scale (default 1.0)\n"
        "  mem_latency=N       unloaded memory latency (default 500)\n"
        "  rob=N               reorder buffer entries (default 128)\n"
        "  perfect_l2=0|1      CPI_perf mode\n";
}

} // namespace

int
main(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    if (cs.getBool("help", false)) {
        printHelp();
        return 0;
    }

    SimConfig cfg;
    cfg.l2.sizeBytes = cs.getU64("l2_kb", 2048) * KiB;
    cfg.prefetchBufferEntries =
        static_cast<unsigned>(cs.getU64("pf_buffer", 64));
    cfg.mem.latency = cs.getU64("mem_latency", 500);
    cfg.mem.scaleBandwidth(cs.getDouble("bw_scale", 1.0));
    cfg.core.robEntries = static_cast<unsigned>(cs.getU64("rob", 128));
    cfg.perfectL2 = cs.getBool("perfect_l2", false);

    const unsigned cores =
        static_cast<unsigned>(cs.getU64("cores", 1));

    PrefetcherParams pf;
    pf.name = cs.getString("prefetcher", "ebcp");
    pf.ebcp.prefetchDegree =
        static_cast<unsigned>(cs.getU64("degree", 8));
    pf.ebcp.tableEntries = cs.getU64("table_entries", 1ULL << 20);
    pf.solihin.tableEntries = pf.ebcp.tableEntries;
    pf.ebcp.trainAllOldestMisses = cs.getBool("train_all", false);
    pf.ebcp.onChipTable = cs.getBool("on_chip_table", false);
    if (cs.getBool("per_core", true))
        pf.ebcp.numCoreStates = cores;

    const std::uint64_t warm = cs.getU64("warm", 2'000'000);
    const std::uint64_t measure = cs.getU64("measure", 4'000'000);

    if (cores > 1) {
        fatal_if(cs.has("trace"), "CMP mode replays workloads only");
        const std::string workload =
            cs.getString("workload", "database");
        CmpResults r = runCmp(cfg, pf, workload, cores, warm, measure);
        std::cout << cores << "-core '" << workload << "' with "
                  << pf.name << ":\n  aggregate CPI "
                  << r.aggregateCpi << ", coverage "
                  << r.coverage * 100.0 << "%, accuracy "
                  << r.accuracy * 100.0 << "%\n";
        for (unsigned i = 0; i < cores; ++i)
            std::cout << "  core " << i << ": CPI "
                      << r.perCore[i].cpi << "\n";
        return 0;
    }

    std::unique_ptr<TraceSource> src;
    std::string source_name;
    if (cs.has("trace")) {
        source_name = cs.getString("trace", "");
        src = std::make_unique<FileTraceSource>(source_name, true);
    } else {
        source_name = cs.getString("workload", "database");
        src = makeWorkload(source_name, cs.getU64("seed", 0));
    }

    Simulator sim(cfg, pf);
    SimResults r = sim.run(*src, warm, measure);

    std::cout << "'" << source_name << "' with " << pf.name << ":\n"
              << "  CPI " << r.cpi << "\n"
              << "  epochs/1000 insts " << r.epochsPer1k << "\n"
              << "  L2 miss/1000: inst " << r.l2InstMissPer1k
              << ", load " << r.l2LoadMissPer1k << "\n"
              << "  coverage " << r.coverage * 100.0 << "%, accuracy "
              << r.accuracy * 100.0 << "%\n"
              << "  prefetches: issued " << r.issuedPrefetches
              << ", useful " << r.usefulPrefetches << ", dropped "
              << r.droppedPrefetches << "\n"
              << "  bus utilization: read " << r.readBusUtil * 100.0
              << "%, write " << r.writeBusUtil * 100.0 << "%\n";

    if (cs.getBool("dump_stats", false))
        sim.dumpStats(std::cout);
    return 0;
}
