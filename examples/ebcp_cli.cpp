/**
 * @file
 * The full-configuration command-line driver: every knob of the
 * simulator and of the prefetchers, exposed as key=value arguments.
 *
 * Usage examples:
 *   ebcp_cli workload=database prefetcher=ebcp degree=8 \
 *            table_entries=1048576 warm=4000000 measure=8000000
 *   ebcp_cli trace=/tmp/db.trc prefetcher=solihin-6-1
 *   ebcp_cli workload=specjbb cores=4 prefetcher=ebcp per_core=1
 *   ebcp_cli workload=tpcw prefetcher=ghb-large dump_stats=1
 *
 * Observability:
 *   ebcp_cli workload=database trace_out=db.trace.json \
 *            stats_json=stats.json interval=500000
 *
 * Robustness knobs:
 *   ebcp_cli workload=database faults=trace-bitflip,table-drop \
 *            fault_rate=1e-3 trace_policy=skip-corrupt dump_stats=1
 *   ebcp_cli workload=database faults=demand-stall stall_after=100000 \
 *            watchdog=1000000
 *
 * Unknown keys are rejected with a nearest-key suggestion; a typo
 * must not silently run the defaults. Run with help=1 for the list.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "ckpt/checkpoint.hh"
#include "harness/telemetry.hh"
#include "sim/api.hh"
#include "harness/stats_json.hh"
#include "stats/interval.hh"
#include "trace/fault_injection.hh"
#include "trace/trace_file.hh"
#include "trace/workloads.hh"
#include "util/config.hh"
#include "util/event_trace.hh"
#include "util/logging.hh"
#include "util/profiler.hh"

using namespace ebcp;

namespace
{

std::string
prefetcherHelpLine()
{
    // Generated from the factory registry so the help text can never
    // drift from what createPrefetcher actually accepts.
    std::string line = "  prefetcher=";
    std::size_t col = line.size();
    bool first = true;
    for (const std::string &n : prefetcherNames()) {
        const std::string sep = first ? "" : "|";
        if (col + sep.size() + n.size() > 70) {
            line += sep + "\n             ";
            col = 13;
            line += n;
        } else {
            line += sep + n;
            col += sep.size() + n.size();
        }
        first = false;
    }
    return line + "\n";
}

void
printHelp()
{
    std::cout <<
        "ebcp_cli key=value ...\n"
        "\n"
        "run control:\n"
        "  workload=database|tpcw|specjbb|specjas   synthetic workload\n"
        "  trace=PATH          replay a trace file instead\n"
        "  seed=N              workload seed override\n"
        "  warm=N measure=N    window sizes (insts)\n"
        "  cores=N             CMP mode with N cores (workloads only)\n"
        "  dump_stats=0|1      dump every statistic after the run\n"
        "\n"
        "prefetcher:\n"
        << prefetcherHelpLine() <<
        "  degree=N            prefetch degree (EBCP/DCPT/AMC)\n"
        "  table_entries=N     EBCP/Solihin table entries (pow2)\n"
        "  train_all=0|1       EBCP: key every oldest-epoch miss\n"
        "  on_chip_table=0|1   EBCP: idealized zero-cost table\n"
        "  per_core=0|1        EBCP: per-core EMABs in CMP mode\n"
        "  composite_engines=A,B,...\n"
        "                      composite: child engines, by factory\n"
        "                      name (default stream,dcpt,amc,ebcp)\n"
        "  calib_interval=N    composite: L2 accesses per controller\n"
        "                      calibration interval (default 8192)\n"
        "\n"
        "machine:\n"
        "  l2_kb=N             L2 size in KB (default 2048)\n"
        "  pf_buffer=N         prefetch buffer entries (default 64)\n"
        "  bw_scale=F          memory bandwidth scale (default 1.0)\n"
        "  mem_latency=N       unloaded memory latency (default 500)\n"
        "  rob=N               reorder buffer entries (default 128)\n"
        "  perfect_l2=0|1      CPI_perf mode\n"
        "\n"
        "robustness:\n"
        "  faults=LIST         comma-separated fault kinds to inject:\n"
        "                      trace-bitflip|trace-truncate|\n"
        "                      trace-shortread|table-drop|table-delay|\n"
        "                      demand-stall\n"
        "  fault_seed=N        fault-injection seed (default 1)\n"
        "  fault_rate=F        per-opportunity fault probability\n"
        "                      (default 1e-3)\n"
        "  stall_after=N       demand accesses before demand-stall\n"
        "  trace_policy=strict|skip-corrupt|stop-at-corrupt\n"
        "                      reaction to corrupt trace chunks\n"
        "  watchdog=N          max ticks between retirements before the\n"
        "                      run is declared stalled (0 = off)\n"
        "  audit=off|retire|epoch|every:N\n"
        "                      invariant-audit cadence: re-derive every\n"
        "                      component's structural invariants after\n"
        "                      each retire, each epoch boundary, or\n"
        "                      every N ticks (default off)\n"
        "  audit_policy=collect|abort\n"
        "                      on a violation: keep running and report,\n"
        "                      or stop the run with an error\n"
        "\n"
        "checkpointing (single-core):\n"
        "  save_ckpt=PATH      snapshot the warmed state to PATH\n"
        "                      (written atomically) before measuring\n"
        "  restore_ckpt=PATH   restore warm state from PATH instead of\n"
        "                      running the warm-up window\n"
        "  ckpt_policy=strict|rebuild\n"
        "                      on a corrupt / mismatched checkpoint:\n"
        "                      fail with a coded error, or warn and\n"
        "                      fall back to a cold warm-up\n"
        "\n"
        "observability:\n"
        "  trace_out=PATH      export the lifecycle timeline as Chrome\n"
        "                      trace_event JSON (Perfetto-loadable)\n"
        "  stats_json=PATH     structured report in the ebcp-stats-v1\n"
        "                      schema (results + full statistic tree;\n"
        "                      watchdog diagnostics on stalls)\n"
        "  interval=N          snapshot statistics every N measured\n"
        "                      insts; the series lands in stats_json's\n"
        "                      \"intervals\" member (single-core only).\n"
        "                      With trace_out= it also drives counter\n"
        "                      tracks (MSHR / prefetch-buffer / table\n"
        "                      occupancy, per-source accuracy)\n"
        "  profile=0|1         hierarchical self-profiler (default 1);\n"
        "                      the phase tree lands in stats_json's\n"
        "                      \"profile\" member and as flame spans in\n"
        "                      trace_out\n"
        "  telemetry_out=PATH  stream run progress as CRC-tagged JSON\n"
        "                      lines (the sweep engine's telemetry\n"
        "                      record contract, with this run as a\n"
        "                      one-descriptor sweep)\n"
        "  metrics_out=PATH    Prometheus-style text metrics snapshot,\n"
        "                      atomically rewritten at completion\n";
}

const std::vector<std::string> &
knownKeys()
{
    static const std::vector<std::string> keys = {
        "help",        "workload",    "trace",        "seed",
        "warm",        "measure",     "cores",        "dump_stats",
        "prefetcher",  "degree",      "table_entries","train_all",
        "on_chip_table","per_core",   "composite_engines",
        "calib_interval",             "l2_kb",        "pf_buffer",
        "bw_scale",    "mem_latency", "rob",          "perfect_l2",
        "faults",      "fault_seed",  "fault_rate",   "stall_after",
        "trace_policy","watchdog",    "trace_out",    "stats_json",
        "interval",    "audit",       "audit_policy", "save_ckpt",
        "restore_ckpt","ckpt_policy", "profile",      "telemetry_out",
        "metrics_out",
    };
    return keys;
}

int
fail(const Status &s)
{
    std::cerr << "ebcp_cli: " << s.toString() << "\n";
    return 1;
}

Status
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        return ioError(logFormat("cannot open ", path, " for writing"));
    out << text;
    out.close();
    if (!out)
        return ioError(logFormat("short write to ", path));
    return Status();
}

/**
 * Frame, write and self-validate one ebcp-stats-v1 document. @p emit
 * writes the run objects; @p diagnostic_raw (a complete JSON value or
 * empty) becomes the top-level "diagnostic" member on stalled runs,
 * and @p audit_raw (an audit summary object or empty) the top-level
 * "audit" member.
 */
template <typename EmitRuns>
Status
exportStatsDoc(const std::string &path, EmitRuns &&emit,
               const std::string &diagnostic_raw = {},
               const std::string &audit_raw = {})
{
    std::ostringstream ss;
    JsonWriter w(ss);
    beginStatsJson(w, "ebcp_cli");
    emit(w);
    endStatsJson(w, diagnostic_raw, audit_raw,
                 prof::profileJsonString());
    if (Status s = writeTextFile(path, ss.str()); !s.ok())
        return s;
    return validateStatsJsonFile(path);
}

/** One-line audit summary for the console report. */
void
printAuditSummary(const Auditor *aud)
{
    if (!aud)
        return;
    const AuditContext &ctx = aud->context();
    std::cout << "  audit: " << aud->passes() << " passes, "
              << ctx.checksRun() << " checks, "
              << ctx.totalViolations() << " violations\n";
}

int
exportTrace(TraceLog &tlog, const std::string &path)
{
    // The self-profiler's phase tree rides along as a flame on its
    // own process row, next to the simulated timeline.
    prof::exportProfileSpans(tlog);
    if (Status s = tlog.exportChromeJson(path); !s.ok())
        return fail(s);
    std::cout << "  wrote " << path << " (" << tlog.totalEvents()
              << " events, " << tlog.totalDropped()
              << " dropped, validated)\n";
    return 0;
}

/**
 * Single-run telemetry: the CLI speaks the sweep engine's record
 * contract, modelling itself as a one-descriptor sweep, so the same
 * consumers (tail -f, the metrics scraper) work on both.
 */
struct CliTelemetry
{
    std::unique_ptr<harness::TelemetryStream> stream;
    std::string metricsPath;
    std::string label;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    bool finished = false;

    void
    open(const std::string &telemetry_path,
         const std::string &metrics_path, const std::string &run_label)
    {
        metricsPath = metrics_path;
        label = run_label;
        if (!telemetry_path.empty()) {
            stream = std::make_unique<harness::TelemetryStream>(
                telemetry_path);
            if (!stream->openStatus().ok()) {
                warn("telemetry disabled: ",
                     stream->openStatus().toString());
                stream.reset();
            }
        }
        if (!stream)
            return;
        stream->emitDeterministic("sweep_begin",
                                  "{\"runs\":1,\"resumed\":0}");
        stream->emitLive("run_state", stateJson("running"));
    }

    std::string
    stateJson(const char *state) const
    {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.kv("label", label);
        w.kv("state", state);
        w.endObject();
        return os.str();
    }

    void
    finish(const Status &s, std::uint64_t insts)
    {
        if (finished)
            return;
        finished = true;
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (stream) {
            std::ostringstream os;
            JsonWriter w(os);
            w.beginObject();
            w.kv("index", std::uint64_t(0));
            w.kv("label", label);
            w.kv("state", s.ok() ? "done" : "failed");
            w.kv("ok", s.ok());
            w.kv("code", statusCodeName(s.code()));
            w.kv("attempts", 1u);
            w.kv("from_journal", false);
            w.kv("warm_forked", false);
            w.kv("cold_fallback", false);
            w.kv("insts", s.ok() ? insts : 0);
            w.endObject();
            stream->emitDeterministic("run_state", os.str());
            std::ostringstream es;
            JsonWriter ew(es);
            ew.beginObject();
            ew.kv("runs", std::uint64_t(1));
            ew.kv("completed", std::uint64_t(s.ok() ? 1 : 0));
            ew.kv("failed", std::uint64_t(s.ok() ? 0 : 1));
            ew.kv("measured_insts", s.ok() ? insts : 0);
            ew.kv("resumed", std::uint64_t(0));
            ew.kv("retries", std::uint64_t(0));
            ew.kv("warm_builds", std::uint64_t(0));
            ew.kv("warm_forks", std::uint64_t(0));
            ew.kv("cold_fallbacks", std::uint64_t(0));
            ew.endObject();
            stream->emitDeterministic("sweep_end", es.str());
        }
        if (!metricsPath.empty()) {
            harness::MetricsSnapshot m;
            m.runsTotal = 1;
            m.completed = s.ok() ? 1 : 0;
            m.failed = s.ok() ? 0 : 1;
            m.measuredInsts = s.ok() ? insts : 0;
            m.jobs = 1;
            m.elapsedSeconds = elapsed;
            m.instsPerSec =
                elapsed > 0.0 && s.ok()
                    ? static_cast<double>(insts) / elapsed
                    : 0.0;
            m.done = true;
            Status ms = harness::writeMetricsSnapshot(metricsPath, m);
            if (!ms.ok())
                warn("metrics snapshot failed: ", ms.toString());
        }
    }
};

} // namespace

int
main(int argc, char **argv)
{
    StatusOr<ConfigStore> parsed = ConfigStore::parseArgs(argc, argv);
    if (!parsed.ok())
        return fail(parsed.status());
    ConfigStore cs = parsed.take();

    if (cs.getBool("help", false)) {
        printHelp();
        return 0;
    }
    if (Status s = cs.checkKnownKeys(knownKeys()); !s.ok())
        return fail(s);

    SimConfig cfg;
    cfg.l2.sizeBytes = cs.getU64("l2_kb", 2048) * KiB;
    cfg.prefetchBufferEntries =
        static_cast<unsigned>(cs.getU64("pf_buffer", 64));
    cfg.mem.latency = cs.getU64("mem_latency", 500);
    cfg.mem.scaleBandwidth(cs.getDouble("bw_scale", 1.0));
    cfg.core.robEntries = static_cast<unsigned>(cs.getU64("rob", 128));
    cfg.perfectL2 = cs.getBool("perfect_l2", false);
    cfg.watchdogTicks = cs.getU64("watchdog", 0);

    StatusOr<FaultPlan> plan =
        FaultPlan::parse(cs.getString("faults", ""),
                         cs.getU64("fault_seed", 1));
    if (!plan.ok())
        return fail(plan.status());
    cfg.faults = plan.take();
    cfg.faults.rate = cs.getDouble("fault_rate", 1e-3);
    cfg.faults.stallAfter = cs.getU64("stall_after", 100'000);

    const std::string policy_name = cs.getString("trace_policy", "strict");
    StatusOr<TraceReadPolicy> policy = traceReadPolicyFromName(policy_name);
    if (!policy.ok())
        return fail(policy.status());

    AuditOptions audit_opts;
    if (Status s = parseAuditCadence(cs.getString("audit", "off"),
                                     audit_opts);
        !s.ok())
        return fail(s);
    if (Status s = parseAuditPolicy(cs.getString("audit_policy", "collect"),
                                    audit_opts);
        !s.ok())
        return fail(s);

    const std::string trace_out = cs.getString("trace_out", "");
    const std::string stats_json_path = cs.getString("stats_json", "");
    const std::uint64_t interval = cs.getU64("interval", 0);
    const std::string telemetry_out = cs.getString("telemetry_out", "");
    const std::string metrics_out = cs.getString("metrics_out", "");
    prof::setEnabled(cs.getBool("profile", true));
    CliTelemetry telem;

    const std::string save_ckpt = cs.getString("save_ckpt", "");
    const std::string restore_ckpt = cs.getString("restore_ckpt", "");
    StatusOr<ckpt::CkptPolicy> ckpt_policy_or =
        ckpt::ckptPolicyFromName(cs.getString("ckpt_policy", "strict"));
    if (!ckpt_policy_or.ok())
        return fail(ckpt_policy_or.status());
    const ckpt::CkptPolicy ckpt_policy = ckpt_policy_or.value();

    const unsigned cores =
        static_cast<unsigned>(cs.getU64("cores", 1));

    PrefetcherParams pf;
    pf.name = cs.getString("prefetcher", "ebcp");
    pf.ebcp.prefetchDegree =
        static_cast<unsigned>(cs.getU64("degree", 8));
    pf.ebcp.tableEntries = cs.getU64("table_entries", 1ULL << 20);
    pf.solihin.tableEntries = pf.ebcp.tableEntries;
    pf.ebcp.trainAllOldestMisses = cs.getBool("train_all", false);
    pf.ebcp.onChipTable = cs.getBool("on_chip_table", false);
    pf.ebcp.faults = cfg.faults;
    if (cs.getBool("per_core", true))
        pf.ebcp.numCoreStates = cores;
    if (cs.has("degree")) {
        const unsigned deg =
            static_cast<unsigned>(cs.getU64("degree", 8));
        pf.dcpt.degree = deg;
        pf.amc.degree = deg;
    }
    pf.composite.calibInterval = cs.getU64("calib_interval", 8192);
    if (cs.has("composite_engines")) {
        pf.composite.engines.clear();
        std::string list = cs.getString("composite_engines", "");
        std::size_t start = 0;
        while (start <= list.size()) {
            std::size_t comma = list.find(',', start);
            if (comma == std::string::npos)
                comma = list.size();
            std::string item = list.substr(start, comma - start);
            if (!item.empty())
                pf.composite.engines.push_back(item);
            start = comma + 1;
        }
    }

    // Probe the factory up front: an unknown scheme or a nonsense
    // parameter (degree=0, a non-power-of-two table) comes back as a
    // coded Status with a nearest-name suggestion, instead of
    // aborting deep inside a constructor.
    if (StatusOr<std::unique_ptr<Prefetcher>> probe =
            tryCreatePrefetcher(pf);
        !probe.ok())
        return fail(probe.status());

    const std::uint64_t warm = cs.getU64("warm", 2'000'000);
    const std::uint64_t measure = cs.getU64("measure", 4'000'000);

    if (cores > 1) {
        if (cs.has("trace"))
            return fail(invalidArgError(
                "CMP mode replays workloads only"));
        if (interval)
            return fail(invalidArgError(
                "interval= sampling is single-core only"));
        if (!save_ckpt.empty() || !restore_ckpt.empty())
            return fail(invalidArgError(
                "save_ckpt=/restore_ckpt= are single-core only; use "
                "the sweep runner's warm-reuse machinery for CMP "
                "configurations"));
        const std::string workload =
            cs.getString("workload", "database");
        telem.open(telemetry_out, metrics_out,
                   workload + "/" + pf.name + "/cmp" +
                       std::to_string(cores));

        CmpSystem sys(cfg, pf, cores);
        if (Status s = sys.configureAudit(audit_opts); !s.ok())
            return fail(s);
        TraceLog tlog;
        if (!trace_out.empty())
            sys.attachTraceLog(tlog);
        sys.setTracePolicyName(policy_name);
        std::vector<std::unique_ptr<SyntheticWorkload>> owned;
        std::vector<TraceSource *> sources;
        for (unsigned i = 0; i < cores; ++i) {
            StatusOr<std::unique_ptr<SyntheticWorkload>> w =
                tryMakeWorkload(workload, 1000 + i);
            if (!w.ok())
                return fail(w.status());
            owned.push_back(w.take());
            sources.push_back(owned.back().get());
        }
        StatusOr<CmpResults> res = sys.tryRun(sources, warm, measure);
        if (!res.ok()) {
            // Best-effort artifacts: a stalled run's trace and
            // diagnostic are exactly what the operator needs next.
            if (!stats_json_path.empty()) {
                Status s =
                    exportStatsDoc(stats_json_path, [](JsonWriter &) {},
                                   sys.lastDiagnosticJson(),
                                   sys.auditSummaryJson());
                if (!s.ok())
                    std::cerr << "ebcp_cli: stats_json export failed: "
                              << s.toString() << "\n";
            }
            if (!trace_out.empty())
                exportTrace(tlog, trace_out);
            telem.finish(res.status(), 0);
            return fail(res.status());
        }
        CmpResults r = res.take();
        telem.finish(Status(), foldCmpResults(r).insts);
        std::cout << cores << "-core '" << workload << "' with "
                  << pf.name << ":\n  aggregate CPI "
                  << r.aggregateCpi << ", coverage "
                  << r.coverage * 100.0 << "%, accuracy "
                  << r.accuracy * 100.0 << "%, timeliness "
                  << r.timeliness * 100.0 << "%\n";
        for (unsigned i = 0; i < cores; ++i)
            std::cout << "  core " << i << ": CPI "
                      << r.perCore[i].cpi << "\n";
        printAuditSummary(sys.auditor());

        if (!trace_out.empty())
            if (int rc = exportTrace(tlog, trace_out))
                return rc;
        if (!stats_json_path.empty()) {
            const std::string label = workload + "/" + pf.name +
                                      "/cmp" + std::to_string(cores);
            const SimResults folded = foldCmpResults(r);
            Status s = exportStatsDoc(
                stats_json_path,
                [&](JsonWriter &w) {
                    w.beginObject();
                    w.kv("label", label);
                    w.key("results");
                    writeSimResultsJson(w, folded);
                    w.endObject();
                },
                {}, sys.auditSummaryJson());
            if (!s.ok())
                return fail(s);
            std::cout << "  wrote " << stats_json_path << " (schema "
                      << StatsJsonSchema << ", validated)\n";
        }
        return 0;
    }

    // Build the trace source chain: file or workload, optionally
    // wrapped in the fault injector.
    std::unique_ptr<TraceSource> src;
    FileTraceSource *file_src = nullptr;
    std::string source_name;
    if (cs.has("trace")) {
        source_name = cs.getString("trace", "");
        StatusOr<std::unique_ptr<FileTraceSource>> f =
            FileTraceSource::open(source_name, true, policy.value());
        if (!f.ok())
            return fail(f.status());
        file_src = f.value().get();
        src = f.take();
    } else {
        source_name = cs.getString("workload", "database");
        StatusOr<std::unique_ptr<SyntheticWorkload>> w =
            tryMakeWorkload(source_name, cs.getU64("seed", 0));
        if (!w.ok())
            return fail(w.status());
        src = w.take();
    }

    std::unique_ptr<FaultInjectingTraceSource> injector;
    TraceSource *run_src = src.get();
    if (cfg.faults.traceBitflip || cfg.faults.traceTruncate ||
        cfg.faults.traceShortRead) {
        injector = std::make_unique<FaultInjectingTraceSource>(
            *src, cfg.faults);
        run_src = injector.get();
    }
    telem.open(telemetry_out, metrics_out, source_name + "/" + pf.name);

    TraceLog tlog;
    std::unique_ptr<IntervalSampler> sampler;
    auto sim = std::make_unique<Simulator>(cfg, pf);
    // Setup is a lambda because a rebuild-policy fallback after a bad
    // checkpoint constructs a fresh simulator and must redo it.
    auto setupSim = [&](Simulator &s) -> Status {
        if (Status st = s.configureAudit(audit_opts); !st.ok())
            return st;
        if (!trace_out.empty())
            s.attachTraceLog(tlog);
        s.setTracePolicyName(policy_name);
        if (interval) {
            sampler = std::make_unique<IntervalSampler>(
                s.l2side().stats(), interval);
            s.setSampler(sampler.get());
        }
        return Status();
    };
    if (Status s = setupSim(*sim); !s.ok())
        return fail(s);

    bool cold = true;
    if (!restore_ckpt.empty()) {
        Status rs = sim->restoreCheckpointFile(restore_ckpt, *run_src);
        if (rs.ok()) {
            cold = false;
            std::cout << "  restored checkpoint " << restore_ckpt
                      << "\n";
        } else if (ckpt_policy == ckpt::CkptPolicy::Strict) {
            return fail(rs);
        } else {
            // Rebuild: the failed restore may have half-written
            // component state, so start over from scratch.
            warn("checkpoint '", restore_ckpt, "' unusable (",
                 rs.toString(), "); rebuilding warm state cold");
            sim = std::make_unique<Simulator>(cfg, pf);
            if (Status s = setupSim(*sim); !s.ok())
                return fail(s);
            run_src->reset();
        }
    }

    StatusOr<SimResults> res = [&]() -> StatusOr<SimResults> {
        if (cold)
            if (Status ws = sim->runWarm(*run_src, warm); !ws.ok())
                return ws;
        if (!save_ckpt.empty()) {
            if (Status ss = sim->saveCheckpoint(save_ckpt, *run_src);
                !ss.ok())
                return ss;
            std::cout << "  wrote checkpoint " << save_ckpt << "\n";
        }
        return sim->runMeasure(*run_src, measure);
    }();
    if (!res.ok()) {
        // Best-effort artifacts: the trace up to the stall and the
        // watchdog diagnostic are exactly what the operator needs.
        if (!stats_json_path.empty()) {
            Status s =
                exportStatsDoc(stats_json_path, [](JsonWriter &) {},
                               sim->lastDiagnosticJson(),
                               sim->auditSummaryJson());
            if (!s.ok())
                std::cerr << "ebcp_cli: stats_json export failed: "
                          << s.toString() << "\n";
        }
        if (!trace_out.empty())
            exportTrace(tlog, trace_out);
        telem.finish(res.status(), 0);
        return fail(res.status());
    }
    SimResults r = res.take();
    telem.finish(Status(), r.insts);

    std::cout << "'" << source_name << "' with " << pf.name << ":\n"
              << "  CPI " << r.cpi << "\n"
              << "  epochs/1000 insts " << r.epochsPer1k << "\n"
              << "  L2 miss/1000: inst " << r.l2InstMissPer1k
              << ", load " << r.l2LoadMissPer1k << "\n"
              << "  coverage " << r.coverage * 100.0 << "%, accuracy "
              << r.accuracy * 100.0 << "%\n"
              << "  prefetches: issued " << r.issuedPrefetches
              << ", useful " << r.usefulPrefetches << ", dropped "
              << r.droppedPrefetches << "\n"
              << "  lifecycle: timely " << r.timelyPrefetches
              << ", late " << r.latePrefetches << ", early-evicted "
              << r.earlyEvictedPrefetches << " (timeliness "
              << r.timeliness * 100.0 << "%)\n"
              << "  bus utilization: read " << r.readBusUtil * 100.0
              << "%, write " << r.writeBusUtil * 100.0 << "%\n";
    printAuditSummary(sim->auditor());

    // Robustness report: what was injected, what was recovered.
    if (injector)
        std::cout << "  faults injected: " << injector->bitflipsInjected()
                  << " bitflips, " << injector->shortReadsInjected()
                  << " short reads (" << injector->recordsDropped()
                  << " records), " << injector->truncationsInjected()
                  << " truncations\n";
    if (file_src) {
        std::cout << "  trace integrity: " << file_src->corruptChunks()
                  << " corrupt chunks, " << file_src->recordsSkipped()
                  << " records skipped, " << file_src->truncatedTails()
                  << " truncated tails, " << file_src->recordsSanitized()
                  << " records sanitized\n";
        if (!file_src->status().ok())
            return fail(file_src->status());
    }

    if (cs.getBool("dump_stats", false)) {
        sim->dumpStats(std::cout);
        if (injector)
            injector->stats().dump(std::cout);
        if (file_src)
            file_src->stats().dump(std::cout);
    }

    if (!trace_out.empty())
        if (int rc = exportTrace(tlog, trace_out))
            return rc;
    if (!stats_json_path.empty()) {
        Status s = exportStatsDoc(
            stats_json_path,
            [&](JsonWriter &w) {
                w.beginObject();
                w.kv("label", source_name + "/" + pf.name);
                w.key("results");
                writeSimResultsJson(w, r);
                w.key("stats");
                sim->dumpStatsJson(w);
                if (sampler) {
                    w.key("intervals");
                    sampler->writeJson(w);
                }
                w.endObject();
            },
            {}, sim->auditSummaryJson());
        if (!s.ok())
            return fail(s);
        std::cout << "  wrote " << stats_json_path << " (schema "
                  << StatsJsonSchema << ", validated)\n";
    }
    return 0;
}
