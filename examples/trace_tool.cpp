/**
 * @file
 * Trace capture / inspection / replay tool.
 *
 * Usage:
 *   trace_tool mode=record workload=database insts=1000000 \
 *              file=/tmp/db.trc
 *   trace_tool mode=dump file=/tmp/db.trc [count=20]
 *   trace_tool mode=replay file=/tmp/db.trc [prefetcher=ebcp] \
 *              [warm=500000] [measure=1000000] \
 *              [trace_policy=strict|skip-corrupt|stop-at-corrupt]
 *
 * All file and name errors are reported to stderr with context and a
 * nonzero exit -- a bad path or a corrupt trace is user input, not a
 * simulator bug.
 */

#include <iostream>

#include "cpu/op_class.hh"
#include "sim/api.hh"
#include "trace/trace_file.hh"
#include "trace/workloads.hh"
#include "util/config.hh"

using namespace ebcp;

namespace
{

int
fail(const Status &s)
{
    std::cerr << "trace_tool: " << s.toString() << "\n";
    return 1;
}

StatusOr<TraceReadPolicy>
policyOf(const ConfigStore &cs)
{
    return traceReadPolicyFromName(
        cs.getString("trace_policy", "strict"));
}

int
record(const ConfigStore &cs)
{
    const std::string workload = cs.getString("workload", "database");
    const std::string file = cs.getString("file", "/tmp/ebcp.trc");
    const std::uint64_t insts = cs.getU64("insts", 1'000'000);

    StatusOr<std::unique_ptr<SyntheticWorkload>> src =
        tryMakeWorkload(workload);
    if (!src.ok())
        return fail(src.status());

    StatusOr<std::unique_ptr<TraceFileWriter>> w =
        TraceFileWriter::open(file);
    if (!w.ok())
        return fail(w.status());

    if (Status s = w.value()->capture(*src.value(), insts); !s.ok())
        return fail(s);
    if (Status s = w.value()->close(); !s.ok())
        return fail(s);
    std::cout << "recorded " << w.value()->recordsWritten()
              << " records of '" << workload << "' to " << file << "\n";
    return 0;
}

int
dump(const ConfigStore &cs)
{
    const std::string file = cs.getString("file", "/tmp/ebcp.trc");
    const std::uint64_t count = cs.getU64("count", 20);

    StatusOr<TraceReadPolicy> policy = policyOf(cs);
    if (!policy.ok())
        return fail(policy.status());

    StatusOr<std::unique_ptr<FileTraceSource>> opened =
        FileTraceSource::open(file, false, policy.value());
    if (!opened.ok())
        return fail(opened.status());
    FileTraceSource &src = *opened.value();

    TraceRecord rec;
    for (std::uint64_t i = 0; i < count && src.next(rec); ++i) {
        std::cout << std::hex << "pc=0x" << rec.pc << std::dec << " "
                  << opClassName(rec.op);
        if (rec.op == OpClass::Load || rec.op == OpClass::Store)
            std::cout << std::hex << " addr=0x" << rec.addr << std::dec;
        if (isControl(rec.op))
            std::cout << (rec.taken ? " taken" : " not-taken")
                      << std::hex << " target=0x" << rec.target
                      << std::dec;
        std::cout << "\n";
    }
    if (!src.status().ok())
        return fail(src.status());
    return 0;
}

int
replay(const ConfigStore &cs)
{
    const std::string file = cs.getString("file", "/tmp/ebcp.trc");
    const std::uint64_t warm = cs.getU64("warm", 500'000);
    const std::uint64_t measure = cs.getU64("measure", 1'000'000);

    SimConfig cfg;
    PrefetcherParams p;
    p.name = cs.getString("prefetcher", "ebcp");

    StatusOr<TraceReadPolicy> policy = policyOf(cs);
    if (!policy.ok())
        return fail(policy.status());

    StatusOr<std::unique_ptr<FileTraceSource>> opened =
        FileTraceSource::open(file, true, policy.value());
    if (!opened.ok())
        return fail(opened.status());
    FileTraceSource &src = *opened.value();

    Simulator sim(cfg, p);
    StatusOr<SimResults> res = sim.tryRun(src, warm, measure);
    if (!res.ok())
        return fail(res.status());
    SimResults r = res.take();
    std::cout << "replayed " << src.recordsRead() << " records ("
              << p.name << "): CPI " << r.cpi << ", "
              << r.epochsPer1k << " epochs/1000, coverage "
              << r.coverage * 100.0 << "%\n";
    if (src.corruptChunks() || src.recordsSkipped())
        std::cout << "trace integrity: " << src.corruptChunks()
                  << " corrupt chunks, " << src.recordsSkipped()
                  << " records skipped\n";
    if (!src.status().ok())
        return fail(src.status());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    StatusOr<ConfigStore> parsed = ConfigStore::parseArgs(argc, argv);
    if (!parsed.ok())
        return fail(parsed.status());
    const ConfigStore cs = parsed.take();

    const std::string mode = cs.getString("mode", "record");
    if (mode == "record")
        return record(cs);
    if (mode == "dump")
        return dump(cs);
    if (mode == "replay")
        return replay(cs);
    return fail(invalidArgError("unknown mode '", mode,
                                "' (expected record/dump/replay)"));
}
