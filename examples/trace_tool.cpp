/**
 * @file
 * Trace capture / inspection / replay tool.
 *
 * Usage:
 *   trace_tool mode=record workload=database insts=1000000 \
 *              file=/tmp/db.trc
 *   trace_tool mode=dump file=/tmp/db.trc [count=20]
 *   trace_tool mode=replay file=/tmp/db.trc [prefetcher=ebcp] \
 *              [warm=500000] [measure=1000000]
 */

#include <iostream>

#include "cpu/op_class.hh"
#include "sim/simulator.hh"
#include "trace/trace_file.hh"
#include "trace/workloads.hh"
#include "util/config.hh"

using namespace ebcp;

namespace
{

int
record(const ConfigStore &cs)
{
    const std::string workload = cs.getString("workload", "database");
    const std::string file = cs.getString("file", "/tmp/ebcp.trc");
    const std::uint64_t insts = cs.getU64("insts", 1'000'000);

    auto src = makeWorkload(workload);
    TraceFileWriter w(file);
    w.capture(*src, insts);
    std::cout << "recorded " << w.recordsWritten() << " records of '"
              << workload << "' to " << file << "\n";
    return 0;
}

int
dump(const ConfigStore &cs)
{
    const std::string file = cs.getString("file", "/tmp/ebcp.trc");
    const std::uint64_t count = cs.getU64("count", 20);

    FileTraceSource src(file, false);
    TraceRecord rec;
    for (std::uint64_t i = 0; i < count && src.next(rec); ++i) {
        std::cout << std::hex << "pc=0x" << rec.pc << std::dec << " "
                  << opClassName(rec.op);
        if (rec.op == OpClass::Load || rec.op == OpClass::Store)
            std::cout << std::hex << " addr=0x" << rec.addr << std::dec;
        if (isControl(rec.op))
            std::cout << (rec.taken ? " taken" : " not-taken")
                      << std::hex << " target=0x" << rec.target
                      << std::dec;
        std::cout << "\n";
    }
    return 0;
}

int
replay(const ConfigStore &cs)
{
    const std::string file = cs.getString("file", "/tmp/ebcp.trc");
    const std::uint64_t warm = cs.getU64("warm", 500'000);
    const std::uint64_t measure = cs.getU64("measure", 1'000'000);

    SimConfig cfg;
    PrefetcherParams p;
    p.name = cs.getString("prefetcher", "ebcp");

    FileTraceSource src(file, true);
    SimResults r = runOnce(cfg, p, src, warm, measure);
    std::cout << "replayed " << src.recordsRead() << " records ("
              << p.name << "): CPI " << r.cpi << ", "
              << r.epochsPer1k << " epochs/1000, coverage "
              << r.coverage * 100.0 << "%\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    const std::string mode = cs.getString("mode", "record");
    if (mode == "record")
        return record(cs);
    if (mode == "dump")
        return dump(cs);
    if (mode == "replay")
        return replay(cs);
    std::cerr << "unknown mode '" << mode
              << "' (expected record/dump/replay)\n";
    return 1;
}
