/**
 * @file
 * Compare every prefetcher in the library on one workload -- the
 * interactive counterpart of the Figure 9 bench.
 *
 * Usage:
 *   prefetcher_comparison [workload=specjbb] [warm=2000000]
 *                         [measure=4000000] [degree=6]
 */

#include <iostream>

#include "sim/simulator.hh"
#include "stats/table.hh"
#include "trace/workloads.hh"
#include "util/config.hh"
#include "util/str.hh"

using namespace ebcp;

int
main(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    const std::string workload = cs.getString("workload", "specjbb");
    const std::uint64_t warm = cs.getU64("warm", 2'000'000);
    const std::uint64_t measure = cs.getU64("measure", 4'000'000);
    const unsigned degree =
        static_cast<unsigned>(cs.getU64("degree", 6));

    SimConfig cfg;
    PrefetcherParams none;
    none.name = "null";
    auto base_src = makeWorkload(workload);
    SimResults base = runOnce(cfg, none, *base_src, warm, measure);

    std::cout << "workload '" << workload << "': baseline CPI "
              << base.cpi << ", " << base.epochsPer1k
              << " epochs/1000 insts\n";

    AsciiTable t("Prefetcher comparison (degree " +
                 std::to_string(degree) + ")");
    t.setHeader({"scheme", "improvement %", "EPI reduction %",
                 "coverage %", "accuracy %", "issued", "dropped"});

    for (const auto &name : prefetcherNames()) {
        if (name == "null")
            continue;
        PrefetcherParams p;
        p.name = name;
        p.ebcp.prefetchDegree = degree;
        auto src = makeWorkload(workload);
        SimResults r = runOnce(cfg, p, *src, warm, measure);
        t.addRow({name, fmtDouble(improvementPct(base, r), 2),
                  fmtDouble(epiReductionPct(base, r), 2),
                  fmtDouble(r.coverage * 100.0, 1),
                  fmtDouble(r.accuracy * 100.0, 1),
                  std::to_string(r.issuedPrefetches),
                  std::to_string(r.droppedPrefetches)});
    }
    t.print(std::cout);
    return 0;
}
