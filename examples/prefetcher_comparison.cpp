/**
 * @file
 * Compare every prefetcher in the library on one workload -- the
 * interactive counterpart of the Figure 9 bench -- using the parallel
 * sweep engine directly (jobs=N / EBCP_BENCH_JOBS select the worker
 * count; results are identical at any job count).
 *
 * Usage:
 *   prefetcher_comparison [workload=specjbb] [warm=2000000]
 *                         [measure=4000000] [degree=6] [jobs=N]
 */

#include <iostream>

#include "harness/options.hh"
#include "harness/sweep.hh"
#include "sim/api.hh"
#include "stats/table.hh"
#include "trace/workloads.hh"
#include "util/config.hh"
#include "util/str.hh"

using namespace ebcp;

int
main(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    const std::string workload = cs.getString("workload", "specjbb");
    const std::uint64_t warm = cs.getU64("warm", 2'000'000);
    const std::uint64_t measure = cs.getU64("measure", 4'000'000);
    const unsigned degree =
        static_cast<unsigned>(cs.getU64("degree", 6));

    StatusOr<unsigned> jobs = harness::tryResolveJobsFromEnv(cs);
    if (!jobs.ok()) {
        std::cerr << jobs.status().toString() << "\n";
        return 2;
    }

    harness::RunScale scale;
    scale.warm = warm;
    scale.measure = measure;

    std::vector<harness::RunDesc> descs;
    {
        harness::RunDesc base;
        base.label = workload + "/baseline";
        base.workload = workload;
        base.pf.name = "null";
        base.scale = scale;
        descs.push_back(std::move(base));
    }
    std::vector<std::string> schemes;
    for (const auto &name : prefetcherNames()) {
        if (name == "null")
            continue;
        harness::RunDesc d;
        d.workload = workload;
        d.pf.name = name;
        d.pf.ebcp.prefetchDegree = degree;
        d.scale = scale;
        schemes.push_back(name);
        descs.push_back(std::move(d));
    }

    harness::SweepRunner pool(jobs.value());
    std::vector<harness::RunResult> results = pool.run(descs);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok()) {
            std::cerr << "run " << harness::runLabel(descs[i])
                      << " failed: " << results[i].status.toString()
                      << "\n";
            return 1;
        }
    }

    const SimResults &base = results[0].results;
    std::cout << "workload '" << workload << "': baseline CPI "
              << base.cpi << ", " << base.epochsPer1k
              << " epochs/1000 insts\n";
    const harness::SweepStats &st = pool.stats();
    std::cout << "sweep: " << st.launched << " runs on " << st.jobs
              << " jobs in " << fmtDouble(st.wallSeconds, 1) << "s\n";

    AsciiTable t("Prefetcher comparison (degree " +
                 std::to_string(degree) + ")");
    t.setHeader({"scheme", "improvement %", "EPI reduction %",
                 "coverage %", "accuracy %", "issued", "dropped"});

    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const SimResults &r = results[i + 1].results;
        t.addRow({schemes[i], fmtDouble(improvementPct(base, r), 2),
                  fmtDouble(epiReductionPct(base, r), 2),
                  fmtDouble(r.coverage * 100.0, 1),
                  fmtDouble(r.accuracy * 100.0, 1),
                  std::to_string(r.issuedPrefetches),
                  std::to_string(r.droppedPrefetches)});
    }
    t.print(std::cout);
    return 0;
}
