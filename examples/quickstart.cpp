/**
 * @file
 * Quickstart: simulate one commercial workload without prefetching
 * and with the epoch-based correlation prefetcher, and print the
 * paper's headline metrics.
 *
 * Usage:
 *   quickstart [workload=database] [warm=1000000] [measure=2000000]
 *              [prefetcher=ebcp] [degree=8] [table_entries=1048576]
 */

#include <iostream>

#include "sim/api.hh"
#include "stats/table.hh"
#include "trace/workloads.hh"
#include "util/config.hh"

using namespace ebcp;

int
main(int argc, char **argv)
{
    ConfigStore cfg = ConfigStore::fromArgs(argc, argv);
    const std::string workload = cfg.getString("workload", "database");
    const std::uint64_t warm = cfg.getU64("warm", 1'000'000);
    const std::uint64_t measure = cfg.getU64("measure", 2'000'000);

    SimConfig sim_cfg;

    PrefetcherParams base;
    base.name = "null";

    PrefetcherParams pf;
    pf.name = cfg.getString("prefetcher", "ebcp");
    pf.ebcp.prefetchDegree =
        static_cast<unsigned>(cfg.getU64("degree", 8));
    pf.ebcp.tableEntries = cfg.getU64("table_entries", 1ULL << 20);

    std::cout << "workload: " << workload << ", warm " << warm
              << " insts, measure " << measure << " insts\n";

    auto src1 = makeWorkload(workload);
    SimResults r_base = runOnce(sim_cfg, base, *src1, warm, measure);

    auto src2 = makeWorkload(workload);
    Simulator sim(sim_cfg, pf);
    SimResults r_pf = sim.run(*src2, warm, measure);
    if (cfg.getBool("dump", false))
        sim.dumpStats(std::cout);

    AsciiTable t("Baseline vs " + pf.name);
    t.setHeader({"metric", "no-prefetch", pf.name});
    t.addRow("CPI", {r_base.cpi, r_pf.cpi});
    t.addRow("epochs / 1000 insts",
             {r_base.epochsPer1k, r_pf.epochsPer1k});
    t.addRow("L2 inst misses / 1000",
             {r_base.l2InstMissPer1k, r_pf.l2InstMissPer1k});
    t.addRow("L2 load misses / 1000",
             {r_base.l2LoadMissPer1k, r_pf.l2LoadMissPer1k});
    t.addRow("coverage %", {0.0, r_pf.coverage * 100.0});
    t.addRow("accuracy %", {0.0, r_pf.accuracy * 100.0});
    t.addRow("read-bus utilization %",
             {r_base.readBusUtil * 100.0, r_pf.readBusUtil * 100.0});
    t.print(std::cout);

    std::cout << "\noverall performance improvement: "
              << improvementPct(r_base, r_pf) << "%\n"
              << "EPI reduction: " << epiReductionPct(r_base, r_pf)
              << "%\n";
    return 0;
}
