/**
 * @file
 * Design-space exploration example: sweep the EBCP's three main knobs
 * (prefetch degree, correlation-table entries, prefetch-buffer size)
 * on the OLTP database workload and report the tuned configuration --
 * a miniature of the paper's Section 5.2 methodology.
 *
 * Usage:
 *   oltp_tuning [workload=database] [warm=2000000] [measure=4000000]
 */

#include <iostream>

#include "sim/api.hh"
#include "stats/table.hh"
#include "trace/workloads.hh"
#include "util/config.hh"
#include "util/str.hh"

using namespace ebcp;

namespace
{

SimResults
runCfg(const std::string &workload, const SimConfig &cfg,
       const PrefetcherParams &pf, std::uint64_t warm,
       std::uint64_t measure)
{
    auto src = makeWorkload(workload);
    return runOnce(cfg, pf, *src, warm, measure);
}

} // namespace

int
main(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    const std::string workload = cs.getString("workload", "database");
    const std::uint64_t warm = cs.getU64("warm", 2'000'000);
    const std::uint64_t measure = cs.getU64("measure", 4'000'000);

    std::cout << "EBCP design-space exploration on '" << workload
              << "' (" << warm << " warm + " << measure
              << " measured insts per point)\n";

    SimConfig base_cfg;
    PrefetcherParams none;
    none.name = "null";
    SimResults base = runCfg(workload, base_cfg, none, warm, measure);
    std::cout << "baseline: CPI " << base.cpi << ", "
              << base.epochsPer1k << " epochs/1000 insts\n";

    // ---- 1. Prefetch degree (idealized table and buffer) -------------
    AsciiTable t1("1. prefetch degree (8M-entry table, 1024-entry"
                  " buffer)");
    t1.setHeader({"degree", "improvement %", "coverage %",
                  "accuracy %"});
    for (unsigned d : {1u, 2u, 4u, 8u, 16u, 32u}) {
        SimConfig cfg;
        cfg.prefetchBufferEntries = 1024;
        PrefetcherParams p;
        p.name = "ebcp";
        p.ebcp.prefetchDegree = d;
        p.ebcp.tableEntries = 1ULL << 23;
        SimResults r = runCfg(workload, cfg, p, warm, measure);
        t1.addRow(std::to_string(d),
                  {improvementPct(base, r), r.coverage * 100.0,
                   r.accuracy * 100.0});
    }
    t1.print(std::cout);

    // ---- 2. Table entries at the chosen degree 8 ----------------------
    AsciiTable t2("2. correlation-table entries (degree 8)");
    t2.setHeader({"entries", "improvement %", "table footprint"});
    for (unsigned shift : {12u, 14u, 16u, 18u, 20u}) {
        SimConfig cfg;
        PrefetcherParams p;
        p.name = "ebcp";
        p.ebcp.prefetchDegree = 8;
        p.ebcp.tableEntries = 1ULL << shift;
        SimResults r = runCfg(workload, cfg, p, warm, measure);
        CorrTableConfig tc;
        tc.entries = p.ebcp.tableEntries;
        tc.addrsPerEntry = 8;
        t2.addRow({std::to_string(1 << (shift >= 20 ? shift - 20
                                                    : shift - 10)) +
                       (shift >= 20 ? "M" : "K"),
                   fmtDouble(improvementPct(base, r), 2),
                   fmtSize(tc.footprintBytes())});
    }
    t2.print(std::cout);

    // ---- 3. Prefetch buffer entries -----------------------------------
    AsciiTable t3("3. prefetch-buffer entries (degree 8, 1M-entry"
                  " table)");
    t3.setHeader({"entries", "improvement %", "on-chip storage"});
    for (unsigned s : {16u, 32u, 64u, 128u, 256u}) {
        SimConfig cfg;
        cfg.prefetchBufferEntries = s;
        PrefetcherParams p;
        p.name = "ebcp";
        p.ebcp.prefetchDegree = 8;
        SimResults r = runCfg(workload, cfg, p, warm, measure);
        t3.addRow({std::to_string(s),
                   fmtDouble(improvementPct(base, r), 2),
                   fmtSize(s * 8)}); // ~8B of metadata per entry
    }
    t3.print(std::cout);

    std::cout << "\nThe paper's tuned design point: degree 8, 1M-entry"
                 " main-memory table,\n64-entry prefetch buffer -- no"
                 " on-chip correlation storage at all.\n";
    return 0;
}
