/**
 * @file
 * Demonstrates the main-memory table's allocation life cycle
 * (Section 3.4.1): the prefetcher runs, the "operating system"
 * reclaims its region under memory pressure, prefetching goes
 * inactive, and after the retry interval the prefetcher reacquires
 * memory and relearns.
 *
 * Usage:
 *   table_reclaim_demo [workload=database] [phase=1500000]
 */

#include <iostream>

#include "sim/api.hh"
#include "trace/workloads.hh"
#include "util/config.hh"

using namespace ebcp;

int
main(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    const std::string workload = cs.getString("workload", "database");
    const std::uint64_t phase = cs.getU64("phase", 1'500'000);

    SimConfig cfg;
    PrefetcherParams p;
    p.name = "ebcp";
    // Stay inactive through phase 2 (about 5*phase cycles at these
    // CPIs) and reactivate during phase 3.
    p.ebcp.reallocRetryInterval = phase * 6;

    Simulator sim(cfg, p);
    auto *ebcp_pf =
        dynamic_cast<EpochBasedPrefetcher *>(&sim.prefetcher());
    auto src = makeWorkload(workload);

    auto report = [&](const char *label) {
        SimResults r = sim.collect();
        std::cout << label << ": CPI " << r.cpi << ", coverage "
                  << r.coverage * 100.0 << "%, useful prefetches "
                  << r.usefulPrefetches << ", table state "
                  << (ebcp_pf->allocation().state() ==
                              TableAllocation::State::Active
                          ? "ACTIVE"
                          : "INACTIVE")
                  << "\n";
    };

    // Phase 1: warm and run normally.
    sim.run(*src, phase, phase);
    report("phase 1 (learning + prefetching)");

    // Phase 2: the OS reclaims the region mid-run.
    ebcp_pf->reclaimTable(sim.core().now());
    sim.core().beginMeasurement();
    sim.hierarchy().beginMeasurement();
    sim.l2side().beginMeasurement();
    sim.core().run(*src, phase);
    report("phase 2 (region reclaimed, prefetcher inactive)");

    // Phase 3: past the retry interval the prefetcher reallocates and
    // relearns from scratch.
    sim.core().beginMeasurement();
    sim.hierarchy().beginMeasurement();
    sim.l2side().beginMeasurement();
    sim.core().run(*src, 2 * phase);
    report("phase 3 (reallocated and relearning)");

    std::cout << "\nExpected: phase 2 loses all coverage (and the table"
                 " contents); phase 3\nrecovers it without any software"
                 " intervention.\n";
    return 0;
}
