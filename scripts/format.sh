#!/usr/bin/env bash
# clang-format over every C++ source in the tree, using the checked-in
# .clang-format.
#
#   scripts/format.sh          rewrite files in place
#   scripts/format.sh --check  fail (exit 1) if any file would change;
#                              this is the mode scripts/check.sh runs
#
# Degrades to a no-op notice when clang-format is not installed, so
# check.sh can call it unconditionally on minimal build machines.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="format"
if [[ "${1:-}" == "--check" ]]; then
    MODE="check"
    shift
fi

if ! command -v clang-format >/dev/null 2>&1; then
    echo "format: clang-format not found on PATH; skipping (install" \
         "clang-format to enforce .clang-format)"
    exit 0
fi

mapfile -t FILES < <(find src bench examples tests tools fuzz \
    \( -name '*.cc' -o -name '*.hh' -o -name '*.cpp' -o -name '*.h' \) \
    2>/dev/null | sort)

echo "format: clang-format" \
     "($(clang-format --version | sed -n 's/.*version /version /p'))" \
     "over ${#FILES[@]} files (${MODE})"

if [[ "${MODE}" == "check" ]]; then
    clang-format --dry-run --Werror "${FILES[@]}"
    echo "format: clean"
else
    clang-format -i "${FILES[@]}"
    echo "format: done"
fi
