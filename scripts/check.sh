#!/usr/bin/env bash
# The full local verification matrix, in the order a reviewer would
# want failures reported:
#
#    1. Release build (RelWithDebInfo, -Wall -Wextra -Wshadow -Werror)
#       + clang-tidy lint + clang-format --check + the complete ctest
#       suite (which now includes the layering_lint_tree /
#       layering_lint_bad_fixture pair and every fuzz corpus replay);
#    2. layering & symbol isolation: scripts/layering_lint.py over the
#       stage-1 compile_commands.json, then `nm` over libsim_probe --
#       a binary linked against ebcp_libsim alone -- asserting not one
#       ebcp::harness symbol appears in it (the link succeeding at all
#       is the first half of the proof; see tools/CMakeLists.txt);
#    3. address+undefined sanitizer build + the complete ctest suite.
#       This build sets -DEBCP_FUZZ=ON, so the five fuzz harnesses are
#       compiled with the same sanitizers as everything else;
#    4. fuzz smoke: each harness replays its corpus and then runs a
#       bounded, fixed-seed mutation loop under ASan/UBSan. Failures
#       reproduce by rerunning the printed command line;
#    5. thread sanitizer build + the sweep-determinism and composite-
#       determinism gates (the tests that drive the parallel runner
#       hard, including the adaptive composite controller);
#    6. -DEBCP_AUDIT=OFF build + the complete ctest suite, proving the
#       audit hook sites compile away cleanly and nothing depends on
#       them (golden results are pinned by the regular suite, which
#       runs identically in this configuration);
#    7. checkpoint gates, explicitly and under ASan/UBSan: the
#       save->restore bit-exactness round trip and the corrupted-
#       checkpoint corpus (every injected fault must yield a coded
#       Status, never a crash -- precisely the class of bug the
#       sanitizers catch), plus the ckpt_lint format-version guard;
#    8. -DEBCP_NO_SIMD=ON build (the portable scalar-bitmask probe
#       fallback of the group-probed hash core) re-running the golden
#       SimResults and FlatMap suites, so both probe paths stay
#       bit-exact and green;
#    9. -DEBCP_PROFILER=OFF build (EBCP_PROFILE_SCOPE compiles to
#       nothing) re-running the golden SimResults suite plus the
#       profiler and telemetry contracts, proving the self-profiler
#       never touches simulated state -- goldens stay bit-exact with
#       the scopes compiled away -- and that the "profile" stats object
#       and telemetry stream keep their schema in the disabled build.
#
# Set EBCP_CHECK_PGO=1 for an extra opt-in stage: a
# -fprofile-generate build trained on bench/throughput_bench, then a
# -fprofile-use rebuild re-running the golden + perf-smoke gates.
# PGO is a build-machine-local artifact (profiles depend on compiler
# version and workload), which is why the stage is opt-in rather than
# part of the default matrix. scripts/coverage.sh (the parser-TU
# line-coverage floor) is likewise separate: it needs its own
# --coverage build and a few minutes of mutation smoke.
#
# Every stage exports compile_commands.json. Roughly 10-15 minutes on
# a laptop; set EBCP_CHECK_JOBS to bound parallelism.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${EBCP_CHECK_JOBS:-$(nproc)}"

stage() {
    echo
    echo "==== $* ===="
}

run_ctest() {
    ctest --test-dir "$1" --output-on-failure -j "${JOBS}" "${@:2}"
}

stage "1/9 release build + lint + format + tests"
cmake -B build-check -DEBCP_WERROR=ON >/dev/null
cmake --build build-check -j "${JOBS}"
cmake --build build-check --target lint
scripts/format.sh --check
run_ctest build-check

stage "2/9 layering lint + libsim symbol isolation"
scripts/layering_lint.py --compdb build-check/compile_commands.json \
    --rules layering.rules --root .
# libsim_probe linked: the core resolves with zero harness objects.
# Now prove no harness symbol is even *defined* in the binary (a
# harness object creeping into a core library would still link).
if nm build-check/tools/libsim_probe | grep -q '_ZN4ebcp7harness'; then
    echo "symbol isolation: ebcp::harness symbols found in" \
         "libsim_probe (core -> harness leak):" >&2
    nm -C build-check/tools/libsim_probe | grep 'ebcp::harness' | head >&2
    exit 1
fi
echo "symbol isolation: libsim_probe carries no ebcp::harness symbols"
./build-check/tools/libsim_probe

stage "3/9 address+undefined sanitizers (fuzz harnesses included)"
cmake -B build-check-asan -DEBCP_SANITIZE="address;undefined" \
      -DEBCP_FUZZ=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-check-asan -j "${JOBS}"
run_ctest build-check-asan

stage "4/9 fuzz smoke (fixed-seed mutation loops under ASan/UBSan)"
# Cheap parsers get deep loops; the two checkpoint targets build and
# run a simulator per input, so their loops are shorter. Seeds are
# pinned: a failure here reproduces by rerunning the same command.
for t in trace_reader json config; do
    echo "-- fuzz_${t} --smoke 2000"
    ./build-check-asan/fuzz/fuzz_${t} --smoke 2000 --seed 7 \
        fuzz/corpus/${t} fuzz/corpus/regressions/${t}
done
for t in ckpt_restore ckpt_audit; do
    echo "-- fuzz_${t} --smoke 40"
    ./build-check-asan/fuzz/fuzz_${t} --smoke 40 --seed 7 \
        fuzz/corpus/${t} fuzz/corpus/regressions/${t}
done

stage "5/9 thread sanitizer (parallel sweep determinism)"
cmake -B build-check-tsan -DEBCP_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-check-tsan --target test_runner test_composite \
      -j "${JOBS}"
run_ctest build-check-tsan \
    -R 'sweep_determinism|SweepDeterminism|composite_determinism|CompositeDeterminism'

stage "6/9 -DEBCP_AUDIT=OFF build + tests"
cmake -B build-check-noaudit -DEBCP_AUDIT=OFF >/dev/null
cmake --build build-check-noaudit -j "${JOBS}"
run_ctest build-check-noaudit

stage "7/9 checkpoint gates (ASan/UBSan) + format-version lint"
# The sanitizer build from stage 3 already exists; re-run the two
# checkpoint gates by name so a crash-safety regression is reported
# as its own stage, not buried in a 500-entry suite.
run_ctest build-check-asan -R '^ckpt_roundtrip$|^ckpt_corruption_corpus$'
scripts/ckpt_lint.sh

stage "8/9 scalar probe fallback (-DEBCP_NO_SIMD=ON): goldens + FlatMap"
cmake -B build-check-nosimd -DEBCP_NO_SIMD=ON >/dev/null
cmake --build build-check-nosimd --target test_golden_results \
      test_flat_map -j "${JOBS}"
run_ctest build-check-nosimd -R 'GoldenResults|FlatMap'

stage "9/9 profiler compiled away (-DEBCP_PROFILER=OFF): goldens bit-exact"
cmake -B build-check-noprof -DEBCP_PROFILER=OFF >/dev/null
cmake --build build-check-noprof --target test_golden_results \
      test_profiler test_telemetry -j "${JOBS}"
run_ctest build-check-noprof -R 'GoldenResults|Profiler|Telemetry'

if [[ "${EBCP_CHECK_PGO:-0}" == "1" ]]; then
    stage "opt-in PGO: instrument, train on throughput_bench, rebuild"
    cmake -B build-check-pgo -DEBCP_PGO=generate >/dev/null
    cmake --build build-check-pgo --target throughput_bench -j "${JOBS}"
    (cd build-check-pgo &&
     ./bench/throughput_bench warm=500000 measure=1000000 reps=1 \
         json= >/dev/null)
    cmake -B build-check-pgo -DEBCP_PGO=use >/dev/null
    cmake --build build-check-pgo -j "${JOBS}"
    run_ctest build-check-pgo -R 'GoldenResults|perf-smoke'
fi

echo
echo "check: all stages passed"
