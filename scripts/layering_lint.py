#!/usr/bin/env python3
"""Static layering enforcement over the real include graph.

Reads the compile database (compile_commands.json) to learn every
translation unit and its include search path, scans quoted #include
directives transitively (headers included by headers count -- this is
what makes "no harness include reachable from the hot path" a real
guarantee rather than a grep of first-level includes), collapses the
file graph to directory-level edges, and checks the result against the
checked-in `layering.rules`:

  * every cross-directory edge must be declared with an `allow` line;
  * an `allow A -> B only h1 h2` edge is narrowed to the listed
    headers (the sim/api.hh facade rule);
  * no directory of group `libsim` may reach a directory of group
    `libharness`, even transitively;
  * the directory graph must be acyclic;
  * directories in groups marked `exempt` (tests) are not constrained.

Violations are reported with a file-level witness chain, e.g.

    core -> harness: src/core/ebcp.cc -> sim/simulator.hh ->
    harness/telemetry.hh

so the offending include is identifiable without re-deriving the graph
by hand. Exit status: 0 clean, 1 violations, 2 usage/environment error.

Usage:
    scripts/layering_lint.py --compdb build/compile_commands.json \
        --rules layering.rules --root .
    scripts/layering_lint.py ... --dump-edges   # print observed edges
"""

import argparse
import json
import os
import re
import sys

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
# Tokens such as -I/path or -I /path or -isystem /path in a command
# string. compile_commands entries here use "command", not "arguments".
INCLUDE_DIR_RE = re.compile(r'-I\s*(\S+)|-isystem\s+(\S+)')


class Rules:
    def __init__(self):
        self.group_of_dir = {}   # dir label -> group name
        self.exempt_groups = set()
        self.allowed = {}        # (src_dir, dst_dir) -> None | set(headers)

    def group(self, d):
        return self.group_of_dir.get(d)


def parse_rules(path):
    rules = Rules()
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tok = line.split()
            try:
                if tok[0] == "group":
                    # group NAME [exempt] = dir dir ...
                    eq = tok.index("=")
                    name = tok[1]
                    if "exempt" in tok[2:eq]:
                        rules.exempt_groups.add(name)
                    for d in tok[eq + 1:]:
                        if d in rules.group_of_dir:
                            raise ValueError(
                                f"directory '{d}' assigned twice")
                        rules.group_of_dir[d] = name
                elif tok[0] == "allow":
                    # allow SRC -> DST [only header ...]
                    arrow = tok.index("->")
                    src = tok[1]
                    rest = tok[arrow + 1:]
                    if "only" in rest:
                        cut = rest.index("only")
                        dsts, only = rest[:cut], set(rest[cut + 1:])
                        if not only:
                            raise ValueError("'only' lists no headers")
                    else:
                        dsts, only = rest, None
                    for dst in dsts:
                        rules.allowed[(src, dst)] = only
                else:
                    raise ValueError(f"unknown directive '{tok[0]}'")
            except (ValueError, IndexError) as e:
                sys.exit(f"layering_lint: {path}:{lineno}: {e}")
    return rules


def dir_label(path, root):
    """Map an absolute file path to its layering directory label.

    src/<dir>/... collapses to <dir>; every other top-level directory
    (bench, examples, tests, fuzz, tools) is its own label. Files
    outside the repository root (system headers reached via -I) return
    None and are ignored.
    """
    rel = os.path.relpath(path, root)
    if rel.startswith(".."):
        return None
    parts = rel.split(os.sep)
    if parts[0] == "src" and len(parts) > 2:
        return parts[1]
    return parts[0]


def load_compdb(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"layering_lint: cannot read compile database "
                 f"{path}: {e}")


def include_dirs_of(entry):
    dirs = []
    command = entry.get("command")
    if command is None:
        command = " ".join(entry.get("arguments", []))
    for m in INCLUDE_DIR_RE.finditer(command):
        d = m.group(1) or m.group(2)
        dirs.append(os.path.normpath(
            os.path.join(entry["directory"], d)))
    return dirs


def scan_includes(path, cache):
    if path in cache:
        return cache[path]
    incs = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            for line in f:
                m = INCLUDE_RE.match(line)
                if m:
                    incs.append(m.group(1))
    except OSError:
        pass
    cache[path] = incs
    return incs


def resolve(inc, including_file, search_dirs):
    cand = os.path.normpath(
        os.path.join(os.path.dirname(including_file), inc))
    if os.path.isfile(cand):
        return cand
    for d in search_dirs:
        cand = os.path.normpath(os.path.join(d, inc))
        if os.path.isfile(cand):
            return cand
    return None


def build_graph(entries, root):
    """File-level include graph over every TU in the compile database.

    Returns (edges, parent) where edges maps (src_dir, dst_dir) to the
    list of distinct file-level witnesses (including_file,
    included_file) and parent lets a witness chain be reconstructed
    back to the TU that pulled the header in.
    """
    edges = {}
    parent = {}
    include_cache = {}
    for entry in entries:
        tu = os.path.normpath(
            os.path.join(entry["directory"], entry["file"]))
        if dir_label(tu, root) is None:
            continue
        search = include_dirs_of(entry)
        stack = [tu]
        visited = {tu}
        while stack:
            cur = stack.pop()
            cur_dir = dir_label(cur, root)
            for inc in scan_includes(cur, include_cache):
                dst = resolve(inc, cur, search)
                if dst is None:
                    continue
                dst_dir = dir_label(dst, root)
                if dst_dir is None:
                    continue
                if dst not in visited:
                    visited.add(dst)
                    parent.setdefault(dst, cur)
                    stack.append(dst)
                if cur_dir != dst_dir:
                    wits = edges.setdefault((cur_dir, dst_dir), [])
                    if (cur, dst) not in wits:
                        wits.append((cur, dst))
    return edges, parent


def witness_chain(witness, parent, root):
    src_file, dst_file = witness
    chain = [os.path.relpath(dst_file, root)]
    cur = src_file
    while cur is not None:
        chain.append(os.path.relpath(cur, root))
        cur = parent.get(cur)
    return " -> ".join(reversed(chain))


def find_cycle(adj):
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in adj}
    trail = []

    def visit(n):
        color[n] = GREY
        trail.append(n)
        for m in adj.get(n, ()):
            if color.get(m, WHITE) == GREY:
                return trail[trail.index(m):] + [m]
            if color.get(m, WHITE) == WHITE:
                cyc = visit(m)
                if cyc:
                    return cyc
        trail.pop()
        color[n] = BLACK
        return None

    for n in list(adj):
        if color[n] == WHITE:
            cyc = visit(n)
            if cyc:
                return cyc
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--compdb", required=True,
                    help="compile_commands.json (or its build dir)")
    ap.add_argument("--rules", required=True, help="layering.rules")
    ap.add_argument("--root", required=True, help="repository root")
    ap.add_argument("--dump-edges", action="store_true",
                    help="print every observed cross-directory edge")
    args = ap.parse_args()

    compdb = args.compdb
    if os.path.isdir(compdb):
        compdb = os.path.join(compdb, "compile_commands.json")
    root = os.path.abspath(args.root)
    rules = parse_rules(args.rules)
    entries = load_compdb(compdb)

    edges, parent = build_graph(entries, root)

    if args.dump_edges:
        for (src, dst), wits in sorted(edges.items()):
            for w in wits:
                print(f"{src} -> {dst}    "
                      f"[{os.path.relpath(w[0], root)} -> "
                      f"{os.path.relpath(w[1], root)}]")
        return 0

    errors = []

    # Per-edge legality: declared, and within any 'only' narrowing.
    for (src, dst), wits in sorted(edges.items()):
        if rules.group(src) in rules.exempt_groups:
            continue
        if rules.group(src) is None:
            errors.append(f"directory '{src}' is missing from every "
                          f"group in the rules file (witness: "
                          f"{witness_chain(wits[0], parent, root)})")
            continue
        if rules.group(dst) is None:
            errors.append(f"directory '{dst}' is missing from every "
                          f"group in the rules file (witness: "
                          f"{witness_chain(wits[0], parent, root)})")
            continue
        if (src, dst) not in rules.allowed:
            errors.append(
                f"undeclared edge {src} -> {dst}: "
                f"{witness_chain(wits[0], parent, root)}")
            continue
        only = rules.allowed[(src, dst)]
        if only is None:
            continue
        for w in wits:
            rel = os.path.relpath(w[1], root)
            base = os.path.basename(rel)
            srcrel = os.path.relpath(rel, "src") \
                if rel.startswith("src" + os.sep) else rel
            if not (rel in only or base in only or srcrel in only):
                errors.append(
                    f"edge {src} -> {dst} is narrowed to "
                    f"{sorted(only)} but includes '{rel}': "
                    f"{witness_chain(w, parent, root)}")

    # Reachability: nothing in libsim may reach libharness. Walk the
    # directory graph restricted to non-exempt sources.
    adj = {}
    for (src, dst) in edges:
        if rules.group(src) in rules.exempt_groups:
            continue
        adj.setdefault(src, set()).add(dst)
    for start in sorted(adj):
        if rules.group(start) != "libsim":
            continue
        seen, stack = {start}, [start]
        while stack:
            n = stack.pop()
            for m in adj.get(n, ()):
                if rules.group(m) == "libharness":
                    witness = edges[(n, m)][0]
                    errors.append(
                        f"core directory '{start}' reaches harness "
                        f"directory '{m}' via '{n}': "
                        f"{witness_chain(witness, parent, root)}")
                elif m not in seen:
                    seen.add(m)
                    stack.append(m)

    cyc = find_cycle(adj)
    if cyc:
        errors.append("include cycle between directories: " +
                      " -> ".join(cyc))

    if errors:
        print(f"layering_lint: {len(errors)} violation(s):",
              file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"layering_lint: clean "
          f"({len(entries)} TUs, {len(edges)} cross-directory edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
