#!/usr/bin/env bash
# clang-tidy over the simulator sources, driven by the exported
# compile_commands.json. Invoked by the CMake `lint` target (which
# sets EBCP_BUILD_DIR) or directly:
#
#   EBCP_BUILD_DIR=build scripts/lint.sh [extra clang-tidy args...]
#
# Degrades to a no-op notice when clang-tidy is not installed, so CI
# recipes and scripts/check.sh can call it unconditionally.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${EBCP_BUILD_DIR:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint: clang-tidy not found on PATH; skipping (install" \
         "clang-tidy to enable static analysis)"
    exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    echo "lint: ${BUILD_DIR}/compile_commands.json not found;" \
         "configure first: cmake -B ${BUILD_DIR}" >&2
    exit 1
fi

# Lint the library sources; headers are covered through inclusion via
# the .clang-tidy HeaderFilterRegex.
mapfile -t SOURCES < <(find src -name '*.cc' | sort)

echo "lint: clang-tidy ($(clang-tidy --version | sed -n 's/.*version /version /p' | head -1))" \
     "over ${#SOURCES[@]} files"

if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "${BUILD_DIR}" "$@" "${SOURCES[@]}"
else
    clang-tidy -quiet -p "${BUILD_DIR}" "$@" "${SOURCES[@]}"
fi

echo "lint: clean"
