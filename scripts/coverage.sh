#!/usr/bin/env bash
# Line-coverage floor for the untrusted-input parsers.
#
# Builds a --coverage (gcov) configuration, drives the parser test
# suites plus every fuzz corpus replay through it, then measures line
# coverage of the four translation units that parse attacker-supplied
# bytes and fails if any of them dips under the floor:
#
#     src/trace/trace_file.cc      EBCPTRC trace container
#     src/ckpt/checkpoint.cc       EBCPCKPT checkpoint container
#     src/util/json.cc             JSON parser
#     src/util/config.cc           key=value CLI/config parser
#
# Usage:
#     scripts/coverage.sh              # build, run, report, enforce
#     EBCP_COV_FLOOR=85 scripts/coverage.sh
#
# The floor intentionally applies only to the parser TUs: they are the
# attack surface the fuzz subsystem exists for, and unlike whole-tree
# coverage the number is actionable -- an uncovered line here is an
# unexercised path through hostile input handling.
#
# Uses gcov (GCC) or llvm-cov gcov, whichever exists. Build dir:
# build-coverage.
set -euo pipefail

cd "$(dirname "$0")/.."

FLOOR="${EBCP_COV_FLOOR:-80}"
JOBS="${EBCP_CHECK_JOBS:-$(nproc)}"
BUILD=build-coverage

GCOV=""
if command -v gcov >/dev/null 2>&1; then
    GCOV="gcov"
elif command -v llvm-cov >/dev/null 2>&1; then
    GCOV="llvm-cov gcov"
else
    echo "coverage: neither gcov nor llvm-cov found; cannot measure" >&2
    exit 2
fi

echo "== coverage build (--coverage, LTO off) =="
cmake -B "${BUILD}" \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS=--coverage \
      -DEBCP_LTO=OFF >/dev/null
cmake --build "${BUILD}" -j "${JOBS}" >/dev/null

# Drop counters from previous runs: stale .gcda files both skew the
# percentages upward and trip libgcov checksum warnings after a
# recompile.
find "${BUILD}" -name '*.gcda' -delete

echo "== exercising parsers (tests + fuzz corpus replays) =="
# Everything that feeds the four parser TUs: the trace/ckpt/json/config
# unit suites and all five corpus replays. -R keeps the run focused;
# the whole suite would work too, just slower.
ctest --test-dir "${BUILD}" -j "${JOBS}" --output-on-failure \
      -R 'Trace|Ckpt|ckpt_|Json|Config|fuzz_replay_' >/dev/null

# Dense mutation smoke adds the corrupt-input paths a clean corpus
# misses (fixed seed: deterministic coverage).
for t in trace_reader json config; do
    "${BUILD}/fuzz/fuzz_${t}" --smoke 4000 --seed 1 \
        "fuzz/corpus/${t}" "fuzz/corpus/regressions/${t}" >/dev/null
done
for t in ckpt_restore ckpt_audit; do
    "${BUILD}/fuzz/fuzz_${t}" --smoke 60 --seed 1 \
        "fuzz/corpus/${t}" "fuzz/corpus/regressions/${t}" >/dev/null
done

echo "== per-TU line coverage (floor ${FLOOR}%) =="
# CMake object files are named <src>.cc.o, so the matching coverage
# notes/data are <src>.cc.gcno/.gcda next to them; hand gcov the gcda
# path directly (gcov's -o objdir mode would look for <src>.gcno and
# miss the extra .cc).
declare -A TU_GCDA=(
    [src/trace/trace_file.cc]="${BUILD}/src/CMakeFiles/ebcp_trace.dir/trace/trace_file.cc.gcda"
    [src/ckpt/checkpoint.cc]="${BUILD}/src/CMakeFiles/ebcp_ckpt.dir/ckpt/checkpoint.cc.gcda"
    [src/util/json.cc]="${BUILD}/src/CMakeFiles/ebcp_util.dir/util/json.cc.gcda"
    [src/util/config.cc]="${BUILD}/src/CMakeFiles/ebcp_util.dir/util/config.cc.gcda"
)

fail=0
printf '%-28s %10s %8s\n' "TU" "exec-lines" "percent"
for tu in src/trace/trace_file.cc src/ckpt/checkpoint.cc \
          src/util/json.cc src/util/config.cc; do
    gcda="${TU_GCDA[$tu]}"
    # gcov prints, for each file the TU pulled in:
    #   File '/abs/path/src/util/json.cc'
    #   Lines executed:93.21% of 324
    # Take the block whose File line names this TU (substring match
    # covers both relative and absolute spellings).
    line=$(${GCOV} -n "${gcda}" 2>/dev/null |
           awk -v f="${tu}" '
               /^File /   { hit = index($0, f) > 0 }
               hit && /^Lines executed:/ {
                   split($0, a, ":"); split(a[2], b, "% of ");
                   printf "%s %s", b[2], b[1]; exit
               }' || true)
    if [[ -z "${line}" ]]; then
        printf '%-28s %10s %8s  MISSING\n' "${tu}" "-" "-"
        fail=1
        continue
    fi
    total=${line%% *}
    pct=${line##* }
    ok=$(awk -v p="${pct}" -v f="${FLOOR}" \
             'BEGIN { print (p + 0 >= f + 0) ? 1 : 0 }')
    mark=""
    [[ "${ok}" == "1" ]] || { mark="  BELOW FLOOR"; fail=1; }
    printf '%-28s %10s %7s%%%s\n' "${tu}" "${total}" "${pct}" "${mark}"
done

if [[ "${fail}" != "0" ]]; then
    echo "coverage: FAILED -- a parser TU is below ${FLOOR}% line" \
         "coverage" >&2
    exit 1
fi
echo "coverage: all parser TUs at or above ${FLOOR}%"
