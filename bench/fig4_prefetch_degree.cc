/**
 * @file
 * Reproduces Figure 4: overall performance improvement of the
 * epoch-based correlation prefetcher as the prefetch degree is
 * limited, starting from the idealized predictor (8M-entry table,
 * 1024-entry prefetch buffer).
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace ebcp;
using namespace ebcp::bench;

int
main(int argc, char **argv)
{
    BenchSweep sweep(argc, argv);
    banner("Figure 4: effect of limiting the number of prefetches",
           "Figure 4 (Section 5.2.1)", sweep.scale());

    const std::vector<unsigned> degrees{1, 2, 4, 8, 16, 32};

    AsciiTable t("Overall performance improvement (%) vs prefetch degree"
                 " -- idealized predictor");
    std::vector<std::string> header{"workload"};
    for (unsigned d : degrees)
        header.push_back("deg " + std::to_string(d));
    t.setHeader(header);

    std::map<std::string, std::vector<std::size_t>> series;
    for (const auto &w : workloadNames()) {
        sweep.addBaseline(w);
        for (unsigned d : degrees) {
            SimConfig cfg;
            cfg.prefetchBufferEntries = 1024; // idealized buffer
            PrefetcherParams p;
            p.name = "ebcp";
            p.ebcp.prefetchDegree = d;
            p.ebcp.tableEntries = 1ULL << 23; // idealized 8M entries
            p.ebcp.emabAddrsPerEntry = 32;
            series[w].push_back(sweep.add(w, cfg, p));
        }
    }
    sweep.execute();

    for (const auto &w : workloadNames())
        t.addRow(w, sweep.improvementRow(w, series[w]));
    t.print(std::cout);

    std::cout << "\nExpected shape (paper): improvement grows with degree"
                 " at the default\n  9.6 GB/s read bandwidth on all four"
                 " workloads; paper reports 34%/19%/43%/38%\n  at degree"
                 " 32 (database/tpcw/specjbb/specjas).\n";
    return 0;
}
