/**
 * @file
 * Extension bench: ablation of the EBCP design choices the paper
 * argues for (DESIGN.md's per-experiment index calls these out).
 *
 *  1. epoch-skip   -- EBCP records epochs i+2/i+3 and deliberately
 *                     skips i+1 (vs EBCP-minus, which records i+1/i+2:
 *                     Figure 9's ablation);
 *  2. train-all    -- Section 3.4.2's alternative implementation that
 *                     keys every miss of the oldest epoch ("requires
 *                     larger tables and only improves performance
 *                     marginally");
 *  3. on-chip table -- an impossible-to-build instantaneous table:
 *                     how much of the gap between EBCP and an ideal
 *                     correlation prefetcher is the cost of the
 *                     main-memory table (Section 3.2's latency-hiding
 *                     insight is what keeps this gap small);
 *  4. degree-8 vs paper-tuned degree and table settings.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace ebcp;
using namespace ebcp::bench;

int
main(int argc, char **argv)
{
    BenchSweep sweep(argc, argv);
    banner("Extension: EBCP design-choice ablation",
           "Sections 3.1, 3.2, 3.4.2 / Figure 9's EBCP-minus",
           sweep.scale());

    struct Variant
    {
        std::string label;
        bool minus;
        bool trainAll;
        bool onChip;
    };
    const std::vector<Variant> variants{
        {"ebcp (paper design)", false, false, false},
        {"ebcp-minus (no epoch skip)", true, false, false},
        {"ebcp + train-all-misses", false, true, false},
        {"ebcp + ideal on-chip table", false, false, true},
        {"ebcp-minus + on-chip table", true, false, true},
    };

    AsciiTable t("Overall performance improvement (%) -- degree 8,"
                 " 1M-entry table");
    std::vector<std::string> header{"variant"};
    for (const auto &w : workloadNames())
        header.push_back(w);
    t.setHeader(header);

    for (const auto &w : workloadNames())
        sweep.addBaseline(w);
    std::vector<std::vector<std::size_t>> idx;
    for (const auto &v : variants) {
        std::vector<std::size_t> row;
        for (const auto &w : workloadNames()) {
            SimConfig cfg;
            PrefetcherParams p;
            p.name = "ebcp";
            p.ebcp.prefetchDegree = 8;
            p.ebcp.minusVariant = v.minus;
            p.ebcp.trainAllOldestMisses = v.trainAll;
            p.ebcp.onChipTable = v.onChip;
            row.push_back(sweep.add(w, cfg, p));
        }
        idx.push_back(std::move(row));
    }
    sweep.execute();

    const std::vector<std::string> workloads = workloadNames();
    for (std::size_t v = 0; v < variants.size(); ++v) {
        std::vector<double> row;
        for (std::size_t k = 0; k < workloads.size(); ++k)
            row.push_back(sweep.improvement(workloads[k], idx[v][k]));
        t.addRow(variants[v].label, row);
    }
    t.print(std::cout);

    std::cout <<
        "\nExpected shape: with the main-memory table, the paper design"
        " beats\n  EBCP-minus (epoch i+1's prefetches cannot be timely"
        " after a memory-\n  latency table read, so recording i+1 wastes"
        " slots). With an ideal\n  zero-latency table the relationship"
        " INVERTS -- i+1 becomes coverable and\n  recording it wins --"
        " showing the epoch skip is correct precisely because\n  the"
        " table lives in main memory: the paper's Section 3.1/3.2 design"
        "\n  choices are coupled. Train-all adds little (Section 3.4.2's"
        " finding),\n  and the on-chip table's modest edge over the"
        " main-memory one quantifies\n  how much latency the epoch trick"
        " already hides.\n";
    return 0;
}
