/**
 * @file
 * Extension bench (the paper's Section 6 future work): the
 * epoch-based correlation prefetcher on a chip multiprocessor with a
 * shared L2.
 *
 * Compares, at 1/2/4 cores, each against the no-prefetching baseline
 * at the same core count:
 *
 *  - EBCP with per-core EMABs/epoch tracking (the paper's proposed
 *    CMP design: the control in front of the crossbar sees each
 *    core's stream),
 *  - EBCP with a single shared epoch state (what a controller that
 *    cannot attribute requests to cores would see), and
 *  - Solihin 6,1, whose memory-side engine inherently observes the
 *    interleaved stream (Section 3.3.1's argument).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "util/str.hh"

using namespace ebcp;
using namespace ebcp::bench;

int
main(int argc, char **argv)
{
    BenchSweep sweep(argc, argv);
    // CMP runs are per-core windows; keep the default total work
    // comparable to the single-core benches.
    RunScale scale = sweep.scale();
    scale.warm /= 2;
    scale.measure /= 2;

    banner("Extension: EBCP on a chip multiprocessor (shared L2)",
           "Section 6 (future work) + Section 3.3.1's interleaving"
           " argument",
           scale);

    const std::string workload = "database";
    const std::vector<unsigned> core_counts{1, 2, 4, 8};

    AsciiTable t("database: improvement (%) over the same-core-count"
                 " no-prefetching baseline");
    t.setHeader({"scheme", "1 core", "2 cores", "4 cores", "8 cores"});
    AsciiTable tc("database: coverage / accuracy (%)");
    tc.setHeader({"scheme", "1 core", "2 cores", "4 cores", "8 cores"});

    auto makeDesc = [&](const std::string &scheme, unsigned cores,
                        bool per_core_state) {
        RunDesc d;
        d.label = scheme + "/" + std::to_string(cores) + "c";
        d.workload = workload;
        d.scale = scale;
        d.cores = cores;
        d.pf.name = scheme;
        d.pf.ebcp.prefetchDegree = 8;
        d.pf.ebcp.tableEntries = 1ULL << 18;
        d.pf.solihin.tableEntries = 1ULL << 18;
        d.pf.ebcp.numCoreStates = per_core_state ? cores : 1;
        return d;
    };

    std::vector<std::size_t> base_idx;
    for (unsigned n : core_counts) {
        RunDesc d = makeDesc("null", n, false);
        d.pf = PrefetcherParams{};
        d.pf.name = "null";
        d.label = "null/" + std::to_string(n) + "c";
        base_idx.push_back(sweep.add(std::move(d)));
    }

    struct Scheme
    {
        std::string label;
        std::string name;
        bool perCoreState;
    };
    const std::vector<Scheme> schemes{
        {"ebcp (per-core EMABs)", "ebcp", true},
        {"ebcp (shared epoch state)", "ebcp", false},
        {"solihin-6-1 (memory side)", "solihin-6-1", false},
    };
    std::vector<std::vector<std::size_t>> idx;
    for (const auto &s : schemes) {
        std::vector<std::size_t> row;
        for (unsigned n : core_counts)
            row.push_back(sweep.add(makeDesc(s.name, n, s.perCoreState)));
        idx.push_back(std::move(row));
    }
    sweep.execute();

    std::vector<double> base_cpi;
    for (std::size_t b : base_idx)
        base_cpi.push_back(sweep.result(b).cpi);
    {
        AsciiTable tb("baseline aggregate CPI per core count");
        tb.setHeader({"", "1 core", "2 cores", "4 cores", "8 cores"});
        tb.addRow("no-prefetch CPI", base_cpi);
        tb.print(std::cout);
    }

    for (std::size_t s = 0; s < schemes.size(); ++s) {
        std::vector<double> row;
        std::vector<std::string> covrow{schemes[s].label};
        for (std::size_t k = 0; k < core_counts.size(); ++k) {
            const SimResults &r = sweep.result(idx[s][k]);
            row.push_back((base_cpi[k] / r.cpi - 1.0) * 100.0);
            covrow.push_back(fmtDouble(r.coverage * 100.0, 1) + " / " +
                             fmtDouble(r.accuracy * 100.0, 1));
        }
        t.addRow(schemes[s].label, row);
        tc.addRow(covrow);
    }
    t.print(std::cout);
    tc.print(std::cout);

    std::cout <<
        "\nExpected shape: per-core EMABs hold EBCP's gains as cores"
        " scale, while\n  schemes that see only an interleaved stream"
        " degrade: the shared-epoch\n  variant collapses immediately and"
        " the memory-side scheme's depth-keyed\n  successor lists break"
        " down once the interleave factor approaches its\n  depth --"
        " EBCP with per-core EMABs overtakes it by 8 cores. This is the"
        "\n  paper's Section 3.3.1 argument for placing the prefetcher"
        " control in\n  front of the core-to-L2 crossbar.\n";
    return 0;
}
