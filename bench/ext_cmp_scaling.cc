/**
 * @file
 * Extension bench (the paper's Section 6 future work): the
 * epoch-based correlation prefetcher on a chip multiprocessor with a
 * shared L2.
 *
 * Compares, at 1/2/4 cores, each against the no-prefetching baseline
 * at the same core count:
 *
 *  - EBCP with per-core EMABs/epoch tracking (the paper's proposed
 *    CMP design: the control in front of the crossbar sees each
 *    core's stream),
 *  - EBCP with a single shared epoch state (what a controller that
 *    cannot attribute requests to cores would see), and
 *  - Solihin 6,1, whose memory-side engine inherently observes the
 *    interleaved stream (Section 3.3.1's argument).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "sim/cmp_system.hh"
#include "util/str.hh"

using namespace ebcp;
using namespace ebcp::bench;

int
main(int argc, char **argv)
{
    RunScale scale = resolveScale(argc, argv);
    // CMP runs are per-core windows; keep the default total work
    // comparable to the single-core benches.
    scale.warm /= 2;
    scale.measure /= 2;

    banner("Extension: EBCP on a chip multiprocessor (shared L2)",
           "Section 6 (future work) + Section 3.3.1's interleaving"
           " argument",
           scale);

    const std::string workload = "database";
    const std::vector<unsigned> core_counts{1, 2, 4, 8};

    AsciiTable t("database: improvement (%) over the same-core-count"
                 " no-prefetching baseline");
    t.setHeader({"scheme", "1 core", "2 cores", "4 cores", "8 cores"});
    AsciiTable tc("database: coverage / accuracy (%)");
    tc.setHeader({"scheme", "1 core", "2 cores", "4 cores", "8 cores"});

    std::vector<double> base_cpi;
    for (unsigned n : core_counts) {
        PrefetcherParams none;
        none.name = "null";
        SimConfig cfg;
        CmpResults r = runCmp(cfg, none, workload, n, scale.warm,
                              scale.measure);
        base_cpi.push_back(r.aggregateCpi);
    }
    {
        std::vector<double> row;
        for (double c : base_cpi)
            row.push_back(c);
        AsciiTable tb("baseline aggregate CPI per core count");
        tb.setHeader({"", "1 core", "2 cores", "4 cores", "8 cores"});
        tb.addRow("no-prefetch CPI", row);
        tb.print(std::cout);
    }

    auto sweep = [&](const std::string &label,
                     const std::string &scheme, bool per_core_state) {
        std::vector<double> row;
        std::vector<std::string> covrow{label};
        for (std::size_t k = 0; k < core_counts.size(); ++k) {
            const unsigned n = core_counts[k];
            SimConfig cfg;
            PrefetcherParams p;
            p.name = scheme;
            p.ebcp.prefetchDegree = 8;
            p.ebcp.tableEntries = 1ULL << 18;
            p.solihin.tableEntries = 1ULL << 18;
            p.ebcp.numCoreStates = per_core_state ? n : 1;
            CmpResults r = runCmp(cfg, p, workload, n, scale.warm,
                                  scale.measure);
            row.push_back((base_cpi[k] / r.aggregateCpi - 1.0) * 100.0);
            covrow.push_back(fmtDouble(r.coverage * 100.0, 1) + " / " +
                             fmtDouble(r.accuracy * 100.0, 1));
        }
        t.addRow(label, row);
        tc.addRow(covrow);
    };

    sweep("ebcp (per-core EMABs)", "ebcp", true);
    sweep("ebcp (shared epoch state)", "ebcp", false);
    sweep("solihin-6-1 (memory side)", "solihin-6-1", false);
    t.print(std::cout);
    tc.print(std::cout);

    std::cout <<
        "\nExpected shape: per-core EMABs hold EBCP's gains as cores"
        " scale, while\n  schemes that see only an interleaved stream"
        " degrade: the shared-epoch\n  variant collapses immediately and"
        " the memory-side scheme's depth-keyed\n  successor lists break"
        " down once the interleave factor approaches its\n  depth --"
        " EBCP with per-core EMABs overtakes it by 8 cores. This is the"
        "\n  paper's Section 3.3.1 argument for placing the prefetcher"
        " control in\n  front of the core-to-L2 crossbar.\n";
    return 0;
}
