/**
 * @file
 * Reproduces Figure 7: overall performance improvement as the number
 * of prefetch buffer entries is limited (degree 8, 1M-entry table).
 * The paper finds 64 entries (512B of storage) adequate.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace ebcp;
using namespace ebcp::bench;

int
main(int argc, char **argv)
{
    BenchSweep sweep(argc, argv);
    banner("Figure 7: effect of limiting prefetch buffer entries",
           "Figure 7 (Section 5.2.3)", sweep.scale());

    const std::vector<unsigned> sizes{16, 32, 64, 128, 256, 512, 1024};

    AsciiTable t("Overall performance improvement (%) vs prefetch"
                 " buffer entries (degree 8, 1M-entry table)");
    std::vector<std::string> header{"workload"};
    for (unsigned s : sizes)
        header.push_back(std::to_string(s));
    t.setHeader(header);

    std::map<std::string, std::vector<std::size_t>> idx;
    for (const auto &w : workloadNames()) {
        sweep.addBaseline(w);
        for (unsigned s : sizes) {
            SimConfig cfg;
            cfg.prefetchBufferEntries = s;
            PrefetcherParams p;
            p.name = "ebcp";
            p.ebcp.prefetchDegree = 8;
            p.ebcp.tableEntries = 1ULL << 20;
            idx[w].push_back(sweep.add(w, cfg, p));
        }
    }
    sweep.execute();

    for (const auto &w : workloadNames())
        t.addRow(w, sweep.improvementRow(w, idx[w]));
    t.print(std::cout);

    std::cout << "\nExpected shape (paper): a 64-entry buffer captures"
                 " nearly all of the\n  benefit; smaller buffers thrash,"
                 " larger ones add little. The paper's tuned\n  design"
                 " (degree 8, 1M entries, 64-entry buffer) achieves"
                 " 23%/13%/31%/26%\n  on database/tpcw/specjbb/specjas."
                 "\n";
    return 0;
}
