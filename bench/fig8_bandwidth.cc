/**
 * @file
 * Reproduces Figure 8: sensitivity of the epoch-based correlation
 * prefetcher to available memory bandwidth. Three bus configurations
 * (3.2/1.6, 6.4/3.2 and 9.6/4.8 GB/s read/write) are swept across
 * prefetch degrees.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace ebcp;
using namespace ebcp::bench;

int
main(int argc, char **argv)
{
    RunScale scale = resolveScale(argc, argv);
    banner("Figure 8: effect of available memory bandwidth",
           "Figure 8 (Section 5.2.4)", scale);

    const std::vector<unsigned> degrees{2, 4, 8, 16, 32};
    const std::vector<std::pair<std::string, double>> bws{
        {"3.2GB/s", 1.0 / 3.0},
        {"6.4GB/s", 2.0 / 3.0},
        {"9.6GB/s", 1.0},
    };

    for (const auto &w : workloadNames()) {
        AsciiTable t(w + ": overall performance improvement (%)");
        std::vector<std::string> header{"read bandwidth"};
        for (unsigned d : degrees)
            header.push_back("deg " + std::to_string(d));
        t.setHeader(header);

        for (const auto &[label, factor] : bws) {
            std::vector<SimResults> series;
            for (unsigned d : degrees) {
                SimConfig cfg;
                cfg.mem.scaleBandwidth(factor);
                cfg.prefetchBufferEntries = 1024;
                PrefetcherParams p;
                p.name = "ebcp";
                p.ebcp.prefetchDegree = d;
                p.ebcp.tableEntries = 1ULL << 20;
                p.ebcp.emabAddrsPerEntry = 32;
                series.push_back(run(w, cfg, p, scale));
            }
            // Improvements are relative to the *default-bandwidth*
            // baseline without prefetching, as in the paper.
            t.addRow(label, improvementRow(w, series, scale));
        }
        t.print(std::cout);
    }

    std::cout << "\nExpected shape (paper): with 9.6 GB/s, improvement"
                 " grows with degree;\n  with 6.4 GB/s the optimum"
                 " shifts to a middle degree for the memory-\n  intensive"
                 " workloads; with 3.2 GB/s large degrees hurt (dropped/"
                 "late\n  prefetches): the optimal degree shrinks with"
                 " available bandwidth.\n";
    return 0;
}
