/**
 * @file
 * Reproduces Figure 8: sensitivity of the epoch-based correlation
 * prefetcher to available memory bandwidth. Three bus configurations
 * (3.2/1.6, 6.4/3.2 and 9.6/4.8 GB/s read/write) are swept across
 * prefetch degrees.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace ebcp;
using namespace ebcp::bench;

int
main(int argc, char **argv)
{
    BenchSweep sweep(argc, argv);
    banner("Figure 8: effect of available memory bandwidth",
           "Figure 8 (Section 5.2.4)", sweep.scale());

    const std::vector<unsigned> degrees{2, 4, 8, 16, 32};
    const std::vector<std::pair<std::string, double>> bws{
        {"3.2GB/s", 1.0 / 3.0},
        {"6.4GB/s", 2.0 / 3.0},
        {"9.6GB/s", 1.0},
    };

    // idx[workload][bandwidth] -> run indices across degrees
    std::map<std::string, std::vector<std::vector<std::size_t>>> idx;
    for (const auto &w : workloadNames()) {
        sweep.addBaseline(w);
        for (const auto &[label, factor] : bws) {
            std::vector<std::size_t> row;
            for (unsigned d : degrees) {
                SimConfig cfg;
                cfg.mem.scaleBandwidth(factor);
                cfg.prefetchBufferEntries = 1024;
                PrefetcherParams p;
                p.name = "ebcp";
                p.ebcp.prefetchDegree = d;
                p.ebcp.tableEntries = 1ULL << 20;
                p.ebcp.emabAddrsPerEntry = 32;
                row.push_back(sweep.add(w, cfg, p));
            }
            idx[w].push_back(std::move(row));
        }
    }
    sweep.execute();

    for (const auto &w : workloadNames()) {
        AsciiTable t(w + ": overall performance improvement (%)");
        std::vector<std::string> header{"read bandwidth"};
        for (unsigned d : degrees)
            header.push_back("deg " + std::to_string(d));
        t.setHeader(header);

        for (std::size_t b = 0; b < bws.size(); ++b) {
            // Improvements are relative to the *default-bandwidth*
            // baseline without prefetching, as in the paper.
            t.addRow(bws[b].first, sweep.improvementRow(w, idx[w][b]));
        }
        t.print(std::cout);
    }

    std::cout << "\nExpected shape (paper): with 9.6 GB/s, improvement"
                 " grows with degree;\n  with 6.4 GB/s the optimum"
                 " shifts to a middle degree for the memory-\n  intensive"
                 " workloads; with 3.2 GB/s large degrees hurt (dropped/"
                 "late\n  prefetches): the optimal degree shrinks with"
                 " available bandwidth.\n";
    return 0;
}
