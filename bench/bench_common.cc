#include "bench/bench_common.hh"

#include <cstdlib>
#include <iostream>

namespace ebcp::bench
{

RunScale
resolveScale(int argc, char **argv)
{
    RunScale s;
    double scale = 1.0;
    if (const char *env = std::getenv("EBCP_BENCH_SCALE"))
        scale = std::atof(env);
    if (scale <= 0.0)
        scale = 1.0;
    s.warm = static_cast<std::uint64_t>(s.warm * scale);
    s.measure = static_cast<std::uint64_t>(s.measure * scale);

    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    s.warm = cs.getU64("warm", s.warm);
    s.measure = cs.getU64("measure", s.measure);
    return s;
}

void
banner(const std::string &title, const std::string &paper_ref,
       const RunScale &scale)
{
    std::cout << "\n==================================================="
                 "=========================\n"
              << title << "\n"
              << "Reproduces: " << paper_ref << "\n"
              << "Windows: warm " << scale.warm << " insts, measure "
              << scale.measure << " insts"
              << "  (override: warm=N measure=N or EBCP_BENCH_SCALE)\n"
              << "====================================================="
                 "=======================\n";
}

SimResults
run(const std::string &workload, const SimConfig &cfg,
    const PrefetcherParams &pf, const RunScale &scale)
{
    auto src = makeWorkload(workload);
    return runOnce(cfg, pf, *src, scale.warm, scale.measure);
}

const SimResults &
baseline(const std::string &workload, const RunScale &scale)
{
    static std::map<std::string, SimResults> cache;
    auto it = cache.find(workload);
    if (it == cache.end()) {
        PrefetcherParams null_pf;
        null_pf.name = "null";
        SimConfig cfg;
        it = cache.emplace(workload, run(workload, cfg, null_pf, scale))
                 .first;
    }
    return it->second;
}

std::vector<double>
improvementRow(const std::string &workload,
               const std::vector<SimResults> &series,
               const RunScale &scale)
{
    std::vector<double> out;
    const SimResults &base = baseline(workload, scale);
    out.reserve(series.size());
    for (const SimResults &r : series)
        out.push_back(improvementPct(base, r));
    return out;
}

} // namespace ebcp::bench
