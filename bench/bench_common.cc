#include "bench/bench_common.hh"

#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>

#include "harness/stats_json.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace ebcp::bench
{

RunScale
resolveScale(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    StatusOr<RunScale> s = harness::tryResolveScaleFromEnv(cs);
    if (!s.ok()) {
        std::cerr << "error resolving run scale: "
                  << s.status().toString()
                  << "\n(usage: warm=N measure=N overrides, or "
                     "EBCP_BENCH_SCALE=<positive factor>)\n";
        std::exit(2);
    }
    return s.value();
}

unsigned
resolveJobs(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    StatusOr<unsigned> jobs = harness::tryResolveJobsFromEnv(cs);
    if (!jobs.ok()) {
        std::cerr << "error resolving sweep jobs: "
                  << jobs.status().toString()
                  << "\n(usage: jobs=N override, or "
                     "EBCP_BENCH_JOBS=<positive integer>)\n";
        std::exit(2);
    }
    return jobs.value();
}

void
banner(const std::string &title, const std::string &paper_ref,
       const RunScale &scale)
{
    std::cout << "\n==================================================="
                 "=========================\n"
              << title << "\n"
              << "Reproduces: " << paper_ref << "\n"
              << "Windows: warm " << scale.warm << " insts, measure "
              << scale.measure << " insts"
              << "  (override: warm=N measure=N or EBCP_BENCH_SCALE)\n"
              << "====================================================="
                 "=======================\n";
}

SimResults
run(const std::string &workload, const SimConfig &cfg,
    const PrefetcherParams &pf, const RunScale &scale)
{
    auto src = makeWorkload(workload);
    return runOnce(cfg, pf, *src, scale.warm, scale.measure);
}

const SimResults &
baseline(const std::string &workload, const RunScale &scale)
{
    // Per-entry state so concurrent callers of *different* workloads
    // compute in parallel, while two callers of the same workload
    // compute it exactly once. unique_ptr gives the caller a stable
    // reference even as the map rehashes/rebalances around it.
    struct Entry
    {
        std::once_flag once;
        std::unique_ptr<SimResults> results;
    };
    static std::mutex map_mu;
    static std::map<std::string, Entry> cache;

    // Keying by scale as well closes a latent serial bug: two calls
    // with different windows used to alias one cache slot.
    const std::string key = workload + "@" + std::to_string(scale.warm) +
                            "+" + std::to_string(scale.measure);
    Entry *entry;
    {
        std::lock_guard<std::mutex> lock(map_mu);
        entry = &cache[key];
    }
    std::call_once(entry->once, [&]() {
        PrefetcherParams null_pf;
        null_pf.name = "null";
        SimConfig cfg;
        entry->results = std::make_unique<SimResults>(
            run(workload, cfg, null_pf, scale));
    });
    return *entry->results;
}

std::vector<double>
improvementRow(const std::string &workload,
               const std::vector<SimResults> &series,
               const RunScale &scale)
{
    std::vector<double> out;
    const SimResults &base = baseline(workload, scale);
    out.reserve(series.size());
    for (const SimResults &r : series)
        out.push_back(improvementPct(base, r));
    return out;
}

namespace
{

/** Sweep durability/telemetry knobs shared by every BenchSweep bench:
 * "telemetry_out=PATH" streams per-run progress as CRC-tagged JSON
 * lines, "metrics_out=PATH" keeps a Prometheus-style snapshot fresh
 * while the sweep runs (see harness/telemetry.hh). */
harness::SweepOptions
sweepOptionsFromArgs(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    harness::SweepOptions opts;
    opts.telemetryPath = cs.getString("telemetry_out", "");
    opts.metricsPath = cs.getString("metrics_out", "");
    return opts;
}

} // namespace

BenchSweep::BenchSweep(int argc, char **argv)
    : scale_(resolveScale(argc, argv)),
      jobs_(resolveJobs(argc, argv)),
      statsJsonPath_(
          ConfigStore::fromArgs(argc, argv).getString("stats_json", "")),
      runner_(jobs_, sweepOptionsFromArgs(argc, argv))
{
    // The largest paper sweep (fig9) enqueues ~50 descriptors; each
    // RunDesc embeds a SimConfig, so reallocation during add() copies
    // every queued config. One up-front reservation keeps enqueueing
    // copy-free; the descriptors themselves are the only per-run
    // SimConfig copies (SweepRunner takes the vector by const
    // reference).
    pending_.reserve(64);
}

std::size_t
BenchSweep::add(const std::string &workload, const SimConfig &cfg,
                const PrefetcherParams &pf)
{
    RunDesc d;
    d.workload = workload;
    d.cfg = cfg;
    d.pf = pf;
    d.scale = scale_;
    return add(std::move(d));
}

std::size_t
BenchSweep::add(RunDesc d)
{
    panic_if(executed_, "BenchSweep::add() after execute()");
    pending_.push_back(std::move(d));
    return pending_.size() - 1;
}

std::size_t
BenchSweep::addBaseline(const std::string &workload)
{
    auto it = baselines_.find(workload);
    if (it != baselines_.end())
        return it->second;
    RunDesc d;
    d.label = workload + "/baseline";
    d.workload = workload;
    d.pf.name = "null";
    d.scale = scale_;
    const std::size_t idx = add(std::move(d));
    baselines_.emplace(workload, idx);
    return idx;
}

void
BenchSweep::execute()
{
    panic_if(executed_, "BenchSweep::execute() called twice");
    executed_ = true;
    results_ = runner_.run(pending_);

    const harness::SweepStats &st = runner_.stats();
    std::cout << "sweep: " << st.launched << " runs (" << st.completed
              << " ok, " << st.failed << " failed) on " << st.jobs
              << (st.jobs == 1 ? " job" : " jobs") << " in "
              << fmtDouble(st.wallSeconds, 1) << "s, "
              << fmtDouble(st.instsPerSec() / 1e6, 2)
              << "M simulated insts/s\n";
    for (std::size_t i = 0; i < results_.size(); ++i)
        if (!results_[i].ok())
            std::cerr << "run " << harness::runLabel(pending_[i])
                      << " failed: " << results_[i].status.toString()
                      << "\n";

    if (!statsJsonPath_.empty()) {
        Status s = exportStatsJson(statsJsonPath_);
        fatal_if(!s.ok(), "stats_json export failed: ", s.toString());
        std::cout << "wrote " << statsJsonPath_ << " (schema "
                  << StatsJsonSchema << ", validated)\n";
    }
}

Status
BenchSweep::exportStatsJson(const std::string &path,
                            const std::string &source) const
{
    panic_if(!executed_, "BenchSweep::exportStatsJson() before execute()");

    std::ostringstream os;
    JsonWriter w(os);
    beginStatsJson(w, source);
    for (std::size_t i = 0; i < results_.size(); ++i) {
        const harness::RunResult &r = results_[i];
        if (!r.ok())
            continue;
        w.beginObject();
        w.kv("label", harness::runLabel(pending_[i]));
        w.key("results");
        writeSimResultsJson(w, r.results);
        w.endObject();
    }
    endStatsJson(w);

    std::ofstream out(path);
    if (!out)
        return ioError(logFormat("cannot open ", path, " for writing"));
    out << os.str();
    out.close();
    if (!out)
        return ioError(logFormat("short write to ", path));

    // Re-read and schema-check: the producer proves its own artifact.
    return validateStatsJsonFile(path);
}

const SimResults &
BenchSweep::result(std::size_t idx) const
{
    panic_if(!executed_, "BenchSweep::result() before execute()");
    panic_if(idx >= results_.size(), "BenchSweep run index out of range");
    const harness::RunResult &r = results_[idx];
    fatal_if(!r.ok(), "run ", harness::runLabel(pending_[idx]),
             " failed: ", r.status.toString());
    return r.results;
}

const SimResults &
BenchSweep::baseline(const std::string &workload) const
{
    auto it = baselines_.find(workload);
    panic_if(it == baselines_.end(), "no baseline enqueued for '",
             workload, "'");
    return result(it->second);
}

double
BenchSweep::improvement(const std::string &workload,
                        std::size_t idx) const
{
    return improvementPct(baseline(workload), result(idx));
}

std::vector<double>
BenchSweep::improvementRow(const std::string &workload,
                           const std::vector<std::size_t> &idxs) const
{
    std::vector<double> out;
    out.reserve(idxs.size());
    for (std::size_t idx : idxs)
        out.push_back(improvement(workload, idx));
    return out;
}

} // namespace ebcp::bench
