/**
 * @file
 * Reproduces Figure 6: overall performance improvement as the number
 * of correlation-table entries is limited (prefetch degree 8).
 *
 * Scaling note: the paper sweeps 64K..8M entries and finds 1M
 * sufficient. Our measurement windows (and hence trigger working
 * sets) are ~16x smaller than the paper's 150M+100M instruction
 * windows, so the knee appears ~16x lower; the sweep covers 1K..1M to
 * expose it. The shape -- flat above the knee, eroding below -- is
 * the reproduced result.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace ebcp;
using namespace ebcp::bench;

int
main(int argc, char **argv)
{
    BenchSweep sweep(argc, argv);
    banner("Figure 6: effect of limiting predictor table entries",
           "Figure 6 (Section 5.2.2)", sweep.scale());

    const std::vector<std::uint64_t> entries{
        1ULL << 10, 1ULL << 12, 1ULL << 14, 1ULL << 16, 1ULL << 18,
        1ULL << 20};

    AsciiTable t("Overall performance improvement (%) vs correlation"
                 " table entries (degree 8)");
    std::vector<std::string> header{"workload"};
    for (std::uint64_t e : entries)
        header.push_back(e >= (1ULL << 20)
                             ? std::to_string(e >> 20) + "M"
                             : std::to_string(e >> 10) + "K");
    t.setHeader(header);

    std::map<std::string, std::vector<std::size_t>> idx;
    for (const auto &w : workloadNames()) {
        sweep.addBaseline(w);
        for (std::uint64_t e : entries) {
            SimConfig cfg;
            PrefetcherParams p;
            p.name = "ebcp";
            p.ebcp.prefetchDegree = 8;
            p.ebcp.tableEntries = e;
            idx[w].push_back(sweep.add(w, cfg, p));
        }
    }
    sweep.execute();

    for (const auto &w : workloadNames())
        t.addRow(w, sweep.improvementRow(w, idx[w]));
    t.print(std::cout);

    std::cout << "\nExpected shape (paper): performance is flat above"
                 " the knee and erodes\n  sharply below it; in the paper"
                 " the knee is at ~1M entries (64MB), here it\n  appears"
                 " ~16x lower because the measured windows are ~16x"
                 " shorter.\n";
    return 0;
}
