/**
 * @file
 * Reproduces Figure 9: the epoch-based correlation prefetcher versus
 * GHB PC/DC (small/large), the tag correlating prefetcher
 * (small/large), a stream prefetcher, spatial memory streaming,
 * Solihin's memory-side correlation prefetcher (3,2 and 6,1), and the
 * EBCP-minus ablation. All prefetchers use degree 6 and a 64-entry
 * prefetch buffer, per the paper's fairness rules.
 *
 * Table-size scaling: the paper gives EBCP and Solihin 1M-entry
 * main-memory tables, which is exactly the knee of Figure 6 at paper
 * scale. Our windows are ~16x shorter, so the scaled equivalent (64K
 * entries) is used; see EXPERIMENTS.md.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace ebcp;
using namespace ebcp::bench;

int
main(int argc, char **argv)
{
    BenchSweep sweep(argc, argv);
    banner("Figure 9: performance comparison with other prefetchers",
           "Figure 9 (Section 5.3)", sweep.scale());

    const std::vector<std::string> schemes{
        "stream",      "ghb-small", "ghb-large", "tcp-small",
        "tcp-large",   "sms",       "solihin-3-2", "solihin-6-1",
        "dcpt",        "amc",       "composite",   "ebcp-minus",
        "ebcp"};

    AsciiTable t("Overall performance improvement (%) relative to no"
                 " prefetching");
    std::vector<std::string> header{"scheme"};
    for (const auto &w : workloadNames())
        header.push_back(w);
    t.setHeader(header);

    AsciiTable cov("Coverage (%)");
    cov.setHeader(header);
    AsciiTable acc("Accuracy (%)");
    acc.setHeader(header);

    for (const auto &w : workloadNames())
        sweep.addBaseline(w);
    std::map<std::string, std::vector<std::size_t>> idx;
    for (const auto &scheme : schemes) {
        for (const auto &w : workloadNames()) {
            SimConfig cfg;
            PrefetcherParams p;
            p.name = scheme;
            p.ebcp.prefetchDegree = 6;
            p.ebcp.tableEntries = 1ULL << 16;   // scaled 1M
            p.solihin.tableEntries = 1ULL << 16; // scaled 1M
            p.dcpt.degree = 6;
            p.amc.degree = 6;
            idx[scheme].push_back(sweep.add(w, cfg, p));
        }
    }
    sweep.execute();

    for (const auto &scheme : schemes) {
        std::vector<double> imps, covs, accs;
        const std::vector<std::string> workloads = workloadNames();
        for (std::size_t k = 0; k < workloads.size(); ++k) {
            const SimResults &r = sweep.result(idx[scheme][k]);
            imps.push_back(sweep.improvement(workloads[k],
                                             idx[scheme][k]));
            covs.push_back(r.coverage * 100.0);
            accs.push_back(r.accuracy * 100.0);
        }
        t.addRow(scheme, imps);
        cov.addRow(scheme, covs);
        acc.addRow(scheme, accs);
    }
    t.print(std::cout);
    cov.print(std::cout);
    acc.print(std::cout);

    std::cout <<
        "\nExpected shape (paper): EBCP wins on all four workloads"
        " (20/12/28/24%),\n  ahead of Solihin 6,1 (13/8/20/16%); EBCP >"
        " EBCP-minus everywhere;\n  Solihin 6,1 > Solihin 3,2 (depth"
        " beats width); sub-1MB on-chip schemes\n  (GHB small, TCP"
        " small, stream) are ineffective; SMS attains high\n  coverage"
        " but removes few epochs, and fails on the instruction-miss-"
        "heavy\n  tpcw/specjas (it does not prefetch instructions).\n"
        "Known deviation: at this simulator's scaled recurrence,"
        " Solihin 6,1's\n  deeper per-miss successor lists close most of"
        " the gap to EBCP and can\n  edge it out on the low-MLP"
        " workloads; see EXPERIMENTS.md for analysis.\n";
    return 0;
}
