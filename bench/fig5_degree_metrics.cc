/**
 * @file
 * Reproduces Figure 5: the secondary metrics of the prefetch-degree
 * sweep -- EPI reduction, post-prefetch L2 instruction/load miss
 * rates, coverage and accuracy.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace ebcp;
using namespace ebcp::bench;

int
main(int argc, char **argv)
{
    BenchSweep sweep(argc, argv);
    banner("Figure 5: EPI, L2 miss rates, coverage and accuracy vs "
           "prefetch degree",
           "Figure 5 (Section 5.2.1)", sweep.scale());

    const std::vector<unsigned> degrees{1, 2, 4, 8, 16, 32};

    std::map<std::string, std::vector<std::size_t>> idx;
    for (const auto &w : workloadNames()) {
        sweep.addBaseline(w);
        for (unsigned d : degrees) {
            SimConfig cfg;
            cfg.prefetchBufferEntries = 1024;
            PrefetcherParams p;
            p.name = "ebcp";
            p.ebcp.prefetchDegree = d;
            p.ebcp.tableEntries = 1ULL << 23;
            p.ebcp.emabAddrsPerEntry = 32;
            idx[w].push_back(sweep.add(w, cfg, p));
        }
    }
    sweep.execute();

    for (const auto &w : workloadNames()) {
        const SimResults &base = sweep.baseline(w);

        AsciiTable t(w);
        std::vector<std::string> header{"metric", "no-pf"};
        for (unsigned d : degrees)
            header.push_back("deg " + std::to_string(d));
        t.setHeader(header);

        std::vector<SimResults> series;
        for (std::size_t i : idx[w])
            series.push_back(sweep.result(i));

        auto row = [&](const std::string &label, auto getter,
                       double base_v) {
            std::vector<double> vals{base_v};
            for (const SimResults &r : series)
                vals.push_back(getter(r));
            t.addRow(label, vals);
        };

        row("epochs / 1000 insts",
            [](const SimResults &r) { return r.epochsPer1k; },
            base.epochsPer1k);
        row("EPI reduction %",
            [&](const SimResults &r) {
                return epiReductionPct(base, r);
            },
            0.0);
        row("L2 inst miss / 1000",
            [](const SimResults &r) { return r.l2InstMissPer1k; },
            base.l2InstMissPer1k);
        row("L2 load miss / 1000",
            [](const SimResults &r) { return r.l2LoadMissPer1k; },
            base.l2LoadMissPer1k);
        row("coverage %",
            [](const SimResults &r) { return r.coverage * 100.0; }, 0.0);
        row("accuracy %",
            [](const SimResults &r) { return r.accuracy * 100.0; }, 0.0);
        t.print(std::cout);
    }

    std::cout << "\nExpected shape (paper): coverage and EPI reduction"
                 " track each other\n  (the prefetcher removes epochs,"
                 " not just misses); accuracy falls as the\n  degree"
                 " grows; both miss-rate components drop.\n";
    return 0;
}
