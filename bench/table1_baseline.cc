/**
 * @file
 * Reproduces Table 1: baseline (no prefetching) CPI, epochs per 1000
 * instructions, and L2 instruction/load miss rates for the four
 * commercial workloads.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace ebcp;
using namespace ebcp::bench;

int
main(int argc, char **argv)
{
    BenchSweep sweep(argc, argv);
    banner("Table 1: baseline processor without correlation prefetching",
           "Table 1 (Section 5.1)", sweep.scale());

    AsciiTable t("Baseline statistics (paper values in parentheses)");
    t.setHeader({"metric", "database", "tpcw", "specjbb", "specjas"});

    for (const auto &w : workloadNames())
        sweep.addBaseline(w);
    sweep.execute();

    std::vector<SimResults> rs;
    for (const auto &w : workloadNames())
        rs.push_back(sweep.baseline(w));

    t.addRow("CPI_overall",
             {rs[0].cpi, rs[1].cpi, rs[2].cpi, rs[3].cpi});
    t.addRow({"  (paper)", "3.27", "2.00", "2.06", "2.78"});
    t.addRow("epochs / 1000 insts",
             {rs[0].epochsPer1k, rs[1].epochsPer1k, rs[2].epochsPer1k,
              rs[3].epochsPer1k});
    t.addRow({"  (paper)", "4.07", "1.59", "2.65", "3.25"});
    t.addRow("L2 inst miss / 1000",
             {rs[0].l2InstMissPer1k, rs[1].l2InstMissPer1k,
              rs[2].l2InstMissPer1k, rs[3].l2InstMissPer1k});
    t.addRow({"  (paper)", "1.00", "0.71", "0.12", "1.57"});
    t.addRow("L2 load miss / 1000",
             {rs[0].l2LoadMissPer1k, rs[1].l2LoadMissPer1k,
              rs[2].l2LoadMissPer1k, rs[3].l2LoadMissPer1k});
    t.addRow({"  (paper)", "6.23", "1.27", "4.30", "2.64"});
    t.print(std::cout);

    std::cout << "\nExpected shape: database is the most miss-intensive;"
                 "\n  specjbb has a tiny instruction footprint; specjas"
                 " the largest;\n  tpcw is the lightest overall.\n";
    return 0;
}
