/**
 * @file
 * Micro-benchmarks (google-benchmark) for the hot components of the
 * simulator: useful when optimizing the simulator itself, and as a
 * regression guard on simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "core/correlation_table.hh"
#include "cpu/core_model.hh"
#include "prefetch/ghb.hh"
#include "sim/api.hh"
#include "trace/workloads.hh"
#include "util/random.hh"

using namespace ebcp;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.name = "bm";
    cfg.sizeBytes = 2 * MiB;
    cfg.ways = 4;
    Cache cache(cfg);
    Pcg32 rng(1);
    for (auto _ : state) {
        Addr a = (rng.next() & 0xffffff) << 6;
        if (!cache.access(a, false))
            cache.fill(a);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_CorrTableUpdate(benchmark::State &state)
{
    CorrTableConfig cfg;
    cfg.entries = 1ULL << 20;
    cfg.addrsPerEntry = 8;
    CorrelationTable table(cfg);
    Pcg32 rng(2);
    std::vector<Addr> payload(4);
    for (auto _ : state) {
        Addr key = (rng.next() & 0xfffff) << 6;
        for (auto &p : payload)
            p = (rng.next() & 0xfffff) << 6;
        table.update(key, payload);
    }
}
BENCHMARK(BM_CorrTableUpdate);

void
BM_CorrTableLookup(benchmark::State &state)
{
    CorrTableConfig cfg;
    cfg.entries = 1ULL << 16;
    cfg.addrsPerEntry = 8;
    CorrelationTable table(cfg);
    Pcg32 rng(3);
    for (int i = 0; i < 10000; ++i)
        table.update((rng.next() & 0xffff) << 6,
                     {0x1000, 0x2000, 0x3000});
    std::vector<Addr> out;
    Pcg32 probe(4);
    for (auto _ : state) {
        table.lookup((probe.next() & 0xffff) << 6, out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_CorrTableLookup);

void
BM_GhbObserve(benchmark::State &state)
{
    GhbPrefetcher ghb(GhbConfig::large());
    class NullEngine : public PrefetchEngine
    {
        void
        issuePrefetch(Addr, Tick, std::uint64_t, bool, unsigned) override
        {}
        MemAccessResult
        tableRead(Tick t) override
        {
            return {t, t + 500, false};
        }
        MemAccessResult
        tableWrite(Tick t) override
        {
            return {t, t + 1, false};
        }
        Tick memoryLatency() const override { return 500; }
    } eng;
    ghb.setEngine(&eng);
    Pcg32 rng(5);
    L2AccessInfo info;
    info.offChip = true;
    for (auto _ : state) {
        info.pc = 0x400 + (rng.next() & 0xff) * 4;
        info.lineAddr = (rng.next() & 0xffffff) << 6;
        ghb.observeAccess(info);
    }
}
BENCHMARK(BM_GhbObserve);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto w = makeWorkload("database");
    TraceRecord rec;
    for (auto _ : state) {
        w->next(rec);
        benchmark::DoNotOptimize(rec);
    }
}
BENCHMARK(BM_WorkloadGeneration);

void
BM_SimulatedInstruction(benchmark::State &state)
{
    // End-to-end simulation throughput (instructions per second).
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "ebcp";
    Simulator sim(cfg, p);
    auto w = makeWorkload("database");
    TraceRecord rec;
    for (auto _ : state) {
        w->next(rec);
        sim.core().process(rec);
    }
}
BENCHMARK(BM_SimulatedInstruction);

} // namespace

BENCHMARK_MAIN();
