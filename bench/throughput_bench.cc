/**
 * @file
 * Single-run simulator-throughput harness with hardware perf counters.
 *
 * Unlike the paper benches (which report *simulated* metrics), this
 * bench measures the simulator itself: simulated instructions per
 * wall-clock second for each Table 1 workload under the null and EBCP
 * prefetchers, alongside the hot-structure counters the hot-path
 * overhaul introduced (FlatMap probe statistics for the MSHR file,
 * correlation table and Solihin table; RecordRing churn for the trace
 * generator) and host cycles/instructions via perf_event_open when the
 * kernel allows it.
 *
 * Runs are strictly serial -- one Simulator at a time on one thread --
 * so the insts/sec numbers are comparable across commits and machines
 * without scheduler noise from the parallel sweep engine.
 *
 * Keys: warm=N measure=N (windows; EBCP_BENCH_SCALE honoured),
 *       pf=null,ebcp      (comma-separated prefetcher list),
 *       reps=N            (best-of-N per configuration; wall-clock
 *                          throughput is a max-estimator metric --
 *                          the fastest rep is the least-interfered
 *                          one, and simulated results are identical
 *                          across reps by construction),
 *       min_ips=N         (fail if any run is slower than N simulated
 *                          insts/sec; 0 disables -- the perf-smoke
 *                          ctest floor),
 *       max_ckpt_overhead=F (also re-run the grid with the checkpoint
 *                          wall deadline armed and fail if the
 *                          aggregate thread-CPU-time overhead vs the
 *                          baseline exceeds the fraction F; 0
 *                          disables),
 *       max_profiler_overhead=F (pair profiler-off/profiler-on runs
 *                          the same way and fail if the self-profiler
 *                          costs more than the fraction F; 0
 *                          disables),
 *       json=PATH         (machine-readable report; default
 *                          BENCH_throughput.json, json= to disable),
 *       stats_json=PATH   (per-run SimResults in the shared
 *                          "ebcp-stats-v1" schema; disabled by
 *                          default).
 *
 * Both JSON artifacts are re-read and re-parsed (stats_json is also
 * schema-validated) before exit; a bench that emits malformed JSON
 * fails, so ctest's well-formedness check is the bench's own exit
 * status.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "core/ebcp.hh"
#include "prefetch/solihin.hh"
#include "harness/stats_json.hh"
#include "stats/table.hh"
#include "util/json.hh"
#include "util/perf_counters.hh"
#include "util/profiler.hh"
#include "util/str.hh"

using namespace ebcp;
using namespace ebcp::bench;

namespace
{

/** Everything measured about one (workload, prefetcher) run. */
struct RunReport
{
    std::string workload;
    std::string pf;
    std::uint64_t insts = 0; //!< simulated instructions (warm + measure)
    double seconds = 0.0;
    double instsPerSec = 0.0;
    SimResults results;
    PerfSample host;

    FlatMapStats mshr;
    FlatMapStats corr;
    bool hasCorr = false;
    FlatMapStats solihin;
    bool hasSolihin = false;
    RingStats ring;
    std::uint64_t usefulPrefetches = 0;
};

RunReport
measureRun(const std::string &workload, const std::string &pf_name,
           const RunScale &scale, bool arm_deadline = false)
{
    RunReport rep;
    rep.workload = workload;
    rep.pf = pf_name;
    rep.insts = scale.warm + scale.measure;

    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = pf_name;
    Simulator sim(cfg, pf);
    auto src = makeWorkload(workload);

    // The armed-but-never-tripped wall deadline is the only
    // checkpoint machinery that touches the simulation hot loop; a
    // run with it armed measures the subsystem's steady-state cost
    // when no checkpoint is ever taken.
    if (arm_deadline)
        sim.core().setWallDeadline(std::chrono::steady_clock::now() +
                                   std::chrono::hours(1));

    PerfCounters counters;
    counters.start();
    const auto t0 = std::chrono::steady_clock::now();
    rep.results = sim.run(*src, scale.warm, scale.measure);
    const auto t1 = std::chrono::steady_clock::now();
    counters.stop();

    rep.seconds = std::chrono::duration<double>(t1 - t0).count();
    rep.instsPerSec =
        rep.seconds > 0.0 ? static_cast<double>(rep.insts) / rep.seconds
                          : 0.0;
    rep.host = counters.sample();

    rep.mshr = sim.l2side().mshrs().mapStats();
    rep.ring = src->ringStats();
    if (auto *e = dynamic_cast<EpochBasedPrefetcher *>(&sim.prefetcher())) {
        rep.corr = e->table().mapStats();
        rep.hasCorr = true;
    }
    if (auto *s = dynamic_cast<SolihinPrefetcher *>(&sim.prefetcher())) {
        rep.solihin = s->mapStats();
        rep.hasSolihin = true;
    }
    // Registered-once counters read back through the one-time
    // name lookup (hot paths bump the member objects directly).
    if (const Scalar *useful =
            sim.l2side().stats().findScalar("useful_prefetches"))
        rep.usefulPrefetches = useful->value();
    return rep;
}

// --- JSON emission -------------------------------------------------

void
jsonMapStats(std::ostream &os, const FlatMapStats &m)
{
    os << "{\"finds\": " << m.finds << ", \"hits\": " << m.hits
       << ", \"inserts\": " << m.inserts << ", \"erases\": " << m.erases
       << ", \"backshifts\": " << m.backshifts
       << ", \"rehashes\": " << m.rehashes << ", \"probes_per_find\": "
       << fmtDouble(m.probesPerFind(), 4) << ", \"groups_per_find\": "
       << fmtDouble(m.groupsPerFind(), 4) << "}";
}

void
jsonRun(std::ostream &os, const RunReport &r)
{
    os << "    {\"workload\": \"" << r.workload << "\", \"prefetcher\": \""
       << r.pf << "\",\n"
       << "     \"insts\": " << r.insts << ", \"seconds\": "
       << fmtDouble(r.seconds, 4) << ", \"insts_per_sec\": "
       << fmtDouble(r.instsPerSec, 0) << ",\n"
       << "     \"cpi\": " << fmtDouble(r.results.cpi, 6) << ",\n"
       << "     \"host\": {\"available\": "
       << (r.host.available ? "true" : "false")
       << ", \"estimated\": " << (r.host.estimated ? "true" : "false")
       << ", \"cycles\": " << r.host.cycles << ", \"instructions\": "
       << r.host.instructions << ", \"ipc\": "
       << fmtDouble(r.host.ipc(), 3) << ", \"cache_misses\": "
       << r.host.cacheMisses << ", \"branch_misses\": "
       << r.host.branchMisses << ",\n"
       << "              \"cpu_seconds\": "
       << fmtDouble(r.host.cpuSeconds, 4) << ", \"reason\": "
       << (r.host.reason.empty()
               ? std::string("null")
               : "\"" + jsonEscape(r.host.reason) + "\"")
       << ", \"nominal_hz\": " << fmtDouble(r.host.nominalHz, 0)
       << ", \"nominal_source\": \""
       << jsonEscape(r.host.nominalSource) << "\"},\n"
       << "     \"mshr\": ";
    jsonMapStats(os, r.mshr);
    os << ",\n     \"corr_table\": ";
    if (r.hasCorr)
        jsonMapStats(os, r.corr);
    else
        os << "null";
    os << ",\n     \"solihin_table\": ";
    if (r.hasSolihin)
        jsonMapStats(os, r.solihin);
    else
        os << "null";
    os << ",\n     \"record_ring\": {\"pushes\": " << r.ring.pushes
       << ", \"pops\": " << r.ring.pops << ", \"grows\": "
       << r.ring.grows << "},\n"
       << "     \"useful_prefetches\": " << r.usefulPrefetches << "}";
}

/** The ebcp-stats-v1 "host_counters" object: how the host cycle
 * numbers were obtained, or why they could not be. */
std::string
hostCountersJson(const PerfSample &h)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("available", h.available);
    w.kv("estimated", h.estimated);
    w.kv("reason", h.reason);
    w.kv("nominal_source", h.nominalSource);
    w.kv("nominal_hz", h.nominalHz);
    w.endObject();
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    Status known = cs.checkKnownKeys({"warm", "measure", "jobs", "pf",
                                      "reps", "min_ips",
                                      "max_ckpt_overhead",
                                      "max_profiler_overhead", "json",
                                      "stats_json"});
    if (!known.ok()) {
        std::cerr << "error: " << known.toString() << "\n";
        return 2;
    }
    const RunScale scale = resolveScale(argc, argv);
    const double min_ips = cs.getDouble("min_ips", 0.0);
    const double max_ckpt_overhead =
        cs.getDouble("max_ckpt_overhead", 0.0);
    const double max_profiler_overhead =
        cs.getDouble("max_profiler_overhead", 0.0);
    const std::string json_path =
        cs.getString("json", "BENCH_throughput.json");
    const std::string stats_json_path = cs.getString("stats_json", "");
    const std::vector<std::string> pfs =
        split(cs.getString("pf", "null,ebcp"), ',');
    const std::uint64_t reps = std::max<std::uint64_t>(
        cs.getU64("reps", 1), 1);

    banner("Simulator throughput: simulated insts/sec, per-structure "
           "probe statistics,\nand host perf counters",
           "infrastructure (no paper figure)", scale);

    // When the overhead budget is armed, base and deadline-armed reps
    // are interleaved back-to-back per configuration, and the
    // estimator is the median over reps of the paired armed/base
    // thread-CPU-time ratio. Back-to-back pairing cancels slow drift
    // (frequency, competing load), CPU time is immune to time slicing
    // outright, and the median discards the reps where a burst of
    // interference landed in one half of a pair -- a min or a mean
    // would let a single such rep swing a sub-percent gate.
    std::vector<RunReport> reports;
    double armed_sum = 0.0;
    double base_cpu_sum = 0.0;
    double prof_armed_sum = 0.0;
    double prof_base_sum = 0.0;
    const auto median = [](std::vector<double> v) {
        if (v.empty())
            return 1.0;
        std::sort(v.begin(), v.end());
        const std::size_t n = v.size();
        return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
    };
    for (const auto &w : workloadNames())
        for (const auto &pf : pfs) {
            RunReport best;
            std::vector<double> ratios;
            std::vector<double> prof_ratios;
            double base_cpu_best = 0.0;
            double prof_base_best = 0.0;
            for (std::uint64_t rep = 0; rep < reps; ++rep) {
                RunReport r = measureRun(w, pf, scale);
                const double base_cpu = r.host.cpuSeconds > 0.0
                                            ? r.host.cpuSeconds
                                            : r.seconds;
                if (rep == 0 || base_cpu < base_cpu_best)
                    base_cpu_best = base_cpu;
                if (rep == 0 || r.instsPerSec > best.instsPerSec)
                    best = std::move(r);
                if (max_ckpt_overhead > 0.0) {
                    const RunReport a = measureRun(w, pf, scale, true);
                    const double cpu = a.host.cpuSeconds > 0.0
                                           ? a.host.cpuSeconds
                                           : a.seconds;
                    ratios.push_back(base_cpu > 0.0 ? cpu / base_cpu
                                                    : 1.0);
                }
                if (max_profiler_overhead > 0.0) {
                    // Same paired back-to-back discipline as the
                    // checkpoint gate, with the profiler runtime
                    // switch as the armed/base axis.
                    prof::setEnabled(false);
                    prof::resetThisThread();
                    const RunReport off = measureRun(w, pf, scale);
                    prof::setEnabled(true);
                    prof::resetThisThread();
                    const RunReport on = measureRun(w, pf, scale);
                    const double cpu_off = off.host.cpuSeconds > 0.0
                                               ? off.host.cpuSeconds
                                               : off.seconds;
                    const double cpu_on = on.host.cpuSeconds > 0.0
                                              ? on.host.cpuSeconds
                                              : on.seconds;
                    if (prof_ratios.empty() ||
                        cpu_off < prof_base_best)
                        prof_base_best = cpu_off;
                    prof_ratios.push_back(
                        cpu_off > 0.0 ? cpu_on / cpu_off : 1.0);
                }
            }
            armed_sum += base_cpu_best * median(ratios);
            base_cpu_sum += base_cpu_best;
            prof_armed_sum += prof_base_best * median(prof_ratios);
            prof_base_sum += prof_base_best;
            std::cout << "  " << w << "/" << pf << ": "
                      << fmtDouble(best.instsPerSec / 1e6, 2)
                      << "M insts/s (" << fmtDouble(best.seconds, 2)
                      << "s"
                      << (reps > 1
                              ? ", best of " + std::to_string(reps)
                              : std::string())
                      << ")\n";
            reports.push_back(std::move(best));
        }

    AsciiTable t("Throughput and hot-structure statistics");
    t.setHeader({"run", "Minsts/s", "host IPC", "mshr p/f",
                 "corr p/f", "ring grows"});
    double worst_ips = reports.empty() ? 0.0 : reports[0].instsPerSec;
    for (const RunReport &r : reports) {
        worst_ips = std::min(worst_ips, r.instsPerSec);
        t.addRow({r.workload + "/" + r.pf,
                  fmtDouble(r.instsPerSec / 1e6, 2),
                  r.host.available ? fmtDouble(r.host.ipc(), 2) : "n/a",
                  fmtDouble(r.mshr.probesPerFind(), 3),
                  r.hasCorr ? fmtDouble(r.corr.probesPerFind(), 3)
                            : "n/a",
                  std::to_string(r.ring.grows)});
    }
    t.print(std::cout);
    if (!reports.empty() && !reports.front().host.available) {
        const PerfSample &h = reports.front().host;
        std::cout << "(host perf counters unavailable: "
                  << (h.reason.empty() ? "no reason recorded"
                                       : h.reason)
                  << "; insts/sec is wall-clock based and "
                     "unaffected)\n";
        if (h.estimated)
            std::cout << "(host cycles are CPU-time estimates at "
                      << fmtDouble(h.nominalHz / 1e9, 2)
                      << " GHz nominal, frequency from "
                      << h.nominalSource
                      << "; host instructions/IPC stay unreported)\n";
        else
            std::cout << "(no nominal frequency source: "
                      << h.nominalSource
                      << "; host cycles stay unreported)\n";
    }

    // Unused-checkpoint overhead: aggregate best-of-reps *CPU* time of
    // the deadline-armed interleaved runs against the baseline.
    // Aggregating over every run before dividing keeps the ratio
    // stable against per-run timer jitter, and thread CPU time (not
    // wall) keeps a time-shared host from flapping a sub-percent gate
    // with scheduler noise.
    double ckpt_overhead = 0.0;
    bool measured_overhead = false;
    if (max_ckpt_overhead > 0.0) {
        const double base_sum = base_cpu_sum;
        ckpt_overhead =
            base_sum > 0.0 ? (armed_sum - base_sum) / base_sum : 0.0;
        measured_overhead = true;
        std::cout << "checkpoint-machinery overhead (deadline armed, "
                     "never taken): "
                  << fmtDouble(ckpt_overhead * 100.0, 2) << "% ("
                  << fmtDouble(base_sum, 3) << "s -> "
                  << fmtDouble(armed_sum, 3) << "s)\n";
    }

    double prof_overhead = 0.0;
    bool measured_prof_overhead = false;
    if (max_profiler_overhead > 0.0) {
        prof_overhead = prof_base_sum > 0.0
                            ? (prof_armed_sum - prof_base_sum) /
                                  prof_base_sum
                            : 0.0;
        measured_prof_overhead = true;
        std::cout << "self-profiler overhead (enabled vs disabled): "
                  << fmtDouble(prof_overhead * 100.0, 2) << "% ("
                  << fmtDouble(prof_base_sum, 3) << "s -> "
                  << fmtDouble(prof_armed_sum, 3) << "s)\n";
    }

    if (!json_path.empty()) {
        std::ostringstream os;
        os << "{\n  \"bench\": \"throughput\",\n"
           << "  \"warm\": " << scale.warm << ",\n"
           << "  \"measure\": " << scale.measure << ",\n"
           << "  \"min_insts_per_sec\": " << fmtDouble(min_ips, 0)
           << ",\n  \"ckpt_overhead\": "
           << (measured_overhead ? fmtDouble(ckpt_overhead, 4)
                                 : std::string("null"))
           << ",\n  \"max_ckpt_overhead\": "
           << fmtDouble(max_ckpt_overhead, 4)
           << ",\n  \"profiler_overhead\": "
           << (measured_prof_overhead ? fmtDouble(prof_overhead, 4)
                                      : std::string("null"))
           << ",\n  \"max_profiler_overhead\": "
           << fmtDouble(max_profiler_overhead, 4)
           << ",\n  \"runs\": [\n";
        for (std::size_t i = 0; i < reports.size(); ++i) {
            jsonRun(os, reports[i]);
            os << (i + 1 < reports.size() ? ",\n" : "\n");
        }
        os << "  ]\n}\n";

        std::ofstream out(json_path);
        if (!out) {
            std::cerr << "error: cannot write " << json_path << "\n";
            return 2;
        }
        out << os.str();
        out.close();

        // Re-read and re-parse: the report must be consumable by a
        // real JSON parser, not just look like JSON.
        StatusOr<JsonValue> parsed = parseJsonFile(json_path);
        if (!parsed.ok()) {
            std::cerr << "error: emitted " << json_path
                      << " is not well-formed JSON: "
                      << parsed.status().toString() << "\n";
            return 1;
        }
        std::cout << "wrote " << json_path << " ("
                  << os.str().size() << " bytes, validated)\n";
    }

    if (!stats_json_path.empty()) {
        std::ostringstream ss;
        JsonWriter w(ss);
        beginStatsJson(w, "throughput_bench");
        for (const RunReport &r : reports) {
            w.beginObject();
            w.kv("label", r.workload + "/" + r.pf);
            w.key("results");
            writeSimResultsJson(w, r.results);
            w.endObject();
        }
        endStatsJson(w, {}, {}, prof::profileJsonString(),
                     reports.empty()
                         ? std::string()
                         : hostCountersJson(reports.front().host));

        std::ofstream out(stats_json_path);
        if (!out) {
            std::cerr << "error: cannot write " << stats_json_path
                      << "\n";
            return 2;
        }
        out << ss.str();
        out.close();

        if (Status s = validateStatsJsonFile(stats_json_path); !s.ok()) {
            std::cerr << "error: emitted " << stats_json_path
                      << " failed schema validation: " << s.toString()
                      << "\n";
            return 1;
        }
        std::cout << "wrote " << stats_json_path << " (schema "
                  << StatsJsonSchema << ", validated)\n";
    }

    if (measured_overhead && ckpt_overhead > max_ckpt_overhead) {
        std::cerr << "FAIL: checkpoint machinery costs "
                  << fmtDouble(ckpt_overhead * 100.0, 2)
                  << "% when unused, above the "
                  << fmtDouble(max_ckpt_overhead * 100.0, 2)
                  << "% budget\n";
        return 1;
    }
    if (measured_prof_overhead &&
        prof_overhead > max_profiler_overhead) {
        std::cerr << "FAIL: self-profiler costs "
                  << fmtDouble(prof_overhead * 100.0, 2)
                  << "% when enabled, above the "
                  << fmtDouble(max_profiler_overhead * 100.0, 2)
                  << "% budget\n";
        return 1;
    }
    if (min_ips > 0.0 && worst_ips < min_ips) {
        std::cerr << "FAIL: slowest run " << fmtDouble(worst_ips / 1e6, 2)
                  << "M insts/s is below the min_ips floor of "
                  << fmtDouble(min_ips / 1e6, 2) << "M insts/s\n";
        return 1;
    }
    if (min_ips > 0.0)
        std::cout << "min_ips floor " << fmtDouble(min_ips / 1e6, 2)
                  << "M insts/s: passed (slowest run "
                  << fmtDouble(worst_ips / 1e6, 2) << "M)\n";
    return 0;
}
