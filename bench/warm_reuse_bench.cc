/**
 * @file
 * Warm-checkpoint reuse benchmark: quantifies the sweep speedup from
 * forking measurement runs off a shared warm checkpoint instead of
 * re-warming every sweep point from a cold simulator.
 *
 * For each workload it sweeps `points` measurement windows that share
 * a warm fingerprint (same workload/config/prefetcher/warm window),
 * once cold and once with SweepOptions::warmReuse, verifies the two
 * result sets are bit-identical (the crash-safety contract -- a
 * forked run must be indistinguishable from an uninterrupted one) and
 * reports wall-clock seconds and the speedup. EXPERIMENTS.md records
 * the >= 2x speedup table produced by this bench.
 *
 * Keys: warm=N measure=N (EBCP_BENCH_SCALE honoured),
 *       points=K       (sweep points per workload; default 4),
 *       min_speedup=F  (fail if the aggregate speedup is below F;
 *                       0 disables -- wall-clock gates belong on
 *                       optimized builds only),
 *       json=PATH      (machine-readable report; default
 *                       BENCH_warm_reuse.json, json= to disable).
 *
 * Runs execute on a single worker so cold and warm sweeps pay the
 * identical scheduling cost and the ratio is pure re-warm work.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "util/json.hh"
#include "util/str.hh"

using namespace ebcp;
using namespace ebcp::bench;
using namespace ebcp::harness;

namespace
{

/** One workload's cold-vs-forked comparison. */
struct ReuseReport
{
    std::string workload;
    std::size_t points = 0;
    double coldSeconds = 0.0;
    double warmSeconds = 0.0;
    std::size_t warmBuilds = 0;
    std::size_t warmForks = 0;

    double
    speedup() const
    {
        return warmSeconds > 0.0 ? coldSeconds / warmSeconds : 0.0;
    }
};

bool
bitIdentical(const SimResults &a, const SimResults &b)
{
    return a.insts == b.insts && a.cycles == b.cycles &&
           a.epochs == b.epochs && a.cpi == b.cpi &&
           a.epochsPer1k == b.epochsPer1k &&
           a.l2InstMissPer1k == b.l2InstMissPer1k &&
           a.l2LoadMissPer1k == b.l2LoadMissPer1k &&
           a.usefulPrefetches == b.usefulPrefetches &&
           a.issuedPrefetches == b.issuedPrefetches &&
           a.droppedPrefetches == b.droppedPrefetches &&
           a.coverage == b.coverage && a.accuracy == b.accuracy &&
           a.readBusUtil == b.readBusUtil &&
           a.writeBusUtil == b.writeBusUtil;
}

} // namespace

int
main(int argc, char **argv)
{
    ConfigStore cs = ConfigStore::fromArgs(argc, argv);
    Status known = cs.checkKnownKeys(
        {"warm", "measure", "jobs", "points", "min_speedup", "json"});
    if (!known.ok()) {
        std::cerr << "error: " << known.toString() << "\n";
        return 2;
    }
    const RunScale scale = resolveScale(argc, argv);
    const std::size_t points =
        static_cast<std::size_t>(cs.getU64("points", 4));
    const double min_speedup = cs.getDouble("min_speedup", 0.0);
    const std::string json_path =
        cs.getString("json", "BENCH_warm_reuse.json");

    banner("Warm-checkpoint reuse: cold re-warm vs forked sweeps,\n"
           "with bit-exactness verification",
           "infrastructure (no paper figure)", scale);

    std::vector<ReuseReport> reports;
    bool identical = true;
    for (const auto &w : workloadNames()) {
        // `points` sweep runs sharing one warm fingerprint: identical
        // warm-up, staggered measurement windows.
        std::vector<RunDesc> descs;
        for (std::size_t i = 0; i < points; ++i) {
            RunDesc d;
            d.workload = w;
            d.pf.name = "ebcp";
            d.scale.warm = scale.warm;
            d.scale.measure =
                scale.measure + i * (scale.measure / 4);
            descs.push_back(d);
        }

        SweepRunner cold(1);
        const std::vector<RunResult> cr = cold.run(descs);

        SweepOptions opts;
        opts.warmReuse = true;
        SweepRunner warm(1, opts);
        const std::vector<RunResult> wr = warm.run(descs);

        for (std::size_t i = 0; i < descs.size(); ++i) {
            if (!cr[i].ok() || !wr[i].ok()) {
                std::cerr << "error: " << runLabel(descs[i]) << ": "
                          << (cr[i].ok() ? wr[i] : cr[i])
                                 .status.toString()
                          << "\n";
                return 1;
            }
            if (!bitIdentical(cr[i].results, wr[i].results)) {
                std::cerr << "FAIL: " << runLabel(descs[i])
                          << ": forked results differ from cold\n";
                identical = false;
            }
        }

        ReuseReport rep;
        rep.workload = w;
        rep.points = points;
        rep.coldSeconds = cold.stats().wallSeconds;
        rep.warmSeconds = warm.stats().wallSeconds;
        rep.warmBuilds = warm.stats().warmBuilds;
        rep.warmForks = warm.stats().warmForks;
        reports.push_back(rep);
    }

    AsciiTable t("Warm-checkpoint reuse (" + std::to_string(points) +
                 " sweep points per workload, ebcp prefetcher)");
    t.setHeader({"workload", "cold s", "forked s", "speedup",
                 "builds", "forks"});
    double cold_total = 0.0, warm_total = 0.0;
    for (const ReuseReport &r : reports) {
        cold_total += r.coldSeconds;
        warm_total += r.warmSeconds;
        t.addRow({r.workload, fmtDouble(r.coldSeconds, 3),
                  fmtDouble(r.warmSeconds, 3),
                  fmtDouble(r.speedup(), 2) + "x",
                  std::to_string(r.warmBuilds),
                  std::to_string(r.warmForks)});
    }
    const double aggregate =
        warm_total > 0.0 ? cold_total / warm_total : 0.0;
    t.addRow({"total", fmtDouble(cold_total, 3),
              fmtDouble(warm_total, 3), fmtDouble(aggregate, 2) + "x",
              "", ""});
    t.print(std::cout);
    std::cout << (identical
                      ? "forked results bit-identical to cold runs\n"
                      : "FORKED RESULTS DIVERGED\n");

    if (!json_path.empty()) {
        std::ostringstream os;
        os << "{\n  \"bench\": \"warm_reuse\",\n"
           << "  \"warm\": " << scale.warm << ",\n"
           << "  \"measure\": " << scale.measure << ",\n"
           << "  \"points\": " << points << ",\n"
           << "  \"min_speedup\": " << fmtDouble(min_speedup, 2)
           << ",\n"
           << "  \"bit_identical\": " << (identical ? "true" : "false")
           << ",\n"
           << "  \"aggregate_speedup\": " << fmtDouble(aggregate, 3)
           << ",\n  \"runs\": [\n";
        for (std::size_t i = 0; i < reports.size(); ++i) {
            const ReuseReport &r = reports[i];
            os << "    {\"workload\": \"" << r.workload
               << "\", \"points\": " << r.points
               << ", \"cold_seconds\": " << fmtDouble(r.coldSeconds, 4)
               << ", \"warm_seconds\": " << fmtDouble(r.warmSeconds, 4)
               << ", \"speedup\": " << fmtDouble(r.speedup(), 3)
               << ", \"warm_builds\": " << r.warmBuilds
               << ", \"warm_forks\": " << r.warmForks << "}"
               << (i + 1 < reports.size() ? ",\n" : "\n");
        }
        os << "  ]\n}\n";

        std::ofstream out(json_path);
        if (!out) {
            std::cerr << "error: cannot write " << json_path << "\n";
            return 2;
        }
        out << os.str();
        out.close();

        StatusOr<JsonValue> parsed = parseJsonFile(json_path);
        if (!parsed.ok()) {
            std::cerr << "error: emitted " << json_path
                      << " is not well-formed JSON: "
                      << parsed.status().toString() << "\n";
            return 1;
        }
        std::cout << "wrote " << json_path << " (" << os.str().size()
                  << " bytes, validated)\n";
    }

    if (!identical)
        return 1;
    if (min_speedup > 0.0 && aggregate < min_speedup) {
        std::cerr << "FAIL: aggregate speedup "
                  << fmtDouble(aggregate, 2) << "x is below the "
                  << fmtDouble(min_speedup, 2) << "x floor\n";
        return 1;
    }
    return 0;
}
