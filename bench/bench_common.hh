/**
 * @file
 * Shared machinery for the paper-reproduction benches: run scaling,
 * baseline caching and uniform table output.
 *
 * Every bench accepts "warm=N measure=N" command-line overrides and
 * the EBCP_BENCH_SCALE environment variable (e.g. 0.25 for a quick
 * pass, 4 for a long one). Defaults reproduce the calibrated
 * measurement windows in EXPERIMENTS.md.
 */

#ifndef EBCP_BENCH_BENCH_COMMON_HH
#define EBCP_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "stats/table.hh"
#include "trace/workloads.hh"
#include "util/config.hh"

namespace ebcp::bench
{

/** Measurement window sizes for one run. */
struct RunScale
{
    std::uint64_t warm = 4'000'000;
    std::uint64_t measure = 8'000'000;
};

/** Resolve the run scale from argv overrides and the environment. */
RunScale resolveScale(int argc, char **argv);

/** Print the standard bench banner. */
void banner(const std::string &title, const std::string &paper_ref,
            const RunScale &scale);

/** Run one configuration on one workload. */
SimResults run(const std::string &workload, const SimConfig &cfg,
               const PrefetcherParams &pf, const RunScale &scale);

/** Baseline (no prefetching) results, cached per workload. */
const SimResults &baseline(const std::string &workload,
                           const RunScale &scale);

/** Percent-improvement row over the cached baselines. */
std::vector<double>
improvementRow(const std::string &workload,
               const std::vector<SimResults> &series,
               const RunScale &scale);

} // namespace ebcp::bench

#endif // EBCP_BENCH_BENCH_COMMON_HH
