/**
 * @file
 * Shared machinery for the paper-reproduction benches: run scaling,
 * the parallel sweep wrapper, baseline caching and uniform table
 * output.
 *
 * Every bench accepts "warm=N measure=N" command-line overrides, the
 * EBCP_BENCH_SCALE environment variable (e.g. 0.25 for a quick pass,
 * 4 for a long one), and "jobs=N" / EBCP_BENCH_JOBS to size the
 * parallel sweep engine (default: hardware concurrency). Defaults
 * reproduce the calibrated measurement windows in EXPERIMENTS.md.
 *
 * Benches are two-phase: enqueue every (workload x config) run on a
 * BenchSweep, execute() once, then assemble tables from the results.
 * Execution is deterministic -- the same tables come out at jobs=1
 * and jobs=N.
 *
 * Every BenchSweep-based bench also accepts "stats_json=PATH": after
 * execute(), the sweep's per-run SimResults are exported in the shared
 * "ebcp-stats-v1" schema (harness/stats_json.hh) and the artifact is
 * re-read and schema-validated before the bench continues.
 *
 * Likewise "telemetry_out=PATH" (per-run progress as CRC-tagged JSON
 * lines) and "metrics_out=PATH" (a Prometheus-style snapshot kept
 * fresh while the sweep runs) flow into the sweep engine's telemetry
 * layer; see harness/telemetry.hh for the record contract.
 */

#ifndef EBCP_BENCH_BENCH_COMMON_HH
#define EBCP_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/options.hh"
#include "harness/sweep.hh"
#include "sim/api.hh"
#include "stats/table.hh"
#include "trace/workloads.hh"
#include "util/config.hh"

namespace ebcp::bench
{

using harness::RunDesc;
using harness::RunScale;

/**
 * Resolve the run scale from argv overrides and the environment;
 * malformed or non-positive values render a coded error and exit.
 */
RunScale resolveScale(int argc, char **argv);

/** Resolve the sweep worker count (jobs= / EBCP_BENCH_JOBS); exits on
 * malformed values. */
unsigned resolveJobs(int argc, char **argv);

/** Print the standard bench banner. */
void banner(const std::string &title, const std::string &paper_ref,
            const RunScale &scale);

/** Run one configuration on one workload, serially. */
SimResults run(const std::string &workload, const SimConfig &cfg,
               const PrefetcherParams &pf, const RunScale &scale);

/**
 * Baseline (no prefetching) results, memoized per (workload, scale).
 * Thread-safe: concurrent callers compute each baseline exactly once,
 * and the returned reference is stable for the process lifetime.
 */
const SimResults &baseline(const std::string &workload,
                           const RunScale &scale);

/** Percent-improvement row over the cached baselines (serial path). */
std::vector<double>
improvementRow(const std::string &workload,
               const std::vector<SimResults> &series,
               const RunScale &scale);

/**
 * The bench-side face of the parallel sweep engine: collects run
 * descriptors (returning their indices), executes them all on a
 * SweepRunner, prints the sweep summary, and serves results back by
 * index. A failed run is fatal at first access with the run's label
 * and Status -- a paper table must not silently contain holes.
 */
class BenchSweep
{
  public:
    /** Resolves scale and jobs from @p argv and the environment. */
    BenchSweep(int argc, char **argv);

    const RunScale &scale() const { return scale_; }
    unsigned jobs() const { return jobs_; }

    /** Enqueue a single-core run at the bench scale. @return index */
    std::size_t add(const std::string &workload, const SimConfig &cfg,
                    const PrefetcherParams &pf);

    /** Enqueue a fully-specified descriptor. @return index */
    std::size_t add(RunDesc d);

    /** Enqueue (once per workload) the no-prefetching baseline.
     * @return index */
    std::size_t addBaseline(const std::string &workload);

    /** Execute every pending descriptor and print the sweep summary.
     * Honours "stats_json=PATH" from argv: exports and validates the
     * shared-schema report (a malformed artifact is fatal). */
    void execute();

    /**
     * Write every completed run to @p path in the "ebcp-stats-v1"
     * schema, then re-read and validate the artifact. Failed runs are
     * omitted (they are already reported on stderr by execute()).
     */
    Status exportStatsJson(const std::string &path,
                           const std::string &source = "bench_sweep") const;

    /** Result of run @p idx; fatal if that run failed. */
    const SimResults &result(std::size_t idx) const;

    /** Baseline results for @p workload (addBaseline required). */
    const SimResults &baseline(const std::string &workload) const;

    /** Percent improvement of run @p idx over its workload baseline. */
    double improvement(const std::string &workload,
                       std::size_t idx) const;

    /** improvement() across @p idxs, for table rows. */
    std::vector<double>
    improvementRow(const std::string &workload,
                   const std::vector<std::size_t> &idxs) const;

    const harness::SweepStats &stats() const { return runner_.stats(); }

  private:
    RunScale scale_;
    unsigned jobs_;
    std::string statsJsonPath_;
    harness::SweepRunner runner_;
    std::vector<RunDesc> pending_;
    std::vector<harness::RunResult> results_;
    std::map<std::string, std::size_t> baselines_;
    bool executed_ = false;
};

} // namespace ebcp::bench

#endif // EBCP_BENCH_BENCH_COMMON_HH
