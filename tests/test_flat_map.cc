/**
 * @file
 * Tests for the hot-path containers introduced by the throughput
 * overhaul: the open-addressed FlatMap (randomized differential
 * testing against std::unordered_map), the growable RecordRing, the
 * FreeListPool/PoolLease pair, and CircularBuffer's in-place
 * pushSlot(). The pool and ring tests deliberately churn recycled
 * objects so -DEBCP_SANITIZE=address runs exercise the reuse paths.
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "trace/record_ring.hh"
#include "util/circular_buffer.hh"
#include "util/flat_map.hh"
#include "util/object_pool.hh"
#include "util/random.hh"

using namespace ebcp;

// --- FlatMap -------------------------------------------------------

TEST(FlatMap, BasicInsertFindErase)
{
    FlatMap<int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(42), nullptr);

    m.insert(42, 7);
    ASSERT_NE(m.find(42), nullptr);
    EXPECT_EQ(*m.find(42), 7);
    EXPECT_EQ(m.size(), 1u);

    m[42] = 8; // overwrite through operator[]
    EXPECT_EQ(*m.find(42), 8);
    EXPECT_EQ(m.size(), 1u);

    EXPECT_TRUE(m.erase(42));
    EXPECT_FALSE(m.erase(42));
    EXPECT_EQ(m.find(42), nullptr);
    EXPECT_TRUE(m.empty());
}

TEST(FlatMap, KeyZeroIsAnOrdinaryKey)
{
    // Slots encode emptiness in a separate flag, not in key==0.
    FlatMap<int> m;
    m.insert(0, 99);
    ASSERT_NE(m.find(0), nullptr);
    EXPECT_EQ(*m.find(0), 99);
    EXPECT_TRUE(m.erase(0));
    EXPECT_EQ(m.find(0), nullptr);
}

TEST(FlatMap, ReservePreventsRehash)
{
    FlatMap<std::uint64_t> m;
    m.reserve(1000);
    const std::size_t cap = m.capacity();
    for (std::uint64_t k = 0; k < 1000; ++k)
        m.insert(k, k * 3);
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.stats().rehashes, 0u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        ASSERT_NE(m.find(k), nullptr);
        EXPECT_EQ(*m.find(k), k * 3);
    }
}

TEST(FlatMap, ClearKeepsCapacityAndDropsEntries)
{
    FlatMap<int> m;
    for (std::uint64_t k = 0; k < 500; ++k)
        m.insert(k, 1);
    const std::size_t cap = m.capacity();
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(123), nullptr);
    // The array is reusable immediately.
    m.insert(7, 7);
    EXPECT_EQ(*m.find(7), 7);
}

namespace
{

/** Degenerate hash forcing every key into one probe chain. */
struct CollidingHash
{
    std::uint64_t operator()(std::uint64_t) const { return 5; }
};

} // namespace

TEST(FlatMap, BackwardShiftKeepsChainsReachableUnderCollisions)
{
    // With an all-colliding hash every key lives in one linear chain,
    // so erasing from the middle exercises the backward-shift logic
    // (including wraparound) as hard as possible.
    FlatMap<std::uint64_t, CollidingHash> m;
    for (std::uint64_t k = 0; k < 12; ++k)
        m.insert(k, k + 100);

    EXPECT_TRUE(m.erase(0));  // chain head
    EXPECT_TRUE(m.erase(6));  // chain middle
    EXPECT_TRUE(m.erase(11)); // chain tail
    EXPECT_GT(m.stats().backshifts, 0u);

    for (std::uint64_t k = 0; k < 12; ++k) {
        const bool erased = k == 0 || k == 6 || k == 11;
        if (erased) {
            EXPECT_EQ(m.find(k), nullptr) << "key " << k;
        } else {
            ASSERT_NE(m.find(k), nullptr) << "key " << k;
            EXPECT_EQ(*m.find(k), k + 100);
        }
    }
}

TEST(FlatMap, RandomizedDifferentialAgainstUnorderedMap)
{
    // Mixed insert/overwrite/erase/find traffic over a small key space
    // (to force collisions, growth and backward shifts), checked
    // operation-by-operation and by full iteration against the
    // reference implementation.
    FlatMap<std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Pcg32 rng(0xF1A7F1A7);

    for (int op = 0; op < 200000; ++op) {
        const std::uint64_t key = rng.next() % 4096;
        switch (rng.next() % 4) {
          case 0:
          case 1: { // insert / overwrite
            const std::uint64_t val = rng.next();
            m.insert(key, val);
            ref[key] = val;
            break;
          }
          case 2: { // erase
            const bool was = m.erase(key);
            EXPECT_EQ(was, ref.erase(key) == 1);
            break;
          }
          case 3: { // find
            const std::uint64_t *v = m.find(key);
            auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(v, nullptr);
            } else {
                ASSERT_NE(v, nullptr);
                EXPECT_EQ(*v, it->second);
            }
            break;
          }
        }
        EXPECT_EQ(m.size(), ref.size());
    }

    // Full-content equivalence via iteration, both directions.
    std::size_t visited = 0;
    m.forEach([&](std::uint64_t k, const std::uint64_t &v) {
        ++visited;
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end()) << "key " << k;
        EXPECT_EQ(v, it->second);
    });
    EXPECT_EQ(visited, ref.size());
    EXPECT_GT(m.stats().rehashes, 0u); // the run actually grew the map
}

TEST(FlatMap, StatsCountOperations)
{
    FlatMap<int> m;
    m.insert(1, 10);
    m.insert(2, 20);
    m.find(1);
    m.find(3);
    m.erase(2);

    const FlatMapStats &s = m.stats();
    // operator[] calls find() internally, so finds > the 2 explicit
    // calls; the hit/insert/erase tallies are exact.
    EXPECT_GE(s.finds, 2u);
    EXPECT_EQ(s.inserts, 2u);
    EXPECT_EQ(s.erases, 1u);
    // findProbes counts key comparisons: the group probe's fingerprint
    // filter means misses usually compare zero keys, so the mean sits
    // at or below one comparison per find -- but every find scans at
    // least one control-byte group, and the hits were confirmed by a
    // real comparison.
    EXPECT_LE(s.probesPerFind(), 1.0);
    EXPECT_GE(s.findGroups, s.finds);
    EXPECT_GE(s.findProbes, s.hits);

    m.resetStats();
    EXPECT_EQ(m.stats().finds, 0u);
    EXPECT_EQ(m.stats().inserts, 0u);
}

TEST(FlatMap, EraseDuringIterationViaSnapshot)
{
    // Backward-shift deletion moves later chain entries over the hole,
    // so erasing inside forEach() would let the visit skip or repeat
    // slots. The supported pattern is snapshot-then-erase; this test
    // pins that it leaves the table fully intact, with the degenerate
    // hash so every erase drags a maximal chain (including wraparound)
    // behind it.
    FlatMap<std::uint64_t, CollidingHash> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    for (std::uint64_t k = 0; k < 12; ++k) {
        m.insert(k, k * 2);
        ref[k] = k * 2;
    }

    std::vector<std::uint64_t> doomed;
    m.forEach([&](std::uint64_t k, const std::uint64_t &) {
        if (k % 3 == 0)
            doomed.push_back(k);
    });
    for (std::uint64_t k : doomed) {
        EXPECT_TRUE(m.erase(k));
        ref.erase(k);
        // Tombstone-free: after every single erase the probe chains
        // are whole and the control bytes still match their keys.
        EXPECT_EQ(m.integrityError(), "");
    }

    std::size_t visited = 0;
    m.forEach([&](std::uint64_t k, const std::uint64_t &v) {
        ++visited;
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end()) << "key " << k;
        EXPECT_EQ(v, it->second);
    });
    EXPECT_EQ(visited, ref.size());
}

TEST(FlatMap, RandomizedEraseHeavyStaysIntact)
{
    // Erase-dominated differential traffic: half the operations are
    // erases, so the table churns through backward shifts constantly
    // while staying near the load levels where group probes cross
    // group boundaries. integrityError() is consulted periodically --
    // it is O(n * chain) and would dominate if run per-op.
    FlatMap<std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Pcg32 rng(0xE5A5E000);

    for (int op = 0; op < 60000; ++op) {
        const std::uint64_t key = rng.next() % 512;
        if (rng.next() % 2 == 0) {
            const std::uint64_t val = rng.next();
            m.insert(key, val);
            ref[key] = val;
        } else {
            EXPECT_EQ(m.erase(key), ref.erase(key) == 1);
        }
        if (op % 5000 == 0) {
            EXPECT_EQ(m.integrityError(), "") << "after op " << op;
        }
    }
    EXPECT_EQ(m.integrityError(), "");
    EXPECT_EQ(m.size(), ref.size());
    for (auto &[k, v] : ref) {
        ASSERT_NE(m.find(k), nullptr) << "key " << k;
        EXPECT_EQ(*m.find(k), v);
    }
}

TEST(FlatMap, CorruptedControlByteTripsIntegrityAudit)
{
    // A wrong fingerprint is the failure mode specific to the
    // group-probed layout: the slot is still "used", but every group
    // probe filters it out, so the entry silently vanishes from
    // lookups. integrityError() must call that out by name.
    FlatMap<int> m;
    for (std::uint64_t k = 0; k < 8; ++k)
        m.insert(k, 1);
    ASSERT_EQ(m.integrityError(), "");

    m.corruptCtrlForTest();
    const std::string err = m.integrityError();
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
}

TEST(FlatMap, HiddenSlotTripsIntegrityAudit)
{
    // corruptForTest() marks a used slot empty without fixing size or
    // chains; whichever invariant fires first (size mismatch or a
    // broken probe chain), the audit must notice.
    FlatMap<int> m;
    for (std::uint64_t k = 0; k < 8; ++k)
        m.insert(k, 1);
    ASSERT_EQ(m.integrityError(), "");
    m.corruptForTest();
    EXPECT_NE(m.integrityError(), "");
}

// --- RecordRing ----------------------------------------------------

TEST(RecordRing, FifoOrderAcrossGrowth)
{
    RecordRing<int> ring(16);
    // Offset the head so growth has to re-linearize a wrapped ring.
    for (int i = 0; i < 10; ++i) {
        ring.pushSlot() = i;
        ring.popFront();
    }
    for (int i = 0; i < 100; ++i)
        ring.pushSlot() = i;
    EXPECT_GT(ring.stats().grows, 0u);
    EXPECT_EQ(ring.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(ring.front(), i);
        ring.popFront();
    }
    EXPECT_TRUE(ring.empty());
}

TEST(RecordRing, SteadyStateNeverGrows)
{
    RecordRing<std::vector<int>> ring(16);
    // Warm to the high-water mark once...
    for (int i = 0; i < 8; ++i) {
        auto &slot = ring.pushSlot();
        slot.clear();
        slot.resize(32, i);
    }
    while (!ring.empty())
        ring.popFront();
    const std::uint64_t grows = ring.stats().grows;

    // ...then steady-state traffic below that mark recycles slots
    // (and their vectors' capacity) without any further growth.
    for (int round = 0; round < 1000; ++round) {
        for (int i = 0; i < 8; ++i) {
            auto &slot = ring.pushSlot();
            slot.clear();
            slot.resize(32, round + i);
        }
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(ring.front()[0], round + i);
            ring.popFront();
        }
    }
    EXPECT_EQ(ring.stats().grows, grows);
}

TEST(RecordRing, ClearKeepsStorage)
{
    RecordRing<int> ring(16);
    for (int i = 0; i < 10; ++i)
        ring.pushSlot() = i;
    const std::size_t cap = ring.capacity();
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), cap);
}

// --- FreeListPool / PoolLease --------------------------------------

TEST(FreeListPool, AcquireReleaseReuses)
{
    FreeListPool<std::vector<int>> pool;
    auto a = pool.acquire();
    a->resize(1000);
    int *data = a->data();
    pool.release(std::move(a));

    // The recycled object keeps its buffer: same vector comes back.
    auto b = pool.acquire();
    EXPECT_EQ(b->data(), data);
    EXPECT_EQ(pool.stats().freshAllocs, 1u);
    EXPECT_EQ(pool.stats().reuses, 1u);
    pool.release(std::move(b));
    EXPECT_EQ(pool.stats().outstanding, 0u);
    EXPECT_EQ(pool.freeCount(), 1u);
}

TEST(FreeListPool, PrimeServesWithoutFreshAllocs)
{
    FreeListPool<std::string> pool;
    pool.prime(4);
    EXPECT_EQ(pool.freeCount(), 4u);
    const std::uint64_t primed = pool.stats().freshAllocs;

    std::vector<std::unique_ptr<std::string>> held;
    for (int i = 0; i < 4; ++i)
        held.push_back(pool.acquire());
    EXPECT_EQ(pool.stats().freshAllocs, primed);
    EXPECT_EQ(pool.stats().peakOutstanding, 4u);
    for (auto &h : held)
        pool.release(std::move(h));
}

TEST(FreeListPool, SteadyStateIsAllocationFree)
{
    FreeListPool<std::vector<unsigned char>> pool;
    // After the first acquire/release cycle, every subsequent cycle
    // must be served from the free list.
    { PoolLease<std::vector<unsigned char>> warm(pool); warm->resize(64); }
    const std::uint64_t fresh = pool.stats().freshAllocs;
    for (int i = 0; i < 10000; ++i) {
        PoolLease<std::vector<unsigned char>> lease(pool);
        lease->resize(64);
        (*lease)[0] = static_cast<unsigned char>(i);
    }
    EXPECT_EQ(pool.stats().freshAllocs, fresh);
    EXPECT_EQ(pool.stats().acquires, 10001u);
    EXPECT_DOUBLE_EQ(pool.stats().reuseRate(), 10000.0 / 10001.0);
    EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(PoolLease, ReleasesOnEveryExitPath)
{
    FreeListPool<int> pool;
    {
        PoolLease<int> lease(pool);
        *lease = 5;
        EXPECT_EQ(pool.stats().outstanding, 1u);
    }
    EXPECT_EQ(pool.stats().outstanding, 0u);
    EXPECT_EQ(pool.stats().releases, 1u);
}

// --- CircularBuffer::pushSlot --------------------------------------

TEST(CircularBuffer, PushSlotMatchesPushSemantics)
{
    CircularBuffer<int> a(4), b(4);
    for (int i = 0; i < 10; ++i) {
        a.push(i);
        b.pushSlot() = i;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t j = 0; j < a.size(); ++j)
            EXPECT_EQ(a.at(j), b.at(j));
    }
}

TEST(CircularBuffer, PushSlotRecyclesEvictedSlotInPlace)
{
    CircularBuffer<std::vector<int>> buf(2);
    buf.pushSlot().assign(100, 1);
    buf.pushSlot().assign(100, 2);
    // Full: the next pushSlot() recycles the evicted oldest slot, so
    // its vector keeps the existing buffer.
    const int *evicted = buf.front().data();
    std::vector<int> &slot = buf.pushSlot();
    EXPECT_EQ(slot.data(), evicted);
    slot.assign(100, 3);
    EXPECT_EQ(buf.back()[0], 3);
    EXPECT_EQ(buf.front()[0], 2);
}
