/**
 * @file
 * Tests for the invariant-audit subsystem: option parsing, the
 * AuditContext accumulator, one corrupt-and-trip test per stateful
 * component, whole-simulator audit runs (clean runs stay clean and
 * bit-identical; the abort policy stops a run), and the fault x audit
 * cross-matrix proving each injected-fault kind is caught by the
 * invariant it breaks.
 *
 * The AuditFaultMatrix suite is also registered as a dedicated ctest
 * entry (audit_fault_detection) so the fault-catching guarantee is a
 * first-class gate, not a side effect of the gtest glob.
 */

#include <gtest/gtest.h>

#include <string_view>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "cache/prefetch_buffer.hh"
#include "core/correlation_table.hh"
#include "core/ebcp.hh"
#include "core/emab.hh"
#include "core/table_allocation.hh"
#include "epoch/epoch_tracker.hh"
#include "mem/channel.hh"
#include "mem/main_memory.hh"
#include "sim/cmp_system.hh"
#include "sim/simulator.hh"
#include "trace/fault_injection.hh"
#include "trace/workloads.hh"
#include "util/flat_map.hh"
#include "util/json.hh"
#include "verify/audit.hh"

using namespace ebcp;

namespace
{

/** Run one component audit pass under a fresh context. */
template <typename Component>
AuditContext
auditOf(const Component &c, std::string_view name = "test")
{
    AuditContext ctx;
    ctx.beginComponent(name);
    c.audit(ctx);
    return ctx;
}

bool
hasViolation(const AuditContext &ctx, std::string_view invariant)
{
    for (const AuditViolation &v : ctx.violations())
        if (v.invariant == invariant)
            return true;
    return false;
}

std::string
violationNames(const AuditContext &ctx)
{
    std::string out;
    for (const AuditViolation &v : ctx.violations())
        out += v.component + ":" + v.invariant + " ";
    return out.empty() ? "<none>" : out;
}

} // namespace

// ---------------------------------------------------------------------
// Option parsing.
// ---------------------------------------------------------------------

TEST(AuditParse, CadenceSpellings)
{
    AuditOptions o;
    ASSERT_TRUE(parseAuditCadence("off", o).ok());
    EXPECT_EQ(o.cadence, AuditCadence::Off);
    EXPECT_FALSE(o.enabled());

    ASSERT_TRUE(parseAuditCadence("retire", o).ok());
    EXPECT_EQ(o.cadence, AuditCadence::Retire);
    EXPECT_TRUE(o.enabled());

    ASSERT_TRUE(parseAuditCadence("epoch", o).ok());
    EXPECT_EQ(o.cadence, AuditCadence::Epoch);

    ASSERT_TRUE(parseAuditCadence("every:5000", o).ok());
    EXPECT_EQ(o.cadence, AuditCadence::EveryN);
    EXPECT_EQ(o.everyTicks, 5000u);
}

TEST(AuditParse, RejectsBadCadences)
{
    AuditOptions o;
    for (const char *bad : {"", "sometimes", "every:", "every:0",
                            "every:-5", "every:12x", "Retire"}) {
        Status s = parseAuditCadence(bad, o);
        EXPECT_FALSE(s.ok()) << "accepted audit='" << bad << "'";
        if (!s.ok()) {
            EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
        }
    }
}

TEST(AuditParse, PolicySpellings)
{
    AuditOptions o;
    ASSERT_TRUE(parseAuditPolicy("collect", o).ok());
    EXPECT_EQ(o.policy, AuditPolicy::Collect);
    ASSERT_TRUE(parseAuditPolicy("abort", o).ok());
    EXPECT_EQ(o.policy, AuditPolicy::Abort);
    EXPECT_FALSE(parseAuditPolicy("panic", o).ok());
    EXPECT_FALSE(parseAuditPolicy("", o).ok());
}

// ---------------------------------------------------------------------
// The AuditContext accumulator.
// ---------------------------------------------------------------------

TEST(AuditContextTest, ChecksAndViolations)
{
    AuditContext ctx;
    ctx.beginComponent("widget");
    ctx.setNow(42);

    EXPECT_TRUE(ctx.check(true, "fine"));
    EXPECT_TRUE(ctx.clean());
    EXPECT_EQ(ctx.checksRun(), 1u);

    EXPECT_FALSE(ctx.check(false, "broken", "detail ", 7));
    EXPECT_FALSE(ctx.clean());
    EXPECT_EQ(ctx.totalViolations(), 1u);
    ASSERT_EQ(ctx.violations().size(), 1u);
    EXPECT_EQ(ctx.violations()[0].component, "widget");
    EXPECT_EQ(ctx.violations()[0].invariant, "broken");
    EXPECT_EQ(ctx.violations()[0].detail, "detail 7");
    EXPECT_EQ(ctx.violations()[0].when, 42u);

    ctx.fail("also_broken", "unconditional");
    EXPECT_EQ(ctx.totalViolations(), 2u);
}

TEST(AuditContextTest, RecordingIsCappedButCountingIsNot)
{
    AuditContext ctx;
    ctx.beginComponent("flood");
    for (int i = 0; i < 100; ++i)
        ctx.fail("flooded", "violation ", i);
    EXPECT_EQ(ctx.totalViolations(), 100u);
    EXPECT_EQ(ctx.violations().size(), 32u) << "cap must hold";
}

TEST(AuditContextTest, ToStatusNamesTheFirstViolation)
{
    AuditContext ctx;
    EXPECT_TRUE(ctx.toStatus().ok());

    ctx.beginComponent("core0");
    ctx.fail("rob_age_ordered", "entries out of order");
    Status s = ctx.toStatus();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::InvariantViolation);
    EXPECT_NE(s.message().find("core0"), std::string::npos);
    EXPECT_NE(s.message().find("rob_age_ordered"), std::string::npos);
}

TEST(AuditContextTest, WriteJsonParsesAndCarriesStructure)
{
    AuditContext ctx;
    ctx.beginComponent("l2");
    ctx.setNow(9);
    ctx.check(true, "good");
    ctx.fail("bad \"quoted\"", "detail\nline");

    std::ostringstream os;
    JsonWriter w(os);
    ctx.writeJson(w);
    StatusOr<JsonValue> v = parseJson(os.str());
    ASSERT_TRUE(v.ok()) << v.status().toString();
    const JsonValue &d = v.value();
    EXPECT_EQ(d.find("checks")->number, 2.0);
    EXPECT_EQ(d.find("violation_count")->number, 1.0);
    EXPECT_EQ(d.find("violations_dropped")->number, 0.0);
    ASSERT_EQ(d.find("violations")->array.size(), 1u);
    const JsonValue &viol = d.find("violations")->array[0];
    EXPECT_EQ(viol.find("component")->string, "l2");
    EXPECT_EQ(viol.find("invariant")->string, "bad \"quoted\"");
    EXPECT_EQ(viol.find("tick")->number, 9.0);
}

TEST(AuditContextTest, ResetForgetsEverything)
{
    AuditContext ctx;
    ctx.fail("x", "y");
    ctx.reset();
    EXPECT_TRUE(ctx.clean());
    EXPECT_EQ(ctx.checksRun(), 0u);
    EXPECT_TRUE(ctx.violations().empty());
}

// ---------------------------------------------------------------------
// Per-component corrupt-and-trip tests. Each component must audit
// clean when healthy and trip its own invariant after corruptForTest().
// ---------------------------------------------------------------------

TEST(ComponentAudits, FlatMapProbeChainIntegrity)
{
    FlatMap<Tick> m;
    for (std::uint64_t k = 0; k < 24; ++k)
        m[k * 64] = k;
    EXPECT_TRUE(m.integrityError().empty());
    m.corruptForTest();
    EXPECT_FALSE(m.integrityError().empty());
}

TEST(ComponentAudits, MshrFileTrips)
{
    MshrFile mshrs("mshr_ut", 4);
    mshrs.allocate(0x1000, 500);
    mshrs.allocate(0x2000, 700);
    EXPECT_TRUE(auditOf(mshrs).clean());

    mshrs.corruptForTest();
    AuditContext ctx = auditOf(mshrs);
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
    EXPECT_TRUE(hasViolation(ctx, "occupancy_within_capacity"))
        << violationNames(ctx);
}

TEST(ComponentAudits, CacheTagArrayTrips)
{
    Cache c(CacheConfig{"l2_ut", 64 * KiB, 4, 64, 20, ReplPolicy::Lru});
    for (Addr a = 0; a < 64 * 64; a += 64)
        c.fill(a);
    EXPECT_TRUE(auditOf(c).clean());

    c.corruptForTest();
    AuditContext ctx = auditOf(c);
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
    EXPECT_TRUE(hasViolation(ctx, "no_duplicate_tags_in_set"))
        << violationNames(ctx);
}

TEST(ComponentAudits, PrefetchBufferTrips)
{
    PrefetchBuffer buf(64, 4, 64);
    buf.insert(0x4000, 100, 1, true);
    buf.insert(0x8000, 120, 2, true);
    EXPECT_TRUE(auditOf(buf).clean());

    buf.corruptForTest();
    AuditContext ctx = auditOf(buf);
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
}

TEST(ComponentAudits, EmabTrips)
{
    Emab emab(4, 8);
    emab.beginEpoch(1, 0x1000);
    emab.recordMiss(0x1040);
    emab.beginEpoch(2, 0x2000);
    EXPECT_TRUE(auditOf(emab).clean());

    emab.corruptForTest();
    AuditContext ctx = auditOf(emab);
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
    EXPECT_TRUE(hasViolation(ctx, "epochs_strictly_increasing"))
        << violationNames(ctx);
}

TEST(ComponentAudits, EmptyEmabTripsViaOverfill)
{
    Emab emab(4, 4);
    emab.corruptForTest();
    AuditContext ctx = auditOf(emab);
    EXPECT_TRUE(hasViolation(ctx, "addrs_within_entry_cap"))
        << violationNames(ctx);
}

TEST(ComponentAudits, EpochTrackerTrips)
{
    EpochTracker tracker;
    tracker.observe(1000, 1500);
    tracker.observe(2600, 3100);
    EXPECT_TRUE(auditOf(tracker).clean());

    tracker.corruptForTest();
    AuditContext ctx = auditOf(tracker);
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
    EXPECT_TRUE(hasViolation(ctx, "epoch_span_well_formed"))
        << violationNames(ctx);
}

TEST(ComponentAudits, CorrelationTableTrips)
{
    CorrTableConfig tcfg;
    tcfg.entries = 1ULL << 10;
    tcfg.addrsPerEntry = 8;
    CorrelationTable table(tcfg);
    table.update(0x1000, {0x2000, 0x3000});
    EXPECT_TRUE(auditOf(table).clean());

    table.corruptForTest();
    AuditContext ctx = auditOf(table);
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
    EXPECT_TRUE(hasViolation(ctx, "tag_indexes_home"))
        << violationNames(ctx);
}

TEST(ComponentAudits, TableAllocationTrips)
{
    TableAllocation alloc(64 * MiB, 1000);
    EXPECT_TRUE(auditOf(alloc).clean());
    alloc.requestInitial(0);
    EXPECT_TRUE(auditOf(alloc).clean());

    alloc.corruptForTest();
    AuditContext ctx = auditOf(alloc);
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
    EXPECT_TRUE(hasViolation(ctx, "base_matches_state"))
        << violationNames(ctx);
}

TEST(ComponentAudits, ChannelTrips)
{
    Channel chan("bus_ut", 3.2, 2000);
    chan.request(0, MemPriority::Demand, 64);
    chan.request(10, MemPriority::Low, 64);
    EXPECT_TRUE(auditOf(chan).clean());

    chan.corruptForTest();
    AuditContext ctx = auditOf(chan);
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
    EXPECT_TRUE(hasViolation(ctx, "request_conservation"))
        << violationNames(ctx);
    EXPECT_TRUE(hasViolation(ctx, "priority_horizons_ordered"))
        << violationNames(ctx);
}

TEST(ComponentAudits, MainMemoryTrips)
{
    MainMemory mem{MemConfig{}};
    mem.access(0, MemReqType::DemandLoad);
    mem.access(100, MemReqType::Prefetch);
    mem.access(200, MemReqType::StoreWrite);
    EXPECT_TRUE(auditOf(mem).clean());

    mem.corruptForTest();
    AuditContext ctx = auditOf(mem);
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
    EXPECT_TRUE(hasViolation(ctx, "read_request_conservation"))
        << violationNames(ctx);
}

TEST(ComponentAudits, CoreModelTrips)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "null";
    Simulator sim(cfg, pf);
    auto src = makeWorkload("database");
    sim.run(*src, 2000, 4000);
    EXPECT_TRUE(auditOf(sim.core()).clean());

    sim.core().corruptForTest();
    AuditContext ctx = auditOf(sim.core());
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
}

TEST(ComponentAudits, L2BufferExclusivityTrips)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "ebcp";
    Simulator sim(cfg, pf);
    auto src = makeWorkload("database");
    sim.run(*src, 2000, 4000);
    EXPECT_TRUE(auditOf(sim.l2side()).clean());

    sim.l2side().corruptForTest();
    AuditContext ctx = auditOf(sim.l2side());
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
    EXPECT_TRUE(hasViolation(ctx, "line_not_in_l2_and_buffer"))
        << violationNames(ctx);
}

TEST(ComponentAudits, EbcpPrefetcherTrips)
{
    EbcpConfig ecfg;
    ecfg.tableEntries = 1ULL << 12;
    EpochBasedPrefetcher pf(ecfg);
    EXPECT_TRUE(auditOf(pf).clean());

    // Corrupting the per-core EMAB must surface through the
    // prefetcher's own audit, which recurses into all its parts.
    pf.emabForTest().corruptForTest();
    AuditContext ctx = auditOf(pf);
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
}

// ---------------------------------------------------------------------
// Whole-simulator audit runs.
// ---------------------------------------------------------------------

namespace
{

AuditOptions
everyTicks(std::uint64_t n,
           AuditPolicy policy = AuditPolicy::Collect)
{
    AuditOptions o;
    o.cadence = AuditCadence::EveryN;
    o.everyTicks = n;
    o.policy = policy;
    return o;
}

} // namespace

#if EBCP_AUDIT_ENABLED

TEST(SimulatorAudit, CleanRunAuditsCleanAtEveryCadence)
{
    for (AuditCadence cad :
         {AuditCadence::Retire, AuditCadence::Epoch,
          AuditCadence::EveryN}) {
        SimConfig cfg;
        PrefetcherParams pf;
        pf.name = "ebcp";
        Simulator sim(cfg, pf);
        AuditOptions o;
        o.cadence = cad;
        o.everyTicks = 5000;
        ASSERT_TRUE(sim.configureAudit(o).ok());
        auto src = makeWorkload("database");
        // Keep the retire-cadence run small: a full registry pass per
        // retired instruction is the most expensive configuration.
        const std::uint64_t insts =
            cad == AuditCadence::Retire ? 2000 : 30000;
        sim.run(*src, insts / 2, insts);

        ASSERT_NE(sim.auditor(), nullptr);
        EXPECT_GT(sim.auditor()->passes(), 0u);
        EXPECT_TRUE(sim.auditor()->context().clean())
            << violationNames(sim.auditor()->context());
        EXPECT_TRUE(sim.auditor()->toStatus().ok());
    }
}

TEST(SimulatorAudit, AuditingDoesNotPerturbResults)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "ebcp";

    auto s1 = makeWorkload("specjbb");
    Simulator plain(cfg, pf);
    SimResults a = plain.run(*s1, 30000, 60000);

    auto s2 = makeWorkload("specjbb");
    Simulator audited(cfg, pf);
    ASSERT_TRUE(audited.configureAudit(everyTicks(2000)).ok());
    SimResults b = audited.run(*s2, 30000, 60000);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.issuedPrefetches, b.issuedPrefetches);
    EXPECT_EQ(a.usefulPrefetches, b.usefulPrefetches);
    EXPECT_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.coverage, b.coverage);
    ASSERT_NE(audited.auditor(), nullptr);
    EXPECT_GT(audited.auditor()->passes(), 0u);
}

TEST(SimulatorAudit, EveryRunGetsAtLeastOneFinalPass)
{
    // A cadence so sparse no periodic pass would fire: the simulator
    // still runs one final pass before collecting results.
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "null";
    Simulator sim(cfg, pf);
    ASSERT_TRUE(
        sim.configureAudit(everyTicks(std::uint64_t(1) << 60)).ok());
    auto src = makeWorkload("database");
    StatusOr<SimResults> r = sim.tryRun(*src, 1000, 2000);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_GE(sim.auditor()->passes(), 1u);
}

TEST(SimulatorAudit, AbortPolicyStopsTheRun)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "null";
    Simulator sim(cfg, pf);
    ASSERT_TRUE(
        sim.configureAudit(everyTicks(100, AuditPolicy::Abort)).ok());

    // Pre-corrupt the core: the first audit pass must request an
    // abort, and tryRun must surface it as an InvariantViolation.
    sim.core().corruptForTest();
    auto src = makeWorkload("database");
    StatusOr<SimResults> r = sim.tryRun(*src, 5000, 10000);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::InvariantViolation);
    EXPECT_TRUE(sim.auditor()->abortRequested());
}

TEST(SimulatorAudit, SummaryJsonParsesAndEmbedsInStats)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "ebcp";
    Simulator sim(cfg, pf);
    ASSERT_TRUE(sim.configureAudit(everyTicks(2000)).ok());
    auto src = makeWorkload("database");
    sim.run(*src, 10000, 20000);

    const std::string summary = sim.auditSummaryJson();
    ASSERT_FALSE(summary.empty());
    StatusOr<JsonValue> v = parseJson(summary);
    ASSERT_TRUE(v.ok()) << v.status().toString();
    EXPECT_TRUE(v.value().hasNumber("passes"));
    const JsonValue *result = v.value().find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->hasNumber("checks"));
    EXPECT_EQ(result->find("violation_count")->number, 0.0);
}

TEST(SimulatorAudit, OffCadenceDetachesTheAuditor)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "null";
    Simulator sim(cfg, pf);
    ASSERT_TRUE(sim.configureAudit(everyTicks(1000)).ok());
    EXPECT_NE(sim.auditor(), nullptr);

    ASSERT_TRUE(sim.configureAudit(AuditOptions{}).ok());
    EXPECT_EQ(sim.auditor(), nullptr);
    EXPECT_EQ(sim.auditSummaryJson(), "");
}

TEST(SimulatorAudit, CmpSystemAuditsAllCores)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "ebcp";
    pf.ebcp.numCoreStates = 2;
    CmpSystem sys(cfg, pf, 2);
    ASSERT_TRUE(sys.configureAudit(everyTicks(5000)).ok());

    auto s0 = makeWorkload("database", 1);
    auto s1 = makeWorkload("tpcw", 2);
    std::vector<TraceSource *> sources{s0.get(), s1.get()};
    sys.run(sources, 10000, 20000);

    ASSERT_NE(sys.auditor(), nullptr);
    EXPECT_GT(sys.auditor()->passes(), 0u);
    EXPECT_TRUE(sys.auditor()->context().clean())
        << violationNames(sys.auditor()->context());

    // A corrupted core must surface under its per-core registry name.
    sys.core(1).corruptForTest();
    AuditContext ctx = auditOf(sys.core(1), "core1");
    EXPECT_FALSE(ctx.clean()) << violationNames(ctx);
}

TEST(SimulatorAudit, CmpAbortPolicyStopsTheRun)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "null";
    CmpSystem sys(cfg, pf, 2);
    ASSERT_TRUE(
        sys.configureAudit(everyTicks(100, AuditPolicy::Abort)).ok());
    sys.core(0).corruptForTest();

    auto s0 = makeWorkload("database", 1);
    auto s1 = makeWorkload("database", 2);
    std::vector<TraceSource *> sources{s0.get(), s1.get()};
    StatusOr<CmpResults> r = sys.tryRun(sources, 5000, 10000);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::InvariantViolation);
}

#else // !EBCP_AUDIT_ENABLED

TEST(SimulatorAudit, OffBuildRejectsAnyEnabledCadence)
{
    // A -DEBCP_AUDIT=OFF build has no hook sites; it must refuse to
    // pretend it audited rather than silently running nothing.
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "null";
    Simulator sim(cfg, pf);
    Status s = sim.configureAudit(everyTicks(1000));
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_EQ(sim.auditor(), nullptr);

    // Cadence off remains fine.
    EXPECT_TRUE(sim.configureAudit(AuditOptions{}).ok());
}

#endif // EBCP_AUDIT_ENABLED

// ---------------------------------------------------------------------
// Fault x audit cross-matrix: every table/trace fault kind must be
// caught by the invariant it breaks. Registered as the dedicated
// audit_fault_detection ctest entry.
// ---------------------------------------------------------------------

#if EBCP_AUDIT_ENABLED

namespace
{

const AuditContext &
runWithFaults(Simulator &sim, TraceSource &src,
              const AuditOptions &opts)
{
    EXPECT_TRUE(sim.configureAudit(opts).ok());
    SimResults r = sim.run(src, 30000, 60000);
    EXPECT_GT(r.insts, 0u);
    return sim.auditor()->context();
}

} // namespace

TEST(AuditFaultMatrix, FaultFreeRunIsClean)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "ebcp";
    Simulator sim(cfg, pf);
    auto src = makeWorkload("database");
    const AuditContext &ctx = runWithFaults(sim, *src, everyTicks(2000));
    EXPECT_TRUE(ctx.clean()) << violationNames(ctx);
}

TEST(AuditFaultMatrix, TableDropCaughtByConservation)
{
    SimConfig cfg;
    cfg.faults.tableDrop = true;
    cfg.faults.rate = 1.0;
    PrefetcherParams pf;
    pf.name = "ebcp";
    pf.ebcp.faults = cfg.faults;

    Simulator sim(cfg, pf);
    auto src = makeWorkload("database");
    const AuditContext &ctx = runWithFaults(sim, *src, everyTicks(2000));
    EXPECT_FALSE(ctx.clean());
    EXPECT_TRUE(hasViolation(ctx, "table_read_conservation"))
        << violationNames(ctx);
}

TEST(AuditFaultMatrix, TableDelayCaughtByLatencyBound)
{
    SimConfig cfg;
    cfg.faults.tableDelay = true;
    cfg.faults.rate = 1.0;
    // The default delay (2000 ticks) sits exactly at the served-read
    // bound; stretch it far past the drop horizon instead.
    cfg.faults.tableDelayTicks = 50000;
    PrefetcherParams pf;
    pf.name = "ebcp";
    pf.ebcp.faults = cfg.faults;

    Simulator sim(cfg, pf);
    auto src = makeWorkload("database");
    const AuditContext &ctx = runWithFaults(sim, *src, everyTicks(2000));
    EXPECT_FALSE(ctx.clean());
    EXPECT_TRUE(hasViolation(ctx, "table_read_latency_bounded"))
        << violationNames(ctx);
}

TEST(AuditFaultMatrix, TraceBitflipCaughtByRecordScreening)
{
    SimConfig cfg;
    cfg.faults.traceBitflip = true;
    cfg.faults.rate = 0.05;
    PrefetcherParams pf;
    pf.name = "ebcp";

    auto inner = makeWorkload("database");
    FaultInjectingTraceSource faulty(*inner, cfg.faults);

    Simulator sim(cfg, pf);
    const AuditContext &ctx =
        runWithFaults(sim, faulty, everyTicks(2000));
    EXPECT_GT(faulty.bitflipsInjected(), 0u);
    EXPECT_FALSE(ctx.clean());
    EXPECT_TRUE(hasViolation(ctx, "trace_records_well_formed"))
        << violationNames(ctx);
}

TEST(AuditFaultMatrix, CheckpointRoundTripStaysClean)
{
    // Crash-safety x audit: a measurement forked from a restored
    // checkpoint must satisfy every runtime invariant, exactly as the
    // uninterrupted run does. A violation here means deserialization
    // rebuilt internally inconsistent component state.
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "ebcp";

    std::string blob;
    {
        Simulator sim(cfg, pf);
        auto src = makeWorkload("database");
        ASSERT_TRUE(sim.runWarm(*src, 30000).ok());
        StatusOr<std::string> b = sim.serializeCheckpoint(*src);
        ASSERT_TRUE(b.ok()) << b.status().toString();
        blob = b.take();
    }

    Simulator sim(cfg, pf);
    auto src = makeWorkload("database");
    ASSERT_TRUE(sim.restoreCheckpoint(blob, *src).ok());
    ASSERT_TRUE(sim.configureAudit(everyTicks(2000)).ok());
    StatusOr<SimResults> r = sim.runMeasure(*src, 60000);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    const AuditContext &ctx = sim.auditor()->context();
    EXPECT_TRUE(ctx.clean()) << violationNames(ctx);
}

TEST(AuditFaultMatrix, CorruptionAfterRestoreStillTripsAudit)
{
    // The audit must keep its teeth on a restored simulator: damage
    // the restored core state and the Abort-policy audit must fail
    // the measurement with InvariantViolation.
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "null";

    std::string blob;
    {
        Simulator sim(cfg, pf);
        auto src = makeWorkload("database");
        ASSERT_TRUE(sim.runWarm(*src, 30000).ok());
        StatusOr<std::string> b = sim.serializeCheckpoint(*src);
        ASSERT_TRUE(b.ok()) << b.status().toString();
        blob = b.take();
    }

    Simulator sim(cfg, pf);
    auto src = makeWorkload("database");
    ASSERT_TRUE(sim.restoreCheckpoint(blob, *src).ok());
    ASSERT_TRUE(
        sim.configureAudit(everyTicks(100, AuditPolicy::Abort)).ok());
    sim.core().corruptForTest();
    StatusOr<SimResults> r = sim.runMeasure(*src, 60000);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::InvariantViolation);
}

TEST(AuditFaultMatrix, AbortPolicyTurnsAFaultIntoAFailedRun)
{
    SimConfig cfg;
    cfg.faults.tableDrop = true;
    cfg.faults.rate = 1.0;
    PrefetcherParams pf;
    pf.name = "ebcp";
    pf.ebcp.faults = cfg.faults;

    Simulator sim(cfg, pf);
    ASSERT_TRUE(
        sim.configureAudit(everyTicks(2000, AuditPolicy::Abort)).ok());
    auto src = makeWorkload("database");
    StatusOr<SimResults> r = sim.tryRun(*src, 30000, 60000);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::InvariantViolation);
    EXPECT_NE(r.status().message().find("table_read_conservation"),
              std::string::npos)
        << r.status().message();
}

#endif // EBCP_AUDIT_ENABLED
