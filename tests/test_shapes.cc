/**
 * @file
 * Miniature shape-regression tests: the qualitative results of the
 * paper's figures, checked at reduced scale so the suite stays fast.
 * These are the guardrails that keep refactoring from silently
 * breaking the reproduction.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "trace/workloads.hh"

using namespace ebcp;

namespace
{

constexpr std::uint64_t Warm = 1'500'000;
constexpr std::uint64_t Measure = 3'000'000;

SimResults
runDb(const PrefetcherParams &p, const SimConfig &cfg = SimConfig{})
{
    auto src = makeWorkload("database");
    return runOnce(cfg, p, *src, Warm, Measure);
}

const SimResults &
dbBaseline()
{
    static SimResults r = [] {
        PrefetcherParams p;
        p.name = "null";
        return runDb(p);
    }();
    return r;
}

} // namespace

TEST(Shapes, Fig4DegreeHelpsUpToEight)
{
    // Figure 4: improvement grows with degree in the low range.
    double prev = -100.0;
    for (unsigned d : {1u, 4u, 8u}) {
        PrefetcherParams p;
        p.name = "ebcp";
        p.ebcp.prefetchDegree = d;
        double imp = improvementPct(dbBaseline(), runDb(p));
        EXPECT_GT(imp, prev - 0.5) << "degree " << d;
        prev = imp;
    }
    EXPECT_GT(prev, 3.0); // degree 8 gives a solid gain
}

TEST(Shapes, Fig5CoverageUpAccuracyDownWithDegree)
{
    PrefetcherParams lo;
    lo.name = "ebcp";
    lo.ebcp.prefetchDegree = 1;
    SimResults rlo = runDb(lo);

    PrefetcherParams hi;
    hi.name = "ebcp";
    hi.ebcp.prefetchDegree = 16;
    SimResults rhi = runDb(hi);

    EXPECT_GT(rhi.coverage, rlo.coverage);
    EXPECT_LT(rhi.accuracy, rlo.accuracy);
}

TEST(Shapes, Fig6TableKneeExists)
{
    // Figure 6: a tiny table erodes performance badly; a large one
    // adds nothing over the knee.
    PrefetcherParams tiny;
    tiny.name = "ebcp";
    tiny.ebcp.tableEntries = 1 << 10;
    double tiny_imp = improvementPct(dbBaseline(), runDb(tiny));

    PrefetcherParams knee;
    knee.name = "ebcp";
    knee.ebcp.tableEntries = 1 << 17;
    double knee_imp = improvementPct(dbBaseline(), runDb(knee));

    PrefetcherParams big;
    big.name = "ebcp";
    big.ebcp.tableEntries = 1 << 20;
    double big_imp = improvementPct(dbBaseline(), runDb(big));

    EXPECT_LT(tiny_imp, knee_imp * 0.5);
    EXPECT_NEAR(big_imp, knee_imp, 2.0);
}

TEST(Shapes, Fig8LowBandwidthPunishesHighDegree)
{
    // Figure 8: at 3.2 GB/s, degree 32 must not beat degree 8.
    SimConfig low;
    low.mem.scaleBandwidth(1.0 / 3.0);

    PrefetcherParams d8;
    d8.name = "ebcp";
    d8.ebcp.prefetchDegree = 8;
    double imp8 = improvementPct(dbBaseline(), runDb(d8, low));

    PrefetcherParams d32;
    d32.name = "ebcp";
    d32.ebcp.prefetchDegree = 32;
    d32.ebcp.emabAddrsPerEntry = 32;
    double imp32 = improvementPct(dbBaseline(), runDb(d32, low));

    EXPECT_LE(imp32, imp8 + 1.0);
}

TEST(Shapes, Fig9EbcpBeatsMinus)
{
    PrefetcherParams e;
    e.name = "ebcp";
    double imp = improvementPct(dbBaseline(), runDb(e));

    PrefetcherParams m;
    m.name = "ebcp-minus";
    double imp_minus = improvementPct(dbBaseline(), runDb(m));

    EXPECT_GT(imp, imp_minus);
}

TEST(Shapes, Fig9DepthBeatsWidth)
{
    PrefetcherParams s61;
    s61.name = "solihin-6-1";
    double d6 = improvementPct(dbBaseline(), runDb(s61));

    PrefetcherParams s32;
    s32.name = "solihin-3-2";
    double d3 = improvementPct(dbBaseline(), runDb(s32));

    EXPECT_GT(d6, d3);
}

TEST(Shapes, Fig9SmallOnChipTablesIneffective)
{
    for (const char *scheme : {"ghb-small", "tcp-small", "stream"}) {
        PrefetcherParams p;
        p.name = scheme;
        double imp = improvementPct(dbBaseline(), runDb(p));
        EXPECT_LT(imp, 6.0) << scheme;
    }
}

TEST(Shapes, Fig9SmsHighCoverageLowEpochRemoval)
{
    // The paper's SMS observation: strong coverage, weak EPI effect
    // relative to it.
    PrefetcherParams p;
    p.name = "sms";
    SimResults r = runDb(p);
    if (r.coverage > 0.15) {
        const double epi_cut = epiReductionPct(dbBaseline(), r) / 100.0;
        EXPECT_LT(epi_cut, r.coverage);
    }
}

TEST(Shapes, EbcpBeatsAllSmallOnChipSchemes)
{
    // EBCP's edge over the small on-chip schemes is recurrence-driven,
    // so this comparison needs a longer window than the other shape
    // tests (its coverage is still climbing at 3M instructions while
    // GHB's short-range delta replay saturates instantly).
    SimConfig cfg;
    PrefetcherParams base;
    base.name = "null";
    auto s0 = makeWorkload("database");
    SimResults rb = runOnce(cfg, base, *s0, 3'000'000, 5'000'000);

    PrefetcherParams e;
    e.name = "ebcp";
    auto s1 = makeWorkload("database");
    double ebcp_imp =
        improvementPct(rb, runOnce(cfg, e, *s1, 3'000'000, 5'000'000));

    for (const char *scheme : {"ghb-small", "tcp-small", "stream"}) {
        PrefetcherParams p;
        p.name = scheme;
        auto s = makeWorkload("database");
        EXPECT_GT(ebcp_imp,
                  improvementPct(
                      rb, runOnce(cfg, p, *s, 3'000'000, 5'000'000)))
            << scheme;
    }
}

TEST(Shapes, AblationOnChipTableInvertsEpochSkip)
{
    // ext_ablation's coupling result: with a zero-latency table,
    // recording epoch i+1 (the minus variant) stops being a handicap.
    PrefetcherParams e;
    e.name = "ebcp";
    e.ebcp.onChipTable = true;
    double ideal = improvementPct(dbBaseline(), runDb(e));

    PrefetcherParams m;
    m.name = "ebcp-minus";
    m.ebcp.onChipTable = true;
    double ideal_minus = improvementPct(dbBaseline(), runDb(m));

    EXPECT_GT(ideal_minus, ideal - 1.0);
}
