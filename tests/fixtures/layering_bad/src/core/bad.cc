// Fixture TU: a core file with an illegal core->harness include (the
// edge is both undeclared in the fixture rules and a libsim->
// libharness reachability violation, so the linter must report it and
// exit nonzero; tests/CMakeLists.txt marks the ctest entry WILL_FAIL).
#include "harness/h.hh"
#include "util/a.hh"

int fixtureBad() { return fixtureUtil() + fixtureHarness(); }
