// Fixture: an innocent core utility header.
#ifndef FIXTURE_UTIL_A_HH
#define FIXTURE_UTIL_A_HH
inline int fixtureUtil() { return 1; }
#endif
