// Fixture: a harness-layer header that core code must never reach.
#ifndef FIXTURE_HARNESS_H_HH
#define FIXTURE_HARNESS_H_HH
inline int fixtureHarness() { return 2; }
#endif
