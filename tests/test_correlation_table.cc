/**
 * @file
 * Tests for the main-memory correlation table (Section 3.4.2,
 * Figure 3): direct-mapped tags, LRU slots, older-epoch priority and
 * the prefetch-buffer-hit LRU refresh.
 */

#include <gtest/gtest.h>

#include "core/correlation_table.hh"

using namespace ebcp;

namespace
{

CorrTableConfig
cfg4()
{
    CorrTableConfig c;
    c.entries = 1024;
    c.addrsPerEntry = 4;
    return c;
}

} // namespace

TEST(CorrTableTest, MissOnEmpty)
{
    CorrelationTable t(cfg4());
    std::vector<Addr> out;
    EXPECT_FALSE(t.lookup(0x1000, out));
    EXPECT_TRUE(out.empty());
}

TEST(CorrTableTest, UpdateThenLookup)
{
    CorrelationTable t(cfg4());
    t.update(0x1000, {0xa0, 0xb0});
    std::vector<Addr> out;
    EXPECT_TRUE(t.lookup(0x1000, out));
    ASSERT_EQ(out.size(), 2u);
}

TEST(CorrTableTest, MruFirstOrdering)
{
    CorrelationTable t(cfg4());
    t.update(0x1000, {0xa0});
    t.update(0x1000, {0xb0});
    std::vector<Addr> out;
    t.lookup(0x1000, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0xb0u); // most recently written first
    EXPECT_EQ(out[1], 0xa0u);
}

TEST(CorrTableTest, RefreshKeepsAddressPresent)
{
    CorrelationTable t(cfg4());
    t.update(0x1000, {0xa0, 0xb0, 0xc0, 0xd0});
    // Refresh 0xa0 so it is MRU, then add a new address: the LRU
    // victim must not be 0xa0.
    std::uint64_t idx = t.indexOf(0x1000);
    EXPECT_TRUE(t.refreshLru(idx, 0xa0));
    t.update(0x1000, {0xe0});
    std::vector<Addr> out;
    t.lookup(0x1000, out);
    EXPECT_NE(std::find(out.begin(), out.end(), 0xa0), out.end());
    EXPECT_NE(std::find(out.begin(), out.end(), 0xe0), out.end());
    EXPECT_EQ(std::find(out.begin(), out.end(), 0xb0), out.end());
}

TEST(CorrTableTest, TagMismatchReallocates)
{
    CorrTableConfig c = cfg4();
    c.entries = 1; // force conflicts
    CorrelationTable t(c);
    t.update(0x1000, {0xa0});
    t.update(0x2000, {0xb0});
    std::vector<Addr> out;
    EXPECT_FALSE(t.lookup(0x1000, out));
    EXPECT_TRUE(t.lookup(0x2000, out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0xb0u);
}

TEST(CorrTableTest, SameUpdateNeverEvictsItsOwnWrites)
{
    // Older-epoch priority: when the payload exceeds capacity, the
    // trailing (younger) addresses are dropped, not the leading ones.
    CorrelationTable t(cfg4());
    t.update(0x1000, {0x10, 0x20, 0x30, 0x40}); // fills all 4 slots
    t.update(0x1000, {0x50, 0x60, 0x70, 0x80}); // replaces all 4
    std::vector<Addr> out;
    t.lookup(0x1000, out);
    for (Addr a : {0x50, 0x60, 0x70, 0x80})
        EXPECT_NE(std::find(out.begin(), out.end(), Addr(a)), out.end());
}

TEST(CorrTableTest, PresentAddressesAreRefreshedNotDuplicated)
{
    CorrelationTable t(cfg4());
    t.update(0x1000, {0xa0, 0xb0});
    t.update(0x1000, {0xa0, 0xc0});
    std::vector<Addr> out;
    t.lookup(0x1000, out);
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(std::count(out.begin(), out.end(), 0xa0u), 1);
}

TEST(CorrTableTest, EmptyPayloadIsNoop)
{
    CorrelationTable t(cfg4());
    t.update(0x1000, {0xa0});
    t.update(0x1000, {});
    std::vector<Addr> out;
    EXPECT_TRUE(t.lookup(0x1000, out));
    EXPECT_EQ(out.size(), 1u);
}

TEST(CorrTableTest, RefreshOnWrongIndexFails)
{
    CorrelationTable t(cfg4());
    t.update(0x1000, {0xa0});
    std::uint64_t idx = t.indexOf(0x1000);
    EXPECT_FALSE(t.refreshLru(idx + 1, 0xa0));
    EXPECT_FALSE(t.refreshLru(idx, 0xdead));
}

TEST(CorrTableTest, ClearDropsEverything)
{
    CorrelationTable t(cfg4());
    t.update(0x1000, {0xa0});
    t.clear();
    std::vector<Addr> out;
    EXPECT_FALSE(t.lookup(0x1000, out));
    EXPECT_EQ(t.populatedEntries(), 0u);
}

TEST(CorrTableTest, LazyHostStorage)
{
    CorrTableConfig c;
    c.entries = 1ULL << 23; // the idealized 8M-entry table
    c.addrsPerEntry = 32;
    CorrelationTable t(c);
    t.update(0x1000, {0xa0});
    // Only the touched entry costs host memory.
    EXPECT_EQ(t.populatedEntries(), 1u);
}

TEST(CorrTableTest, EntryTransferBytes)
{
    CorrTableConfig c;
    c.addrsPerEntry = 8;
    // 8 + 6*8 = 56 -> one 64B transfer (the paper's sizing argument).
    EXPECT_EQ(c.entryTransferBytes(), 64u);
    c.addrsPerEntry = 32;
    // 8 + 192 = 200 -> 256B.
    EXPECT_EQ(c.entryTransferBytes(), 256u);
}

TEST(CorrTableTest, FootprintMatchesPaper)
{
    CorrTableConfig c;
    c.entries = 1ULL << 20;
    c.addrsPerEntry = 8;
    // "one million entries (which corresponds to 64MB of memory)"
    EXPECT_EQ(c.footprintBytes(), 64 * MiB);
}

TEST(CorrTableTest, IndexWithinRange)
{
    CorrelationTable t(cfg4());
    for (Addr a = 0; a < 1000; ++a)
        EXPECT_LT(t.indexOf(a * 64), 1024u);
}

using CorrDegreeTest = ::testing::TestWithParam<unsigned>;

TEST_P(CorrDegreeTest, SlotCountNeverExceedsDegree)
{
    CorrTableConfig c;
    c.entries = 64;
    c.addrsPerEntry = GetParam();
    CorrelationTable t(c);
    for (int round = 0; round < 20; ++round) {
        std::vector<Addr> payload;
        for (unsigned i = 0; i < c.addrsPerEntry + 4; ++i)
            payload.push_back(0x1000 + (round * 64 + i) * 64);
        // Payload is pre-truncated by callers; emulate that here.
        payload.resize(c.addrsPerEntry);
        t.update(0xbeef, payload);
        std::vector<Addr> out;
        t.lookup(0xbeef, out);
        EXPECT_LE(out.size(), c.addrsPerEntry);
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, CorrDegreeTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));
