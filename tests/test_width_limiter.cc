/**
 * @file
 * Tests for the WidthLimiter pipeline-resource model and the op-class
 * property tables.
 */

#include <gtest/gtest.h>

#include "cpu/op_class.hh"
#include "cpu/width_limiter.hh"

using namespace ebcp;

TEST(WidthLimiterTest, WidthEventsShareACycle)
{
    WidthLimiter w(4);
    EXPECT_EQ(w.next(10), 10u);
    EXPECT_EQ(w.next(10), 10u);
    EXPECT_EQ(w.next(10), 10u);
    EXPECT_EQ(w.next(10), 10u);
    EXPECT_EQ(w.next(10), 11u); // fifth spills to the next cycle
}

TEST(WidthLimiterTest, LaterRequestMovesForward)
{
    WidthLimiter w(2);
    EXPECT_EQ(w.next(5), 5u);
    EXPECT_EQ(w.next(9), 9u); // jumps ahead, resets the count
    EXPECT_EQ(w.next(9), 9u);
    EXPECT_EQ(w.next(9), 10u);
}

TEST(WidthLimiterTest, NeverGoesBackwards)
{
    WidthLimiter w(1);
    EXPECT_EQ(w.next(100), 100u);
    // An earlier request cannot be scheduled before a later one
    // already granted (in-order stage).
    EXPECT_EQ(w.next(50), 101u);
}

TEST(WidthLimiterTest, WidthOneSerializes)
{
    WidthLimiter w(1);
    Tick prev = w.next(0);
    for (int i = 0; i < 10; ++i) {
        Tick t = w.next(0);
        EXPECT_EQ(t, prev + 1);
        prev = t;
    }
}

TEST(WidthLimiterTest, ClearRestarts)
{
    WidthLimiter w(1);
    w.next(100);
    w.clear();
    EXPECT_EQ(w.next(0), 0u);
}

TEST(OpClassTest, Latencies)
{
    EXPECT_EQ(opLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(opLatency(OpClass::FpAdd), 3u);
    EXPECT_EQ(opLatency(OpClass::FpMul), 4u);
}

TEST(OpClassTest, Categories)
{
    EXPECT_TRUE(isControl(OpClass::Branch));
    EXPECT_TRUE(isControl(OpClass::Call));
    EXPECT_TRUE(isControl(OpClass::Return));
    EXPECT_FALSE(isControl(OpClass::Load));
    EXPECT_TRUE(isMem(OpClass::Load));
    EXPECT_TRUE(isMem(OpClass::Store));
    EXPECT_FALSE(isMem(OpClass::IntAlu));
}

TEST(OpClassTest, NamesAreDistinct)
{
    EXPECT_STRNE(opClassName(OpClass::Load), opClassName(OpClass::Store));
    EXPECT_STRNE(opClassName(OpClass::Branch),
                 opClassName(OpClass::Call));
}
