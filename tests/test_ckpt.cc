/**
 * @file
 * Tests for the checkpoint subsystem: archiver primitives, bit-exact
 * simulator save/restore (in memory and through the atomic file
 * path), version/fingerprint skew rejection, the corrupted-checkpoint
 * corpus (every CkptFaultKind must surface as a coded Status, never a
 * crash), the sweep journal's torn-line tolerance, and deterministic
 * retry backoff.
 *
 * CkptRoundtrip.* and CkptCorpus.* are also registered as dedicated
 * ctest entries (ckpt_roundtrip, ckpt_corruption_corpus) which
 * check.sh stage 5 runs under ASan/UBSan.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "ckpt/archiver.hh"
#include "ckpt/checkpoint.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "sim/simulator.hh"
#include "trace/fault_injection.hh"
#include "trace/workloads.hh"
#include "util/crc32.hh"

using namespace ebcp;
using namespace ebcp::harness;

namespace
{

constexpr std::uint64_t kWarm = 60'000;
constexpr std::uint64_t kMeasure = 120'000;

void
expectBitIdentical(const SimResults &a, const SimResults &b,
                   const std::string &what)
{
    EXPECT_EQ(a.insts, b.insts) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.epochs, b.epochs) << what;
    EXPECT_EQ(a.cpi, b.cpi) << what;
    EXPECT_EQ(a.epochsPer1k, b.epochsPer1k) << what;
    EXPECT_EQ(a.l2InstMissPer1k, b.l2InstMissPer1k) << what;
    EXPECT_EQ(a.l2LoadMissPer1k, b.l2LoadMissPer1k) << what;
    EXPECT_EQ(a.usefulPrefetches, b.usefulPrefetches) << what;
    EXPECT_EQ(a.issuedPrefetches, b.issuedPrefetches) << what;
    EXPECT_EQ(a.droppedPrefetches, b.droppedPrefetches) << what;
    EXPECT_EQ(a.timelyPrefetches, b.timelyPrefetches) << what;
    EXPECT_EQ(a.latePrefetches, b.latePrefetches) << what;
    EXPECT_EQ(a.earlyEvictedPrefetches, b.earlyEvictedPrefetches)
        << what;
    EXPECT_EQ(a.coverage, b.coverage) << what;
    EXPECT_EQ(a.accuracy, b.accuracy) << what;
    EXPECT_EQ(a.timeliness, b.timeliness) << what;
    EXPECT_EQ(a.readBusUtil, b.readBusUtil) << what;
    EXPECT_EQ(a.writeBusUtil, b.writeBusUtil) << what;
}

/** A warmed simulator's serialized state plus its cold results. */
struct WarmRun
{
    std::string blob;
    SimResults coldResults;
};

WarmRun
warmAndMeasure(const SimConfig &cfg, const PrefetcherParams &pf,
               const std::string &workload)
{
    WarmRun out;
    Simulator sim(cfg, pf);
    auto src = makeWorkload(workload);
    EXPECT_TRUE(sim.runWarm(*src, kWarm).ok());
    StatusOr<std::string> blob = sim.serializeCheckpoint(*src);
    EXPECT_TRUE(blob.ok()) << blob.status().toString();
    out.blob = blob.ok() ? blob.take() : std::string();
    StatusOr<SimResults> r = sim.runMeasure(*src, kMeasure);
    EXPECT_TRUE(r.ok()) << r.status().toString();
    if (r.ok())
        out.coldResults = r.take();
    return out;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

} // namespace

// ---------------------------------------------------------------------
// Archiver primitives.
// ---------------------------------------------------------------------

TEST(CkptRoundtrip, ArchiverPrimitivesAreBitExact)
{
    std::string bytes;
    {
        ckpt::Archiver ar = ckpt::Archiver::saver(bytes);
        std::uint8_t a = 0xab;
        std::uint32_t b = 0xdeadbeef;
        std::uint64_t c = 0x0123456789abcdefULL;
        std::int64_t d = -42;
        double e = -0.0;
        double f = std::nan("");
        bool g = true;
        std::string h = "section";
        std::vector<std::uint64_t> v{1, 2, 3};
        ar.u8(a);
        ar.u32(b);
        ar.u64(c);
        ar.i64(d);
        ar.f64(e);
        ar.f64(f);
        ar.boolean(g);
        ar.str(h);
        ar.vecU64(v);
        ASSERT_TRUE(ar.ok());
    }
    {
        ckpt::Archiver ar = ckpt::Archiver::loader(bytes.data(),
                                                   bytes.size());
        std::uint8_t a = 0;
        std::uint32_t b = 0;
        std::uint64_t c = 0;
        std::int64_t d = 0;
        double e = 1.0, f = 1.0;
        bool g = false;
        std::string h;
        std::vector<std::uint64_t> v;
        ar.u8(a);
        ar.u32(b);
        ar.u64(c);
        ar.i64(d);
        ar.f64(e);
        ar.f64(f);
        ar.boolean(g);
        ar.str(h);
        ar.vecU64(v);
        ASSERT_TRUE(ar.ok()) << ar.status().toString();
        EXPECT_EQ(ar.remaining(), 0u);
        EXPECT_EQ(a, 0xab);
        EXPECT_EQ(b, 0xdeadbeefu);
        EXPECT_EQ(c, 0x0123456789abcdefULL);
        EXPECT_EQ(d, -42);
        EXPECT_TRUE(std::signbit(e));
        EXPECT_TRUE(std::isnan(f));
        EXPECT_TRUE(g);
        EXPECT_EQ(h, "section");
        EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 2, 3}));
    }
}

TEST(CkptRoundtrip, TruncatedPayloadIsCodedNotUb)
{
    std::string bytes;
    {
        ckpt::Archiver ar = ckpt::Archiver::saver(bytes);
        std::uint64_t v = 7;
        ar.u64(v);
    }
    // Load more than was written: sticky Corruption, not a wild read.
    ckpt::Archiver ar = ckpt::Archiver::loader(bytes.data(), 4);
    std::uint64_t v = 0;
    ar.u64(v);
    ASSERT_FALSE(ar.ok());
    EXPECT_EQ(ar.status().code(), StatusCode::Corruption);
    // Sticky: later calls stay failed without touching outputs.
    std::uint64_t w = 99;
    ar.u64(w);
    EXPECT_EQ(w, 99u);
}

// Originally found by fuzz_ckpt_restore (the minimized inputs live in
// fuzz/corpus/regressions/ckpt_restore/): a corrupt vector count used
// to drive an n * sizeof(T) resize before any bounds check, so a
// 16-byte payload could demand terabytes of host memory. The count
// must now be rejected against the remaining payload *before* the
// allocation, scaled by the smallest possible element size.
TEST(CkptRoundtrip, CorruptVectorCountIsClampedBeforeAllocation)
{
    std::string bytes;
    {
        ckpt::Archiver ar = ckpt::Archiver::saver(bytes);
        std::uint64_t huge = std::uint64_t{1} << 40;
        ar.u64(huge); // forged count with no elements behind it
    }
    ckpt::Archiver ar = ckpt::Archiver::loader(bytes.data(),
                                               bytes.size());
    std::vector<std::uint64_t> v;
    ar.vecU64(v);
    ASSERT_FALSE(ar.ok());
    EXPECT_EQ(ar.status().code(), StatusCode::Corruption);
    EXPECT_TRUE(v.empty()); // the resize never happened
}

TEST(CkptRoundtrip, CorruptStringLengthIsClampedBeforeAllocation)
{
    std::string bytes;
    {
        ckpt::Archiver ar = ckpt::Archiver::saver(bytes);
        std::uint32_t huge = 0xffffffffu;
        ar.u32(huge); // forged string length, no bytes behind it
    }
    ckpt::Archiver ar = ckpt::Archiver::loader(bytes.data(),
                                               bytes.size());
    std::string s;
    ar.str(s);
    ASSERT_FALSE(ar.ok());
    EXPECT_EQ(ar.status().code(), StatusCode::Corruption);
    EXPECT_TRUE(s.empty());
}

// Container-level cousins of the same bug class, also fuzz findings:
// a section count or section name length the buffer cannot possibly
// hold must be corruption detected up front, not a loop that
// allocates its way toward the truncation.
TEST(CkptCorpus, ImplausibleSectionFramingIsCodedUpFront)
{
    auto packU32 = [](std::string &out, std::uint32_t v) {
        for (unsigned i = 0; i < 4; ++i)
            out.push_back(static_cast<char>(v >> (8 * i)));
    };
    auto packU64 = [](std::string &out, std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i)
            out.push_back(static_cast<char>(v >> (8 * i)));
    };
    auto header = [&](std::uint32_t count) {
        std::string out;
        out.append(ckpt::kCkptMagic, sizeof ckpt::kCkptMagic);
        packU32(out, ckpt::kCkptFormatVersion);
        packU64(out, 0); // fingerprint (tests pass expect=0)
        packU32(out, count);
        packU32(out, crc32(out.data(), out.size()));
        return out;
    };

    {
        // 4 billion sections "stored" in a 16-byte body.
        std::string buf = header(0xffffffffu);
        buf.append(16, '\0');
        auto r = ckpt::CheckpointReader::fromBuffer(buf, 0);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::Corruption);
        EXPECT_NE(r.status().message().find("sections"),
                  std::string::npos);
    }
    {
        // One section whose name claims 64 KiB in a body that holds
        // it -- length-plausible, but no real section name is that
        // long, so the cap must reject it as corruption.
        std::string buf = header(1);
        packU32(buf, 1u << 16);
        buf.append(1u << 16, 'x');
        packU64(buf, 0);
        packU32(buf, crc32("", 0));
        auto r = ckpt::CheckpointReader::fromBuffer(buf, 0);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::Corruption);
        EXPECT_NE(r.status().message().find("name length"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Container API: policy names, writer error latching, file round trip.
// ---------------------------------------------------------------------

TEST(CkptContainer, PolicyNamesRoundTrip)
{
    auto strict = ckpt::ckptPolicyFromName("strict");
    ASSERT_TRUE(strict.ok());
    EXPECT_EQ(strict.value(), ckpt::CkptPolicy::Strict);
    auto rebuild = ckpt::ckptPolicyFromName("rebuild");
    ASSERT_TRUE(rebuild.ok());
    EXPECT_EQ(rebuild.value(), ckpt::CkptPolicy::Rebuild);
    EXPECT_STREQ(ckpt::ckptPolicyName(ckpt::CkptPolicy::Strict),
                 "strict");
    EXPECT_STREQ(ckpt::ckptPolicyName(ckpt::CkptPolicy::Rebuild),
                 "rebuild");

    auto bogus = ckpt::ckptPolicyFromName("lenient");
    ASSERT_FALSE(bogus.ok());
    EXPECT_EQ(bogus.status().code(), StatusCode::InvalidArgument);
}

TEST(CkptContainer, WriterRejectsDuplicateSectionAndStaysLatched)
{
    ckpt::CheckpointWriter w(0);
    ASSERT_TRUE(w.section("a", [](ckpt::Archiver &ar) {
        std::uint64_t v = 1;
        ar.u64(v);
    }).ok());

    Status dup = w.section("a", [](ckpt::Archiver &ar) {
        std::uint64_t v = 2;
        ar.u64(v);
    });
    ASSERT_FALSE(dup.ok());
    EXPECT_EQ(dup.code(), StatusCode::InvalidArgument);
    EXPECT_NE(dup.message().find("duplicate"), std::string::npos);

    // First failure latches the writer: later sections and
    // serialize() refuse rather than emit a half-built container.
    EXPECT_FALSE(w.section("b", [](ckpt::Archiver &) {}).ok());
    EXPECT_FALSE(w.serialize().ok());
    EXPECT_FALSE(w.writeAtomic(tempPath("never_written.ckpt")).ok());
}

TEST(CkptContainer, FailingFillIsContextWrappedAndSectionDropped)
{
    ckpt::CheckpointWriter w(0);
    Status s = w.section("core", [](ckpt::Archiver &ar) {
        ar.fail(corruptionError("fill exploded"));
    });
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_NE(s.message().find("checkpoint section 'core'"),
              std::string::npos)
        << s.message();
}

TEST(CkptContainer, FileRoundTripAndMissingFileAreCoded)
{
    const std::string path = tempPath("ckpt_container_api.ckpt");
    ckpt::CheckpointWriter w(0xabcdef);
    ASSERT_TRUE(w.section("numbers", [](ckpt::Archiver &ar) {
        std::uint64_t a = 7, b = 9;
        ar.u64(a);
        ar.u64(b);
    }).ok());
    ASSERT_TRUE(w.writeAtomic(path).ok());

    auto r = ckpt::CheckpointReader::fromFile(path, 0xabcdef);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r.value().fingerprint(), 0xabcdefu);
    EXPECT_TRUE(r.value().hasSection("numbers"));
    EXPECT_FALSE(r.value().hasSection("absent"));

    std::uint64_t a = 0, b = 0;
    ASSERT_TRUE(r.value().section("numbers", [&](ckpt::Archiver &ar) {
        ar.u64(a);
        ar.u64(b);
    }).ok());
    EXPECT_EQ(a, 7u);
    EXPECT_EQ(b, 9u);

    // Consuming only part of a section is layout skew, not success.
    Status skew = r.value().section("numbers", [&](ckpt::Archiver &ar) {
        ar.u64(a);
    });
    ASSERT_FALSE(skew.ok());
    EXPECT_EQ(skew.code(), StatusCode::Corruption);
    EXPECT_NE(skew.message().find("unconsumed"), std::string::npos);

    Status missing = r.value().section("absent",
                                       [](ckpt::Archiver &) {});
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.code(), StatusCode::Corruption);
    EXPECT_NE(missing.message().find("missing section"),
              std::string::npos);

    std::remove(path.c_str());
    auto gone = ckpt::CheckpointReader::fromFile(path, 0xabcdef);
    ASSERT_FALSE(gone.ok());
    EXPECT_EQ(gone.status().code(), StatusCode::NotFound);
}

TEST(CkptContainer, TrailingBytesAndTruncatedHeaderAreCoded)
{
    ckpt::CheckpointWriter w(0);
    ASSERT_TRUE(w.section("s", [](ckpt::Archiver &ar) {
        std::uint8_t v = 1;
        ar.u8(v);
    }).ok());
    StatusOr<std::string> data = w.serialize();
    ASSERT_TRUE(data.ok());

    const std::string trailing = data.value() + std::string(3, '\0');
    auto r = ckpt::CheckpointReader::fromBuffer(trailing, 0);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::Corruption);
    EXPECT_NE(r.status().message().find("trailing"), std::string::npos);

    const std::string stub = data.value().substr(0, 10);
    auto t = ckpt::CheckpointReader::fromBuffer(stub, 0);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), StatusCode::Corruption);
}

// ---------------------------------------------------------------------
// Whole-simulator save/restore.
// ---------------------------------------------------------------------

TEST(CkptRoundtrip, RestoredRunIsBitIdenticalToUninterrupted)
{
    for (const char *pf_name : {"null", "ebcp", "stream"}) {
        SCOPED_TRACE(pf_name);
        SimConfig cfg;
        PrefetcherParams pf;
        pf.name = pf_name;
        const WarmRun warm = warmAndMeasure(cfg, pf, "database");
        ASSERT_FALSE(warm.blob.empty());

        Simulator sim(cfg, pf);
        auto src = makeWorkload("database");
        ASSERT_TRUE(sim.restoreCheckpoint(warm.blob, *src).ok());
        StatusOr<SimResults> r = sim.runMeasure(*src, kMeasure);
        ASSERT_TRUE(r.ok()) << r.status().toString();
        expectBitIdentical(r.value(), warm.coldResults, pf_name);
    }
}

TEST(CkptRoundtrip, FileRoundTripThroughAtomicWrite)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "ebcp";
    const std::string path = tempPath("ckpt_file_roundtrip.ckpt");

    SimResults cold;
    {
        Simulator sim(cfg, pf);
        auto src = makeWorkload("tpcw");
        ASSERT_TRUE(sim.runWarm(*src, kWarm).ok());
        ASSERT_TRUE(sim.saveCheckpoint(path, *src).ok());
        StatusOr<SimResults> r = sim.runMeasure(*src, kMeasure);
        ASSERT_TRUE(r.ok());
        cold = r.take();
    }
    {
        Simulator sim(cfg, pf);
        auto src = makeWorkload("tpcw");
        ASSERT_TRUE(sim.restoreCheckpointFile(path, *src).ok());
        StatusOr<SimResults> r = sim.runMeasure(*src, kMeasure);
        ASSERT_TRUE(r.ok());
        expectBitIdentical(r.value(), cold, "file roundtrip");
    }
    std::remove(path.c_str());
}

TEST(CkptRoundtrip, ConfigFingerprintMismatchIsCoded)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "ebcp";
    const WarmRun warm = warmAndMeasure(cfg, pf, "database");

    // A different table size is a different machine: restoring the
    // checkpoint against it must be rejected up front.
    PrefetcherParams other = pf;
    other.ebcp.tableEntries = pf.ebcp.tableEntries * 2;
    Simulator sim(cfg, other);
    auto src = makeWorkload("database");
    Status s = sim.restoreCheckpoint(warm.blob, *src);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("fingerprint"), std::string::npos)
        << s.message();
}

TEST(CkptRoundtrip, FormatVersionSkewIsCoded)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "null";
    WarmRun warm = warmAndMeasure(cfg, pf, "database");
    ASSERT_GT(warm.blob.size(), 28u);

    // Bump the stored format version (offset 8) and re-seal the
    // header CRC (offset 24, over the first 24 bytes) so the version
    // check itself -- not the CRC -- rejects the file.
    warm.blob[8] = static_cast<char>(warm.blob[8] + 1);
    const std::uint32_t fixed = crc32(warm.blob.data(), 24);
    for (int i = 0; i < 4; ++i)
        warm.blob[24 + i] = static_cast<char>(fixed >> (8 * i));

    Simulator sim(cfg, pf);
    auto src = makeWorkload("database");
    Status s = sim.restoreCheckpoint(warm.blob, *src);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("format version"), std::string::npos)
        << s.message();
}

TEST(CkptRoundtrip, TraceCursorResumesMidStream)
{
    // Drain part of a workload, checkpoint the cursor, and require a
    // restored instance to continue with the identical records.
    auto a = makeWorkload("specjbb");
    TraceRecord rec;
    for (int i = 0; i < 10'000; ++i)
        ASSERT_TRUE(a->next(rec));

    std::string bytes;
    {
        ckpt::Archiver ar = ckpt::Archiver::saver(bytes);
        a->ckpt(ar);
        ASSERT_TRUE(ar.ok()) << ar.status().toString();
    }
    auto b = makeWorkload("specjbb");
    {
        ckpt::Archiver ar = ckpt::Archiver::loader(bytes.data(),
                                                   bytes.size());
        b->ckpt(ar);
        ASSERT_TRUE(ar.ok()) << ar.status().toString();
        EXPECT_EQ(ar.remaining(), 0u);
    }
    for (int i = 0; i < 5'000; ++i) {
        TraceRecord ra, rb;
        ASSERT_TRUE(a->next(ra));
        ASSERT_TRUE(b->next(rb));
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(static_cast<int>(ra.op), static_cast<int>(rb.op));
    }
}

// ---------------------------------------------------------------------
// Corrupted-checkpoint corpus.
// ---------------------------------------------------------------------

TEST(CkptCorpus, EveryFaultKindYieldsCodedStatus)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "ebcp";
    const WarmRun warm = warmAndMeasure(cfg, pf, "database");
    ASSERT_FALSE(warm.blob.empty());

    for (CkptFaultKind kind : kCkptFaultKinds) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            SCOPED_TRACE(std::string(ckptFaultKindName(kind)) +
                         " seed " + std::to_string(seed));
            std::string damaged = warm.blob;
            injectCkptFault(damaged, kind, seed);
            ASSERT_NE(damaged, warm.blob)
                << "fault injection was not material";

            Simulator sim(cfg, pf);
            auto src = makeWorkload("database");
            Status s = sim.restoreCheckpoint(damaged, *src);
            ASSERT_FALSE(s.ok());
            EXPECT_TRUE(s.code() == StatusCode::Corruption ||
                        s.code() == StatusCode::InvalidArgument)
                << s.toString();
        }
    }
}

TEST(CkptCorpus, FileFaultInjectionRoundTrip)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "null";
    const std::string path = tempPath("ckpt_corpus_file.ckpt");

    Simulator sim(cfg, pf);
    auto src = makeWorkload("specjas");
    ASSERT_TRUE(sim.runWarm(*src, kWarm).ok());
    ASSERT_TRUE(sim.saveCheckpoint(path, *src).ok());

    ASSERT_TRUE(
        injectCkptFaultFile(path, CkptFaultKind::CrcFlip, 3).ok());

    Simulator fresh(cfg, pf);
    auto src2 = makeWorkload("specjas");
    Status s = fresh.restoreCheckpointFile(path, *src2);
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(s.code() == StatusCode::Corruption ||
                s.code() == StatusCode::InvalidArgument)
        << s.toString();
    std::remove(path.c_str());
}

TEST(CkptCorpus, DamagedBufferNeverPanicsAcrossWideSeedRange)
{
    // Broader fuzz: many seeds per kind against a small checkpoint.
    // The assertion is simply "coded status, no crash".
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "null";
    Simulator sim(cfg, pf);
    auto src = makeWorkload("database");
    ASSERT_TRUE(sim.runWarm(*src, 10'000).ok());
    StatusOr<std::string> blob = sim.serializeCheckpoint(*src);
    ASSERT_TRUE(blob.ok());

    for (CkptFaultKind kind : kCkptFaultKinds) {
        for (std::uint64_t seed = 1; seed <= 25; ++seed) {
            std::string damaged = blob.value();
            injectCkptFault(damaged, kind, seed);
            Simulator victim(cfg, pf);
            auto vsrc = makeWorkload("database");
            Status s = victim.restoreCheckpoint(damaged, *vsrc);
            EXPECT_FALSE(s.ok())
                << ckptFaultKindName(kind) << " seed " << seed;
        }
    }
}

// ---------------------------------------------------------------------
// Sweep journal.
// ---------------------------------------------------------------------

TEST(CkptJournal, RecordLineRoundTripIsBitExact)
{
    JournalRecord rec;
    rec.key = 0xfeedfacecafef00dULL;
    rec.code = StatusCode::Stalled;
    rec.message = "watchdog tripped";
    rec.attempts = 3;
    rec.warmForked = true;
    rec.coldFallback = false;
    rec.results.insts = 120'000;
    rec.results.cpi = 5.75594999;
    rec.results.coverage = 0.125;

    const std::string line = SweepJournal::formatLine(rec);
    JournalRecord back;
    ASSERT_TRUE(SweepJournal::parseLine(line, back));
    EXPECT_EQ(back.key, rec.key);
    EXPECT_EQ(back.code, rec.code);
    EXPECT_EQ(back.message, rec.message);
    EXPECT_EQ(back.attempts, rec.attempts);
    EXPECT_EQ(back.warmForked, rec.warmForked);
    EXPECT_EQ(back.coldFallback, rec.coldFallback);
    EXPECT_EQ(back.results.insts, rec.results.insts);
    EXPECT_EQ(back.results.cpi, rec.results.cpi);
    EXPECT_EQ(back.results.coverage, rec.results.coverage);
}

TEST(CkptJournal, DamagedLinesAreRejected)
{
    JournalRecord rec;
    rec.key = 42;
    rec.results.insts = 7;
    const std::string line = SweepJournal::formatLine(rec);
    JournalRecord out;

    // Torn at every prefix length: never accepted, never a crash.
    for (std::size_t n = 0; n < line.size(); ++n)
        EXPECT_FALSE(
            SweepJournal::parseLine(line.substr(0, n), out))
            << "accepted a torn prefix of " << n << " bytes";

    // A flipped blob nibble fails the CRC.
    std::string tampered = line;
    const std::size_t blob_at = tampered.find("\"blob\":\"") + 8;
    tampered[blob_at] = tampered[blob_at] == '0' ? '1' : '0';
    EXPECT_FALSE(SweepJournal::parseLine(tampered, out));

    EXPECT_FALSE(SweepJournal::parseLine("not json at all", out));
    EXPECT_FALSE(SweepJournal::parseLine("", out));
}

TEST(CkptJournal, LoadSkipsTornLinesAndKeepsValidOnes)
{
    const std::string path = tempPath("ckpt_journal_torn.jsonl");
    std::remove(path.c_str());

    JournalRecord a, b;
    a.key = 1;
    a.results.insts = 100;
    b.key = 2;
    b.results.insts = 200;

    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const std::string la = SweepJournal::formatLine(a) + "\n";
        const std::string garbage = "{\"v\":1,\"key\":\"zz\"}\n";
        const std::string lb = SweepJournal::formatLine(b);
        const std::string torn = lb.substr(0, lb.size() / 2);
        std::fwrite(la.data(), 1, la.size(), f);
        std::fwrite(garbage.data(), 1, garbage.size(), f);
        std::fwrite(torn.data(), 1, torn.size(), f); // no newline: torn
        std::fclose(f);
    }

    SweepJournal j(path);
    ASSERT_TRUE(j.load().ok());
    EXPECT_EQ(j.size(), 1u);
    EXPECT_EQ(j.skippedLines(), 2u);
    JournalRecord out;
    EXPECT_TRUE(j.lookup(1, out));
    EXPECT_EQ(out.results.insts, 100u);
    EXPECT_FALSE(j.lookup(2, out));

    // A fresh (missing) journal is OK and empty, not an error.
    std::remove(path.c_str());
    SweepJournal fresh(path);
    EXPECT_TRUE(fresh.load().ok());
    EXPECT_EQ(fresh.size(), 0u);
}

// ---------------------------------------------------------------------
// Retry backoff.
// ---------------------------------------------------------------------

TEST(CkptRetry, BackoffIsDeterministicBoundedAndJittered)
{
    RetryPolicy p;
    p.baseDelayMs = 50;
    p.maxDelayMs = 2'000;
    p.seed = 7;

    for (std::uint64_t key : {1ULL, 0xabcdefULL, ~0ULL}) {
        for (unsigned attempt = 1; attempt <= 8; ++attempt) {
            const std::uint64_t d = retryBackoffMs(p, key, attempt);
            // Pure function: same inputs, same delay.
            EXPECT_EQ(d, retryBackoffMs(p, key, attempt));
            const std::uint64_t cap = std::min<std::uint64_t>(
                p.baseDelayMs << (attempt - 1), p.maxDelayMs);
            EXPECT_GE(d, cap / 2) << "key " << key << " attempt "
                                  << attempt;
            EXPECT_LE(d, cap) << "key " << key << " attempt "
                              << attempt;
        }
    }

    // Jitter decorrelates runs: not every run backs off identically.
    bool differs = false;
    for (std::uint64_t key = 0; key < 16 && !differs; ++key)
        differs = retryBackoffMs(p, key, 3) != retryBackoffMs(p, 99, 3);
    EXPECT_TRUE(differs);

    // Zero-delay policies never sleep.
    RetryPolicy none;
    none.baseDelayMs = 0;
    EXPECT_EQ(retryBackoffMs(none, 1, 1), 0u);
}

TEST(CkptRetry, RetryableCodesExcludeBadInput)
{
    EXPECT_FALSE(statusRetryable(Status()));
    EXPECT_FALSE(statusRetryable(invalidArgError("bad flag")));
    EXPECT_FALSE(statusRetryable(notFoundError("no such workload")));
    EXPECT_TRUE(statusRetryable(ioError("disk")));
    EXPECT_TRUE(statusRetryable(corruptionError("crc")));
    EXPECT_TRUE(statusRetryable(stalledError("watchdog")));
    EXPECT_TRUE(statusRetryable(invariantError("audit")));
}

// ---------------------------------------------------------------------
// Descriptor fingerprints.
// ---------------------------------------------------------------------

TEST(CkptFingerprint, TracksResultShapingFieldsOnly)
{
    RunDesc d;
    d.workload = "database";
    d.pf.name = "ebcp";

    RunDesc same = d;
    same.label = "display-only"; // labels must not split the key
    EXPECT_EQ(descFingerprint(d), descFingerprint(same));

    RunDesc other = d;
    other.scale.measure *= 2;
    EXPECT_NE(descFingerprint(d), descFingerprint(other));
    // ...but the warm state is shared when only measure differs.
    EXPECT_EQ(warmFingerprint(d), warmFingerprint(other));

    RunDesc warm_differs = d;
    warm_differs.scale.warm *= 2;
    EXPECT_NE(warmFingerprint(d), warmFingerprint(warm_differs));

    RunDesc cfg_differs = d;
    cfg_differs.pf.ebcp.prefetchDegree += 1;
    EXPECT_NE(warmFingerprint(d), warmFingerprint(cfg_differs));
    EXPECT_NE(descFingerprint(d), descFingerprint(cfg_differs));
}
