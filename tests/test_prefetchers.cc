/**
 * @file
 * Behavioural tests for the baseline prefetchers: each must detect
 * the access pattern its paper describes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "prefetch/amc.hh"
#include "prefetch/dcpt.hh"
#include "prefetch/ghb.hh"
#include "prefetch/sms.hh"
#include "prefetch/solihin.hh"
#include "prefetch/stream_prefetcher.hh"
#include "prefetch/tcp.hh"
#include "sim/hierarchy.hh"
#include "sim/prefetcher_factory.hh"
#include "verify/audit.hh"

using namespace ebcp;

namespace
{

class MockEngine : public PrefetchEngine
{
  public:
    std::vector<Addr> issued;
    unsigned tableReads = 0;
    unsigned tableWrites = 0;

    void
    issuePrefetch(Addr a, Tick, std::uint64_t, bool, unsigned) override
    {
        issued.push_back(a);
    }

    MemAccessResult
    tableRead(Tick when) override
    {
        ++tableReads;
        return {when, when + 500, false};
    }

    MemAccessResult
    tableWrite(Tick when) override
    {
        ++tableWrites;
        return {when, when + 1, false};
    }

    Tick memoryLatency() const override { return 500; }

    bool
    has(Addr a) const
    {
        return std::find(issued.begin(), issued.end(), a) != issued.end();
    }
};

L2AccessInfo
loadMiss(Addr line, Addr pc, Tick when = 0)
{
    L2AccessInfo i;
    i.pc = pc;
    i.lineAddr = line;
    i.offChip = true;
    i.when = when;
    i.complete = when + 500;
    return i;
}

L2AccessInfo
loadL2Access(Addr line, Addr pc, bool l2hit, Tick when = 0)
{
    L2AccessInfo i = loadMiss(line, pc, when);
    i.l2Hit = l2hit;
    i.offChip = !l2hit;
    return i;
}

} // namespace

// ---------------------------------------------------------------------
// Stream prefetcher
// ---------------------------------------------------------------------

TEST(StreamTest, DetectsUnitStrideAndRunsAhead)
{
    MockEngine eng;
    StreamPrefetcher sp;
    sp.setEngine(&eng);
    for (int i = 0; i < 6; ++i)
        sp.observeAccess(loadMiss(0x10000 + i * 64, 0x400, i * 10));
    EXPECT_FALSE(eng.issued.empty());
    // After confirmation it runs `distance` strides ahead.
    Addr last_seen = 0x10000 + 5 * 64;
    EXPECT_TRUE(eng.has(last_seen + 6 * 64) ||
                eng.has(last_seen + 5 * 64));
}

TEST(StreamTest, DetectsNegativeStride)
{
    MockEngine eng;
    StreamPrefetcher sp;
    sp.setEngine(&eng);
    for (int i = 0; i < 6; ++i)
        sp.observeAccess(loadMiss(0x20000 - i * 64, 0x400, i * 10));
    EXPECT_FALSE(eng.issued.empty());
    // All prefetches go downward.
    for (Addr a : eng.issued)
        EXPECT_LT(a, 0x20000u);
}

TEST(StreamTest, DetectsNonUnitStride)
{
    MockEngine eng;
    StreamPrefetcher sp;
    sp.setEngine(&eng);
    for (int i = 0; i < 6; ++i)
        sp.observeAccess(loadMiss(0x30000 + i * 192, 0x400, i * 10));
    EXPECT_FALSE(eng.issued.empty());
    EXPECT_TRUE(eng.has(0x30000 + 5 * 192 + 6 * 192) ||
                eng.has(0x30000 + 4 * 192 + 6 * 192));
}

TEST(StreamTest, IgnoresRandomAddresses)
{
    MockEngine eng;
    StreamPrefetcher sp;
    sp.setEngine(&eng);
    Addr irregular[] = {0x1000, 0x88000, 0x3340, 0x91c0, 0x20080,
                        0x5500, 0x77140, 0x1240};
    for (Addr a : irregular)
        sp.observeAccess(loadMiss(a, 0x400));
    EXPECT_TRUE(eng.issued.empty());
}

TEST(StreamTest, IgnoresInstructionMisses)
{
    MockEngine eng;
    StreamPrefetcher sp;
    sp.setEngine(&eng);
    for (int i = 0; i < 6; ++i) {
        L2AccessInfo inf = loadMiss(0x10000 + i * 64, 0x400);
        inf.isInst = true;
        sp.observeAccess(inf);
    }
    EXPECT_TRUE(eng.issued.empty());
}

// ---------------------------------------------------------------------
// GHB PC/DC
// ---------------------------------------------------------------------

TEST(GhbTest, ReplaysRecurringDeltaSequence)
{
    MockEngine eng;
    GhbPrefetcher ghb(GhbConfig::small());
    ghb.setEngine(&eng);
    Addr walk[] = {0x1000, 0x5440, 0x2c80, 0x9100};
    // Two consecutive walks of the same irregular chain at one PC.
    for (int r = 0; r < 2; ++r)
        for (Addr a : walk)
            ghb.observeAccess(loadMiss(a, 0x400));
    // During the second walk the delta pairs matched and the rest of
    // the chain was predicted.
    EXPECT_TRUE(eng.has(0x9100));
}

TEST(GhbTest, LocalizesByPc)
{
    MockEngine eng;
    GhbPrefetcher ghb(GhbConfig::small());
    ghb.setEngine(&eng);
    // Interleave two PCs; each PC's stream is separately regular.
    for (int i = 0; i < 8; ++i) {
        ghb.observeAccess(loadMiss(0x10000 + i * 64, 0x400, i * 10));
        ghb.observeAccess(loadMiss(0x90000 + i * 128, 0x800, i * 10));
    }
    EXPECT_FALSE(eng.issued.empty());
    // Predictions continue each PC's own stride.
    bool pc1_pred = false, pc2_pred = false;
    for (Addr a : eng.issued) {
        if (a > 0x10000 && a < 0x11000)
            pc1_pred = true;
        if (a > 0x90000 && a < 0x91000)
            pc2_pred = true;
    }
    EXPECT_TRUE(pc1_pred);
    EXPECT_TRUE(pc2_pred);
}

TEST(GhbTest, InstructionMissesShareOneStream)
{
    MockEngine eng;
    GhbPrefetcher ghb(GhbConfig::small());
    ghb.setEngine(&eng);
    for (int r = 0; r < 2; ++r)
        for (int i = 0; i < 5; ++i) {
            L2AccessInfo inf =
                loadMiss(0x40000 + i * 64, 0x40000 + i * 64);
            inf.isInst = true;
            ghb.observeAccess(inf);
        }
    EXPECT_FALSE(eng.issued.empty());
}

TEST(GhbTest, IgnoresL2Hits)
{
    MockEngine eng;
    GhbPrefetcher ghb(GhbConfig::small());
    ghb.setEngine(&eng);
    for (int i = 0; i < 8; ++i)
        ghb.observeAccess(loadL2Access(0x10000 + i * 64, 0x400, true));
    EXPECT_TRUE(eng.issued.empty());
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

TEST(TcpTest, PredictsRecurringTagSequenceInASet)
{
    MockEngine eng;
    TcpPrefetcher tcp(TcpConfig::small());
    tcp.setEngine(&eng);
    // Three tags missing in the same L1 set (set bits identical),
    // repeated: after history (t1,t2) the next tag is predictable.
    const Addr set_stride = 128 * 64; // one L1 "page" of sets
    Addr seq[] = {5 * set_stride, 9 * set_stride, 13 * set_stride};
    for (int r = 0; r < 3; ++r)
        for (Addr a : seq)
            tcp.observeAccess(loadMiss(a, 0x400));
    EXPECT_FALSE(eng.issued.empty());
    EXPECT_TRUE(eng.has(13 * set_stride));
}

TEST(TcpTest, PredictionStaysInTriggeringSet)
{
    MockEngine eng;
    TcpPrefetcher tcp(TcpConfig::small());
    tcp.setEngine(&eng);
    const Addr set_stride = 128 * 64;
    const Addr set_off = 3 * 64; // set 3
    Addr seq[] = {5 * set_stride + set_off, 9 * set_stride + set_off,
                  13 * set_stride + set_off};
    for (int r = 0; r < 3; ++r)
        for (Addr a : seq)
            tcp.observeAccess(loadMiss(a, 0x400));
    for (Addr a : eng.issued)
        EXPECT_EQ((a / 64) % 128, 3u);
}

TEST(TcpTest, IgnoresInstructionMisses)
{
    MockEngine eng;
    TcpPrefetcher tcp(TcpConfig::small());
    tcp.setEngine(&eng);
    for (int r = 0; r < 3; ++r)
        for (int i = 0; i < 3; ++i) {
            L2AccessInfo inf = loadMiss(0x10000 * (i + 1), 0x400);
            inf.isInst = true;
            tcp.observeAccess(inf);
        }
    EXPECT_TRUE(eng.issued.empty());
}

TEST(TcpTest, LargeConfigHasMorePhtSets)
{
    EXPECT_EQ(TcpConfig::small().phtSets, 2048u);
    EXPECT_EQ(TcpConfig::large().phtSets, 32u * 1024u);
}

// ---------------------------------------------------------------------
// SMS
// ---------------------------------------------------------------------

TEST(SmsTest, ReplaysSpatialPattern)
{
    MockEngine eng;
    SmsPrefetcher sms;
    sms.setEngine(&eng);
    // Generation 1 in region R1: trigger at offset 0 from PC 0x400,
    // then touches at offsets 3 and 7.
    const Addr r1 = 0x100000;
    sms.observeAccess(loadMiss(r1, 0x400));
    sms.observeAccess(loadMiss(r1 + 3 * 64, 0x500));
    sms.observeAccess(loadMiss(r1 + 7 * 64, 0x600));
    // Flood the AGT so the generation commits.
    for (int i = 0; i < 200; ++i)
        sms.observeAccess(loadMiss(0x800000 + i * 2048, 0x700));

    // Same trigger (PC 0x400, offset 0) in a new region: the learned
    // pattern streams offsets 3 and 7.
    const Addr r2 = 0x40000000;
    sms.observeAccess(loadMiss(r2, 0x400));
    EXPECT_TRUE(eng.has(r2 + 3 * 64));
    EXPECT_TRUE(eng.has(r2 + 7 * 64));
}

TEST(SmsTest, TriggerSignatureUsesPcAndOffset)
{
    MockEngine eng;
    SmsPrefetcher sms;
    sms.setEngine(&eng);
    const Addr r1 = 0x100000;
    sms.observeAccess(loadMiss(r1, 0x400));
    sms.observeAccess(loadMiss(r1 + 5 * 64, 0x500));
    for (int i = 0; i < 200; ++i)
        sms.observeAccess(loadMiss(0x800000 + i * 2048, 0x700));

    // A different trigger PC on a new region must not replay it.
    eng.issued.clear();
    const Addr r2 = 0x40000000;
    sms.observeAccess(loadMiss(r2, 0x999));
    EXPECT_FALSE(eng.has(r2 + 5 * 64));
}

TEST(SmsTest, AccumulatesWithinActiveRegion)
{
    MockEngine eng;
    SmsPrefetcher sms;
    sms.setEngine(&eng);
    const Addr r1 = 0x100000;
    sms.observeAccess(loadMiss(r1 + 2 * 64, 0x400));
    // Accesses inside an active region never trigger prefetches.
    eng.issued.clear();
    sms.observeAccess(loadMiss(r1 + 9 * 64, 0x500));
    EXPECT_TRUE(eng.issued.empty());
}

TEST(SmsTest, IgnoresInstructionMisses)
{
    MockEngine eng;
    SmsPrefetcher sms;
    sms.setEngine(&eng);
    L2AccessInfo inf = loadMiss(0x100000, 0x400);
    inf.isInst = true;
    sms.observeAccess(inf);
    EXPECT_TRUE(eng.issued.empty());
}

// ---------------------------------------------------------------------
// Solihin
// ---------------------------------------------------------------------

TEST(SolihinTest, LearnsSuccessorsAcrossLevels)
{
    MockEngine eng;
    SolihinPrefetcher sp(SolihinConfig::depth3width2());
    sp.setEngine(&eng);
    Addr seq[] = {0xA00, 0xB00, 0xC00, 0xD00, 0xE00};
    for (int r = 0; r < 2; ++r)
        for (int i = 0; i < 5; ++i)
            sp.observeAccess(loadMiss(seq[i], r * 5000 + i * 600));
    // On the second encounter of A, its successors B, C, D are
    // prefetched (depth 3).
    EXPECT_TRUE(eng.has(0xB00));
    EXPECT_TRUE(eng.has(0xC00));
    EXPECT_TRUE(eng.has(0xD00));
}

TEST(SolihinTest, DepthSixReachesDeeper)
{
    MockEngine eng;
    SolihinPrefetcher sp(SolihinConfig::depth6width1());
    sp.setEngine(&eng);
    Addr seq[] = {0xA00, 0xB00, 0xC00, 0xD00, 0xE00, 0xF00, 0x1100};
    for (int r = 0; r < 2; ++r)
        for (int i = 0; i < 7; ++i)
            sp.observeAccess(loadMiss(seq[i], r * 8000 + i * 600));
    EXPECT_TRUE(eng.has(0x1100)); // successor 6 of A
}

TEST(SolihinTest, WidthKeepsAlternatives)
{
    MockEngine eng;
    SolihinPrefetcher sp(SolihinConfig::depth3width2());
    sp.setEngine(&eng);
    // A is followed alternately by B and C: width 2 keeps both.
    for (int r = 0; r < 4; ++r) {
        sp.observeAccess(loadMiss(0xA00, r * 4000));
        sp.observeAccess(
            loadMiss(r % 2 ? 0xB00 : 0xC00, r * 4000 + 600));
        sp.observeAccess(loadMiss(0xD00, r * 4000 + 1200));
    }
    sp.observeAccess(loadMiss(0xA00, 50000));
    EXPECT_TRUE(eng.has(0xB00));
    EXPECT_TRUE(eng.has(0xC00));
}

TEST(SolihinTest, InvisibleToPrefetchBufferHits)
{
    // The memory-side engine only sees requests that reach memory.
    MockEngine eng;
    SolihinPrefetcher sp(SolihinConfig::depth6width1());
    sp.setEngine(&eng);
    L2AccessInfo inf = loadMiss(0xA00, 0x400);
    inf.offChip = false;
    inf.prefBufHit = true;
    sp.observeAccess(inf);
    EXPECT_EQ(eng.tableReads, 0u);
}

TEST(SolihinTest, TableTrafficCharged)
{
    MockEngine eng;
    SolihinPrefetcher sp(SolihinConfig::depth6width1());
    sp.setEngine(&eng);
    sp.observeAccess(loadMiss(0xA00, 0));
    // Prediction read + training RMW.
    EXPECT_GE(eng.tableReads, 2u);
    EXPECT_GE(eng.tableWrites, 1u);
}

// ---------------------------------------------------------------------
// Next-line
// ---------------------------------------------------------------------

#include "prefetch/nextline.hh"

TEST(NextLineTest, PrefetchesSequentialLinesAfterInstMiss)
{
    MockEngine eng;
    NextLinePrefetcher nl;
    nl.setEngine(&eng);
    L2AccessInfo inf = loadMiss(0x40000, 0x40000);
    inf.isInst = true;
    nl.observeAccess(inf);
    EXPECT_TRUE(eng.has(0x40040));
    EXPECT_TRUE(eng.has(0x40080));
    EXPECT_EQ(eng.issued.size(), 2u);
}

TEST(NextLineTest, IgnoresLoadsByDefault)
{
    MockEngine eng;
    NextLinePrefetcher nl;
    nl.setEngine(&eng);
    nl.observeAccess(loadMiss(0x40000, 0x400));
    EXPECT_TRUE(eng.issued.empty());
}

TEST(NextLineTest, LoadModeCoversLoads)
{
    MockEngine eng;
    NextLineConfig cfg;
    cfg.onLoad = true;
    cfg.depth = 3;
    NextLinePrefetcher nl(cfg);
    nl.setEngine(&eng);
    nl.observeAccess(loadMiss(0x40000, 0x400));
    EXPECT_EQ(eng.issued.size(), 3u);
    EXPECT_TRUE(eng.has(0x400c0));
}

TEST(NextLineTest, IgnoresL2Hits)
{
    MockEngine eng;
    NextLinePrefetcher nl;
    nl.setEngine(&eng);
    L2AccessInfo inf = loadL2Access(0x40000, 0x40000, true);
    inf.isInst = true;
    nl.observeAccess(inf);
    EXPECT_TRUE(eng.issued.empty());
}

// ---------------------------------------------------------------------
// DCPT (delta-correlating prediction tables)
// ---------------------------------------------------------------------

TEST(DcptTest, DetectsConstantStridePerPc)
{
    MockEngine eng;
    DcptPrefetcher pf({});
    pf.setEngine(&eng);
    // PC 0x400 misses with a constant +2-line stride; after three
    // misses the delta ring holds {2, 2} and the pair matches itself.
    for (int i = 0; i < 4; ++i)
        pf.observeAccess(loadMiss(0x10000 + i * 128, 0x400, i * 10));
    EXPECT_TRUE(eng.has(0x10000 + 4 * 128));
}

TEST(DcptTest, ReplaysRepeatingDeltaSequence)
{
    MockEngine eng;
    DcptPrefetcher pf({});
    pf.setEngine(&eng);
    // Two walks of an irregular delta pattern {1, 3, 9} from one PC.
    const std::int64_t deltas[] = {1, 3, 9, 1, 3};
    Addr line = 0x40000;
    pf.observeAccess(loadMiss(line, 0x400, 0));
    Tick t = 10;
    for (std::int64_t d : deltas) {
        line += d * 64;
        pf.observeAccess(loadMiss(line, 0x400, t));
        t += 10;
    }
    // History ... 1 3 9 1 3; the fresh pair (1, 3) matches the older
    // occurrence, whose successor was 9.
    EXPECT_TRUE(eng.has(line + 9 * 64));
}

TEST(DcptTest, LocalizesByPc)
{
    MockEngine eng;
    DcptPrefetcher pf({});
    pf.setEngine(&eng);
    // Interleaved misses: PC A strides by +1 line, PC B is random
    // noise. A per-PC predictor still sees A's clean stride.
    const Addr noise[] = {0x900000, 0x510000, 0x77f000, 0x123000,
                          0xabc000, 0x5ef000};
    for (int i = 0; i < 6; ++i) {
        pf.observeAccess(loadMiss(0x10000 + i * 64, 0xA, i * 20));
        pf.observeAccess(loadMiss(noise[i], 0xB, i * 20 + 10));
    }
    EXPECT_TRUE(eng.has(0x10000 + 6 * 64));
}

TEST(DcptTest, InFlightFilterSuppressesReissue)
{
    MockEngine eng;
    DcptPrefetcher pf({});
    pf.setEngine(&eng);
    for (int i = 0; i < 8; ++i)
        pf.observeAccess(loadMiss(0x10000 + i * 64, 0x400, i * 10));
    // A strided walk keeps predicting lines ahead; the in-flight
    // filter must keep the issue stream free of duplicates.
    std::vector<Addr> sorted = eng.issued;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
}

TEST(DcptTest, IgnoresL2HitsAndInstructionMisses)
{
    MockEngine eng;
    DcptPrefetcher pf({});
    pf.setEngine(&eng);
    for (int i = 0; i < 6; ++i) {
        L2AccessInfo inst = loadMiss(0x20000 + i * 64, 0x400, i * 10);
        inst.isInst = true;
        pf.observeAccess(inst);
        pf.observeAccess(
            loadL2Access(0x30000 + i * 64, 0x500, true, i * 10));
    }
    EXPECT_TRUE(eng.issued.empty());
}

TEST(DcptTest, AuditCleanAfterRandomizedRun)
{
    DcptConfig cfg;
    cfg.tableEntries = 16; // force LRU churn
    MockEngine eng;
    DcptPrefetcher pf(cfg);
    pf.setEngine(&eng);
    std::uint64_t x = 12345;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        pf.observeAccess(loadMiss((x >> 20) & ~Addr{63},
                                  (x >> 8) & 0xff, i));
    }
    AuditContext ctx;
    pf.audit(ctx);
    EXPECT_TRUE(ctx.clean());
}

// ---------------------------------------------------------------------
// AMC (access-to-miss correlation)
// ---------------------------------------------------------------------

TEST(AmcTest, PredictsMissFromPrecedingAccess)
{
    MockEngine eng;
    AmcPrefetcher pf({});
    pf.setEngine(&eng);
    // Train: access to A (an L2 hit) is followed by a miss on B.
    pf.observeAccess(loadL2Access(0x1000, 0x400, true, 0));
    pf.observeAccess(loadMiss(0x9000, 0x400, 10));
    // Replay: touching A again predicts B.
    pf.observeAccess(loadL2Access(0x1000, 0x400, true, 100));
    EXPECT_TRUE(eng.has(0x9000));
}

TEST(AmcTest, ChainsSuccessorsBreadthFirst)
{
    MockEngine eng;
    AmcPrefetcher pf({});
    pf.setEngine(&eng);
    // A -> B -> C miss chain, twice, so both edges are learned.
    for (int round = 0; round < 2; ++round) {
        Tick t = round * 100;
        pf.observeAccess(loadMiss(0x1000, 0x400, t));
        pf.observeAccess(loadMiss(0x9000, 0x400, t + 10));
        pf.observeAccess(loadMiss(0x11000, 0x400, t + 20));
        // Break the window so rounds stay independent.
        pf.observeAccess(loadL2Access(0x70000, 0x999, true, t + 30));
        pf.observeAccess(loadL2Access(0x71000, 0x999, true, t + 40));
        pf.observeAccess(loadL2Access(0x72000, 0x999, true, t + 50));
    }
    eng.issued.clear();
    pf.observeAccess(loadL2Access(0x1000, 0x400, true, 1000));
    EXPECT_TRUE(eng.has(0x9000));
    EXPECT_TRUE(eng.has(0x11000));
}

TEST(AmcTest, IgnoresInstructionAccesses)
{
    MockEngine eng;
    AmcPrefetcher pf({});
    pf.setEngine(&eng);
    for (int i = 0; i < 6; ++i) {
        L2AccessInfo inst = loadMiss(0x20000 + i * 64, 0x400, i * 10);
        inst.isInst = true;
        pf.observeAccess(inst);
    }
    EXPECT_TRUE(eng.issued.empty());
}

TEST(AmcTest, AuditCleanAfterRandomizedRun)
{
    AmcConfig cfg;
    cfg.tableEntries = 64; // force tag replacement
    MockEngine eng;
    AmcPrefetcher pf(cfg);
    pf.setEngine(&eng);
    std::uint64_t x = 98765;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        pf.observeAccess(loadL2Access((x >> 20) & ~Addr{63}, 0x400,
                                      (x & 3) == 0, i));
    }
    AuditContext ctx;
    pf.audit(ctx);
    EXPECT_TRUE(ctx.clean());
}

// ---------------------------------------------------------------------
// Factory configuration validation (coded rejection, per engine)
// ---------------------------------------------------------------------

namespace
{

Status
factoryStatus(const PrefetcherParams &p)
{
    return tryCreatePrefetcher(p).status();
}

} // namespace

TEST(FactoryValidation, RejectsZeroDegreeEverywhere)
{
    for (const char *name : {"ebcp", "tcp", "dcpt", "amc"}) {
        SCOPED_TRACE(name);
        PrefetcherParams p;
        p.name = name;
        p.ebcp.prefetchDegree = 0;
        p.tcp.degree = 0;
        p.dcpt.degree = 0;
        p.amc.degree = 0;
        Status s = factoryStatus(p);
        EXPECT_EQ(s.code(), StatusCode::InvalidArgument) << s.toString();
    }
}

TEST(FactoryValidation, RejectsGarbageTableSizes)
{
    PrefetcherParams p;
    p.name = "solihin";
    p.solihin.tableEntries = 1000; // not a power of two
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);

    p = {};
    p.name = "ebcp";
    p.ebcp.tableEntries = 0;
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);

    p = {};
    p.name = "amc";
    p.amc.tableEntries = 12345;
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);

    p = {};
    p.name = "dcpt";
    p.dcpt.tableEntries = 0;
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);

    p = {};
    p.name = "ghb";
    p.ghb.indexEntries = 100; // not a power of two
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);

    p = {};
    p.name = "sms";
    p.sms.phtSets = 7;
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);

    p = {};
    p.name = "stream";
    p.stream.streams = 0;
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);

    p = {};
    p.name = "nextline";
    p.nextline.depth = 0;
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);
}

TEST(FactoryValidation, UnknownNameSuggestsNearest)
{
    PrefetcherParams p;
    p.name = "ebpc";
    Status s = factoryStatus(p);
    EXPECT_EQ(s.code(), StatusCode::NotFound);
    EXPECT_NE(s.toString().find("ebcp"), std::string::npos)
        << s.toString();
}

TEST(FactoryValidation, CompositeRejectsBadShapes)
{
    PrefetcherParams p;
    p.name = "composite";
    p.composite.engines = {};
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);

    p.composite = {};
    p.composite.engines = {"stream", "composite"};
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);

    p.composite = {};
    p.composite.calibInterval = 0;
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);

    p.composite = {};
    p.composite.minDegree = 5;
    p.composite.maxDegree = 2;
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);

    // A child engine's own bad config surfaces through the composite.
    p.composite = {};
    p.composite.engines = {"stream", "dcpt"};
    p.dcpt.degree = 0;
    Status s = factoryStatus(p);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.toString().find("dcpt"), std::string::npos)
        << s.toString();

    // An unknown child name too.
    p = {};
    p.name = "composite";
    p.composite.engines = {"stream", "bogus"};
    EXPECT_EQ(factoryStatus(p).code(), StatusCode::InvalidArgument);
}

// ---------------------------------------------------------------------
// Ledger lifecycle accounting at the L2 subsystem boundary
// ---------------------------------------------------------------------

namespace
{

/** A hierarchy rig around an inert prefetcher, driven by hand. */
struct LedgerRig
{
    SimConfig cfg;
    MainMemory mem{MemConfig{}};
    NullPrefetcher pf;
    L2Subsystem l2side{cfg, mem, pf};
    Hierarchy hier{cfg, l2side, 0};

    const PrefetchLedger &ledger() { return l2side.ledger(); }

    void
    expectConserved(const char *what)
    {
        AuditContext ctx;
        l2side.audit(ctx);
        EXPECT_TRUE(ctx.clean()) << what;
    }
};

} // namespace

TEST(LedgerLifecycle, TimelyHitCountedExactlyOnce)
{
    LedgerRig r;
    r.l2side.issuePrefetch(0x9000, 0);
    r.hier.load(0x9000, 0x400, 5000); // data long since arrived
    EXPECT_EQ(r.ledger().issued(), 1u);
    EXPECT_EQ(r.ledger().timelyHits(), 1u);
    EXPECT_EQ(r.ledger().lateHits(), 0u);
    EXPECT_EQ(r.ledger().evictedUnused(), 0u);
    r.expectConserved("timely hit");

    // The hit consumed the buffer entry: a second load of the same
    // line must not recount it (it is an L2 hit now).
    r.hier.load(0x9000, 0x400, 6000);
    EXPECT_EQ(r.ledger().used(), 1u);
    r.expectConserved("second load");
}

TEST(LedgerLifecycle, LateHitCountedOnceNotAlsoEvicted)
{
    LedgerRig r;
    r.l2side.issuePrefetch(0x9000, 10000);
    r.hier.load(0x9000, 0x400, 10001); // arrives before the data
    EXPECT_EQ(r.ledger().lateHits(), 1u);
    EXPECT_EQ(r.ledger().timelyHits(), 0u);

    // Stuff the buffer until every set recycles: the late-hit entry
    // was already consumed, so no eviction may recount it.
    for (unsigned i = 0; i < 4 * r.cfg.prefetchBufferEntries; ++i)
        r.l2side.issuePrefetch(0x100000 + i * 64, 20000 + i);
    EXPECT_EQ(r.ledger().lateHits(), 1u);
    EXPECT_EQ(r.ledger().used(), 1u);
    r.expectConserved("post-churn");
}

TEST(LedgerLifecycle, EvictionCountedExactlyOncePerVictim)
{
    LedgerRig r;
    // Spread over ticks so bandwidth drops thin the stream: only
    // prefetches that actually entered the buffer count as issued.
    const unsigned n = 4 * r.cfg.prefetchBufferEntries;
    for (unsigned i = 0; i < n; ++i)
        r.l2side.issuePrefetch(0x100000 + i * 64, i * 2000);
    // Never touched: every issued prefetch is either still resident
    // or was evicted unused, each exactly once.
    EXPECT_GT(r.ledger().evictedUnused(), 0u);
    EXPECT_EQ(r.ledger().used(), 0u);
    EXPECT_EQ(r.ledger().issued(),
              r.ledger().evictedUnused() +
                  r.l2side.prefetchBuffer().validCount());
    r.expectConserved("pure churn");
}

TEST(LedgerLifecycle, MeasurementBoundaryKeepsConservation)
{
    LedgerRig r;
    // Warm-up: leave prefetches resident in the buffer.
    for (unsigned i = 0; i < 8; ++i)
        r.l2side.issuePrefetch(0x100000 + i * 64, i);
    r.l2side.beginMeasurement();
    EXPECT_EQ(r.ledger().issued(), 0u);
    EXPECT_EQ(r.ledger().carryOver(), 8u);
    r.expectConserved("right after reset");

    // Warm residents hitting or evicting during measurement must not
    // drive the lifecycle counts negative or double.
    r.hier.load(0x100000, 0x400, 50000);
    EXPECT_EQ(r.ledger().used(), 1u);
    for (unsigned i = 0; i < 4 * r.cfg.prefetchBufferEntries; ++i)
        r.l2side.issuePrefetch(0x200000 + i * 64, 60000 + i);
    r.expectConserved("post-measurement churn");
}
