/**
 * @file
 * Sweep telemetry stream tests.
 *
 * Pins the JSON-lines record contract (harness/telemetry.hh): framing
 * and CRC round-trip, torn-line and corruption tolerance, schema of
 * every record type a real sweep emits, the Prometheus snapshot, and
 * the headline determinism guarantee -- the deterministic (live:false)
 * record subsequence of a sweep is byte-identical at jobs=1 and
 * jobs=4.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "harness/telemetry.hh"
#include "util/json.hh"

using namespace ebcp;
using namespace ebcp::harness;

namespace
{

/** A temp path that removes itself. */
struct TempFile
{
    std::string path;
    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {}
    ~TempFile() { std::remove(path.c_str()); }
};

/** Small sweep over distinct run lengths so jobs=4 finishes them out
 * of submission order. */
std::vector<RunDesc>
makeDescriptors(std::size_t n)
{
    const char *workloads[] = {"database", "tpcw", "specjbb", "specjas"};
    std::vector<RunDesc> descs;
    for (std::size_t i = 0; i < n; ++i) {
        RunDesc d;
        d.workload = workloads[i % 4];
        d.pf.name = (i % 2 == 0) ? "ebcp" : "null";
        d.scale.warm = 20'000;
        // Longest run first: submission order != completion order.
        d.scale.measure = 40'000 + 20'000 * (n - i);
        descs.push_back(std::move(d));
    }
    return descs;
}

std::vector<std::string>
rawLines(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** The raw det (live:false) lines of a stream, parse-checked. */
std::vector<std::string>
deterministicLines(const std::string &path)
{
    std::vector<std::string> det;
    for (const std::string &line : rawLines(path)) {
        TelemetryRecord rec;
        EXPECT_TRUE(TelemetryStream::parseLine(line, rec)) << line;
        if (!rec.live)
            det.push_back(line);
    }
    return det;
}

} // namespace

TEST(TelemetryLine, FormatParseRoundTrip)
{
    const std::string line = TelemetryStream::formatLine(
        7, "run_state", true, "{\"label\":\"x\",\"state\":\"running\"}");
    TelemetryRecord rec;
    ASSERT_TRUE(TelemetryStream::parseLine(line, rec));
    EXPECT_EQ(rec.seq, 7u);
    EXPECT_EQ(rec.type, "run_state");
    EXPECT_TRUE(rec.live);
    EXPECT_EQ(rec.dataRaw, "{\"label\":\"x\",\"state\":\"running\"}");
    const JsonValue *state = rec.data.find("state");
    ASSERT_NE(state, nullptr);
    EXPECT_EQ(state->string, "running");
}

TEST(TelemetryLine, RejectsTornLines)
{
    const std::string line = TelemetryStream::formatLine(
        3, "heartbeat", true, "{\"runs\":4,\"completed\":1}");
    TelemetryRecord rec;
    ASSERT_TRUE(TelemetryStream::parseLine(line, rec));
    // Any torn suffix must be rejected, not misparsed.
    for (std::size_t cut = 1; cut < line.size(); ++cut)
        EXPECT_FALSE(
            TelemetryStream::parseLine(line.substr(0, cut), rec))
            << "accepted a line torn at byte " << cut;
    EXPECT_FALSE(TelemetryStream::parseLine("", rec));
    EXPECT_FALSE(TelemetryStream::parseLine("not json", rec));
}

TEST(TelemetryLine, RejectsCrcMismatch)
{
    std::string line = TelemetryStream::formatLine(
        0, "sweep_begin", false, "{\"runs\":8,\"resumed\":0}");
    // Flip one digit inside the CRC-covered data object.
    const std::size_t pos = line.rfind('8');
    ASSERT_NE(pos, std::string::npos);
    line[pos] = '9';
    TelemetryRecord rec;
    EXPECT_FALSE(TelemetryStream::parseLine(line, rec));
}

TEST(TelemetryStreamTest, OpenFailureDisablesButNeverThrows)
{
    TelemetryStream stream("/nonexistent-dir-ebcp/telemetry.jsonl");
    EXPECT_FALSE(stream.openStatus().ok());
    stream.emitDeterministic("sweep_begin", "{\"runs\":1}");
    stream.emitLive("heartbeat", "{\"runs\":1}");
    EXPECT_EQ(stream.linesWritten(), 0u);
}

TEST(TelemetryStreamTest, TornTailIsSkippedNotFatal)
{
    TempFile tmp("telemetry_torn.jsonl");
    {
        TelemetryStream stream(tmp.path);
        ASSERT_TRUE(stream.openStatus().ok());
        stream.emitDeterministic("sweep_begin",
                                 "{\"runs\":2,\"resumed\":0}");
        stream.emitDeterministic("sweep_end",
                                 "{\"runs\":2,\"completed\":2}");
    }
    // Simulate a crash mid-write: append a truncated record.
    const std::string torn = TelemetryStream::formatLine(
        9, "heartbeat", true, "{\"runs\":2,\"completed\":1}");
    {
        std::ofstream out(tmp.path, std::ios::app);
        out << torn.substr(0, torn.size() / 2);
    }

    StatusOr<TelemetryFile> file = readTelemetryFile(tmp.path);
    ASSERT_TRUE(file.ok()) << file.status().toString();
    EXPECT_EQ(file.value().records.size(), 2u);
    EXPECT_EQ(file.value().skipped, 1u);
    EXPECT_EQ(file.value().records[0].type, "sweep_begin");
    EXPECT_EQ(file.value().records[1].type, "sweep_end");
}

TEST(TelemetryStreamTest, MissingFileIsAnError)
{
    StatusOr<TelemetryFile> file =
        readTelemetryFile("/nonexistent-dir-ebcp/telemetry.jsonl");
    EXPECT_FALSE(file.ok());
}

TEST(TelemetrySweep, EmitsSchemaValidRecordsOfEveryType)
{
    TempFile tmp("telemetry_sweep.jsonl");
    TempFile metrics("telemetry_sweep.prom");

    SweepOptions opts;
    opts.telemetryPath = tmp.path;
    opts.metricsPath = metrics.path;
    // Aggressive cadence so even this small sweep gets heartbeats.
    opts.heartbeatSeconds = 0.005;
    const std::vector<RunDesc> descs = makeDescriptors(8);
    SweepRunner runner(1, opts);
    const std::vector<RunResult> results = runner.run(descs);
    for (const RunResult &r : results)
        ASSERT_TRUE(r.ok()) << r.status.toString();

    StatusOr<TelemetryFile> file = readTelemetryFile(tmp.path);
    ASSERT_TRUE(file.ok()) << file.status().toString();
    EXPECT_EQ(file.value().skipped, 0u);
    const std::vector<TelemetryRecord> &recs = file.value().records;
    ASSERT_FALSE(recs.empty());

    // Per-class seq spaces: each counts 0,1,2,... independently.
    std::uint64_t next_det = 0, next_live = 0;
    std::size_t heartbeats = 0, terminal = 0;
    std::map<std::string, std::size_t> live_states;
    for (const TelemetryRecord &r : recs) {
        EXPECT_EQ(r.seq, r.live ? next_live++ : next_det++);
        ASSERT_TRUE(r.data.isObject()) << r.dataRaw;
        if (r.type == "sweep_begin") {
            EXPECT_FALSE(r.live);
            ASSERT_TRUE(r.data.hasNumber("runs"));
            EXPECT_EQ(r.data.find("runs")->number, 8.0);
            ASSERT_TRUE(r.data.hasNumber("resumed"));
        } else if (r.type == "sweep_end") {
            EXPECT_FALSE(r.live);
            for (const char *k :
                 {"runs", "completed", "failed", "measured_insts",
                  "resumed", "retries", "warm_builds", "warm_forks",
                  "cold_fallbacks"})
                EXPECT_TRUE(r.data.hasNumber(k)) << k;
            EXPECT_EQ(r.data.find("completed")->number, 8.0);
        } else if (r.type == "heartbeat") {
            EXPECT_TRUE(r.live);
            ++heartbeats;
            for (const char *k :
                 {"runs", "completed", "failed", "measured_insts",
                  "insts_per_sec", "elapsed_seconds"})
                EXPECT_TRUE(r.data.hasNumber(k)) << k;
        } else if (r.type == "run_state") {
            const JsonValue *state = r.data.find("state");
            ASSERT_NE(state, nullptr);
            ASSERT_TRUE(state->isString());
            const JsonValue *label = r.data.find("label");
            ASSERT_NE(label, nullptr);
            EXPECT_TRUE(label->isString());
            if (r.live) {
                ++live_states[state->string];
            } else {
                // Terminal record: the full result schema.
                ++terminal;
                EXPECT_TRUE(state->string == "done" ||
                            state->string == "failed");
                for (const char *k : {"index", "attempts", "insts"})
                    EXPECT_TRUE(r.data.hasNumber(k)) << k;
                const JsonValue *ok = r.data.find("ok");
                ASSERT_NE(ok, nullptr);
                EXPECT_TRUE(ok->isBool());
                const JsonValue *code = r.data.find("code");
                ASSERT_NE(code, nullptr);
                EXPECT_TRUE(code->isString());
                for (const char *k :
                     {"from_journal", "warm_forked", "cold_fallback"}) {
                    const JsonValue *b = r.data.find(k);
                    ASSERT_NE(b, nullptr) << k;
                    EXPECT_TRUE(b->isBool()) << k;
                }
            }
        } else {
            ADD_FAILURE() << "unknown record type: " << r.type;
        }
    }
    EXPECT_EQ(recs.front().type, "sweep_begin");
    EXPECT_EQ(recs.back().type, "sweep_end");
    EXPECT_EQ(terminal, 8u);
    EXPECT_EQ(live_states["queued"], 8u);
    EXPECT_EQ(live_states["running"], 8u);
    EXPECT_GE(heartbeats, 1u);

    // The metrics snapshot is final and scraper-parseable.
    std::ifstream prom(metrics.path);
    ASSERT_TRUE(prom.is_open());
    std::string text((std::istreambuf_iterator<char>(prom)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("# TYPE ebcp_sweep_runs_total gauge"),
              std::string::npos);
    EXPECT_NE(text.find("ebcp_sweep_runs_total 8"), std::string::npos);
    EXPECT_NE(text.find("ebcp_sweep_done 1"), std::string::npos);
}

TEST(TelemetrySweep, TerminalRecordsFollowSubmissionOrder)
{
    TempFile tmp("telemetry_order.jsonl");
    SweepOptions opts;
    opts.telemetryPath = tmp.path;
    opts.heartbeatSeconds = 0.0;
    const std::vector<RunDesc> descs = makeDescriptors(6);
    SweepRunner runner(4, opts);
    runner.run(descs);

    StatusOr<TelemetryFile> file = readTelemetryFile(tmp.path);
    ASSERT_TRUE(file.ok()) << file.status().toString();
    std::vector<double> indices;
    for (const TelemetryRecord &r : file.value().records) {
        if (r.live || r.type != "run_state")
            continue;
        ASSERT_TRUE(r.data.hasNumber("index"));
        indices.push_back(r.data.find("index")->number);
        const JsonValue *label = r.data.find("label");
        ASSERT_NE(label, nullptr);
        EXPECT_EQ(label->string,
                  runLabel(descs[static_cast<std::size_t>(
                      indices.back())]));
    }
    ASSERT_EQ(indices.size(), 6u);
    for (std::size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(indices[i], static_cast<double>(i));
}

TEST(TelemetryDeterminism, DetSubsequenceIdenticalAcrossJobCounts)
{
    TempFile tmp1("telemetry_jobs1.jsonl");
    TempFile tmp4("telemetry_jobs4.jsonl");
    const std::vector<RunDesc> descs = makeDescriptors(8);

    SweepOptions opts1;
    opts1.telemetryPath = tmp1.path;
    SweepRunner r1(1, opts1);
    r1.run(descs);

    SweepOptions opts4;
    opts4.telemetryPath = tmp4.path;
    SweepRunner r4(4, opts4);
    r4.run(descs);

    const std::vector<std::string> det1 = deterministicLines(tmp1.path);
    const std::vector<std::string> det4 = deterministicLines(tmp4.path);
    ASSERT_FALSE(det1.empty());
    // Byte-identical: same records, same rendering, same det seqs.
    EXPECT_EQ(det1, det4);
}

TEST(TelemetryMetrics, PrometheusFormatIsComplete)
{
    MetricsSnapshot m;
    m.runsTotal = 5;
    m.completed = 3;
    m.failed = 1;
    m.measuredInsts = 123456;
    m.retries = 2;
    m.warmBuilds = 1;
    m.warmForks = 4;
    m.coldFallbacks = 0;
    m.resumed = 1;
    m.jobs = 4;
    m.elapsedSeconds = 1.5;
    m.instsPerSec = 82304.0;
    m.done = false;

    const std::string text = formatPrometheus(m);
    for (const char *gauge :
         {"ebcp_sweep_runs_total 5", "ebcp_sweep_runs_completed 3",
          "ebcp_sweep_runs_failed 1", "ebcp_sweep_measured_insts 123456",
          "ebcp_sweep_retries 2", "ebcp_sweep_warm_builds 1",
          "ebcp_sweep_warm_forks 4", "ebcp_sweep_cold_fallbacks 0",
          "ebcp_sweep_resumed 1", "ebcp_sweep_jobs 4",
          "ebcp_sweep_done 0"})
        EXPECT_NE(text.find(gauge), std::string::npos) << gauge;
    // Every sample is preceded by # HELP / # TYPE metadata.
    EXPECT_NE(text.find("# HELP ebcp_sweep_runs_total"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE ebcp_sweep_insts_per_sec gauge"),
              std::string::npos);

    TempFile tmp("metrics_snapshot.prom");
    Status s = writeMetricsSnapshot(tmp.path, m);
    ASSERT_TRUE(s.ok()) << s.toString();
    std::ifstream in(tmp.path);
    std::string written((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(written, text);
}
