/**
 * @file
 * Tests for the parallel sweep engine: bit-identical results across
 * job counts, fault isolation, descriptor-derived seeding, option
 * parsing, and sweep accounting.
 *
 * The SweepDeterminism suite is also registered as a dedicated ctest
 * entry (sweep_determinism_jobs4) so a -DEBCP_SANITIZE=thread build
 * exercises the runner's concurrency under the thread sanitizer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "harness/journal.hh"
#include "harness/options.hh"
#include "harness/sweep.hh"
#include "trace/workloads.hh"

using namespace ebcp;
using namespace ebcp::harness;

namespace
{

constexpr std::uint64_t kWarm = 60'000;
constexpr std::uint64_t kMeasure = 120'000;

RunDesc
makeDesc(const std::string &workload, const std::string &pf,
         std::uint64_t seed = 0)
{
    RunDesc d;
    d.workload = workload;
    d.pf.name = pf;
    d.pf.ebcp.prefetchDegree = 4;
    d.pf.ebcp.tableEntries = 1ULL << 14;
    d.scale.warm = kWarm;
    d.scale.measure = kMeasure;
    d.seed = seed;
    return d;
}

/** A mixed (workload x prefetcher) grid of >= 8 runs. */
std::vector<RunDesc>
mixedGrid()
{
    std::vector<RunDesc> descs;
    for (const auto &w : workloadNames()) { // 4 workloads x 2 schemes
        descs.push_back(makeDesc(w, "null"));
        descs.push_back(makeDesc(w, "ebcp"));
    }
    descs.push_back(makeDesc("database", "stream"));
    descs.push_back(makeDesc("specjbb", "nextline"));
    return descs;
}

void
expectBitIdentical(const SimResults &a, const SimResults &b,
                   const std::string &what)
{
    EXPECT_EQ(a.insts, b.insts) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.epochs, b.epochs) << what;
    EXPECT_EQ(a.cpi, b.cpi) << what;
    EXPECT_EQ(a.epochsPer1k, b.epochsPer1k) << what;
    EXPECT_EQ(a.l2InstMissPer1k, b.l2InstMissPer1k) << what;
    EXPECT_EQ(a.l2LoadMissPer1k, b.l2LoadMissPer1k) << what;
    EXPECT_EQ(a.usefulPrefetches, b.usefulPrefetches) << what;
    EXPECT_EQ(a.issuedPrefetches, b.issuedPrefetches) << what;
    EXPECT_EQ(a.droppedPrefetches, b.droppedPrefetches) << what;
    EXPECT_EQ(a.coverage, b.coverage) << what;
    EXPECT_EQ(a.accuracy, b.accuracy) << what;
    EXPECT_EQ(a.readBusUtil, b.readBusUtil) << what;
    EXPECT_EQ(a.writeBusUtil, b.writeBusUtil) << what;
}

unsigned
parallelJobs()
{
    // The TSan ctest entry pins EBCP_BENCH_JOBS=4; default to 4
    // workers regardless so contention is exercised even on small
    // machines.
    if (const char *env = std::getenv("EBCP_BENCH_JOBS"))
        return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return 4;
}

} // namespace

TEST(SweepDeterminism, BitIdenticalAcrossJobCounts)
{
    const std::vector<RunDesc> descs = mixedGrid();
    ASSERT_GE(descs.size(), 8u);

    SweepRunner serial(1);
    SweepRunner parallel(parallelJobs());
    const std::vector<RunResult> a = serial.run(descs);
    const std::vector<RunResult> b = parallel.run(descs);

    ASSERT_EQ(a.size(), descs.size());
    ASSERT_EQ(b.size(), descs.size());
    for (std::size_t i = 0; i < descs.size(); ++i) {
        ASSERT_TRUE(a[i].ok()) << a[i].status.toString();
        ASSERT_TRUE(b[i].ok()) << b[i].status.toString();
        expectBitIdentical(a[i].results, b[i].results,
                           runLabel(descs[i]));
    }
}

TEST(SweepDeterminism, SeedFollowsDescriptorNotSubmissionOrder)
{
    // The same descriptor, submitted at different positions within
    // different sweeps, must produce identical results.
    const RunDesc probe = makeDesc("tpcw", "ebcp", 77);

    std::vector<RunDesc> first{probe, makeDesc("database", "null"),
                               makeDesc("specjas", "stream")};
    std::vector<RunDesc> second{makeDesc("specjbb", "ebcp"),
                                makeDesc("database", "ebcp"), probe};

    SweepRunner pool(parallelJobs());
    const RunResult a = pool.run(first)[0];
    const RunResult b = pool.run(second)[2];
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    expectBitIdentical(a.results, b.results, "probe");
}

TEST(SweepRunnerTest, FaultedRunDoesNotPoisonNeighbors)
{
    std::vector<RunDesc> descs{makeDesc("database", "ebcp"),
                               makeDesc("database", "ebcp"),
                               makeDesc("specjbb", "null")};
    // Arm a demand-stall fault plus the watchdog on the middle run:
    // it must come back Stalled while its neighbors are untouched.
    descs[1].label = "stalling-run";
    descs[1].cfg.faults.demandStall = true;
    descs[1].cfg.faults.stallAfter = 2'000;
    descs[1].cfg.watchdogTicks = 10'000'000;

    SweepRunner pool(parallelJobs());
    const std::vector<RunResult> rs = pool.run(descs);

    ASSERT_TRUE(rs[0].ok()) << rs[0].status.toString();
    ASSERT_FALSE(rs[1].ok());
    EXPECT_EQ(rs[1].status.code(), StatusCode::Stalled);
    ASSERT_TRUE(rs[2].ok()) << rs[2].status.toString();

    // Neighbors must equal the same descriptors run alone.
    SweepRunner solo(1);
    const RunResult alone0 = solo.run({descs[0]})[0];
    const RunResult alone2 = solo.run({descs[2]})[0];
    expectBitIdentical(rs[0].results, alone0.results, "left neighbor");
    expectBitIdentical(rs[2].results, alone2.results, "right neighbor");

    const SweepStats &st = pool.stats();
    EXPECT_EQ(st.launched, 3u);
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.failed, 1u);
}

TEST(SweepRunnerTest, BadDescriptorYieldsPerRunStatus)
{
    std::vector<RunDesc> descs{makeDesc("database", "null"),
                               makeDesc("no-such-workload", "null"),
                               makeDesc("database", "no-such-pf")};
    SweepRunner pool(2);
    const std::vector<RunResult> rs = pool.run(descs);
    EXPECT_TRUE(rs[0].ok());
    ASSERT_FALSE(rs[1].ok());
    EXPECT_EQ(rs[1].status.code(), StatusCode::NotFound);
    ASSERT_FALSE(rs[2].ok());
    EXPECT_EQ(rs[2].status.code(), StatusCode::NotFound);
}

TEST(SweepRunnerTest, StatsAccounting)
{
    std::vector<RunDesc> descs{makeDesc("database", "null"),
                               makeDesc("tpcw", "null")};
    SweepRunner pool(2);
    const std::vector<RunResult> rs = pool.run(descs);
    ASSERT_TRUE(rs[0].ok());
    ASSERT_TRUE(rs[1].ok());

    const SweepStats &st = pool.stats();
    EXPECT_EQ(st.launched, 2u);
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.jobs, 2u);
    EXPECT_GT(st.wallSeconds, 0.0);
    EXPECT_EQ(st.measuredInsts, 2 * kMeasure);
    EXPECT_GT(st.instsPerSec(), 0.0);
}

TEST(SweepRunnerTest, RunSeedIsDescriptorDerived)
{
    EXPECT_EQ(runSeed(makeDesc("database", "null")), 1u);
    EXPECT_EQ(runSeed(makeDesc("tpcw", "null")), 2u);
    EXPECT_EQ(runSeed(makeDesc("specjbb", "ebcp")), 3u);
    EXPECT_EQ(runSeed(makeDesc("specjas", "ebcp")), 4u);
    EXPECT_EQ(runSeed(makeDesc("database", "null", 99)), 99u);
    // The prefetcher must not perturb the workload stream: the
    // paper's methodology compares configurations on the same trace.
    EXPECT_EQ(runSeed(makeDesc("database", "null")),
              runSeed(makeDesc("database", "ebcp")));
}

TEST(SweepDeterminism, JournalResumeMergesBitIdentical)
{
    // Simulate a killed sweep: run the first half with a journal,
    // then run the full grid against the same journal. The first half
    // must be replayed (not re-executed) and the merged results must
    // be bit-identical to an uninterrupted journal-less sweep.
    const std::vector<RunDesc> descs = mixedGrid();
    const std::size_t half = descs.size() / 2;
    const std::vector<RunDesc> first(descs.begin(),
                                     descs.begin() + half);

    const std::string path =
        ::testing::TempDir() + "/sweep_resume.jsonl";
    std::remove(path.c_str());

    SweepOptions opts;
    opts.journalPath = path;

    SweepRunner baseline(1);
    const std::vector<RunResult> want = baseline.run(descs);

    SweepRunner interrupted(2, opts);
    const std::vector<RunResult> partial = interrupted.run(first);
    for (const RunResult &r : partial)
        ASSERT_TRUE(r.ok()) << r.status.toString();
    EXPECT_EQ(interrupted.stats().resumed, 0u);

    SweepRunner resumed(parallelJobs(), opts);
    const std::vector<RunResult> merged = resumed.run(descs);
    ASSERT_EQ(merged.size(), descs.size());
    EXPECT_EQ(resumed.stats().resumed, half);
    EXPECT_EQ(resumed.stats().journalSkipped, 0u);
    for (std::size_t i = 0; i < descs.size(); ++i) {
        ASSERT_TRUE(merged[i].ok()) << merged[i].status.toString();
        EXPECT_EQ(merged[i].fromJournal, i < half) << i;
        expectBitIdentical(merged[i].results, want[i].results,
                           runLabel(descs[i]));
    }

    // A third pass resumes everything: zero execution, same results.
    SweepRunner replay(parallelJobs(), opts);
    const std::vector<RunResult> again = replay.run(descs);
    EXPECT_EQ(replay.stats().resumed, descs.size());
    for (std::size_t i = 0; i < descs.size(); ++i)
        expectBitIdentical(again[i].results, want[i].results,
                           runLabel(descs[i]));
    std::remove(path.c_str());
}

TEST(SweepDeterminism, WarmForkBitIdenticalToCold)
{
    // Pairs of runs differing only in the measurement window share a
    // warm fingerprint: with warmReuse each pair builds one warm
    // checkpoint and forks both measurements from it, and the results
    // must be bit-identical to fully cold runs.
    std::vector<RunDesc> descs;
    for (const char *w : {"database", "tpcw"}) {
        for (const char *pf : {"null", "ebcp"}) {
            RunDesc d = makeDesc(w, pf);
            descs.push_back(d);
            d.scale.measure = 2 * kMeasure;
            descs.push_back(d);
        }
    }

    SweepRunner cold(parallelJobs());
    const std::vector<RunResult> a = cold.run(descs);

    SweepOptions opts;
    opts.warmReuse = true;
    SweepRunner warm(parallelJobs(), opts);
    const std::vector<RunResult> b = warm.run(descs);

    for (std::size_t i = 0; i < descs.size(); ++i) {
        ASSERT_TRUE(a[i].ok()) << a[i].status.toString();
        ASSERT_TRUE(b[i].ok()) << b[i].status.toString();
        EXPECT_TRUE(b[i].warmForked) << i;
        EXPECT_FALSE(b[i].coldFallback) << i;
        expectBitIdentical(a[i].results, b[i].results,
                           runLabel(descs[i]));
    }

    const SweepStats &st = warm.stats();
    EXPECT_EQ(st.warmBuilds, 4u); // one per (workload, pf) pair
    EXPECT_EQ(st.warmForks, descs.size());
    EXPECT_EQ(st.coldFallbacks, 0u);
}

TEST(SweepRunnerTest, RetryAccountingIsDeterministic)
{
    // A persistently stalling run consumes maxAttempts attempts with
    // the exact backoff schedule retryBackoffMs() predicts; a bad
    // descriptor (NotFound) is deterministic and never retried.
    RunDesc stall = makeDesc("database", "ebcp");
    stall.cfg.faults.demandStall = true;
    stall.cfg.faults.stallAfter = 2'000;
    stall.cfg.watchdogTicks = 1'000'000;

    std::vector<RunDesc> descs{stall,
                               makeDesc("no-such-workload", "null")};

    SweepOptions opts;
    opts.retry.maxAttempts = 3;
    opts.retry.sleep = false; // account the delays, skip the naps
    opts.retry.seed = 11;

    SweepRunner pool(2, opts);
    const std::vector<RunResult> rs = pool.run(descs);

    ASSERT_FALSE(rs[0].ok());
    EXPECT_EQ(rs[0].status.code(), StatusCode::Stalled);
    EXPECT_EQ(rs[0].attempts, 3u);

    ASSERT_FALSE(rs[1].ok());
    EXPECT_EQ(rs[1].status.code(), StatusCode::NotFound);
    EXPECT_EQ(rs[1].attempts, 1u);

    const std::uint64_t key = descFingerprint(stall);
    const std::uint64_t want_backoff =
        retryBackoffMs(opts.retry, key, 1) +
        retryBackoffMs(opts.retry, key, 2);
    const SweepStats &st = pool.stats();
    EXPECT_EQ(st.retries, 2u);
    EXPECT_EQ(st.backoffMsTotal, want_backoff);
    EXPECT_EQ(st.failed, 2u);
}

TEST(SweepRunnerTest, CorruptWarmCheckpointFollowsPolicy)
{
    std::vector<RunDesc> descs;
    {
        RunDesc d = makeDesc("database", "ebcp");
        descs.push_back(d);
        d.scale.measure = 2 * kMeasure;
        descs.push_back(d);
    }

    SweepRunner cold(1);
    const std::vector<RunResult> want = cold.run(descs);

    // Strict: a damaged warm checkpoint fails each forked run with
    // the coded Status; the sweep itself survives.
    {
        SweepOptions opts;
        opts.warmReuse = true;
        opts.ckptPolicy = ckpt::CkptPolicy::Strict;
        SweepRunner pool(2, opts);
        pool.corruptWarmCacheForTest(CkptFaultKind::CrcFlip, 7);
        const std::vector<RunResult> rs = pool.run(descs);
        for (const RunResult &r : rs) {
            ASSERT_FALSE(r.ok());
            EXPECT_TRUE(r.status.code() == StatusCode::Corruption ||
                        r.status.code() == StatusCode::InvalidArgument)
                << r.status.toString();
        }
    }

    // Rebuild: the damage is logged, the runs fall back to cold
    // warm-up, and the results are still bit-identical.
    {
        SweepOptions opts;
        opts.warmReuse = true;
        opts.ckptPolicy = ckpt::CkptPolicy::Rebuild;
        SweepRunner pool(2, opts);
        pool.corruptWarmCacheForTest(CkptFaultKind::HeaderBitflip, 9);
        const std::vector<RunResult> rs = pool.run(descs);
        for (std::size_t i = 0; i < rs.size(); ++i) {
            ASSERT_TRUE(rs[i].ok()) << rs[i].status.toString();
            EXPECT_TRUE(rs[i].coldFallback) << i;
            EXPECT_FALSE(rs[i].warmForked) << i;
            expectBitIdentical(rs[i].results, want[i].results,
                               runLabel(descs[i]));
        }
        EXPECT_EQ(pool.stats().coldFallbacks, 2u);
        EXPECT_EQ(pool.stats().warmForks, 0u);
    }
}

TEST(SweepRunnerTest, WallClockTimeoutTripsStalledStatus)
{
    // A run whose measurement window cannot finish inside the budget
    // must fail Stalled with the wall-clock diagnostic instead of
    // holding the sweep hostage.
    RunDesc d = makeDesc("database", "null");
    d.scale.warm = 10'000;
    d.scale.measure = 2'000'000'000; // far beyond the budget

    SweepOptions opts;
    opts.runTimeoutSeconds = 0.05;
    SweepRunner pool(1, opts);
    const std::vector<RunResult> rs = pool.run({d});
    ASSERT_FALSE(rs[0].ok());
    EXPECT_EQ(rs[0].status.code(), StatusCode::Stalled);
    EXPECT_NE(rs[0].status.message().find("wall-clock"),
              std::string::npos)
        << rs[0].status.message();
}

TEST(RunnerOptions, ScaleEnvParsing)
{
    ConfigStore cs;
    StatusOr<RunScale> s = tryResolveScale(cs, nullptr);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s.value().warm, RunScale{}.warm);
    EXPECT_EQ(s.value().measure, RunScale{}.measure);

    s = tryResolveScale(cs, "0.5");
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s.value().warm, RunScale{}.warm / 2);
    EXPECT_EQ(s.value().measure, RunScale{}.measure / 2);

    for (const char *bad : {"garbage", "", "-1", "0", "0.0", "nan",
                            "inf", "1.5x"}) {
        s = tryResolveScale(cs, bad);
        EXPECT_FALSE(s.ok()) << "accepted EBCP_BENCH_SCALE='" << bad
                             << "'";
        if (!s.ok()) {
            EXPECT_EQ(s.status().code(), StatusCode::InvalidArgument);
        }
    }
}

TEST(RunnerOptions, ScaleCliOverrides)
{
    ConfigStore cs;
    cs.set("warm", "1000");
    cs.set("measure", "2000");
    StatusOr<RunScale> s = tryResolveScale(cs, "4");
    ASSERT_TRUE(s.ok());
    // Absolute CLI overrides win over the env multiplier.
    EXPECT_EQ(s.value().warm, 1000u);
    EXPECT_EQ(s.value().measure, 2000u);

    cs.set("measure", "0");
    s = tryResolveScale(cs, nullptr);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::InvalidArgument);

    cs.set("measure", "not-a-number");
    s = tryResolveScale(cs, nullptr);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::InvalidArgument);
}

TEST(RunnerOptions, JobsParsing)
{
    ConfigStore cs;
    StatusOr<unsigned> j = tryResolveJobs(cs, nullptr);
    ASSERT_TRUE(j.ok());
    EXPECT_EQ(j.value(), defaultJobs());

    j = tryResolveJobs(cs, "4");
    ASSERT_TRUE(j.ok());
    EXPECT_EQ(j.value(), 4u);

    for (const char *bad : {"0", "-2", "four", ""}) {
        j = tryResolveJobs(cs, bad);
        EXPECT_FALSE(j.ok()) << "accepted EBCP_BENCH_JOBS='" << bad
                             << "'";
    }

    // The CLI key overrides the environment.
    cs.set("jobs", "2");
    j = tryResolveJobs(cs, "8");
    ASSERT_TRUE(j.ok());
    EXPECT_EQ(j.value(), 2u);

    cs.set("jobs", "0");
    EXPECT_FALSE(tryResolveJobs(cs, nullptr).ok());
    cs.set("jobs", "9999");
    EXPECT_FALSE(tryResolveJobs(cs, nullptr).ok());
}
