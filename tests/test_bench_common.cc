/**
 * @file
 * Tests for the bench-layer helpers: the thread-safe baseline cache
 * (single computation per key, stable storage under concurrency, and
 * scale-keyed entries).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "bench/bench_common.hh"

using namespace ebcp;
using namespace ebcp::bench;

TEST(BaselineCache, ConcurrentCallersShareOneStableEntry)
{
    RunScale scale;
    scale.warm = 20'000;
    scale.measure = 40'000;

    constexpr int kThreads = 8;
    std::vector<const SimResults *> ptrs(kThreads, nullptr);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back(
            [&, i]() { ptrs[i] = &baseline("database", scale); });
    for (std::thread &t : threads)
        t.join();

    // Single computation: every caller got the same stable storage.
    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(ptrs[0], ptrs[i]);
    ASSERT_NE(ptrs[0], nullptr);
    EXPECT_EQ(ptrs[0]->insts, 40'000u);
}

TEST(BaselineCache, KeyedByScaleAndStableAcrossInsertions)
{
    RunScale a;
    a.warm = 20'000;
    a.measure = 40'000;
    RunScale b = a;
    b.measure = 60'000;

    const SimResults &ra = baseline("tpcw", a);
    // Different windows must not alias the same cache slot (the old
    // workload-only key returned scale-a results for a scale-b ask).
    const SimResults &rb = baseline("tpcw", b);
    EXPECT_NE(&ra, &rb);
    EXPECT_EQ(ra.insts, 40'000u);
    EXPECT_EQ(rb.insts, 60'000u);

    // References stay valid and identical after further insertions.
    baseline("specjbb", a);
    EXPECT_EQ(&baseline("tpcw", a), &ra);
    EXPECT_EQ(&baseline("tpcw", b), &rb);
}
