/**
 * @file
 * Observability-layer tests.
 *
 * The contract under test: tracing and sampling are observation only
 * (attaching them changes no simulated number), every exported JSON
 * artifact passes its own in-repo validator, the interval sampler
 * snapshots at exact instruction boundaries, and the prefetch ledger
 * classifies the lifecycle of every prefetcher behind the factory.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "prefetch/ledger.hh"
#include "sim/simulator.hh"
#include "harness/stats_json.hh"
#include "stats/interval.hh"
#include "trace/fault_injection.hh"
#include "trace/workloads.hh"
#include "util/event_trace.hh"
#include "util/json.hh"

using namespace ebcp;

namespace
{

constexpr std::uint64_t kWarm = 100'000;
constexpr std::uint64_t kMeasure = 200'000;

SimResults
runPlain(const std::string &workload, const std::string &pf_name)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = pf_name;
    Simulator sim(cfg, pf);
    auto src = makeWorkload(workload);
    return sim.run(*src, kWarm, kMeasure);
}

SimResults
runObserved(const std::string &workload, const std::string &pf_name,
            TraceLog &log)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = pf_name;
    Simulator sim(cfg, pf);
    sim.attachTraceLog(log);
    IntervalSampler sampler(sim.l2side().stats(), 50'000);
    sim.setSampler(&sampler);
    auto src = makeWorkload(workload);
    return sim.run(*src, kWarm, kMeasure);
}

/** Every SimResults field, compared exactly (doubles included: the
 * observed run must compute the *same* arithmetic, not similar). */
void
expectBitExact(const SimResults &a, const SimResults &b)
{
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.epochsPer1k, b.epochsPer1k);
    EXPECT_EQ(a.l2InstMissPer1k, b.l2InstMissPer1k);
    EXPECT_EQ(a.l2LoadMissPer1k, b.l2LoadMissPer1k);
    EXPECT_EQ(a.usefulPrefetches, b.usefulPrefetches);
    EXPECT_EQ(a.issuedPrefetches, b.issuedPrefetches);
    EXPECT_EQ(a.droppedPrefetches, b.droppedPrefetches);
    EXPECT_EQ(a.timelyPrefetches, b.timelyPrefetches);
    EXPECT_EQ(a.latePrefetches, b.latePrefetches);
    EXPECT_EQ(a.earlyEvictedPrefetches, b.earlyEvictedPrefetches);
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_EQ(a.accuracy, b.accuracy);
    EXPECT_EQ(a.timeliness, b.timeliness);
    EXPECT_EQ(a.readBusUtil, b.readBusUtil);
    EXPECT_EQ(a.writeBusUtil, b.writeBusUtil);
}

/** A temp path that removes itself. */
struct TempFile
{
    std::string path;
    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {}
    ~TempFile() { std::remove(path.c_str()); }
};

} // namespace

// --- Observation-only guarantee ------------------------------------

TEST(EventTrace, AttachedLogAndSamplerLeaveResultsBitExact)
{
    for (const char *workload : {"database", "specjbb"})
        for (const char *pf : {"null", "ebcp"}) {
            SCOPED_TRACE(std::string(workload) + "/" + pf);
            const SimResults plain = runPlain(workload, pf);
            TraceLog log;
            const SimResults observed = runObserved(workload, pf, log);
            expectBitExact(plain, observed);
        }
}

// --- Chrome trace export -------------------------------------------

// Under -DEBCP_DISABLE_EVENT_TRACE every record site compiles away,
// so an attached log legitimately stays empty; the export test only
// makes sense with the sites present.
#ifndef EBCP_DISABLE_EVENT_TRACE
TEST(EventTrace, ExportedTimelineIsValidChromeTraceJson)
{
    TraceLog log;
    runObserved("database", "ebcp", log);
    ASSERT_GT(log.totalEvents(), 0u);

    TempFile tmp("observability.trace.json");
    Status s = log.exportChromeJson(tmp.path);
    ASSERT_TRUE(s.ok()) << s.toString();

    StatusOr<JsonValue> doc = parseJsonFile(tmp.path);
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue *events = doc.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_GT(events->array.size(), 0u);

    // Every non-metadata event carries the mandatory members, and
    // each (pid, tid) track is ts-monotone (what Perfetto's importer
    // relies on; distinct tracks -- e.g. the profiler's flame row --
    // are independent timelines).
    std::map<std::pair<double, double>, double> last_ts;
    std::size_t counter_events = 0;
    std::set<std::string> counter_names;
    for (const JsonValue &e : events->array) {
        ASSERT_TRUE(e.isObject());
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "M")
            continue;
        ASSERT_TRUE(e.hasNumber("ts"));
        ASSERT_TRUE(e.hasNumber("pid"));
        ASSERT_TRUE(e.hasNumber("tid"));
        const auto track = std::make_pair(e.find("pid")->number,
                                          e.find("tid")->number);
        const double ts = e.find("ts")->number;
        auto it = last_ts.find(track);
        if (it != last_ts.end()) {
            EXPECT_GE(ts, it->second);
        }
        last_ts[track] = ts;
        if (ph->string == "X") {
            EXPECT_TRUE(e.hasNumber("dur"));
        }
        if (ph->string == "C") {
            // Counter tracks: sampled values live in args.value, and
            // every sample sits on the dedicated counter track.
            ++counter_events;
            const JsonValue *name = e.find("name");
            ASSERT_NE(name, nullptr);
            counter_names.insert(name->string);
            EXPECT_EQ(e.find("pid")->number, 0.0);
            EXPECT_EQ(e.find("tid")->number, 0.0);
            const JsonValue *args = e.find("args");
            ASSERT_NE(args, nullptr);
            ASSERT_TRUE(args->isObject());
            EXPECT_TRUE(args->hasNumber("value"));
        }
    }

    // The sampler cadence drove counter samples: 200k measured insts
    // at interval 50k gives four sampling points per counter.
    EXPECT_GT(counter_events, 0u);
    EXPECT_TRUE(counter_names.count("mshr_occupancy"));
    EXPECT_TRUE(counter_names.count("pf_buffer_occupancy"));
    EXPECT_TRUE(counter_names.count("corr_table_fill"));
    EXPECT_TRUE(counter_names.count("channel_backlog_ticks"));
}
#endif // EBCP_DISABLE_EVENT_TRACE

TEST(EventTrace, ValidatorRejectsMalformedTimelines)
{
    // Not JSON at all.
    EXPECT_FALSE(validateChromeTraceJson("{nope").ok());
    // No traceEvents member.
    EXPECT_FALSE(validateChromeTraceJson("{\"x\": []}").ok());
    // Event missing "ph".
    EXPECT_FALSE(
        validateChromeTraceJson(
            "{\"traceEvents\": [{\"name\": \"a\", \"ts\": 1, "
            "\"pid\": 0, \"tid\": 0}]}")
            .ok());
    // Non-monotone ts.
    EXPECT_FALSE(
        validateChromeTraceJson(
            "{\"traceEvents\": ["
            "{\"name\": \"a\", \"ph\": \"i\", \"ts\": 5, \"pid\": 0, "
            "\"tid\": 0, \"s\": \"t\"},"
            "{\"name\": \"b\", \"ph\": \"i\", \"ts\": 4, \"pid\": 0, "
            "\"tid\": 0, \"s\": \"t\"}]}")
            .ok());
    // "X" span without dur.
    EXPECT_FALSE(
        validateChromeTraceJson(
            "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", "
            "\"ts\": 1, \"pid\": 0, \"tid\": 0}]}")
            .ok());
    // Monotonicity is per (pid, tid) track: a later event on another
    // track may carry an earlier ts (the profiler flame row restarts
    // its clock at zero).
    EXPECT_TRUE(
        validateChromeTraceJson(
            "{\"traceEvents\": ["
            "{\"name\": \"a\", \"ph\": \"i\", \"ts\": 5, \"pid\": 0, "
            "\"tid\": 0, \"s\": \"t\"},"
            "{\"name\": \"b\", \"ph\": \"i\", \"ts\": 1, \"pid\": 1, "
            "\"tid\": 0, \"s\": \"t\"}]}")
            .ok());
    // "C" counter without a numeric args.value.
    EXPECT_FALSE(
        validateChromeTraceJson(
            "{\"traceEvents\": [{\"name\": \"c\", \"ph\": \"C\", "
            "\"ts\": 1, \"pid\": 0, \"tid\": 0}]}")
            .ok());
}

TEST(EventTrace, RingKeepsNewestAndCountsDropped)
{
    TraceSink sink("s", 0, 16);
    for (Tick t = 0; t < 20; ++t)
        sink.record(TraceEventKind::DemandMiss, t);
    EXPECT_EQ(sink.size(), 16u);
    EXPECT_EQ(sink.dropped(), 4u);
    const std::vector<TraceEvent> events = sink.snapshot();
    ASSERT_EQ(events.size(), 16u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].tick, Tick(4 + i)); // oldest first
}

// --- Interval sampler ----------------------------------------------

TEST(IntervalSampler, SimulatorSamplesAtExactBoundaries)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "ebcp";
    Simulator sim(cfg, pf);
    IntervalSampler sampler(sim.l2side().stats(), 60'000);
    sim.setSampler(&sampler);
    auto src = makeWorkload("database");
    sim.run(*src, kWarm, kMeasure);

    // 200k measured insts at 60k intervals: 60k, 120k, 180k, plus the
    // partial final boundary at 200k.
    ASSERT_EQ(sampler.snapshots().size(), 4u);
    EXPECT_EQ(sampler.snapshots()[0].insts, 60'000u);
    EXPECT_EQ(sampler.snapshots()[1].insts, 120'000u);
    EXPECT_EQ(sampler.snapshots()[2].insts, 180'000u);
    EXPECT_EQ(sampler.snapshots()[3].insts, 200'000u);
    for (const IntervalSampler::Snapshot &s : sampler.snapshots())
        EXPECT_EQ(s.values.size(), sampler.paths().size());
    EXPECT_FALSE(sampler.paths().empty());
}

TEST(IntervalSampler, DeltaIsChangeSincePreviousBoundary)
{
    StatGroup root("root");
    Scalar hits("hits", "test counter");
    root.add(hits);

    IntervalSampler cumulative(root, 1'000,
                               IntervalSampler::Mode::Cumulative);
    IntervalSampler delta(root, 1'000, IntervalSampler::Mode::Delta);
    ASSERT_EQ(cumulative.paths().size(), 1u);
    EXPECT_EQ(cumulative.paths()[0], "root.hits");

    hits += 10;
    cumulative.sample(1'000);
    delta.sample(1'000);
    hits += 5;
    cumulative.sample(2'000);
    delta.sample(2'000);
    cumulative.sample(3'000); // no activity this interval
    delta.sample(3'000);

    EXPECT_EQ(cumulative.snapshots()[0].values[0], 10.0);
    EXPECT_EQ(cumulative.snapshots()[1].values[0], 15.0);
    EXPECT_EQ(cumulative.snapshots()[2].values[0], 15.0);
    EXPECT_EQ(delta.snapshots()[0].values[0], 10.0);
    EXPECT_EQ(delta.snapshots()[1].values[0], 5.0);
    EXPECT_EQ(delta.snapshots()[2].values[0], 0.0);

    // Delta sampling never reset the live statistic.
    EXPECT_EQ(hits.value(), 15u);
}

TEST(IntervalSampler, DeltaAverageIsPerIntervalMean)
{
    StatGroup root("root");
    Average lat("lat", "test average");
    root.add(lat);

    IntervalSampler delta(root, 100, IntervalSampler::Mode::Delta);
    lat.sample(10.0);
    lat.sample(20.0);
    delta.sample(100);
    lat.sample(90.0);
    delta.sample(200);

    // Interval 1: mean(10, 20) = 15. Interval 2: only the new sample
    // counts -- mean is 90, not the running mean of all three.
    EXPECT_DOUBLE_EQ(delta.snapshots()[0].values[0], 15.0);
    EXPECT_DOUBLE_EQ(delta.snapshots()[1].values[0], 90.0);
}

TEST(IntervalSampler, WriteJsonRoundTrips)
{
    StatGroup root("root");
    Scalar s("s", "d");
    root.add(s);
    IntervalSampler sampler(root, 500);
    s += 3;
    sampler.sample(500);

    std::ostringstream os;
    JsonWriter w(os);
    sampler.writeJson(w);
    ASSERT_TRUE(w.complete());

    StatusOr<JsonValue> doc = parseJson(os.str());
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    EXPECT_TRUE(doc.value().hasNumber("interval"));
    EXPECT_EQ(doc.value().find("interval")->number, 500.0);
    const JsonValue *samples = doc.value().find("samples");
    ASSERT_NE(samples, nullptr);
    ASSERT_EQ(samples->array.size(), 1u);
    EXPECT_EQ(samples->array[0].find("insts")->number, 500.0);
}

// --- Prefetch ledger across the factory ----------------------------

TEST(PrefetchLedger, ClassifiesEveryFactoryPrefetcher)
{
    // Golden-scale windows: every scheme below has trained enough to
    // issue at least one prefetch by then.
    constexpr std::uint64_t warm = 200'000;
    constexpr std::uint64_t measure = 400'000;

    for (const char *name : {"ebcp", "stream", "ghb-small", "tcp-small",
                             "sms", "solihin-3-2", "dcpt", "amc",
                             "composite"}) {
        SCOPED_TRACE(name);
        SimConfig cfg;
        PrefetcherParams pf;
        pf.name = name;
        Simulator sim(cfg, pf);
        auto src = makeWorkload("database");
        const SimResults r = sim.run(*src, warm, measure);

        EXPECT_GT(r.issuedPrefetches, 0u);

        // Used prefetches split exactly into timely + late, and the
        // lifecycle states never exceed what was issued.
        EXPECT_EQ(r.timelyPrefetches + r.latePrefetches,
                  r.usefulPrefetches);
        EXPECT_LE(r.usefulPrefetches + r.earlyEvictedPrefetches,
                  r.issuedPrefetches);

        EXPECT_GE(r.accuracy, 0.0);
        EXPECT_LE(r.accuracy, 1.0);
        EXPECT_GE(r.coverage, 0.0);
        EXPECT_LE(r.coverage, 1.0);
        EXPECT_GE(r.timeliness, 0.0);
        EXPECT_LE(r.timeliness, 1.0);

        const PrefetchLedger &ledger = sim.l2side().ledger();
        EXPECT_EQ(ledger.issued(), r.issuedPrefetches);
        EXPECT_EQ(ledger.used(), r.usefulPrefetches);
        if (r.usefulPrefetches) {
            EXPECT_DOUBLE_EQ(r.timeliness,
                             static_cast<double>(r.timelyPrefetches) /
                                 static_cast<double>(r.usefulPrefetches));
        }
    }
}

TEST(PrefetchLedger, DerivedMetrics)
{
    PrefetchLedger ledger;
    EXPECT_DOUBLE_EQ(ledger.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(ledger.timeliness(), 0.0);
    EXPECT_DOUBLE_EQ(ledger.coverage(0), 0.0);

    for (int i = 0; i < 10; ++i)
        ledger.onIssue();
    ledger.onHitTimely(100);
    ledger.onHitTimely(50);
    ledger.onHitLate(30);
    ledger.onEvictUnused();

    EXPECT_EQ(ledger.used(), 3u);
    EXPECT_DOUBLE_EQ(ledger.accuracy(), 0.3);
    EXPECT_DOUBLE_EQ(ledger.timeliness(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(ledger.coverage(7), 0.3);
    EXPECT_EQ(ledger.evictedUnused(), 1u);
}

// --- stats.json schema ---------------------------------------------

TEST(StatsJson, ProducedDocumentValidates)
{
    std::ostringstream os;
    JsonWriter w(os);
    beginStatsJson(w, "test");
    SimResults r;
    r.insts = 100;
    r.cycles = 500;
    r.cpi = 5.0;
    w.beginObject();
    w.kv("label", "database/ebcp");
    w.key("results");
    writeSimResultsJson(w, r);
    w.endObject();
    endStatsJson(w);
    ASSERT_TRUE(w.complete());

    Status s = validateStatsJson(os.str());
    EXPECT_TRUE(s.ok()) << s.toString();
}

TEST(StatsJson, DiagnosticMemberValidates)
{
    std::ostringstream os;
    JsonWriter w(os);
    beginStatsJson(w, "test");
    endStatsJson(w, "{\"kind\": \"watchdog_stall\"}");
    Status s = validateStatsJson(os.str());
    EXPECT_TRUE(s.ok()) << s.toString();
}

TEST(StatsJson, ValidatorRejectsSchemaViolations)
{
    // Wrong schema tag.
    EXPECT_FALSE(validateStatsJson("{\"schema\": \"other\", \"source\": "
                                   "\"x\", \"runs\": []}")
                     .ok());
    // Missing runs.
    EXPECT_FALSE(validateStatsJson("{\"schema\": \"ebcp-stats-v1\", "
                                   "\"source\": \"x\"}")
                     .ok());
    // Run without a label.
    EXPECT_FALSE(
        validateStatsJson("{\"schema\": \"ebcp-stats-v1\", \"source\": "
                          "\"x\", \"runs\": [{\"results\": {}}]}")
            .ok());
    // Results missing required numeric fields.
    EXPECT_FALSE(
        validateStatsJson(
            "{\"schema\": \"ebcp-stats-v1\", \"source\": \"x\", "
            "\"runs\": [{\"label\": \"l\", \"results\": {\"cpi\": 1}}]}")
            .ok());
    // Diagnostic that is not an object.
    EXPECT_FALSE(
        validateStatsJson("{\"schema\": \"ebcp-stats-v1\", \"source\": "
                          "\"x\", \"runs\": [], \"diagnostic\": 3}")
            .ok());
}

// --- Watchdog structured diagnostic --------------------------------

TEST(WatchdogJson, StallProducesStructuredDiagnostic)
{
    FaultPlan plan;
    plan.demandStall = true;
    plan.stallAfter = 2'000;

    SimConfig cfg;
    cfg.faults = plan;
    cfg.watchdogTicks = 10'000'000;
    PrefetcherParams pf;
    pf.name = "ebcp";

    auto src = makeWorkload("database", 42);
    Simulator sim(cfg, pf);
    sim.setTracePolicyName("strict");
    StatusOr<SimResults> res = sim.tryRun(*src, 20'000, 60'000);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::Stalled);

    // The text diagnostic carries the new context lines.
    const std::string &msg = res.status().message();
    EXPECT_NE(msg.find("wall clock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("trace policy: strict"), std::string::npos) << msg;

    // The JSON twin parses and carries the same facts, typed.
    ASSERT_FALSE(sim.lastDiagnosticJson().empty());
    StatusOr<JsonValue> doc = parseJson(sim.lastDiagnosticJson());
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue &d = doc.value();
    ASSERT_TRUE(d.isObject());
    const JsonValue *kind = d.find("kind");
    ASSERT_NE(kind, nullptr);
    EXPECT_EQ(kind->string, "watchdog_stall");
    EXPECT_TRUE(d.hasNumber("retire_gap_ticks"));
    EXPECT_TRUE(d.hasNumber("wall_seconds"));
    EXPECT_GE(d.find("wall_seconds")->number, 0.0);
    const JsonValue *policy = d.find("trace_policy");
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->string, "strict");
    ASSERT_NE(d.find("mshrs"), nullptr);
    EXPECT_TRUE(d.find("mshrs")->hasNumber("occupancy"));

    // And the JSON embeds cleanly as a stats.json diagnostic.
    std::ostringstream os;
    JsonWriter w(os);
    beginStatsJson(w, "test");
    endStatsJson(w, sim.lastDiagnosticJson());
    Status s = validateStatsJson(os.str());
    EXPECT_TRUE(s.ok()) << s.toString();
}
