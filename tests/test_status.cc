/**
 * @file
 * Unit tests for the recoverable-error layer: Status, StatusOr, the
 * fault-plan parser and the "did you mean" string helpers.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "util/fault.hh"
#include "util/status.hh"
#include "util/str.hh"

using namespace ebcp;

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_TRUE(s.message().empty());
}

TEST(Status, CarriesCodeAndMessage)
{
    Status s(StatusCode::Corruption, "bad chunk");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_EQ(s.message(), "bad chunk");
}

TEST(Status, ToStringNamesTheCode)
{
    Status s = ioError("disk on fire");
    std::string rendered = s.toString();
    EXPECT_NE(rendered.find(statusCodeName(StatusCode::IoError)),
              std::string::npos)
        << rendered;
    EXPECT_NE(rendered.find("disk on fire"), std::string::npos);
}

TEST(Status, FactoriesSetTheirCodes)
{
    EXPECT_EQ(invalidArgError("x").code(), StatusCode::InvalidArgument);
    EXPECT_EQ(notFoundError("x").code(), StatusCode::NotFound);
    EXPECT_EQ(ioError("x").code(), StatusCode::IoError);
    EXPECT_EQ(corruptionError("x").code(), StatusCode::Corruption);
    EXPECT_EQ(stalledError("x").code(), StatusCode::Stalled);
}

TEST(Status, FactoriesConcatenateStreamStyle)
{
    Status s = invalidArgError("key '", "rob", "' = ", 128);
    EXPECT_EQ(s.message(), "key 'rob' = 128");
}

TEST(Status, WithContextPrepends)
{
    Status s = corruptionError("CRC mismatch");
    Status wrapped = s.withContext("/tmp/a.trc chunk 3");
    EXPECT_EQ(wrapped.code(), StatusCode::Corruption);
    EXPECT_EQ(wrapped.message(), "/tmp/a.trc chunk 3: CRC mismatch");
    // Original untouched.
    EXPECT_EQ(s.message(), "CRC mismatch");
}

TEST(Status, ErrnoStringIsDescriptive)
{
    errno = ENOENT;
    std::string s = errnoString();
    EXPECT_NE(s.find("2"), std::string::npos) << s;
}

TEST(StatusOr, HoldsValue)
{
    StatusOr<int> v = 42;
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), 42);
    EXPECT_EQ(v.valueOr(7), 42);
}

TEST(StatusOr, HoldsError)
{
    StatusOr<int> v = notFoundError("no such workload");
    EXPECT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::NotFound);
    EXPECT_EQ(v.valueOr(7), 7);
}

TEST(StatusOr, TakeMovesOutMoveOnlyPayloads)
{
    StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(9);
    ASSERT_TRUE(v.ok());
    std::unique_ptr<int> p = v.take();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 9);
}

namespace
{
struct Base
{
    virtual ~Base() = default;
};
struct Derived : Base
{
};
} // namespace

TEST(StatusOr, AcceptsConvertibleValues)
{
    // unique_ptr<Derived> -> unique_ptr<Base>, as the factory
    // functions return.
    StatusOr<std::unique_ptr<Base>> v = std::make_unique<Derived>();
    ASSERT_TRUE(v.ok());
    EXPECT_NE(v.value(), nullptr);
}

TEST(FaultPlan, EmptyListArmsNothing)
{
    StatusOr<FaultPlan> p = FaultPlan::parse("", 5);
    ASSERT_TRUE(p.ok());
    EXPECT_FALSE(p.value().any());
    EXPECT_EQ(p.value().seed, 5u);
}

TEST(FaultPlan, ParsesKnownKinds)
{
    StatusOr<FaultPlan> p =
        FaultPlan::parse("trace-bitflip,table-drop,demand-stall", 1);
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(p.value().traceBitflip);
    EXPECT_TRUE(p.value().tableDrop);
    EXPECT_TRUE(p.value().demandStall);
    EXPECT_FALSE(p.value().traceTruncate);
    EXPECT_FALSE(p.value().traceShortRead);
    EXPECT_FALSE(p.value().tableDelay);
    EXPECT_TRUE(p.value().any());
}

TEST(FaultPlan, EveryAdvertisedKindParses)
{
    for (const std::string &kind : FaultPlan::kindNames()) {
        StatusOr<FaultPlan> p = FaultPlan::parse(kind, 1);
        EXPECT_TRUE(p.ok()) << kind;
        EXPECT_TRUE(p.value().any()) << kind;
    }
}

TEST(FaultPlan, UnknownKindSuggestsNearest)
{
    StatusOr<FaultPlan> p = FaultPlan::parse("table-dropp", 1);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::InvalidArgument);
    EXPECT_NE(p.status().message().find("table-drop"),
              std::string::npos)
        << p.status().message();
}

TEST(Str, EditDistance)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("abc", "abc"), 0u);
    EXPECT_EQ(editDistance("abc", ""), 3u);
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistance("tabel_entries", "table_entries"), 2u);
}

TEST(Str, NearestMatchFindsTypo)
{
    EXPECT_EQ(nearestMatch("tabel_entries",
                           {"table_entries", "degree", "rob"}),
              "table_entries");
    // Nothing within the distance cap -> no suggestion.
    EXPECT_EQ(nearestMatch("zzzzzzzz", {"table_entries", "degree"}),
              "");
}
