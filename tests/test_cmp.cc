/**
 * @file
 * Tests for the CMP extension: multi-core wiring, per-core EBCP
 * state, shared-L2 visibility and determinism.
 */

#include <gtest/gtest.h>

#include "sim/cmp_system.hh"
#include "trace/workloads.hh"

using namespace ebcp;

TEST(CmpTest, SingleCoreMatchesStructure)
{
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "null";
    CmpResults r = runCmp(cfg, p, "database", 1, 100000, 200000);
    ASSERT_EQ(r.perCore.size(), 1u);
    EXPECT_EQ(r.perCore[0].insts, 200000u);
    EXPECT_NEAR(r.aggregateCpi, r.perCore[0].cpi, 1e-9);
}

TEST(CmpTest, AllCoresRunTheirInstructions)
{
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "null";
    CmpResults r = runCmp(cfg, p, "tpcw", 4, 50000, 100000);
    ASSERT_EQ(r.perCore.size(), 4u);
    for (const auto &c : r.perCore)
        EXPECT_EQ(c.insts, 100000u);
}

TEST(CmpTest, SharedL2ContentionRaisesCpi)
{
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "null";
    CmpResults one = runCmp(cfg, p, "database", 1, 100000, 200000);
    CmpResults four = runCmp(cfg, p, "database", 4, 100000, 200000);
    // Four independent working sets thrash the shared 2MB L2.
    EXPECT_GT(four.aggregateCpi, one.aggregateCpi);
}

TEST(CmpTest, Deterministic)
{
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "ebcp";
    p.ebcp.numCoreStates = 2;
    CmpResults a = runCmp(cfg, p, "specjbb", 2, 50000, 100000);
    CmpResults b = runCmp(cfg, p, "specjbb", 2, 50000, 100000);
    for (unsigned i = 0; i < 2; ++i)
        EXPECT_EQ(a.perCore[i].cycles, b.perCore[i].cycles);
    EXPECT_EQ(a.epochs, b.epochs);
}

TEST(CmpTest, CoresUseDifferentSeeds)
{
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "null";
    CmpResults r = runCmp(cfg, p, "database", 2, 100000, 200000);
    // Independent instances almost surely differ in cycle counts.
    EXPECT_NE(r.perCore[0].cycles, r.perCore[1].cycles);
}

TEST(CmpTest, PerCoreEbcpStateLearnsUnderInterleaving)
{
    SimConfig cfg;
    PrefetcherParams none;
    none.name = "null";
    CmpResults base = runCmp(cfg, none, "database", 2, 800000, 1600000);

    PrefetcherParams per_core;
    per_core.name = "ebcp";
    per_core.ebcp.numCoreStates = 2;
    CmpResults pc = runCmp(cfg, per_core, "database", 2, 800000,
                           1600000);

    PrefetcherParams shared;
    shared.name = "ebcp";
    shared.ebcp.numCoreStates = 1;
    CmpResults sh = runCmp(cfg, shared, "database", 2, 800000, 1600000);

    // Per-core state must beat a single shared epoch stream, and both
    // must beat no prefetching.
    EXPECT_GT(pc.coverage, sh.coverage);
    EXPECT_LT(pc.aggregateCpi, base.aggregateCpi);
}

TEST(CmpTest, CoreIdsReachThePrefetcher)
{
    // With per-core states, each core's epoch stream is tracked
    // separately; exercise via the public EMAB accessor.
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "ebcp";
    p.ebcp.numCoreStates = 2;
    CmpSystem sys(cfg, p, 2);
    auto s0 = makeWorkload("database", 7);
    auto s1 = makeWorkload("database", 8);
    std::vector<TraceSource *> srcs{s0.get(), s1.get()};
    sys.run(srcs, 100000, 100000);
    auto *e = dynamic_cast<EpochBasedPrefetcher *>(&sys.prefetcher());
    ASSERT_NE(e, nullptr);
    EXPECT_GT(e->emab(0).size(), 0u);
    EXPECT_GT(e->emab(1).size(), 0u);
}

TEST(CmpTest, OutOfRangeCoreIdClamps)
{
    // A prefetcher configured with fewer states than cores must not
    // crash: extra cores share the last state.
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "ebcp";
    p.ebcp.numCoreStates = 1;
    CmpResults r = runCmp(cfg, p, "tpcw", 4, 50000, 100000);
    EXPECT_EQ(r.perCore.size(), 4u);
}

TEST(CmpTest, CoverageAccuracySane)
{
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "solihin-6-1";
    CmpResults r = runCmp(cfg, p, "database", 2, 200000, 400000);
    EXPECT_GE(r.coverage, 0.0);
    EXPECT_LE(r.coverage, 1.0);
    EXPECT_GE(r.accuracy, 0.0);
    EXPECT_LE(r.accuracy, 1.0);
}
