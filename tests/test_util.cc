/**
 * @file
 * Unit tests for the util library: bit manipulation, RNG, circular
 * buffer, configuration store and string helpers.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/bitfield.hh"
#include "util/circular_buffer.hh"
#include "util/config.hh"
#include "util/random.hh"
#include "util/str.hh"
#include "util/types.hh"

using namespace ebcp;

TEST(Bitfield, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(Bitfield, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(floorLog2(1ULL << 63), 63u);
}

TEST(Bitfield, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
}

TEST(Bitfield, AlignDownUp)
{
    EXPECT_EQ(alignDown(0x12345, 64), 0x12340u);
    EXPECT_EQ(alignUp(0x12345, 64), 0x12380u);
    EXPECT_EQ(alignDown(0x40, 64), 0x40u);
    EXPECT_EQ(alignUp(0x40, 64), 0x40u);
}

TEST(Bitfield, Bits)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xff00, 7, 0), 0x00u);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
    EXPECT_EQ(bits(0b1011000, 6, 3), 0b1011u);
}

TEST(Bitfield, Mix64Deterministic)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(Bitfield, Mix64SpreadsLowBits)
{
    // Consecutive inputs should land in different low-bit buckets
    // most of the time (table indexing quality).
    std::set<std::uint64_t> buckets;
    for (std::uint64_t i = 0; i < 64; ++i)
        buckets.insert(mix64(i) & 1023);
    EXPECT_GT(buckets.size(), 55u);
}

TEST(Pcg32, DeterministicStream)
{
    Pcg32 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Pcg32, ReseedRestartsStream)
{
    Pcg32 a(7);
    std::uint32_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Pcg32, BelowInRange)
{
    Pcg32 a(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(a.below(17), 17u);
}

TEST(Pcg32, BelowCoversRange)
{
    Pcg32 a(5);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(a.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Pcg32, RangeInclusive)
{
    Pcg32 a(3);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 200; ++i) {
        std::uint32_t v = a.range(5, 7);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Pcg32, UniformIsInUnitInterval)
{
    Pcg32 a(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = a.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32, ChanceRoughlyCalibrated)
{
    Pcg32 a(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (a.chance(0.3))
            ++hits;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(CircularBuffer, PushPopFifo)
{
    CircularBuffer<int> cb(4);
    cb.push(1);
    cb.push(2);
    cb.push(3);
    EXPECT_EQ(cb.pop(), 1);
    EXPECT_EQ(cb.pop(), 2);
    EXPECT_EQ(cb.pop(), 3);
    EXPECT_TRUE(cb.empty());
}

TEST(CircularBuffer, OverwritesOldestWhenFull)
{
    CircularBuffer<int> cb(3);
    for (int i = 1; i <= 5; ++i)
        cb.push(i);
    EXPECT_EQ(cb.size(), 3u);
    EXPECT_EQ(cb.front(), 3);
    EXPECT_EQ(cb.back(), 5);
}

TEST(CircularBuffer, IndexOldestFirst)
{
    CircularBuffer<int> cb(3);
    for (int i = 1; i <= 4; ++i)
        cb.push(i);
    EXPECT_EQ(cb.at(0), 2);
    EXPECT_EQ(cb.at(1), 3);
    EXPECT_EQ(cb.at(2), 4);
}

TEST(CircularBuffer, ClearEmpties)
{
    CircularBuffer<int> cb(2);
    cb.push(9);
    cb.clear();
    EXPECT_TRUE(cb.empty());
    EXPECT_FALSE(cb.full());
    cb.push(1);
    EXPECT_EQ(cb.front(), 1);
}

TEST(CircularBuffer, FullFlag)
{
    CircularBuffer<int> cb(2);
    EXPECT_FALSE(cb.full());
    cb.push(1);
    cb.push(2);
    EXPECT_TRUE(cb.full());
    cb.pop();
    EXPECT_FALSE(cb.full());
}

TEST(ConfigStore, ParsesKeyValueArgs)
{
    const char *argv[] = {"prog", "alpha=1", "beta=hello"};
    StatusOr<ConfigStore> parsed =
        ConfigStore::parseArgs(3, const_cast<char **>(argv));
    ASSERT_TRUE(parsed.ok());
    ConfigStore cs = parsed.take();
    EXPECT_TRUE(cs.has("alpha"));
    EXPECT_TRUE(cs.has("beta"));
    EXPECT_EQ(cs.getU64("alpha", 0), 1u);
    EXPECT_EQ(cs.getString("beta", ""), "hello");
}

TEST(ConfigStore, RejectsMalformedTokens)
{
    // A token without '=' (or with an empty key) must be an error, not
    // silently dropped: a mistyped override would otherwise invalidate
    // an experiment by running the defaults.
    const char *no_eq[] = {"prog", "alpha=1", "noequals"};
    EXPECT_FALSE(
        ConfigStore::parseArgs(3, const_cast<char **>(no_eq)).ok());

    const char *empty_key[] = {"prog", "=5"};
    EXPECT_FALSE(
        ConfigStore::parseArgs(2, const_cast<char **>(empty_key)).ok());
}

TEST(ConfigStore, TryGettersReportMalformedValues)
{
    ConfigStore cs;
    cs.set("n", "12x");
    cs.set("f", "fast");
    cs.set("b", "maybe");
    EXPECT_FALSE(cs.tryGetU64("n", 0).ok());
    EXPECT_FALSE(cs.tryGetDouble("f", 0.0).ok());
    EXPECT_FALSE(cs.tryGetBool("b", false).ok());
    EXPECT_EQ(cs.tryGetU64("absent", 7).value(), 7u);
}

TEST(ConfigStore, CheckKnownKeysSuggestsNearest)
{
    ConfigStore cs;
    cs.set("tabel_entries", "1024"); // typo of table_entries
    Status s = cs.checkKnownKeys({"table_entries", "degree"});
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("table_entries"), std::string::npos)
        << s.message();

    cs = ConfigStore();
    cs.set("degree", "4");
    EXPECT_TRUE(cs.checkKnownKeys({"table_entries", "degree"}).ok());
}

TEST(ConfigStore, DefaultsWhenAbsent)
{
    ConfigStore cs;
    EXPECT_EQ(cs.getU64("missing", 42), 42u);
    EXPECT_EQ(cs.getString("missing", "d"), "d");
    EXPECT_DOUBLE_EQ(cs.getDouble("missing", 1.5), 1.5);
    EXPECT_TRUE(cs.getBool("missing", true));
}

TEST(ConfigStore, BooleanForms)
{
    ConfigStore cs;
    cs.set("a", "true");
    cs.set("b", "0");
    cs.set("c", "YES");
    cs.set("d", "off");
    EXPECT_TRUE(cs.getBool("a", false));
    EXPECT_FALSE(cs.getBool("b", true));
    EXPECT_TRUE(cs.getBool("c", false));
    EXPECT_FALSE(cs.getBool("d", true));
}

TEST(ConfigStore, HexIntegers)
{
    ConfigStore cs;
    cs.set("addr", "0x40");
    EXPECT_EQ(cs.getU64("addr", 0), 64u);
}

TEST(Str, Split)
{
    auto v = split("a,b,,c", ',');
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "c");
}

TEST(Str, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("x"), "x");
    EXPECT_EQ(trim("   "), "");
}

TEST(Str, ToLower)
{
    EXPECT_EQ(toLower("AbC"), "abc");
}

TEST(Str, FmtDouble)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(2.0, 1), "2.0");
}

TEST(Str, FmtSize)
{
    EXPECT_EQ(fmtSize(64), "64B");
    EXPECT_EQ(fmtSize(2 * KiB), "2KB");
    EXPECT_EQ(fmtSize(64 * MiB), "64MB");
    EXPECT_EQ(fmtSize(3 * GiB), "3GB");
}
