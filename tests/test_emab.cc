/**
 * @file
 * Tests for the Epoch Miss Addresses Buffer (Section 3.4.2).
 */

#include <gtest/gtest.h>

#include "core/emab.hh"

using namespace ebcp;

TEST(EmabTest, FillsAfterFourEpochs)
{
    Emab e(4, 8);
    EXPECT_FALSE(e.full());
    for (EpochId i = 1; i <= 4; ++i)
        e.beginEpoch(i, 0x1000 * i);
    EXPECT_TRUE(e.full());
}

TEST(EmabTest, OldestEntryIsEpochIMinus3)
{
    Emab e(4, 8);
    for (EpochId i = 1; i <= 4; ++i)
        e.beginEpoch(i, 0x1000 * i);
    EXPECT_EQ(e.entry(0).epoch, 1u);
    EXPECT_EQ(e.entry(3).epoch, 4u);
    // A fifth epoch overwrites the oldest.
    e.beginEpoch(5, 0x5000);
    EXPECT_EQ(e.entry(0).epoch, 2u);
    EXPECT_EQ(e.entry(3).epoch, 5u);
}

TEST(EmabTest, RecordsMissesIntoCurrentEpoch)
{
    Emab e(4, 8);
    e.beginEpoch(1, 0xa000);
    e.recordMiss(0xa000);
    e.recordMiss(0xb000);
    e.beginEpoch(2, 0xc000);
    e.recordMiss(0xc000);
    EXPECT_EQ(e.entry(0).missAddrs.size(), 2u);
    EXPECT_EQ(e.entry(1).missAddrs.size(), 1u);
    EXPECT_EQ(e.entry(0).missAddrs[1], 0xb000u);
}

TEST(EmabTest, KeyAddrIsFirstEvent)
{
    Emab e(4, 8);
    e.beginEpoch(1, 0xdead);
    EXPECT_EQ(e.current().keyAddr, 0xdeadu);
}

TEST(EmabTest, PerEpochAddressCap)
{
    Emab e(4, 3);
    e.beginEpoch(1, 0x0);
    for (Addr a = 0; a < 10; ++a)
        e.recordMiss(a * 64);
    EXPECT_EQ(e.current().missAddrs.size(), 3u);
    // The oldest misses are the ones kept.
    EXPECT_EQ(e.current().missAddrs[0], 0u);
    EXPECT_EQ(e.current().missAddrs[2], 128u);
}

TEST(EmabTest, RecordBeforeFirstEpochIsIgnored)
{
    Emab e(4, 8);
    e.recordMiss(0x1234); // no epoch open
    e.beginEpoch(1, 0x1000);
    EXPECT_TRUE(e.current().missAddrs.empty());
}

TEST(EmabTest, ClearEmpties)
{
    Emab e(4, 8);
    e.beginEpoch(1, 0x1000);
    e.clear();
    EXPECT_EQ(e.size(), 0u);
    EXPECT_FALSE(e.full());
}

TEST(EmabTest, PaperExampleEpochWindow)
{
    // Paper Section 3.4.2: with the EMAB holding epochs i..i+3, the
    // key comes from epoch i and the payload from epochs i+2 and
    // i+3. Verify the entries line up that way.
    Emab e(4, 8);
    // Epoch i: misses A, B.
    e.beginEpoch(10, 0xA0);
    e.recordMiss(0xA0);
    e.recordMiss(0xB0);
    // Epoch i+1: C, D, E.
    e.beginEpoch(11, 0xC0);
    e.recordMiss(0xC0);
    e.recordMiss(0xD0);
    e.recordMiss(0xE0);
    // Epoch i+2: F, G.
    e.beginEpoch(12, 0xF0);
    e.recordMiss(0xF0);
    e.recordMiss(0x100);
    // Epoch i+3: H, I.
    e.beginEpoch(13, 0x110);
    e.recordMiss(0x110);
    e.recordMiss(0x120);

    ASSERT_TRUE(e.full());
    EXPECT_EQ(e.entry(0).keyAddr, 0xA0u); // key = epoch i trigger
    // Payload epochs i+2, i+3:
    EXPECT_EQ(e.entry(2).missAddrs[0], 0xF0u);
    EXPECT_EQ(e.entry(3).missAddrs[1], 0x120u);
}
