/**
 * @file
 * Unit tests for the memory system: bandwidth channel semantics,
 * priority rules, drop behaviour and main-memory timing.
 */

#include <gtest/gtest.h>

#include "mem/channel.hh"
#include "mem/main_memory.hh"
#include "mem/mem_config.hh"
#include "mem/request.hh"

using namespace ebcp;

TEST(RequestTypes, PriorityMapping)
{
    EXPECT_EQ(priorityOf(MemReqType::DemandInst), MemPriority::Demand);
    EXPECT_EQ(priorityOf(MemReqType::DemandLoad), MemPriority::Demand);
    EXPECT_EQ(priorityOf(MemReqType::StoreWrite), MemPriority::Demand);
    EXPECT_EQ(priorityOf(MemReqType::Prefetch), MemPriority::Low);
    EXPECT_EQ(priorityOf(MemReqType::TableRead), MemPriority::Low);
    EXPECT_EQ(priorityOf(MemReqType::TableWrite), MemPriority::Low);
}

TEST(RequestTypes, Names)
{
    EXPECT_STREQ(memReqTypeName(MemReqType::Prefetch), "prefetch");
    EXPECT_STREQ(memReqTypeName(MemReqType::DemandLoad), "demand-load");
}

TEST(ChannelTest, OccupancyFromBandwidth)
{
    // 3.2 bytes/tick: a 64B line occupies 20 ticks.
    Channel c("c", 3.2, 10000);
    EXPECT_EQ(c.occupancy(64), 20u);
    // 1.6 bytes/tick: 40 ticks.
    Channel w("w", 1.6, 10000);
    EXPECT_EQ(w.occupancy(64), 40u);
}

TEST(ChannelTest, BackToBackDemandSerializes)
{
    Channel c("c", 3.2, 10000);
    auto a = c.request(0, MemPriority::Demand, 64);
    auto b = c.request(0, MemPriority::Demand, 64);
    EXPECT_EQ(a.grant, 0u);
    EXPECT_EQ(b.grant, 20u);
}

TEST(ChannelTest, IdleChannelGrantsImmediately)
{
    Channel c("c", 3.2, 10000);
    auto a = c.request(500, MemPriority::Demand, 64);
    EXPECT_EQ(a.grant, 500u);
}

TEST(ChannelTest, LowPriorityNeverDelaysDemand)
{
    Channel c("c", 3.2, 10000);
    // Saturate with low-priority traffic.
    for (int i = 0; i < 10; ++i)
        c.request(0, MemPriority::Low, 64);
    // A demand request at t=0 is still granted at t=0.
    auto d = c.request(0, MemPriority::Demand, 64);
    EXPECT_EQ(d.grant, 0u);
}

TEST(ChannelTest, DemandDelaysLowPriority)
{
    Channel c("c", 3.2, 10000);
    c.request(0, MemPriority::Demand, 64); // busy until 20
    auto l = c.request(0, MemPriority::Low, 64);
    EXPECT_EQ(l.grant, 20u);
}

TEST(ChannelTest, LowPriorityDroppedWhenSaturated)
{
    Channel c("c", 3.2, 50); // drop after 50 ticks of queueing
    bool dropped = false;
    for (int i = 0; i < 10; ++i) {
        auto r = c.request(0, MemPriority::Low, 64);
        if (r.dropped)
            dropped = true;
    }
    EXPECT_TRUE(dropped);
    // The first few must have been granted.
    auto first = Channel("c2", 3.2, 50).request(0, MemPriority::Low, 64);
    EXPECT_FALSE(first.dropped);
}

TEST(ChannelTest, DroppedRequestsDoNotOccupyBus)
{
    Channel c("c", 3.2, 0); // any queueing drops
    c.request(0, MemPriority::Low, 64);  // granted at 0
    auto second = c.request(0, MemPriority::Low, 64);
    EXPECT_TRUE(second.dropped);
    // Bus frees at 20 as if only one transfer happened.
    auto third = c.request(20, MemPriority::Low, 64);
    EXPECT_FALSE(third.dropped);
    EXPECT_EQ(third.grant, 20u);
}

TEST(ChannelTest, BandwidthChangeTakesEffect)
{
    Channel c("c", 3.2, 10000);
    c.setBandwidth(1.6);
    EXPECT_EQ(c.occupancy(64), 40u);
}

TEST(ChannelTest, BusyTicksAccumulate)
{
    Channel c("c", 3.2, 10000);
    c.request(0, MemPriority::Demand, 64);
    c.request(100, MemPriority::Demand, 64);
    EXPECT_EQ(c.busyTicks(), 40u);
}

TEST(MainMemoryTest, ReadCompletesAfterLatency)
{
    MemConfig cfg;
    MainMemory mem(cfg);
    auto r = mem.access(1000, MemReqType::DemandLoad);
    EXPECT_EQ(r.complete, 1000 + cfg.latency);
}

TEST(MainMemoryTest, LoadedReadsQueueBehindEachOther)
{
    MemConfig cfg;
    MainMemory mem(cfg);
    auto a = mem.access(0, MemReqType::DemandLoad);
    auto b = mem.access(0, MemReqType::DemandLoad);
    EXPECT_EQ(a.complete, cfg.latency);
    EXPECT_EQ(b.complete, 20 + cfg.latency); // waits one transfer slot
}

TEST(MainMemoryTest, WritesUseTheWriteBus)
{
    MemConfig cfg;
    MainMemory mem(cfg);
    // Saturate the read bus; a write is unaffected.
    for (int i = 0; i < 5; ++i)
        mem.access(0, MemReqType::DemandLoad);
    auto w = mem.access(0, MemReqType::StoreWrite);
    EXPECT_EQ(w.grant, 0u);
    // Write completes at grant + occupancy (64B at 1.6B/tick = 40).
    EXPECT_EQ(w.complete, 40u);
}

TEST(MainMemoryTest, TableTrafficIsLowPriority)
{
    MemConfig cfg;
    MainMemory mem(cfg);
    mem.access(0, MemReqType::DemandLoad); // read bus busy to 20
    auto t = mem.access(0, MemReqType::TableRead);
    EXPECT_EQ(t.grant, 20u);
    EXPECT_EQ(t.complete, 20 + cfg.latency);
}

TEST(MainMemoryTest, MultiLineTableEntryTransfers)
{
    MemConfig cfg;
    MainMemory mem(cfg);
    // A 256B table entry occupies 256/3.2 = 80 ticks.
    auto a = mem.access(0, MemReqType::TableRead, 256);
    auto b = mem.access(0, MemReqType::TableRead, 64);
    EXPECT_EQ(a.grant, 0u);
    EXPECT_EQ(b.grant, 80u);
}

TEST(MainMemoryTest, BandwidthScaling)
{
    MemConfig cfg;
    MainMemory mem(cfg);
    mem.setBandwidthScale(0.5);
    auto a = mem.access(0, MemReqType::DemandLoad);
    auto b = mem.access(0, MemReqType::DemandLoad);
    EXPECT_EQ(b.grant - a.grant, 40u); // 64B at 1.6B/tick
}

TEST(MainMemoryTest, ConfigHelpers)
{
    MemConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.readGBps(3.0), 9.6);
    cfg.scaleBandwidth(0.5);
    EXPECT_DOUBLE_EQ(cfg.readBytesPerTick, 1.6);
    EXPECT_DOUBLE_EQ(cfg.writeBytesPerTick, 0.8);
}
