/**
 * @file
 * Tests for epoch tracking (Section 2.1 semantics) and the
 * analytical CPI decomposition.
 */

#include <gtest/gtest.h>

#include "epoch/epoch_tracker.hh"
#include "epoch/mlp_model.hh"

using namespace ebcp;

TEST(EpochTrackerTest, FirstAccessStartsEpochOne)
{
    EpochTracker t;
    EpochEvent e = t.observe(100, 600);
    EXPECT_TRUE(e.newEpoch);
    EXPECT_EQ(e.epoch, 1u);
    EXPECT_EQ(t.epochs(), 1u);
}

TEST(EpochTrackerTest, OverlappingAccessesShareEpoch)
{
    EpochTracker t;
    t.observe(100, 600);
    EpochEvent e = t.observe(200, 700);
    EXPECT_FALSE(e.newEpoch);
    EXPECT_EQ(e.epoch, 1u);
    EXPECT_EQ(t.epochs(), 1u);
}

TEST(EpochTrackerTest, DisjointAccessStartsNewEpoch)
{
    EpochTracker t;
    t.observe(100, 600);
    EpochEvent e = t.observe(600, 1100);
    EXPECT_TRUE(e.newEpoch);
    EXPECT_EQ(e.epoch, 2u);
}

TEST(EpochTrackerTest, TransitiveOverlapExtendsEpoch)
{
    EpochTracker t;
    t.observe(100, 600);
    t.observe(550, 1050); // overlaps first, extends end to 1050
    EpochEvent e = t.observe(1000, 1500);
    EXPECT_FALSE(e.newEpoch); // still inside the extended group
    EXPECT_EQ(t.currentEpochEnd(), 1500u);
}

TEST(EpochTrackerTest, ZeroOutstandingTransitionRule)
{
    // Exactly the paper's rule: a new epoch begins when the number of
    // outstanding accesses transitions from 0 to 1.
    EpochTracker t;
    t.observe(0, 500);
    t.observe(100, 400);  // nested: ends before the first
    EpochEvent e = t.observe(450, 950); // still one outstanding
    EXPECT_FALSE(e.newEpoch);
    EpochEvent f = t.observe(960, 1460); // all resolved: new epoch
    EXPECT_TRUE(f.newEpoch);
}

TEST(EpochTrackerTest, MlpStatistics)
{
    EpochTracker t;
    t.observe(0, 500);
    t.observe(10, 510);
    t.observe(20, 520); // 3 misses in epoch 1
    t.observe(600, 1100); // epoch 2 begins, closing epoch 1
    EXPECT_EQ(t.epochs(), 2u);
}

TEST(EpochTrackerTest, MeasurementResetKeepsEpochIds)
{
    EpochTracker t;
    t.observe(0, 500);
    t.observe(600, 1100);
    EpochId cur = t.currentEpoch();
    t.beginMeasurement();
    EXPECT_EQ(t.epochs(), 0u); // counter reset
    EpochEvent e = t.observe(1200, 1700);
    EXPECT_EQ(e.epoch, cur + 1); // ids keep counting
}

TEST(MlpModelTest, CpiDecompositionIdentity)
{
    EpochModel m;
    m.cpiPerf = 1.2;
    m.overlap = 0.25;
    m.epi = 0.004;
    m.missPenalty = 500;
    // CPI = 1.2*0.75 + 0.004*500 = 0.9 + 2.0
    EXPECT_NEAR(m.cpiOverall(), 2.9, 1e-9);
}

TEST(MlpModelTest, SolveOverlapRoundTrips)
{
    EpochModel m;
    m.cpiPerf = 1.2;
    m.overlap = 0.3;
    m.epi = 0.004;
    m.missPenalty = 500;
    double ov =
        solveOverlap(m.cpiOverall(), m.cpiPerf, m.epi, m.missPenalty);
    EXPECT_NEAR(ov, 0.3, 1e-9);
}

TEST(MlpModelTest, SolveOverlapClamps)
{
    EXPECT_DOUBLE_EQ(solveOverlap(100.0, 1.0, 0.004, 500), 0.0);
    EXPECT_DOUBLE_EQ(solveOverlap(0.0, 1.0, 0.0, 500), 1.0);
}

TEST(MlpModelTest, EpochReductionIsLinearInEpi)
{
    EpochModel m;
    m.cpiPerf = 1.2;
    m.overlap = 0.0;
    m.epi = 0.004;
    m.missPenalty = 500;
    // Removing 50% of epochs removes 50% of off-chip CPI.
    double cpi_half = predictCpiAfterEpochReduction(m, 0.5);
    EXPECT_NEAR(cpi_half, 1.2 + 1.0, 1e-9);
    // Removing all epochs leaves CPI_perf.
    EXPECT_NEAR(predictCpiAfterEpochReduction(m, 1.0), 1.2, 1e-9);
}
