/**
 * @file
 * Unit tests for the JSON writer and parser that back every
 * machine-readable artifact (stats.json, Chrome traces, bench
 * reports).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/json.hh"

using namespace ebcp;

TEST(JsonEscape, ControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonEscape, ValidUtf8PassesThroughUnchanged)
{
    EXPECT_EQ(jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");   // U+00E9
    EXPECT_EQ(jsonEscape("\xe2\x82\xac"), "\xe2\x82\xac"); // U+20AC
    EXPECT_EQ(jsonEscape("\xf0\x9f\x9a\x80"),
              "\xf0\x9f\x9a\x80"); // U+1F680
}

TEST(JsonEscape, InvalidUtf8BecomesReplacementEscapes)
{
    // Stray lead / continuation bytes.
    EXPECT_EQ(jsonEscape(std::string_view("\xff", 1)), "\\ufffd");
    EXPECT_EQ(jsonEscape(std::string_view("\x80", 1)), "\\ufffd");
    // Overlong two-byte encoding of '/' (0xC0 0xAF): the lead is
    // rejected, then the orphaned continuation byte.
    EXPECT_EQ(jsonEscape(std::string_view("\xc0\xaf", 2)),
              "\\ufffd\\ufffd");
    // Three-byte sequence truncated at end of input.
    EXPECT_EQ(jsonEscape(std::string_view("\xe2\x82", 2)),
              "\\ufffd\\ufffd");
    // UTF-16 surrogate U+D800 encoded directly.
    EXPECT_EQ(jsonEscape(std::string_view("\xed\xa0\x80", 3)),
              "\\ufffd\\ufffd\\ufffd");
    // Above U+10FFFF.
    EXPECT_EQ(jsonEscape(std::string_view("\xf4\x90\x80\x80", 4)),
              "\\ufffd\\ufffd\\ufffd\\ufffd");
    // Resynchronizes: bytes after the bad sequence survive.
    EXPECT_EQ(jsonEscape(std::string_view("a\xffz", 3)), "a\\ufffdz");
}

TEST(JsonEscape, Utf8RoundTripsThroughWriterAndParser)
{
    const std::string utf8 = "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x9a\x80";
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("s", utf8);
    w.endObject();

    StatusOr<JsonValue> v = parseJson(os.str());
    ASSERT_TRUE(v.ok()) << v.status().toString();
    EXPECT_EQ(v.value().find("s")->string, utf8);
}

TEST(JsonEscape, InvalidUtf8StillYieldsParseableDocuments)
{
    // A corrupt workload name (raw 0xFF byte) must not produce a
    // document that chokes the parser; it degrades to U+FFFD.
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("s", std::string_view("bad\xffname", 8));
    w.endObject();

    StatusOr<JsonValue> v = parseJson(os.str());
    ASSERT_TRUE(v.ok()) << v.status().toString();
    EXPECT_EQ(v.value().find("s")->string, "bad\xef\xbf\xbdname");
}

TEST(JsonWriter, ObjectsArraysAndCommas)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("a", std::uint64_t(1));
    w.key("b");
    w.beginArray();
    w.value(std::uint64_t(2));
    w.value("three");
    w.nullValue();
    w.value(true);
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(os.str(), "{\"a\": 1, \"b\": [2, \"three\", null, true]}");
}

TEST(JsonWriter, RawValueSplices)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("sub");
    w.rawValue("{\"x\": 1}");
    w.endObject();
    EXPECT_EQ(os.str(), "{\"sub\": {\"x\": 1}}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray();
    w.value(std::nan(""));
    w.value(1.5);
    w.endArray();
    EXPECT_EQ(os.str(), "[null, 1.5]");
}

TEST(JsonParse, ScalarsAndNesting)
{
    StatusOr<JsonValue> v =
        parseJson("{\"i\": 42, \"f\": -2.5e2, \"s\": \"hi\", "
                  "\"b\": false, \"n\": null, \"a\": [1, [2]]}");
    ASSERT_TRUE(v.ok()) << v.status().toString();
    const JsonValue &d = v.value();
    ASSERT_TRUE(d.isObject());
    EXPECT_EQ(d.find("i")->number, 42.0);
    EXPECT_EQ(d.find("f")->number, -250.0);
    EXPECT_EQ(d.find("s")->string, "hi");
    EXPECT_FALSE(d.find("b")->boolean);
    EXPECT_TRUE(d.find("n")->isNull());
    ASSERT_TRUE(d.find("a")->isArray());
    EXPECT_EQ(d.find("a")->array[1].array[0].number, 2.0);
    EXPECT_TRUE(d.hasNumber("i"));
    EXPECT_FALSE(d.hasNumber("s"));
    EXPECT_EQ(d.find("absent"), nullptr);
}

TEST(JsonParse, StringEscapes)
{
    StatusOr<JsonValue> v = parseJson("\"a\\\"b\\n\\u0041\"");
    ASSERT_TRUE(v.ok()) << v.status().toString();
    EXPECT_EQ(v.value().string, "a\"b\nA");
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    EXPECT_FALSE(parseJson("").ok());
    EXPECT_FALSE(parseJson("{").ok());
    EXPECT_FALSE(parseJson("[1, 2").ok());
    EXPECT_FALSE(parseJson("{\"a\" 1}").ok());
    EXPECT_FALSE(parseJson("\"unterminated").ok());
    EXPECT_FALSE(parseJson("12 34").ok()); // trailing junk
    EXPECT_FALSE(parseJson("{\"a\": 1,}").ok());
    EXPECT_FALSE(parseJson("tru").ok());
}

TEST(JsonParse, ErrorsCarryByteOffsets)
{
    StatusOr<JsonValue> v = parseJson("{\"a\": !}");
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::Corruption);
    EXPECT_NE(v.status().message().find("at byte 6"), std::string::npos)
        << v.status().message();
}

TEST(JsonParse, WriterOutputRoundTrips)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("name", "run \"1\"\n");
    w.kv("value", 0.1);
    w.key("list");
    w.beginArray();
    w.value(std::int64_t(-7));
    w.endArray();
    w.endObject();

    StatusOr<JsonValue> v = parseJson(os.str());
    ASSERT_TRUE(v.ok()) << v.status().toString();
    EXPECT_EQ(v.value().find("name")->string, "run \"1\"\n");
    EXPECT_EQ(v.value().find("value")->number, 0.1);
    EXPECT_EQ(v.value().find("list")->array[0].number, -7.0);
}
