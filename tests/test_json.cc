/**
 * @file
 * Unit tests for the JSON writer and parser that back every
 * machine-readable artifact (stats.json, Chrome traces, bench
 * reports).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/json.hh"

using namespace ebcp;

TEST(JsonEscape, ControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonWriter, ObjectsArraysAndCommas)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("a", std::uint64_t(1));
    w.key("b");
    w.beginArray();
    w.value(std::uint64_t(2));
    w.value("three");
    w.nullValue();
    w.value(true);
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(os.str(), "{\"a\": 1, \"b\": [2, \"three\", null, true]}");
}

TEST(JsonWriter, RawValueSplices)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("sub");
    w.rawValue("{\"x\": 1}");
    w.endObject();
    EXPECT_EQ(os.str(), "{\"sub\": {\"x\": 1}}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray();
    w.value(std::nan(""));
    w.value(1.5);
    w.endArray();
    EXPECT_EQ(os.str(), "[null, 1.5]");
}

TEST(JsonParse, ScalarsAndNesting)
{
    StatusOr<JsonValue> v =
        parseJson("{\"i\": 42, \"f\": -2.5e2, \"s\": \"hi\", "
                  "\"b\": false, \"n\": null, \"a\": [1, [2]]}");
    ASSERT_TRUE(v.ok()) << v.status().toString();
    const JsonValue &d = v.value();
    ASSERT_TRUE(d.isObject());
    EXPECT_EQ(d.find("i")->number, 42.0);
    EXPECT_EQ(d.find("f")->number, -250.0);
    EXPECT_EQ(d.find("s")->string, "hi");
    EXPECT_FALSE(d.find("b")->boolean);
    EXPECT_TRUE(d.find("n")->isNull());
    ASSERT_TRUE(d.find("a")->isArray());
    EXPECT_EQ(d.find("a")->array[1].array[0].number, 2.0);
    EXPECT_TRUE(d.hasNumber("i"));
    EXPECT_FALSE(d.hasNumber("s"));
    EXPECT_EQ(d.find("absent"), nullptr);
}

TEST(JsonParse, StringEscapes)
{
    StatusOr<JsonValue> v = parseJson("\"a\\\"b\\n\\u0041\"");
    ASSERT_TRUE(v.ok()) << v.status().toString();
    EXPECT_EQ(v.value().string, "a\"b\nA");
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    EXPECT_FALSE(parseJson("").ok());
    EXPECT_FALSE(parseJson("{").ok());
    EXPECT_FALSE(parseJson("[1, 2").ok());
    EXPECT_FALSE(parseJson("{\"a\" 1}").ok());
    EXPECT_FALSE(parseJson("\"unterminated").ok());
    EXPECT_FALSE(parseJson("12 34").ok()); // trailing junk
    EXPECT_FALSE(parseJson("{\"a\": 1,}").ok());
    EXPECT_FALSE(parseJson("tru").ok());
}

TEST(JsonParse, ErrorsCarryByteOffsets)
{
    StatusOr<JsonValue> v = parseJson("{\"a\": !}");
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::Corruption);
    EXPECT_NE(v.status().message().find("at byte 6"), std::string::npos)
        << v.status().message();
}

TEST(JsonParse, WriterOutputRoundTrips)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("name", "run \"1\"\n");
    w.kv("value", 0.1);
    w.key("list");
    w.beginArray();
    w.value(std::int64_t(-7));
    w.endArray();
    w.endObject();

    StatusOr<JsonValue> v = parseJson(os.str());
    ASSERT_TRUE(v.ok()) << v.status().toString();
    EXPECT_EQ(v.value().find("name")->string, "run \"1\"\n");
    EXPECT_EQ(v.value().find("value")->number, 0.1);
    EXPECT_EQ(v.value().find("list")->array[0].number, -7.0);
}
