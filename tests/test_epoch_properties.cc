/**
 * @file
 * Property sweeps over the epoch tracker: invariants that must hold
 * for arbitrary interval streams (the tracker is the measurement
 * foundation of the whole reproduction).
 */

#include <gtest/gtest.h>

#include <vector>

#include "epoch/epoch_tracker.hh"
#include "util/random.hh"

using namespace ebcp;

namespace
{

struct Interval
{
    Tick issue;
    Tick complete;
};

/** Random non-decreasing-issue interval stream. */
std::vector<Interval>
randomStream(std::uint64_t seed, int n, unsigned gap, unsigned len)
{
    Pcg32 rng(seed);
    std::vector<Interval> out;
    Tick t = 0;
    for (int i = 0; i < n; ++i) {
        t += rng.below(gap);
        out.push_back({t, t + 1 + rng.below(len)});
    }
    return out;
}

/** Reference epoch count: number of 0->1 transitions of outstanding
 * accesses (computed by sweeping the full timeline). */
std::uint64_t
referenceEpochs(const std::vector<Interval> &iv)
{
    std::uint64_t epochs = 0;
    Tick group_end = 0;
    for (const Interval &i : iv) {
        if (i.issue >= group_end) {
            ++epochs;
            group_end = i.complete;
        } else {
            group_end = std::max(group_end, i.complete);
        }
    }
    return epochs;
}

} // namespace

class EpochPropertyTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(EpochPropertyTest, MatchesReferenceCount)
{
    const auto &[gap, len] = GetParam();
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        auto stream = randomStream(seed, 2000, gap, len);
        EpochTracker t;
        for (const Interval &i : stream)
            t.observe(i.issue, i.complete);
        EXPECT_EQ(t.epochs(), referenceEpochs(stream))
            << "seed " << seed;
    }
}

TEST_P(EpochPropertyTest, EpochIdsAreMonotone)
{
    const auto &[gap, len] = GetParam();
    auto stream = randomStream(42, 2000, gap, len);
    EpochTracker t;
    EpochId prev = 0;
    for (const Interval &i : stream) {
        EpochEvent e = t.observe(i.issue, i.complete);
        EXPECT_GE(e.epoch, prev);
        EXPECT_LE(e.epoch, prev + 1);
        prev = e.epoch;
    }
}

TEST_P(EpochPropertyTest, EveryAccessBelongsToCurrentEpoch)
{
    const auto &[gap, len] = GetParam();
    auto stream = randomStream(7, 1000, gap, len);
    EpochTracker t;
    for (const Interval &i : stream) {
        EpochEvent e = t.observe(i.issue, i.complete);
        EXPECT_EQ(e.epoch, t.currentEpoch());
        EXPECT_GE(t.currentEpochEnd(), i.issue);
    }
}

INSTANTIATE_TEST_SUITE_P(
    GapLenGrid, EpochPropertyTest,
    ::testing::Combine(
        // issue gap regimes: dense (heavy overlap) to sparse (serial)
        ::testing::Values(20u, 200u, 1200u),
        // access length regimes: short to memory-latency scale
        ::testing::Values(30u, 500u)));

TEST(EpochPropertyEdge, BackToBackBoundary)
{
    // An access issuing exactly at the previous group's end starts a
    // new epoch (outstanding count touched zero).
    EpochTracker t;
    t.observe(0, 500);
    EpochEvent e = t.observe(500, 1000);
    EXPECT_TRUE(e.newEpoch);
}

TEST(EpochPropertyEdge, OneTickOverlapMerges)
{
    EpochTracker t;
    t.observe(0, 500);
    EpochEvent e = t.observe(499, 999);
    EXPECT_FALSE(e.newEpoch);
}

TEST(EpochPropertyEdge, ZeroLengthRunsCount)
{
    // Degenerate (instant) accesses are tolerated.
    EpochTracker t;
    t.observe(10, 10);
    t.observe(10, 10);
    EXPECT_GE(t.epochs(), 1u);
}
