/**
 * @file
 * Bit-exact SimResults regression against pre-overhaul goldens, plus
 * steady-state allocation checks on the miss path.
 *
 * The hot-path overhaul (FlatMap migrations, record ring, pooled
 * buffers, batched trace pull, ring cursors) is pure mechanism: it
 * must not change a single simulated number. The goldens below were
 * captured from the tree BEFORE any of those changes, printed with
 * %a, and are embedded as C++ hex-float literals -- so every
 * comparison is exact to the last mantissa bit, not a tolerance test.
 * A mismatch means an optimization changed simulator semantics.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "sim/simulator.hh"
#include "trace/workloads.hh"

using namespace ebcp;

namespace
{

constexpr std::uint64_t kWarm = 200'000;
constexpr std::uint64_t kMeasure = 400'000;

struct Golden
{
    const char *workload;
    const char *pf;
    std::uint64_t insts, cycles, epochs;
    double cpi, epochsPer1k, l2InstMissPer1k, l2LoadMissPer1k;
    std::uint64_t useful, issued, dropped;
    double coverage, accuracy, readBusUtil, writeBusUtil;
};

// Captured at warm=200k / measure=400k from the pre-overhaul tree.
constexpr Golden kGoldens[] = {
    {"database", "null", 400000, 2340804, 3542,
     0x1.768754f3775b8p+2, 0x1.1b5c28f5c28f6p+3, 0x1.219999999999ap+1,
     0x1.4f1eb851eb852p+3, 0, 0, 0,
     0x0p+0, 0x0p+0, 0x1.648b690fceb7dp-5, 0x0p+0},
    {"database", "ebcp", 400000, 2340307, 3541,
     0x1.7672f9873ffacp+2, 0x1.1b47ae147ae15p+3, 0x1.20f5c28f5c28fp+1,
     0x1.4f0a3d70a3d71p+3, 3, 5, 0,
     0x1.34c4992d87fd9p-11, 0x1.3333333333333p-1,
     0x1.aa59217b592dfp-4, 0x1.f05b27d20509cp-5},
    {"tpcw", "null", 400000, 1562440, 1882,
     0x1.f3fb15b573eabp+1, 0x1.2d1eb851eb852p+2, 0x1.4cccccccccccdp+0,
     0x1.2ee147ae147aep+2, 0, 0, 0,
     0x0p+0, 0x0p+0, 0x1.fa0fed0521b4ep-6, 0x0p+0},
    {"tpcw", "ebcp", 400000, 1562440, 1882,
     0x1.f3fb15b573eabp+1, 0x1.2d1eb851eb852p+2, 0x1.4cccccccccccdp+0,
     0x1.2ee147ae147aep+2, 0, 0, 0,
     0x0p+0, 0x0p+0, 0x1.43dd796c577b1p-4, 0x1.8ab2fc561e1bcp-5},
    {"specjbb", "null", 400000, 1910665, 2814,
     0x1.31b4d6a161e4fp+2, 0x1.c23d70a3d70a4p+2, 0x1.31eb851eb851fp-1,
     0x1.5p+3, 0, 0, 0,
     0x0p+0, 0x0p+0, 0x1.7ca53614b882bp-5, 0x0p+0},
    {"specjbb", "ebcp", 400000, 1909717, 2813,
     0x1.318e0221426fep+2, 0x1.c2147ae147ae1p+2, 0x1.31eb851eb851fp-1,
     0x1.4fd70a3d70a3ep+3, 2, 2, 0,
     0x1.d8701c9ac9bb6p-12, 0x1p+0,
     0x1.afcb952e0df53p-4, 0x1.e303786fa393ep-5},
    {"specjas", "null", 400000, 1983784, 2815,
     0x1.3d67caea747d8p+2, 0x1.c266666666667p+2, 0x1.eb851eb851eb8p+0,
     0x1.e1eb851eb851fp+2, 0, 0, 0,
     0x0p+0, 0x0p+0, 0x1.383056f785f0dp-5, 0x0p+0},
    {"specjas", "ebcp", 400000, 1983786, 2815,
     0x1.3d67dfe32a066p+2, 0x1.c266666666667p+2, 0x1.eb851eb851eb8p+0,
     0x1.e1c28f5c28f5cp+2, 1, 1, 0,
     0x1.1566abc011567p-12, 0x1p+0,
     0x1.849577253f42ep-4, 0x1.d124f520ff0fbp-5},
};

} // namespace

TEST(GoldenResults, BitExactAcrossAllWorkloadsAndPrefetchers)
{
    for (const Golden &g : kGoldens) {
        SCOPED_TRACE(std::string(g.workload) + "/" + g.pf);
        SimConfig cfg;
        PrefetcherParams pf;
        pf.name = g.pf;
        auto src = makeWorkload(g.workload);
        const SimResults r = runOnce(cfg, pf, *src, kWarm, kMeasure);

        EXPECT_EQ(r.insts, g.insts);
        EXPECT_EQ(r.cycles, g.cycles);
        EXPECT_EQ(r.epochs, g.epochs);
        EXPECT_EQ(r.usefulPrefetches, g.useful);
        EXPECT_EQ(r.issuedPrefetches, g.issued);
        EXPECT_EQ(r.droppedPrefetches, g.dropped);
        // EXPECT_EQ on doubles is exact comparison -- deliberate.
        EXPECT_EQ(r.cpi, g.cpi);
        EXPECT_EQ(r.epochsPer1k, g.epochsPer1k);
        EXPECT_EQ(r.l2InstMissPer1k, g.l2InstMissPer1k);
        EXPECT_EQ(r.l2LoadMissPer1k, g.l2LoadMissPer1k);
        EXPECT_EQ(r.coverage, g.coverage);
        EXPECT_EQ(r.accuracy, g.accuracy);
        EXPECT_EQ(r.readBusUtil, g.readBusUtil);
        EXPECT_EQ(r.writeBusUtil, g.writeBusUtil);
    }
}

TEST(GoldenResults, RestoredRunsReproduceGoldensExactly)
{
    // The crash-safety claim, pinned to the same pre-overhaul
    // numbers: warm a simulator, serialize it, restore the checkpoint
    // into a FRESH simulator, and the measurement must reproduce
    // every golden to the last mantissa bit. A mismatch means
    // serialization missed (or perturbed) simulator state.
    for (const Golden &g : kGoldens) {
        SCOPED_TRACE(std::string(g.workload) + "/" + g.pf);
        SimConfig cfg;
        PrefetcherParams pf;
        pf.name = g.pf;

        std::string blob;
        {
            Simulator sim(cfg, pf);
            auto src = makeWorkload(g.workload);
            ASSERT_TRUE(sim.runWarm(*src, kWarm).ok());
            StatusOr<std::string> b = sim.serializeCheckpoint(*src);
            ASSERT_TRUE(b.ok()) << b.status().toString();
            blob = b.take();
        }

        Simulator sim(cfg, pf);
        auto src = makeWorkload(g.workload);
        ASSERT_TRUE(sim.restoreCheckpoint(blob, *src).ok());
        StatusOr<SimResults> rr = sim.runMeasure(*src, kMeasure);
        ASSERT_TRUE(rr.ok()) << rr.status().toString();
        const SimResults &r = rr.value();

        EXPECT_EQ(r.insts, g.insts);
        EXPECT_EQ(r.cycles, g.cycles);
        EXPECT_EQ(r.epochs, g.epochs);
        EXPECT_EQ(r.usefulPrefetches, g.useful);
        EXPECT_EQ(r.issuedPrefetches, g.issued);
        EXPECT_EQ(r.droppedPrefetches, g.dropped);
        EXPECT_EQ(r.cpi, g.cpi);
        EXPECT_EQ(r.epochsPer1k, g.epochsPer1k);
        EXPECT_EQ(r.l2InstMissPer1k, g.l2InstMissPer1k);
        EXPECT_EQ(r.l2LoadMissPer1k, g.l2LoadMissPer1k);
        EXPECT_EQ(r.coverage, g.coverage);
        EXPECT_EQ(r.accuracy, g.accuracy);
        EXPECT_EQ(r.readBusUtil, g.readBusUtil);
        EXPECT_EQ(r.writeBusUtil, g.writeBusUtil);
    }
}

TEST(SteadyState, MissPathStructuresStopAllocating)
{
    // Warm a full system, then run twice as many further instructions
    // and require the warmed hot structures to serve them without a
    // single new allocation: the record ring must not grow and the
    // MSHR map (reserved at construction) must never have rehashed.
    // The correlation table is excluded deliberately -- it keeps
    // admitting new keys by design until it reaches its configured
    // entry count.
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = "ebcp";
    Simulator sim(cfg, pf);
    auto src = makeWorkload("database");
    sim.run(*src, 100'000, 100'000);

    const RingStats ring0 = src->ringStats();
    const FlatMapStats mshr0 = sim.l2side().mshrs().mapStats();
    EXPECT_EQ(mshr0.rehashes, 0u);
    // The workload pre-reserves the ring from its own footprint bound
    // at construction (one counted reserve, zero growths), so even
    // the warm-up phase never reallocated.
    EXPECT_EQ(ring0.grows, 0u);

    sim.core().run(*src, 400'000);

    const RingStats ring1 = src->ringStats();
    const FlatMapStats mshr1 = sim.l2side().mshrs().mapStats();
    EXPECT_EQ(ring1.grows, 0u);
    EXPECT_EQ(mshr1.rehashes, 0u);
    // ...while the structures were genuinely exercised.
    EXPECT_GT(ring1.pushes, ring0.pushes);
    EXPECT_GT(mshr1.finds, mshr0.finds);
}

TEST(SteadyState, BatchedPullMatchesSingleRecordPull)
{
    // The core pulls records through nextBatch(); the two pull styles
    // must yield the identical stream.
    auto a = makeWorkload("tpcw");
    auto b = makeWorkload("tpcw");
    TraceRecord ra;
    TraceRecord batch[64];
    for (int round = 0; round < 2000; ++round) {
        const std::size_t got = b->nextBatch(batch, 64);
        ASSERT_EQ(got, 64u);
        for (std::size_t i = 0; i < got; ++i) {
            ASSERT_TRUE(a->next(ra));
            EXPECT_EQ(ra.pc, batch[i].pc);
            EXPECT_EQ(ra.addr, batch[i].addr);
            EXPECT_EQ(static_cast<int>(ra.op),
                      static_cast<int>(batch[i].op));
            EXPECT_EQ(ra.dstReg, batch[i].dstReg);
            EXPECT_EQ(ra.srcReg0, batch[i].srcReg0);
            EXPECT_EQ(ra.srcReg1, batch[i].srcReg1);
        }
    }
}
