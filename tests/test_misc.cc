/**
 * @file
 * Remaining coverage: logging helpers, request-type names, config
 * presets, and factory parameter plumbing.
 */

#include <gtest/gtest.h>

#include "mem/request.hh"
#include "prefetch/ghb.hh"
#include "prefetch/solihin.hh"
#include "prefetch/tcp.hh"
#include "sim/prefetcher_factory.hh"
#include "util/logging.hh"

using namespace ebcp;

TEST(Logging, FormatConcatenates)
{
    EXPECT_EQ(logFormat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(logFormat(), "");
}

TEST(Logging, PanicIfAborts)
{
    EXPECT_DEATH({ panic_if(true, "boom ", 42); }, "boom 42");
}

TEST(Logging, FatalIfExits)
{
    EXPECT_EXIT({ fatal_if(true, "bad config"); },
                ::testing::ExitedWithCode(1), "bad config");
}

TEST(Logging, ConditionsPassWhenFalse)
{
    panic_if(false, "never");
    fatal_if(false, "never");
    SUCCEED();
}

TEST(RequestNames, AllTypesNamed)
{
    for (MemReqType t :
         {MemReqType::DemandInst, MemReqType::DemandLoad,
          MemReqType::StoreWrite, MemReqType::Prefetch,
          MemReqType::TableRead, MemReqType::TableWrite})
        EXPECT_STRNE(memReqTypeName(t), "unknown");
}

TEST(Presets, GhbSizesMatchPaper)
{
    // GHB small ~256KB (16K+16K entries), large ~4MB (256K+256K).
    EXPECT_EQ(GhbConfig::small().indexEntries, 16u * 1024u);
    EXPECT_EQ(GhbConfig::small().ghbEntries, 16u * 1024u);
    EXPECT_EQ(GhbConfig::large().indexEntries, 256u * 1024u);
    EXPECT_EQ(GhbConfig::large().ghbEntries, 256u * 1024u);
    EXPECT_EQ(GhbConfig::small().depth, 6u);
}

TEST(Presets, SolihinConfigsMatchPaper)
{
    SolihinConfig a = SolihinConfig::depth3width2();
    EXPECT_EQ(a.depth, 3u);
    EXPECT_EQ(a.width, 2u);
    SolihinConfig b = SolihinConfig::depth6width1();
    EXPECT_EQ(b.depth, 6u);
    EXPECT_EQ(b.width, 1u);
    EXPECT_EQ(a.tableEntries, 1ULL << 20); // 1M entries
}

TEST(Presets, TcpThtMatchesL1Sets)
{
    // "the THT contains 128 entries, matching the same number of sets
    // in the L1 caches."
    EXPECT_EQ(TcpConfig::small().thtEntries, 128u);
    EXPECT_EQ(TcpConfig::small().l1Sets, 128u);
}

TEST(Factory, EbcpParamsAreForwarded)
{
    PrefetcherParams p;
    p.name = "ebcp";
    p.ebcp.prefetchDegree = 13;
    p.ebcp.tableEntries = 1 << 12;
    p.ebcp.numCoreStates = 3;
    auto pf = createPrefetcher(p);
    auto *e = dynamic_cast<EpochBasedPrefetcher *>(pf.get());
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->config().prefetchDegree, 13u);
    EXPECT_EQ(e->config().tableEntries, 1u << 12);
    EXPECT_EQ(e->config().numCoreStates, 3u);
    EXPECT_EQ(e->table().config().addrsPerEntry, 13u);
}

TEST(Factory, NamedVariantsKeepOwnStatsNames)
{
    PrefetcherParams p;
    p.name = "ghb-large";
    auto pf = createPrefetcher(p);
    EXPECT_EQ(pf->name(), "ghb_large");
    p.name = "solihin-3-2";
    EXPECT_EQ(createPrefetcher(p)->name(), "solihin_3_2");
}

TEST(Factory, ListsFifteenSchemes)
{
    EXPECT_EQ(prefetcherNames().size(), 15u);
}

TEST(Factory, EveryListedSchemeConstructs)
{
    // The registry is the single source of truth for docs and CLI
    // help; every name it advertises must actually build with the
    // default parameters.
    for (const std::string &n : prefetcherNames()) {
        PrefetcherParams p;
        p.name = n;
        auto pf = tryCreatePrefetcher(p);
        EXPECT_TRUE(pf.ok()) << n << ": " << pf.status().toString();
    }
}
