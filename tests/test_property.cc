/**
 * @file
 * Property-style parameterized sweeps across prefetchers, workloads
 * and configurations: invariants that must hold for every point in
 * the design space.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulator.hh"
#include "trace/workloads.hh"

using namespace ebcp;

// ---------------------------------------------------------------------
// Every (workload x prefetcher) combination must produce sane results
// and never lose to the baseline catastrophically.
// ---------------------------------------------------------------------

using ComboParam = std::tuple<std::string, std::string>;

class ComboTest : public ::testing::TestWithParam<ComboParam>
{
};

TEST_P(ComboTest, InvariantsHold)
{
    const auto &[workload, prefetcher] = GetParam();
    SimConfig cfg;
    PrefetcherParams p;
    p.name = prefetcher;
    auto src = makeWorkload(workload);
    SimResults r = runOnce(cfg, p, *src, 250000, 500000);

    EXPECT_GT(r.cpi, 0.2);
    EXPECT_LT(r.cpi, 50.0);
    EXPECT_GE(r.coverage, 0.0);
    EXPECT_LE(r.coverage, 1.0);
    EXPECT_GE(r.accuracy, 0.0);
    EXPECT_LE(r.accuracy, 1.0);
    EXPECT_GE(r.readBusUtil, 0.0);
    EXPECT_LE(r.readBusUtil, 1.0);
    EXPECT_LE(r.usefulPrefetches, r.issuedPrefetches);
    EXPECT_EQ(r.insts, 500000u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ComboTest,
    ::testing::Combine(::testing::Values("database", "tpcw", "specjbb",
                                         "specjas"),
                       ::testing::Values("null", "ebcp", "ebcp-minus",
                                         "stream", "ghb-small", "sms",
                                         "tcp-small", "solihin-6-1")),
    [](const ::testing::TestParamInfo<ComboParam> &param_info) {
        std::string n = std::get<0>(param_info.param) + "_" +
                        std::get<1>(param_info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Prefetching must never delay demand accesses: the baseline's demand
// bus behaviour implies prefetcher CPI can exceed baseline only
// through second-order effects; bound the damage.
// ---------------------------------------------------------------------

class NoHarmTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(NoHarmTest, PrefetcherNeverHurtsMuch)
{
    SimConfig cfg;
    PrefetcherParams base;
    base.name = "null";
    auto s1 = makeWorkload(GetParam());
    SimResults rb = runOnce(cfg, base, *s1, 250000, 500000);

    PrefetcherParams p;
    p.name = "ebcp";
    auto s2 = makeWorkload(GetParam());
    SimResults rp = runOnce(cfg, p, *s2, 250000, 500000);

    EXPECT_GT(improvementPct(rb, rp), -3.0);
}

INSTANTIATE_TEST_SUITE_P(Workloads, NoHarmTest,
                         ::testing::Values("database", "tpcw", "specjbb",
                                           "specjas"));

// ---------------------------------------------------------------------
// EBCP degree sweep: issued prefetch volume grows with degree, and
// determinism holds per degree.
// ---------------------------------------------------------------------

class DegreeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DegreeSweep, VolumeAndDeterminism)
{
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "ebcp";
    p.ebcp.prefetchDegree = GetParam();

    auto s1 = makeWorkload("database");
    SimResults a = runOnce(cfg, p, *s1, 250000, 500000);
    auto s2 = makeWorkload("database");
    SimResults b = runOnce(cfg, p, *s2, 250000, 500000);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.issuedPrefetches, b.issuedPrefetches);
    EXPECT_GE(a.coverage, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

TEST(DegreeMonotonicity, IssuedVolumeGrowsWithDegree)
{
    SimConfig cfg;
    std::uint64_t prev_requested = 0;
    for (unsigned d : {1u, 4u, 16u}) {
        PrefetcherParams p;
        p.name = "ebcp";
        p.ebcp.prefetchDegree = d;
        auto src = makeWorkload("database");
        SimResults r = runOnce(cfg, p, *src, 250000, 500000);
        const std::uint64_t vol =
            r.issuedPrefetches + r.droppedPrefetches;
        EXPECT_GE(vol + 50, prev_requested) << "degree " << d;
        prev_requested = vol;
    }
}

// ---------------------------------------------------------------------
// Memory bandwidth sweep: utilization falls as bandwidth grows.
// ---------------------------------------------------------------------

class BandwidthSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(BandwidthSweep, UtilizationBounded)
{
    SimConfig cfg;
    cfg.mem.scaleBandwidth(GetParam());
    PrefetcherParams p;
    p.name = "ebcp";
    auto src = makeWorkload("database");
    SimResults r = runOnce(cfg, p, *src, 250000, 500000);
    EXPECT_GE(r.readBusUtil, 0.0);
    EXPECT_LE(r.readBusUtil, 1.0);
    EXPECT_LE(r.writeBusUtil, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Scales, BandwidthSweep,
                         ::testing::Values(1.0 / 3.0, 2.0 / 3.0, 1.0));

// ---------------------------------------------------------------------
// Prefetch-buffer size sweep: results stay sane from 16 to 1024
// entries (Figure 7's range).
// ---------------------------------------------------------------------

class BufferSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BufferSweep, RunsAndStaysConsistent)
{
    SimConfig cfg;
    cfg.prefetchBufferEntries = GetParam();
    PrefetcherParams p;
    p.name = "ebcp";
    auto src = makeWorkload("specjbb");
    SimResults r = runOnce(cfg, p, *src, 250000, 500000);
    EXPECT_GT(r.cpi, 0.2);
    EXPECT_LE(r.usefulPrefetches, r.issuedPrefetches);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BufferSweep,
                         ::testing::Values(16u, 64u, 256u, 1024u));

// ---------------------------------------------------------------------
// Correlation-table size: performance must be monotone-ish in table
// size (never dramatically better with a much smaller table).
// ---------------------------------------------------------------------

TEST(TableSizeProperty, TinyTableNeverBeatsLarge)
{
    SimConfig cfg;
    PrefetcherParams tiny;
    tiny.name = "ebcp";
    tiny.ebcp.tableEntries = 1 << 10;
    auto s1 = makeWorkload("database");
    SimResults rt = runOnce(cfg, tiny, *s1, 400000, 800000);

    PrefetcherParams big;
    big.name = "ebcp";
    big.ebcp.tableEntries = 1 << 20;
    auto s2 = makeWorkload("database");
    SimResults rb = runOnce(cfg, big, *s2, 400000, 800000);

    EXPECT_LE(rt.coverage, rb.coverage + 0.02);
}
