/**
 * @file
 * Tests for the synthetic workload generator: determinism, record
 * validity, address-map structure and distribution shape.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/address_map.hh"
#include "trace/workloads.hh"
#include "trace/zipf.hh"

using namespace ebcp;

TEST(ZipfTest, SamplesWithinRange)
{
    ZipfSampler z(100, 0.8);
    Pcg32 rng(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(z.sample(rng), 100u);
}

TEST(ZipfTest, SkewFavoursSmallKeys)
{
    ZipfSampler z(1000, 1.0);
    Pcg32 rng(2);
    std::uint64_t head = 0;
    for (int i = 0; i < 10000; ++i)
        if (z.sample(rng) < 10)
            ++head;
    // With skew 1.0 the top 1% of keys draws far more than 1%.
    EXPECT_GT(head, 1000u);
}

TEST(ZipfTest, ZeroSkewIsUniform)
{
    ZipfSampler z(10, 0.0);
    Pcg32 rng(3);
    std::map<std::uint32_t, int> counts;
    for (int i = 0; i < 20000; ++i)
        ++counts[z.sample(rng)];
    for (auto &kv : counts)
        EXPECT_NEAR(kv.second, 2000, 300);
}

TEST(AddressMapTest, ChainNodesDeterministic)
{
    WorkloadConfig cfg;
    AddressMap m(cfg);
    EXPECT_EQ(m.chainNode(5, 2), m.chainNode(5, 2));
    EXPECT_NE(m.chainNode(5, 2), m.chainNode(5, 3));
    EXPECT_NE(m.chainNode(5, 2), m.chainNode(6, 2));
}

TEST(AddressMapTest, ChainNodesLineAligned)
{
    WorkloadConfig cfg;
    AddressMap m(cfg);
    for (std::uint32_t c = 0; c < 50; ++c)
        EXPECT_EQ(m.chainNode(c, 0) % 64, 0u);
}

TEST(AddressMapTest, BtreeRootIsShared)
{
    WorkloadConfig cfg;
    AddressMap m(cfg);
    EXPECT_EQ(m.btreeNode(0, 1), m.btreeNode(0, 999));
}

TEST(AddressMapTest, BtreeLeavesDiffer)
{
    WorkloadConfig cfg;
    AddressMap m(cfg);
    std::set<Addr> leaves;
    for (std::uint32_t k = 0; k < 100; ++k)
        leaves.insert(m.btreeNode(cfg.btreeLevels, k));
    EXPECT_GT(leaves.size(), 95u);
}

TEST(AddressMapTest, UpperLevelsNarrowerThanLeaves)
{
    WorkloadConfig cfg;
    AddressMap m(cfg);
    std::set<Addr> l1, leaves;
    for (std::uint32_t k = 0; k < 2000; ++k) {
        l1.insert(m.btreeNode(1, k));
        leaves.insert(m.btreeNode(cfg.btreeLevels, k));
    }
    EXPECT_LT(l1.size(), leaves.size() / 4);
}

TEST(AddressMapTest, RecordPages2KAligned)
{
    WorkloadConfig cfg;
    AddressMap m(cfg);
    for (std::uint32_t k = 0; k < 50; ++k)
        EXPECT_EQ(m.recordPage(k) % 2048, 0u);
}

TEST(AddressMapTest, FunctionsDoNotOverlap)
{
    WorkloadConfig cfg;
    AddressMap m(cfg);
    EXPECT_EQ(m.functionBase(1) - m.functionBase(0), cfg.funcBytes);
    EXPECT_GE(m.functionBase(0),
              m.dispatcherBase() + m.dispatcherBytes());
}

TEST(WorkloadTest, DeterministicAcrossInstances)
{
    auto a = makeWorkload("database");
    auto b = makeWorkload("database");
    TraceRecord ra, rb;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(a->next(ra));
        ASSERT_TRUE(b->next(rb));
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(static_cast<int>(ra.op), static_cast<int>(rb.op));
        ASSERT_EQ(ra.taken, rb.taken);
    }
}

TEST(WorkloadTest, ResetRestartsStream)
{
    auto w = makeWorkload("tpcw");
    std::vector<Addr> first;
    TraceRecord r;
    for (int i = 0; i < 1000; ++i) {
        w->next(r);
        first.push_back(r.pc);
    }
    w->reset();
    for (int i = 0; i < 1000; ++i) {
        w->next(r);
        ASSERT_EQ(r.pc, first[static_cast<std::size_t>(i)]);
    }
}

TEST(WorkloadTest, DifferentSeedsDiffer)
{
    auto a = makeWorkload("database", 1);
    auto b = makeWorkload("database", 99);
    TraceRecord ra, rb;
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        a->next(ra);
        b->next(rb);
        if (ra.pc == rb.pc && ra.addr == rb.addr)
            ++same;
    }
    EXPECT_LT(same, 900);
}

TEST(WorkloadTest, RecordsAreWellFormed)
{
    for (const auto &name : workloadNames()) {
        auto w = makeWorkload(name);
        TraceRecord r;
        for (int i = 0; i < 20000; ++i) {
            ASSERT_TRUE(w->next(r));
            ASSERT_EQ(r.pc % 4, 0u) << name;
            if (r.op == OpClass::Load || r.op == OpClass::Store) {
                ASSERT_NE(r.addr, 0u) << name;
            }
            if (r.dstReg != NoReg) {
                ASSERT_LT(r.dstReg, NumArchRegs) << name;
            }
            if (r.srcReg0 != NoReg) {
                ASSERT_LT(r.srcReg0, NumArchRegs) << name;
            }
        }
    }
}

TEST(WorkloadTest, ContainsAllInstructionClasses)
{
    auto w = makeWorkload("database");
    TraceRecord r;
    std::set<int> seen;
    for (int i = 0; i < 200000; ++i) {
        w->next(r);
        seen.insert(static_cast<int>(r.op));
    }
    EXPECT_TRUE(seen.count(static_cast<int>(OpClass::IntAlu)));
    EXPECT_TRUE(seen.count(static_cast<int>(OpClass::Load)));
    EXPECT_TRUE(seen.count(static_cast<int>(OpClass::Store)));
    EXPECT_TRUE(seen.count(static_cast<int>(OpClass::Branch)));
    EXPECT_TRUE(seen.count(static_cast<int>(OpClass::Call)));
    EXPECT_TRUE(seen.count(static_cast<int>(OpClass::Return)));
    EXPECT_TRUE(seen.count(static_cast<int>(OpClass::Serialize)));
}

TEST(WorkloadTest, CallsAndReturnsBalance)
{
    auto w = makeWorkload("specjbb");
    TraceRecord r;
    long depth = 0;
    long max_depth = 0;
    for (int i = 0; i < 100000; ++i) {
        w->next(r);
        if (r.op == OpClass::Call)
            ++depth;
        if (r.op == OpClass::Return)
            --depth;
        max_depth = std::max(max_depth, depth);
    }
    EXPECT_GE(depth, -1);
    EXPECT_LE(max_depth, 2); // ops are flat call/return pairs
}

TEST(WorkloadTest, KnownNamesResolve)
{
    for (const auto &n : workloadNames())
        EXPECT_EQ(workloadByName(n).name, n);
    EXPECT_EQ(workloadNames().size(), 4u);
}

TEST(WorkloadTest, DataAddressesAreIrregular)
{
    // Chained data must not be stride-predictable: consecutive load
    // deltas should rarely repeat.
    auto w = makeWorkload("database");
    TraceRecord r;
    std::vector<Addr> loads;
    while (loads.size() < 5000) {
        w->next(r);
        if (r.op == OpClass::Load)
            loads.push_back(r.addr);
    }
    std::map<std::int64_t, int> deltas;
    for (std::size_t i = 1; i < loads.size(); ++i)
        ++deltas[static_cast<std::int64_t>(loads[i]) -
                 static_cast<std::int64_t>(loads[i - 1])];
    // The most common delta (64, from scans) must not dominate.
    int max_count = 0;
    for (auto &kv : deltas)
        max_count = std::max(max_count, kv.second);
    EXPECT_LT(max_count, 3000);
}

TEST(WorkloadTest, RecurringKeysReplayAddresses)
{
    // The property correlation prefetching depends on: the same
    // (chain, hop) identity always maps to the same address, so key
    // recurrence replays miss addresses.
    WorkloadConfig cfg = databaseConfig();
    AddressMap m(cfg);
    for (std::uint32_t k = 0; k < 32; ++k)
        for (std::uint32_t h = 0; h < 4; ++h)
            EXPECT_EQ(m.chainNode(k, h), m.chainNode(k, h));
}
