/**
 * @file
 * Tests for the composite adaptive prefetcher and the differential
 * properties of the new engines (DCPT, AMC): ledger attribution,
 * controller adaptation, checkpoint bit-exactness, audit cleanliness,
 * and sweep determinism across job counts.
 *
 * The CompositeDeterminism suite doubles as a dedicated ctest entry
 * (composite_determinism) so a -DEBCP_SANITIZE=thread build exercises
 * the controller under the parallel sweep runner.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "prefetch/composite.hh"
#include "prefetch/ledger.hh"
#include "harness/sweep.hh"
#include "sim/simulator.hh"
#include "trace/workloads.hh"
#include "verify/audit.hh"

using namespace ebcp;
using namespace ebcp::harness;

namespace
{

constexpr std::uint64_t kWarm = 60'000;
constexpr std::uint64_t kMeasure = 120'000;

PrefetcherParams
compositeParams()
{
    PrefetcherParams p;
    p.name = "composite";
    p.ebcp.tableEntries = 1ULL << 14;
    // Short interval so the controller exercises explore, exploit and
    // re-explore within a unit-test window.
    p.composite.calibInterval = 2048;
    return p;
}

RunDesc
makeDesc(const std::string &workload, const std::string &pf)
{
    RunDesc d;
    d.workload = workload;
    d.pf.name = pf;
    d.pf.ebcp.tableEntries = 1ULL << 14;
    d.pf.composite.calibInterval = 2048;
    d.scale.warm = kWarm;
    d.scale.measure = kMeasure;
    return d;
}

void
expectBitIdentical(const SimResults &a, const SimResults &b,
                   const std::string &what)
{
    EXPECT_EQ(a.insts, b.insts) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.cpi, b.cpi) << what;
    EXPECT_EQ(a.usefulPrefetches, b.usefulPrefetches) << what;
    EXPECT_EQ(a.issuedPrefetches, b.issuedPrefetches) << what;
    EXPECT_EQ(a.coverage, b.coverage) << what;
    EXPECT_EQ(a.accuracy, b.accuracy) << what;
    EXPECT_EQ(a.timeliness, b.timeliness) << what;
}

unsigned
parallelJobs()
{
    if (const char *env = std::getenv("EBCP_BENCH_JOBS"))
        return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return 4;
}

} // namespace

// ---------------------------------------------------------------------
// Ledger parity and attribution
// ---------------------------------------------------------------------

TEST(CompositeLedger, AggregateParityWithResults)
{
    for (const char *name : {"dcpt", "amc", "composite"}) {
        SCOPED_TRACE(name);
        SimConfig cfg;
        PrefetcherParams pf = compositeParams();
        pf.name = name;
        Simulator sim(cfg, pf);
        auto src = makeWorkload("database");
        const SimResults r = sim.run(*src, 200'000, 400'000);

        EXPECT_GT(r.issuedPrefetches, 0u);
        const PrefetchLedger &ledger = sim.l2side().ledger();
        EXPECT_EQ(ledger.issued(), r.issuedPrefetches);
        EXPECT_EQ(ledger.used(), r.usefulPrefetches);
        EXPECT_EQ(r.timelyPrefetches + r.latePrefetches,
                  r.usefulPrefetches);
    }
}

TEST(CompositeLedger, SourcesPartitionTheAggregates)
{
    SimConfig cfg;
    Simulator sim(cfg, compositeParams());
    auto src = makeWorkload("database");
    sim.run(*src, kWarm, kMeasure);

    const PrefetchLedger &ledger = sim.l2side().ledger();
    std::uint64_t issued = 0, timely = 0, late = 0, evicted = 0;
    std::uint64_t attributed = 0;
    for (unsigned s = 0; s < PrefetchLedger::kMaxSources; ++s) {
        const PrefetchLedger::SourceCounters &c = ledger.source(s);
        issued += c.issued;
        timely += c.timelyHits;
        late += c.lateHits;
        evicted += c.evictedUnused;
        if (s > 0)
            attributed += c.issued;
    }
    EXPECT_EQ(issued, ledger.issued());
    EXPECT_EQ(timely, ledger.timelyHits());
    EXPECT_EQ(late, ledger.lateHits());
    EXPECT_EQ(evicted, ledger.evictedUnused());
    // Every composite issue carries a child id: nothing lands in the
    // unattributed slot.
    EXPECT_EQ(attributed, ledger.issued());
    EXPECT_EQ(ledger.source(0).issued, 0u);
}

// ---------------------------------------------------------------------
// Controller behaviour
// ---------------------------------------------------------------------

TEST(CompositeController, AdaptsAndStaysWithinBounds)
{
    SimConfig cfg;
    PrefetcherParams pf = compositeParams();
    Simulator sim(cfg, pf);
    auto src = makeWorkload("database");
    sim.run(*src, kWarm, kMeasure);

    const auto *comp = dynamic_cast<const CompositePrefetcher *>(
        &sim.prefetcher());
    ASSERT_NE(comp, nullptr);
    EXPECT_EQ(comp->childCount(), pf.composite.engines.size());
    EXPECT_LT(comp->activeChild(), comp->childCount());
    for (unsigned i = 0; i < comp->childCount(); ++i) {
        EXPECT_GE(comp->childDegree(i), pf.composite.minDegree);
        EXPECT_LE(comp->childDegree(i), pf.composite.maxDegree);
    }
}

TEST(CompositeController, AuditCleanAcrossWorkloads)
{
    for (const auto &w : workloadNames()) {
        SCOPED_TRACE(w);
        SimConfig cfg;
        Simulator sim(cfg, compositeParams());
        auto src = makeWorkload(w);
        sim.run(*src, kWarm, kMeasure);
        AuditContext ctx;
        sim.l2side().audit(ctx);
        sim.prefetcher().audit(ctx);
        EXPECT_TRUE(ctx.clean()) << w;
    }
}

// ---------------------------------------------------------------------
// Checkpoint round trips
// ---------------------------------------------------------------------

TEST(CompositeCkpt, RestoredRunIsBitIdentical)
{
    for (const char *name : {"dcpt", "amc", "composite"}) {
        SCOPED_TRACE(name);
        SimConfig cfg;
        PrefetcherParams pf = compositeParams();
        pf.name = name;

        Simulator warm(cfg, pf);
        auto src = makeWorkload("tpcw");
        ASSERT_TRUE(warm.runWarm(*src, kWarm).ok());
        StatusOr<std::string> blob = warm.serializeCheckpoint(*src);
        ASSERT_TRUE(blob.ok()) << blob.status().toString();
        StatusOr<SimResults> cold = warm.runMeasure(*src, kMeasure);
        ASSERT_TRUE(cold.ok());

        Simulator restored(cfg, pf);
        auto src2 = makeWorkload("tpcw");
        ASSERT_TRUE(
            restored.restoreCheckpoint(blob.value(), *src2).ok());
        StatusOr<SimResults> resumed =
            restored.runMeasure(*src2, kMeasure);
        ASSERT_TRUE(resumed.ok());
        expectBitIdentical(cold.value(), resumed.value(), name);
    }
}

TEST(CompositeCkpt, ChildCountMismatchIsCoded)
{
    SimConfig cfg;
    PrefetcherParams pf = compositeParams();
    Simulator warm(cfg, pf);
    auto src = makeWorkload("database");
    ASSERT_TRUE(warm.runWarm(*src, 20'000).ok());
    StatusOr<std::string> blob = warm.serializeCheckpoint(*src);
    ASSERT_TRUE(blob.ok());

    PrefetcherParams other = pf;
    other.composite.engines = {"stream", "dcpt"};
    Simulator victim(cfg, other);
    auto src2 = makeWorkload("database");
    Status s = victim.restoreCheckpoint(blob.value(), *src2);
    EXPECT_FALSE(s.ok());
}

// ---------------------------------------------------------------------
// Determinism across job counts (ctest: composite_determinism)
// ---------------------------------------------------------------------

TEST(CompositeDeterminism, BitIdenticalAcrossJobCounts)
{
    std::vector<RunDesc> descs;
    for (const auto &w : workloadNames()) {
        descs.push_back(makeDesc(w, "composite"));
        descs.push_back(makeDesc(w, "dcpt"));
        descs.push_back(makeDesc(w, "amc"));
    }

    SweepRunner serial(1);
    SweepRunner parallel(parallelJobs());
    const std::vector<RunResult> a = serial.run(descs);
    const std::vector<RunResult> b = parallel.run(descs);

    ASSERT_EQ(a.size(), descs.size());
    ASSERT_EQ(b.size(), descs.size());
    for (std::size_t i = 0; i < descs.size(); ++i) {
        ASSERT_TRUE(a[i].ok()) << a[i].status.toString();
        ASSERT_TRUE(b[i].ok()) << b[i].status.toString();
        expectBitIdentical(a[i].results, b[i].results,
                           runLabel(descs[i]));
    }
}
