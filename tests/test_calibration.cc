/**
 * @file
 * Calibration regression tests: the four workloads must keep their
 * Table 1 signatures (within generous bands, so legitimate generator
 * tweaks don't trip them, but a broken calibration does).
 *
 * Windows are shorter than the bench defaults to keep the suite fast,
 * so bands account for the colder caches of a 1M-instruction warm-up.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/simulator.hh"
#include "trace/workloads.hh"

using namespace ebcp;

namespace
{

const SimResults &
baselineOf(const std::string &w)
{
    static std::map<std::string, SimResults> cache;
    auto it = cache.find(w);
    if (it == cache.end()) {
        SimConfig cfg;
        PrefetcherParams p;
        p.name = "null";
        auto src = makeWorkload(w);
        it = cache.emplace(w, runOnce(cfg, p, *src, 1'000'000,
                                      2'000'000))
                 .first;
    }
    return it->second;
}

} // namespace

TEST(Calibration, DatabaseSignature)
{
    const SimResults &r = baselineOf("database");
    EXPECT_GT(r.cpi, 2.5);
    EXPECT_LT(r.cpi, 6.0);
    EXPECT_GT(r.epochsPer1k, 3.0);
    EXPECT_LT(r.epochsPer1k, 9.0);
    EXPECT_GT(r.l2LoadMissPer1k, 4.0);
    EXPECT_LT(r.l2LoadMissPer1k, 12.0);
    EXPECT_GT(r.l2InstMissPer1k, 0.4);
    EXPECT_LT(r.l2InstMissPer1k, 3.0);
}

TEST(Calibration, TpcwIsLightest)
{
    const SimResults &tpcw = baselineOf("tpcw");
    for (const char *other : {"database", "specjbb", "specjas"}) {
        const SimResults &o = baselineOf(other);
        EXPECT_LT(tpcw.epochsPer1k, o.epochsPer1k) << other;
        EXPECT_LT(tpcw.l2LoadMissPer1k + tpcw.l2InstMissPer1k,
                  o.l2LoadMissPer1k + o.l2InstMissPer1k)
            << other;
    }
}

TEST(Calibration, SpecjbbHasTinyInstructionFootprint)
{
    const SimResults &jbb = baselineOf("specjbb");
    EXPECT_LT(jbb.l2InstMissPer1k, 0.5);
    for (const char *other : {"database", "tpcw", "specjas"})
        EXPECT_LT(jbb.l2InstMissPer1k,
                  baselineOf(other).l2InstMissPer1k)
            << other;
}

TEST(Calibration, SpecjasHasTheLargestInstructionFootprint)
{
    const SimResults &jas = baselineOf("specjas");
    for (const char *other : {"database", "tpcw", "specjbb"})
        EXPECT_GT(jas.l2InstMissPer1k,
                  baselineOf(other).l2InstMissPer1k)
            << other;
}

TEST(Calibration, DatabaseIsMostDataMissIntensive)
{
    const SimResults &db = baselineOf("database");
    for (const char *other : {"tpcw", "specjas"})
        EXPECT_GT(db.l2LoadMissPer1k,
                  baselineOf(other).l2LoadMissPer1k)
            << other;
}

TEST(Calibration, MlpBandsMatchTable1)
{
    // Misses-per-epoch (MLP) signature: database and specjbb medium,
    // tpcw and specjas low (Table 1's epoch/miss ratios).
    auto mlp = [](const SimResults &r) {
        return (r.l2LoadMissPer1k + r.l2InstMissPer1k) / r.epochsPer1k;
    };
    EXPECT_GT(mlp(baselineOf("database")), 1.2);
    EXPECT_GT(mlp(baselineOf("specjbb")), 1.2);
    EXPECT_LT(mlp(baselineOf("tpcw")), 1.5);
    EXPECT_LT(mlp(baselineOf("specjas")), 1.45);
}

TEST(Calibration, OffChipCpiShareIsCommercial)
{
    // The paper's premise: a large fraction of execution time is
    // off-chip. Check the epoch-model share on the heaviest workload.
    const SimResults &db = baselineOf("database");
    const double offchip_cpi = db.epochsPer1k / 1000.0 * 500.0;
    EXPECT_GT(offchip_cpi / db.cpi, 0.35);
}
