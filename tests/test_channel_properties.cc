/**
 * @file
 * Property-style sweeps over the bandwidth channel and memory system:
 * conservation and priority invariants that must hold for any
 * bandwidth, request mix, or arrival pattern.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/main_memory.hh"
#include "util/random.hh"

using namespace ebcp;

class ChannelPropertyTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ChannelPropertyTest, GrantsNeverPrecedeRequests)
{
    Channel c("c", GetParam(), 5000);
    Pcg32 rng(1);
    Tick when = 0;
    for (int i = 0; i < 2000; ++i) {
        when += rng.below(50);
        MemPriority pri = rng.chance(0.5) ? MemPriority::Demand
                                          : MemPriority::Low;
        MemAccessResult r = c.request(when, pri, 64);
        if (!r.dropped) {
            EXPECT_GE(r.grant, when);
        }
    }
}

TEST_P(ChannelPropertyTest, DemandGrantsAreMonotone)
{
    Channel c("c", GetParam(), 5000);
    Pcg32 rng(2);
    Tick when = 0;
    Tick last_grant = 0;
    for (int i = 0; i < 2000; ++i) {
        when += rng.below(30);
        // Interleave low-priority noise.
        if (rng.chance(0.4))
            c.request(when, MemPriority::Low, 64);
        MemAccessResult r = c.request(when, MemPriority::Demand, 64);
        EXPECT_GE(r.grant, last_grant);
        last_grant = r.grant;
    }
}

TEST_P(ChannelPropertyTest, DemandNeverWaitsOnLowPriority)
{
    // A demand request issued when no other demand is pending must be
    // granted immediately, regardless of low-priority backlog.
    Channel c("c", GetParam(), 100000);
    Pcg32 rng(3);
    for (int i = 0; i < 500; ++i) {
        Tick when = static_cast<Tick>(i) * 2000;
        for (int k = 0; k < 10; ++k)
            c.request(when, MemPriority::Low, 64);
        MemAccessResult r = c.request(when + 1000, MemPriority::Demand,
                                      64);
        EXPECT_EQ(r.grant, when + 1000);
    }
}

TEST_P(ChannelPropertyTest, BusyTimeMatchesGrantedTransfers)
{
    Channel c("c", GetParam(), 200);
    Pcg32 rng(4);
    std::uint64_t granted = 0;
    Tick when = 0;
    for (int i = 0; i < 1000; ++i) {
        when += rng.below(25);
        MemAccessResult r = c.request(
            when,
            rng.chance(0.3) ? MemPriority::Demand : MemPriority::Low,
            64);
        if (!r.dropped)
            ++granted;
    }
    EXPECT_EQ(c.busyTicks(), granted * c.occupancy(64));
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, ChannelPropertyTest,
                         ::testing::Values(0.8, 1.6, 3.2, 6.4));

TEST(MemoryProperties, ReadsAndWritesAreIndependentChannels)
{
    MemConfig cfg;
    MainMemory mem(cfg);
    Pcg32 rng(5);
    // Saturating one direction must not delay the other.
    for (int i = 0; i < 20; ++i)
        mem.access(0, MemReqType::DemandLoad);
    MemAccessResult w = mem.access(0, MemReqType::StoreWrite);
    EXPECT_EQ(w.grant, 0u);
    for (int i = 0; i < 20; ++i)
        mem.access(1000, MemReqType::StoreWrite);
    MemAccessResult r = mem.access(1000, MemReqType::DemandLoad);
    EXPECT_GE(r.grant, 1000u);
    EXPECT_LE(r.grant, 1000u + 20u * 20u); // only behind earlier reads
}

TEST(MemoryProperties, CompletionAlwaysCoversLatency)
{
    MemConfig cfg;
    MainMemory mem(cfg);
    Pcg32 rng(6);
    Tick when = 0;
    for (int i = 0; i < 1000; ++i) {
        when += rng.below(100);
        MemAccessResult r = mem.access(when, MemReqType::DemandLoad);
        EXPECT_GE(r.complete, when + cfg.latency);
    }
}

TEST(MemoryProperties, LoadedLatencyDegradesGracefully)
{
    // Heavily loaded demand traffic queues but every request is
    // eventually serviced in bounded time (no starvation).
    MemConfig cfg;
    MainMemory mem(cfg);
    Tick worst = 0;
    for (int i = 0; i < 100; ++i) {
        MemAccessResult r = mem.access(0, MemReqType::DemandLoad);
        worst = std::max(worst, r.complete);
    }
    // 100 transfers at 20 ticks each + latency.
    EXPECT_LE(worst, 100u * 20u + cfg.latency);
}
