/**
 * @file
 * Unit tests for the cache library: tag array semantics, replacement,
 * the Cache wrapper and configuration validation.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/cache_config.hh"
#include "cache/tag_array.hh"

using namespace ebcp;

namespace
{

CacheConfig
smallCache()
{
    CacheConfig c;
    c.name = "t";
    c.sizeBytes = 4 * KiB; // 16 sets x 4 ways x 64B
    c.ways = 4;
    c.lineBytes = 64;
    c.hitLatency = 3;
    return c;
}

} // namespace

TEST(TagArrayTest, MissThenHitAfterInsert)
{
    TagArray t(16, 4, 64);
    EXPECT_FALSE(t.access(0x1000, false));
    t.insert(0x1000);
    EXPECT_TRUE(t.access(0x1000, false));
}

TEST(TagArrayTest, SameLineDifferentOffsetsHit)
{
    TagArray t(16, 4, 64);
    t.insert(0x1000);
    EXPECT_TRUE(t.access(0x103f, false));
    EXPECT_FALSE(t.access(0x1040, false));
}

TEST(TagArrayTest, LruEvictsLeastRecentlyUsed)
{
    TagArray t(1, 2, 64); // one set, two ways
    t.insert(0x0);
    t.insert(0x40);
    t.access(0x0, false); // make 0x0 MRU
    Eviction ev = t.insert(0x80);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0x40u);
    EXPECT_TRUE(t.contains(0x0));
    EXPECT_FALSE(t.contains(0x40));
}

TEST(TagArrayTest, InsertPrefersInvalidWays)
{
    TagArray t(1, 4, 64);
    t.insert(0x0);
    Eviction ev = t.insert(0x40);
    EXPECT_FALSE(ev.valid);
}

TEST(TagArrayTest, DirtyBitTracksWrites)
{
    TagArray t(1, 1, 64);
    t.insert(0x0);
    t.access(0x0, true);
    Eviction ev = t.insert(0x40);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
}

TEST(TagArrayTest, InsertDirtyFlag)
{
    TagArray t(1, 1, 64);
    t.insert(0x0, true);
    Eviction ev = t.insert(0x40);
    EXPECT_TRUE(ev.dirty);
}

TEST(TagArrayTest, ReinsertRefreshesNotEvicts)
{
    TagArray t(1, 2, 64);
    t.insert(0x0);
    t.insert(0x40);
    Eviction ev = t.insert(0x0); // already present
    EXPECT_FALSE(ev.valid);
    EXPECT_TRUE(t.contains(0x40));
}

TEST(TagArrayTest, InvalidateRemovesLine)
{
    TagArray t(16, 4, 64);
    t.insert(0x1000);
    EXPECT_TRUE(t.invalidate(0x1000));
    EXPECT_FALSE(t.contains(0x1000));
    EXPECT_FALSE(t.invalidate(0x1000));
}

TEST(TagArrayTest, ResetClearsEverything)
{
    TagArray t(16, 4, 64);
    t.insert(0x1000);
    t.insert(0x2000);
    t.reset();
    EXPECT_EQ(t.validCount(), 0u);
}

TEST(TagArrayTest, SetIndexMapsBySetBits)
{
    TagArray t(16, 4, 64);
    EXPECT_EQ(t.setIndex(0x0), 0u);
    EXPECT_EQ(t.setIndex(0x40), 1u);
    EXPECT_EQ(t.setIndex(0x40 * 16), 0u); // wraps
}

TEST(TagArrayTest, ConflictsOnlyWithinSet)
{
    TagArray t(2, 1, 64); // 2 sets, direct-mapped
    t.insert(0x0);   // set 0
    t.insert(0x40);  // set 1
    EXPECT_TRUE(t.contains(0x0));
    EXPECT_TRUE(t.contains(0x40));
    t.insert(0x80);  // set 0 again: evicts 0x0 only
    EXPECT_FALSE(t.contains(0x0));
    EXPECT_TRUE(t.contains(0x40));
}

TEST(TagArrayTest, RandomPolicyStillEvictsSomething)
{
    TagArray t(1, 2, 64, ReplPolicy::Random);
    t.insert(0x0);
    t.insert(0x40);
    Eviction ev = t.insert(0x80);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(t.validCount(), 2u);
}

TEST(CacheTest, HitMissCounters)
{
    Cache c(smallCache());
    c.access(0x1000, false);
    c.fill(0x1000);
    c.access(0x1000, false);
    c.access(0x1000, false);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(CacheTest, AccessDoesNotAllocate)
{
    Cache c(smallCache());
    c.access(0x1000, false);
    EXPECT_FALSE(c.contains(0x1000));
}

TEST(CacheTest, FillEvictionReporting)
{
    CacheConfig cfg = smallCache();
    cfg.sizeBytes = 128; // 1 set, 2 ways... 128/(4*64) < 1
    cfg.ways = 2;
    // 128B / (2 ways * 64B) = 1 set.
    Cache c(cfg);
    c.fill(0x0, true);
    c.fill(0x40 * 16, false);
    Eviction ev = c.fill(0x40 * 32, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty); // LRU victim was the dirty first fill
}

TEST(CacheTest, FlushEmpties)
{
    Cache c(smallCache());
    c.fill(0x1000);
    c.flush();
    EXPECT_FALSE(c.contains(0x1000));
}

TEST(CacheTest, LineAddrHelper)
{
    Cache c(smallCache());
    EXPECT_EQ(c.lineAddr(0x1039), 0x1000u);
}

TEST(CacheConfigTest, SetsComputation)
{
    CacheConfig c;
    c.sizeBytes = 32 * KiB;
    c.ways = 4;
    c.lineBytes = 64;
    EXPECT_EQ(c.sets(), 128u);
}

TEST(CacheConfigTest, PaperGeometries)
{
    // The paper's L1: 32KB/4-way/64B; L2: 2MB/4-way/64B.
    CacheConfig l1;
    l1.sizeBytes = 32 * KiB;
    l1.ways = 4;
    EXPECT_EQ(l1.sets(), 128u);

    CacheConfig l2;
    l2.sizeBytes = 2 * MiB;
    l2.ways = 4;
    EXPECT_EQ(l2.sets(), 8192u);
}

using CacheGeometryTest = ::testing::TestWithParam<unsigned>;

TEST_P(CacheGeometryTest, FillUpToCapacityNoEviction)
{
    const unsigned ways = GetParam();
    CacheConfig cfg;
    cfg.name = "p";
    cfg.lineBytes = 64;
    cfg.ways = ways;
    cfg.sizeBytes = std::uint64_t{16} * ways * 64; // 16 sets
    Cache c(cfg);
    // Fill exactly to capacity: no valid line may be displaced.
    for (unsigned s = 0; s < 16; ++s) {
        for (unsigned w = 0; w < ways; ++w) {
            Addr a = (static_cast<Addr>(w) * 16 + s) * 64;
            Eviction ev = c.fill(a);
            EXPECT_FALSE(ev.valid);
        }
    }
    // One more line per set must now evict.
    Eviction ev = c.fill(static_cast<Addr>(ways) * 16 * 64);
    EXPECT_TRUE(ev.valid);
}

INSTANTIATE_TEST_SUITE_P(Associativities, CacheGeometryTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));
