/**
 * @file
 * Tests for the table allocation state machine (Section 3.4.1):
 * start-up request, OS reclaim, periodic retry and reactivation.
 */

#include <gtest/gtest.h>

#include "core/table_allocation.hh"

using namespace ebcp;

TEST(TableAllocTest, InitialRequestActivates)
{
    TableAllocation a(64 * MiB, 1000);
    EXPECT_EQ(a.state(), TableAllocation::State::Unallocated);
    EXPECT_TRUE(a.requestInitial(0));
    EXPECT_EQ(a.state(), TableAllocation::State::Active);
    EXPECT_NE(a.baseAddr(), InvalidAddr);
}

TEST(TableAllocTest, DeniedInitialGoesInactive)
{
    TableAllocation a(64 * MiB, 1000);
    a.setOsPolicy([](Tick) { return false; });
    EXPECT_FALSE(a.requestInitial(0));
    EXPECT_EQ(a.state(), TableAllocation::State::Inactive);
    EXPECT_FALSE(a.active(500));
}

TEST(TableAllocTest, ReclaimDeactivates)
{
    TableAllocation a(64 * MiB, 1000);
    a.requestInitial(0);
    a.reclaim(100);
    EXPECT_EQ(a.state(), TableAllocation::State::Inactive);
    EXPECT_EQ(a.baseAddr(), InvalidAddr);
    EXPECT_FALSE(a.active(100));
}

TEST(TableAllocTest, RetryAfterIntervalReactivates)
{
    TableAllocation a(64 * MiB, 1000);
    a.requestInitial(0);
    a.reclaim(100);
    EXPECT_FALSE(a.active(1099)); // before the retry interval
    EXPECT_TRUE(a.active(1100));  // re-request granted
    EXPECT_EQ(a.state(), TableAllocation::State::Active);
}

TEST(TableAllocTest, RetryRespectsOsDenial)
{
    TableAllocation a(64 * MiB, 1000);
    a.requestInitial(0);
    a.reclaim(100);
    int denials = 0;
    a.setOsPolicy([&](Tick) {
        ++denials;
        return denials > 2; // deny twice, then grant
    });
    EXPECT_FALSE(a.active(1100)); // denial 1
    EXPECT_FALSE(a.active(1150)); // still waiting for next interval
    EXPECT_FALSE(a.active(2100)); // denial 2
    EXPECT_TRUE(a.active(3100));  // granted
}

TEST(TableAllocTest, ReclaimWhileInactiveIsNoop)
{
    TableAllocation a(64 * MiB, 1000);
    a.setOsPolicy([](Tick) { return false; });
    a.requestInitial(0);
    a.reclaim(50); // already inactive
    EXPECT_EQ(a.state(), TableAllocation::State::Inactive);
}

TEST(TableAllocTest, RepeatedInitialRequestIsIdempotent)
{
    TableAllocation a(64 * MiB, 1000);
    EXPECT_TRUE(a.requestInitial(0));
    EXPECT_TRUE(a.requestInitial(10));
    EXPECT_EQ(a.state(), TableAllocation::State::Active);
}

TEST(TableAllocTest, RegionSizeReported)
{
    TableAllocation a(64 * MiB, 1000);
    EXPECT_EQ(a.regionBytes(), 64 * MiB);
}
