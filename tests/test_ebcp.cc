/**
 * @file
 * Tests for the epoch-based correlation prefetcher control, driven
 * through a mock engine with hand-built epoch streams -- including
 * the paper's A..I example from Section 3.1/3.4.2.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/ebcp.hh"

using namespace ebcp;

namespace
{

/** Engine mock: instant table ops, records everything. */
class MockEngine : public PrefetchEngine
{
  public:
    struct Issued
    {
        Addr addr;
        Tick when;
        std::uint64_t corrIndex;
        bool hasCorr;
    };

    std::vector<Issued> prefetches;
    unsigned tableReads = 0;
    unsigned tableWrites = 0;
    Tick tableLatency = 500;

    void
    issuePrefetch(Addr a, Tick when, std::uint64_t ci, bool hc,
                  unsigned /* source */) override
    {
        prefetches.push_back({a, when, ci, hc});
    }

    MemAccessResult
    tableRead(Tick when) override
    {
        ++tableReads;
        return {when, when + tableLatency, false};
    }

    MemAccessResult
    tableWrite(Tick when) override
    {
        ++tableWrites;
        return {when, when + 1, false};
    }

    Tick memoryLatency() const override { return 500; }

    bool
    issuedAddr(Addr a) const
    {
        return std::any_of(prefetches.begin(), prefetches.end(),
                           [a](const Issued &i) { return i.addr == a; });
    }
};

/** Drive one off-chip miss through the prefetcher. */
void
miss(EpochBasedPrefetcher &p, Addr line, Tick when, Tick latency = 500)
{
    L2AccessInfo i;
    i.pc = line;
    i.lineAddr = line;
    i.offChip = true;
    i.when = when;
    i.complete = when + latency;
    p.observeAccess(i);
}

/** Drive a prefetch-buffer hit through the prefetcher. */
void
pfHit(EpochBasedPrefetcher &p, Addr line, Tick when)
{
    L2AccessInfo i;
    i.pc = line;
    i.lineAddr = line;
    i.prefBufHit = true;
    i.when = when;
    i.complete = when + 23;
    p.observeAccess(i);
}

/**
 * Replay the paper's example: epochs {A,B} {C,D,E} {F,G} {H,I},
 * spaced a full memory latency apart so each group is one epoch.
 */
void
paperExample(EpochBasedPrefetcher &p, Tick base)
{
    miss(p, 0xA00, base + 0);
    miss(p, 0xB00, base + 10);
    miss(p, 0xC00, base + 600);
    miss(p, 0xD00, base + 610);
    miss(p, 0xE00, base + 620);
    miss(p, 0xF00, base + 1200);
    miss(p, 0x1000, base + 1210);
    miss(p, 0x1100, base + 1800);
    miss(p, 0x1200, base + 1810);
}

EbcpConfig
smallCfg()
{
    EbcpConfig c;
    c.tableEntries = 1 << 16;
    c.prefetchDegree = 8;
    return c;
}

} // namespace

TEST(EbcpTest, TrainsEpochIKeyWithEpochsI2I3)
{
    MockEngine eng;
    EpochBasedPrefetcher p(smallCfg());
    p.setEngine(&eng);

    paperExample(p, 0);
    // Open a fifth epoch: the EMAB is full, so training for trigger A
    // (epoch i) with payload {F,G,H,I} (epochs i+2, i+3) happens now.
    miss(p, 0x2000, 2400);

    std::vector<Addr> out;
    ASSERT_TRUE(p.table().lookup(0xA00, out));
    for (Addr a : {0xF00, 0x1000, 0x1100, 0x1200})
        EXPECT_NE(std::find(out.begin(), out.end(), Addr(a)), out.end())
            << std::hex << a;
    // Epoch i+1's misses (C, D, E) are deliberately not stored.
    EXPECT_EQ(std::find(out.begin(), out.end(), Addr(0xC00)), out.end());
    EXPECT_EQ(std::find(out.begin(), out.end(), Addr(0xD00)), out.end());
}

TEST(EbcpTest, MinusVariantStoresNextEpoch)
{
    MockEngine eng;
    EbcpConfig cfg = smallCfg();
    cfg.minusVariant = true;
    EpochBasedPrefetcher p(cfg);
    p.setEngine(&eng);

    paperExample(p, 0);
    miss(p, 0x2000, 2400);

    std::vector<Addr> out;
    ASSERT_TRUE(p.table().lookup(0xA00, out));
    // EBCP-minus records epochs i+1 and i+2: C,D,E,F,G.
    EXPECT_NE(std::find(out.begin(), out.end(), Addr(0xC00)), out.end());
    EXPECT_NE(std::find(out.begin(), out.end(), Addr(0xF00)), out.end());
    // ...but not i+3.
    EXPECT_EQ(std::find(out.begin(), out.end(), Addr(0x1100)), out.end());
}

TEST(EbcpTest, PredictionIssuesAfterTableRead)
{
    MockEngine eng;
    EpochBasedPrefetcher p(smallCfg());
    p.setEngine(&eng);

    paperExample(p, 0);
    miss(p, 0x2000, 2400); // trains the A entry

    // Recurrence: A triggers a new epoch; prefetches must issue no
    // earlier than the table read completes (the main-memory table
    // has no magic on-chip copy).
    eng.prefetches.clear();
    miss(p, 0xA00, 10000);
    ASSERT_FALSE(eng.prefetches.empty());
    for (const auto &i : eng.prefetches)
        EXPECT_GE(i.when, 10000 + eng.tableLatency);
    EXPECT_TRUE(eng.issuedAddr(0xF00));
    EXPECT_TRUE(eng.issuedAddr(0x1100));
}

TEST(EbcpTest, PrefetchesCarryCorrelationIndex)
{
    MockEngine eng;
    EpochBasedPrefetcher p(smallCfg());
    p.setEngine(&eng);
    paperExample(p, 0);
    miss(p, 0x2000, 2400);
    eng.prefetches.clear();
    miss(p, 0xA00, 10000);
    ASSERT_FALSE(eng.prefetches.empty());
    for (const auto &i : eng.prefetches) {
        EXPECT_TRUE(i.hasCorr);
        EXPECT_EQ(i.corrIndex, p.table().indexOf(0xA00));
    }
}

TEST(EbcpTest, PrefetchBufferHitRefreshesLruAndWrites)
{
    MockEngine eng;
    EpochBasedPrefetcher p(smallCfg());
    p.setEngine(&eng);
    paperExample(p, 0);
    miss(p, 0x2000, 2400);

    unsigned writes_before = eng.tableWrites;
    p.observePrefetchHit(0xF00, p.table().indexOf(0xA00), 5000);
    EXPECT_EQ(eng.tableWrites, writes_before + 1);
}

TEST(EbcpTest, PrefetchBufferHitOnUnknownAddressNoWrite)
{
    MockEngine eng;
    EpochBasedPrefetcher p(smallCfg());
    p.setEngine(&eng);
    paperExample(p, 0);
    miss(p, 0x2000, 2400);
    unsigned writes_before = eng.tableWrites;
    p.observePrefetchHit(0xdead, p.table().indexOf(0xA00), 5000);
    EXPECT_EQ(eng.tableWrites, writes_before);
}

TEST(EbcpTest, PfHitsActAsEpochTriggers)
{
    MockEngine eng;
    EpochBasedPrefetcher p(smallCfg());
    p.setEngine(&eng);
    paperExample(p, 0);
    miss(p, 0x2000, 2400);

    // A prefetch-buffer hit on A (the averted trigger) must still
    // perform the lookup and keep the chain going (Section 3.4.3).
    eng.prefetches.clear();
    pfHit(p, 0xA00, 20000);
    EXPECT_TRUE(eng.issuedAddr(0xF00));
}

TEST(EbcpTest, L2HitsAreIgnored)
{
    MockEngine eng;
    EpochBasedPrefetcher p(smallCfg());
    p.setEngine(&eng);
    L2AccessInfo i;
    i.lineAddr = 0x1000;
    i.l2Hit = true;
    i.when = 0;
    i.complete = 23;
    p.observeAccess(i);
    EXPECT_EQ(eng.tableReads, 0u);
}

TEST(EbcpTest, InactiveAfterReclaimSkipsWork)
{
    MockEngine eng;
    EbcpConfig cfg = smallCfg();
    cfg.reallocRetryInterval = 1'000'000;
    EpochBasedPrefetcher p(cfg);
    p.setEngine(&eng);
    paperExample(p, 0);
    miss(p, 0x2000, 2400);

    p.reclaimTable(3000);
    unsigned reads_before = eng.tableReads;
    miss(p, 0xA00, 4000); // new epoch while inactive
    EXPECT_EQ(eng.tableReads, reads_before);

    // Table contents were lost with the region.
    std::vector<Addr> out;
    EXPECT_FALSE(p.table().lookup(0xA00, out));
}

TEST(EbcpTest, ReactivatesAfterRetryInterval)
{
    MockEngine eng;
    EbcpConfig cfg = smallCfg();
    cfg.reallocRetryInterval = 1000;
    EpochBasedPrefetcher p(cfg);
    p.setEngine(&eng);
    paperExample(p, 0);
    miss(p, 0x2000, 2400);
    p.reclaimTable(3000);

    miss(p, 0xA00, 3500); // still inactive
    unsigned reads_mid = eng.tableReads;
    miss(p, 0xB00, 4200); // past the retry interval: active again
    EXPECT_GT(eng.tableReads, reads_mid);
}

TEST(EbcpTest, DegreeLimitsPrefetchesPerMatch)
{
    MockEngine eng;
    EbcpConfig cfg = smallCfg();
    cfg.prefetchDegree = 2;
    EpochBasedPrefetcher p(cfg);
    p.setEngine(&eng);
    paperExample(p, 0);
    miss(p, 0x2000, 2400);
    eng.prefetches.clear();
    miss(p, 0xA00, 10000);
    EXPECT_LE(eng.prefetches.size(), 2u);
}

TEST(EbcpTest, TrainAllOldestMissesKeysEveryMiss)
{
    MockEngine eng;
    EbcpConfig cfg = smallCfg();
    cfg.trainAllOldestMisses = true;
    EpochBasedPrefetcher p(cfg);
    p.setEngine(&eng);
    paperExample(p, 0);
    miss(p, 0x2000, 2400);

    // Both A and B (epoch i's misses) must now key entries.
    std::vector<Addr> out;
    EXPECT_TRUE(p.table().lookup(0xA00, out));
    EXPECT_TRUE(p.table().lookup(0xB00, out));
}

TEST(EbcpTest, TableTrafficPerEpochMatchesPaper)
{
    // Section 3.4.4: one prediction read plus one update
    // read-modify-write per epoch boundary (once the EMAB is full).
    MockEngine eng;
    EpochBasedPrefetcher p(smallCfg());
    p.setEngine(&eng);
    paperExample(p, 0);
    unsigned reads_before = eng.tableReads;
    unsigned writes_before = eng.tableWrites;
    miss(p, 0x2000, 2400); // one new epoch
    EXPECT_EQ(eng.tableReads - reads_before, 2u);
    EXPECT_EQ(eng.tableWrites - writes_before, 1u);
}

TEST(EbcpCmpTest, PerCoreStatesAreIndependent)
{
    // Two cores replay the paper example at interleaved times; with
    // per-core states each chain trains cleanly.
    MockEngine eng;
    EbcpConfig cfg = smallCfg();
    cfg.numCoreStates = 2;
    EpochBasedPrefetcher p(cfg);
    p.setEngine(&eng);

    auto missOn = [&](unsigned core, Addr line, Tick when) {
        L2AccessInfo i;
        i.pc = line;
        i.lineAddr = line;
        i.offChip = true;
        i.when = when;
        i.complete = when + 500;
        i.coreId = core;
        p.observeAccess(i);
    };

    // Core 0: A,B,C,D,E at 600-tick epoch spacing; core 1: the same
    // positions shifted by 300 with its own addresses.
    for (int r = 0; r < 2; ++r) {
        for (int k = 0; k < 6; ++k) {
            Tick base = static_cast<Tick>(r) * 10000 +
                        static_cast<Tick>(k) * 600;
            missOn(0, 0xA000 + static_cast<Addr>(k) * 0x100, base);
            missOn(1, 0xF0000 + static_cast<Addr>(k) * 0x100,
                   base + 300);
        }
    }

    // Core 0's trigger keys core 0's own later epochs.
    std::vector<Addr> out;
    ASSERT_TRUE(p.table().lookup(0xA000, out));
    EXPECT_NE(std::find(out.begin(), out.end(), Addr(0xA200)),
              out.end());
    // ...and never core 1's addresses.
    for (Addr a : out)
        EXPECT_LT(a, 0xF0000u);
}

TEST(EbcpCmpTest, SharedStateMixesCores)
{
    // With one shared epoch state, the same interleaved streams merge
    // into joint epochs: core 1 addresses leak into core 0's entries.
    MockEngine eng;
    EbcpConfig cfg = smallCfg();
    cfg.numCoreStates = 1;
    EpochBasedPrefetcher p(cfg);
    p.setEngine(&eng);

    auto missOn = [&](unsigned core, Addr line, Tick when) {
        L2AccessInfo i;
        i.pc = line;
        i.lineAddr = line;
        i.offChip = true;
        i.when = when;
        i.complete = when + 500;
        i.coreId = core;
        p.observeAccess(i);
    };

    for (int r = 0; r < 2; ++r) {
        for (int k = 0; k < 6; ++k) {
            Tick base = static_cast<Tick>(r) * 10000 +
                        static_cast<Tick>(k) * 600;
            missOn(0, 0xA000 + static_cast<Addr>(k) * 0x100, base);
            missOn(1, 0xF0000 + static_cast<Addr>(k) * 0x100,
                   base + 300);
        }
    }

    std::vector<Addr> out;
    if (p.table().lookup(0xA000, out)) {
        bool leaked = false;
        for (Addr a : out)
            if (a >= 0xF0000)
                leaked = true;
        EXPECT_TRUE(leaked);
    }
}

TEST(EbcpTest, OnChipTableNeedsNoEngineTraffic)
{
    MockEngine eng;
    EbcpConfig cfg = smallCfg();
    cfg.onChipTable = true;
    EpochBasedPrefetcher p(cfg);
    p.setEngine(&eng);
    paperExample(p, 0);
    miss(p, 0x2000, 2400);
    EXPECT_EQ(eng.tableReads, 0u);
    EXPECT_EQ(eng.tableWrites, 0u);
    // Prediction on recurrence issues immediately at the trigger.
    eng.prefetches.clear();
    miss(p, 0xA00, 10000);
    ASSERT_FALSE(eng.prefetches.empty());
    for (const auto &i : eng.prefetches)
        EXPECT_EQ(i.when, 10000u);
}
