/**
 * @file
 * End-to-end robustness tests: deterministic fault injection and the
 * forward-progress watchdog.
 *
 * The contract under test is the one DESIGN.md states: damaged input
 * degrades results (Status, counters) but never crashes or hangs the
 * simulator, and a given fault seed reproduces the exact same run.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/cmp_system.hh"
#include "sim/simulator.hh"
#include "trace/fault_injection.hh"
#include "trace/workloads.hh"
#include "util/fault.hh"

using namespace ebcp;

namespace
{

constexpr std::uint64_t kWarm = 20'000;
constexpr std::uint64_t kMeasure = 60'000;

struct FaultRun
{
    SimResults results;
    std::uint64_t bitflips = 0;
    std::uint64_t shortReads = 0;
    std::uint64_t dropped = 0;
};

FaultRun
runWithTraceFaults(std::uint64_t fault_seed)
{
    FaultPlan plan;
    plan.traceBitflip = true;
    plan.traceShortRead = true;
    plan.seed = fault_seed;
    plan.rate = 2e-3;

    SimConfig cfg;
    cfg.faults = plan;
    PrefetcherParams pf;
    pf.name = "ebcp";
    pf.ebcp.faults = plan;

    StatusOr<std::unique_ptr<SyntheticWorkload>> src =
        tryMakeWorkload("database", 42);
    EXPECT_TRUE(src.ok());
    FaultInjectingTraceSource faulty(*src.value(), plan);

    Simulator sim(cfg, pf);
    StatusOr<SimResults> res = sim.tryRun(faulty, kWarm, kMeasure);
    EXPECT_TRUE(res.ok()) << res.status().toString();

    FaultRun out;
    out.results = res.take();
    out.bitflips = faulty.bitflipsInjected();
    out.shortReads = faulty.shortReadsInjected();
    out.dropped = faulty.recordsDropped();
    return out;
}

void
expectIdentical(const SimResults &a, const SimResults &b)
{
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.epochsPer1k, b.epochsPer1k);
    EXPECT_EQ(a.l2InstMissPer1k, b.l2InstMissPer1k);
    EXPECT_EQ(a.l2LoadMissPer1k, b.l2LoadMissPer1k);
    EXPECT_EQ(a.usefulPrefetches, b.usefulPrefetches);
    EXPECT_EQ(a.issuedPrefetches, b.issuedPrefetches);
    EXPECT_EQ(a.droppedPrefetches, b.droppedPrefetches);
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_EQ(a.accuracy, b.accuracy);
    EXPECT_EQ(a.readBusUtil, b.readBusUtil);
    EXPECT_EQ(a.writeBusUtil, b.writeBusUtil);
}

} // namespace

TEST(FaultInjection, SameSeedIsBitIdentical)
{
    FaultRun a = runWithTraceFaults(7);
    FaultRun b = runWithTraceFaults(7);
    expectIdentical(a.results, b.results);
    EXPECT_EQ(a.bitflips, b.bitflips);
    EXPECT_EQ(a.shortReads, b.shortReads);
    EXPECT_EQ(a.dropped, b.dropped);
    // The faults actually fired (this test must not pass vacuously).
    EXPECT_GT(a.bitflips, 0u);
    EXPECT_GT(a.shortReads, 0u);
}

TEST(FaultInjection, RunCompletesDespiteFaults)
{
    FaultRun a = runWithTraceFaults(3);
    EXPECT_EQ(a.results.insts, kMeasure);
    EXPECT_GT(a.results.cycles, 0u);
}

TEST(FaultInjection, TableFaultsDegradeNotCrash)
{
    FaultPlan plan;
    plan.tableDrop = true;
    plan.tableDelay = true;
    plan.seed = 11;
    plan.rate = 0.2; // aggressive: every 5th table read faulted

    SimConfig cfg;
    cfg.faults = plan;
    PrefetcherParams pf;
    pf.name = "ebcp";
    pf.ebcp.faults = plan;

    StatusOr<std::unique_ptr<SyntheticWorkload>> src =
        tryMakeWorkload("database", 42);
    ASSERT_TRUE(src.ok());

    Simulator sim(cfg, pf);
    StatusOr<SimResults> res = sim.tryRun(*src.value(), kWarm, kMeasure);
    ASSERT_TRUE(res.ok()) << res.status().toString();
    EXPECT_EQ(res.value().insts, kMeasure);
}

TEST(Watchdog, TripsOnDemandStallWithDiagnostic)
{
    FaultPlan plan;
    plan.demandStall = true;
    plan.stallAfter = 2'000;

    SimConfig cfg;
    cfg.faults = plan;
    cfg.watchdogTicks = 10'000'000;
    PrefetcherParams pf;
    pf.name = "ebcp";

    StatusOr<std::unique_ptr<SyntheticWorkload>> src =
        tryMakeWorkload("database", 42);
    ASSERT_TRUE(src.ok());

    Simulator sim(cfg, pf);
    StatusOr<SimResults> res = sim.tryRun(*src.value(), kWarm, kMeasure);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::Stalled);

    // The message is the full diagnostic dump: watchdog verdict, ROB,
    // MSHRs, channels, EMAB.
    const std::string &msg = res.status().message();
    EXPECT_NE(msg.find("watchdog tripped"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rob:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("in flight"), std::string::npos) << msg;
    EXPECT_NE(msg.find("read channel:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("emab:"), std::string::npos) << msg;
}

TEST(Watchdog, DisabledWatchdogLetsTheStallPass)
{
    // The same injected stall without a watchdog: the one-pass model
    // absorbs the huge latency jump and still completes -- showing the
    // watchdog is pure detection, not part of the timing model.
    FaultPlan plan;
    plan.demandStall = true;
    plan.stallAfter = 2'000;

    SimConfig cfg;
    cfg.faults = plan;
    cfg.watchdogTicks = 0;
    PrefetcherParams pf;
    pf.name = "ebcp";

    StatusOr<std::unique_ptr<SyntheticWorkload>> src =
        tryMakeWorkload("database", 42);
    ASSERT_TRUE(src.ok());

    Simulator sim(cfg, pf);
    StatusOr<SimResults> res = sim.tryRun(*src.value(), kWarm, kMeasure);
    ASSERT_TRUE(res.ok()) << res.status().toString();
    EXPECT_EQ(res.value().insts, kMeasure);
}

TEST(Watchdog, CleanRunNeverTrips)
{
    SimConfig cfg;
    cfg.watchdogTicks = 10'000'000;
    PrefetcherParams pf;
    pf.name = "ebcp";

    StatusOr<std::unique_ptr<SyntheticWorkload>> src =
        tryMakeWorkload("database", 42);
    ASSERT_TRUE(src.ok());

    Simulator sim(cfg, pf);
    StatusOr<SimResults> res = sim.tryRun(*src.value(), kWarm, kMeasure);
    ASSERT_TRUE(res.ok()) << res.status().toString();
    EXPECT_EQ(res.value().insts, kMeasure);
}

TEST(Watchdog, TripsInCmpModeNamingTheCore)
{
    FaultPlan plan;
    plan.demandStall = true;
    plan.stallAfter = 2'000;

    SimConfig cfg;
    cfg.faults = plan;
    cfg.watchdogTicks = 10'000'000;
    PrefetcherParams pf;
    pf.name = "ebcp";
    pf.ebcp.numCoreStates = 2;

    std::vector<std::unique_ptr<SyntheticWorkload>> owned;
    std::vector<TraceSource *> sources;
    for (unsigned i = 0; i < 2; ++i) {
        StatusOr<std::unique_ptr<SyntheticWorkload>> w =
            tryMakeWorkload("database", 1000 + i);
        ASSERT_TRUE(w.ok());
        owned.push_back(w.take());
        sources.push_back(owned.back().get());
    }

    CmpSystem sys(cfg, pf, 2);
    StatusOr<CmpResults> res = sys.tryRun(sources, kWarm, kMeasure);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::Stalled);
    const std::string &msg = res.status().message();
    EXPECT_NE(msg.find("core"), std::string::npos) << msg;
    EXPECT_NE(msg.find("watchdog tripped"), std::string::npos) << msg;
}
