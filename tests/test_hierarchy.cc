/**
 * @file
 * Integration tests for the memory hierarchy: cache paths, prefetch
 * buffer interplay, MSHR merging, epoch accounting and the prefetch
 * engine services.
 */

#include <gtest/gtest.h>

#include "prefetch/prefetcher.hh"
#include "sim/hierarchy.hh"

using namespace ebcp;

namespace
{

/** Records the access stream the hierarchy exposes to prefetchers. */
class SpyPrefetcher : public Prefetcher
{
  public:
    SpyPrefetcher() : Prefetcher("spy") {}

    std::vector<L2AccessInfo> seen;
    std::vector<std::pair<Addr, std::uint64_t>> pfHits;

    void observeAccess(const L2AccessInfo &i) override
    {
        seen.push_back(i);
    }

    void
    observePrefetchHit(Addr line, std::uint64_t ci, Tick) override
    {
        pfHits.push_back({line, ci});
    }
};

struct Rig
{
    SimConfig cfg;
    MainMemory mem{MemConfig{}};
    SpyPrefetcher spy;
    L2Subsystem l2side{cfg, mem, spy};
    Hierarchy hier{cfg, l2side, 0};
};

} // namespace

TEST(HierarchyTest, L1DHitIsFast)
{
    Rig r;
    r.hier.load(0x1000, 0x400, 0); // cold
    MemOutcome o = r.hier.load(0x1000, 0x400, 5000);
    EXPECT_EQ(o.complete, 5000 + r.cfg.l1d.hitLatency);
    EXPECT_FALSE(o.offChip);
}

TEST(HierarchyTest, ColdLoadGoesOffChip)
{
    Rig r;
    MemOutcome o = r.hier.load(0x1000, 0x400, 0);
    EXPECT_TRUE(o.offChip);
    EXPECT_GE(o.complete, r.mem.config().latency);
    EXPECT_EQ(r.l2side.offChipLoad(), 1u);
}

TEST(HierarchyTest, L2HitAfterL1Eviction)
{
    Rig r;
    r.hier.load(0x1000, 0x400, 0);
    // Evict 0x1000 from the 4-way 128-set L1 by loading 4 conflicting
    // lines (same L1 set: stride = 128*64).
    for (int i = 1; i <= 4; ++i)
        r.hier.load(0x1000 + i * 128 * 64, 0x400, 10000 + i * 1000);
    MemOutcome o = r.hier.load(0x1000, 0x400, 50000);
    EXPECT_FALSE(o.offChip); // L2 still has it
    EXPECT_EQ(o.complete,
              50000 + r.cfg.l1d.hitLatency + r.cfg.l2.hitLatency);
}

TEST(HierarchyTest, PrefetchedLineAvertsOffChipMiss)
{
    Rig r;
    r.l2side.issuePrefetch(0x9000, 0, 0, false);
    MemOutcome o = r.hier.load(0x9000, 0x400, 5000);
    EXPECT_FALSE(o.offChip);
    EXPECT_EQ(r.l2side.usefulPrefetches(), 1u);
    EXPECT_EQ(r.l2side.offChipLoad(), 0u);
}

TEST(HierarchyTest, LatePrefetchHitWaitsButIsBounded)
{
    Rig r;
    r.l2side.issuePrefetch(0x9000, 10000, 0, false);
    // Demand arrives well before the prefetch data.
    MemOutcome o = r.hier.load(0x9000, 0x400, 10001);
    EXPECT_TRUE(o.offChip); // residual stall counts as off-chip
    // Bounded by the demand path.
    EXPECT_LE(o.complete, 10001 + r.cfg.l1d.hitLatency +
                              r.cfg.l2.hitLatency +
                              r.mem.config().latency);
    EXPECT_GT(o.complete, 10001 + r.cfg.l1d.hitLatency +
                              r.cfg.l2.hitLatency);
}

TEST(HierarchyTest, PrefetchHitPromotesToL2)
{
    Rig r;
    r.l2side.issuePrefetch(0x9000, 0, 0, false);
    r.hier.load(0x9000, 0x400, 5000);
    EXPECT_TRUE(r.l2side.l2().contains(0x9000));
}

TEST(HierarchyTest, PrefetchFilteredWhenResident)
{
    Rig r;
    r.hier.load(0x9000, 0x400, 0); // now in L2
    r.l2side.issuePrefetch(0x9000, 5000, 0, false);
    EXPECT_EQ(r.l2side.issuedPrefetches(), 0u);
}

TEST(HierarchyTest, DuplicatePrefetchFiltered)
{
    Rig r;
    r.l2side.issuePrefetch(0x9000, 0, 0, false);
    r.l2side.issuePrefetch(0x9000, 1, 0, false);
    EXPECT_EQ(r.l2side.issuedPrefetches(), 1u);
}

TEST(HierarchyTest, PrefetchHitReportsCorrIndex)
{
    Rig r;
    r.l2side.issuePrefetch(0x9000, 0, 42, true);
    r.hier.load(0x9000, 0x400, 5000);
    ASSERT_EQ(r.spy.pfHits.size(), 1u);
    EXPECT_EQ(r.spy.pfHits[0].second, 42u);
}

TEST(HierarchyTest, MshrMergesSameLineMisses)
{
    Rig r;
    MemOutcome a = r.hier.load(0x9000, 0x400, 0);
    // Evict from L1 is impossible this fast, so use a different
    // offset in the same line via the instruction path? Simpler: a
    // second load to the same line while in flight, after forcing an
    // L1 miss with a conflicting fill is intricate; instead check the
    // fetch path against the load path's in-flight miss.
    MemOutcome b = r.hier.fetchInst(0x9010, 1);
    EXPECT_TRUE(b.offChip);
    // Merged: completes with (or just after) the original miss, far
    // sooner than a fresh 500-cycle access.
    EXPECT_LE(b.complete, a.complete + 25);
}

TEST(HierarchyTest, EpochTrackerCountsOverlapsOnce)
{
    Rig r;
    r.hier.load(0x9000, 0x400, 0);
    r.hier.load(0xa000, 0x400, 10);
    r.hier.load(0xb000, 0x400, 20);
    EXPECT_EQ(r.l2side.epochTracker().epochs(), 1u);
    r.hier.load(0xc000, 0x400, 5000);
    EXPECT_EQ(r.l2side.epochTracker().epochs(), 2u);
}

TEST(HierarchyTest, PrefetcherSeesL1MissStream)
{
    Rig r;
    r.hier.load(0x9000, 0x440, 0);
    r.hier.load(0x9000, 0x440, 5000); // L1 hit: not seen
    ASSERT_EQ(r.spy.seen.size(), 1u);
    EXPECT_EQ(r.spy.seen[0].pc, 0x440u);
    EXPECT_TRUE(r.spy.seen[0].offChip);
    EXPECT_FALSE(r.spy.seen[0].isInst);
}

TEST(HierarchyTest, InstFetchesMarked)
{
    Rig r;
    r.hier.fetchInst(0x4000, 0);
    ASSERT_EQ(r.spy.seen.size(), 1u);
    EXPECT_TRUE(r.spy.seen[0].isInst);
}

TEST(HierarchyTest, L1IHitNotVisibleToPrefetcher)
{
    Rig r;
    r.hier.fetchInst(0x4000, 0);
    r.hier.fetchInst(0x4004, 100); // same line: L1I hit
    EXPECT_EQ(r.spy.seen.size(), 1u);
}

TEST(HierarchyTest, StoresDoNotCountEpochs)
{
    Rig r;
    r.hier.store(0x9000, 0);
    EXPECT_EQ(r.l2side.epochTracker().epochs(), 0u);
    EXPECT_TRUE(r.spy.seen.empty());
}

TEST(HierarchyTest, StoreMissConsumesWriteBus)
{
    Rig r;
    Tick busy_before = r.mem.writeChannel().busyTicks();
    r.hier.store(0x9000, 0);
    EXPECT_GT(r.mem.writeChannel().busyTicks(), busy_before);
}

TEST(HierarchyTest, StoreHitDrainsFast)
{
    Rig r;
    r.hier.load(0x9000, 0x400, 0);
    Tick drain = r.hier.store(0x9000, 5000);
    EXPECT_EQ(drain, 5001u);
}

TEST(HierarchyTest, PerfectL2NeverGoesOffChip)
{
    SimConfig cfg;
    cfg.perfectL2 = true;
    MainMemory mem{MemConfig{}};
    SpyPrefetcher spy;
    L2Subsystem l2side(cfg, mem, spy);
    Hierarchy h(cfg, l2side, 0);
    for (Addr a = 0; a < 100; ++a) {
        MemOutcome o = h.load(0x100000 + a * 64, 0x400, a * 10);
        EXPECT_FALSE(o.offChip);
    }
    EXPECT_EQ(l2side.epochTracker().epochs(), 0u);
}

TEST(HierarchyTest, TableAccessesAreLowPriority)
{
    Rig r;
    // Demand traffic at t=0 occupies the read bus.
    r.hier.load(0x9000, 0x400, 0);
    MemAccessResult t = r.l2side.tableRead(0);
    EXPECT_GE(t.grant, 20u); // waits behind the demand transfer
}

TEST(HierarchyTest, MeasurementResetClearsCounters)
{
    Rig r;
    r.hier.load(0x9000, 0x400, 0);
    r.hier.beginMeasurement();
    r.l2side.beginMeasurement();
    EXPECT_EQ(r.l2side.offChipLoad(), 0u);
    EXPECT_EQ(r.l2side.epochTracker().epochs(), 0u);
}
