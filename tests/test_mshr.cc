/**
 * @file
 * Unit tests for the MSHR file: merging, capacity stalls and lazy
 * retirement.
 */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

using namespace ebcp;

TEST(MshrTest, EmptyFileAllocatesImmediately)
{
    MshrFile m("m", 4);
    EXPECT_EQ(m.whenCanAllocate(100), 100u);
}

TEST(MshrTest, TracksInFlightCompletion)
{
    MshrFile m("m", 4);
    m.allocate(0x1000, 500);
    EXPECT_EQ(m.inFlightCompletion(0x1000), 500u);
    EXPECT_EQ(m.inFlightCompletion(0x2000), MaxTick);
}

TEST(MshrTest, AdvanceRetiresCompleted)
{
    MshrFile m("m", 4);
    m.allocate(0x1000, 500);
    m.advance(499);
    EXPECT_EQ(m.inFlightCompletion(0x1000), 500u);
    m.advance(500);
    EXPECT_EQ(m.inFlightCompletion(0x1000), MaxTick);
    EXPECT_EQ(m.occupancy(), 0u);
}

TEST(MshrTest, FullFileDelaysToEarliestCompletion)
{
    MshrFile m("m", 2);
    m.allocate(0x1000, 500);
    m.allocate(0x2000, 700);
    EXPECT_EQ(m.whenCanAllocate(100), 500u);
}

TEST(MshrTest, FullFileNeverReturnsPast)
{
    MshrFile m("m", 1);
    m.allocate(0x1000, 500);
    EXPECT_EQ(m.whenCanAllocate(600), 600u);
}

TEST(MshrTest, ReMissAfterRetireGetsFreshEntry)
{
    MshrFile m("m", 2);
    m.allocate(0x1000, 500);
    m.advance(600);
    m.allocate(0x1000, 1200);
    EXPECT_EQ(m.inFlightCompletion(0x1000), 1200u);
    m.advance(700);
    // The stale heap entry (500) must not erase the fresh one.
    EXPECT_EQ(m.inFlightCompletion(0x1000), 1200u);
}

TEST(MshrTest, OccupancyCounts)
{
    MshrFile m("m", 8);
    m.allocate(0x1000, 100);
    m.allocate(0x2000, 200);
    EXPECT_EQ(m.occupancy(), 2u);
    m.advance(150);
    EXPECT_EQ(m.occupancy(), 1u);
}

TEST(MshrTest, ClearDropsAll)
{
    MshrFile m("m", 4);
    m.allocate(0x1000, 100);
    m.clear();
    EXPECT_EQ(m.occupancy(), 0u);
    EXPECT_EQ(m.inFlightCompletion(0x1000), MaxTick);
}

TEST(MshrTest, CapacityIsExact)
{
    MshrFile m("m", 3);
    m.allocate(0x1, 1000);
    m.allocate(0x2, 1001);
    EXPECT_EQ(m.whenCanAllocate(0), 0u); // still one free
    m.allocate(0x3, 1002);
    EXPECT_EQ(m.whenCanAllocate(0), 1000u);
}
