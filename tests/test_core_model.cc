/**
 * @file
 * Timing-model tests: the core must exhibit the pipeline behaviours
 * the epoch model depends on (bounded overlap, dependence
 * serialization, window-termination conditions).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cpu/core_model.hh"
#include "cpu/mem_iface.hh"

using namespace ebcp;

namespace
{

/** Memory stub: configurable per-line miss latency, instant fetch. */
class StubMem : public MemSystem
{
  public:
    std::set<Addr> missLines;
    Tick missLatency = 500;
    Tick hitLatency = 3;
    bool instMiss = false;
    std::set<Addr> instMissLines;

    MemOutcome
    fetchInst(Addr pc, Tick when) override
    {
        const Addr line = pc & ~Addr{63};
        if (instMissLines.count(line))
            return {when + missLatency, true};
        return {when, false};
    }

    MemOutcome
    load(Addr addr, Addr, Tick when) override
    {
        const Addr line = addr & ~Addr{63};
        if (missLines.count(line))
            return {when + missLatency, true};
        return {when + hitLatency, false};
    }

    Tick store(Addr, Tick when) override { return when + 1; }
    unsigned lineBytes() const override { return 64; }
};

TraceRecord
alu(Addr pc, std::uint8_t dst = NoReg, std::uint8_t src = NoReg)
{
    TraceRecord r;
    r.pc = pc;
    r.op = OpClass::IntAlu;
    r.dstReg = dst;
    r.srcReg0 = src;
    return r;
}

TraceRecord
load(Addr pc, Addr addr, std::uint8_t dst, std::uint8_t src = NoReg)
{
    TraceRecord r;
    r.pc = pc;
    r.op = OpClass::Load;
    r.addr = addr;
    r.dstReg = dst;
    r.srcReg0 = src;
    return r;
}

} // namespace

TEST(CoreModel, RetireIsMonotonic)
{
    StubMem mem;
    CoreModel core({}, mem);
    Tick last = 0;
    for (int i = 0; i < 200; ++i) {
        InstTiming t = core.process(alu(0x1000 + i * 4));
        EXPECT_GE(t.retire, last);
        EXPECT_GE(t.retire, t.complete);
        EXPECT_GE(t.complete, t.issue);
        EXPECT_GE(t.issue, t.dispatch);
        EXPECT_GE(t.dispatch, t.fetch);
        last = t.retire;
    }
}

TEST(CoreModel, IndependentAlusReachAluWidth)
{
    StubMem mem;
    CoreConfig cfg;
    CoreModel core(cfg, mem);
    core.beginMeasurement();
    for (int i = 0; i < 4000; ++i)
        core.process(alu(0x1000 + (i % 8) * 4));
    // Two ALUs: best case CPI 0.5; allow modest overhead.
    EXPECT_LT(core.cpi(), 0.7);
    EXPECT_GE(core.cpi(), 0.5);
}

TEST(CoreModel, DependentChainRunsAtIpcOne)
{
    StubMem mem;
    CoreModel core({}, mem);
    core.beginMeasurement();
    for (int i = 0; i < 4000; ++i)
        core.process(alu(0x1000 + (i % 8) * 4, 5, 5)); // r5 <- r5
    EXPECT_NEAR(core.cpi(), 1.0, 0.1);
}

TEST(CoreModel, IndependentMissesOverlap)
{
    StubMem mem;
    mem.missLines = {0x10000, 0x20000};
    CoreModel core({}, mem);
    InstTiming a = core.process(load(0x1000, 0x10000, 1));
    InstTiming b = core.process(load(0x1004, 0x20000, 2));
    // Both issue before either completes: full overlap.
    EXPECT_LT(b.issue, a.complete);
    EXPECT_LT(b.complete - a.complete, 10u);
}

TEST(CoreModel, DependentMissesSerialize)
{
    StubMem mem;
    mem.missLines = {0x10000, 0x20000};
    CoreModel core({}, mem);
    InstTiming a = core.process(load(0x1000, 0x10000, 1));
    InstTiming b = core.process(load(0x1004, 0x20000, 2, 1));
    EXPECT_GE(b.issue, a.complete);
    EXPECT_GE(b.complete, a.complete + mem.missLatency);
}

TEST(CoreModel, RobBoundsMissOverlap)
{
    StubMem mem;
    mem.missLines = {0x10000, 0x20000};
    CoreConfig cfg;
    CoreModel core(cfg, mem);
    InstTiming first = core.process(load(0x1000, 0x10000, 1));
    // Fill the ROB with more independent ALU work than it can hold.
    for (unsigned i = 0; i < cfg.robEntries + 8; ++i)
        core.process(alu(0x2000 + i * 4));
    InstTiming second = core.process(load(0x3000, 0x20000, 2));
    // The second miss is beyond the window: it cannot overlap the
    // first (its dispatch waits for the first to retire).
    EXPECT_GE(second.issue, first.complete);
}

TEST(CoreModel, OffChipInstructionMissStallsFetch)
{
    StubMem mem;
    mem.instMissLines = {0x2000};
    CoreModel core({}, mem);
    core.process(alu(0x1000));
    InstTiming t = core.process(alu(0x2000)); // new line, off-chip
    EXPECT_GE(t.fetch, mem.missLatency);
}

TEST(CoreModel, MispredictedBranchRedirectsFetch)
{
    StubMem mem;
    CoreConfig cfg;
    CoreModel core(cfg, mem);
    // Branch whose outcome the fresh predictor gets wrong (counters
    // initialize weakly-not-taken, so a taken branch mispredicts).
    TraceRecord br;
    br.pc = 0x1000;
    br.op = OpClass::Branch;
    br.taken = true;
    br.target = 0x1010;
    InstTiming b = core.process(br);
    InstTiming next = core.process(alu(0x1010));
    EXPECT_GE(next.fetch, b.complete + cfg.mispredictPenalty);
}

TEST(CoreModel, BranchDependentOnMissTerminatesWindow)
{
    StubMem mem;
    mem.missLines = {0x10000};
    CoreModel core({}, mem);
    InstTiming ld = core.process(load(0x1000, 0x10000, 1));
    TraceRecord br;
    br.pc = 0x1004;
    br.op = OpClass::Branch;
    br.taken = true;  // mispredicted on a fresh predictor
    br.target = 0x2000;
    br.srcReg0 = 1;   // depends on the off-chip load
    core.process(br);
    InstTiming after = core.process(alu(0x2000));
    // Fetch resumed only after the load + branch resolved.
    EXPECT_GT(after.fetch, ld.complete);
}

TEST(CoreModel, SerializerDrainsWindow)
{
    StubMem mem;
    mem.missLines = {0x10000};
    CoreModel core({}, mem);
    InstTiming ld = core.process(load(0x1000, 0x10000, 1));
    TraceRecord s;
    s.pc = 0x1004;
    s.op = OpClass::Serialize;
    InstTiming ser = core.process(s);
    EXPECT_GE(ser.dispatch, ld.retire);
    InstTiming next = core.process(alu(0x1008));
    EXPECT_GE(next.dispatch, ser.retire);
}

TEST(CoreModel, StoreBufferFullStallsStores)
{
    StubMem mem;
    CoreConfig cfg;
    cfg.storeBufferEntries = 2;
    // Make stores drain very slowly via a custom stub.
    class SlowStoreMem : public StubMem
    {
      public:
        Tick
        store(Addr, Tick when) override
        {
            return when + 1000;
        }
    } slow;
    CoreModel core(cfg, slow);
    TraceRecord st;
    st.op = OpClass::Store;
    st.addr = 0x5000;
    st.pc = 0x1000;
    InstTiming t1 = core.process(st);
    core.process(st);
    InstTiming t3 = core.process(st); // buffer full: waits for drain
    EXPECT_GE(t3.dispatch, t1.retire + 999);
}

TEST(CoreModel, MeasurementWindowDeltas)
{
    StubMem mem;
    CoreModel core({}, mem);
    for (int i = 0; i < 100; ++i)
        core.process(alu(0x1000 + (i % 4) * 4));
    core.beginMeasurement();
    EXPECT_EQ(core.measuredInsts(), 0u);
    for (int i = 0; i < 50; ++i)
        core.process(alu(0x1000 + (i % 4) * 4));
    EXPECT_EQ(core.measuredInsts(), 50u);
    EXPECT_GT(core.measuredCycles(), 0u);
}

TEST(CoreModel, RunConsumesFromSource)
{
    StubMem mem;
    CoreModel core({}, mem);

    class CountingSource : public TraceSource
    {
      public:
        int produced = 0;
        bool
        next(TraceRecord &rec) override
        {
            rec = TraceRecord{};
            rec.op = OpClass::IntAlu;
            rec.pc = 0x1000;
            ++produced;
            return true;
        }
        void reset() override { produced = 0; }
    } src;

    core.run(src, 321);
    EXPECT_EQ(src.produced, 321);
    EXPECT_EQ(core.instCount(), 321u);
}

TEST(CoreModel, FpOpsUseFpPipelines)
{
    StubMem mem;
    CoreModel core({}, mem);
    TraceRecord f;
    f.pc = 0x1000;
    f.op = OpClass::FpMul;
    f.dstReg = 3;
    InstTiming t = core.process(f);
    EXPECT_EQ(t.complete - t.issue, opLatency(OpClass::FpMul));
}
