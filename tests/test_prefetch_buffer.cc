/**
 * @file
 * Unit tests for the prefetch buffer (Section 5.2.3's structure).
 */

#include <gtest/gtest.h>

#include "cache/prefetch_buffer.hh"

using namespace ebcp;

TEST(PrefetchBufferTest, MissOnEmpty)
{
    PrefetchBuffer b(64, 4, 64);
    EXPECT_FALSE(b.lookup(0x1000, 10).hit);
}

TEST(PrefetchBufferTest, HitAfterInsert)
{
    PrefetchBuffer b(64, 4, 64);
    b.insert(0x1000, 5, 0, false);
    PrefBufHit h = b.lookup(0x1000, 10);
    EXPECT_TRUE(h.hit);
    EXPECT_EQ(h.readyTime, 5u);
}

TEST(PrefetchBufferTest, HitConsumesEntry)
{
    PrefetchBuffer b(64, 4, 64);
    b.insert(0x1000, 5, 0, false);
    EXPECT_TRUE(b.lookup(0x1000, 10).hit);
    EXPECT_FALSE(b.lookup(0x1000, 10).hit);
}

TEST(PrefetchBufferTest, LineGranularity)
{
    PrefetchBuffer b(64, 4, 64);
    b.insert(0x1000, 5, 0, false);
    EXPECT_TRUE(b.lookup(0x103f, 10).hit);
}

TEST(PrefetchBufferTest, InFlightHitReportsFutureReady)
{
    PrefetchBuffer b(64, 4, 64);
    b.insert(0x1000, 900, 0, false);
    PrefBufHit h = b.lookup(0x1000, 100);
    EXPECT_TRUE(h.hit);
    EXPECT_EQ(h.readyTime, 900u);
}

TEST(PrefetchBufferTest, CarriesCorrelationIndex)
{
    PrefetchBuffer b(64, 4, 64);
    b.insert(0x1000, 5, 77, true);
    PrefBufHit h = b.lookup(0x1000, 10);
    EXPECT_TRUE(h.hasCorrIndex);
    EXPECT_EQ(h.corrIndex, 77u);
}

TEST(PrefetchBufferTest, NoCorrelationIndexByDefault)
{
    PrefetchBuffer b(64, 4, 64);
    b.insert(0x1000, 5, 0, false);
    EXPECT_FALSE(b.lookup(0x1000, 10).hasCorrIndex);
}

TEST(PrefetchBufferTest, DuplicateInsertKeepsEarlierReadyTime)
{
    PrefetchBuffer b(64, 4, 64);
    b.insert(0x1000, 100, 0, false);
    b.insert(0x1000, 500, 0, false);
    EXPECT_EQ(b.lookup(0x1000, 0).readyTime, 100u);
}

TEST(PrefetchBufferTest, ContainsDoesNotConsume)
{
    PrefetchBuffer b(64, 4, 64);
    b.insert(0x1000, 5, 0, false);
    EXPECT_TRUE(b.contains(0x1000));
    EXPECT_TRUE(b.contains(0x1000));
    EXPECT_TRUE(b.lookup(0x1000, 10).hit);
}

TEST(PrefetchBufferTest, CapacityEvictsLru)
{
    // 8 entries, 4 ways -> 2 sets; flood one logical stream.
    PrefetchBuffer b(8, 4, 64);
    for (Addr i = 0; i < 16; ++i)
        b.insert(0x1000 + i * 64, 5, 0, false);
    // At most 8 lines can be resident.
    unsigned resident = 0;
    for (Addr i = 0; i < 16; ++i)
        if (b.contains(0x1000 + i * 64))
            ++resident;
    EXPECT_LE(resident, 8u);
    EXPECT_GE(resident, 4u);
}

TEST(PrefetchBufferTest, FlushEmpties)
{
    PrefetchBuffer b(64, 4, 64);
    b.insert(0x1000, 5, 0, false);
    b.flush();
    EXPECT_FALSE(b.contains(0x1000));
}

TEST(PrefetchBufferTest, StatsCountHitsAndInserts)
{
    PrefetchBuffer b(64, 4, 64);
    b.insert(0x1000, 5, 0, false);
    b.insert(0x2000, 5, 0, false);
    b.lookup(0x1000, 10);
    EXPECT_EQ(b.insertsTotal(), 2u);
    EXPECT_EQ(b.hitsTotal(), 1u);
}

using PrefBufSizeTest = ::testing::TestWithParam<unsigned>;

TEST_P(PrefBufSizeTest, NeverExceedsCapacity)
{
    const unsigned entries = GetParam();
    PrefetchBuffer b(entries, 4, 64);
    for (Addr i = 0; i < 4096; ++i)
        b.insert(i * 64, 5, 0, false);
    unsigned resident = 0;
    for (Addr i = 0; i < 4096; ++i)
        if (b.contains(i * 64))
            ++resident;
    EXPECT_LE(resident, entries);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefBufSizeTest,
                         ::testing::Values(16u, 64u, 256u, 1024u));
