/**
 * @file
 * Self-profiler tests.
 *
 * The contract under test: visit counts are exact (only times are
 * stride-sampled), scopes nest into per-path tree nodes, the runtime
 * toggle and the profiler itself never perturb simulated results, the
 * exported "profile" object passes the ebcp-stats-v1 validator in
 * both build modes, and the flame-span export forms a valid Chrome
 * trace on its own (pid 1) track.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "sim/simulator.hh"
#include "harness/stats_json.hh"
#include "trace/workloads.hh"
#include "util/event_trace.hh"
#include "util/json.hh"
#include "util/profiler.hh"

using namespace ebcp;

namespace
{

/** A temp path that removes itself. */
struct TempFile
{
    std::string path;
    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {}
    ~TempFile() { std::remove(path.c_str()); }
};

SimResults
runSmall(const char *workload, const char *pf_name)
{
    SimConfig cfg;
    PrefetcherParams pf;
    pf.name = pf_name;
    Simulator sim(cfg, pf);
    auto src = makeWorkload(workload);
    return sim.run(*src, 50'000, 100'000);
}

#ifndef EBCP_DISABLE_PROFILER
const prof::NodeReport *
findNode(const prof::Report &rep, const std::string &path)
{
    for (const prof::NodeReport &n : rep.nodes)
        if (n.path == path)
            return &n;
    return nullptr;
}
#endif

} // namespace

#ifndef EBCP_DISABLE_PROFILER

TEST(Profiler, VisitCountsAreExactAndPathsNest)
{
    prof::setEnabled(true);
    prof::resetThisThread();
    for (int i = 0; i < 1000; ++i) {
        EBCP_PROFILE_SCOPE(CoreLoop);
        for (int j = 0; j < 3; ++j) {
            EBCP_PROFILE_SCOPE(PrefetchTrain);
        }
    }
    {
        EBCP_PROFILE_SCOPE(Stats);
    }

    const prof::Report rep = prof::snapshotThisThread();
    ASSERT_TRUE(rep.enabled);

    const prof::NodeReport *core = findNode(rep, "core_loop");
    ASSERT_NE(core, nullptr);
    EXPECT_EQ(core->visits, 1000u);
    EXPECT_EQ(core->depth, 1u);
    // CoreLoop is always timed (stride mask 0): never an estimate.
    EXPECT_EQ(core->timedVisits, core->visits);
    EXPECT_FALSE(core->sampled);

    const prof::NodeReport *train =
        findNode(rep, "core_loop/prefetch_train");
    ASSERT_NE(train, nullptr);
    EXPECT_EQ(train->visits, 3000u); // exact despite time sampling
    EXPECT_EQ(train->depth, 2u);
    EXPECT_LT(train->timedVisits, train->visits); // stride-sampled
    EXPECT_TRUE(train->sampled);

    const prof::NodeReport *stats = findNode(rep, "stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->visits, 1u);

    // The same phase at a different nesting is a different node.
    EXPECT_EQ(findNode(rep, "prefetch_train"), nullptr);
}

TEST(Profiler, DisabledScopesRecordNothing)
{
    prof::setEnabled(false);
    prof::resetThisThread();
    {
        EBCP_PROFILE_SCOPE(CoreLoop);
        EBCP_PROFILE_SCOPE(PrefetchTrain);
    }
    const prof::Report rep = prof::snapshotThisThread();
    EXPECT_FALSE(rep.enabled);
    EXPECT_TRUE(rep.nodes.empty());
    prof::setEnabled(true);
}

TEST(Profiler, ResetDropsAccumulatedTree)
{
    prof::setEnabled(true);
    prof::resetThisThread();
    {
        EBCP_PROFILE_SCOPE(Audit);
    }
    EXPECT_FALSE(prof::snapshotThisThread().nodes.empty());
    prof::resetThisThread();
    EXPECT_TRUE(prof::snapshotThisThread().nodes.empty());
}

TEST(Profiler, EstimatesScaleAndSubtractClockCost)
{
    prof::setEnabled(true);
    prof::resetThisThread();
    for (int i = 0; i < 512; ++i) {
        EBCP_PROFILE_SCOPE(PrefetchIssue);
    }
    const prof::Report rep = prof::snapshotThisThread();
    const prof::NodeReport *n = findNode(rep, "prefetch_issue");
    ASSERT_NE(n, nullptr);
    ASSERT_GT(n->timedVisits, 0u);
    // Estimates are the measured time minus the calibrated self-cost
    // of the clock reads, scaled to all visits -- never negative, and
    // never more than the raw scaled measurement. For this empty body
    // the estimate should collapse toward zero rather than scale the
    // clock syscalls by the visit count.
    const double scale = static_cast<double>(n->visits) /
                         static_cast<double>(n->timedVisits);
    EXPECT_GE(n->estWallNs, 0.0);
    EXPECT_GE(n->estCpuNs, 0.0);
    EXPECT_LE(n->estWallNs, static_cast<double>(n->wallNs) * scale);
    EXPECT_LE(n->estCpuNs, static_cast<double>(n->cpuNs) * scale);
}

TEST(Profiler, RuntimeToggleLeavesSimResultsBitExact)
{
    prof::setEnabled(true);
    prof::resetThisThread();
    const SimResults on = runSmall("database", "ebcp");
    prof::setEnabled(false);
    prof::resetThisThread();
    const SimResults off = runSmall("database", "ebcp");
    prof::setEnabled(true);

    EXPECT_EQ(on.insts, off.insts);
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.epochs, off.epochs);
    EXPECT_EQ(on.cpi, off.cpi);
    EXPECT_EQ(on.usefulPrefetches, off.usefulPrefetches);
    EXPECT_EQ(on.issuedPrefetches, off.issuedPrefetches);
    EXPECT_EQ(on.coverage, off.coverage);
    EXPECT_EQ(on.accuracy, off.accuracy);
    EXPECT_EQ(on.timeliness, off.timeliness);
    EXPECT_EQ(on.readBusUtil, off.readBusUtil);
    EXPECT_EQ(on.writeBusUtil, off.writeBusUtil);
}

TEST(Profiler, SimulationPopulatesExpectedPhases)
{
    prof::setEnabled(true);
    prof::resetThisThread();
    runSmall("database", "ebcp");
    const prof::Report rep = prof::snapshotThisThread();
    EXPECT_NE(findNode(rep, "core_loop"), nullptr);
    EXPECT_NE(findNode(rep, "core_loop/prefetch_train"), nullptr);
    EXPECT_NE(findNode(rep, "core_loop/decode"), nullptr);
}

#ifndef EBCP_DISABLE_EVENT_TRACE
TEST(Profiler, ExportedSpansFormValidChromeTrace)
{
    prof::setEnabled(true);
    prof::resetThisThread();
    {
        EBCP_PROFILE_SCOPE(CoreLoop);
        {
            EBCP_PROFILE_SCOPE(Decode);
        }
        {
            EBCP_PROFILE_SCOPE(PrefetchTrain);
        }
    }

    TraceLog log;
    prof::exportProfileSpans(log);
    TempFile tmp("profiler.trace.json");
    Status s = log.exportChromeJson(tmp.path); // self-validating
    ASSERT_TRUE(s.ok()) << s.toString();

    StatusOr<JsonValue> doc = parseJsonFile(tmp.path);
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue *events = doc.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t spans = 0;
    for (const JsonValue &e : events->array) {
        const JsonValue *ph = e.find("ph");
        if (!ph || ph->string != "X")
            continue;
        ASSERT_TRUE(e.hasNumber("pid"));
        EXPECT_EQ(e.find("pid")->number, 1.0); // the profile row
        ++spans;
    }
    EXPECT_EQ(spans, 3u); // core_loop, decode, prefetch_train
}
#endif // EBCP_DISABLE_EVENT_TRACE

#endif // EBCP_DISABLE_PROFILER

// --- Both build modes ----------------------------------------------

TEST(Profiler, ProfileJsonValidatesInsideStatsDocument)
{
    prof::resetThisThread();
    std::ostringstream ss;
    JsonWriter w(ss);
    beginStatsJson(w, "test_profiler");
    endStatsJson(w, {}, {}, prof::profileJsonString());
    const Status s = validateStatsJson(ss.str());
    EXPECT_TRUE(s.ok()) << s.toString();
}

TEST(Profiler, ProfileJsonShapeIsStable)
{
    prof::resetThisThread();
    StatusOr<JsonValue> doc = parseJson(prof::profileJsonString());
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue &root = doc.value();
    ASSERT_TRUE(root.isObject());
    const JsonValue *enabled = root.find("enabled");
    ASSERT_NE(enabled, nullptr);
    EXPECT_TRUE(enabled->isBool());
    const JsonValue *clock = root.find("clock");
    ASSERT_NE(clock, nullptr);
    EXPECT_TRUE(clock->isString());
    const JsonValue *nodes = root.find("nodes");
    ASSERT_NE(nodes, nullptr);
    EXPECT_TRUE(nodes->isArray());
}
