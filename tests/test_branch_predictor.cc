/**
 * @file
 * Unit tests for the gshare + BTB + RAS branch predictor.
 */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"

using namespace ebcp;

TEST(BranchPredictorTest, LearnsAlwaysTakenBranch)
{
    BranchPredictor bp;
    // Warm up: global history shifts the gshare index until it
    // saturates (16 history bits), so each touched counter needs two
    // taken outcomes before the prediction settles.
    for (int i = 0; i < 64; ++i)
        bp.predict(0x1000, OpClass::Branch, true, 0x2000);
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 100; ++i)
        bp.predict(0x1000, OpClass::Branch, true, 0x2000);
    EXPECT_EQ(bp.mispredicts(), before);
}

TEST(BranchPredictorTest, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    for (int i = 0; i < 64; ++i)
        bp.predict(0x1000, OpClass::Branch, false, 0x2000);
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 100; ++i)
        bp.predict(0x1000, OpClass::Branch, false, 0x2000);
    EXPECT_EQ(bp.mispredicts(), before);
}

TEST(BranchPredictorTest, AlternatingPatternLearnedViaHistory)
{
    BranchPredictor bp;
    // gshare should capture a strict T/NT alternation once history
    // differentiates the two contexts.
    bool taken = false;
    for (int i = 0; i < 64; ++i) {
        bp.predict(0x1000, OpClass::Branch, taken, 0x2000);
        taken = !taken;
    }
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 200; ++i) {
        bp.predict(0x1000, OpClass::Branch, taken, 0x2000);
        taken = !taken;
    }
    EXPECT_LE(bp.mispredicts() - before, 4u);
}

TEST(BranchPredictorTest, BtbMissOnFirstTakenEncounter)
{
    BranchPredictor bp;
    // Even a predicted-taken branch redirects if the BTB lacks the
    // target; the very first encounter is counter-state dependent,
    // so drive the counter to taken first.
    bp.predict(0x1000, OpClass::Branch, true, 0x2000);
    bp.predict(0x1000, OpClass::Branch, true, 0x2000);
    std::uint64_t misses = bp.mispredicts();
    EXPECT_GE(misses, 1u); // at least the initial not-taken counters
}

TEST(BranchPredictorTest, TargetChangeCausesMispredict)
{
    BranchPredictor bp;
    for (int i = 0; i < 8; ++i)
        bp.predict(0x1000, OpClass::Branch, true, 0x2000);
    std::uint64_t before = bp.mispredicts();
    bp.predict(0x1000, OpClass::Branch, true, 0x3000);
    EXPECT_EQ(bp.mispredicts(), before + 1);
}

TEST(BranchPredictorTest, RasPredictsMatchedCallReturn)
{
    BranchPredictor bp;
    // call at 0x1000 pushes 0x1004; return to 0x1004 is predicted.
    bp.predict(0x1000, OpClass::Call, true, 0x8000);
    std::uint64_t before = bp.mispredicts();
    bool ok = bp.predict(0x8100, OpClass::Return, true, 0x1004);
    EXPECT_TRUE(ok);
    EXPECT_EQ(bp.mispredicts(), before);
}

TEST(BranchPredictorTest, RasHandlesNesting)
{
    BranchPredictor bp;
    bp.predict(0x1000, OpClass::Call, true, 0x8000);
    bp.predict(0x2000, OpClass::Call, true, 0x9000);
    EXPECT_TRUE(bp.predict(0x9100, OpClass::Return, true, 0x2004));
    EXPECT_TRUE(bp.predict(0x8100, OpClass::Return, true, 0x1004));
}

TEST(BranchPredictorTest, MismatchedReturnMispredicts)
{
    BranchPredictor bp;
    bp.predict(0x1000, OpClass::Call, true, 0x8000);
    std::uint64_t before = bp.mispredicts();
    EXPECT_FALSE(bp.predict(0x8100, OpClass::Return, true, 0xdead));
    EXPECT_EQ(bp.mispredicts(), before + 1);
}

TEST(BranchPredictorTest, ResetForgets)
{
    BranchPredictor bp;
    for (int i = 0; i < 8; ++i)
        bp.predict(0x1000, OpClass::Branch, true, 0x2000);
    bp.reset();
    // Counters back to weakly-not-taken: a taken branch mispredicts.
    std::uint64_t before = bp.mispredicts();
    bp.predict(0x1000, OpClass::Branch, true, 0x2000);
    EXPECT_EQ(bp.mispredicts(), before + 1);
}

TEST(BranchPredictorTest, LookupsCounted)
{
    BranchPredictor bp;
    bp.predict(0x1000, OpClass::Branch, true, 0x2000);
    bp.predict(0x1000, OpClass::Call, true, 0x2000);
    EXPECT_EQ(bp.lookups(), 2u);
}
