/**
 * @file
 * End-to-end simulator tests: factory coverage, result sanity, the
 * epoch-model decomposition on real runs, and the headline behaviour
 * (EBCP improves performance on a correlated workload).
 */

#include <gtest/gtest.h>

#include "epoch/mlp_model.hh"
#include "sim/simulator.hh"
#include "trace/workloads.hh"

using namespace ebcp;

namespace
{

/** Small but representative run. */
SimResults
quickRun(const std::string &workload, const std::string &pf,
         std::uint64_t warm = 300000, std::uint64_t measure = 600000)
{
    SimConfig cfg;
    PrefetcherParams p;
    p.name = pf;
    auto src = makeWorkload(workload);
    return runOnce(cfg, p, *src, warm, measure);
}

} // namespace

TEST(FactoryTest, AllNamesConstruct)
{
    for (const auto &n : prefetcherNames()) {
        PrefetcherParams p;
        p.name = n;
        auto pf = createPrefetcher(p);
        ASSERT_NE(pf, nullptr) << n;
    }
}

TEST(FactoryTest, EbcpMinusSetsVariant)
{
    PrefetcherParams p;
    p.name = "ebcp-minus";
    auto pf = createPrefetcher(p);
    auto *e = dynamic_cast<EpochBasedPrefetcher *>(pf.get());
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->config().minusVariant);
}

TEST(SimulatorTest, BaselineResultsSane)
{
    SimResults r = quickRun("database", "null");
    EXPECT_GT(r.cpi, 1.0);
    EXPECT_LT(r.cpi, 20.0);
    EXPECT_GT(r.epochsPer1k, 0.5);
    EXPECT_GT(r.l2LoadMissPer1k, 0.5);
    EXPECT_EQ(r.insts, 600000u);
    EXPECT_EQ(r.usefulPrefetches, 0u);
    EXPECT_EQ(r.issuedPrefetches, 0u);
}

TEST(SimulatorTest, DeterministicAcrossRuns)
{
    SimResults a = quickRun("tpcw", "null");
    SimResults b = quickRun("tpcw", "null");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.epochs, b.epochs);
}

TEST(SimulatorTest, CoverageAccuracyInUnitRange)
{
    for (const char *pf : {"ebcp", "stream", "sms", "solihin-6-1"}) {
        SimResults r = quickRun("database", pf);
        EXPECT_GE(r.coverage, 0.0) << pf;
        EXPECT_LE(r.coverage, 1.0) << pf;
        EXPECT_GE(r.accuracy, 0.0) << pf;
        EXPECT_LE(r.accuracy, 1.0) << pf;
    }
}

TEST(SimulatorTest, EbcpImprovesCorrelatedWorkload)
{
    // Use a longer window so the correlation table trains.
    SimConfig cfg;
    PrefetcherParams base;
    base.name = "null";
    auto s1 = makeWorkload("database");
    SimResults rb = runOnce(cfg, base, *s1, 1000000, 2000000);

    PrefetcherParams pf;
    pf.name = "ebcp";
    auto s2 = makeWorkload("database");
    SimResults rp = runOnce(cfg, pf, *s2, 1000000, 2000000);

    EXPECT_GT(rp.usefulPrefetches, 100u);
    EXPECT_GT(improvementPct(rb, rp), 1.0);
    EXPECT_LT(rp.epochsPer1k, rb.epochsPer1k);
}

TEST(SimulatorTest, PerfectL2GivesCpiPerf)
{
    SimConfig cfg;
    cfg.perfectL2 = true;
    PrefetcherParams p;
    p.name = "null";
    auto src = makeWorkload("database");
    SimResults perf = runOnce(cfg, p, *src, 200000, 400000);
    SimResults real = quickRun("database", "null", 200000, 400000);
    EXPECT_LT(perf.cpi, real.cpi);
    EXPECT_EQ(perf.epochs, 0u);
}

TEST(SimulatorTest, EpochModelDecompositionHolds)
{
    // CPI_overall = CPI_perf (1-Overlap) + EPI * penalty should hold
    // with a plausible Overlap in [0,1] (Section 2.1).
    SimConfig cfg;
    cfg.perfectL2 = true;
    PrefetcherParams p;
    p.name = "null";
    auto s1 = makeWorkload("specjbb");
    SimResults perf = runOnce(cfg, p, *s1, 300000, 600000);

    SimResults real = quickRun("specjbb", "null");
    const double epi = real.epochsPer1k / 1000.0;
    const double ov =
        solveOverlap(real.cpi, perf.cpi, epi, MemConfig{}.latency);
    EXPECT_GT(ov, 0.0);
    EXPECT_LT(ov, 1.0);
}

TEST(SimulatorTest, ImprovementHelpers)
{
    SimResults base, pf;
    base.cpi = 2.0;
    pf.cpi = 1.6;
    EXPECT_NEAR(improvementPct(base, pf), 25.0, 1e-9);
    base.epochsPer1k = 4.0;
    pf.epochsPer1k = 3.0;
    EXPECT_NEAR(epiReductionPct(base, pf), 25.0, 1e-9);
}

TEST(SimulatorTest, BandwidthScaleSlowsPrefetching)
{
    SimConfig low_cfg;
    low_cfg.mem.scaleBandwidth(1.0 / 3.0); // 3.2 GB/s read
    PrefetcherParams pf;
    pf.name = "ebcp";
    pf.ebcp.prefetchDegree = 32;
    auto s1 = makeWorkload("database");
    SimResults low = runOnce(low_cfg, pf, *s1, 300000, 600000);

    SimConfig hi_cfg;
    auto s2 = makeWorkload("database");
    SimResults hi = runOnce(hi_cfg, pf, *s2, 300000, 600000);

    // Less bandwidth means more drops or strictly fewer issued
    // prefetches serviced.
    EXPECT_GE(low.droppedPrefetches + hi.issuedPrefetches,
              low.issuedPrefetches);
    EXPECT_GE(hi.readBusUtil, 0.0);
}

TEST(SimulatorTest, StatsDumpProducesOutput)
{
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "ebcp";
    Simulator sim(cfg, p);
    auto src = makeWorkload("tpcw");
    sim.run(*src, 100000, 100000);
    std::ostringstream os;
    sim.dumpStats(os);
    EXPECT_NE(os.str().find("core."), std::string::npos);
    EXPECT_NE(os.str().find("l2side."), std::string::npos);
    EXPECT_NE(os.str().find("memory."), std::string::npos);
    EXPECT_NE(os.str().find("ebcp"), std::string::npos);
}

TEST(SimulatorTest, TableBytesWiredFromEbcpConfig)
{
    SimConfig cfg;
    PrefetcherParams p;
    p.name = "ebcp";
    p.ebcp.prefetchDegree = 32; // 256B entries
    Simulator sim(cfg, p);
    // A table read must occupy the bus longer than one line.
    MemAccessResult a = sim.l2side().tableRead(0);
    MemAccessResult b = sim.l2side().tableRead(0);
    EXPECT_GE(b.grant - a.grant, 80u); // 256B / 3.2Bpt
}
