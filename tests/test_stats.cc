/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/group.hh"
#include "stats/statistic.hh"
#include "stats/table.hh"
#include "util/json.hh"

using namespace ebcp;

TEST(Scalar, IncrementAndAdd)
{
    Scalar s("s", "d");
    ++s;
    s += 4;
    EXPECT_EQ(s.value(), 5u);
}

TEST(Scalar, Reset)
{
    Scalar s("s", "d");
    s += 10;
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Scalar, Render)
{
    Scalar s("s", "d");
    s += 7;
    EXPECT_EQ(s.render(), "7");
}

TEST(Average, MeanOfSamples)
{
    Average a("a", "d");
    a.sample(1.0);
    a.sample(2.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a("a", "d");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Average, Reset)
{
    Average a("a", "d");
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(DistributionStat, BucketsSamples)
{
    Distribution d("d", "desc", 0.0, 10.0, 5);
    d.sample(0.5);  // bucket 0
    d.sample(3.0);  // bucket 1
    d.sample(9.9);  // bucket 4
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 1u);
    EXPECT_EQ(d.bucketCount(4), 1u);
    EXPECT_EQ(d.samples(), 3u);
}

TEST(DistributionStat, UnderOverflow)
{
    Distribution d("d", "desc", 0.0, 10.0, 5);
    d.sample(-1.0);
    d.sample(10.1);
    d.sample(100.0);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 2u);
}

// Regression: the boundary sample v == max belongs to the (closed)
// last bucket, never to overflow -- and values just inside max must
// not index one past the last bucket through float rounding.
TEST(DistributionStat, BoundaryLandsInLastBucket)
{
    Distribution d("d", "desc", 0.0, 10.0, 5);
    d.sample(10.0);                            // exactly max
    d.sample(std::nextafter(10.0, 0.0));       // just inside max
    d.sample(0.0);                             // exactly min
    EXPECT_EQ(d.bucketCount(4), 2u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.overflows(), 0u);
    EXPECT_EQ(d.underflows(), 0u);

    d.sample(std::nextafter(10.0, 11.0)); // just past max
    EXPECT_EQ(d.overflows(), 1u);

    // Non-zero min, bucket width with a non-terminating binary
    // representation: the clamp must still keep max in range.
    Distribution e("e", "desc", 1.0, 2.0, 3);
    e.sample(2.0);
    EXPECT_EQ(e.bucketCount(2), 1u);
    EXPECT_EQ(e.overflows(), 0u);
}

TEST(DistributionStat, Mean)
{
    Distribution d("d", "desc", 0.0, 100.0, 10);
    d.sample(10.0);
    d.sample(30.0);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
}

TEST(DistributionStat, Reset)
{
    Distribution d("d", "desc", 0.0, 10.0, 2);
    d.sample(1.0);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.bucketCount(0), 0u);
}

TEST(StatGroupTest, DumpContainsNamesAndValues)
{
    StatGroup g("grp");
    Scalar s("counter", "a counter");
    g.add(s);
    s += 3;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("grp.counter"), std::string::npos);
    EXPECT_NE(os.str().find("3"), std::string::npos);
    EXPECT_NE(os.str().find("a counter"), std::string::npos);
}

TEST(StatGroupTest, ChildGroupsDumpWithPrefix)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar s("x", "d");
    child.add(s);
    parent.addChild(child);
    std::ostringstream os;
    parent.dump(os);
    EXPECT_NE(os.str().find("p.c.x"), std::string::npos);
}

TEST(StatGroupTest, ResetAllRecurses)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar a("a", "d"), b("b", "d");
    parent.add(a);
    child.add(b);
    parent.addChild(child);
    a += 1;
    b += 2;
    parent.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatGroupTest, FindLocatesStatsByDottedPath)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar a("a", "d"), b("b", "d");
    parent.add(a);
    child.add(b);
    parent.addChild(child);
    a += 7;
    EXPECT_EQ(parent.find("a"), &a);
    EXPECT_EQ(parent.find("c.b"), &b);
    EXPECT_EQ(parent.findScalar("a")->value(), 7u);
    EXPECT_EQ(parent.find("missing"), nullptr);
    EXPECT_EQ(parent.find("c.missing"), nullptr);
}

TEST(StatGroupTest, FindRejectsEmptyPathSegments)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar a("a", "d"), b("b", "d");
    parent.add(a);
    child.add(b);
    parent.addChild(child);

    // "a..b"-style paths used to match as if the empty segment were
    // absent; every empty segment must make the lookup fail instead.
    EXPECT_EQ(parent.find(""), nullptr);
    EXPECT_EQ(parent.find("."), nullptr);
    EXPECT_EQ(parent.find(".a"), nullptr);
    EXPECT_EQ(parent.find("a."), nullptr);
    EXPECT_EQ(parent.find("c."), nullptr);
    EXPECT_EQ(parent.find(".c.b"), nullptr);
    EXPECT_EQ(parent.find("c..b"), nullptr);
    EXPECT_EQ(parent.find("c.b."), nullptr);
}

TEST(StatGroupTest, DumpJsonIsWellFormedAndTyped)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar s("counter", "d");
    Average avg("avg", "d");
    Distribution dist("dist", "d", 0.0, 10.0, 2);
    parent.add(s);
    parent.add(avg);
    child.add(dist);
    parent.addChild(child);
    s += 3;
    avg.sample(2.0);
    avg.sample(4.0);
    dist.sample(1.0);

    std::ostringstream os;
    JsonWriter w(os);
    parent.dumpJson(w);
    ASSERT_TRUE(w.complete());

    StatusOr<JsonValue> doc = parseJson(os.str());
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue &d = doc.value();
    ASSERT_TRUE(d.isObject());
    EXPECT_EQ(d.find("counter")->number, 3.0);
    const JsonValue *a = d.find("avg");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->find("mean")->number, 3.0);
    EXPECT_EQ(a->find("count")->number, 2.0);
    const JsonValue *c = d.find("c");
    ASSERT_NE(c, nullptr);
    const JsonValue *di = c->find("dist");
    ASSERT_NE(di, nullptr);
    EXPECT_EQ(di->find("samples")->number, 1.0);
    ASSERT_NE(di->find("buckets"), nullptr);
    EXPECT_TRUE(di->find("buckets")->isArray());
}

TEST(AsciiTableTest, RendersHeaderAndRows)
{
    AsciiTable t("title");
    t.setHeader({"name", "v1", "v2"});
    t.addRow("row", {1.5, 2.25});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("2.25"), std::string::npos);
}

TEST(AsciiTableTest, HandlesRaggedRows)
{
    AsciiTable t("t");
    t.setHeader({"a", "b"});
    t.addRow({"x"});
    t.addRow({"y", "1", "2"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("y"), std::string::npos);
}

TEST(AsciiTableTest, PrecisionControl)
{
    AsciiTable t("t");
    t.addRow("r", {3.14159}, 4);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3.1416"), std::string::npos);
}
