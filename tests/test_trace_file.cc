/**
 * @file
 * Tests for trace record/replay: round-trip fidelity, looping, reset
 * and header validation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/simulator.hh"
#include "trace/trace_file.hh"
#include "trace/workloads.hh"

using namespace ebcp;

namespace
{

/** Temp file path unique to this test binary run. */
std::string
tmpPath(const std::string &tag)
{
    return testing::TempDir() + "ebcp_trace_" + tag + ".trc";
}

} // namespace

TEST(TraceFileTest, RoundTripsRecords)
{
    const std::string path = tmpPath("roundtrip");
    auto w = makeWorkload("database");

    std::vector<TraceRecord> golden;
    {
        TraceFileWriter writer(path);
        TraceRecord rec;
        for (int i = 0; i < 1000; ++i) {
            w->next(rec);
            golden.push_back(rec);
            writer.write(rec);
        }
    }

    FileTraceSource src(path, false);
    TraceRecord rec;
    for (const TraceRecord &g : golden) {
        ASSERT_TRUE(src.next(rec));
        EXPECT_EQ(rec.pc, g.pc);
        EXPECT_EQ(rec.addr, g.addr);
        EXPECT_EQ(rec.target, g.target);
        EXPECT_EQ(static_cast<int>(rec.op), static_cast<int>(g.op));
        EXPECT_EQ(rec.dstReg, g.dstReg);
        EXPECT_EQ(rec.srcReg0, g.srcReg0);
        EXPECT_EQ(rec.srcReg1, g.srcReg1);
        EXPECT_EQ(rec.taken, g.taken);
    }
    EXPECT_FALSE(src.next(rec));
    std::remove(path.c_str());
}

TEST(TraceFileTest, CaptureHelper)
{
    const std::string path = tmpPath("capture");
    auto w = makeWorkload("tpcw");
    {
        TraceFileWriter writer(path);
        writer.capture(*w, 500);
        EXPECT_EQ(writer.recordsWritten(), 500u);
    }
    FileTraceSource src(path, false);
    TraceRecord rec;
    std::uint64_t n = 0;
    while (src.next(rec))
        ++n;
    EXPECT_EQ(n, 500u);
    std::remove(path.c_str());
}

TEST(TraceFileTest, LoopingWrapsAround)
{
    const std::string path = tmpPath("loop");
    auto w = makeWorkload("specjbb");
    TraceRecord first;
    {
        TraceFileWriter writer(path);
        TraceRecord rec;
        w->next(rec);
        first = rec;
        writer.write(rec);
        for (int i = 0; i < 9; ++i) {
            w->next(rec);
            writer.write(rec);
        }
    }
    FileTraceSource src(path, true);
    TraceRecord rec;
    for (int i = 0; i < 25; ++i)
        ASSERT_TRUE(src.next(rec));
    // Read 25 of 10: wrapped twice; record 21 == record 1.
    EXPECT_EQ(src.recordsRead(), 25u);
    src.reset();
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.pc, first.pc);
    std::remove(path.c_str());
}

TEST(TraceFileTest, ResetRestarts)
{
    const std::string path = tmpPath("reset");
    auto w = makeWorkload("database");
    {
        TraceFileWriter writer(path);
        writer.capture(*w, 100);
    }
    FileTraceSource src(path, false);
    TraceRecord a, b;
    src.next(a);
    src.next(b);
    src.reset();
    TraceRecord c;
    src.next(c);
    EXPECT_EQ(c.pc, a.pc);
    EXPECT_EQ(src.recordsRead(), 1u);
    std::remove(path.c_str());
}

TEST(TraceFileTest, ReplayDrivesSimulatorDeterministically)
{
    const std::string path = tmpPath("sim");
    {
        auto w = makeWorkload("database");
        TraceFileWriter writer(path);
        writer.capture(*w, 200000);
    }

    SimConfig cfg;
    PrefetcherParams p;
    p.name = "null";

    FileTraceSource s1(path, true);
    SimResults a = runOnce(cfg, p, s1, 50000, 100000);
    FileTraceSource s2(path, true);
    SimResults b = runOnce(cfg, p, s2, 50000, 100000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_GT(a.cpi, 0.5);
    std::remove(path.c_str());
}

TEST(TraceFileTest, ReplayMatchesLiveGeneration)
{
    // A captured trace replayed through the simulator must produce
    // exactly the timing of the live generator.
    const std::string path = tmpPath("match");
    {
        auto w = makeWorkload("tpcw");
        TraceFileWriter writer(path);
        writer.capture(*w, 300000);
    }

    SimConfig cfg;
    PrefetcherParams p;
    p.name = "null";

    FileTraceSource replay(path, false);
    SimResults from_file = runOnce(cfg, p, replay, 100000, 150000);

    auto live = makeWorkload("tpcw");
    SimResults from_gen = runOnce(cfg, p, *live, 100000, 150000);

    EXPECT_EQ(from_file.cycles, from_gen.cycles);
    EXPECT_EQ(from_file.epochs, from_gen.epochs);
    std::remove(path.c_str());
}
