/**
 * @file
 * Tests for trace record/replay: round-trip fidelity, looping, reset,
 * header validation, and the corrupted-trace corpus -- damaged files
 * must produce a clean error or a counted skip per policy, never a
 * crash or a hang.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "trace/trace_file.hh"
#include "trace/workloads.hh"
#include "util/crc32.hh"

using namespace ebcp;

namespace
{

/** Temp file path unique to this test binary run. */
std::string
tmpPath(const std::string &tag)
{
    return testing::TempDir() + "ebcp_trace_" + tag + ".trc";
}

/** Open a writer, asserting success. */
std::unique_ptr<TraceFileWriter>
openWriter(const std::string &path, unsigned chunk_records = 1024)
{
    auto w = TraceFileWriter::open(path, chunk_records);
    EXPECT_TRUE(w.ok()) << w.status().toString();
    return w.take();
}

/** Open a reader, asserting success. */
std::unique_ptr<FileTraceSource>
openSource(const std::string &path, bool loop,
           TraceReadPolicy policy = TraceReadPolicy::Strict)
{
    auto s = FileTraceSource::open(path, loop, policy);
    EXPECT_TRUE(s.ok()) << s.status().toString();
    return s.take();
}

/** Write a valid trace of @p records database records. */
void
writeTrace(const std::string &path, std::uint64_t records,
           unsigned chunk_records = 1024)
{
    auto w = makeWorkload("database");
    auto writer = openWriter(path, chunk_records);
    ASSERT_TRUE(writer->capture(*w, records).ok());
    ASSERT_TRUE(writer->close().ok());
}

std::vector<unsigned char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Count records until the source ends (bounded to catch hangs). */
std::uint64_t
drain(FileTraceSource &src, std::uint64_t bound = 10'000'000)
{
    TraceRecord rec;
    std::uint64_t n = 0;
    while (n < bound && src.next(rec))
        ++n;
    EXPECT_LT(n, bound) << "source never ended (hang)";
    return n;
}

} // namespace

TEST(TraceFileTest, RoundTripsRecords)
{
    const std::string path = tmpPath("roundtrip");
    auto w = makeWorkload("database");

    std::vector<TraceRecord> golden;
    {
        auto writer = openWriter(path);
        TraceRecord rec;
        for (int i = 0; i < 1000; ++i) {
            w->next(rec);
            golden.push_back(rec);
            ASSERT_TRUE(writer->write(rec).ok());
        }
        ASSERT_TRUE(writer->close().ok());
    }

    auto src = openSource(path, false);
    TraceRecord rec;
    for (const TraceRecord &g : golden) {
        ASSERT_TRUE(src->next(rec));
        EXPECT_EQ(rec.pc, g.pc);
        EXPECT_EQ(rec.addr, g.addr);
        EXPECT_EQ(rec.target, g.target);
        EXPECT_EQ(static_cast<int>(rec.op), static_cast<int>(g.op));
        EXPECT_EQ(rec.dstReg, g.dstReg);
        EXPECT_EQ(rec.srcReg0, g.srcReg0);
        EXPECT_EQ(rec.srcReg1, g.srcReg1);
        EXPECT_EQ(rec.taken, g.taken);
    }
    EXPECT_FALSE(src->next(rec));
    EXPECT_TRUE(src->status().ok());
    EXPECT_EQ(src->formatVersion(), 2u);
    std::remove(path.c_str());
}

TEST(TraceFileTest, CaptureHelper)
{
    const std::string path = tmpPath("capture");
    writeTrace(path, 500);
    auto src = openSource(path, false);
    EXPECT_EQ(drain(*src), 500u);
    std::remove(path.c_str());
}

TEST(TraceFileTest, LoopingWrapsAround)
{
    const std::string path = tmpPath("loop");
    auto w = makeWorkload("specjbb");
    TraceRecord first;
    {
        auto writer = openWriter(path);
        TraceRecord rec;
        w->next(rec);
        first = rec;
        ASSERT_TRUE(writer->write(rec).ok());
        for (int i = 0; i < 9; ++i) {
            w->next(rec);
            ASSERT_TRUE(writer->write(rec).ok());
        }
        ASSERT_TRUE(writer->close().ok());
    }
    auto src = openSource(path, true);
    TraceRecord rec;
    for (int i = 0; i < 25; ++i)
        ASSERT_TRUE(src->next(rec));
    // Read 25 of 10: wrapped twice; record 21 == record 1.
    EXPECT_EQ(src->recordsRead(), 25u);
    src->reset();
    ASSERT_TRUE(src->next(rec));
    EXPECT_EQ(rec.pc, first.pc);
    std::remove(path.c_str());
}

TEST(TraceFileTest, ResetRestarts)
{
    const std::string path = tmpPath("reset");
    writeTrace(path, 100);
    auto src = openSource(path, false);
    TraceRecord a, b;
    src->next(a);
    src->next(b);
    src->reset();
    TraceRecord c;
    src->next(c);
    EXPECT_EQ(c.pc, a.pc);
    EXPECT_EQ(src->recordsRead(), 1u);
    std::remove(path.c_str());
}

TEST(TraceFileTest, ReplayDrivesSimulatorDeterministically)
{
    const std::string path = tmpPath("sim");
    writeTrace(path, 200000);

    SimConfig cfg;
    PrefetcherParams p;
    p.name = "null";

    auto s1 = openSource(path, true);
    SimResults a = runOnce(cfg, p, *s1, 50000, 100000);
    auto s2 = openSource(path, true);
    SimResults b = runOnce(cfg, p, *s2, 50000, 100000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_GT(a.cpi, 0.5);
    std::remove(path.c_str());
}

TEST(TraceFileTest, ReplayMatchesLiveGeneration)
{
    // A captured trace replayed through the simulator must produce
    // exactly the timing of the live generator.
    const std::string path = tmpPath("match");
    {
        auto w = makeWorkload("tpcw");
        auto writer = openWriter(path);
        ASSERT_TRUE(writer->capture(*w, 300000).ok());
        ASSERT_TRUE(writer->close().ok());
    }

    SimConfig cfg;
    PrefetcherParams p;
    p.name = "null";

    auto replay = openSource(path, false);
    SimResults from_file = runOnce(cfg, p, *replay, 100000, 150000);

    auto live = makeWorkload("tpcw");
    SimResults from_gen = runOnce(cfg, p, *live, 100000, 150000);

    EXPECT_EQ(from_file.cycles, from_gen.cycles);
    EXPECT_EQ(from_file.epochs, from_gen.epochs);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Corrupted-trace corpus: every damaged file yields a clean error or a
// counted skip, never a crash or an endless loop.
// ---------------------------------------------------------------------

TEST(TraceCorruptionTest, MissingFileIsIoError)
{
    auto s = FileTraceSource::open(tmpPath("does_not_exist"), false);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::IoError);
}

TEST(TraceCorruptionTest, ZeroLengthFileIsCorruption)
{
    const std::string path = tmpPath("empty");
    writeAll(path, {});
    auto s = FileTraceSource::open(path, false);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::Corruption);
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, BadMagicIsCorruption)
{
    const std::string path = tmpPath("badmagic");
    writeTrace(path, 100);
    auto bytes = readAll(path);
    bytes[0] = 'X';
    writeAll(path, bytes);
    auto s = FileTraceSource::open(path, false);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::Corruption);
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, TruncatedHeaderIsCorruption)
{
    const std::string path = tmpPath("shorthdr");
    writeTrace(path, 100);
    auto bytes = readAll(path);
    bytes.resize(12); // magic + half the fixed fields
    writeAll(path, bytes);
    auto s = FileTraceSource::open(path, false);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::Corruption);
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, WrongRecordSizeIsCorruption)
{
    const std::string path = tmpPath("recsize");
    writeTrace(path, 100);
    auto bytes = readAll(path);
    const std::uint32_t bad = 48;
    std::memcpy(bytes.data() + 12, &bad, 4);
    // Recompute the header CRC so only the record size is wrong.
    const std::uint32_t hcrc = crc32(bytes.data(), 20);
    std::memcpy(bytes.data() + 20, &hcrc, 4);
    writeAll(path, bytes);
    auto s = FileTraceSource::open(path, false);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::Corruption);
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, HeaderCrcMismatchIsCorruption)
{
    const std::string path = tmpPath("hdrcrc");
    writeTrace(path, 100);
    auto bytes = readAll(path);
    bytes[16] ^= 0x01; // chunk_records field; CRC now stale
    writeAll(path, bytes);
    auto s = FileTraceSource::open(path, false);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::Corruption);
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, PayloadBitFlipPerPolicy)
{
    // 3 chunks of 100; flip a bit in the middle chunk's payload.
    const std::string path = tmpPath("payload");
    writeTrace(path, 300, 100);
    auto bytes = readAll(path);
    const std::size_t chunk = 8 + 100 * 32; // header + payload
    const std::size_t mid_payload = 24 + chunk + 8 + 40;
    ASSERT_LT(mid_payload, bytes.size());
    bytes[mid_payload] ^= 0x10;
    writeAll(path, bytes);

    {
        auto src = openSource(path, false, TraceReadPolicy::Strict);
        EXPECT_EQ(drain(*src), 100u); // first chunk only
        EXPECT_FALSE(src->status().ok());
        EXPECT_EQ(src->status().code(), StatusCode::Corruption);
        EXPECT_EQ(src->corruptChunks(), 1u);
    }
    {
        auto src = openSource(path, false, TraceReadPolicy::SkipCorrupt);
        EXPECT_EQ(drain(*src), 200u); // middle chunk skipped
        EXPECT_TRUE(src->status().ok());
        EXPECT_EQ(src->corruptChunks(), 1u);
        EXPECT_EQ(src->recordsSkipped(), 100u);
    }
    {
        auto src =
            openSource(path, false, TraceReadPolicy::StopAtCorrupt);
        EXPECT_EQ(drain(*src), 100u); // clean stop at the bad chunk
        EXPECT_TRUE(src->status().ok());
        EXPECT_EQ(src->corruptChunks(), 1u);
    }
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, SkipCorruptLoopingDoesNotHang)
{
    // A looping source over a trace whose *only* chunk is corrupt must
    // terminate next() rather than spin forever looking for data.
    const std::string path = tmpPath("allbad");
    writeTrace(path, 100, 100);
    auto bytes = readAll(path);
    bytes[24 + 8 + 3] ^= 0x40; // sole chunk's payload
    writeAll(path, bytes);

    auto src = openSource(path, true, TraceReadPolicy::SkipCorrupt);
    TraceRecord rec;
    EXPECT_FALSE(src->next(rec));
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, TruncatedTailPerPolicy)
{
    // Chop the file mid-way through the final chunk's payload.
    const std::string path = tmpPath("tail");
    writeTrace(path, 250, 100); // chunks of 100/100/50
    auto bytes = readAll(path);
    bytes.resize(bytes.size() - 700);
    writeAll(path, bytes);

    {
        auto src = openSource(path, false, TraceReadPolicy::Strict);
        EXPECT_EQ(drain(*src), 200u);
        EXPECT_FALSE(src->status().ok());
        EXPECT_EQ(src->truncatedTails(), 1u);
    }
    {
        auto src = openSource(path, false, TraceReadPolicy::SkipCorrupt);
        EXPECT_EQ(drain(*src), 200u); // tail dropped, no error
        EXPECT_TRUE(src->status().ok());
        EXPECT_EQ(src->truncatedTails(), 1u);
    }
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, ImplausibleChunkCountEndsStream)
{
    // A corrupt chunk *header* is unskippable (no trustworthy next
    // boundary): the stream must end under every policy.
    const std::string path = tmpPath("count");
    writeTrace(path, 200, 100);
    auto bytes = readAll(path);
    const std::uint32_t huge = 0xffffffff;
    std::memcpy(bytes.data() + 24 + 8 + 100 * 32, &huge, 4);
    writeAll(path, bytes);

    auto src = openSource(path, false, TraceReadPolicy::SkipCorrupt);
    EXPECT_EQ(drain(*src), 100u);
    EXPECT_EQ(src->corruptChunks(), 1u);
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, CorruptRecordsAreSanitized)
{
    // Force out-of-range op/register fields through a chunk whose CRC
    // is recomputed (an "undetectable" corruption): the reader clamps
    // them so the timing model never sees a wild index.
    const std::string path = tmpPath("sanitize");
    writeTrace(path, 100, 100);
    auto bytes = readAll(path);
    const std::size_t payload = 24 + 8;
    bytes[payload + 24] = 0xee; // op
    bytes[payload + 25] = 0xc8; // dstReg = 200 (>= NumArchRegs)
    const std::uint32_t crc = crc32(bytes.data() + payload, 100 * 32);
    std::memcpy(bytes.data() + 24 + 4, &crc, 4);
    writeAll(path, bytes);

    auto src = openSource(path, false, TraceReadPolicy::Strict);
    TraceRecord rec;
    ASSERT_TRUE(src->next(rec));
    EXPECT_LE(static_cast<unsigned>(rec.op),
              static_cast<unsigned>(OpClass::Nop));
    EXPECT_TRUE(rec.dstReg < NumArchRegs || rec.dstReg == NoReg);
    EXPECT_GE(src->recordsSanitized(), 1u);
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, V1FilesRemainReadable)
{
    // Hand-build a v1 file: magic + version + rec_size, raw records.
    const std::string path = tmpPath("v1");
    std::vector<unsigned char> bytes;
    const char magic[8] = {'E', 'B', 'C', 'P', 'T', 'R', 'C', '1'};
    bytes.insert(bytes.end(), magic, magic + 8);
    const std::uint32_t version = 1, rec_size = 32;
    bytes.resize(16);
    std::memcpy(bytes.data() + 8, &version, 4);
    std::memcpy(bytes.data() + 12, &rec_size, 4);
    for (int i = 0; i < 3; ++i) {
        unsigned char rec[32] = {};
        const std::uint64_t pc = 0x1000 + 4u * i;
        std::memcpy(rec, &pc, 8);
        rec[24] = 0; // op = IntAlu
        rec[25] = rec[26] = rec[27] = 0xff; // NoReg
        bytes.insert(bytes.end(), rec, rec + 32);
    }
    writeAll(path, bytes);

    auto src = openSource(path, false);
    EXPECT_EQ(src->formatVersion(), 1u);
    TraceRecord rec;
    ASSERT_TRUE(src->next(rec));
    EXPECT_EQ(rec.pc, 0x1000u);
    EXPECT_EQ(drain(*src), 2u);
    EXPECT_TRUE(src->status().ok());
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, V1TruncatedRecordDetected)
{
    const std::string path = tmpPath("v1tail");
    std::vector<unsigned char> bytes(16 + 32 + 10, 0);
    const char magic[8] = {'E', 'B', 'C', 'P', 'T', 'R', 'C', '1'};
    std::memcpy(bytes.data(), magic, 8);
    const std::uint32_t version = 1, rec_size = 32;
    std::memcpy(bytes.data() + 8, &version, 4);
    std::memcpy(bytes.data() + 12, &rec_size, 4);
    bytes[24 + 1] = 0xff;
    writeAll(path, bytes);

    auto src = openSource(path, false, TraceReadPolicy::Strict);
    EXPECT_EQ(drain(*src), 1u);
    EXPECT_FALSE(src->status().ok());
    EXPECT_EQ(src->truncatedTails(), 1u);
    std::remove(path.c_str());
}

TEST(TraceCorruptionTest, WriterRejectsBadChunkSize)
{
    auto w = TraceFileWriter::open(tmpPath("chunk0"), 0);
    ASSERT_FALSE(w.ok());
    EXPECT_EQ(w.status().code(), StatusCode::InvalidArgument);
}

TEST(TraceCorruptionTest, PolicyNamesParse)
{
    EXPECT_TRUE(traceReadPolicyFromName("strict").ok());
    EXPECT_TRUE(traceReadPolicyFromName("skip-corrupt").ok());
    EXPECT_TRUE(traceReadPolicyFromName("stop-at-corrupt").ok());
    auto bad = traceReadPolicyFromName("lenient");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::InvalidArgument);
}
