/**
 * @file
 * Link-level proof that the simulation core stands alone.
 *
 * This program links against ebcp_libsim ONLY (see tools/
 * CMakeLists.txt). If any translation unit in the core grows a
 * dependency on harness code -- an include that drags in a harness
 * symbol, an accidental call into the sweep runner or the stats-JSON
 * exporter -- this target stops linking, turning a layering leak into
 * a build break rather than a silent coupling. scripts/check.sh
 * additionally runs `nm` over the binary and fails if any mangled
 * ebcp::harness symbol appears.
 *
 * The probe also exercises the embedding story end to end: build a
 * simulator from the facade header alone, run a short measurement,
 * and print the config fingerprint plus a couple of results, proving
 * that sim/api.hh really is sufficient for an external embedder.
 */

#include <cstdio>

#include "sim/api.hh"
#include "trace/workloads.hh"

int
main()
{
    ebcp::SimConfig cfg;
    ebcp::PrefetcherParams pf;
    pf.name = "ebcp";

    ebcp::Simulator sim(cfg, pf);
    auto src = ebcp::makeWorkload("database");
    if (!sim.runWarm(*src, 5'000).ok()) {
        std::fprintf(stderr, "libsim_probe: warm-up failed\n");
        return 1;
    }
    ebcp::StatusOr<ebcp::SimResults> r = sim.runMeasure(*src, 5'000);
    if (!r.ok()) {
        std::fprintf(stderr, "libsim_probe: %s\n",
                     r.status().toString().c_str());
        return 1;
    }
    std::printf("libsim_probe: fingerprint=%016llx insts=%llu "
                "cycles=%llu\n",
                static_cast<unsigned long long>(sim.configFingerprint()),
                static_cast<unsigned long long>(r.value().insts),
                static_cast<unsigned long long>(r.value().cycles));
    return 0;
}
