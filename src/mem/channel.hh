/**
 * @file
 * A single direction of the split-transaction interconnect.
 *
 * The channel is modeled as a serially-occupied resource: each request
 * occupies it for line_bytes / bytes_per_tick cycles. Two virtual
 * queues implement the paper's strict priority rule:
 *
 *  - demand traffic waits only behind earlier demand traffic (it is
 *    never delayed by prefetch or table requests), and
 *  - low-priority traffic waits behind *both* demand traffic and
 *    earlier low-priority traffic, and is dropped when its queueing
 *    delay exceeds a configured threshold (bandwidth saturation).
 */

#ifndef EBCP_MEM_CHANNEL_HH
#define EBCP_MEM_CHANNEL_HH

#include <cstdint>

#include "mem/request.hh"
#include "stats/group.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;

/** One bandwidth-limited bus direction. */
class Channel
{
  public:
    /**
     * @param name stat name for this channel ("read" / "write")
     * @param bytes_per_tick raw bandwidth in bytes per core cycle
     * @param drop_delay low-priority queueing delay that causes a drop
     */
    Channel(const std::string &name, double bytes_per_tick,
            Tick drop_delay);

    /**
     * Request the bus at time @p when for @p bytes.
     *
     * @return grant time, or a dropped result for saturated
     *         low-priority requests. The caller adds the memory
     *         latency on top of the grant.
     */
    MemAccessResult request(Tick when, MemPriority pri, unsigned bytes);

    /** Occupancy in ticks of a @p bytes transfer. */
    Tick occupancy(unsigned bytes) const;

    /** Cumulative busy ticks (for utilization reporting). */
    Tick busyTicks() const { return busyTicks_; }

    /** Outstanding backlog at @p now: how far the all-traffic horizon
     * sits past the present, in ticks. The channel is a horizon model
     * with no literal request queue, so this is its honest
     * "queue depth" -- 0 when the bus would grant immediately. */
    Tick
    backlogTicks(Tick now) const
    {
        return lowFree_ > now ? lowFree_ - now : 0;
    }

    /** Change the raw bandwidth (used by bandwidth-sweep experiments). */
    void setBandwidth(double bytes_per_tick);

    StatGroup &stats() { return stats_; }

    /** Lifetime (never reset) request accounting for conservation
     * audits; the Scalar stats above reset at beginMeasurement and so
     * cannot balance against other components' lifetime counts. */
    std::uint64_t requestedLifetime() const { return requestedLifetime_; }
    std::uint64_t grantedLifetime() const { return grantedLifetime_; }
    std::uint64_t droppedLifetime() const { return droppedLifetime_; }

    /** Re-derive structural invariants: every request either granted
     * or dropped, and the all-traffic horizon never behind the
     * demand-only horizon. */
    void audit(AuditContext &ctx) const;

    /** Test-only: leak a phantom request and invert the priority
     * horizons so audit() trips. */
    void corruptForTest();

    /** Serialize or restore all mutable state (checkpointing). */
    void ckpt(ckpt::Archiver &ar);

  private:
    double bytesPerTick_;
    Tick dropDelay_;

    Tick demandFree_ = 0; //!< bus free of demand traffic after this tick
    Tick lowFree_ = 0;    //!< bus free of all traffic after this tick
    Tick busyTicks_ = 0;

    std::uint64_t requestedLifetime_ = 0;
    std::uint64_t grantedLifetime_ = 0;
    std::uint64_t droppedLifetime_ = 0;

    StatGroup stats_;
    Scalar demandRequests_{"demand_requests", "demand transfers granted"};
    Scalar lowRequests_{"low_requests", "low-priority transfers granted"};
    Scalar droppedRequests_{"dropped_requests",
                            "low-priority transfers dropped (saturation)"};
    Scalar bytesMoved_{"bytes", "total bytes transferred"};
    Average demandQueueDelay_{"demand_queue_delay",
                              "ticks demand requests waited for the bus"};
    Average lowQueueDelay_{"low_queue_delay",
                           "ticks low-priority requests waited"};
};

} // namespace ebcp

#endif // EBCP_MEM_CHANNEL_HH
