/**
 * @file
 * Main memory / interconnect configuration.
 *
 * Defaults reproduce Section 4.4 of the paper: a 3 GHz core attached
 * to a 600 MHz split-transaction interconnect with a 16B read bus
 * (9.6 GB/s) and an 8B write bus (4.8 GB/s), and a 500-cycle unloaded
 * memory latency.
 */

#ifndef EBCP_MEM_MEM_CONFIG_HH
#define EBCP_MEM_MEM_CONFIG_HH

#include <cstdint>

#include "util/types.hh"

namespace ebcp
{

/** Configuration of the off-chip memory system. */
struct MemConfig
{
    /** Unloaded round-trip latency of an off-chip access, in ticks. */
    Tick latency = 500;

    /** Read bus bandwidth in bytes per core cycle (9.6 GB/s @ 3 GHz). */
    double readBytesPerTick = 3.2;

    /** Write bus bandwidth in bytes per core cycle (4.8 GB/s @ 3 GHz). */
    double writeBytesPerTick = 1.6;

    /** Transfer unit: last-level cache line size in bytes. */
    unsigned lineBytes = 64;

    /**
     * Queueing delay beyond which a low-priority request is dropped
     * instead of serviced; models the paper's "prefetches may be
     * dropped when available memory bandwidth is saturated".
     */
    Tick lowPriorityDropDelay = 2000;

    /** Scale both bus bandwidths (Figure 8 sensitivity runs). */
    void
    scaleBandwidth(double factor)
    {
        readBytesPerTick *= factor;
        writeBytesPerTick *= factor;
    }

    /** @return read bandwidth in GB/s assuming @p core_ghz core clock. */
    double
    readGBps(double core_ghz = 3.0) const
    {
        return readBytesPerTick * core_ghz;
    }
};

} // namespace ebcp

#endif // EBCP_MEM_MEM_CONFIG_HH
