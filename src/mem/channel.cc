#include "mem/channel.hh"

#include <algorithm>
#include <cmath>

#include "ckpt/archiver.hh"
#include "util/logging.hh"
#include "verify/audit.hh"

namespace ebcp
{

Channel::Channel(const std::string &name, double bytes_per_tick,
                 Tick drop_delay)
    : bytesPerTick_(bytes_per_tick), dropDelay_(drop_delay), stats_(name)
{
    fatal_if(bytes_per_tick <= 0.0, "channel bandwidth must be positive");
    stats_.add(demandRequests_);
    stats_.add(lowRequests_);
    stats_.add(droppedRequests_);
    stats_.add(bytesMoved_);
    stats_.add(demandQueueDelay_);
    stats_.add(lowQueueDelay_);
}

Tick
Channel::occupancy(unsigned bytes) const
{
    return static_cast<Tick>(std::ceil(bytes / bytesPerTick_));
}

void
Channel::setBandwidth(double bytes_per_tick)
{
    fatal_if(bytes_per_tick <= 0.0, "channel bandwidth must be positive");
    bytesPerTick_ = bytes_per_tick;
}

MemAccessResult
Channel::request(Tick when, MemPriority pri, unsigned bytes)
{
    const Tick occ = occupancy(bytes);
    MemAccessResult res;
    ++requestedLifetime_;

    if (pri == MemPriority::Demand) {
        // Demand traffic contends only with earlier demand traffic;
        // low-priority requests yield the bus instantly (the paper's
        // controller never lets them delay a demand access).
        res.grant = std::max(when, demandFree_);
        demandFree_ = res.grant + occ;
        lowFree_ = std::max(lowFree_, demandFree_);
        ++demandRequests_;
        demandQueueDelay_.sample(static_cast<double>(res.grant - when));
    } else {
        res.grant = std::max(when, lowFree_);
        if (res.grant - when > dropDelay_) {
            ++droppedRequests_;
            ++droppedLifetime_;
            res.dropped = true;
            return res;
        }
        lowFree_ = res.grant + occ;
        ++lowRequests_;
        lowQueueDelay_.sample(static_cast<double>(res.grant - when));
    }

    ++grantedLifetime_;
    busyTicks_ += occ;
    bytesMoved_ += bytes;
    return res;
}

void
Channel::audit(AuditContext &ctx) const
{
    ctx.check(requestedLifetime_ == grantedLifetime_ + droppedLifetime_,
              "request_conservation", stats_.name(), ": ",
              requestedLifetime_, " requested but ", grantedLifetime_,
              " granted + ", droppedLifetime_, " dropped");
    ctx.check(lowFree_ >= demandFree_, "priority_horizons_ordered",
              stats_.name(), ": all-traffic horizon @", lowFree_,
              " behind demand-only horizon @", demandFree_);
}

void
Channel::corruptForTest()
{
    ++requestedLifetime_;
    demandFree_ = lowFree_ + 1000;
}


void
Channel::ckpt(ckpt::Archiver &ar)
{
    ar.u64(demandFree_);
    ar.u64(lowFree_);
    ar.u64(busyTicks_);
    ar.u64(requestedLifetime_);
    ar.u64(grantedLifetime_);
    ar.u64(droppedLifetime_);
    stats_.ckpt(ar);
}

} // namespace ebcp
