#include "mem/main_memory.hh"

#include "ckpt/archiver.hh"
#include "verify/audit.hh"

namespace ebcp
{

MainMemory::MainMemory(const MemConfig &cfg)
    : cfg_(cfg),
      read_("read_bus", cfg.readBytesPerTick, cfg.lowPriorityDropDelay),
      write_("write_bus", cfg.writeBytesPerTick, cfg.lowPriorityDropDelay),
      stats_("memory")
{
    stats_.add(reads_);
    stats_.add(writes_);
    stats_.add(prefetchReads_);
    stats_.add(tableReads_);
    stats_.add(tableWrites_);
    stats_.addChild(read_.stats());
    stats_.addChild(write_.stats());
}

MemAccessResult
MainMemory::access(Tick when, MemReqType type)
{
    return access(when, type, cfg_.lineBytes);
}

MemAccessResult
MainMemory::access(Tick when, MemReqType type, unsigned bytes)
{
    const MemPriority pri = priorityOf(type);
    const bool is_write =
        type == MemReqType::StoreWrite || type == MemReqType::TableWrite;
    Channel &chan = is_write ? write_ : read_;
    ++(is_write ? writesIssuedLifetime_ : readsIssuedLifetime_);

    MemAccessResult res = chan.request(when, pri, bytes);
    if (res.dropped)
        return res;

    if (is_write) {
        // The writer does not wait for the DRAM array under weak
        // consistency; completion is when the bus transfer is done.
        res.complete = res.grant + chan.occupancy(bytes);
        ++writes_;
        if (type == MemReqType::TableWrite)
            ++tableWrites_;
    } else {
        res.complete = res.grant + cfg_.latency;
        ++reads_;
        if (type == MemReqType::Prefetch)
            ++prefetchReads_;
        else if (type == MemReqType::TableRead)
            ++tableReads_;
    }
    return res;
}

void
MainMemory::setBandwidthScale(double factor)
{
    read_.setBandwidth(cfg_.readBytesPerTick * factor);
    write_.setBandwidth(cfg_.writeBytesPerTick * factor);
}

void
MainMemory::audit(AuditContext &ctx) const
{
    ctx.check(readsIssuedLifetime_ == read_.requestedLifetime(),
              "read_request_conservation", readsIssuedLifetime_,
              " reads issued but the read bus saw ",
              read_.requestedLifetime());
    ctx.check(writesIssuedLifetime_ == write_.requestedLifetime(),
              "write_request_conservation", writesIssuedLifetime_,
              " writes issued but the write bus saw ",
              write_.requestedLifetime());
    read_.audit(ctx);
    write_.audit(ctx);
}

void
MainMemory::corruptForTest()
{
    ++readsIssuedLifetime_;
}


void
MainMemory::ckpt(ckpt::Archiver &ar)
{
    read_.ckpt(ar);
    write_.ckpt(ar);
    ar.u64(readsIssuedLifetime_);
    ar.u64(writesIssuedLifetime_);
    stats_.ckpt(ar);
}

} // namespace ebcp
