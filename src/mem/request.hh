/**
 * @file
 * Memory request classification.
 *
 * The paper's memory controller rule (Section 3.4.4): demand accesses
 * are never delayed by prefetches or correlation-table traffic, and
 * table updates are the lowest priority of all. The enum order encodes
 * that priority (lower value = higher priority).
 */

#ifndef EBCP_MEM_REQUEST_HH
#define EBCP_MEM_REQUEST_HH

#include <string>
#include <type_traits>

#include "util/types.hh"

namespace ebcp
{

/** Who generated an off-chip request. */
enum class MemReqType
{
    DemandInst,   //!< demand instruction fetch (L2 miss)
    DemandLoad,   //!< demand load (L2 miss)
    StoreWrite,   //!< store / writeback traffic on the write bus
    Prefetch,     //!< prefetcher-generated line read
    TableRead,    //!< correlation table read (lookup or pre-update)
    TableWrite,   //!< correlation table update / LRU write
};

/** Scheduling priority of an off-chip request. */
enum class MemPriority
{
    Demand = 0,   //!< demand misses; never delayed by lower classes
    Low = 1,      //!< prefetches and predictor-table traffic
};

/** @return the scheduling priority class of a request type. */
constexpr MemPriority
priorityOf(MemReqType t)
{
    switch (t) {
      case MemReqType::DemandInst:
      case MemReqType::DemandLoad:
      case MemReqType::StoreWrite:
        return MemPriority::Demand;
      default:
        return MemPriority::Low;
    }
}

/** @return a short printable name for a request type. */
const char *memReqTypeName(MemReqType t);

/** Outcome of presenting a request to the memory system. */
struct MemAccessResult
{
    Tick grant = 0;      //!< when the bus was granted
    Tick complete = 0;   //!< when the data is back on chip
    bool dropped = false; //!< low-priority request dropped (saturation)
};

// The per-miss request path hands these around by value; keeping the
// type trivially copyable guarantees the memory system never touches
// the heap per request (the zero-steady-state-allocation contract the
// throughput tests assert).
static_assert(std::is_trivially_copyable_v<MemAccessResult>);

} // namespace ebcp

#endif // EBCP_MEM_REQUEST_HH
