#include "mem/request.hh"

namespace ebcp
{

const char *
memReqTypeName(MemReqType t)
{
    switch (t) {
      case MemReqType::DemandInst: return "demand-inst";
      case MemReqType::DemandLoad: return "demand-load";
      case MemReqType::StoreWrite: return "store-write";
      case MemReqType::Prefetch:   return "prefetch";
      case MemReqType::TableRead:  return "table-read";
      case MemReqType::TableWrite: return "table-write";
    }
    return "unknown";
}

} // namespace ebcp
