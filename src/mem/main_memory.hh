/**
 * @file
 * The off-chip memory system: latency plus read/write bus contention.
 */

#ifndef EBCP_MEM_MAIN_MEMORY_HH
#define EBCP_MEM_MAIN_MEMORY_HH

#include "mem/channel.hh"
#include "mem/mem_config.hh"
#include "mem/request.hh"
#include "stats/group.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;

/**
 * Main memory with a fixed unloaded latency and bandwidth-limited,
 * priority-scheduled read and write buses.
 *
 * Timing model: completion = bus grant + unloaded latency. The grant
 * accounts for queueing behind earlier traffic of equal-or-higher
 * priority, so a loaded system sees latencies above the unloaded 500
 * cycles, and saturated low-priority traffic is dropped.
 */
class MainMemory
{
  public:
    explicit MainMemory(const MemConfig &cfg);

    /**
     * Issue a request of type @p type at time @p when.
     *
     * Reads complete when the line is back on chip; writes complete at
     * bus grant + occupancy (the requester does not wait for them
     * under weak consistency).
     */
    MemAccessResult access(Tick when, MemReqType type);

    /** As access(), but with an explicit transfer size in bytes. */
    MemAccessResult access(Tick when, MemReqType type, unsigned bytes);

    const MemConfig &config() const { return cfg_; }

    /** Change bus bandwidth mid-experiment (Figure 8 sweeps). */
    void setBandwidthScale(double factor);

    StatGroup &stats() { return stats_; }
    Channel &readChannel() { return read_; }
    Channel &writeChannel() { return write_; }

    /**
     * Hard upper bound on complete - when for any *served*
     * low-priority read (prefetch, table): such a read queues at most
     * the drop threshold -- beyond that it is dropped, not served --
     * and then waits the unloaded latency. Audits use this to catch
     * timing faults that inflate table-read latency.
     */
    Tick
    maxLowPriorityReadLatency() const
    {
        return cfg_.lowPriorityDropDelay + cfg_.latency;
    }

    /** Re-derive request conservation: every read/write issued here
     * was either granted or dropped by its channel, and the channels'
     * own horizons are consistent. */
    void audit(AuditContext &ctx) const;

    /** Test-only: record a read that never reached a channel so
     * audit() trips. */
    void corruptForTest();

    /** Serialize or restore all mutable state (checkpointing). */
    void ckpt(ckpt::Archiver &ar);

  private:
    MemConfig cfg_;
    Channel read_;
    Channel write_;

    std::uint64_t readsIssuedLifetime_ = 0;
    std::uint64_t writesIssuedLifetime_ = 0;

    StatGroup stats_;
    Scalar reads_{"reads", "read requests serviced"};
    Scalar writes_{"writes", "write requests serviced"};
    Scalar prefetchReads_{"prefetch_reads", "prefetch line reads serviced"};
    Scalar tableReads_{"table_reads", "correlation-table reads serviced"};
    Scalar tableWrites_{"table_writes", "correlation-table writes serviced"};
};

} // namespace ebcp

#endif // EBCP_MEM_MAIN_MEMORY_HH
