/**
 * @file
 * Measured results of one simulation run, in the units the paper
 * reports (Table 1 / Figures 4-9).
 */

#ifndef EBCP_SIM_RESULTS_HH
#define EBCP_SIM_RESULTS_HH

#include <cstdint>

namespace ebcp
{

/** Metrics from a measurement window. */
struct SimResults
{
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    std::uint64_t epochs = 0;

    double cpi = 0.0;
    double epochsPer1k = 0.0;      //!< Table 1's "epochs per 1000 insts"
    double l2InstMissPer1k = 0.0;  //!< off-chip inst misses / 1000 insts
    double l2LoadMissPer1k = 0.0;  //!< off-chip load misses / 1000 insts

    std::uint64_t usefulPrefetches = 0;
    std::uint64_t issuedPrefetches = 0;
    std::uint64_t droppedPrefetches = 0;

    // Lifecycle split of the useful prefetches (PrefetchLedger):
    // every issued prefetch ends as exactly one of timely hit, late
    // hit, evicted-unused, or still-resident-unused.
    std::uint64_t timelyPrefetches = 0; //!< used with data on chip
    std::uint64_t latePrefetches = 0;   //!< used while still in flight
    std::uint64_t earlyEvictedPrefetches = 0; //!< replaced before use

    /** Fraction of baseline misses averted by the prefetch buffer. */
    double coverage = 0.0;

    /** Fraction of issued prefetches that were used. */
    double accuracy = 0.0;

    /** Fraction of used prefetches whose data arrived in time. */
    double timeliness = 0.0;

    double readBusUtil = 0.0;  //!< busy fraction of the read bus
    double writeBusUtil = 0.0; //!< busy fraction of the write bus
};

/** Percent improvement of @p pf over @p base (paper's primary metric:
 * overall performance relative to no prefetching). */
inline double
improvementPct(const SimResults &base, const SimResults &pf)
{
    if (pf.cpi <= 0.0)
        return 0.0;
    return (base.cpi / pf.cpi - 1.0) * 100.0;
}

/** Percent reduction of epochs-per-instruction. */
inline double
epiReductionPct(const SimResults &base, const SimResults &pf)
{
    if (base.epochsPer1k <= 0.0)
        return 0.0;
    return (1.0 - pf.epochsPer1k / base.epochsPer1k) * 100.0;
}

} // namespace ebcp

#endif // EBCP_SIM_RESULTS_HH
