#include "sim/prefetcher_factory.hh"

#include "util/logging.hh"
#include "util/str.hh"

namespace ebcp
{

StatusOr<std::unique_ptr<Prefetcher>>
tryCreatePrefetcher(const PrefetcherParams &p)
{
    const std::string &n = p.name;

    if (n == "null")
        return std::make_unique<NullPrefetcher>();

    if (n == "ebcp")
        return std::make_unique<EpochBasedPrefetcher>(p.ebcp);

    if (n == "ebcp-minus") {
        EbcpConfig c = p.ebcp;
        c.minusVariant = true;
        return std::make_unique<EpochBasedPrefetcher>(c);
    }

    if (n == "stream")
        return std::make_unique<StreamPrefetcher>(p.stream);

    if (n == "nextline")
        return std::make_unique<NextLinePrefetcher>(p.nextline);

    if (n == "ghb")
        return std::make_unique<GhbPrefetcher>(p.ghb, "ghb");
    if (n == "ghb-small")
        return std::make_unique<GhbPrefetcher>(GhbConfig::small(),
                                               "ghb_small");
    if (n == "ghb-large")
        return std::make_unique<GhbPrefetcher>(GhbConfig::large(),
                                               "ghb_large");

    if (n == "tcp")
        return std::make_unique<TcpPrefetcher>(p.tcp, "tcp");
    if (n == "tcp-small")
        return std::make_unique<TcpPrefetcher>(TcpConfig::small(),
                                               "tcp_small");
    if (n == "tcp-large")
        return std::make_unique<TcpPrefetcher>(TcpConfig::large(),
                                               "tcp_large");

    if (n == "sms")
        return std::make_unique<SmsPrefetcher>(p.sms);

    if (n == "solihin")
        return std::make_unique<SolihinPrefetcher>(p.solihin, "solihin");
    if (n == "solihin-3-2")
        return std::make_unique<SolihinPrefetcher>(
            SolihinConfig::depth3width2(), "solihin_3_2");
    if (n == "solihin-6-1")
        return std::make_unique<SolihinPrefetcher>(
            SolihinConfig::depth6width1(), "solihin_6_1");

    std::string hint = nearestMatch(n, prefetcherNames());
    return notFoundError("unknown prefetcher '", n, "'",
                         hint.empty()
                             ? std::string()
                             : " (did you mean '" + hint + "'?)");
}

std::unique_ptr<Prefetcher>
createPrefetcher(const PrefetcherParams &p)
{
    StatusOr<std::unique_ptr<Prefetcher>> r = tryCreatePrefetcher(p);
    fatal_if(!r.ok(), r.status().toString());
    return r.take();
}

std::vector<std::string>
prefetcherNames()
{
    return {"null",      "ebcp",        "ebcp-minus",  "stream",
            "nextline",  "ghb-small",   "ghb-large",   "tcp-small",
            "tcp-large", "sms",         "solihin-3-2", "solihin-6-1"};
}

} // namespace ebcp
