#include "sim/prefetcher_factory.hh"

#include "util/logging.hh"
#include "util/str.hh"

namespace ebcp
{

namespace
{

/** Reject a scheme's configuration before running its constructor
 * (whose fatal_if guards remain as a backstop for direct use). */
template <typename Config, typename Fn>
StatusOr<std::unique_ptr<Prefetcher>>
makeValidated(const Config &cfg, Fn &&make)
{
    if (Status s = cfg.validate(); !s.ok())
        return s;
    return make(cfg);
}

} // namespace

StatusOr<std::unique_ptr<Prefetcher>>
tryCreatePrefetcher(const PrefetcherParams &p)
{
    const std::string &n = p.name;

    if (n == "null")
        return std::make_unique<NullPrefetcher>();

    if (n == "ebcp")
        return makeValidated(p.ebcp, [](const EbcpConfig &c) {
            return std::make_unique<EpochBasedPrefetcher>(c);
        });

    if (n == "ebcp-minus") {
        EbcpConfig c = p.ebcp;
        c.minusVariant = true;
        return makeValidated(c, [](const EbcpConfig &mc) {
            return std::make_unique<EpochBasedPrefetcher>(mc);
        });
    }

    if (n == "stream")
        return makeValidated(p.stream,
                             [](const StreamPrefetcherConfig &c) {
            return std::make_unique<StreamPrefetcher>(c);
        });

    if (n == "nextline")
        return makeValidated(p.nextline, [](const NextLineConfig &c) {
            return std::make_unique<NextLinePrefetcher>(c);
        });

    if (n == "ghb")
        return makeValidated(p.ghb, [](const GhbConfig &c) {
            return std::make_unique<GhbPrefetcher>(c, "ghb");
        });
    if (n == "ghb-small")
        return std::make_unique<GhbPrefetcher>(GhbConfig::small(),
                                               "ghb_small");
    if (n == "ghb-large")
        return std::make_unique<GhbPrefetcher>(GhbConfig::large(),
                                               "ghb_large");

    if (n == "tcp")
        return makeValidated(p.tcp, [](const TcpConfig &c) {
            return std::make_unique<TcpPrefetcher>(c, "tcp");
        });
    if (n == "tcp-small")
        return std::make_unique<TcpPrefetcher>(TcpConfig::small(),
                                               "tcp_small");
    if (n == "tcp-large")
        return std::make_unique<TcpPrefetcher>(TcpConfig::large(),
                                               "tcp_large");

    if (n == "sms")
        return makeValidated(p.sms, [](const SmsConfig &c) {
            return std::make_unique<SmsPrefetcher>(c);
        });

    if (n == "solihin")
        return makeValidated(p.solihin, [](const SolihinConfig &c) {
            return std::make_unique<SolihinPrefetcher>(c, "solihin");
        });
    if (n == "solihin-3-2")
        return std::make_unique<SolihinPrefetcher>(
            SolihinConfig::depth3width2(), "solihin_3_2");
    if (n == "solihin-6-1")
        return std::make_unique<SolihinPrefetcher>(
            SolihinConfig::depth6width1(), "solihin_6_1");

    if (n == "dcpt")
        return makeValidated(p.dcpt, [](const DcptConfig &c) {
            return std::make_unique<DcptPrefetcher>(c);
        });

    if (n == "amc")
        return makeValidated(p.amc, [](const AmcConfig &c) {
            return std::make_unique<AmcPrefetcher>(c);
        });

    if (n == "composite") {
        if (Status s = p.composite.validate(); !s.ok())
            return s;
        std::vector<std::unique_ptr<Prefetcher>> children;
        for (const std::string &child : p.composite.engines) {
            PrefetcherParams cp = p;
            cp.name = child;
            StatusOr<std::unique_ptr<Prefetcher>> c =
                tryCreatePrefetcher(cp);
            if (!c.ok())
                return invalidArgError("composite child '", child,
                                       "': ",
                                       c.status().toString());
            children.push_back(c.take());
        }
        return std::make_unique<CompositePrefetcher>(
            p.composite, std::move(children));
    }

    std::string hint = nearestMatch(n, prefetcherNames());
    return notFoundError("unknown prefetcher '", n, "'",
                         hint.empty()
                             ? std::string()
                             : " (did you mean '" + hint + "'?)");
}

std::unique_ptr<Prefetcher>
createPrefetcher(const PrefetcherParams &p)
{
    StatusOr<std::unique_ptr<Prefetcher>> r = tryCreatePrefetcher(p);
    fatal_if(!r.ok(), r.status().toString());
    return r.take();
}

std::vector<std::string>
prefetcherNames()
{
    return {"null",      "ebcp",        "ebcp-minus",  "stream",
            "nextline",  "ghb-small",   "ghb-large",   "tcp-small",
            "tcp-large", "sms",         "solihin-3-2", "solihin-6-1",
            "dcpt",      "amc",         "composite"};
}

} // namespace ebcp
