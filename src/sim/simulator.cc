#include "sim/simulator.hh"

#include <ostream>
#include <sstream>

#include "ckpt/checkpoint.hh"
#include "sim/ckpt_io.hh"
#include "sim/watchdog.hh"
#include "util/logging.hh"
#include "util/profiler.hh"

namespace ebcp
{

Simulator::Simulator(const SimConfig &cfg, const PrefetcherParams &pf)
    : cfg_(cfg), pf_(pf), mem_(cfg.mem), prefetcher_(createPrefetcher(pf))
{
    l2side_ = std::make_unique<L2Subsystem>(cfg_, mem_, *prefetcher_);
    hier_ = std::make_unique<Hierarchy>(cfg_, *l2side_, 0);
    core_ = std::make_unique<CoreModel>(cfg_.core, *hier_);

    // The EBCP's table entries can span multiple transfer units at
    // high degree; charge its table traffic accordingly.
    if (auto *e = dynamic_cast<EpochBasedPrefetcher *>(prefetcher_.get()))
        l2side_->setTableTransferBytes(
            e->table().config().entryTransferBytes());
}

Status
Simulator::stallStatus()
{
    WatchdogContext ctx;
    ctx.tracePolicy = tracePolicyName_;
    std::ostringstream json;
    JsonWriter w(json);
    progressDiagnosticJson(w, "", *core_, *l2side_, mem_, *prefetcher_,
                           ctx);
    lastDiagnosticJson_ = json.str();
    return stalledError(progressDiagnostic("", *core_, *l2side_, mem_,
                                           *prefetcher_, ctx));
}

Status
Simulator::configureAudit(const AuditOptions &opts)
{
    if (!opts.enabled()) {
        core_->setAuditor(nullptr);
        l2side_->setAuditor(nullptr);
        auditor_.reset();
        return Status();
    }
#if !EBCP_AUDIT_ENABLED
    return invalidArgError(
        "auditing requested (cadence is not \"off\") but this build "
        "was configured with -DEBCP_AUDIT=OFF and has no hook sites");
#else
    auditor_ = std::make_unique<Auditor>(opts);
    AuditRegistry &reg = auditor_->registry();
    reg.add("core", [this](AuditContext &c) { core_->audit(c); });
    reg.add("l2", [this](AuditContext &c) { l2side_->l2().audit(c); });
    reg.add("l2.prefetch_buffer", [this](AuditContext &c) {
        l2side_->prefetchBuffer().audit(c);
    });
    reg.add("l2.mshrs",
            [this](AuditContext &c) { l2side_->mshrs().audit(c); });
    reg.add("l2.cross", [this](AuditContext &c) { l2side_->audit(c); });
    // The demand tracker's internal span invariants, plus cross-pass
    // monotonicity of the epoch ids it hands out.
    reg.add("epochs", [this, last = EpochId(0)](AuditContext &c) mutable {
        EpochTracker &t = l2side_->epochTracker();
        t.audit(c);
        c.check(t.currentEpoch() >= last, "epoch_ids_monotonic",
                "epoch id went from ", last, " back to ",
                t.currentEpoch());
        last = t.currentEpoch();
    });
    reg.add("memory", [this](AuditContext &c) { mem_.audit(c); });
    reg.add("prefetcher",
            [this](AuditContext &c) { prefetcher_->audit(c); });
    if (auto *e = dynamic_cast<EpochBasedPrefetcher *>(prefetcher_.get())) {
        // Conservation and latency bounds between the control and the
        // memory system live in neither component.
        reg.add("ebcp.table_traffic", [this, e](AuditContext &c) {
            if (!e->config().onChipTable)
                c.check(e->tableReadAttemptsLifetime() ==
                            l2side_->tableReadsServedLifetime(),
                        "table_read_conservation",
                        e->tableReadAttemptsLifetime(),
                        " table reads attempted by the control but ",
                        l2side_->tableReadsServedLifetime(),
                        " reached the memory system");
            c.check(e->maxTableReadTicks() <=
                        mem_.maxLowPriorityReadLatency(),
                    "table_read_latency_bounded",
                    "a served table read took ", e->maxTableReadTicks(),
                    " ticks, above the served-read bound of ",
                    mem_.maxLowPriorityReadLatency());
        });
    }
    core_->setAuditor(auditor_.get());
    l2side_->setAuditor(auditor_.get());
    return Status();
#endif
}

StatusOr<SimResults>
Simulator::tryRun(TraceSource &src, std::uint64_t warm_insts,
                  std::uint64_t measure_insts)
{
    if (Status s = runWarm(src, warm_insts); !s.ok())
        return s;
    return runMeasure(src, measure_insts);
}

Status
Simulator::runWarm(TraceSource &src, std::uint64_t warm_insts)
{
    core_->setWatchdog(cfg_.watchdogTicks);

    core_->run(src, warm_insts);
    if (core_->watchdogTripped())
        return stallStatus();
    if (auditor_ && auditor_->abortRequested())
        return auditor_->toStatus();
    return Status();
}

StatusOr<SimResults>
Simulator::runMeasure(TraceSource &src, std::uint64_t measure_insts)
{
    core_->setWatchdog(cfg_.watchdogTicks);

    core_->beginMeasurement();
    hier_->beginMeasurement();
    l2side_->beginMeasurement();
    mem_.stats().resetAll();
    readBusyMark_ = mem_.readChannel().busyTicks();
    writeBusyMark_ = mem_.writeChannel().busyTicks();

    if (!sampler_) {
        core_->run(src, measure_insts);
        if (core_->watchdogTripped())
            return stallStatus();
        if (auditor_ && auditor_->abortRequested())
            return auditor_->toStatus();
    } else {
        // Drive the window in interval-sized chunks so the sampler
        // sees exact boundaries. Bit-exact vs one run() call: the
        // core's loop state lives entirely in its members.
        const std::uint64_t interval = sampler_->interval();
        std::uint64_t done = 0;
        while (done < measure_insts) {
            const std::uint64_t chunk = std::min(
                interval - done % interval, measure_insts - done);
            core_->run(src, chunk);
            if (core_->watchdogTripped())
                return stallStatus();
            if (auditor_ && auditor_->abortRequested())
                return auditor_->toStatus();
            const std::uint64_t got = core_->measuredInsts();
            if (got == done)
                break; // trace exhausted
            done = got;
            sampler_->sample(done);
            if (traceLog_)
                sampleCounterTracks();
        }
    }
    // One final pass so every configured run ends with at least one
    // full audit, whatever the cadence saw during the window.
    if (auditor_) {
        auditor_->runNow(core_->now());
        if (auditor_->abortRequested())
            return auditor_->toStatus();
    }
    return collect();
}

SimResults
Simulator::run(TraceSource &src, std::uint64_t warm_insts,
               std::uint64_t measure_insts)
{
    StatusOr<SimResults> r = tryRun(src, warm_insts, measure_insts);
    fatal_if(!r.ok(), r.status().toString());
    return r.take();
}

void
Simulator::sampleCounterTracks()
{
    const Tick now = core_->now();
    traceLog_->counterSample(
        "mshr_occupancy", now,
        static_cast<double>(l2side_->mshrs().occupancy()));
    traceLog_->counterSample(
        "pf_buffer_occupancy", now,
        static_cast<double>(l2side_->prefetchBuffer().validCount()));
    traceLog_->counterSample(
        "channel_backlog_ticks", now,
        static_cast<double>(mem_.readChannel().backlogTicks(now)));
    if (auto *e = dynamic_cast<EpochBasedPrefetcher *>(prefetcher_.get()))
        traceLog_->counterSample(
            "corr_table_fill", now,
            static_cast<double>(e->table().populatedEntries()));
    const PrefetchLedger &ledger = l2side_->ledger();
    for (unsigned s = 0; s < PrefetchLedger::kMaxSources; ++s) {
        const PrefetchLedger::SourceCounters &sc = ledger.source(s);
        if (sc.issued == 0)
            continue;
        traceLog_->counterSample(
            "pf_accuracy_src" + std::to_string(s), now,
            static_cast<double>(sc.used()) /
                static_cast<double>(sc.issued));
    }
}

SimResults
Simulator::collect()
{
    SimResults r;
    r.insts = core_->measuredInsts();
    r.cycles = core_->measuredCycles();
    r.cpi = core_->cpi();

    r.epochs = l2side_->epochTracker().epochs();
    const double per1k =
        r.insts ? 1000.0 / static_cast<double>(r.insts) : 0.0;
    r.epochsPer1k = r.epochs * per1k;
    r.l2InstMissPer1k = l2side_->offChipInst() * per1k;
    r.l2LoadMissPer1k = l2side_->offChipLoad() * per1k;

    r.usefulPrefetches = l2side_->usefulPrefetches();
    r.issuedPrefetches = l2side_->issuedPrefetches();
    r.droppedPrefetches = l2side_->droppedPrefetches();

    const PrefetchLedger &ledger = l2side_->ledger();
    r.timelyPrefetches = ledger.timelyHits();
    r.latePrefetches = ledger.lateHits();
    r.earlyEvictedPrefetches = ledger.evictedUnused();
    r.timeliness = ledger.timeliness();

    const std::uint64_t misses =
        l2side_->offChipInst() + l2side_->offChipLoad();
    const std::uint64_t baseline_misses = misses + r.usefulPrefetches;
    r.coverage = baseline_misses
                     ? static_cast<double>(r.usefulPrefetches) /
                           static_cast<double>(baseline_misses)
                     : 0.0;
    r.accuracy = r.issuedPrefetches
                     ? static_cast<double>(r.usefulPrefetches) /
                           static_cast<double>(r.issuedPrefetches)
                     : 0.0;

    if (r.cycles) {
        r.readBusUtil =
            static_cast<double>(mem_.readChannel().busyTicks() -
                                readBusyMark_) /
            static_cast<double>(r.cycles);
        r.writeBusUtil =
            static_cast<double>(mem_.writeChannel().busyTicks() -
                                writeBusyMark_) /
            static_cast<double>(r.cycles);
    }
    return r;
}

std::uint64_t
Simulator::configFingerprint() const
{
    return ebcp::configFingerprint(cfg_, pf_, 1);
}

StatusOr<std::string>
Simulator::serializeCheckpoint(TraceSource &src)
{
    EBCP_PROFILE_SCOPE(Ckpt);
    ckpt::CheckpointWriter w(configFingerprint());
    Status s;
    auto add = [&](const char *name, auto &&fill) {
        if (s.ok())
            s = w.section(name, fill);
    };
    add("core", [this](ckpt::Archiver &ar) { core_->ckpt(ar); });
    add("l1", [this](ckpt::Archiver &ar) { hier_->ckpt(ar); });
    add("l2side", [this](ckpt::Archiver &ar) { l2side_->ckpt(ar); });
    add("mem", [this](ckpt::Archiver &ar) { mem_.ckpt(ar); });
    add("prefetcher",
        [this](ckpt::Archiver &ar) { prefetcher_->ckpt(ar); });
    add("trace", [&src](ckpt::Archiver &ar) { src.ckpt(ar); });
    add("simulator", [this](ckpt::Archiver &ar) {
        ar.u64(readBusyMark_);
        ar.u64(writeBusyMark_);
    });
    if (!s.ok())
        return s;
    return w.serialize();
}

Status
Simulator::saveCheckpoint(const std::string &path, TraceSource &src)
{
    StatusOr<std::string> blob = serializeCheckpoint(src);
    if (!blob.ok())
        return blob.status();
    return ckpt::atomicWriteFile(path, blob.value());
}

Status
Simulator::restoreCheckpoint(const std::string &buffer, TraceSource &src)
{
    EBCP_PROFILE_SCOPE(Ckpt);
    StatusOr<ckpt::CheckpointReader> reader =
        ckpt::CheckpointReader::fromBuffer(buffer, configFingerprint());
    if (!reader.ok())
        return reader.status();
    const ckpt::CheckpointReader &r = reader.value();
    Status s;
    auto load = [&](const char *name, auto &&fn) {
        if (s.ok())
            s = r.section(name, fn);
    };
    load("core", [this](ckpt::Archiver &ar) { core_->ckpt(ar); });
    load("l1", [this](ckpt::Archiver &ar) { hier_->ckpt(ar); });
    load("l2side", [this](ckpt::Archiver &ar) { l2side_->ckpt(ar); });
    load("mem", [this](ckpt::Archiver &ar) { mem_.ckpt(ar); });
    load("prefetcher",
         [this](ckpt::Archiver &ar) { prefetcher_->ckpt(ar); });
    load("trace", [&src](ckpt::Archiver &ar) { src.ckpt(ar); });
    load("simulator", [this](ckpt::Archiver &ar) {
        ar.u64(readBusyMark_);
        ar.u64(writeBusyMark_);
    });
    return s;
}

Status
Simulator::restoreCheckpointFile(const std::string &path, TraceSource &src)
{
    StatusOr<std::string> data = ckpt::readFile(path);
    if (!data.ok())
        return data.status();
    return restoreCheckpoint(data.value(), src)
        .withContext(logFormat("restoring checkpoint '", path, "'"));
}

void
Simulator::dumpStats(std::ostream &os)
{
    EBCP_PROFILE_SCOPE(Stats);
    core_->stats().dump(os);
    hier_->stats().dump(os);
    l2side_->stats().dump(os);
    mem_.stats().dump(os);
}

void
Simulator::dumpStatsJson(JsonWriter &w)
{
    EBCP_PROFILE_SCOPE(Stats);
    w.beginObject();
    for (StatGroup *g : {&core_->stats(), &hier_->stats(),
                         &l2side_->stats(), &mem_.stats()}) {
        w.key(g->name());
        g->dumpJson(w);
    }
    w.endObject();
}

SimResults
runOnce(const SimConfig &cfg, const PrefetcherParams &pf, TraceSource &src,
        std::uint64_t warm_insts, std::uint64_t measure_insts)
{
    Simulator sim(cfg, pf);
    return sim.run(src, warm_insts, measure_insts);
}

} // namespace ebcp
