#include "sim/simulator.hh"

#include <ostream>
#include <sstream>

#include "sim/watchdog.hh"
#include "util/logging.hh"

namespace ebcp
{

Simulator::Simulator(const SimConfig &cfg, const PrefetcherParams &pf)
    : cfg_(cfg), mem_(cfg.mem), prefetcher_(createPrefetcher(pf))
{
    l2side_ = std::make_unique<L2Subsystem>(cfg_, mem_, *prefetcher_);
    hier_ = std::make_unique<Hierarchy>(cfg_, *l2side_, 0);
    core_ = std::make_unique<CoreModel>(cfg_.core, *hier_);

    // The EBCP's table entries can span multiple transfer units at
    // high degree; charge its table traffic accordingly.
    if (auto *e = dynamic_cast<EpochBasedPrefetcher *>(prefetcher_.get()))
        l2side_->setTableTransferBytes(
            e->table().config().entryTransferBytes());
}

Status
Simulator::stallStatus()
{
    WatchdogContext ctx;
    ctx.tracePolicy = tracePolicyName_;
    std::ostringstream json;
    JsonWriter w(json);
    progressDiagnosticJson(w, "", *core_, *l2side_, mem_, *prefetcher_,
                           ctx);
    lastDiagnosticJson_ = json.str();
    return stalledError(progressDiagnostic("", *core_, *l2side_, mem_,
                                           *prefetcher_, ctx));
}

StatusOr<SimResults>
Simulator::tryRun(TraceSource &src, std::uint64_t warm_insts,
                  std::uint64_t measure_insts)
{
    core_->setWatchdog(cfg_.watchdogTicks);

    core_->run(src, warm_insts);
    if (core_->watchdogTripped())
        return stallStatus();

    core_->beginMeasurement();
    hier_->beginMeasurement();
    l2side_->beginMeasurement();
    mem_.stats().resetAll();
    readBusyMark_ = mem_.readChannel().busyTicks();
    writeBusyMark_ = mem_.writeChannel().busyTicks();

    if (!sampler_) {
        core_->run(src, measure_insts);
        if (core_->watchdogTripped())
            return stallStatus();
    } else {
        // Drive the window in interval-sized chunks so the sampler
        // sees exact boundaries. Bit-exact vs one run() call: the
        // core's loop state lives entirely in its members.
        const std::uint64_t interval = sampler_->interval();
        std::uint64_t done = 0;
        while (done < measure_insts) {
            const std::uint64_t chunk = std::min(
                interval - done % interval, measure_insts - done);
            core_->run(src, chunk);
            if (core_->watchdogTripped())
                return stallStatus();
            const std::uint64_t got = core_->measuredInsts();
            if (got == done)
                break; // trace exhausted
            done = got;
            sampler_->sample(done);
        }
    }
    return collect();
}

SimResults
Simulator::run(TraceSource &src, std::uint64_t warm_insts,
               std::uint64_t measure_insts)
{
    StatusOr<SimResults> r = tryRun(src, warm_insts, measure_insts);
    fatal_if(!r.ok(), r.status().toString());
    return r.take();
}

SimResults
Simulator::collect()
{
    SimResults r;
    r.insts = core_->measuredInsts();
    r.cycles = core_->measuredCycles();
    r.cpi = core_->cpi();

    r.epochs = l2side_->epochTracker().epochs();
    const double per1k =
        r.insts ? 1000.0 / static_cast<double>(r.insts) : 0.0;
    r.epochsPer1k = r.epochs * per1k;
    r.l2InstMissPer1k = l2side_->offChipInst() * per1k;
    r.l2LoadMissPer1k = l2side_->offChipLoad() * per1k;

    r.usefulPrefetches = l2side_->usefulPrefetches();
    r.issuedPrefetches = l2side_->issuedPrefetches();
    r.droppedPrefetches = l2side_->droppedPrefetches();

    const PrefetchLedger &ledger = l2side_->ledger();
    r.timelyPrefetches = ledger.timelyHits();
    r.latePrefetches = ledger.lateHits();
    r.earlyEvictedPrefetches = ledger.evictedUnused();
    r.timeliness = ledger.timeliness();

    const std::uint64_t misses =
        l2side_->offChipInst() + l2side_->offChipLoad();
    const std::uint64_t baseline_misses = misses + r.usefulPrefetches;
    r.coverage = baseline_misses
                     ? static_cast<double>(r.usefulPrefetches) /
                           static_cast<double>(baseline_misses)
                     : 0.0;
    r.accuracy = r.issuedPrefetches
                     ? static_cast<double>(r.usefulPrefetches) /
                           static_cast<double>(r.issuedPrefetches)
                     : 0.0;

    if (r.cycles) {
        r.readBusUtil =
            static_cast<double>(mem_.readChannel().busyTicks() -
                                readBusyMark_) /
            static_cast<double>(r.cycles);
        r.writeBusUtil =
            static_cast<double>(mem_.writeChannel().busyTicks() -
                                writeBusyMark_) /
            static_cast<double>(r.cycles);
    }
    return r;
}

void
Simulator::dumpStats(std::ostream &os)
{
    core_->stats().dump(os);
    hier_->stats().dump(os);
    l2side_->stats().dump(os);
    mem_.stats().dump(os);
}

void
Simulator::dumpStatsJson(JsonWriter &w)
{
    w.beginObject();
    for (StatGroup *g : {&core_->stats(), &hier_->stats(),
                         &l2side_->stats(), &mem_.stats()}) {
        w.key(g->name());
        g->dumpJson(w);
    }
    w.endObject();
}

SimResults
runOnce(const SimConfig &cfg, const PrefetcherParams &pf, TraceSource &src,
        std::uint64_t warm_insts, std::uint64_t measure_insts)
{
    Simulator sim(cfg, pf);
    return sim.run(src, warm_insts, measure_insts);
}

} // namespace ebcp
