/**
 * @file
 * Configuration identity for checkpoints.
 *
 * A checkpoint is only meaningful against the exact system that wrote
 * it: cache geometry, core widths, memory timing, prefetcher choice
 * and parameters all shape the serialized state. These helpers render
 * that identity into a canonical byte string (via a save-mode
 * Archiver) and hash it with FNV-1a, so CheckpointReader can reject a
 * restore against a mismatched configuration with a coded
 * InvalidArgument instead of undefined behaviour.
 */

#ifndef EBCP_SIM_CKPT_IO_HH
#define EBCP_SIM_CKPT_IO_HH

#include <cstdint>

#include "ckpt/archiver.hh"
#include "sim/prefetcher_factory.hh"
#include "sim/sim_config.hh"

namespace ebcp
{

/** Serialize every behaviour-shaping field of @p cfg. */
void serializeConfigIdentity(ckpt::Archiver &ar, const SimConfig &cfg);

/** Serialize @p pf's name and every scheme's parameters. */
void serializePrefetcherIdentity(ckpt::Archiver &ar,
                                 const PrefetcherParams &pf);

/**
 * FNV-1a hash of the serialized identity of (@p cfg, @p pf,
 * @p cores). Embedded in every checkpoint header.
 */
std::uint64_t configFingerprint(const SimConfig &cfg,
                                const PrefetcherParams &pf,
                                unsigned cores);

} // namespace ebcp

#endif // EBCP_SIM_CKPT_IO_HH
