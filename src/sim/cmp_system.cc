#include "sim/cmp_system.hh"

#include <algorithm>
#include <sstream>

#include "ckpt/checkpoint.hh"
#include "ckpt/containers.hh"
#include "sim/ckpt_io.hh"
#include "sim/watchdog.hh"
#include "trace/workloads.hh"
#include "util/logging.hh"

namespace ebcp
{

CmpSystem::CmpSystem(const SimConfig &cfg, const PrefetcherParams &pf,
                     unsigned cores, std::uint64_t quantum)
    : cfg_(cfg), pf_(pf), cores_(cores), quantum_(quantum), mem_(cfg.mem),
      prefetcher_(createPrefetcher(pf))
{
    fatal_if(cores == 0, "CMP needs at least one core");
    fatal_if(quantum == 0, "CMP quantum must be positive");

    l2side_ = std::make_unique<L2Subsystem>(cfg_, mem_, *prefetcher_);
    if (auto *e = dynamic_cast<EpochBasedPrefetcher *>(prefetcher_.get()))
        l2side_->setTableTransferBytes(
            e->table().config().entryTransferBytes());

    for (unsigned i = 0; i < cores_; ++i) {
        ports_.push_back(std::make_unique<Hierarchy>(cfg_, *l2side_, i));
        coreModels_.push_back(
            std::make_unique<CoreModel>(cfg_.core, *ports_[i]));
        coreModels_.back()->setWatchdog(cfg_.watchdogTicks);
    }
}

Status
CmpSystem::configureAudit(const AuditOptions &opts)
{
    if (!opts.enabled()) {
        for (auto &c : coreModels_)
            c->setAuditor(nullptr);
        l2side_->setAuditor(nullptr);
        auditor_.reset();
        return Status();
    }
#if !EBCP_AUDIT_ENABLED
    return invalidArgError(
        "auditing requested (cadence is not \"off\") but this build "
        "was configured with -DEBCP_AUDIT=OFF and has no hook sites");
#else
    auditor_ = std::make_unique<Auditor>(opts);
    AuditRegistry &reg = auditor_->registry();
    for (unsigned i = 0; i < cores_; ++i)
        reg.add(logFormat("core", i), [this, i](AuditContext &c) {
            coreModels_[i]->audit(c);
        });
    reg.add("l2", [this](AuditContext &c) { l2side_->l2().audit(c); });
    reg.add("l2.prefetch_buffer", [this](AuditContext &c) {
        l2side_->prefetchBuffer().audit(c);
    });
    reg.add("l2.mshrs",
            [this](AuditContext &c) { l2side_->mshrs().audit(c); });
    reg.add("l2.cross", [this](AuditContext &c) { l2side_->audit(c); });
    reg.add("epochs", [this, last = EpochId(0)](AuditContext &c) mutable {
        EpochTracker &t = l2side_->epochTracker();
        t.audit(c);
        c.check(t.currentEpoch() >= last, "epoch_ids_monotonic",
                "epoch id went from ", last, " back to ",
                t.currentEpoch());
        last = t.currentEpoch();
    });
    reg.add("memory", [this](AuditContext &c) { mem_.audit(c); });
    reg.add("prefetcher",
            [this](AuditContext &c) { prefetcher_->audit(c); });
    if (auto *e = dynamic_cast<EpochBasedPrefetcher *>(prefetcher_.get())) {
        reg.add("ebcp.table_traffic", [this, e](AuditContext &c) {
            if (!e->config().onChipTable)
                c.check(e->tableReadAttemptsLifetime() ==
                            l2side_->tableReadsServedLifetime(),
                        "table_read_conservation",
                        e->tableReadAttemptsLifetime(),
                        " table reads attempted by the control but ",
                        l2side_->tableReadsServedLifetime(),
                        " reached the memory system");
            c.check(e->maxTableReadTicks() <=
                        mem_.maxLowPriorityReadLatency(),
                    "table_read_latency_bounded",
                    "a served table read took ", e->maxTableReadTicks(),
                    " ticks, above the served-read bound of ",
                    mem_.maxLowPriorityReadLatency());
        });
    }
    for (auto &c : coreModels_)
        c->setAuditor(auditor_.get());
    l2side_->setAuditor(auditor_.get());
    return Status();
#endif
}

Status
CmpSystem::runPhase(std::vector<TraceSource *> &sources,
                    std::uint64_t insts_per_core)
{
    // Round-robin in small *randomized* quanta. Each core has its own
    // timeline; the shared structures (L2, buses, prefetcher) see the
    // cores' requests approximately interleaved. The jittered quantum
    // matters: a fixed rotation would interleave the miss streams at
    // deterministic distances, which a distance-keyed predictor could
    // exploit -- real concurrent cores interleave stochastically.
    std::uint64_t remaining = insts_per_core * cores_;
    std::vector<std::uint64_t> done(cores_, 0);
    while (remaining > 0) {
        for (unsigned i = 0; i < cores_; ++i) {
            const std::uint64_t turn =
                quantum_ / 2 +
                rng_.below(static_cast<std::uint32_t>(quantum_));
            const std::uint64_t chunk =
                std::min(turn, insts_per_core - done[i]);
            if (chunk == 0)
                continue;
            coreModels_[i]->run(*sources[i], chunk);
            if (coreModels_[i]->watchdogTripped()) {
                WatchdogContext ctx;
                ctx.tracePolicy = tracePolicyName_;
                std::ostringstream json;
                JsonWriter w(json);
                progressDiagnosticJson(w, logFormat("core", i),
                                       *coreModels_[i], *l2side_, mem_,
                                       *prefetcher_, ctx);
                lastDiagnosticJson_ = json.str();
                return stalledError(progressDiagnostic(
                    logFormat("core", i), *coreModels_[i], *l2side_,
                    mem_, *prefetcher_, ctx));
            }
            done[i] += chunk;
            remaining -= chunk;
            if (auditor_ && auditor_->abortRequested())
                return auditor_->toStatus();
        }
    }
    return Status();
}

StatusOr<CmpResults>
CmpSystem::tryRun(std::vector<TraceSource *> &sources,
                  std::uint64_t warm, std::uint64_t measure)
{
    if (Status s = runWarm(sources, warm); !s.ok())
        return s;
    return runMeasure(sources, measure);
}

Status
CmpSystem::runWarm(std::vector<TraceSource *> &sources,
                   std::uint64_t warm)
{
    fatal_if(sources.size() != cores_,
             "CMP needs one trace source per core");
    return runPhase(sources, warm);
}

StatusOr<CmpResults>
CmpSystem::runMeasure(std::vector<TraceSource *> &sources,
                      std::uint64_t measure)
{
    fatal_if(sources.size() != cores_,
             "CMP needs one trace source per core");

    for (auto &c : coreModels_)
        c->beginMeasurement();
    l2side_->beginMeasurement();
    mem_.stats().resetAll();

    if (Status s = runPhase(sources, measure); !s.ok())
        return s;

    // One final pass so every configured run ends audited even if the
    // cadence never fired during the window.
    if (auditor_) {
        Tick now = 0;
        for (auto &c : coreModels_)
            now = std::max(now, c->now());
        auditor_->runNow(now);
        if (auditor_->abortRequested())
            return auditor_->toStatus();
    }

    CmpResults res;
    std::uint64_t total_insts = 0;
    double cycle_sum = 0.0;
    for (unsigned i = 0; i < cores_; ++i) {
        SimResults r;
        r.insts = coreModels_[i]->measuredInsts();
        r.cycles = coreModels_[i]->measuredCycles();
        r.cpi = coreModels_[i]->cpi();
        res.perCore.push_back(r);
        total_insts += r.insts;
        cycle_sum += static_cast<double>(r.cycles);
    }
    res.aggregateCpi =
        total_insts ? cycle_sum / static_cast<double>(total_insts) : 0.0;

    const std::uint64_t misses =
        l2side_->offChipInst() + l2side_->offChipLoad();
    const std::uint64_t useful = l2side_->usefulPrefetches();
    res.coverage = (misses + useful)
                       ? static_cast<double>(useful) /
                             static_cast<double>(misses + useful)
                       : 0.0;
    res.accuracy = l2side_->issuedPrefetches()
                       ? static_cast<double>(useful) /
                             static_cast<double>(
                                 l2side_->issuedPrefetches())
                       : 0.0;
    res.epochs = l2side_->epochTracker().epochs();

    const PrefetchLedger &ledger = l2side_->ledger();
    res.timelyPrefetches = ledger.timelyHits();
    res.latePrefetches = ledger.lateHits();
    res.earlyEvictedPrefetches = ledger.evictedUnused();
    res.timeliness = ledger.timeliness();
    return res;
}

CmpResults
CmpSystem::run(std::vector<TraceSource *> &sources, std::uint64_t warm,
               std::uint64_t measure)
{
    StatusOr<CmpResults> r = tryRun(sources, warm, measure);
    fatal_if(!r.ok(), r.status().toString());
    return r.take();
}

std::uint64_t
CmpSystem::configFingerprint() const
{
    return ebcp::configFingerprint(cfg_, pf_, cores_);
}

StatusOr<std::string>
CmpSystem::serializeCheckpoint(std::vector<TraceSource *> &sources)
{
    fatal_if(sources.size() != cores_,
             "CMP needs one trace source per core");
    ckpt::CheckpointWriter w(configFingerprint());
    Status s;
    auto add = [&](const std::string &name, auto &&fill) {
        if (s.ok())
            s = w.section(name, fill);
    };
    for (unsigned i = 0; i < cores_; ++i) {
        add(logFormat("core", i), [this, i](ckpt::Archiver &ar) {
            coreModels_[i]->ckpt(ar);
        });
        add(logFormat("l1.", i), [this, i](ckpt::Archiver &ar) {
            ports_[i]->ckpt(ar);
        });
        add(logFormat("trace", i),
            [&sources, i](ckpt::Archiver &ar) { sources[i]->ckpt(ar); });
    }
    add("l2side", [this](ckpt::Archiver &ar) { l2side_->ckpt(ar); });
    add("mem", [this](ckpt::Archiver &ar) { mem_.ckpt(ar); });
    add("prefetcher",
        [this](ckpt::Archiver &ar) { prefetcher_->ckpt(ar); });
    add("cmp", [this](ckpt::Archiver &ar) {
        ckpt::ckptPcg32(ar, rng_);
    });
    if (!s.ok())
        return s;
    return w.serialize();
}

Status
CmpSystem::saveCheckpoint(const std::string &path,
                          std::vector<TraceSource *> &sources)
{
    StatusOr<std::string> blob = serializeCheckpoint(sources);
    if (!blob.ok())
        return blob.status();
    return ckpt::atomicWriteFile(path, blob.value());
}

Status
CmpSystem::restoreCheckpoint(const std::string &buffer,
                             std::vector<TraceSource *> &sources)
{
    fatal_if(sources.size() != cores_,
             "CMP needs one trace source per core");
    StatusOr<ckpt::CheckpointReader> reader =
        ckpt::CheckpointReader::fromBuffer(buffer, configFingerprint());
    if (!reader.ok())
        return reader.status();
    const ckpt::CheckpointReader &r = reader.value();
    Status s;
    auto load = [&](const std::string &name, auto &&fn) {
        if (s.ok())
            s = r.section(name, fn);
    };
    for (unsigned i = 0; i < cores_; ++i) {
        load(logFormat("core", i), [this, i](ckpt::Archiver &ar) {
            coreModels_[i]->ckpt(ar);
        });
        load(logFormat("l1.", i), [this, i](ckpt::Archiver &ar) {
            ports_[i]->ckpt(ar);
        });
        load(logFormat("trace", i),
             [&sources, i](ckpt::Archiver &ar) { sources[i]->ckpt(ar); });
    }
    load("l2side", [this](ckpt::Archiver &ar) { l2side_->ckpt(ar); });
    load("mem", [this](ckpt::Archiver &ar) { mem_.ckpt(ar); });
    load("prefetcher",
         [this](ckpt::Archiver &ar) { prefetcher_->ckpt(ar); });
    load("cmp", [this](ckpt::Archiver &ar) {
        ckpt::ckptPcg32(ar, rng_);
    });
    return s;
}

Status
CmpSystem::restoreCheckpointFile(const std::string &path,
                                 std::vector<TraceSource *> &sources)
{
    StatusOr<std::string> data = ckpt::readFile(path);
    if (!data.ok())
        return data.status();
    return restoreCheckpoint(data.value(), sources)
        .withContext(logFormat("restoring checkpoint '", path, "'"));
}

CmpResults
runCmp(const SimConfig &cfg, const PrefetcherParams &pf,
       const std::string &workload, unsigned cores, std::uint64_t warm,
       std::uint64_t measure)
{
    CmpSystem sys(cfg, pf, cores);
    std::vector<std::unique_ptr<SyntheticWorkload>> owned;
    std::vector<TraceSource *> sources;
    for (unsigned i = 0; i < cores; ++i) {
        owned.push_back(makeWorkload(workload, 1000 + i));
        sources.push_back(owned.back().get());
    }
    return sys.run(sources, warm, measure);
}

SimResults
foldCmpResults(const CmpResults &cmp)
{
    SimResults res;
    res.cpi = cmp.aggregateCpi;
    res.coverage = cmp.coverage;
    res.accuracy = cmp.accuracy;
    res.timeliness = cmp.timeliness;
    res.epochs = cmp.epochs;
    res.timelyPrefetches = cmp.timelyPrefetches;
    res.latePrefetches = cmp.latePrefetches;
    res.earlyEvictedPrefetches = cmp.earlyEvictedPrefetches;
    for (const SimResults &core : cmp.perCore) {
        res.insts += core.insts;
        res.cycles = std::max(res.cycles, core.cycles);
        res.usefulPrefetches += core.usefulPrefetches;
        res.issuedPrefetches += core.issuedPrefetches;
        res.droppedPrefetches += core.droppedPrefetches;
    }
    if (res.insts)
        res.epochsPer1k =
            cmp.epochs * 1000.0 / static_cast<double>(res.insts);
    return res;
}

} // namespace ebcp
