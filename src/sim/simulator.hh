/**
 * @file
 * Top-level simulator: wires core, hierarchy, memory and prefetcher,
 * runs the warm-up and measurement windows, and reports SimResults.
 */

#ifndef EBCP_SIM_SIMULATOR_HH
#define EBCP_SIM_SIMULATOR_HH

#include <memory>
#include <string>

#include "cpu/core_model.hh"
#include "mem/main_memory.hh"
#include "sim/hierarchy.hh"
#include "sim/l2_subsystem.hh"
#include "sim/prefetcher_factory.hh"
#include "sim/results.hh"
#include "sim/sim_config.hh"
#include "stats/interval.hh"
#include "util/event_trace.hh"
#include "util/status.hh"

namespace ebcp
{

/** A complete simulated system. */
class Simulator
{
  public:
    Simulator(const SimConfig &cfg, const PrefetcherParams &pf);

    /**
     * Warm caches and predictors for @p warm_insts instructions, then
     * measure for @p measure_insts.
     *
     * Fails with StatusCode::Stalled -- the message carrying a full
     * progress diagnostic (ROB/MSHR/channel/EMAB state) -- if the
     * configured forward-progress watchdog trips in either window.
     */
    StatusOr<SimResults> tryRun(TraceSource &src,
                                std::uint64_t warm_insts,
                                std::uint64_t measure_insts);

    /** As tryRun(), but a watchdog trip is fatal. */
    SimResults run(TraceSource &src, std::uint64_t warm_insts,
                   std::uint64_t measure_insts);

    /**
     * Run only the warm-up window. tryRun() is exactly
     * runWarm() + runMeasure(); the split exists so a caller can
     * checkpoint the warm state (or restore one) between the two.
     */
    Status runWarm(TraceSource &src, std::uint64_t warm_insts);

    /**
     * Reset measurement statistics and run the measurement window.
     * Warm state must already be in place, either from runWarm() or
     * from restoreCheckpoint().
     */
    StatusOr<SimResults> runMeasure(TraceSource &src,
                                    std::uint64_t measure_insts);

    /** Collect results for the instructions since beginMeasurement(). */
    SimResults collect();

    /**
     * Identity hash of this simulator's configuration (SimConfig +
     * prefetcher parameters); embedded in every checkpoint and
     * verified on restore.
     */
    std::uint64_t configFingerprint() const;

    /**
     * Serialize the complete mutable state -- every component plus
     * @p src's read cursor -- into the versioned checkpoint container.
     */
    StatusOr<std::string> serializeCheckpoint(TraceSource &src);

    /** serializeCheckpoint() + atomic write (temp + fsync + rename). */
    Status saveCheckpoint(const std::string &path, TraceSource &src);

    /**
     * Restore state from a serialized checkpoint buffer. Fails with a
     * coded Status (never UB) on corruption, version skew, or a
     * fingerprint from a different configuration; the simulator is
     * left unspecified-but-destructible on failure, so callers either
     * propagate the error or rebuild from scratch.
     */
    Status restoreCheckpoint(const std::string &buffer, TraceSource &src);

    /** Read @p path and restore from it. */
    Status restoreCheckpointFile(const std::string &path,
                                 TraceSource &src);

    /**
     * Attach lifecycle event tracing (must outlive the simulator).
     * Observation only: SimResults are bit-identical with or without
     * a log attached. With both a log and a sampler attached, the
     * measurement loop additionally records occupancy counter tracks
     * (MSHRs, prefetch buffer, correlation-table fill, per-source
     * ledger accuracy, channel backlog) at each sampler boundary.
     */
    void
    attachTraceLog(TraceLog &log)
    {
        traceLog_ = &log;
        l2side_->attachTraceLog(log);
    }

    /**
     * Attach an interval sampler (nullptr detaches). With a sampler,
     * the measurement window runs in interval-sized chunks and the
     * sampler snapshots at each exact boundary plus the final
     * (possibly partial) one. Chunked driving is bit-exact vs one
     * run() call: the core re-derives its loop state from members.
     */
    void setSampler(IntervalSampler *sampler) { sampler_ = sampler; }

    /** Trace-read policy name carried into watchdog diagnostics. */
    void setTracePolicyName(std::string name)
    {
        tracePolicyName_ = std::move(name);
    }

    /**
     * Configure invariant auditing. Cadence Off detaches any auditor.
     * Registers every stateful component plus the cross-component
     * checks (table-traffic conservation, table-read latency bound,
     * epoch-id monotonicity) and wires the retire/epoch hooks.
     *
     * Audits read state only, so results are bit-identical with
     * auditing on or off. In a -DEBCP_AUDIT=OFF build any cadence
     * other than Off is an InvalidArgument error: a build without
     * hook sites must not pretend it audited.
     */
    Status configureAudit(const AuditOptions &opts);

    /** The attached auditor, or nullptr when auditing is off. */
    Auditor *auditor() { return auditor_.get(); }

    /** Audit summary as rendered JSON ("" when auditing is off). */
    std::string
    auditSummaryJson() const
    {
        return auditor_ ? auditor_->summaryJson() : std::string();
    }

    /**
     * JSON form of the last watchdog diagnostic ("" if no stall
     * happened). Drivers embed this in stats.json.
     */
    const std::string &lastDiagnosticJson() const
    {
        return lastDiagnosticJson_;
    }

    /** Dump every statistic group as one JSON object value. */
    void dumpStatsJson(JsonWriter &w);

    CoreModel &core() { return *core_; }
    Hierarchy &hierarchy() { return *hier_; }
    L2Subsystem &l2side() { return *l2side_; }
    MainMemory &memory() { return mem_; }
    Prefetcher &prefetcher() { return *prefetcher_; }

    /** Dump every statistic group (examples / debugging). */
    void dumpStats(std::ostream &os);

  private:
    /** Build the Stalled status + JSON diagnostic for a trip. */
    Status stallStatus();

    /** Record one sample of every counter track into traceLog_. */
    void sampleCounterTracks();

    SimConfig cfg_;
    PrefetcherParams pf_;
    MainMemory mem_;
    std::unique_ptr<Prefetcher> prefetcher_;
    std::unique_ptr<L2Subsystem> l2side_;
    std::unique_ptr<Hierarchy> hier_;
    std::unique_ptr<CoreModel> core_;

    IntervalSampler *sampler_ = nullptr;
    TraceLog *traceLog_ = nullptr;
    std::unique_ptr<Auditor> auditor_;
    std::string tracePolicyName_;
    std::string lastDiagnosticJson_;

    Tick readBusyMark_ = 0;
    Tick writeBusyMark_ = 0;
};

/**
 * Convenience: run @p src on configuration @p cfg with prefetcher
 * @p pf and return the measured results.
 */
SimResults runOnce(const SimConfig &cfg, const PrefetcherParams &pf,
                   TraceSource &src, std::uint64_t warm_insts,
                   std::uint64_t measure_insts);

} // namespace ebcp

#endif // EBCP_SIM_SIMULATOR_HH
