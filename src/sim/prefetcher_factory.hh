/**
 * @file
 * Construction of every prefetcher evaluated in the paper, by name.
 *
 * Names follow Figure 9's legend: "null", "stream", "ghb-small",
 * "ghb-large", "tcp-small", "tcp-large", "sms", "solihin-3-2",
 * "solihin-6-1", "ebcp", "ebcp-minus", plus "nextline" (Smith [6]),
 * "dcpt" (delta-correlating prediction tables), "amc" (access-to-
 * miss correlation) and "composite" (the ledger-driven adaptive
 * multiplexer over the others).
 *
 * Every scheme's configuration is validated with a coded Status
 * before construction: nonsense values (a zero degree, a non-power-
 * of-two table) are rejected at the factory boundary instead of
 * crashing inside a constructor or silently running with defaults.
 */

#ifndef EBCP_SIM_PREFETCHER_FACTORY_HH
#define EBCP_SIM_PREFETCHER_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/ebcp.hh"
#include "prefetch/amc.hh"
#include "prefetch/composite.hh"
#include "prefetch/dcpt.hh"
#include "prefetch/ghb.hh"
#include "prefetch/nextline.hh"
#include "prefetch/sms.hh"
#include "prefetch/solihin.hh"
#include "prefetch/stream_prefetcher.hh"
#include "prefetch/tcp.hh"
#include "util/status.hh"

namespace ebcp
{

/** Per-scheme parameters; named presets override the relevant member. */
struct PrefetcherParams
{
    std::string name = "null";
    EbcpConfig ebcp;
    SolihinConfig solihin;
    GhbConfig ghb;
    NextLineConfig nextline;
    TcpConfig tcp;
    SmsConfig sms;
    StreamPrefetcherConfig stream;
    DcptConfig dcpt;
    AmcConfig amc;
    CompositeConfig composite;
};

/**
 * Build a prefetcher; an unknown name yields NotFound with a
 * nearest-name suggestion.
 */
StatusOr<std::unique_ptr<Prefetcher>>
tryCreatePrefetcher(const PrefetcherParams &p);

/** As tryCreatePrefetcher(), but an unknown name is fatal. */
std::unique_ptr<Prefetcher> createPrefetcher(const PrefetcherParams &p);

/** All names the factory accepts (for tests and CLI help). */
std::vector<std::string> prefetcherNames();

} // namespace ebcp

#endif // EBCP_SIM_PREFETCHER_FACTORY_HH
