/**
 * @file
 * Chip multiprocessor simulation (the paper's Section 6 future work).
 *
 * N cores, each with private L1s and its own trace source, share one
 * banked L2, one prefetch buffer, one prefetcher control and one
 * memory system -- Figure 2's arrangement. Cores are interleaved in
 * fixed instruction quanta, which approximates concurrent execution
 * closely enough for the behaviours of interest:
 *
 *  - the shared prefetcher control still sees each core's L1 miss
 *    requests *with the core id* (it sits in front of the crossbar),
 *    so an epoch-based prefetcher can keep per-core EMABs;
 *  - anything observing only the stream of requests that reach main
 *    memory (a memory-side scheme like Solihin's) sees the cores'
 *    miss streams interleaved, which destroys its correlation -- the
 *    paper's Section 3.3.1 argument.
 */

#ifndef EBCP_SIM_CMP_SYSTEM_HH
#define EBCP_SIM_CMP_SYSTEM_HH

#include <memory>
#include <vector>

#include "cpu/core_model.hh"
#include "mem/main_memory.hh"
#include "sim/hierarchy.hh"
#include "sim/l2_subsystem.hh"
#include "sim/prefetcher_factory.hh"
#include "sim/results.hh"
#include "sim/sim_config.hh"
#include "util/random.hh"
#include "util/status.hh"

namespace ebcp
{

/** Results of a CMP run: per-core plus aggregate. */
struct CmpResults
{
    std::vector<SimResults> perCore;
    double aggregateCpi = 0.0; //!< insts-weighted mean CPI
    double coverage = 0.0;
    double accuracy = 0.0;
    double timeliness = 0.0; //!< timely fraction of used prefetches
    std::uint64_t epochs = 0;

    // Shared-buffer prefetch lifecycle totals (PrefetchLedger).
    std::uint64_t timelyPrefetches = 0;
    std::uint64_t latePrefetches = 0;
    std::uint64_t earlyEvictedPrefetches = 0;
};

/** A CMP with a shared L2 and prefetcher. */
class CmpSystem
{
  public:
    /**
     * @param cores number of cores
     * @param quantum instructions each core runs per scheduling turn;
     *        small quanta (the default) interleave the cores' misses
     *        at near-single-miss granularity, as concurrent execution
     *        does
     */
    CmpSystem(const SimConfig &cfg, const PrefetcherParams &pf,
              unsigned cores, std::uint64_t quantum = 100);

    /**
     * Run all cores, interleaved, for @p warm then @p measure
     * instructions per core.
     *
     * Fails with StatusCode::Stalled (message carrying the offending
     * core's progress diagnostic) if the configured forward-progress
     * watchdog trips on any core.
     *
     * @param sources one trace source per core
     */
    StatusOr<CmpResults> tryRun(std::vector<TraceSource *> &sources,
                                std::uint64_t warm,
                                std::uint64_t measure);

    /** As tryRun(), but a watchdog trip is fatal. */
    CmpResults run(std::vector<TraceSource *> &sources,
                   std::uint64_t warm, std::uint64_t measure);

    /**
     * Run only the warm-up phase (tryRun() is runWarm() +
     * runMeasure()); lets callers checkpoint or restore the warm
     * state between the two.
     */
    Status runWarm(std::vector<TraceSource *> &sources,
                   std::uint64_t warm);

    /** Reset measurement statistics, run the measurement phase, and
     * aggregate the results. */
    StatusOr<CmpResults> runMeasure(std::vector<TraceSource *> &sources,
                                    std::uint64_t measure);

    /** Identity hash of (SimConfig, prefetcher params, core count). */
    std::uint64_t configFingerprint() const;

    /** Serialize the complete mutable state: every core, every L1
     * port, the shared L2 side, memory, the prefetcher, the
     * interleaving RNG, and each source's cursor. */
    StatusOr<std::string>
    serializeCheckpoint(std::vector<TraceSource *> &sources);

    /** serializeCheckpoint() + atomic write. */
    Status saveCheckpoint(const std::string &path,
                          std::vector<TraceSource *> &sources);

    /** Restore from a serialized buffer; coded Status on corruption,
     * version skew or configuration mismatch. */
    Status restoreCheckpoint(const std::string &buffer,
                             std::vector<TraceSource *> &sources);

    /** Read @p path and restore from it. */
    Status restoreCheckpointFile(const std::string &path,
                                 std::vector<TraceSource *> &sources);

    /** Attach lifecycle tracing (observation only, shared L2 side). */
    void attachTraceLog(TraceLog &log) { l2side_->attachTraceLog(log); }

    /** Trace-read policy name carried into watchdog diagnostics. */
    void setTracePolicyName(std::string name)
    {
        tracePolicyName_ = std::move(name);
    }

    /**
     * Configure invariant auditing across all cores and the shared
     * L2 side; semantics as Simulator::configureAudit. Each core's
     * retire hook and the shared epoch hook drive one Auditor.
     */
    Status configureAudit(const AuditOptions &opts);

    /** The attached auditor, or nullptr when auditing is off. */
    Auditor *auditor() { return auditor_.get(); }

    /** Audit summary as rendered JSON ("" when auditing is off). */
    std::string
    auditSummaryJson() const
    {
        return auditor_ ? auditor_->summaryJson() : std::string();
    }

    /** JSON form of the last watchdog diagnostic ("" if none). */
    const std::string &lastDiagnosticJson() const
    {
        return lastDiagnosticJson_;
    }

    unsigned cores() const { return cores_; }
    CoreModel &core(unsigned i) { return *coreModels_[i]; }
    L2Subsystem &l2side() { return *l2side_; }
    Prefetcher &prefetcher() { return *prefetcher_; }

  private:
    Status runPhase(std::vector<TraceSource *> &sources,
                    std::uint64_t insts_per_core);

    SimConfig cfg_;
    PrefetcherParams pf_;
    unsigned cores_;
    std::uint64_t quantum_;
    std::string tracePolicyName_;
    std::string lastDiagnosticJson_;
    Pcg32 rng_{0xc3b0};
    std::unique_ptr<Auditor> auditor_;
    MainMemory mem_;
    std::unique_ptr<Prefetcher> prefetcher_;
    std::unique_ptr<L2Subsystem> l2side_;
    std::vector<std::unique_ptr<Hierarchy>> ports_;
    std::vector<std::unique_ptr<CoreModel>> coreModels_;
};

/**
 * Convenience: run a CMP where every core executes an independent
 * instance (different seed) of the named workload.
 */
CmpResults runCmp(const SimConfig &cfg, const PrefetcherParams &pf,
                  const std::string &workload, unsigned cores,
                  std::uint64_t warm, std::uint64_t measure);

/**
 * Fold a CMP aggregate into the single-run SimResults shape the sweep
 * tables and the stats.json schema consume; per-core breakdowns stay
 * a CmpResults concern.
 */
SimResults foldCmpResults(const CmpResults &cmp);

} // namespace ebcp

#endif // EBCP_SIM_CMP_SYSTEM_HH
