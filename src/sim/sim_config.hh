/**
 * @file
 * Aggregate simulation configuration; defaults are the paper's
 * Section 4.4 processor plus the Section 5 tuned prefetcher knobs.
 */

#ifndef EBCP_SIM_SIM_CONFIG_HH
#define EBCP_SIM_SIM_CONFIG_HH

#include <string>

#include "cache/cache_config.hh"
#include "cpu/core_config.hh"
#include "mem/mem_config.hh"
#include "util/fault.hh"
#include "util/types.hh"

namespace ebcp
{

/** Everything the simulator needs to build a system. */
struct SimConfig
{
    CoreConfig core;
    MemConfig mem;

    CacheConfig l1i{"l1i", 32 * KiB, 4, 64, 3, ReplPolicy::Lru};
    CacheConfig l1d{"l1d", 32 * KiB, 4, 64, 3, ReplPolicy::Lru};
    CacheConfig l2{"l2", 2 * MiB, 4, 64, 20, ReplPolicy::Lru};

    unsigned l2Mshrs = 32;

    unsigned prefetchBufferEntries = 64;
    unsigned prefetchBufferWays = 4;

    /**
     * Pretend the L2 never misses (measures CPI_perf for the epoch
     * model's decomposition, Section 2.1).
     */
    bool perfectL2 = false;

    /** Prefetcher selection for the factory ("null", "ebcp", ...). */
    std::string prefetcher = "null";

    /**
     * Forward-progress watchdog: maximum tolerated gap (in ticks)
     * between consecutive retirements before the run is declared
     * stalled and aborted with a diagnostic dump. 0 disables.
     */
    Tick watchdogTicks = 0;

    /** Deterministic fault-injection plan (none armed by default). */
    FaultPlan faults;
};

} // namespace ebcp

#endif // EBCP_SIM_SIM_CONFIG_HH
