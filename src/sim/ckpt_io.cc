#include "sim/ckpt_io.hh"

namespace ebcp
{

namespace
{

void
cacheIdentity(ckpt::Archiver &ar, const CacheConfig &c)
{
    std::string name = c.name;
    std::uint64_t size = c.sizeBytes;
    unsigned ways = c.ways;
    unsigned line = c.lineBytes;
    Tick hit = c.hitLatency;
    ReplPolicy repl = c.repl;
    ar.str(name);
    ar.u64(size);
    ar.uns(ways);
    ar.uns(line);
    ar.u64(hit);
    ar.enum32(repl);
}

void
faultIdentity(ckpt::Archiver &ar, const FaultPlan &f)
{
    bool bitflip = f.traceBitflip, truncate = f.traceTruncate,
         shortRead = f.traceShortRead, drop = f.tableDrop,
         delay = f.tableDelay, stall = f.demandStall;
    std::uint64_t seed = f.seed, after = f.truncateAfter,
                  stallAfter = f.stallAfter;
    double rate = f.rate;
    Tick delayTicks = f.tableDelayTicks;
    ar.boolean(bitflip);
    ar.boolean(truncate);
    ar.boolean(shortRead);
    ar.boolean(drop);
    ar.boolean(delay);
    ar.boolean(stall);
    ar.u64(seed);
    ar.f64(rate);
    ar.u64(after);
    ar.u64(stallAfter);
    ar.u64(delayTicks);
}

} // namespace

void
serializeConfigIdentity(ckpt::Archiver &ar, const SimConfig &cfg)
{
    unsigned fw = cfg.core.fetchWidth, dw = cfg.core.decodeWidth,
             rw = cfg.core.retireWidth, rob = cfg.core.robEntries,
             iq = cfg.core.issueQueueEntries,
             sb = cfg.core.storeBufferEntries,
             lb = cfg.core.loadBufferEntries, alus = cfg.core.numAlus,
             lsus = cfg.core.numLoadStoreUnits,
             brs = cfg.core.numBranchUnits,
             fpa = cfg.core.numFpAddUnits, fpm = cfg.core.numFpMulUnits;
    Tick mispredict = cfg.core.mispredictPenalty;
    unsigned gshare = cfg.core.branchPred.gshareEntries,
             btb = cfg.core.branchPred.btbEntries,
             ras = cfg.core.branchPred.rasEntries;
    ar.uns(fw);
    ar.uns(dw);
    ar.uns(rw);
    ar.uns(rob);
    ar.uns(iq);
    ar.uns(sb);
    ar.uns(lb);
    ar.uns(alus);
    ar.uns(lsus);
    ar.uns(brs);
    ar.uns(fpa);
    ar.uns(fpm);
    ar.u64(mispredict);
    ar.uns(gshare);
    ar.uns(btb);
    ar.uns(ras);

    Tick latency = cfg.mem.latency, dropDelay = cfg.mem.lowPriorityDropDelay;
    double rbpt = cfg.mem.readBytesPerTick,
           wbpt = cfg.mem.writeBytesPerTick;
    unsigned memLine = cfg.mem.lineBytes;
    ar.u64(latency);
    ar.f64(rbpt);
    ar.f64(wbpt);
    ar.uns(memLine);
    ar.u64(dropDelay);

    cacheIdentity(ar, cfg.l1i);
    cacheIdentity(ar, cfg.l1d);
    cacheIdentity(ar, cfg.l2);

    unsigned mshrs = cfg.l2Mshrs, pbe = cfg.prefetchBufferEntries,
             pbw = cfg.prefetchBufferWays;
    bool perfect = cfg.perfectL2;
    std::string pname = cfg.prefetcher;
    Tick wd = cfg.watchdogTicks;
    ar.uns(mshrs);
    ar.uns(pbe);
    ar.uns(pbw);
    ar.boolean(perfect);
    ar.str(pname);
    ar.u64(wd);
    faultIdentity(ar, cfg.faults);
}

void
serializePrefetcherIdentity(ckpt::Archiver &ar, const PrefetcherParams &pf)
{
    // Every scheme's parameters go into the identity regardless of
    // which one is selected: cheap, and a changed-but-inactive knob
    // can never silently alias two different setups.
    std::string name = pf.name;
    ar.str(name);

    std::uint64_t te = pf.ebcp.tableEntries;
    unsigned deg = pf.ebcp.prefetchDegree, emabE = pf.ebcp.emabEntries,
             emabA = pf.ebcp.emabAddrsPerEntry,
             ncs = pf.ebcp.numCoreStates;
    bool minus = pf.ebcp.minusVariant, all = pf.ebcp.trainAllOldestMisses,
         onChip = pf.ebcp.onChipTable;
    Tick retry = pf.ebcp.reallocRetryInterval;
    ar.u64(te);
    ar.uns(deg);
    ar.uns(emabE);
    ar.uns(emabA);
    ar.boolean(minus);
    ar.boolean(all);
    ar.u64(retry);
    ar.uns(ncs);
    ar.boolean(onChip);
    faultIdentity(ar, pf.ebcp.faults);

    std::uint64_t ste = pf.solihin.tableEntries;
    unsigned sd = pf.solihin.depth, sw = pf.solihin.width;
    Tick slat = pf.solihin.tableAccessLatency;
    ar.u64(ste);
    ar.uns(sd);
    ar.uns(sw);
    ar.u64(slat);

    unsigned gi = pf.ghb.indexEntries, gg = pf.ghb.ghbEntries,
             gd = pf.ghb.depth, gh = pf.ghb.maxHistory;
    ar.uns(gi);
    ar.uns(gg);
    ar.uns(gd);
    ar.uns(gh);

    unsigned nd = pf.nextline.depth, nl = pf.nextline.lineBytes;
    bool ni = pf.nextline.onInst, nld = pf.nextline.onLoad;
    ar.uns(nd);
    ar.uns(nl);
    ar.boolean(ni);
    ar.boolean(nld);

    unsigned tt = pf.tcp.thtEntries, tps = pf.tcp.phtSets,
             tpw = pf.tcp.phtWays, tl = pf.tcp.lineBytes,
             tl1 = pf.tcp.l1Sets, tdg = pf.tcp.degree;
    ar.uns(tt);
    ar.uns(tps);
    ar.uns(tpw);
    ar.uns(tl);
    ar.uns(tl1);
    ar.uns(tdg);

    unsigned sr = pf.sms.regionBytes, sl = pf.sms.lineBytes,
             sa = pf.sms.agtEntries, sps = pf.sms.phtSets,
             spw = pf.sms.phtWays;
    ar.uns(sr);
    ar.uns(sl);
    ar.uns(sa);
    ar.uns(sps);
    ar.uns(spw);

    unsigned pstreams = pf.stream.streams, pdist = pf.stream.distance,
             pconf = pf.stream.trainConfirms;
    Addr pstride = pf.stream.maxStrideBytes;
    ar.uns(pstreams);
    ar.uns(pdist);
    ar.uns(pconf);
    ar.u64(pstride);

    std::uint64_t dte = pf.dcpt.tableEntries;
    unsigned ddel = pf.dcpt.deltasPerEntry, ddeg = pf.dcpt.degree,
             dlb = pf.dcpt.lineBytes;
    ar.u64(dte);
    ar.uns(ddel);
    ar.uns(ddeg);
    ar.uns(dlb);

    std::uint64_t ate = pf.amc.tableEntries;
    unsigned aw = pf.amc.width, awin = pf.amc.window,
             adeg = pf.amc.degree;
    ar.u64(ate);
    ar.uns(aw);
    ar.uns(awin);
    ar.uns(adeg);

    std::vector<std::string> cengines = pf.composite.engines;
    std::uint64_t cci = pf.composite.calibInterval;
    unsigned cep = pf.composite.explorePeriod,
             cmin = pf.composite.minDegree, cmax = pf.composite.maxDegree,
             cinit = pf.composite.initialDegree;
    // Percent-granular, matching the controller's integer arithmetic.
    unsigned clo = static_cast<unsigned>(pf.composite.loAccuracy * 100.0),
             chi = static_cast<unsigned>(pf.composite.hiAccuracy * 100.0);
    ar.vec(cengines, [](ckpt::Archiver &a, std::string &s) { a.str(s); });
    ar.u64(cci);
    ar.uns(cep);
    ar.uns(cmin);
    ar.uns(cmax);
    ar.uns(cinit);
    ar.uns(clo);
    ar.uns(chi);
}

std::uint64_t
configFingerprint(const SimConfig &cfg, const PrefetcherParams &pf,
                  unsigned cores)
{
    std::string bytes;
    ckpt::Archiver ar = ckpt::Archiver::saver(bytes);
    serializeConfigIdentity(ar, cfg);
    serializePrefetcherIdentity(ar, pf);
    ar.uns(cores);
    return ckpt::fnv1a64(bytes.data(), bytes.size());
}

} // namespace ebcp
