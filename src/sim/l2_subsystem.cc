#include "sim/l2_subsystem.hh"

#include <algorithm>

#include "ckpt/archiver.hh"
#include "util/profiler.hh"

namespace ebcp
{

L2Subsystem::L2Subsystem(const SimConfig &cfg, MainMemory &mem,
                         Prefetcher &prefetcher)
    : cfg_(cfg), mem_(mem), prefetcher_(prefetcher),
      l2_(cfg.l2),
      prefBuf_(cfg.prefetchBufferEntries, cfg.prefetchBufferWays,
               cfg.l2.lineBytes),
      l2Mshrs_("l2_mshrs", cfg.l2Mshrs),
      stats_("l2side")
{
    prefetcher_.setEngine(this);
    prefetcher_.attachLedger(ledger_);
    stats_.add(offChipInst_);
    stats_.add(offChipLoad_);
    stats_.add(issuedPrefetches_);
    stats_.add(droppedPrefetches_);
    stats_.add(filteredPrefetches_);
    stats_.add(usefulPrefetches_);
    stats_.add(latePrefetchStalls_);
    stats_.add(lateStallTicks_);
    stats_.add(injectedStalls_);
    stats_.addChild(l2_.stats());
    stats_.addChild(prefBuf_.stats());
    stats_.addChild(l2Mshrs_.stats());
    stats_.addChild(epochs_.stats());
    stats_.addChild(ledger_.stats());
    stats_.addChild(prefetcher_.stats());
}

void
L2Subsystem::attachTraceLog(TraceLog &log)
{
    // tids: 0..31 are per-core rows (the prefetcher's epoch
    // trackers); the shared L2-side machinery sits above them.
    trace_ = log.sink("l2side", 33);
    epochs_.setTraceSink(log.sink("demand_epochs", 34));
    prefetcher_.attachTraceLog(log);
}

MemOutcome
L2Subsystem::access(Addr addr, Addr pc, Tick when, bool is_inst,
                    unsigned core_id)
{
    const Addr line = l2_.lineAddr(addr);
    const Tick l2_lat = l2_.hitLatency();
    l2Mshrs_.advance(when);

    MemOutcome out;
    L2AccessInfo info;
    info.pc = pc;
    info.lineAddr = line;
    info.isInst = is_inst;
    info.when = when;
    info.coreId = core_id;

    // Injected liveness bug (watchdog demo/testing): once the demand
    // count crosses the threshold, one access "loses" its completion
    // far in the future, exactly like a wedged channel would look.
    if (cfg_.faults.demandStall && ++demandCount_ == cfg_.faults.stallAfter) {
        ++injectedStalls_;
        out.complete = when + FaultPlan::StallTicks;
        out.offChip = true;
        return out;
    }

    if (cfg_.perfectL2) {
        // CPI_perf mode: the furthest on-chip cache always hits.
        out.complete = when + l2_lat;
        return out;
    }

    if (l2_.access(line, false)) {
        // The tags hit, but the line may still be in flight (lines
        // are installed at miss time and data arrives later): such an
        // access merges into the outstanding miss.
        const Tick inflight = l2Mshrs_.inFlightCompletion(line);
        if (inflight != MaxTick && inflight > when + l2_lat) {
            out.complete = inflight;
            out.offChip = true;
            observeEpoch(when, inflight);
            info.offChip = true;
            info.complete = inflight;
        } else {
            out.complete = when + l2_lat;
            info.l2Hit = true;
            info.complete = out.complete;
        }
        {
            EBCP_PROFILE_SCOPE(PrefetchTrain);
            prefetcher_.observeAccess(info);
        }
        return out;
    }

    // The prefetch buffer is searched in parallel with the L2.
    PrefBufHit pb = prefBuf_.lookup(line, when);
    if (pb.hit) {
        // A hit on an in-flight prefetch waits for that fill, but
        // never longer than a demand fetch issued right now would
        // take -- the controller promotes the in-flight request to
        // demand priority rather than letting a late prefetch be
        // worse than no prefetch.
        const Tick demand_bound = when + l2_lat + mem_.config().latency;
        const Tick data_ready =
            std::max(when + l2_lat,
                     std::min(pb.readyTime, demand_bound));
        out.complete = data_ready;
        // A hit on a still-in-flight prefetch stalls like a
        // (shortened) off-chip access and is epoch-relevant.
        if (data_ready > when + l2_lat) {
            ++latePrefetchStalls_;
            lateStallTicks_.sample(
                static_cast<double>(data_ready - when - l2_lat));
            observeEpoch(when, data_ready);
            out.offChip = true;
            ledger_.onHitLate(data_ready - when - l2_lat, pb.source);
            EBCP_TRACE_EVENT(trace_, TraceEventKind::PrefetchHitLate,
                             when, 0, line, data_ready - when - l2_lat);
        } else {
            // Timely: the fill beat the demand access by this slack.
            ledger_.onHitTimely(when + l2_lat - pb.readyTime, pb.source);
            EBCP_TRACE_EVENT(trace_, TraceEventKind::PrefetchHitTimely,
                             when, 0, line);
        }
        ++usefulPrefetches_;
        info.prefBufHit = true;
        info.complete = data_ready;
        l2_.fill(line);
        {
            EBCP_PROFILE_SCOPE(PrefetchTrain);
            if (pb.hasCorrIndex)
                prefetcher_.observePrefetchHit(line, pb.corrIndex,
                                               data_ready);
            prefetcher_.observeAccess(info);
        }
        return out;
    }

    // A real L2 miss.
    out.offChip = true;
    const Tick alloc = l2Mshrs_.whenCanAllocate(when);
    MemAccessResult r = mem_.access(alloc, is_inst
                                               ? MemReqType::DemandInst
                                               : MemReqType::DemandLoad);
    out.complete = r.complete;
    l2Mshrs_.allocate(line, r.complete);
    observeEpoch(alloc, r.complete);
    EBCP_TRACE_EVENT(trace_, TraceEventKind::DemandMiss, alloc,
                     r.complete - alloc, line);
    if (is_inst)
        ++offChipInst_;
    else
        ++offChipLoad_;

    Eviction ev = l2_.fill(line);
    if (ev.valid && ev.dirty)
        mem_.access(out.complete, MemReqType::StoreWrite);

    info.offChip = true;
    info.complete = out.complete;
    {
        EBCP_PROFILE_SCOPE(PrefetchTrain);
        prefetcher_.observeAccess(info);
    }
    return out;
}

Tick
L2Subsystem::storeAccess(Addr addr, Tick when)
{
    const Addr line = l2_.lineAddr(addr);
    if (cfg_.perfectL2 || l2_.access(line, true))
        return when + l2_.hitLatency();

    // Stores can also be satisfied by a prefetched line.
    PrefBufHit pb = prefBuf_.lookup(line, when);
    if (pb.hit) {
        ++usefulPrefetches_;
        const Tick on_chip = when + l2_.hitLatency();
        if (pb.readyTime > on_chip) {
            ledger_.onHitLate(pb.readyTime - on_chip, pb.source);
            EBCP_TRACE_EVENT(trace_, TraceEventKind::PrefetchHitLate,
                             when, 0, line, pb.readyTime - on_chip);
        } else {
            ledger_.onHitTimely(on_chip - pb.readyTime, pb.source);
            EBCP_TRACE_EVENT(trace_, TraceEventKind::PrefetchHitTimely,
                             when, 0, line);
        }
        l2_.fill(line, true);
        return std::max(when + l2_.hitLatency(), pb.readyTime);
    }

    // Off-chip store: drains over the write bus under weak
    // consistency; never stalls the window, never recorded in the
    // EMAB (Section 3.4.2), never an epoch trigger.
    MemAccessResult r = mem_.access(when, MemReqType::StoreWrite);
    l2_.fill(line, true);
    return r.complete;
}

void
L2Subsystem::issuePrefetch(Addr line_addr, Tick when,
                           std::uint64_t corr_index, bool has_corr,
                           unsigned source)
{
    EBCP_PROFILE_SCOPE(PrefetchIssue);
    const Addr line = l2_.lineAddr(line_addr);
    if (l2_.contains(line) || prefBuf_.contains(line)) {
        ++filteredPrefetches_;
        return;
    }
    MemAccessResult r = mem_.access(when, MemReqType::Prefetch);
    if (r.dropped) {
        ++droppedPrefetches_;
        return;
    }
    ++issuedPrefetches_;
    ledger_.onIssue(source);
    EBCP_TRACE_EVENT(trace_, TraceEventKind::PrefetchIssue, when, 0, line,
                     corr_index);
    EBCP_TRACE_EVENT(trace_, TraceEventKind::PrefetchFill, r.complete, 0,
                     line);
    const PrefBufEvict evicted =
        prefBuf_.insert(line, r.complete, corr_index, has_corr,
                        static_cast<std::uint8_t>(source));
    if (evicted.line != InvalidAddr) {
        ledger_.onEvictUnused(evicted.source);
        EBCP_TRACE_EVENT(trace_, TraceEventKind::PrefetchEvict, when, 0,
                         evicted.line);
    }
}

MemAccessResult
L2Subsystem::tableRead(Tick when)
{
    ++tableReadsServedLifetime_;
    return mem_.access(when, MemReqType::TableRead, tableBytes_);
}

MemAccessResult
L2Subsystem::tableWrite(Tick when)
{
    ++tableWritesServedLifetime_;
    return mem_.access(when, MemReqType::TableWrite, tableBytes_);
}

void
L2Subsystem::audit(AuditContext &ctx) const
{
    // A buffered line must not also be L2-resident: issuePrefetch()
    // filters lines already on chip, and a buffer hit fills the L2
    // while consuming the buffer entry. Dual residence means a stale
    // or duplicated fill path.
    prefBuf_.forEachValid([&](Addr line, Tick) {
        ctx.check(!l2_.contains(line), "line_not_in_l2_and_buffer",
                  "line ", line, " resident in both the L2 and the "
                  "prefetch buffer");
    });
    // The ledger's exactly-once lifecycle identity closes over the
    // buffer's current occupancy, so the cross-component form lives
    // here rather than in either component.
    ledger_.audit(ctx, prefBuf_.validCount());
}

void
L2Subsystem::corruptForTest()
{
    const Addr line = l2_.lineAddr(0x1337'0000);
    prefBuf_.insert(line, 0, 0, false);
    l2_.fill(line);
}

void
L2Subsystem::beginMeasurement()
{
    stats_.resetAll();
    // Warm-up prefetches still buffer-resident will hit or evict
    // during measurement; record them so the ledger's lifecycle
    // states stay exactly-once across the reset.
    ledger_.beginMeasurement(prefBuf_.validCount());
    prefetcher_.beginMeasurement();
    epochs_.beginMeasurement();
}

void
L2Subsystem::ckpt(ckpt::Archiver &ar)
{
    l2_.ckpt(ar);
    prefBuf_.ckpt(ar);
    l2Mshrs_.ckpt(ar);
    epochs_.ckpt(ar);
    ledger_.ckpt(ar);
    ar.u64(demandCount_);
    ar.u64(tableReadsServedLifetime_);
    ar.u64(tableWritesServedLifetime_);
    stats_.ckpt(ar);
}

} // namespace ebcp
