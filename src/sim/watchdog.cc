#include "sim/watchdog.hh"

#include <sstream>

#include "core/ebcp.hh"

namespace ebcp
{

namespace
{

/** The facts both renderings share, gathered once. */
struct Snapshot
{
    Tick trippedAt;
    Tick gap;
    Tick healthy;
    std::uint64_t insts;
    double wallSeconds;
    unsigned robInFlight;
};

Snapshot
gather(CoreModel &core)
{
    Snapshot s{};
    s.trippedAt = core.now();
    s.gap = core.watchdogGap();
    s.healthy = s.trippedAt > s.gap ? s.trippedAt - s.gap : 0;
    s.insts = core.instCount();
    s.wallSeconds = core.watchdogWallSeconds();
    s.robInFlight = core.robOccupancyAfter(s.healthy);
    return s;
}

} // namespace

std::string
progressDiagnostic(const std::string &label, CoreModel &core,
                   L2Subsystem &l2side, MainMemory &mem,
                   Prefetcher &prefetcher, const WatchdogContext &ctx)
{
    std::ostringstream os;
    const Snapshot s = gather(core);

    os << "forward-progress watchdog tripped";
    if (!label.empty())
        os << " on " << label;
    os << ": " << s.gap << " ticks between retirements (last healthy "
       << "retire @" << s.healthy << ", stalled retire @" << s.trippedAt
       << ", " << s.insts << " insts processed)\n";

    os << "wall clock: " << s.wallSeconds
       << " s inside the stalled run\n";
    if (!ctx.tracePolicy.empty())
        os << "trace policy: " << ctx.tracePolicy << "\n";

    os << "rob: " << s.robInFlight
       << " entries were in flight across the stall\n";

    l2side.mshrs().dump(os);

    os << "read channel: " << mem.readChannel().busyTicks()
       << " busy ticks; write channel: "
       << mem.writeChannel().busyTicks() << " busy ticks\n";

    if (auto *e = dynamic_cast<EpochBasedPrefetcher *>(&prefetcher)) {
        const Emab &emab = e->emab();
        os << "emab: " << emab.size() << " epochs recorded\n";
        for (std::size_t i = 0; i < emab.size(); ++i) {
            const EmabEntry &ent = emab.entry(i);
            os << "  epoch " << ent.epoch << " key 0x" << std::hex
               << ent.keyAddr << std::dec << ", " << ent.missAddrs.size()
               << " misses\n";
        }
    }
    return os.str();
}

void
progressDiagnosticJson(JsonWriter &w, const std::string &label,
                       CoreModel &core, L2Subsystem &l2side,
                       MainMemory &mem, Prefetcher &prefetcher,
                       const WatchdogContext &ctx)
{
    const Snapshot s = gather(core);

    w.beginObject();
    w.kv("kind", "watchdog_stall");
    if (!label.empty())
        w.kv("core", label);
    w.kv("retire_gap_ticks", s.gap);
    w.kv("last_healthy_retire", s.healthy);
    w.kv("stalled_retire", s.trippedAt);
    w.kv("insts_processed", s.insts);
    w.kv("wall_seconds", s.wallSeconds);
    if (!ctx.tracePolicy.empty())
        w.kv("trace_policy", ctx.tracePolicy);
    w.kv("rob_in_flight", static_cast<std::uint64_t>(s.robInFlight));

    w.key("mshrs").beginObject();
    w.kv("occupancy",
         static_cast<std::uint64_t>(l2side.mshrs().occupancy()));
    w.kv("capacity", l2side.mshrs().capacity());
    w.endObject();

    w.key("channels").beginObject();
    w.kv("read_busy_ticks", mem.readChannel().busyTicks());
    w.kv("write_busy_ticks", mem.writeChannel().busyTicks());
    w.endObject();

    if (auto *e = dynamic_cast<EpochBasedPrefetcher *>(&prefetcher)) {
        const Emab &emab = e->emab();
        w.key("emab").beginArray();
        for (std::size_t i = 0; i < emab.size(); ++i) {
            const EmabEntry &ent = emab.entry(i);
            w.beginObject();
            w.kv("epoch", ent.epoch);
            w.kv("key", ent.keyAddr);
            w.kv("misses",
                 static_cast<std::uint64_t>(ent.missAddrs.size()));
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

} // namespace ebcp
