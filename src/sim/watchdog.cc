#include "sim/watchdog.hh"

#include <sstream>

#include "core/ebcp.hh"

namespace ebcp
{

std::string
progressDiagnostic(const std::string &label, CoreModel &core,
                   L2Subsystem &l2side, MainMemory &mem,
                   Prefetcher &prefetcher)
{
    std::ostringstream os;
    const Tick tripped_at = core.now();
    const Tick gap = core.watchdogGap();
    const Tick healthy = tripped_at > gap ? tripped_at - gap : 0;

    os << "forward-progress watchdog tripped";
    if (!label.empty())
        os << " on " << label;
    os << ": " << gap << " ticks between retirements (last healthy "
       << "retire @" << healthy << ", stalled retire @" << tripped_at
       << ", " << core.instCount() << " insts processed)\n";

    os << "rob: " << core.robOccupancyAfter(healthy)
       << " entries were in flight across the stall\n";

    l2side.mshrs().dump(os);

    os << "read channel: " << mem.readChannel().busyTicks()
       << " busy ticks; write channel: "
       << mem.writeChannel().busyTicks() << " busy ticks\n";

    if (auto *e = dynamic_cast<EpochBasedPrefetcher *>(&prefetcher)) {
        const Emab &emab = e->emab();
        os << "emab: " << emab.size() << " epochs recorded\n";
        for (std::size_t i = 0; i < emab.size(); ++i) {
            const EmabEntry &ent = emab.entry(i);
            os << "  epoch " << ent.epoch << " key 0x" << std::hex
               << ent.keyAddr << std::dec << ", " << ent.missAddrs.size()
               << " misses\n";
        }
    }
    return os.str();
}

} // namespace ebcp
