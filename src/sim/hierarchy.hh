/**
 * @file
 * A per-core port into the memory system: private L1 instruction and
 * data caches in front of a (possibly shared) L2Subsystem.
 *
 * Implements MemSystem for one core's timing model. A single-core
 * system has one Hierarchy; a CMP has one per core, all referencing
 * the same L2Subsystem (Figure 2's arrangement).
 */

#ifndef EBCP_SIM_HIERARCHY_HH
#define EBCP_SIM_HIERARCHY_HH

#include "cache/cache.hh"
#include "cpu/mem_iface.hh"
#include "sim/l2_subsystem.hh"
#include "sim/sim_config.hh"

namespace ebcp
{

/** One core's private L1s over the shared L2 side. */
class Hierarchy : public MemSystem
{
  public:
    Hierarchy(const SimConfig &cfg, L2Subsystem &l2side,
              unsigned core_id = 0);

    // MemSystem
    MemOutcome fetchInst(Addr pc, Tick when) override;
    MemOutcome load(Addr addr, Addr pc, Tick when) override;
    Tick store(Addr addr, Tick when) override;
    unsigned lineBytes() const override { return cfg_.l2.lineBytes; }

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    L2Subsystem &l2side() { return l2side_; }
    unsigned coreId() const { return coreId_; }

    /** Reset measurement statistics after warm-up. */
    void beginMeasurement();

    StatGroup &stats() { return stats_; }

    /** Serialize or restore the private L1 contents (checkpointing).
     * The shared L2 side is checkpointed once by its owner. */
    void ckpt(ckpt::Archiver &ar);

  private:
    SimConfig cfg_;
    L2Subsystem &l2side_;
    unsigned coreId_;

    Cache l1i_;
    Cache l1d_;
    StatGroup stats_;
};

} // namespace ebcp

#endif // EBCP_SIM_HIERARCHY_HH
