/**
 * @file
 * The shared L2-side of the memory system: the banked L2 (modeled as
 * one shared cache), the prefetch buffer searched in parallel with
 * it, the L2 MSHRs, the epoch tracker, and the prefetcher control
 * attachment point (Figure 2: the control sits in front of the
 * core-to-L2 crossbar and sees every core's L1 miss requests).
 *
 * One L2Subsystem is shared by every core port (Hierarchy), which is
 * exactly the paper's CMP arrangement and its single-core special
 * case.
 */

#ifndef EBCP_SIM_L2_SUBSYSTEM_HH
#define EBCP_SIM_L2_SUBSYSTEM_HH

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "cache/prefetch_buffer.hh"
#include "cpu/mem_iface.hh"
#include "epoch/epoch_tracker.hh"
#include "mem/main_memory.hh"
#include "prefetch/ledger.hh"
#include "prefetch/prefetcher.hh"
#include "sim/sim_config.hh"
#include "util/event_trace.hh"
#include "verify/audit.hh"

namespace ebcp
{

/** The shared L2 + prefetch machinery. */
class L2Subsystem : public PrefetchEngine
{
  public:
    L2Subsystem(const SimConfig &cfg, MainMemory &mem,
                Prefetcher &prefetcher);

    /**
     * Service an L1 miss from core @p core_id at time @p when.
     * @return completion time and off-chip flag.
     */
    MemOutcome access(Addr addr, Addr pc, Tick when, bool is_inst,
                      unsigned core_id);

    /**
     * Service an L1 store miss (weak consistency: drains in the
     * background). @return drain time.
     */
    Tick storeAccess(Addr addr, Tick when);

    // PrefetchEngine
    void issuePrefetch(Addr line_addr, Tick when,
                       std::uint64_t corr_index = 0,
                       bool has_corr = false,
                       unsigned source = 0) override;
    MemAccessResult tableRead(Tick when) override;
    MemAccessResult tableWrite(Tick when) override;
    Tick memoryLatency() const override { return mem_.config().latency; }

    /** Bytes per correlation-table transfer (set from table config). */
    void setTableTransferBytes(unsigned bytes) { tableBytes_ = bytes; }

    /**
     * Attach lifecycle tracing: one sink for the prefetch/demand
     * events recorded here, one EpochSpan row for the demand epoch
     * tracker, plus whatever rows the prefetcher adds. Observation
     * only; timing is unchanged.
     */
    void attachTraceLog(TraceLog &log);

    EpochTracker &epochTracker() { return epochs_; }
    Cache &l2() { return l2_; }
    PrefetchBuffer &prefetchBuffer() { return prefBuf_; }
    MshrFile &mshrs() { return l2Mshrs_; }
    PrefetchLedger &ledger() { return ledger_; }
    const PrefetchLedger &ledger() const { return ledger_; }

    std::uint64_t usefulPrefetches() const
    {
        return usefulPrefetches_.value();
    }
    std::uint64_t issuedPrefetches() const
    {
        return issuedPrefetches_.value();
    }
    std::uint64_t droppedPrefetches() const
    {
        return droppedPrefetches_.value();
    }
    std::uint64_t offChipInst() const { return offChipInst_.value(); }
    std::uint64_t offChipLoad() const { return offChipLoad_.value(); }

    /** Reset measurement statistics after warm-up. */
    void beginMeasurement();

    StatGroup &stats() { return stats_; }

    /**
     * Attach the invariant auditor: epoch triggers observed by the
     * demand tracker fire the epoch-cadence hook. Null is legal;
     * audit-disabled builds compile the hook out.
     */
    void setAuditor(Auditor *aud) { auditor_ = aud; }

    /** Lifetime (never reset) table transfers actually sent to
     * memory, balanced by the prefetcher against its own attempt
     * count to expose dropped-on-the-floor table traffic. */
    std::uint64_t tableReadsServedLifetime() const
    {
        return tableReadsServedLifetime_;
    }
    std::uint64_t tableWritesServedLifetime() const
    {
        return tableWritesServedLifetime_;
    }

    /**
     * Re-derive the L2-side exclusivity invariant: a line is never
     * resident in the L2 and the prefetch buffer at once (fills from
     * the buffer move the line into the L2 and the buffer entry is
     * consumed).
     */
    void audit(AuditContext &ctx) const;

    /** Test-only: plant one line in both structures so audit() trips. */
    void corruptForTest();

    /** Serialize or restore the shared L2-side state: L2 contents,
     * prefetch buffer, MSHRs, demand epoch tracker, ledger and
     * counters. The attached prefetcher checkpoints itself via its
     * own ckpt(); trace sinks and the auditor are run-scoped. */
    void ckpt(ckpt::Archiver &ar);

  private:
    /** Feed the demand epoch tracker and fire the audit epoch hook on
     * a trigger. */
    void
    observeEpoch(Tick issue, Tick complete)
    {
#if EBCP_AUDIT_ENABLED
        if (epochs_.observe(issue, complete).newEpoch)
            EBCP_AUDIT_EPOCH(auditor_, issue);
#else
        epochs_.observe(issue, complete);
#endif
    }

    SimConfig cfg_;
    MainMemory &mem_;
    Prefetcher &prefetcher_;

    Cache l2_;
    PrefetchBuffer prefBuf_;
    MshrFile l2Mshrs_;
    EpochTracker epochs_;
    PrefetchLedger ledger_;
    TraceSink *trace_ = nullptr;
    Auditor *auditor_ = nullptr;
    unsigned tableBytes_ = 64;
    std::uint64_t demandCount_ = 0; //!< demand accesses (fault trigger)
    std::uint64_t tableReadsServedLifetime_ = 0;
    std::uint64_t tableWritesServedLifetime_ = 0;

    StatGroup stats_;
    Scalar offChipInst_{"offchip_inst", "instruction fetches off chip"};
    Scalar offChipLoad_{"offchip_load", "loads off chip"};
    Scalar issuedPrefetches_{"issued_prefetches",
                             "prefetch reads sent to memory"};
    Scalar droppedPrefetches_{"dropped_prefetches",
                              "prefetch reads dropped (saturation)"};
    Scalar filteredPrefetches_{"filtered_prefetches",
                               "prefetch requests already on chip"};
    Scalar usefulPrefetches_{"useful_prefetches",
                             "demand accesses served by the buffer"};
    Scalar latePrefetchStalls_{"late_prefetch_stalls",
                               "buffer hits that still had to wait"};
    Average lateStallTicks_{"late_stall_ticks",
                            "residual wait of late prefetch hits"};
    Scalar injectedStalls_{"injected_stalls",
                           "demand-stall faults injected"};
};

} // namespace ebcp

#endif // EBCP_SIM_L2_SUBSYSTEM_HH
