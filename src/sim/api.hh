/**
 * @file
 * The public facade of the simulation core (`libsim`).
 *
 * Everything above the core -- the sweep/telemetry harness
 * (`src/harness`), the paper benches, the example CLIs, and the fuzz
 * drivers -- embeds the simulator through this one header. It
 * aggregates the stable surface:
 *
 *   - SimConfig / PrefetcherParams   configuration
 *   - Simulator / CmpSystem          single-core and CMP front doors
 *   - SimResults                     the bit-exact result record
 *   - configFingerprint()            checkpoint identity hashing
 *
 * The point is a *narrow, auditable* boundary: scripts/layering_lint.py
 * (driven by the checked-in layering.rules) rejects any include of a
 * `sim/` internal header from outside the core, so the only way the
 * harness can grow a dependency on core internals is to widen this
 * facade in a reviewed change. Tests are exempt -- they white-box the
 * internals on purpose.
 *
 * Lower layers (util/, stats/, trace/ workload generators, ckpt/) are
 * part of libsim's public surface as well and are included directly;
 * the facade covers only the sim/ glue layer, whose internals
 * (hierarchy wiring, L2 subsystem, watchdog plumbing) churn the most.
 */

#ifndef EBCP_SIM_API_HH
#define EBCP_SIM_API_HH

#include "sim/ckpt_io.hh"
#include "sim/cmp_system.hh"
#include "sim/prefetcher_factory.hh"
#include "sim/results.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

#endif // EBCP_SIM_API_HH
