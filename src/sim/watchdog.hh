/**
 * @file
 * Forward-progress watchdog diagnostics.
 *
 * When a CoreModel's retire-gap watchdog trips, the interesting
 * question is *what was in flight across the stall*: which window
 * entries had not retired, which MSHRs held unreturned misses, how
 * busy the memory channels were, and what the prefetcher's epoch
 * state looked like. progressDiagnostic() gathers all of that into a
 * human-readable dump so the Stalled status carries enough context to
 * localize the liveness bug without re-running under a debugger.
 */

#ifndef EBCP_SIM_WATCHDOG_HH
#define EBCP_SIM_WATCHDOG_HH

#include <string>

#include "cpu/core_model.hh"
#include "mem/main_memory.hh"
#include "prefetch/prefetcher.hh"
#include "sim/l2_subsystem.hh"

namespace ebcp
{

/**
 * Build the diagnostic dump for a tripped watchdog on @p core.
 * @p label names the core in multi-core dumps ("core0"); pass "" for
 * single-core systems.
 */
std::string progressDiagnostic(const std::string &label, CoreModel &core,
                               L2Subsystem &l2side, MainMemory &mem,
                               Prefetcher &prefetcher);

} // namespace ebcp

#endif // EBCP_SIM_WATCHDOG_HH
