/**
 * @file
 * Forward-progress watchdog diagnostics.
 *
 * When a CoreModel's retire-gap watchdog trips, the interesting
 * question is *what was in flight across the stall*: which window
 * entries had not retired, which MSHRs held unreturned misses, how
 * busy the memory channels were, and what the prefetcher's epoch
 * state looked like. progressDiagnostic() gathers all of that -- plus
 * run context the caller supplies (wall-clock time spent inside the
 * stalled run, the active trace-read policy) -- into a human-readable
 * dump, and progressDiagnosticJson() emits the same facts as one JSON
 * object so drivers can embed the diagnostic in stats.json instead of
 * scraping text. The text form remains the ostream fallback carried
 * by the Stalled status message.
 */

#ifndef EBCP_SIM_WATCHDOG_HH
#define EBCP_SIM_WATCHDOG_HH

#include <string>

#include "cpu/core_model.hh"
#include "mem/main_memory.hh"
#include "prefetch/prefetcher.hh"
#include "sim/l2_subsystem.hh"
#include "util/json.hh"

namespace ebcp
{

/** Run context the simulator layers cannot see on their own. */
struct WatchdogContext
{
    /** Active trace-read policy name ("" if the driver has none). */
    std::string tracePolicy;
};

/**
 * Build the diagnostic dump for a tripped watchdog on @p core.
 * @p label names the core in multi-core dumps ("core0"); pass "" for
 * single-core systems.
 */
std::string progressDiagnostic(const std::string &label, CoreModel &core,
                               L2Subsystem &l2side, MainMemory &mem,
                               Prefetcher &prefetcher,
                               const WatchdogContext &ctx = {});

/** The same diagnostic as one JSON object value on @p w. */
void progressDiagnosticJson(JsonWriter &w, const std::string &label,
                            CoreModel &core, L2Subsystem &l2side,
                            MainMemory &mem, Prefetcher &prefetcher,
                            const WatchdogContext &ctx = {});

} // namespace ebcp

#endif // EBCP_SIM_WATCHDOG_HH
