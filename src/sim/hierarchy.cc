#include "sim/hierarchy.hh"

namespace ebcp
{

Hierarchy::Hierarchy(const SimConfig &cfg, L2Subsystem &l2side,
                     unsigned core_id)
    : cfg_(cfg), l2side_(l2side), coreId_(core_id),
      l1i_(cfg.l1i), l1d_(cfg.l1d),
      stats_("core" + std::to_string(core_id) + "_l1")
{
    stats_.addChild(l1i_.stats());
    stats_.addChild(l1d_.stats());
}

MemOutcome
Hierarchy::fetchInst(Addr pc, Tick when)
{
    if (l1i_.access(pc, false)) {
        // Front-end pipelining hides the L1I hit latency.
        return {when, false};
    }
    MemOutcome out = l2side_.access(pc, pc, when + l1i_.hitLatency(),
                                    true, coreId_);
    l1i_.fill(l1i_.lineAddr(pc));
    return out;
}

MemOutcome
Hierarchy::load(Addr addr, Addr pc, Tick when)
{
    if (l1d_.access(addr, false))
        return {when + l1d_.hitLatency(), false};
    MemOutcome out = l2side_.access(addr, pc, when + l1d_.hitLatency(),
                                    false, coreId_);
    l1d_.fill(l1d_.lineAddr(addr));
    return out;
}

Tick
Hierarchy::store(Addr addr, Tick when)
{
    const Addr line = l1d_.lineAddr(addr);
    if (l1d_.access(line, true))
        return when + 1;
    Tick drain = l2side_.storeAccess(line, when);
    l1d_.fill(line, true);
    return drain;
}

void
Hierarchy::beginMeasurement()
{
    stats_.resetAll();
}

void
Hierarchy::ckpt(ckpt::Archiver &ar)
{
    l1i_.ckpt(ar);
    l1d_.ckpt(ar);
    stats_.ckpt(ar);
}

} // namespace ebcp
