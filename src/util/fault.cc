#include "util/fault.hh"

#include "util/str.hh"

namespace ebcp
{

std::vector<std::string>
FaultPlan::kindNames()
{
    return {"trace-bitflip", "trace-truncate", "trace-shortread",
            "table-drop",    "table-delay",    "demand-stall"};
}

StatusOr<FaultPlan>
FaultPlan::parse(const std::string &list, std::uint64_t seed)
{
    FaultPlan plan;
    plan.seed = seed;
    for (const std::string &raw : split(list, ',')) {
        const std::string kind = trim(raw);
        if (kind == "trace-bitflip")
            plan.traceBitflip = true;
        else if (kind == "trace-truncate")
            plan.traceTruncate = true;
        else if (kind == "trace-shortread")
            plan.traceShortRead = true;
        else if (kind == "table-drop")
            plan.tableDrop = true;
        else if (kind == "table-delay")
            plan.tableDelay = true;
        else if (kind == "demand-stall")
            plan.demandStall = true;
        else {
            std::string msg =
                logFormat("unknown fault kind '", kind, "'");
            const std::string near = nearestMatch(kind, kindNames());
            if (!near.empty())
                msg += logFormat(" (did you mean '", near, "'?)");
            return invalidArgError(msg);
        }
    }
    return plan;
}

} // namespace ebcp
