/**
 * @file
 * Recoverable-error reporting: Status and StatusOr<T>.
 *
 * The error-handling policy (see DESIGN.md section 7):
 *
 *  - panic()  : an internal invariant broke -- a simulator bug; abort.
 *  - Status   : the *input* was bad (unreadable trace, malformed
 *               config, unknown name) -- return the error to the
 *               caller, who renders it with context and decides
 *               whether to retry, skip, or exit.
 *  - watchdog : the timing model stopped making forward progress --
 *               liveness failure, reported as a Status carrying a
 *               diagnostic dump.
 *
 * Library code below the user-input boundary must not call fatal();
 * it returns a Status instead. Examples and benches are the boundary:
 * they render the message and exit nonzero.
 */

#ifndef EBCP_UTIL_STATUS_HH
#define EBCP_UTIL_STATUS_HH

#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "util/logging.hh"

namespace ebcp
{

/** Coarse classification of a recoverable error. */
enum class StatusCode
{
    Ok,
    InvalidArgument, //!< malformed user input (config value, name)
    NotFound,        //!< missing file / unknown key
    IoError,         //!< OS-level read/write failure (carries errno)
    Corruption,      //!< data failed an integrity check (CRC, header)
    Stalled,         //!< forward-progress watchdog tripped
    InvariantViolation, //!< a runtime structural audit found broken state
};

/** @return a short printable name for @p code. */
const char *statusCodeName(StatusCode code);

/** The result of an operation that can fail recoverably. */
class [[nodiscard]] Status
{
  public:
    /** Success. */
    Status() = default;

    /** An error of kind @p code described by @p msg. */
    Status(StatusCode code, std::string msg)
        : code_(code), msg_(std::move(msg))
    {}

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return msg_; }

    /** "code: message", for rendering at the CLI boundary. */
    std::string toString() const;

    /** A copy with "@p context: " prepended to the message. */
    Status withContext(const std::string &context) const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string msg_;
};

/** Shorthand constructors, stream-style like the logging macros. */
template <typename... Args>
Status
invalidArgError(Args &&...args)
{
    return Status(StatusCode::InvalidArgument,
                  logFormat(std::forward<Args>(args)...));
}

template <typename... Args>
Status
notFoundError(Args &&...args)
{
    return Status(StatusCode::NotFound,
                  logFormat(std::forward<Args>(args)...));
}

template <typename... Args>
Status
ioError(Args &&...args)
{
    return Status(StatusCode::IoError,
                  logFormat(std::forward<Args>(args)...));
}

template <typename... Args>
Status
corruptionError(Args &&...args)
{
    return Status(StatusCode::Corruption,
                  logFormat(std::forward<Args>(args)...));
}

template <typename... Args>
Status
stalledError(Args &&...args)
{
    return Status(StatusCode::Stalled,
                  logFormat(std::forward<Args>(args)...));
}

template <typename... Args>
Status
invariantError(Args &&...args)
{
    return Status(StatusCode::InvariantViolation,
                  logFormat(std::forward<Args>(args)...));
}

/** The current errno rendered as "error 2 (No such file...)". */
std::string errnoString();

/**
 * Either a value or the Status explaining why there is none.
 *
 * Accessing value() without checking ok() on an error is a programmer
 * bug and panics; callers are expected to branch on ok() (or use
 * valueOr) first.
 */
template <typename T>
class [[nodiscard]] StatusOr
{
  public:
    /** An error result; @p status must not be Ok. */
    StatusOr(Status status) : status_(std::move(status))
    {
        panic_if(status_.ok(), "StatusOr constructed from an Ok status");
    }

    /** A success result holding @p value (anything T constructs
     * from, e.g. unique_ptr to a derived type). */
    template <typename U = T,
              typename = std::enable_if_t<
                  std::is_constructible_v<T, U &&> &&
                  !std::is_same_v<std::decay_t<U>, StatusOr<T>> &&
                  !std::is_same_v<std::decay_t<U>, Status>>>
    StatusOr(U &&value) : value_(std::forward<U>(value))
    {}

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    T &
    value()
    {
        panic_if(!ok(), "StatusOr::value() on error: ",
                 status_.toString());
        return *value_;
    }

    const T &
    value() const
    {
        panic_if(!ok(), "StatusOr::value() on error: ",
                 status_.toString());
        return *value_;
    }

    /** Move the value out (for move-only payloads). */
    T
    take()
    {
        panic_if(!ok(), "StatusOr::take() on error: ",
                 status_.toString());
        return std::move(*value_);
    }

    /** The value, or @p def when this holds an error. */
    T
    valueOr(T def) const
    {
        return ok() ? *value_ : std::move(def);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace ebcp

#endif // EBCP_UTIL_STATUS_HH
