#include "util/config.hh"

#include <cstdlib>

#include "util/logging.hh"
#include "util/str.hh"

namespace ebcp
{

ConfigStore
ConfigStore::fromArgs(int argc, char **argv)
{
    ConfigStore cs;
    for (int i = 1; i < argc; ++i) {
        std::string arg(argv[i]);
        auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0)
            continue;
        cs.set(trim(arg.substr(0, eq)), trim(arg.substr(eq + 1)));
    }
    return cs;
}

void
ConfigStore::set(const std::string &key, const std::string &value)
{
    entries_[key] = value;
}

bool
ConfigStore::has(const std::string &key) const
{
    return entries_.count(key) != 0;
}

std::string
ConfigStore::getString(const std::string &key, const std::string &def) const
{
    auto it = entries_.find(key);
    return it == entries_.end() ? def : it->second;
}

std::uint64_t
ConfigStore::getU64(const std::string &key, std::uint64_t def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key '", key, "' is not an integer: ", it->second);
    return v;
}

double
ConfigStore::getDouble(const std::string &key, double def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key '", key, "' is not a number: ", it->second);
    return v;
}

bool
ConfigStore::getBool(const std::string &key, bool def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    std::string v = toLower(it->second);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("config key '", key, "' is not a boolean: ", it->second);
}

} // namespace ebcp
