#include "util/config.hh"

#include <cstdlib>

#include "util/logging.hh"
#include "util/str.hh"

namespace ebcp
{

StatusOr<ConfigStore>
ConfigStore::parseArgs(int argc, char **argv)
{
    ConfigStore cs;
    for (int i = 1; i < argc; ++i) {
        std::string arg(argv[i]);
        auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0)
            return invalidArgError("malformed argument '", arg,
                                   "' (expected key=value)");
        const std::string key = trim(arg.substr(0, eq));
        if (key.empty())
            return invalidArgError("malformed argument '", arg,
                                   "' (empty key)");
        cs.set(key, trim(arg.substr(eq + 1)));
    }
    return cs;
}

ConfigStore
ConfigStore::fromArgs(int argc, char **argv)
{
    StatusOr<ConfigStore> cs = parseArgs(argc, argv);
    if (!cs.ok())
        fatal(cs.status().toString());
    return cs.take();
}

void
ConfigStore::set(const std::string &key, const std::string &value)
{
    entries_[key] = value;
}

bool
ConfigStore::has(const std::string &key) const
{
    return entries_.count(key) != 0;
}

StatusOr<std::string>
ConfigStore::tryGetString(const std::string &key,
                          const std::string &def) const
{
    auto it = entries_.find(key);
    return it == entries_.end() ? def : it->second;
}

StatusOr<std::uint64_t>
ConfigStore::tryGetU64(const std::string &key, std::uint64_t def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        return invalidArgError("config key '", key,
                               "' is not an integer: ", it->second);
    return v;
}

StatusOr<double>
ConfigStore::tryGetDouble(const std::string &key, double def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        return invalidArgError("config key '", key,
                               "' is not a number: ", it->second);
    return v;
}

StatusOr<bool>
ConfigStore::tryGetBool(const std::string &key, bool def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    std::string v = toLower(it->second);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    return invalidArgError("config key '", key,
                           "' is not a boolean: ", it->second);
}

std::string
ConfigStore::getString(const std::string &key, const std::string &def) const
{
    return tryGetString(key, def).take();
}

std::uint64_t
ConfigStore::getU64(const std::string &key, std::uint64_t def) const
{
    StatusOr<std::uint64_t> v = tryGetU64(key, def);
    if (!v.ok())
        fatal(v.status().toString());
    return v.value();
}

double
ConfigStore::getDouble(const std::string &key, double def) const
{
    StatusOr<double> v = tryGetDouble(key, def);
    if (!v.ok())
        fatal(v.status().toString());
    return v.value();
}

bool
ConfigStore::getBool(const std::string &key, bool def) const
{
    StatusOr<bool> v = tryGetBool(key, def);
    if (!v.ok())
        fatal(v.status().toString());
    return v.value();
}

Status
ConfigStore::checkKnownKeys(const std::vector<std::string> &known) const
{
    for (const auto &kv : entries_) {
        bool found = false;
        for (const std::string &k : known) {
            if (kv.first == k) {
                found = true;
                break;
            }
        }
        if (found)
            continue;
        std::string msg = logFormat("unknown key '", kv.first, "'");
        const std::string near = nearestMatch(kv.first, known);
        if (!near.empty())
            msg += logFormat(" (did you mean '", near, "'?)");
        return invalidArgError(msg);
    }
    return Status();
}

} // namespace ebcp
