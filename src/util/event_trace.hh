/**
 * @file
 * Lifecycle event tracing with Chrome trace_event export.
 *
 * The paper's argument is temporal: a trigger observed in epoch i
 * must land its prefetches before epoch i+2 begins. End-of-run
 * aggregates cannot show whether that pipeline actually ran ahead of
 * the demand stream, so components record typed events (epoch spans,
 * EMAB inserts/evictions, correlation-table reads, the full
 * issue->fill->first-use life of every prefetch, demand misses) into
 * per-writer TraceSink ring buffers, and a TraceLog exports the
 * merged stream as Chrome trace_event JSON that chrome://tracing and
 * Perfetto load directly -- one timeline row per writer, one span per
 * epoch, so the i -> i+2 pipeline is visible at a glance.
 *
 * Overhead discipline:
 *  - recording is observation-only: no event ever feeds back into
 *    timing, so traced and untraced runs produce bit-identical
 *    SimResults (tests/test_observability.cc proves it);
 *  - every record site goes through EBCP_TRACE_EVENT, which is a
 *    null-pointer test when tracing is off at runtime and compiles
 *    to nothing under -DEBCP_DISABLE_EVENT_TRACE;
 *  - a sink is single-writer by construction (each simulated
 *    component owns its sink; sweep threads never share one), so the
 *    ring needs no locks or atomics -- "lock-free" the cheap way;
 *  - the ring keeps the newest events and counts what it overwrote,
 *    so tracing never allocates after construction.
 */

#ifndef EBCP_UTIL_EVENT_TRACE_HH
#define EBCP_UTIL_EVENT_TRACE_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.hh"
#include "util/types.hh"

namespace ebcp
{

/** Everything the timeline distinguishes. */
enum class TraceEventKind : std::uint8_t
{
    EpochSpan,         //!< one epoch [start, end); a0=epoch, a1=misses
    EmabInsert,        //!< epoch opened in the EMAB; a0=epoch, a1=key
    EmabEvict,         //!< oldest epoch aged out; a0=epoch, a1=misses
    TableRead,         //!< correlation read issue->complete; a0=key
    TableWrite,        //!< correlation write issued; a0=key
    PrefetchIssue,     //!< read sent to memory; a0=line, a1=corr index
    PrefetchFill,      //!< line lands in the buffer; a0=line
    PrefetchHitTimely, //!< demand hit, data on chip; a0=line
    PrefetchHitLate,   //!< demand hit, in flight; a0=line, a1=residual
    PrefetchEvict,     //!< evicted before any use; a0=line
    DemandMiss,        //!< off-chip demand issue->fill; a0=line
};

/** Number of distinct TraceEventKind values. */
constexpr std::size_t NumTraceEventKinds =
    static_cast<std::size_t>(TraceEventKind::DemandMiss) + 1;

/** One recorded event. POD; 40 bytes. */
struct TraceEvent
{
    Tick tick = 0;          //!< start tick
    Tick dur = 0;           //!< duration in ticks (0 for instants)
    std::uint64_t a0 = 0;   //!< kind-specific payload
    std::uint64_t a1 = 0;
    TraceEventKind kind = TraceEventKind::DemandMiss;
};

/**
 * A single-writer bounded event ring. Owned by a TraceLog; components
 * hold a raw pointer and record through EBCP_TRACE_EVENT.
 */
class TraceSink
{
  public:
    /**
     * @param name Perfetto thread name for this writer's row
     * @param tid trace-level thread id (core id for per-core writers)
     * @param capacity events retained (newest win); power of two
     */
    TraceSink(std::string name, std::uint32_t tid, std::size_t capacity);

    void
    record(TraceEventKind kind, Tick tick, Tick dur = 0,
           std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        TraceEvent &e = ring_[head_ & mask_];
        e.tick = tick;
        e.dur = dur;
        e.a0 = a0;
        e.a1 = a1;
        e.kind = kind;
        ++head_;
    }

    const std::string &name() const { return name_; }
    std::uint32_t tid() const { return tid_; }

    /** Events currently retained. */
    std::size_t size() const;

    /** Events overwritten because the ring wrapped. */
    std::uint64_t dropped() const;

    /** Retained events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

  private:
    std::string name_;
    std::uint32_t tid_;
    std::uint64_t head_ = 0; //!< total events ever recorded
    std::size_t mask_;
    std::vector<TraceEvent> ring_;
};

/**
 * The per-run collection of sinks plus the Chrome trace_event
 * exporter. One TraceLog per Simulator/CmpSystem; never shared across
 * sweep threads.
 */
class TraceLog
{
  public:
    /** @param events_per_sink ring capacity (rounded up to pow2). */
    explicit TraceLog(std::size_t events_per_sink = 1u << 16);

    /**
     * Create (or return the existing) sink named @p name on timeline
     * row @p tid. Pointers remain stable for the log's lifetime.
     */
    TraceSink *sink(const std::string &name, std::uint32_t tid);

    const std::vector<std::unique_ptr<TraceSink>> &sinks() const
    {
        return sinks_;
    }

    /** Total events dropped across all sinks. */
    std::uint64_t totalDropped() const;

    /** Total events currently retained across all sinks. */
    std::size_t totalEvents() const;

    /**
     * Record one sample of the named counter track (exported as a
     * Chrome "C" event on pid 0, merged into the tick-ordered
     * stream). The Simulator samples occupancy-style values on the
     * IntervalSampler cadence, so Perfetto shows time-series next to
     * the lifecycle spans.
     */
    void counterSample(std::string name, Tick tick, double value);

    /** Counter samples recorded so far (insertion order). */
    std::size_t counterSamples() const { return counters_.size(); }

    /**
     * Append one pre-placed "X" span on an arbitrary (pid, tid)
     * track; used by the self-profiler to attach its host-time flame
     * (ts/dur in nanoseconds on its own pid). Spans are written in
     * insertion order after the merged tick stream, so the caller
     * must insert each track's spans in non-decreasing ts order.
     */
    void addSpan(std::string name, std::string cat, std::uint32_t pid,
                 std::uint32_t tid, double ts, double dur);

    /** Label @p pid with a process_name metadata row. */
    void setProcessName(std::uint32_t pid, std::string name);

    /**
     * Write the merged event stream as a Chrome trace_event JSON
     * document ("traceEvents" array object form, ts in simulated
     * ticks). Loadable by chrome://tracing and Perfetto.
     */
    void writeChromeJson(std::ostream &os) const;

    /** writeChromeJson() to @p path, then re-read and validate. */
    Status exportChromeJson(const std::string &path) const;

  private:
    struct CounterSample
    {
        std::string name;
        Tick tick;
        double value;
    };

    struct ExtraSpan
    {
        std::string name;
        std::string cat;
        std::uint32_t pid;
        std::uint32_t tid;
        double ts;
        double dur;
    };

    std::size_t capacity_;
    std::vector<std::unique_ptr<TraceSink>> sinks_;
    std::vector<CounterSample> counters_;
    std::vector<ExtraSpan> extraSpans_;
    std::vector<std::pair<std::uint32_t, std::string>> processNames_;
};

/**
 * Schema check for an exported timeline: well-formed JSON, a
 * "traceEvents" array whose entries carry the mandatory trace_event
 * members (name/ph/ts/pid/tid), and per-(pid, tid)-track monotone
 * non-negative ts -- which is what Perfetto's importer requires;
 * tracks on different pids (e.g. the self-profiler's flame) may use
 * different time units and need not interleave monotonically.
 */
Status validateChromeTraceJson(const std::string &text);

} // namespace ebcp

/**
 * Record an event through a possibly-null TraceSink*. The macro is
 * the only sanctioned record path: it keeps the disabled cost to one
 * predictable branch and lets -DEBCP_DISABLE_EVENT_TRACE compile
 * every site away entirely.
 */
#ifndef EBCP_DISABLE_EVENT_TRACE
#define EBCP_TRACE_EVENT(sink, ...)                                        \
    do {                                                                   \
        if (sink)                                                          \
            (sink)->record(__VA_ARGS__);                                   \
    } while (0)
#else
#define EBCP_TRACE_EVENT(sink, ...)                                        \
    do {                                                                   \
    } while (0)
#endif

#endif // EBCP_UTIL_EVENT_TRACE_HH
