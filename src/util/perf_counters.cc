#include "util/perf_counters.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#endif

namespace ebcp
{

#if defined(__linux__)

namespace
{

int
openCounter(std::uint32_t type, std::uint64_t config)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    // pid=0 cpu=-1: this thread, any CPU.
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

std::uint64_t
readCounter(int fd)
{
    if (fd < 0)
        return 0;
    std::uint64_t v = 0;
    if (read(fd, &v, sizeof(v)) != static_cast<ssize_t>(sizeof(v)))
        return 0;
    return v;
}

void
controlCounter(int fd, unsigned long request)
{
    if (fd >= 0)
        ioctl(fd, request, 0);
}

/** This thread's user+system CPU time, in seconds. Prefers the
 * nanosecond-resolution scheduler clock: getrusage times are
 * tick-quantized on many kernels (whole milliseconds), which is
 * useless for sub-percent comparisons of runs tens of ms long. */
double
threadCpuSeconds()
{
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    rusage ru{};
    if (getrusage(RUSAGE_THREAD, &ru) != 0)
        return 0.0;
    const auto tv = [](const timeval &t) {
        return static_cast<double>(t.tv_sec) +
               static_cast<double>(t.tv_usec) * 1e-6;
    };
    return tv(ru.ru_utime) + tv(ru.ru_stime);
}

/** First "cpu MHz" line of /proc/cpuinfo, as Hz (0 if unreadable). */
double
nominalCpuHz()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("cpu MHz", 0) != 0)
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        const double mhz = std::atof(line.c_str() + colon + 1);
        if (mhz > 0.0)
            return mhz * 1e6;
    }
    return 0.0;
}

/** The kernel's perf_event_paranoid setting, or "unreadable". */
std::string
paranoidSetting()
{
    std::ifstream in("/proc/sys/kernel/perf_event_paranoid");
    std::string v;
    if (in >> v)
        return v;
    return "unreadable";
}

} // namespace

PerfCounters::PerfCounters()
{
    cyclesFd_ = openCounter(PERF_TYPE_HARDWARE,
                            PERF_COUNT_HW_CPU_CYCLES);
    const int open_errno = cyclesFd_ < 0 ? errno : 0;
    instructionsFd_ = openCounter(PERF_TYPE_HARDWARE,
                                  PERF_COUNT_HW_INSTRUCTIONS);
    cacheMissesFd_ = openCounter(PERF_TYPE_HARDWARE,
                                 PERF_COUNT_HW_CACHE_MISSES);
    branchMissesFd_ = openCounter(PERF_TYPE_HARDWARE,
                                  PERF_COUNT_HW_BRANCH_MISSES);
    available_ = cyclesFd_ >= 0 && instructionsFd_ >= 0;
    if (!available_) {
        // Say exactly which door is closed: the syscall's errno plus
        // the paranoid setting distinguishes "container seccomp
        // denies the syscall" (EACCES/EPERM) from "kernel built
        // without perf" (ENOSYS) from "paranoid level too high".
        std::ostringstream os;
        os << "perf_event_open failed ("
           << (open_errno ? std::strerror(open_errno) : "cycle counter "
                                                        "unavailable")
           << "; perf_event_paranoid=" << paranoidSetting()
           << "); cycles below are estimated from thread CPU time x "
              "nominal "
           << "frequency";
        reason_ = os.str();
        nominalHz_ = nominalCpuHz();
        if (nominalHz_ <= 0.0) {
            reason_ += "; /proc/cpuinfo reports no cpu MHz, so the "
                       "cycle estimate is unavailable too";
        }
    }
}

PerfCounters::~PerfCounters()
{
    for (int fd : {cyclesFd_, instructionsFd_, cacheMissesFd_,
                   branchMissesFd_})
        if (fd >= 0)
            close(fd);
}

void
PerfCounters::start()
{
    startCpuSeconds_ = threadCpuSeconds();
    for (int fd : {cyclesFd_, instructionsFd_, cacheMissesFd_,
                   branchMissesFd_}) {
        controlCounter(fd, PERF_EVENT_IOC_RESET);
        controlCounter(fd, PERF_EVENT_IOC_ENABLE);
    }
}

void
PerfCounters::stop()
{
    for (int fd : {cyclesFd_, instructionsFd_, cacheMissesFd_,
                   branchMissesFd_})
        controlCounter(fd, PERF_EVENT_IOC_DISABLE);
    sample_ = {};
    sample_.available = available_;
    sample_.cpuSeconds = threadCpuSeconds() - startCpuSeconds_;
    if (available_) {
        sample_.cycles = readCounter(cyclesFd_);
        sample_.instructions = readCounter(instructionsFd_);
        sample_.cacheMisses = readCounter(cacheMissesFd_);
        sample_.branchMisses = readCounter(branchMissesFd_);
        sample_.nominalSource = "hardware";
        return;
    }
    // Degraded path: estimate cycles from CPU time at the nominal
    // frequency. Instructions stay zero -- there is no honest
    // CPU-time stand-in for an instruction count -- and the reason
    // string plus the frequency source travel with the sample so
    // reports can print the cause instead of a bare zero.
    sample_.reason = reason_;
    sample_.nominalSource = "unavailable";
    if (nominalHz_ > 0.0 && sample_.cpuSeconds > 0.0) {
        sample_.estimated = true;
        sample_.nominalHz = nominalHz_;
        sample_.nominalSource = "/proc/cpuinfo cpu MHz";
        sample_.cycles = static_cast<std::uint64_t>(
            sample_.cpuSeconds * nominalHz_);
    }
}

#else // !__linux__

PerfCounters::PerfCounters()
{
    reason_ = "hardware performance counters are only wired up on "
              "Linux (perf_event_open)";
}

PerfCounters::~PerfCounters() = default;

void
PerfCounters::start()
{
}

void
PerfCounters::stop()
{
    sample_ = {};
    sample_.reason = reason_;
    sample_.nominalSource = "unavailable";
}

#endif

} // namespace ebcp
