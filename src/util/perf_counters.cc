#include "util/perf_counters.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#include <initializer_list>
#endif

namespace ebcp
{

#if defined(__linux__)

namespace
{

int
openCounter(std::uint32_t type, std::uint64_t config)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    // pid=0 cpu=-1: this thread, any CPU.
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

std::uint64_t
readCounter(int fd)
{
    if (fd < 0)
        return 0;
    std::uint64_t v = 0;
    if (read(fd, &v, sizeof(v)) != static_cast<ssize_t>(sizeof(v)))
        return 0;
    return v;
}

void
controlCounter(int fd, unsigned long request)
{
    if (fd >= 0)
        ioctl(fd, request, 0);
}

} // namespace

PerfCounters::PerfCounters()
{
    cyclesFd_ = openCounter(PERF_TYPE_HARDWARE,
                            PERF_COUNT_HW_CPU_CYCLES);
    instructionsFd_ = openCounter(PERF_TYPE_HARDWARE,
                                  PERF_COUNT_HW_INSTRUCTIONS);
    cacheMissesFd_ = openCounter(PERF_TYPE_HARDWARE,
                                 PERF_COUNT_HW_CACHE_MISSES);
    branchMissesFd_ = openCounter(PERF_TYPE_HARDWARE,
                                  PERF_COUNT_HW_BRANCH_MISSES);
    available_ = cyclesFd_ >= 0 && instructionsFd_ >= 0;
}

PerfCounters::~PerfCounters()
{
    for (int fd : {cyclesFd_, instructionsFd_, cacheMissesFd_,
                   branchMissesFd_})
        if (fd >= 0)
            close(fd);
}

void
PerfCounters::start()
{
    for (int fd : {cyclesFd_, instructionsFd_, cacheMissesFd_,
                   branchMissesFd_}) {
        controlCounter(fd, PERF_EVENT_IOC_RESET);
        controlCounter(fd, PERF_EVENT_IOC_ENABLE);
    }
}

void
PerfCounters::stop()
{
    for (int fd : {cyclesFd_, instructionsFd_, cacheMissesFd_,
                   branchMissesFd_})
        controlCounter(fd, PERF_EVENT_IOC_DISABLE);
    sample_.available = available_;
    sample_.cycles = readCounter(cyclesFd_);
    sample_.instructions = readCounter(instructionsFd_);
    sample_.cacheMisses = readCounter(cacheMissesFd_);
    sample_.branchMisses = readCounter(branchMissesFd_);
}

#else // !__linux__

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;

void
PerfCounters::start()
{
}

void
PerfCounters::stop()
{
    sample_ = {};
}

#endif

} // namespace ebcp
