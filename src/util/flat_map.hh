/**
 * @file
 * Group-probed open-addressed hash map for the simulator's hottest
 * structures.
 *
 * The first-generation FlatMap probed one slot at a time: each probe
 * loaded a full Slot (key + inline value + used flag), so a lookup at
 * realistic load factors touched several cache lines and compared
 * several keys. This version splits the table into three parallel
 * arrays (control bytes / keys / values -- an SoA layout) and probes
 * Swiss-table style: a one-byte control word per slot holds either an
 * "empty" sentinel or the H2 fingerprint (top 7 bits) of the slot
 * key's hash, and lookups scan a whole group of those bytes at once --
 * 16 at a time with SSE2, 8 at a time with a portable 64-bit
 * bitmask fallback (-DEBCP_NO_SIMD). Keys are only compared for slots
 * whose fingerprint matches, so a find touches one control-byte line
 * per group and almost always exactly one key.
 *
 * Deletion uses backward-shift (no tombstones): displaced slots are
 * moved back over the hole so probe chains never accumulate dead
 * entries and lookup cost stays proportional to live load.
 *
 * The map is reserve-aware: reserve(n) sizes the arrays so n entries
 * fit under the load-factor cap without rehashing, which is how the
 * MSHR file achieves zero steady-state allocation.
 *
 * Cheap always-on counters (FlatMapStats) feed the throughput bench's
 * per-structure probe statistics. findProbes counts *key comparisons*
 * (candidate slots whose fingerprint matched), findGroups counts
 * control-byte groups scanned; with the fingerprint filter in place,
 * probes-per-find measures hash quality rather than chain length.
 */

#ifndef EBCP_UTIL_FLAT_MAP_HH
#define EBCP_UTIL_FLAT_MAP_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/bitfield.hh"
#include "util/logging.hh"

#if !defined(EBCP_NO_SIMD) && defined(__SSE2__)
#define EBCP_FLATMAP_SIMD 1
#include <emmintrin.h>
#else
#define EBCP_FLATMAP_SIMD 0
#endif

namespace ebcp
{

/** Operation counters of one FlatMap (throughput-bench reporting). */
struct FlatMapStats
{
    std::uint64_t finds = 0;       //!< find() calls
    std::uint64_t findProbes = 0;  //!< candidate keys compared across
                                   //!< finds (fingerprint matches)
    std::uint64_t findGroups = 0;  //!< control-byte groups scanned
    std::uint64_t hits = 0;        //!< finds that located the key
    std::uint64_t inserts = 0;     //!< new keys stored
    std::uint64_t erases = 0;      //!< keys removed
    std::uint64_t backshifts = 0;  //!< slots moved by backward-shift
    std::uint64_t rehashes = 0;    //!< load-triggered growths; a
                                   //!< deliberate reserve() is not
                                   //!< counted

    /** Mean key comparisons per find (1.0 = one fingerprint-confirmed
     * candidate per lookup; misses can bring it below 1). */
    double
    probesPerFind() const
    {
        return finds ? static_cast<double>(findProbes) /
                           static_cast<double>(finds)
                     : 0.0;
    }

    /** Mean control-byte groups scanned per find. */
    double
    groupsPerFind() const
    {
        return finds ? static_cast<double>(findGroups) /
                           static_cast<double>(finds)
                     : 0.0;
    }
};

/** Default hash: finalize with mix64 so regular strides spread out. */
struct FlatHash
{
    std::uint64_t
    operator()(std::uint64_t k) const
    {
        return mix64(k);
    }
};

namespace flat_detail
{

/** The "no entry here" control byte; used slots hold a 7-bit H2
 * fingerprint, so the high bit cleanly separates the two. */
constexpr std::uint8_t kCtrlEmpty = 0x80;

/** H2: the hash bits not used for slot selection, as a 7-bit
 * fingerprint stored in the control byte. */
inline std::uint8_t
ctrlH2(std::uint64_t hash)
{
    return static_cast<std::uint8_t>(hash >> 57);
}

#if EBCP_FLATMAP_SIMD

/** One SSE2 probe group: 16 control bytes scanned per load. */
struct Group
{
    static constexpr std::size_t kWidth = 16;

    __m128i v;

    static Group
    load(const std::uint8_t *p)
    {
        return {_mm_loadu_si128(reinterpret_cast<const __m128i *>(p))};
    }

    /** Bitmask of lanes whose control byte equals @p h2 (exact). */
    std::uint32_t
    match(std::uint8_t h2) const
    {
        const __m128i dup = _mm_set1_epi8(static_cast<char>(h2));
        return static_cast<std::uint32_t>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(v, dup)));
    }

    /** Bitmask of empty lanes (kCtrlEmpty is the only value with the
     * high bit set, so movemask alone suffices). */
    std::uint32_t
    matchEmpty() const
    {
        return static_cast<std::uint32_t>(_mm_movemask_epi8(v));
    }

    /** Lane index of the lowest set bit of @p mask. */
    static unsigned
    lane(std::uint32_t mask)
    {
        return static_cast<unsigned>(__builtin_ctz(mask));
    }

    /** Clear the lowest set bit of @p mask. */
    static std::uint32_t
    clearLowest(std::uint32_t mask)
    {
        return mask & (mask - 1);
    }
};

#else // !EBCP_FLATMAP_SIMD

/**
 * Portable scalar-bitmask probe group: 8 control bytes scanned per
 * 64-bit load using the SWAR zero-byte trick. match() may report a
 * false-positive lane when borrow propagation crosses a genuinely
 * matching byte -- harmless, because every candidate is confirmed by
 * a full key comparison -- but matchEmpty() is exact, so probe chains
 * terminate correctly.
 */
struct Group
{
    static constexpr std::size_t kWidth = 8;

    static constexpr std::uint64_t kLsbs = 0x0101010101010101ULL;
    static constexpr std::uint64_t kMsbs = 0x8080808080808080ULL;

    std::uint64_t v;

    static Group
    load(const std::uint8_t *p)
    {
        std::uint64_t word;
        std::memcpy(&word, p, sizeof(word));
        return {word};
    }

    /** Bitmask (one bit per lane, bit = lane * 8 + 7) of lanes whose
     * control byte equals @p h2, possibly with false positives. */
    std::uint64_t
    match(std::uint8_t h2) const
    {
        const std::uint64_t x = v ^ (kLsbs * h2);
        return (x - kLsbs) & ~x & kMsbs;
    }

    /** Bitmask of empty lanes (exact: kCtrlEmpty's high bit). */
    std::uint64_t
    matchEmpty() const
    {
        return v & kMsbs;
    }

    static unsigned
    lane(std::uint64_t mask)
    {
        return static_cast<unsigned>(__builtin_ctzll(mask)) >> 3;
    }

    static std::uint64_t
    clearLowest(std::uint64_t mask)
    {
        return mask & (mask - 1);
    }
};

#endif // EBCP_FLATMAP_SIMD

} // namespace flat_detail

/**
 * Group-probed open-addressed hash map from a 64-bit key to V.
 *
 * Probing is linear at slot granularity (insertion claims the first
 * empty slot after the home slot), scanned a group at a time. Grows
 * by doubling at 7/8 load. Iteration order is the slot order
 * (unspecified, like unordered_map's); callers that iterate must be
 * order-insensitive.
 */
template <typename V, typename Hash = FlatHash>
class FlatMap
{
    using Group = flat_detail::Group;
    static constexpr std::size_t kGroupWidth = Group::kWidth;
    static constexpr std::size_t kMinCapacity = 16;

  public:
    using Key = std::uint64_t;

    explicit FlatMap(std::size_t initial_capacity = kMinCapacity)
    {
        std::size_t cap = kMinCapacity;
        while (cap < initial_capacity)
            cap <<= 1;
        allocate(cap);
    }

    /** Size the arrays so @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        // Stay strictly below the 7/8 growth trigger.
        std::size_t cap = capacity();
        while (n + (n >> 3) + 1 > cap - (cap >> 3))
            cap <<= 1;
        if (cap != capacity())
            rehash(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return keys_.size(); }

    /** @return pointer to the value for @p key, or nullptr. */
    V *
    find(Key key)
    {
        ++stats_.finds;
        const std::uint64_t h = Hash{}(key);
        const std::uint8_t h2 = flat_detail::ctrlH2(h);
        std::size_t i = h & mask_;
        while (true) {
            ++stats_.findGroups;
            const Group g = Group::load(&ctrl_[i]);
            for (auto m = g.match(h2); m; m = Group::clearLowest(m)) {
                ++stats_.findProbes;
                const std::size_t s = (i + Group::lane(m)) & mask_;
                if (keys_[s] == key) {
                    ++stats_.hits;
                    return &values_[s];
                }
            }
            if (g.matchEmpty())
                return nullptr;
            i = (i + kGroupWidth) & mask_;
        }
    }

    const V *
    find(Key key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    /** Value for @p key, default-constructing a new entry if absent. */
    V &
    operator[](Key key)
    {
        if (V *v = find(key))
            return *v;
        maybeGrow();
        const std::uint64_t h = Hash{}(key);
        const std::size_t s = firstEmpty(h & mask_);
        keys_[s] = key;
        setCtrl(s, flat_detail::ctrlH2(h));
        values_[s] = V{};
        ++size_;
        ++stats_.inserts;
        return values_[s];
    }

    /** Insert or overwrite @p key -> @p value. */
    void
    insert(Key key, V value)
    {
        (*this)[key] = std::move(value);
    }

    /**
     * Remove @p key. Backward-shift compaction: later slots of the
     * probe chain that would become unreachable are moved over the
     * hole, so no tombstones are ever left behind.
     *
     * @return true if the key was present.
     */
    bool
    erase(Key key)
    {
        const std::uint64_t h = Hash{}(key);
        std::size_t i = h & mask_;
        while (true) {
            if (ctrl_[i] == flat_detail::kCtrlEmpty)
                return false;
            if (ctrl_[i] == flat_detail::ctrlH2(h) && keys_[i] == key)
                break;
            i = (i + 1) & mask_;
        }
        ++stats_.erases;
        --size_;

        // Shift successors back while they are displaced past the hole.
        std::size_t hole = i;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask_;
            if (ctrl_[j] == flat_detail::kCtrlEmpty)
                break;
            const std::size_t home = Hash{}(keys_[j]) & mask_;
            // The slot may move into the hole iff its home position
            // does not lie cyclically inside (hole, j] -- otherwise
            // the move would put it before its home and break lookups.
            const std::size_t dist_home = (j - home) & mask_;
            const std::size_t dist_hole = (j - hole) & mask_;
            if (dist_home >= dist_hole) {
                keys_[hole] = keys_[j];
                values_[hole] = std::move(values_[j]);
                setCtrl(hole, ctrl_[j]);
                setCtrl(j, flat_detail::kCtrlEmpty);
                hole = j;
                ++stats_.backshifts;
            }
        }
        setCtrl(hole, flat_detail::kCtrlEmpty);
        values_[hole] = V{};
        return true;
    }

    /** Drop all entries; keeps the arrays (no deallocation). */
    void
    clear()
    {
        for (std::size_t i = 0; i < capacity(); ++i) {
            if (ctrl_[i] != flat_detail::kCtrlEmpty)
                values_[i] = V{};
        }
        std::fill(ctrl_.begin(), ctrl_.end(), flat_detail::kCtrlEmpty);
        size_ = 0;
    }

    /** Visit every (key, value) pair; order is unspecified. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < capacity(); ++i)
            if (ctrl_[i] != flat_detail::kCtrlEmpty)
                fn(keys_[i], values_[i]);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < capacity(); ++i)
            if (ctrl_[i] != flat_detail::kCtrlEmpty)
                fn(keys_[i], values_[i]);
    }

    const FlatMapStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    /**
     * Structural self-check for the audit layer (which lives above
     * util and so cannot be included from here): size() must equal
     * the number of used slots, keys must be unique, every used
     * slot's control byte must carry the H2 fingerprint of its own
     * key's hash (a mismatched fingerprint makes the group probe skip
     * the slot, so the entry silently vanishes from lookups), the
     * control mirror that lets group loads run past the array end
     * must agree with the primary bytes, and every used slot must be
     * reachable from its key's home slot without crossing an empty
     * slot -- the linear-probing invariant that backward-shift
     * deletion exists to maintain.
     *
     * @return empty when intact, else a description of the breakage.
     */
    std::string
    integrityError() const
    {
        const std::size_t cap = capacity();
        std::size_t used = 0;
        std::vector<Key> keys;
        keys.reserve(size_);
        for (std::size_t j = 0; j < cap; ++j) {
            if (ctrl_[j] == flat_detail::kCtrlEmpty)
                continue;
            ++used;
            keys.push_back(keys_[j]);
            const std::uint64_t h = Hash{}(keys_[j]);
            if (ctrl_[j] != flat_detail::ctrlH2(h))
                return "slot " + std::to_string(j) + " (key " +
                       std::to_string(keys_[j]) + ") control byte " +
                       std::to_string(ctrl_[j]) +
                       " does not match its key's fingerprint " +
                       std::to_string(flat_detail::ctrlH2(h)) +
                       " -- group probes skip the entry";
            const std::size_t home = h & mask_;
            // Every slot cyclically in [home, j) must be occupied,
            // or find(keys_[j]) stops at the gap and misses this
            // entry.
            for (std::size_t i = home; i != j; i = (i + 1) & mask_) {
                if (ctrl_[i] == flat_detail::kCtrlEmpty)
                    return "slot " + std::to_string(j) + " (key " +
                           std::to_string(keys_[j]) +
                           ") unreachable: empty slot " +
                           std::to_string(i) + " breaks its probe chain";
            }
        }
        for (std::size_t j = 0; j < kGroupWidth; ++j) {
            if (ctrl_[cap + j] != ctrl_[j])
                return "control mirror byte " + std::to_string(j) +
                       " is " + std::to_string(ctrl_[cap + j]) +
                       " but the primary byte is " +
                       std::to_string(ctrl_[j]) +
                       " -- wrapped group probes read stale state";
        }
        if (used != size_)
            return "size() is " + std::to_string(size_) + " but " +
                   std::to_string(used) + " slots are used";
        std::sort(keys.begin(), keys.end());
        for (std::size_t i = 1; i < keys.size(); ++i)
            if (keys[i] == keys[i - 1])
                return "duplicate key " + std::to_string(keys[i]);
        return {};
    }

    /** Test-only: hide one used slot without fixing up size or probe
     * chains, so integrityError() has something to find. */
    void
    corruptForTest()
    {
        for (std::size_t i = 0; i < capacity(); ++i) {
            if (ctrl_[i] != flat_detail::kCtrlEmpty) {
                setCtrl(i, flat_detail::kCtrlEmpty);
                return;
            }
        }
    }

    /** Test-only: overwrite one used slot's control byte with a wrong
     * fingerprint (still "used"), so group probes skip the entry and
     * integrityError() reports the mismatch. */
    void
    corruptCtrlForTest()
    {
        for (std::size_t i = 0; i < capacity(); ++i) {
            if (ctrl_[i] != flat_detail::kCtrlEmpty) {
                setCtrl(i, (ctrl_[i] + 1) & 0x7f);
                return;
            }
        }
    }

  private:
    void
    allocate(std::size_t cap)
    {
        panic_if(!isPowerOf2(cap), "FlatMap capacity not power of 2");
        // kGroupWidth mirror bytes after the array proper let a group
        // load starting at any slot read straight past the end
        // instead of wrapping; setCtrl() keeps them coherent.
        ctrl_.assign(cap + kGroupWidth, flat_detail::kCtrlEmpty);
        keys_.assign(cap, 0);
        values_.clear();
        values_.resize(cap);
        mask_ = cap - 1;
    }

    /** Write control byte @p v at slot @p i, maintaining the mirror. */
    void
    setCtrl(std::size_t i, std::uint8_t v)
    {
        ctrl_[i] = v;
        if (i < kGroupWidth)
            ctrl_[keys_.size() + i] = v;
    }

    /** First empty slot at or (cyclically) after @p i. */
    std::size_t
    firstEmpty(std::size_t i) const
    {
        while (true) {
            const Group g = Group::load(&ctrl_[i]);
            if (const auto m = g.matchEmpty())
                return (i + Group::lane(m)) & mask_;
            i = (i + kGroupWidth) & mask_;
        }
    }

    void
    maybeGrow()
    {
        // Grow at 7/8 occupancy; probing degrades sharply past that
        // point. Only these load-triggered growths count toward
        // stats_.rehashes -- a deliberate pre-sizing via reserve()
        // does not, so the counter reads as "unplanned allocations on
        // the hot path".
        const std::size_t cap = capacity();
        if (size_ + 1 > cap - (cap >> 3)) {
            ++stats_.rehashes;
            rehash(cap * 2);
        }
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
        std::vector<Key> old_keys = std::move(keys_);
        std::vector<V> old_values = std::move(values_);
        allocate(new_cap);
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_ctrl[i] == flat_detail::kCtrlEmpty)
                continue;
            const std::uint64_t h = Hash{}(old_keys[i]);
            const std::size_t s = firstEmpty(h & mask_);
            keys_[s] = old_keys[i];
            values_[s] = std::move(old_values[i]);
            setCtrl(s, flat_detail::ctrlH2(h));
        }
    }

    // SoA slot storage: parallel control/key/value arrays, so probe
    // loops touch one control-byte line per group and key lines only
    // for fingerprint matches.
    std::vector<std::uint8_t> ctrl_; //!< capacity() + mirror bytes
    std::vector<Key> keys_;
    std::vector<V> values_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    FlatMapStats stats_;
};

} // namespace ebcp

#endif // EBCP_UTIL_FLAT_MAP_HH
