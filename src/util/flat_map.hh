/**
 * @file
 * Open-addressed hash map for the simulator's hottest structures.
 *
 * The chained std::unordered_map pays a heap allocation per node and a
 * pointer chase per probe; on the per-miss path (correlation table,
 * MSHR file, Solihin table) that is the dominant metadata cost. This
 * map stores key/value pairs inline in a power-of-two slot array and
 * probes linearly, so a lookup is one hash, one mask and a short
 * contiguous scan.
 *
 * Deletion uses backward-shift (no tombstones): displaced slots are
 * moved back over the hole so probe chains never accumulate dead
 * entries and lookup cost stays proportional to live load.
 *
 * The map is reserve-aware: reserve(n) sizes the array so n entries
 * fit under the load-factor cap without rehashing, which is how the
 * MSHR file achieves zero steady-state allocation.
 *
 * Cheap always-on counters (FlatMapStats) feed the throughput bench's
 * per-structure probe statistics; they cost two increments per
 * operation and no branches.
 */

#ifndef EBCP_UTIL_FLAT_MAP_HH
#define EBCP_UTIL_FLAT_MAP_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace ebcp
{

/** Operation counters of one FlatMap (throughput-bench reporting). */
struct FlatMapStats
{
    std::uint64_t finds = 0;       //!< find() calls
    std::uint64_t findProbes = 0;  //!< slots inspected across finds
    std::uint64_t hits = 0;        //!< finds that located the key
    std::uint64_t inserts = 0;     //!< new keys stored
    std::uint64_t erases = 0;      //!< keys removed
    std::uint64_t backshifts = 0;  //!< slots moved by backward-shift
    std::uint64_t rehashes = 0;    //!< load-triggered growths; a
                                   //!< deliberate reserve() is not
                                   //!< counted

    /** Mean probes per find (1.0 = every lookup hit its home slot). */
    double
    probesPerFind() const
    {
        return finds ? static_cast<double>(findProbes) /
                           static_cast<double>(finds)
                     : 0.0;
    }
};

/** Default hash: finalize with mix64 so regular strides spread out. */
struct FlatHash
{
    std::uint64_t
    operator()(std::uint64_t k) const
    {
        return mix64(k);
    }
};

/**
 * Open-addressed, linear-probing hash map from a 64-bit key to V.
 *
 * Grows by doubling at 7/8 load. Iteration order is the slot order
 * (unspecified, like unordered_map's); callers that iterate must be
 * order-insensitive.
 */
template <typename V, typename Hash = FlatHash>
class FlatMap
{
  public:
    using Key = std::uint64_t;

    explicit FlatMap(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    /** Size the array so @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        // Stay strictly below the 7/8 growth trigger.
        std::size_t cap = slots_.size();
        while (n + (n >> 3) + 1 > cap - (cap >> 3))
            cap <<= 1;
        if (cap != slots_.size())
            rehash(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    /** @return pointer to the value for @p key, or nullptr. */
    V *
    find(Key key)
    {
        ++stats_.finds;
        std::size_t i = Hash{}(key)&mask_;
        while (true) {
            ++stats_.findProbes;
            Slot &s = slots_[i];
            if (!s.used)
                return nullptr;
            if (s.key == key) {
                ++stats_.hits;
                return &s.value;
            }
            i = (i + 1) & mask_;
        }
    }

    const V *
    find(Key key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    /** Value for @p key, default-constructing a new entry if absent. */
    V &
    operator[](Key key)
    {
        if (V *v = find(key))
            return *v;
        maybeGrow();
        std::size_t i = Hash{}(key)&mask_;
        while (slots_[i].used)
            i = (i + 1) & mask_;
        Slot &s = slots_[i];
        s.key = key;
        s.used = true;
        s.value = V{};
        ++size_;
        ++stats_.inserts;
        return s.value;
    }

    /** Insert or overwrite @p key -> @p value. */
    void
    insert(Key key, V value)
    {
        (*this)[key] = std::move(value);
    }

    /**
     * Remove @p key. Backward-shift compaction: later slots of the
     * probe chain that would become unreachable are moved over the
     * hole, so no tombstones are ever left behind.
     *
     * @return true if the key was present.
     */
    bool
    erase(Key key)
    {
        std::size_t i = Hash{}(key)&mask_;
        while (true) {
            Slot &s = slots_[i];
            if (!s.used)
                return false;
            if (s.key == key)
                break;
            i = (i + 1) & mask_;
        }
        ++stats_.erases;
        --size_;

        // Shift successors back while they are displaced past the hole.
        std::size_t hole = i;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask_;
            Slot &cand = slots_[j];
            if (!cand.used)
                break;
            const std::size_t home = Hash{}(cand.key)&mask_;
            // cand may move into the hole iff its home position does
            // not lie cyclically inside (hole, j] -- otherwise the
            // move would put it before its home and break lookups.
            const std::size_t dist_home = (j - home) & mask_;
            const std::size_t dist_hole = (j - hole) & mask_;
            if (dist_home >= dist_hole) {
                slots_[hole] = std::move(cand);
                cand.used = false;
                hole = j;
                ++stats_.backshifts;
            }
        }
        slots_[hole].used = false;
        slots_[hole].value = V{};
        return true;
    }

    /** Drop all entries; keeps the slot array (no deallocation). */
    void
    clear()
    {
        for (Slot &s : slots_) {
            if (s.used) {
                s.used = false;
                s.value = V{};
            }
        }
        size_ = 0;
    }

    /** Visit every (key, value) pair; order is unspecified. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_)
            if (s.used)
                fn(s.key, s.value);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (Slot &s : slots_)
            if (s.used)
                fn(s.key, s.value);
    }

    const FlatMapStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    /**
     * Structural self-check for the audit layer (which lives above
     * util and so cannot be included from here): size() must equal
     * the number of used slots, keys must be unique, and every used
     * slot must be reachable from its key's home slot without
     * crossing an empty slot -- the linear-probing invariant that
     * backward-shift deletion exists to maintain. A violation means
     * entries have silently become unfindable.
     *
     * @return empty when intact, else a description of the breakage.
     */
    std::string
    integrityError() const
    {
        std::size_t used = 0;
        std::vector<Key> keys;
        keys.reserve(size_);
        for (std::size_t j = 0; j < slots_.size(); ++j) {
            const Slot &s = slots_[j];
            if (!s.used)
                continue;
            ++used;
            keys.push_back(s.key);
            const std::size_t home = Hash{}(s.key)&mask_;
            // Every slot cyclically in [home, j) must be occupied,
            // or find(s.key) stops at the gap and misses this entry.
            for (std::size_t i = home; i != j; i = (i + 1) & mask_) {
                if (!slots_[i].used)
                    return "slot " + std::to_string(j) + " (key " +
                           std::to_string(s.key) +
                           ") unreachable: empty slot " +
                           std::to_string(i) + " breaks its probe chain";
            }
        }
        if (used != size_)
            return "size() is " + std::to_string(size_) + " but " +
                   std::to_string(used) + " slots are used";
        std::sort(keys.begin(), keys.end());
        for (std::size_t i = 1; i < keys.size(); ++i)
            if (keys[i] == keys[i - 1])
                return "duplicate key " + std::to_string(keys[i]);
        return {};
    }

    /** Test-only: hide one used slot without fixing up size or probe
     * chains, so integrityError() has something to find. */
    void
    corruptForTest()
    {
        for (Slot &s : slots_) {
            if (s.used) {
                s.used = false;
                return;
            }
        }
    }

  private:
    struct Slot
    {
        Key key = 0;
        V value{};
        bool used = false;
    };

    void
    maybeGrow()
    {
        // Grow at 7/8 occupancy; linear probing degrades sharply past
        // that point. Only these load-triggered growths count toward
        // stats_.rehashes -- a deliberate pre-sizing via reserve()
        // does not, so the counter reads as "unplanned allocations on
        // the hot path".
        if (size_ + 1 > slots_.size() - (slots_.size() >> 3)) {
            ++stats_.rehashes;
            rehash(slots_.size() * 2);
        }
    }

    void
    rehash(std::size_t new_cap)
    {
        panic_if(!isPowerOf2(new_cap), "FlatMap capacity not power of 2");
        std::vector<Slot> old = std::move(slots_);
        slots_.clear();
        slots_.resize(new_cap);
        mask_ = new_cap - 1;
        for (Slot &s : old) {
            if (!s.used)
                continue;
            std::size_t i = Hash{}(s.key)&mask_;
            while (slots_[i].used)
                i = (i + 1) & mask_;
            slots_[i].key = s.key;
            slots_[i].value = std::move(s.value);
            slots_[i].used = true;
        }
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    FlatMapStats stats_;
};

} // namespace ebcp

#endif // EBCP_UTIL_FLAT_MAP_HH
