/**
 * @file
 * A tiny typed key=value configuration store.
 *
 * Examples and benches accept "key=value" command-line overrides; this
 * store parses them and hands out typed values with defaults, so that
 * configuration plumbing does not clutter experiment code.
 */

#ifndef EBCP_UTIL_CONFIG_HH
#define EBCP_UTIL_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>

namespace ebcp
{

/** String-keyed configuration with typed accessors. */
class ConfigStore
{
  public:
    ConfigStore() = default;

    /** Parse argv-style "key=value" tokens; ignores non-matching args. */
    static ConfigStore fromArgs(int argc, char **argv);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /** @return true if @p key is present. */
    bool has(const std::string &key) const;

    /** Typed getters; fatal() on malformed values. */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::uint64_t getU64(const std::string &key, std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** Access to all keys, for echoing effective configuration. */
    const std::map<std::string, std::string> &entries() const
    {
        return entries_;
    }

  private:
    std::map<std::string, std::string> entries_;
};

} // namespace ebcp

#endif // EBCP_UTIL_CONFIG_HH
