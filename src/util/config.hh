/**
 * @file
 * A tiny typed key=value configuration store.
 *
 * Examples and benches accept "key=value" command-line overrides; this
 * store parses them and hands out typed values with defaults, so that
 * configuration plumbing does not clutter experiment code.
 *
 * Malformed tokens and malformed values are rejected, never silently
 * ignored: a typo must not invalidate an experiment by running the
 * defaults. The try* accessors and parseArgs() return Status for
 * callers that render errors themselves; the non-try forms are
 * boundary conveniences that exit on error.
 */

#ifndef EBCP_UTIL_CONFIG_HH
#define EBCP_UTIL_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hh"

namespace ebcp
{

/** String-keyed configuration with typed accessors. */
class ConfigStore
{
  public:
    ConfigStore() = default;

    /**
     * Parse argv-style "key=value" tokens. Tokens without '=' (or
     * with an empty key) are rejected -- a mistyped override must not
     * be silently dropped.
     */
    static StatusOr<ConfigStore> parseArgs(int argc, char **argv);

    /** parseArgs() for boundary code: renders the error and exits. */
    static ConfigStore fromArgs(int argc, char **argv);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /** @return true if @p key is present. */
    bool has(const std::string &key) const;

    /** Typed getters returning Status on malformed values. */
    StatusOr<std::string> tryGetString(const std::string &key,
                                       const std::string &def) const;
    StatusOr<std::uint64_t> tryGetU64(const std::string &key,
                                      std::uint64_t def) const;
    StatusOr<double> tryGetDouble(const std::string &key,
                                  double def) const;
    StatusOr<bool> tryGetBool(const std::string &key, bool def) const;

    /** Typed getters; fatal() on malformed values (boundary code). */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::uint64_t getU64(const std::string &key, std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /**
     * Verify every present key appears in @p known; an unknown key
     * (e.g. the typo "tabel_entries") yields an error carrying a
     * nearest-key suggestion.
     */
    Status checkKnownKeys(const std::vector<std::string> &known) const;

    /** Access to all keys, for echoing effective configuration. */
    const std::map<std::string, std::string> &entries() const
    {
        return entries_;
    }

  private:
    std::map<std::string, std::string> entries_;
};

} // namespace ebcp

#endif // EBCP_UTIL_CONFIG_HH
