/**
 * @file
 * Error and status reporting, modeled on gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (simulator bug);
 *            aborts so a debugger / core dump can capture state.
 * fatal()  - the user asked for something impossible (bad config);
 *            exits with an error code.
 * warn()   - something is approximated or suspicious but simulation
 *            can continue.
 * inform() - plain status output.
 */

#ifndef EBCP_UTIL_LOGGING_HH
#define EBCP_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace ebcp
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
logFormat(Args &&...args)
{
    std::ostringstream os;
    // void-cast so the empty pack (a bare `os;` statement) is silent.
    static_cast<void>((os << ... << args));
    return os.str();
}

} // namespace ebcp

#define panic(...) \
    ::ebcp::panicImpl(__FILE__, __LINE__, ::ebcp::logFormat(__VA_ARGS__))

#define fatal(...) \
    ::ebcp::fatalImpl(__FILE__, __LINE__, ::ebcp::logFormat(__VA_ARGS__))

#define warn(...) ::ebcp::warnImpl(::ebcp::logFormat(__VA_ARGS__))

#define inform(...) ::ebcp::informImpl(::ebcp::logFormat(__VA_ARGS__))

/** panic() unless the stated invariant holds. */
#define panic_if(cond, ...)                                          \
    do {                                                             \
        if (cond)                                                    \
            panic("panic condition '" #cond "' met: ", __VA_ARGS__); \
    } while (0)

/** fatal() unless the stated user-facing requirement holds. */
#define fatal_if(cond, ...)                                          \
    do {                                                             \
        if (cond)                                                    \
            fatal("fatal condition '" #cond "' met: ", __VA_ARGS__); \
    } while (0)

#endif // EBCP_UTIL_LOGGING_HH
