/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * PCG32 (O'Neill): small state, excellent statistical quality, and --
 * crucially for reproducible experiments -- identical streams on every
 * platform for a given seed, unlike std::default_random_engine.
 */

#ifndef EBCP_UTIL_RANDOM_HH
#define EBCP_UTIL_RANDOM_HH

#include <cstdint>

#include "util/logging.hh"

namespace ebcp
{

/** PCG32 pseudo-random generator. */
class Pcg32
{
  public:
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        reseed(seed, stream);
    }

    /** Reset to a deterministic state derived from @p seed. */
    void
    reseed(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1;
        next();
        state_ += seed;
        next();
    }

    /** @return the next 32 uniformly distributed bits. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** @return 64 uniformly distributed bits. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /** @return a uniform integer in [0, bound); bound must be > 0. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        panic_if(bound == 0, "Pcg32::below(0)");
        // Lemire's unbiased bounded generation.
        std::uint64_t m = std::uint64_t{next()} * bound;
        std::uint32_t l = static_cast<std::uint32_t>(m);
        if (l < bound) {
            std::uint32_t t = -bound % bound;
            while (l < t) {
                m = std::uint64_t{next()} * bound;
                l = static_cast<std::uint32_t>(m);
            }
        }
        return static_cast<std::uint32_t>(m >> 32);
    }

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::uint32_t
    range(std::uint32_t lo, std::uint32_t hi)
    {
        panic_if(hi < lo, "Pcg32::range with hi < lo");
        return lo + below(hi - lo + 1);
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** @return true with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Raw generator state, for checkpointing. */
    std::uint64_t rawState() const { return state_; }
    std::uint64_t rawInc() const { return inc_; }

    /** Restore a previously captured raw state. */
    void
    setRaw(std::uint64_t state, std::uint64_t inc)
    {
        state_ = state;
        inc_ = inc;
    }

  private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
};

} // namespace ebcp

#endif // EBCP_UTIL_RANDOM_HH
