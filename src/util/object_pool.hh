/**
 * @file
 * A free-list object pool for steady-state-allocation-free reuse.
 *
 * Components that repeatedly need short-lived objects with internal
 * capacity (chunk payload buffers, scratch vectors, pooled request
 * state) acquire from the pool and release back to it; after warm-up
 * every acquire is served from the free list and the hot path touches
 * the allocator never. PoolStats exposes exactly that property so
 * tests and the throughput bench can assert it.
 *
 * Objects are handed back with their internal state intact (e.g. a
 * vector keeps its capacity); the caller is responsible for clearing
 * value content it cares about. Under -DEBCP_SANITIZE=address the
 * recycled objects remain ordinary heap objects, so use-after-release
 * bugs surface as ASan errors in the pool's stress tests.
 */

#ifndef EBCP_UTIL_OBJECT_POOL_HH
#define EBCP_UTIL_OBJECT_POOL_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace ebcp
{

/** Allocation accounting of one pool. */
struct PoolStats
{
    std::uint64_t acquires = 0;    //!< total acquire() calls
    std::uint64_t freshAllocs = 0; //!< acquires served by the allocator
    std::uint64_t reuses = 0;      //!< acquires served by the free list
    std::uint64_t releases = 0;    //!< objects handed back
    std::uint64_t outstanding = 0; //!< currently acquired
    std::uint64_t peakOutstanding = 0;

    /** Fraction of acquires that hit the free list. */
    double
    reuseRate() const
    {
        return acquires ? static_cast<double>(reuses) /
                              static_cast<double>(acquires)
                        : 0.0;
    }
};

/** Free-list pool of default-constructible objects. */
template <typename T>
class FreeListPool
{
  public:
    FreeListPool() = default;

    /** Pre-populate the free list with @p n objects. */
    void
    prime(std::size_t n)
    {
        free_.reserve(free_.size() + n);
        for (std::size_t i = 0; i < n; ++i) {
            free_.push_back(std::make_unique<T>());
            ++stats_.freshAllocs;
        }
    }

    /**
     * Take an object (recycled if available, freshly allocated
     * otherwise). Recycled objects keep their internal capacity but
     * may hold stale content.
     */
    std::unique_ptr<T>
    acquire()
    {
        ++stats_.acquires;
        ++stats_.outstanding;
        if (stats_.outstanding > stats_.peakOutstanding)
            stats_.peakOutstanding = stats_.outstanding;
        if (!free_.empty()) {
            ++stats_.reuses;
            std::unique_ptr<T> obj = std::move(free_.back());
            free_.pop_back();
            return obj;
        }
        ++stats_.freshAllocs;
        return std::make_unique<T>();
    }

    /** Hand @p obj back for reuse. */
    void
    release(std::unique_ptr<T> obj)
    {
        panic_if(!obj, "released a null object to a FreeListPool");
        panic_if(stats_.outstanding == 0,
                 "FreeListPool release without a matching acquire");
        ++stats_.releases;
        --stats_.outstanding;
        free_.push_back(std::move(obj));
    }

    std::size_t freeCount() const { return free_.size(); }
    const PoolStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    std::vector<std::unique_ptr<T>> free_;
    PoolStats stats_;
};

/**
 * RAII lease of one pooled object: acquires on construction, releases
 * on destruction, so early returns cannot leak objects out of the
 * pool.
 */
template <typename T>
class PoolLease
{
  public:
    explicit PoolLease(FreeListPool<T> &pool)
        : pool_(pool), obj_(pool.acquire())
    {}

    ~PoolLease()
    {
        if (obj_)
            pool_.release(std::move(obj_));
    }

    PoolLease(const PoolLease &) = delete;
    PoolLease &operator=(const PoolLease &) = delete;

    T &operator*() { return *obj_; }
    T *operator->() { return obj_.get(); }

  private:
    FreeListPool<T> &pool_;
    std::unique_ptr<T> obj_;
};

} // namespace ebcp

#endif // EBCP_UTIL_OBJECT_POOL_HH
