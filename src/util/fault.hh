/**
 * @file
 * Deterministic fault-injection plan.
 *
 * One FaultPlan, parsed from a comma-separated `faults=` list and a
 * `fault_seed=`, is threaded to every component that can inject a
 * fault. Each consumer derives its own PCG stream from the seed and a
 * distinct stream id, so runs with the same seed are bit-identical
 * regardless of which components are present, and the injected fault
 * sequence of one component never shifts another's.
 *
 * Fault kinds:
 *  - trace-bitflip   flip one random bit of a trace record in flight
 *  - trace-truncate  the trace source ends early (as a truncated file)
 *  - trace-shortread drop a small run of records (a short read)
 *  - table-drop      an EBCP correlation-table read never returns
 *  - table-delay     an EBCP correlation-table read returns late
 *  - demand-stall    one demand access wedges (leaked-MSHR model):
 *                    exercises the forward-progress watchdog
 */

#ifndef EBCP_UTIL_FAULT_HH
#define EBCP_UTIL_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hh"
#include "util/types.hh"

namespace ebcp
{

/** Which faults are armed, and the shared determinism parameters. */
struct FaultPlan
{
    bool traceBitflip = false;
    bool traceTruncate = false;
    bool traceShortRead = false;
    bool tableDrop = false;
    bool tableDelay = false;
    bool demandStall = false;

    /** Seed all injectors derive their streams from. */
    std::uint64_t seed = 1;

    /** Per-opportunity probability of each armed probabilistic fault. */
    double rate = 1e-4;

    /** Records delivered before a trace-truncate fault fires. */
    std::uint64_t truncateAfter = 1'000'000;

    /** Demand accesses served before a demand-stall fault fires. */
    std::uint64_t stallAfter = 100'000;

    /** Extra latency of a table-delay fault, in ticks. */
    Tick tableDelayTicks = 2'000;

    /** How far in the future a demand-stall fault pushes completion
     * (far beyond any sane watchdog limit). */
    static constexpr Tick StallTicks = 1'000'000'000'000ULL;

    /** @return true if any fault kind is armed. */
    bool any() const
    {
        return traceBitflip || traceTruncate || traceShortRead ||
               tableDrop || tableDelay || demandStall;
    }

    /** All fault-kind names accepted by parse(). */
    static std::vector<std::string> kindNames();

    /**
     * Parse a comma-separated fault list ("trace-bitflip,table-drop");
     * an empty list yields a plan with no fault armed. Unknown names
     * are rejected with a nearest-name suggestion.
     */
    static StatusOr<FaultPlan> parse(const std::string &list,
                                     std::uint64_t seed);
};

/** Stream ids keeping consumers' PCG sequences disjoint. */
enum class FaultStream : std::uint64_t
{
    TraceSource = 0x5eed0001,
    Table = 0x5eed0002,
    Demand = 0x5eed0003,
    Checkpoint = 0x5eed0004,
};

} // namespace ebcp

#endif // EBCP_UTIL_FAULT_HH
