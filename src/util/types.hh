/**
 * @file
 * Fundamental scalar types shared across the simulator.
 *
 * The conventions follow common architecture-simulator practice: a
 * Tick is one core clock cycle at the configured core frequency, and
 * an Addr is a physical byte address (the prefetchers in this project
 * operate purely on physical addresses, per Section 3.4.1 of the
 * paper).
 */

#ifndef EBCP_UTIL_TYPES_HH
#define EBCP_UTIL_TYPES_HH

#include <cstdint>
#include <limits>

namespace ebcp
{

/** Simulated time in core clock cycles. */
using Tick = std::uint64_t;

/** Physical byte address. */
using Addr = std::uint64_t;

/** Instruction sequence number within a run. */
using InstSeqNum = std::uint64_t;

/** Monotonically increasing epoch identifier. */
using EpochId = std::uint64_t;

/** A tick value meaning "never" / "not scheduled". */
constexpr Tick MaxTick = std::numeric_limits<Tick>::max();

/** An address value meaning "invalid / no address". */
constexpr Addr InvalidAddr = std::numeric_limits<Addr>::max();

/** Bytes per kilobyte/megabyte, for readable config code. */
constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

} // namespace ebcp

#endif // EBCP_UTIL_TYPES_HH
