/**
 * @file
 * Minimal JSON emission and parsing.
 *
 * Every machine-readable artifact this project writes (stats.json,
 * Chrome trace_event files, bench reports) goes through JsonWriter,
 * which tracks nesting and comma state so emitters cannot produce
 * structurally malformed output; and every artifact is re-read
 * through parseJson() before the producing process exits, so a
 * report that a real JSON parser would reject fails the run that
 * wrote it rather than the consumer that reads it.
 *
 * The parser builds a plain value tree (no SAX, no streaming): the
 * artifacts are bounded-size reports, not traces of the simulation's
 * working set, and a tree makes schema validation direct.
 */

#ifndef EBCP_UTIL_JSON_HH
#define EBCP_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hh"

namespace ebcp
{

/** Escape @p s per RFC 8259 (quotes not included). */
std::string jsonEscape(std::string_view s);

/**
 * Structured JSON emitter: begin/end calls must nest correctly
 * (checked with panics -- an emitter bug is a programming error, not
 * a recoverable condition); commas and key quoting are handled here.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Key of the next member (objects only). */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v) { return value(std::uint64_t(v)); }
    JsonWriter &value(int v) { return value(std::int64_t(v)); }
    JsonWriter &value(bool v);
    JsonWriter &nullValue();

    /** key(k) + value(v) in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view k, T &&v)
    {
        key(k);
        return value(std::forward<T>(v));
    }

    /**
     * Splice @p raw -- text that is already a complete JSON value --
     * as the next value. The caller vouches for its validity (used
     * for pre-rendered sub-documents).
     */
    JsonWriter &rawValue(std::string_view raw);

    /** @return true once every opened scope has been closed. */
    bool complete() const { return stack_.empty(); }

  private:
    enum class Scope : std::uint8_t { Object, Array };

    void preValue();

    std::ostream &os_;
    std::vector<Scope> stack_;
    std::vector<bool> first_;
    bool keyPending_ = false;
};

/** A parsed JSON value (tree form). */
struct JsonValue
{
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    // Insertion order is irrelevant to the schemas validated here, so
    // a map keeps member lookup simple.
    std::map<std::string, JsonValue> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Member @p k of an object, or nullptr. */
    const JsonValue *find(const std::string &k) const;

    /** True if member @p k exists and is a number. */
    bool hasNumber(const std::string &k) const;
};

/**
 * Parse @p text as one JSON document. Trailing non-whitespace, bad
 * escapes, unterminated containers etc. yield Corruption with the
 * byte offset of the error.
 */
StatusOr<JsonValue> parseJson(std::string_view text);

/** Read @p path and parseJson() its contents. */
StatusOr<JsonValue> parseJsonFile(const std::string &path);

} // namespace ebcp

#endif // EBCP_UTIL_JSON_HH
