#include "util/profiler.hh"

#include <algorithm>
#include <array>
#include <sstream>

#include "util/event_trace.hh"
#include "util/json.hh"

namespace ebcp
{
namespace prof
{

const char *
phaseName(Phase p)
{
    static const char *const names[NumPhases] = {
        "decode",         "core_loop", "prefetch_train",
        "prefetch_issue", "audit",     "ckpt",
        "stats",
    };
    return names[static_cast<unsigned>(p)];
}

#ifndef EBCP_DISABLE_PROFILER

namespace detail
{

std::atomic<bool> gEnabled{true};

std::uint8_t
addChild(ThreadState &s, std::uint8_t parent, Phase p)
{
    if (s.count >= MaxNodes)
        return NoChild;
    const std::uint8_t idx = s.count++;
    Node &n = s.nodes[idx];
    n.parent = parent;
    n.phase = static_cast<std::uint8_t>(p);
    n.depth = static_cast<std::uint8_t>(s.nodes[parent].depth + 1);
    s.nodes[parent].child[static_cast<unsigned>(p)] = idx;
    return idx;
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

void
resetThisThread()
{
    detail::tls() = detail::ThreadState();
}

namespace
{

/** What a timed visit's own clock reads add to its measurement. */
struct ClockCost
{
    double wallNs = 0.0;
    double cpuNs = 0.0;
};

/**
 * Calibrated self-cost of one timed visit, measured once per process
 * with the exact read sequence a zero-body Scope performs (wall, cpu,
 * wall, cpu). The thread-CPU clock is a genuine syscall that can cost
 * microseconds under a container's seccomp filter, so without this
 * subtraction a stride-sampled estimate of a sub-microsecond phase is
 * mostly clock, scaled to every visit.
 */
const ClockCost &
clockCost()
{
    static const ClockCost cost = [] {
        constexpr int kReps = 33;
        std::array<std::uint64_t, kReps> wall{}, cpu{};
        for (int i = 0; i < kReps; ++i) {
            const std::uint64_t w0 = detail::nowWallNs();
            const std::uint64_t c0 = detail::nowCpuNs();
            const std::uint64_t w1 = detail::nowWallNs();
            const std::uint64_t c1 = detail::nowCpuNs();
            wall[i] = w1 - w0;
            cpu[i] = c1 - c0;
        }
        std::sort(wall.begin(), wall.end());
        std::sort(cpu.begin(), cpu.end());
        return ClockCost{static_cast<double>(wall[kReps / 2]),
                         static_cast<double>(cpu[kReps / 2])};
    }();
    return cost;
}

/** Preorder DFS over one thread's tree, children in phase order. */
void
collect(const detail::ThreadState &s, std::uint8_t idx,
        const std::string &prefix, Report &out)
{
    for (unsigned p = 0; p < NumPhases; ++p) {
        const std::uint8_t c = s.nodes[idx].child[p];
        if (c == detail::NoChild)
            continue;
        const detail::Node &n = s.nodes[c];
        if (n.visits == 0) {
            // Materialized but never entered (enable raced off):
            // still descend, children may have counts.
            collect(s, c, prefix, out);
            continue;
        }
        NodeReport r;
        r.phase = static_cast<Phase>(n.phase);
        r.path = prefix.empty()
                     ? phaseName(r.phase)
                     : prefix + "/" + phaseName(r.phase);
        r.depth = n.depth;
        r.visits = n.visits;
        r.timedVisits = n.timedVisits;
        r.wallNs = n.wallNs;
        r.cpuNs = n.cpuNs;
        r.sampled = n.timedVisits < n.visits;
        if (n.timedVisits > 0) {
            const double scale = static_cast<double>(n.visits) /
                                 static_cast<double>(n.timedVisits);
            const ClockCost &cc = clockCost();
            const double timed = static_cast<double>(n.timedVisits);
            r.estWallNs = std::max(
                0.0, (static_cast<double>(n.wallNs) - cc.wallNs * timed) *
                         scale);
            r.estCpuNs = std::max(
                0.0, (static_cast<double>(n.cpuNs) - cc.cpuNs * timed) *
                         scale);
        }
        out.nodes.push_back(r);
        // Recurse with the local copy: pushing into out.nodes can
        // reallocate, so a reference into it would dangle.
        collect(s, c, r.path, out);
    }
}

} // namespace

Report
snapshotThisThread()
{
    Report rep;
    rep.enabled = enabled();
    collect(detail::tls(), 0, "", rep);
    return rep;
}

void
writeProfileJson(JsonWriter &w)
{
    const Report rep = snapshotThisThread();
    w.beginObject();
    w.kv("enabled", rep.enabled);
    w.kv("clock", "steady_wall+thread_cpu");
    w.key("nodes").beginArray();
    for (const NodeReport &n : rep.nodes) {
        w.beginObject();
        w.kv("path", n.path);
        w.kv("phase", phaseName(n.phase));
        w.kv("depth", n.depth);
        w.kv("visits", n.visits);
        w.kv("timed_visits", n.timedVisits);
        w.kv("sampled", n.sampled);
        w.kv("wall_ns", n.wallNs);
        w.kv("cpu_ns", n.cpuNs);
        w.kv("est_wall_ns", n.estWallNs);
        w.kv("est_cpu_ns", n.estCpuNs);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
exportProfileSpans(TraceLog &log)
{
    const Report rep = snapshotThisThread();
    if (rep.nodes.empty())
        return;
    log.setProcessName(1, "ebcp self-profile");

    // Flame layout: siblings packed left to right, children nested
    // inside (and clamped to) their parent's span, so the per-track
    // ts order of the preorder emission below is monotone even when
    // sampled child estimates overshoot the parent.
    struct Placed
    {
        double ts = 0.0;
        double end = 0.0;
        double cursor = 0.0;
    };
    std::vector<Placed> placed(rep.nodes.size());
    std::vector<std::size_t> stack;
    double root_cursor = 0.0;
    for (std::size_t i = 0; i < rep.nodes.size(); ++i) {
        const NodeReport &n = rep.nodes[i];
        stack.resize(n.depth - 1);
        double ts = root_cursor;
        double avail = n.estWallNs;
        if (!stack.empty()) {
            Placed &par = placed[stack.back()];
            ts = par.cursor;
            if (avail > par.end - par.cursor)
                avail = par.end - par.cursor;
        }
        if (avail < 0.0)
            avail = 0.0;
        placed[i] = {ts, ts + avail, ts};
        if (stack.empty())
            root_cursor = ts + avail;
        else
            placed[stack.back()].cursor = ts + avail;
        stack.push_back(i);
        log.addSpan(phaseName(n.phase), "profile", 1, 0, ts, avail);
    }
}

#else // EBCP_DISABLE_PROFILER

void
setEnabled(bool)
{
}

bool
enabled()
{
    return false;
}

void
resetThisThread()
{
}

Report
snapshotThisThread()
{
    return {};
}

void
writeProfileJson(JsonWriter &w)
{
    w.beginObject();
    w.kv("enabled", false);
    w.kv("clock", "disabled");
    w.key("nodes").beginArray();
    w.endArray();
    w.endObject();
}

void
exportProfileSpans(TraceLog &)
{
}

#endif // EBCP_DISABLE_PROFILER

std::string
profileJsonString()
{
    std::ostringstream os;
    JsonWriter w(os);
    writeProfileJson(w);
    return os.str();
}

} // namespace prof
} // namespace ebcp
