/**
 * @file
 * Hardware performance counters via perf_event_open (no external
 * dependencies).
 *
 * The throughput bench reports host cycles/instructions alongside
 * simulated-insts/sec, so a perf regression can be attributed to the
 * simulator (host IPC flat, instructions up) or to the machine (IPC
 * down). Counter access is frequently unavailable -- containers,
 * perf_event_paranoid, non-Linux hosts -- so construction degrades
 * gracefully: available() turns false and the sample falls back to a
 * CPU-time-based cycle estimate (getrusage thread time x the nominal
 * frequency from /proc/cpuinfo) plus a structured reason string
 * saying exactly why the hardware path is closed (syscall errno and
 * the perf_event_paranoid setting), instead of a bare row of zeros.
 */

#ifndef EBCP_UTIL_PERF_COUNTERS_HH
#define EBCP_UTIL_PERF_COUNTERS_HH

#include <cstdint>
#include <string>

namespace ebcp
{

/** One stopped measurement interval's counter deltas. */
struct PerfSample
{
    bool available = false; //!< hardware counters backed this sample
    bool estimated = false; //!< cycles estimated from CPU time
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0; //!< 0 when estimated: CPU time
                                    //!< cannot honestly stand in for
                                    //!< an instruction count
    std::uint64_t cacheMisses = 0;
    std::uint64_t branchMisses = 0;
    double cpuSeconds = 0.0; //!< thread CPU time of the interval
    std::string reason;      //!< why hardware counters are closed
                             //!< (empty when available)
    double nominalHz = 0.0;  //!< frequency behind a cycle estimate
                             //!< (0 when hardware-measured or unknown)
    std::string nominalSource; //!< where nominalHz came from:
                               //!< "hardware", "/proc/cpuinfo cpu MHz"
                               //!< or "unavailable"

    /** Host instructions per cycle (0 when not hardware-measured). */
    double
    ipc() const
    {
        return cycles && available
                   ? static_cast<double>(instructions) /
                         static_cast<double>(cycles)
                   : 0.0;
    }
};

/**
 * A group of hardware counters over the calling thread. Usage:
 * construct, start(), run the region, stop(), read sample().
 */
class PerfCounters
{
  public:
    PerfCounters();
    ~PerfCounters();

    PerfCounters(const PerfCounters &) = delete;
    PerfCounters &operator=(const PerfCounters &) = delete;

    /** True if at least the cycle and instruction counters opened. */
    bool available() const { return available_; }

    /** Reset and enable the counters. */
    void start();

    /** Disable the counters and latch the interval's readings. */
    void stop();

    /** Readings of the most recent start()/stop() interval. */
    const PerfSample &sample() const { return sample_; }

  private:
    // One fd per event; -1 where the event failed to open.
    int cyclesFd_ = -1;
    int instructionsFd_ = -1;
    int cacheMissesFd_ = -1;
    int branchMissesFd_ = -1;
    bool available_ = false;
    std::string reason_;        //!< built once at construction
    double nominalHz_ = 0.0;    //!< /proc/cpuinfo MHz (fallback path)
    double startCpuSeconds_ = 0.0;
    PerfSample sample_;
};

} // namespace ebcp

#endif // EBCP_UTIL_PERF_COUNTERS_HH
