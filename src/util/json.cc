#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace ebcp
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    std::size_t i = 0;
    while (i < s.size()) {
        const unsigned char c = static_cast<unsigned char>(s[i]);
        if (c < 0x80) {
            switch (c) {
              case '"':
                out += "\\\"";
                break;
              case '\\':
                out += "\\\\";
                break;
              case '\n':
                out += "\\n";
                break;
              case '\r':
                out += "\\r";
                break;
              case '\t':
                out += "\\t";
                break;
              default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += static_cast<char>(c);
                }
            }
            ++i;
            continue;
        }
        // Non-ASCII: validate the UTF-8 sequence. Diagnostics may
        // embed bytes from corrupt traces, so a stray continuation
        // byte, overlong form, surrogate, truncated tail, or
        // code point past U+10FFFF must not leak into the document;
        // each offending byte becomes U+FFFD and scanning resumes at
        // the next byte.
        std::size_t len = 0;
        unsigned cp = 0;
        unsigned minCp = 0;
        if ((c & 0xE0) == 0xC0) {
            len = 2;
            cp = c & 0x1Fu;
            minCp = 0x80;
        } else if ((c & 0xF0) == 0xE0) {
            len = 3;
            cp = c & 0x0Fu;
            minCp = 0x800;
        } else if ((c & 0xF8) == 0xF0) {
            len = 4;
            cp = c & 0x07u;
            minCp = 0x10000;
        } else {
            out += "\\ufffd";
            ++i;
            continue;
        }
        bool valid = i + len <= s.size();
        for (std::size_t k = 1; valid && k < len; ++k) {
            const unsigned char cc = static_cast<unsigned char>(s[i + k]);
            if ((cc & 0xC0) != 0x80)
                valid = false;
            else
                cp = (cp << 6) | (cc & 0x3Fu);
        }
        if (!valid || cp < minCp || cp > 0x10FFFF ||
            (cp >= 0xD800 && cp <= 0xDFFF)) {
            out += "\\ufffd";
            ++i;
            continue;
        }
        out.append(s.substr(i, len));
        i += len;
    }
    return out;
}

// --- JsonWriter ----------------------------------------------------

void
JsonWriter::preValue()
{
    if (stack_.empty())
        return;
    if (stack_.back() == Scope::Object) {
        panic_if(!keyPending_, "JsonWriter: object value without a key");
        keyPending_ = false;
        return;
    }
    if (!first_.back())
        os_ << ", ";
    first_.back() = false;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    panic_if(stack_.empty() || stack_.back() != Scope::Object,
             "JsonWriter: key() outside an object");
    panic_if(keyPending_, "JsonWriter: two keys in a row");
    if (!first_.back())
        os_ << ", ";
    first_.back() = false;
    os_ << '"' << jsonEscape(k) << "\": ";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    os_ << '{';
    stack_.push_back(Scope::Object);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    panic_if(stack_.empty() || stack_.back() != Scope::Object,
             "JsonWriter: endObject() without beginObject()");
    panic_if(keyPending_, "JsonWriter: endObject() after a dangling key");
    os_ << '}';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    os_ << '[';
    stack_.push_back(Scope::Array);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    panic_if(stack_.empty() || stack_.back() != Scope::Array,
             "JsonWriter: endArray() without beginArray()");
    os_ << ']';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    preValue();
    os_ << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        os_ << "null";
        return *this;
    }
    // max_digits10 round-trips doubles exactly through a conforming
    // parser, so consumers see the same bits the simulator computed.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    preValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    preValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    preValue();
    os_ << "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view raw)
{
    preValue();
    os_ << raw;
    return *this;
}

// --- Parser --------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &k) const
{
    if (type != Type::Object)
        return nullptr;
    auto it = object.find(k);
    return it == object.end() ? nullptr : &it->second;
}

bool
JsonValue::hasNumber(const std::string &k) const
{
    const JsonValue *v = find(k);
    return v && v->isNumber();
}

namespace
{

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : s_(text) {}

    StatusOr<JsonValue>
    parse()
    {
        skipWs();
        JsonValue v;
        if (Status st = value(v); !st.ok())
            return st;
        skipWs();
        if (pos_ != s_.size())
            return err("trailing characters after document");
        return v;
    }

  private:
    Status
    err(const std::string &what) const
    {
        return corruptionError("JSON parse error at byte ", pos_, ": ",
                               what);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    Status
    value(JsonValue &out)
    {
        if (++depth_ > kMaxDepth)
            return err("nesting too deep");
        Status st = valueInner(out);
        --depth_;
        return st;
    }

    Status
    valueInner(JsonValue &out)
    {
        if (pos_ >= s_.size())
            return err("unexpected end of input");
        switch (s_[pos_]) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"':
            out.type = JsonValue::Type::String;
            return string(out.string);
          case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null");
          default:
            return number(out);
        }
    }

    Status
    object(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return Status();
        }
        while (true) {
            skipWs();
            std::string k;
            if (Status st = string(k); !st.ok())
                return st;
            skipWs();
            if (peek() != ':')
                return err("expected ':' after object key");
            ++pos_;
            skipWs();
            JsonValue v;
            if (Status st = value(v); !st.ok())
                return st;
            out.object.emplace(std::move(k), std::move(v));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return Status();
            }
            return err("expected ',' or '}' in object");
        }
    }

    Status
    array(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return Status();
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (Status st = value(v); !st.ok())
                return st;
            out.array.push_back(std::move(v));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return Status();
            }
            return err("expected ',' or ']' in array");
        }
    }

    Status
    string(std::string &out)
    {
        if (peek() != '"')
            return err("expected string");
        ++pos_;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_];
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return err("unterminated escape");
                switch (s_[pos_]) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos_ + 4 >= s_.size())
                        return err("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s_[pos_ + 1 + i];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return err("bad hex digit in \\u escape");
                    }
                    pos_ += 4;
                    // The artifacts this parser guards emit only
                    // ASCII escapes; decode BMP code points as UTF-8.
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                  }
                  default:
                    return err("unknown escape");
                }
                ++pos_;
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return err("raw control character in string");
            } else {
                out += c;
                ++pos_;
            }
        }
        if (pos_ >= s_.size())
            return err("unterminated string");
        ++pos_; // closing quote
        return Status();
    }

    Status
    number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return err("expected a value");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return err("digit required after decimal point");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return err("digit required in exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        out.type = JsonValue::Type::Number;
        out.number = std::strtod(std::string(s_.substr(start, pos_ - start))
                                     .c_str(),
                                 nullptr);
        return Status();
    }

    Status
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos_)
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return err(std::string("bad literal (expected '") + word +
                           "')");
        return Status();
    }

    static constexpr int kMaxDepth = 128;

    std::string_view s_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

StatusOr<JsonValue>
parseJson(std::string_view text)
{
    return JsonParser(text).parse();
}

StatusOr<JsonValue>
parseJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return ioError("cannot open '", path, "' for reading");
    std::ostringstream buf;
    buf << in.rdbuf();
    StatusOr<JsonValue> v = parseJson(buf.str());
    if (!v.ok())
        return v.status().withContext(path);
    return v;
}

} // namespace ebcp
