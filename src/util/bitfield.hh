/**
 * @file
 * Bit manipulation helpers used by caches, predictors and tables.
 */

#ifndef EBCP_UTIL_BITFIELD_HH
#define EBCP_UTIL_BITFIELD_HH

#include <cstdint>

#include "util/logging.hh"
#include "util/types.hh"

namespace ebcp
{

/** @return true if @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** @return ceil(log2(v)); v must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Align @p a down to a multiple of @p align (a power of two). */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Align @p a up to a multiple of @p align (a power of two). */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Extract bits [first, last] (inclusive, last >= first) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned last, unsigned first)
{
    const std::uint64_t mask =
        (last - first >= 63) ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << (last - first + 1)) - 1);
    return (v >> first) & mask;
}

/**
 * Mix the bits of a 64-bit value; used to index hashed tables so that
 * regular address strides do not map to conflicting entries.
 * (SplitMix64 finalizer.)
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace ebcp

#endif // EBCP_UTIL_BITFIELD_HH
