/**
 * @file
 * Fixed-capacity circular buffer.
 *
 * Used for the EMAB (Section 3.4.2), the GHB, and several small
 * hardware queues where the oldest element is overwritten when the
 * structure is full -- exactly the behaviour a hardware circular
 * buffer exhibits.
 */

#ifndef EBCP_UTIL_CIRCULAR_BUFFER_HH
#define EBCP_UTIL_CIRCULAR_BUFFER_HH

#include <cstddef>
#include <vector>

#include "util/logging.hh"

namespace ebcp
{

/**
 * A circular buffer holding up to @c capacity elements; pushing into a
 * full buffer silently drops the oldest element.
 */
template <typename T>
class CircularBuffer
{
  public:
    explicit CircularBuffer(std::size_t capacity)
        : data_(capacity), capacity_(capacity)
    {
        panic_if(capacity == 0, "CircularBuffer capacity must be > 0");
    }

    /** Append @p v, evicting the oldest element if full. */
    void
    push(const T &v)
    {
        pushSlot() = v;
    }

    /**
     * Append one element and return a reference to its slot (evicting
     * the oldest element if full). The slot holds a recycled object
     * with stale content -- the caller must reset it. Lets entries
     * with internal capacity (e.g. the EMAB's address vectors) be
     * reused in place instead of reallocated every push.
     */
    T &
    pushSlot()
    {
        T &slot = data_[wrap(head_ + size_)];
        if (size_ == capacity_)
            head_ = wrap(head_ + 1);
        else
            ++size_;
        return slot;
    }

    /** Remove and return the oldest element. */
    T
    pop()
    {
        panic_if(size_ == 0, "pop from empty CircularBuffer");
        T v = data_[head_];
        head_ = wrap(head_ + 1);
        --size_;
        return v;
    }

    /** @return element @p i, 0 = oldest, size()-1 = newest. */
    const T &
    at(std::size_t i) const
    {
        panic_if(i >= size_, "CircularBuffer index out of range");
        return data_[wrap(head_ + i)];
    }

    T &
    at(std::size_t i)
    {
        panic_if(i >= size_, "CircularBuffer index out of range");
        return data_[wrap(head_ + i)];
    }

    /** @return the newest element. */
    const T &back() const { return at(size_ - 1); }
    T &back() { return at(size_ - 1); }

    /** @return the oldest element. */
    const T &front() const { return at(0); }
    T &front() { return at(0); }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }

    /** Drop all contents. */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    // All internal offsets are < 2*capacity, so wrapping is a single
    // compare-and-subtract instead of an integer division.
    std::size_t
    wrap(std::size_t i) const
    {
        return i >= capacity_ ? i - capacity_ : i;
    }

    std::vector<T> data_;
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace ebcp

#endif // EBCP_UTIL_CIRCULAR_BUFFER_HH
