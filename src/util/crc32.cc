#include "util/crc32.hh"

#include <array>

namespace ebcp
{

namespace
{

/** The reflected-polynomial byte table, built once at startup. */
std::array<std::uint32_t, 256>
buildTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

const std::array<std::uint32_t, 256> &
table()
{
    static const std::array<std::uint32_t, 256> t = buildTable();
    return t;
}

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    const auto &t = table();
    for (std::size_t i = 0; i < len; ++i)
        crc = t[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return crc;
}

} // namespace ebcp
