#include "util/event_trace.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "util/bitfield.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace ebcp
{

namespace
{

/** Static per-kind export metadata. */
struct KindInfo
{
    const char *name; //!< event name shown on the timeline
    const char *cat;  //!< trace_event category (Perfetto filtering)
    bool span;        //!< "X" complete event (has dur) vs "i" instant
    const char *arg0; //!< display name of a0 (nullptr: omit)
    const char *arg1; //!< display name of a1 (nullptr: omit)
    bool hex0;        //!< render a0 as a hex address
    bool hex1;
};

const KindInfo &
kindInfo(TraceEventKind kind)
{
    static const KindInfo table[NumTraceEventKinds] = {
        {"epoch", "epoch", true, "epoch", "misses", false, false},
        {"emab_insert", "emab", false, "epoch", "key", false, true},
        {"emab_evict", "emab", false, "epoch", "misses", false, false},
        {"table_read", "table", true, "key", nullptr, true, false},
        {"table_write", "table", false, "key", nullptr, true, false},
        {"pf_issue", "prefetch", false, "line", "corr_index", true, false},
        {"pf_fill", "prefetch", false, "line", nullptr, true, false},
        {"pf_hit_timely", "prefetch", false, "line", nullptr, true, false},
        {"pf_hit_late", "prefetch", false, "line", "residual_ticks", true,
         false},
        {"pf_evict", "prefetch", false, "line", nullptr, true, false},
        {"demand_miss", "demand", true, "line", nullptr, true, false},
    };
    return table[static_cast<std::size_t>(kind)];
}

std::string
hexAddr(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

void
writeArg(JsonWriter &w, const char *name, std::uint64_t v, bool hex)
{
    if (!name)
        return;
    if (hex)
        w.kv(name, hexAddr(v));
    else
        w.kv(name, v);
}

} // namespace

TraceSink::TraceSink(std::string name, std::uint32_t tid,
                     std::size_t capacity)
    : name_(std::move(name)), tid_(tid),
      mask_(capacity - 1), ring_(capacity)
{
    panic_if(!isPowerOf2(capacity) || capacity == 0,
             "TraceSink capacity must be a nonzero power of two");
}

std::size_t
TraceSink::size() const
{
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(head_, ring_.size()));
}

std::uint64_t
TraceSink::dropped() const
{
    return head_ > ring_.size() ? head_ - ring_.size() : 0;
}

std::vector<TraceEvent>
TraceSink::snapshot() const
{
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    // Oldest retained event first: when the ring has wrapped, the
    // slot at head_ & mask_ is the oldest survivor.
    const std::uint64_t start = head_ - n;
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(ring_[(start + i) & mask_]);
    return out;
}

TraceLog::TraceLog(std::size_t events_per_sink)
    : capacity_(std::size_t(1)
                << ceilLog2(std::max<std::size_t>(events_per_sink, 16)))
{}

TraceSink *
TraceLog::sink(const std::string &name, std::uint32_t tid)
{
    for (const auto &s : sinks_)
        if (s->name() == name && s->tid() == tid)
            return s.get();
    sinks_.push_back(std::make_unique<TraceSink>(name, tid, capacity_));
    return sinks_.back().get();
}

std::uint64_t
TraceLog::totalDropped() const
{
    std::uint64_t n = 0;
    for (const auto &s : sinks_)
        n += s->dropped();
    return n;
}

std::size_t
TraceLog::totalEvents() const
{
    std::size_t n = 0;
    for (const auto &s : sinks_)
        n += s->size();
    return n;
}

void
TraceLog::counterSample(std::string name, Tick tick, double value)
{
    counters_.push_back({std::move(name), tick, value});
}

void
TraceLog::addSpan(std::string name, std::string cat, std::uint32_t pid,
                  std::uint32_t tid, double ts, double dur)
{
    extraSpans_.push_back(
        {std::move(name), std::move(cat), pid, tid, ts, dur});
}

void
TraceLog::setProcessName(std::uint32_t pid, std::string name)
{
    for (auto &p : processNames_)
        if (p.first == pid) {
            p.second = std::move(name);
            return;
        }
    processNames_.emplace_back(pid, std::move(name));
}

void
TraceLog::writeChromeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("traceEvents").beginArray();

    // Thread-name metadata rows first, so Perfetto labels each
    // writer's track.
    for (const auto &s : sinks_) {
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", 0u);
        w.kv("tid", s->tid());
        w.key("args").beginObject();
        w.kv("name", s->name());
        w.endObject();
        w.endObject();
    }

    // Process-name metadata for any extra-span pids (the sinks all
    // live on pid 0; Perfetto then shows e.g. the self-profiler as
    // its own named process row).
    for (const auto &p : processNames_) {
        w.beginObject();
        w.kv("name", "process_name");
        w.kv("ph", "M");
        w.kv("pid", p.first);
        w.kv("tid", 0u);
        w.key("args").beginObject();
        w.kv("name", p.second);
        w.endObject();
        w.endObject();
    }

    // Merge all sinks' retained events and the counter samples into
    // one tick-ordered stream.
    struct Tagged
    {
        TraceEvent e;
        std::uint32_t tid;
        const CounterSample *counter; //!< non-null: a "C" row
    };
    std::vector<Tagged> all;
    all.reserve(totalEvents() + counters_.size());
    for (const auto &s : sinks_)
        for (const TraceEvent &e : s->snapshot())
            all.push_back({e, s->tid(), nullptr});
    for (const CounterSample &c : counters_) {
        TraceEvent e;
        e.tick = c.tick;
        all.push_back({e, 0, &c});
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Tagged &a, const Tagged &b) {
                         return a.e.tick < b.e.tick;
                     });

    for (const Tagged &t : all) {
        if (t.counter) {
            w.beginObject();
            w.kv("name", t.counter->name);
            w.kv("cat", "counter");
            w.kv("ph", "C");
            w.kv("ts", t.e.tick);
            w.kv("pid", 0u);
            w.kv("tid", 0u);
            w.key("args").beginObject();
            w.kv("value", t.counter->value);
            w.endObject();
            w.endObject();
            continue;
        }
        const KindInfo &k = kindInfo(t.e.kind);
        w.beginObject();
        w.kv("name", k.name);
        w.kv("cat", k.cat);
        w.kv("ph", k.span ? "X" : "i");
        w.kv("ts", t.e.tick);
        if (k.span)
            w.kv("dur", t.e.dur);
        else
            w.kv("s", "t"); // instant scope: thread
        w.kv("pid", 0u);
        w.kv("tid", t.tid);
        w.key("args").beginObject();
        writeArg(w, k.arg0, t.e.a0, k.hex0);
        writeArg(w, k.arg1, t.e.a1, k.hex1);
        w.endObject();
        w.endObject();
    }

    // Extra spans (self-profiler flame) last: their pids carry their
    // own timelines, so they do not interleave with the tick stream.
    for (const ExtraSpan &s : extraSpans_) {
        w.beginObject();
        w.kv("name", s.name);
        w.kv("cat", s.cat);
        w.kv("ph", "X");
        w.kv("ts", s.ts);
        w.kv("dur", s.dur);
        w.kv("pid", s.pid);
        w.kv("tid", s.tid);
        w.endObject();
    }
    w.endArray();

    // ts is in simulated core ticks, not microseconds; record that so
    // a human reading the file knows what the axis means.
    w.key("otherData").beginObject();
    w.kv("ts_unit", "core_ticks");
    w.kv("dropped_events", totalDropped());
    w.endObject();
    w.endObject();
    os << "\n";
}

Status
TraceLog::exportChromeJson(const std::string &path) const
{
    {
        std::ofstream out(path, std::ios::binary);
        if (!out)
            return ioError("cannot write '", path, "'");
        writeChromeJson(out);
        if (!out)
            return ioError("short write to '", path, "'");
    }
    // Same pattern as BENCH_throughput.json: the producer re-reads
    // and validates its own artifact, so a malformed file fails the
    // run that wrote it.
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return validateChromeTraceJson(buf.str()).withContext(path);
}

Status
validateChromeTraceJson(const std::string &text)
{
    StatusOr<JsonValue> doc = parseJson(text);
    if (!doc.ok())
        return doc.status();
    const JsonValue &root = doc.value();
    if (!root.isObject())
        return corruptionError("trace document is not an object");
    const JsonValue *events = root.find("traceEvents");
    if (!events || !events->isArray())
        return corruptionError("missing 'traceEvents' array");

    // ts must be monotone per (pid, tid) track -- the Perfetto
    // importer's requirement. Different tracks (e.g. the profiler
    // flame vs the simulated-tick stream) may use different units and
    // legitimately do not interleave.
    std::map<std::pair<double, double>, double> last_ts;
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &e = events->array[i];
        if (!e.isObject())
            return corruptionError("traceEvents[", i, "] is not an object");
        const JsonValue *ph = e.find("ph");
        if (!e.find("name") || !ph || !ph->isString() ||
            !e.hasNumber("pid") || !e.hasNumber("tid"))
            return corruptionError("traceEvents[", i,
                                   "] lacks a mandatory member");
        if (ph->string == "M")
            continue; // metadata events carry no timestamp
        if (!e.hasNumber("ts"))
            return corruptionError("traceEvents[", i, "] lacks 'ts'");
        const double ts = e.find("ts")->number;
        if (ts < 0.0)
            return corruptionError("traceEvents[", i, "] has negative ts");
        const std::pair<double, double> track(e.find("pid")->number,
                                              e.find("tid")->number);
        auto it = last_ts.find(track);
        if (it != last_ts.end() && ts < it->second)
            return corruptionError("traceEvents[", i,
                                   "] breaks per-track ts monotonicity");
        last_ts[track] = ts;
        if (ph->string == "X" && !e.hasNumber("dur"))
            return corruptionError("traceEvents[", i,
                                   "] is 'X' without 'dur'");
        if (ph->string == "C") {
            const JsonValue *args = e.find("args");
            if (!args || !args->isObject() || !args->hasNumber("value"))
                return corruptionError("traceEvents[", i,
                                       "] is 'C' without a numeric "
                                       "args.value");
        }
    }
    return Status();
}

} // namespace ebcp
