#include "util/str.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <sstream>

#include "util/types.hh"

namespace ebcp
{

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
fmtDouble(double v, int prec)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(prec);
    os << v;
    return os.str();
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    // Single-row dynamic program; strings here are short config keys.
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t subst =
                diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
        }
    }
    return row[b.size()];
}

std::string
nearestMatch(const std::string &word,
             const std::vector<std::string> &candidates,
             std::size_t max_distance)
{
    std::string best;
    std::size_t best_dist = max_distance + 1;
    for (const std::string &c : candidates) {
        const std::size_t d = editDistance(word, c);
        if (d < best_dist) {
            best_dist = d;
            best = c;
        }
    }
    return best;
}

std::string
fmtSize(std::uint64_t bytes)
{
    std::ostringstream os;
    if (bytes >= GiB && bytes % GiB == 0)
        os << bytes / GiB << "GB";
    else if (bytes >= MiB && bytes % MiB == 0)
        os << bytes / MiB << "MB";
    else if (bytes >= KiB && bytes % KiB == 0)
        os << bytes / KiB << "KB";
    else
        os << bytes << "B";
    return os.str();
}

} // namespace ebcp
