/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for trace-file
 * integrity checking. Table-driven, one byte per step; fast enough for
 * trace I/O, which is already fread/fwrite-bound.
 */

#ifndef EBCP_UTIL_CRC32_HH
#define EBCP_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace ebcp
{

/**
 * Update a running CRC-32 with @p len bytes at @p data.
 *
 * Start from crc32Init(), feed chunks in order, finish with
 * crc32Final(); or use crc32() for one-shot buffers.
 */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t len);

inline std::uint32_t crc32Init() { return 0xffffffffu; }
inline std::uint32_t crc32Final(std::uint32_t crc)
{
    return crc ^ 0xffffffffu;
}

/** One-shot CRC-32 of a buffer. */
inline std::uint32_t
crc32(const void *data, std::size_t len)
{
    return crc32Final(crc32Update(crc32Init(), data, len));
}

} // namespace ebcp

#endif // EBCP_UTIL_CRC32_HH
