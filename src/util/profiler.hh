/**
 * @file
 * Hierarchical scoped self-profiler: where do the simulator's own
 * cycles go?
 *
 * The event-trace layer answers questions about *simulated* time;
 * this module answers the complementary host-side question -- how
 * much wall and CPU time the process spends decoding the trace,
 * running the core loop, training the prefetcher, issuing prefetches,
 * auditing, checkpointing and exporting stats. Each phase is an RAII
 * Scope; scopes nest, and every thread accumulates its own phase
 * *tree* (core_loop/prefetch_train is distinct from a bare
 * prefetch_train), so attribution survives arbitrary nesting without
 * double counting.
 *
 * Overhead discipline (the perf-smoke gate holds this under 2%):
 *  - the fast path is a relaxed atomic load, one table lookup, one
 *    increment and one masked compare -- no clock read;
 *  - hot phases (prefetch_train fires per L2 access) only read the
 *    clocks on a stride of their visits; visit counts stay exact and
 *    times are scaled estimates flagged "sampled" in the report;
 *  - accumulators are thread_local, so there is no sharing, no
 *    locking, and no cross-thread data race to report: a snapshot is
 *    explicitly *this thread's* tree, which matches how the sweep
 *    runner executes each simulation on a single worker thread;
 *  - -DEBCP_DISABLE_PROFILER compiles every scope away entirely
 *    (check.sh proves goldens stay bit-exact in both modes).
 */

#ifndef EBCP_UTIL_PROFILER_HH
#define EBCP_UTIL_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ctime>
#include <string>
#include <vector>

namespace ebcp
{

class JsonWriter;
class TraceLog;

namespace prof
{

/** The instrumented phases. Order is the child-table index. */
enum class Phase : std::uint8_t
{
    Decode,        //!< trace decode / batch refill
    CoreLoop,      //!< CoreModel::run retirement loop
    PrefetchTrain, //!< prefetcher observeAccess
    PrefetchIssue, //!< L2Subsystem::issuePrefetch
    Audit,         //!< Auditor::runNow
    Ckpt,          //!< checkpoint serialize/restore
    Stats,         //!< stats dump/export
};

/** Number of distinct Phase values. */
inline constexpr unsigned NumPhases =
    static_cast<unsigned>(Phase::Stats) + 1;

/** JSON / display name of @p p ("decode", "core_loop", ...). */
const char *phaseName(Phase p);

/** Runtime switch (process-wide, default on). Scopes opened while
 * disabled record nothing; re-enabling resumes accumulation. */
void setEnabled(bool on);
bool enabled();

/** Drop this thread's accumulated tree (for paired A/B timing). */
void resetThisThread();

/** One node of the snapshotted phase tree. */
struct NodeReport
{
    std::string path;  //!< "core_loop/prefetch_train"
    Phase phase = Phase::Decode;
    unsigned depth = 0;          //!< 1 for top-level phases
    std::uint64_t visits = 0;      //!< exact scope entries
    std::uint64_t timedVisits = 0; //!< entries that read the clocks
    std::uint64_t wallNs = 0;      //!< measured over timed visits
    std::uint64_t cpuNs = 0;       //!< thread CPU, timed visits
    /** Measured time minus the calibrated self-cost of the clock
     * reads, scaled to all visits (>= 0). */
    double estWallNs = 0.0;
    double estCpuNs = 0.0;
    bool sampled = false; //!< timedVisits < visits (times estimated)
};

/** This thread's phase tree, preorder (parents before children). */
struct Report
{
    bool enabled = false;
    std::vector<NodeReport> nodes;
};

Report snapshotThisThread();

/** Write this thread's profile as one JSON object value:
 * {"enabled": ..., "clock": ..., "nodes": [...]}. Always writes a
 * valid object, even when the profiler is compiled out. */
void writeProfileJson(JsonWriter &w);

/** writeProfileJson() rendered to a string (for rawValue splicing
 * into an ebcp-stats-v1 document). */
std::string profileJsonString();

/** Add this thread's phase tree to @p log as a flame of "X" spans on
 * its own process row (pid 1, ts in nanoseconds), so Perfetto shows
 * host-side attribution next to the simulated timeline. No-op when
 * the tree is empty or the profiler is compiled out. */
void exportProfileSpans(TraceLog &log);

#ifndef EBCP_DISABLE_PROFILER

namespace detail
{

/** Per-phase visit stride between clock reads (mask form: time when
 * (visits & mask) == (1 & mask)). Hot phases sample sparsely; rare
 * phases (mask 0) are always timed. */
// Strides are sized so the CPU clock read -- a genuine syscall
// (CLOCK_THREAD_CPUTIME_ID has no vDSO path) that can cost microseconds
// under a container's seccomp filter -- stays far off the hot paths;
// the perf-smoke max_profiler_overhead gate is what holds this honest.
inline constexpr std::uint32_t StrideMask[NumPhases] = {
    255,  // Decode: one refill per 1024 records, still frequent
    0,    // CoreLoop: once per run() call
    1023, // PrefetchTrain: fires per L2 access
    1023, // PrefetchIssue: fires per issued prefetch
    0,    // Audit
    0,    // Ckpt
    0,    // Stats
};

inline constexpr std::uint8_t NoChild = 0xff;
inline constexpr unsigned MaxNodes = 64;

struct Node
{
    std::uint64_t visits = 0;
    std::uint64_t timedVisits = 0;
    std::uint64_t wallNs = 0;
    std::uint64_t cpuNs = 0;
    std::uint8_t parent = 0;
    std::uint8_t phase = 0;
    std::uint8_t depth = 0;
    std::uint8_t child[NumPhases] = {}; //!< index table, NoChild=absent
};

struct ThreadState
{
    Node nodes[MaxNodes];
    std::uint8_t cur = 0;   //!< innermost open scope (0 = root)
    std::uint8_t count = 1; //!< node 0 is the root
    // constexpr: the thread_local is constant-initialized, so the
    // per-call init-guard branch vanishes from the Scope fast path.
    constexpr ThreadState()
    {
        for (Node &n : nodes)
            for (std::uint8_t &c : n.child)
                c = NoChild;
    }
};

inline ThreadState &
tls()
{
    thread_local ThreadState state;
    return state;
}

extern std::atomic<bool> gEnabled;

/** Materialize the child of @p parent for @p p; NoChild on overflow
 * (the tree is full -- the scope simply goes unrecorded). */
std::uint8_t addChild(ThreadState &s, std::uint8_t parent, Phase p);

inline std::uint64_t
nowWallNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

inline std::uint64_t
nowCpuNs()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
#endif
    return 0;
}

} // namespace detail

/** RAII phase scope. Construction enters the phase (descending the
 * thread's tree); destruction leaves it. */
class Scope
{
  public:
    explicit Scope(Phase p)
    {
        if (!detail::gEnabled.load(std::memory_order_relaxed))
            return;
        detail::ThreadState &s = detail::tls();
        prev_ = s.cur;
        std::uint8_t idx =
            s.nodes[prev_].child[static_cast<unsigned>(p)];
        if (idx == detail::NoChild) {
            idx = detail::addChild(s, prev_, p);
            if (idx == detail::NoChild)
                return; // tree full: leave this scope unrecorded
        }
        s.cur = idx;
        node_ = idx;
        s_ = &s; // cached: the exit path must not re-resolve the TLS
        detail::Node &n = s.nodes[idx];
        ++n.visits;
        const std::uint32_t mask =
            detail::StrideMask[static_cast<unsigned>(p)];
        if ((n.visits & mask) == (1u & mask)) {
            timed_ = true;
            wall0_ = detail::nowWallNs();
            cpu0_ = detail::nowCpuNs();
        }
    }

    ~Scope()
    {
        if (!s_)
            return;
        if (timed_) {
            detail::Node &n = s_->nodes[node_];
            ++n.timedVisits;
            n.wallNs += detail::nowWallNs() - wall0_;
            n.cpuNs += detail::nowCpuNs() - cpu0_;
        }
        s_->cur = prev_;
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    detail::ThreadState *s_ = nullptr; //!< null when not recording
    std::uint64_t wall0_ = 0;
    std::uint64_t cpu0_ = 0;
    std::uint8_t prev_ = 0;
    std::uint8_t node_ = 0;
    bool timed_ = false;
};

#endif // !EBCP_DISABLE_PROFILER

} // namespace prof
} // namespace ebcp

/**
 * Open a profiler phase scope for the rest of the enclosing block.
 * The only sanctioned instrumentation path: compiles to nothing under
 * -DEBCP_DISABLE_PROFILER.
 */
#ifndef EBCP_DISABLE_PROFILER
#define EBCP_PROF_CONCAT2(a, b) a##b
#define EBCP_PROF_CONCAT(a, b) EBCP_PROF_CONCAT2(a, b)
#define EBCP_PROFILE_SCOPE(phase)                                          \
    ::ebcp::prof::Scope EBCP_PROF_CONCAT(ebcp_prof_scope_, __LINE__)(      \
        ::ebcp::prof::Phase::phase)
#else
#define EBCP_PROFILE_SCOPE(phase) ((void)0)
#endif

#endif // EBCP_UTIL_PROFILER_HH
