#include "util/status.hh"

#include <cerrno>
#include <cstring>

namespace ebcp
{

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "ok";
      case StatusCode::InvalidArgument: return "invalid argument";
      case StatusCode::NotFound: return "not found";
      case StatusCode::IoError: return "I/O error";
      case StatusCode::Corruption: return "corruption";
      case StatusCode::Stalled: return "stalled";
      case StatusCode::InvariantViolation: return "invariant violation";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(statusCodeName(code_)) + ": " + msg_;
}

Status
Status::withContext(const std::string &context) const
{
    if (ok())
        return *this;
    return Status(code_, context + ": " + msg_);
}

std::string
errnoString()
{
    const int e = errno;
    std::string out = "error " + std::to_string(e);
    if (const char *s = std::strerror(e))
        out += std::string(" (") + s + ")";
    return out;
}

} // namespace ebcp
