/**
 * @file
 * Small string helpers shared by the config store and table printers.
 */

#ifndef EBCP_UTIL_STR_HH
#define EBCP_UTIL_STR_HH

#include <string>
#include <vector>

namespace ebcp
{

/** Split @p s on @p sep, dropping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/** Format a double with @p prec digits after the decimal point. */
std::string fmtDouble(double v, int prec = 2);

/** Format bytes as a human-readable size ("64B", "2MB", "64MB"). */
std::string fmtSize(std::uint64_t bytes);

/** Edit (Levenshtein) distance between @p a and @p b. */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * The candidate closest to @p word by edit distance, for "did you
 * mean" suggestions on mistyped keys/names.
 * @return empty string if no candidate is within @p max_distance.
 */
std::string nearestMatch(const std::string &word,
                         const std::vector<std::string> &candidates,
                         std::size_t max_distance = 3);

} // namespace ebcp

#endif // EBCP_UTIL_STR_HH
