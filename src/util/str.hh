/**
 * @file
 * Small string helpers shared by the config store and table printers.
 */

#ifndef EBCP_UTIL_STR_HH
#define EBCP_UTIL_STR_HH

#include <string>
#include <vector>

namespace ebcp
{

/** Split @p s on @p sep, dropping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/** Format a double with @p prec digits after the decimal point. */
std::string fmtDouble(double v, int prec = 2);

/** Format bytes as a human-readable size ("64B", "2MB", "64MB"). */
std::string fmtSize(std::uint64_t bytes);

} // namespace ebcp

#endif // EBCP_UTIL_STR_HH
