/**
 * @file
 * A functional cache level with statistics.
 *
 * Timing (hit latency, miss handling) lives in the core timing model
 * and the hierarchy; this class answers "hit or miss" and maintains
 * content under the configured replacement policy.
 */

#ifndef EBCP_CACHE_CACHE_HH
#define EBCP_CACHE_CACHE_HH

#include "cache/cache_config.hh"
#include "cache/tag_array.hh"
#include "stats/group.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

/** One cache level (L1I, L1D or L2). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the cache; on a miss the line is *not* inserted (the
     * caller fills it when the data returns, via fill()).
     *
     * @return true on hit.
     */
    bool access(Addr addr, bool write);

    /** Probe without updating recency or stats. */
    bool contains(Addr addr) const { return tags_.contains(addr); }

    /** Install the line containing @p addr. @return displaced victim. */
    Eviction fill(Addr addr, bool dirty = false);

    /** Invalidate the line containing @p addr if present. */
    bool invalidate(Addr addr) { return tags_.invalidate(addr); }

    /** Drop all contents (used between experiments). */
    void flush() { tags_.reset(); }

    const CacheConfig &config() const { return cfg_; }
    Tick hitLatency() const { return cfg_.hitLatency; }
    Addr lineAddr(Addr a) const { return tags_.lineAddr(a); }
    unsigned lineBytes() const { return cfg_.lineBytes; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    StatGroup &stats() { return stats_; }

    /** Visit every valid line address (audit cross-checks). */
    template <typename Fn>
    void
    forEachValidLine(Fn &&fn) const
    {
        tags_.forEachValidLine(std::forward<Fn>(fn));
    }

    /** Re-derive the tag array's structural invariants. */
    void audit(AuditContext &ctx) const { tags_.audit(ctx); }

    /** Test-only: corrupt the tag array so audit() trips. */
    void corruptForTest() { tags_.corruptForTest(); }

    /** Serialize or restore all mutable state (checkpointing). */
    void ckpt(ckpt::Archiver &ar);

  private:
    CacheConfig cfg_;
    TagArray tags_;

    StatGroup stats_;
    Scalar hits_{"hits", "accesses that hit"};
    Scalar misses_{"misses", "accesses that missed"};
    Scalar fills_{"fills", "lines installed"};
    Scalar evictions_{"evictions", "valid lines displaced"};
    Scalar writebacks_{"writebacks", "dirty lines displaced"};
};

} // namespace ebcp

#endif // EBCP_CACHE_CACHE_HH
