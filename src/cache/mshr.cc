#include "cache/mshr.hh"

#include <algorithm>
#include <ostream>

#include "ckpt/containers.hh"
#include "util/logging.hh"
#include "verify/audit.hh"

namespace ebcp
{

MshrFile::MshrFile(const std::string &name, unsigned entries)
    : entries_(entries), stats_(name)
{
    fatal_if(entries == 0, "MSHR file needs at least one entry");
    // Occupancy is bounded by the register count; a 2x reservation
    // keeps the probe chains short and guarantees no rehash.
    inflight_.reserve(2 * static_cast<std::size_t>(entries));
    heap_.reserve(2 * static_cast<std::size_t>(entries));
    stats_.add(allocations_);
    stats_.add(merges_);
    stats_.add(fullStalls_);
}

void
MshrFile::advance(Tick now)
{
    while (!heap_.empty() && heap_.front().complete <= now) {
        // Only erase if the map still refers to this completion; a
        // line can re-miss later and get a fresh (later) entry.
        const Tick *t = inflight_.find(heap_.front().lineAddr);
        if (t && *t == heap_.front().complete)
            inflight_.erase(heap_.front().lineAddr);
        std::pop_heap(heap_.begin(), heap_.end(),
                      std::greater<HeapEntry>());
        heap_.pop_back();
    }
}

Tick
MshrFile::inFlightCompletion(Addr line_addr) const
{
    const Tick *t = inflight_.find(line_addr);
    if (!t)
        return MaxTick;
    ++merges_;
    return *t;
}

Tick
MshrFile::whenCanAllocate(Tick now) const
{
    if (inflight_.size() < entries_)
        return now;
    ++fullStalls_;
    // The file is full: a register frees when the earliest outstanding
    // miss completes. A pure minimum, so the map's iteration order
    // does not matter.
    Tick earliest = MaxTick;
    inflight_.forEach([&earliest](Addr, const Tick &t) {
        earliest = std::min(earliest, t);
    });
    return std::max(now, earliest);
}

void
MshrFile::allocate(Addr line_addr, Tick complete)
{
    ++allocations_;
    inflight_[line_addr] = complete;
    heap_.push_back({complete, line_addr});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<HeapEntry>());
}

void
MshrFile::clear()
{
    inflight_.clear();
    heap_.clear();
}

void
MshrFile::dump(std::ostream &os, std::size_t max_entries) const
{
    os << stats_.name() << ": " << inflight_.size() << "/" << entries_
       << " in flight\n";
    std::size_t shown = 0;
    inflight_.forEach([&](Addr line, const Tick &complete) {
        if (shown > max_entries)
            return;
        if (shown++ >= max_entries) {
            os << "  ... " << (inflight_.size() - max_entries)
               << " more\n";
            return;
        }
        os << "  line 0x" << std::hex << line << std::dec
           << " completes @" << complete << "\n";
    });
}

void
MshrFile::audit(AuditContext &ctx) const
{
    ctx.check(inflight_.size() <= entries_, "occupancy_within_capacity",
              inflight_.size(), " misses tracked but only ", entries_,
              " registers exist");
    // The map is the authority on uniqueness: FlatMap keys are line
    // addresses, so one line can never be tracked twice unless the
    // map itself broke.
    const std::string mapErr = inflight_.integrityError();
    ctx.check(mapErr.empty(), "inflight_map_intact", mapErr);
    ctx.check(heap_.size() >= inflight_.size(), "heap_covers_map",
              "completion heap holds ", heap_.size(),
              " entries for ", inflight_.size(), " tracked misses");
    ctx.check(std::is_heap(heap_.begin(), heap_.end(),
                           std::greater<HeapEntry>()),
              "completion_heap_ordered",
              "heap property violated over ", heap_.size(), " entries");
    inflight_.forEach([&](Addr line, const Tick &complete) {
        const bool covered =
            std::any_of(heap_.begin(), heap_.end(),
                        [&](const HeapEntry &h) {
                            return h.lineAddr == line &&
                                   h.complete == complete;
                        });
        ctx.check(covered, "tracked_miss_has_heap_entry",
                  "line 0x", std::hex, line, std::dec, " completing @",
                  complete, " is unknown to the retirement heap");
    });
}

void
MshrFile::corruptForTest()
{
    // Track more lines than the file has registers, behind the
    // completion heap's back: trips occupancy_within_capacity and
    // tracked_miss_has_heap_entry.
    for (unsigned i = 0; i <= entries_; ++i)
        inflight_[0xC0'0000 + 0x40ull * i] = MaxTick - 1;
}

void
MshrFile::ckpt(ckpt::Archiver &ar)
{
    ckpt::ckptFlatMap(ar, inflight_, [](ckpt::Archiver &a, Tick &t) {
        a.u64(t);
    });
    // The heap is serialized in its physical vector order, which
    // preserves the std::*_heap layout exactly.
    ar.vec(heap_, [](ckpt::Archiver &a, HeapEntry &h) {
        a.u64(h.complete);
        a.u64(h.lineAddr);
    });
    stats_.ckpt(ar);
}

} // namespace ebcp
