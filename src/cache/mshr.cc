#include "cache/mshr.hh"

#include <algorithm>
#include <ostream>

#include "util/logging.hh"

namespace ebcp
{

MshrFile::MshrFile(const std::string &name, unsigned entries)
    : entries_(entries), stats_(name)
{
    fatal_if(entries == 0, "MSHR file needs at least one entry");
    stats_.add(allocations_);
    stats_.add(merges_);
    stats_.add(fullStalls_);
}

void
MshrFile::advance(Tick now)
{
    while (!heap_.empty() && heap_.top().complete <= now) {
        auto it = inflight_.find(heap_.top().lineAddr);
        // Only erase if the map still refers to this completion; a
        // line can re-miss later and get a fresh (later) entry.
        if (it != inflight_.end() && it->second == heap_.top().complete)
            inflight_.erase(it);
        heap_.pop();
    }
}

Tick
MshrFile::inFlightCompletion(Addr line_addr) const
{
    auto it = inflight_.find(line_addr);
    if (it == inflight_.end())
        return MaxTick;
    ++merges_;
    return it->second;
}

Tick
MshrFile::whenCanAllocate(Tick now) const
{
    if (inflight_.size() < entries_)
        return now;
    ++fullStalls_;
    // The file is full: a register frees when the earliest outstanding
    // miss completes.
    Tick earliest = MaxTick;
    for (const auto &kv : inflight_)
        earliest = std::min(earliest, kv.second);
    return std::max(now, earliest);
}

void
MshrFile::allocate(Addr line_addr, Tick complete)
{
    ++allocations_;
    inflight_[line_addr] = complete;
    heap_.push({complete, line_addr});
}

void
MshrFile::clear()
{
    inflight_.clear();
    heap_ = {};
}

void
MshrFile::dump(std::ostream &os, std::size_t max_entries) const
{
    os << stats_.name() << ": " << inflight_.size() << "/" << entries_
       << " in flight\n";
    std::size_t shown = 0;
    for (const auto &kv : inflight_) {
        if (shown++ >= max_entries) {
            os << "  ... " << (inflight_.size() - max_entries)
               << " more\n";
            break;
        }
        os << "  line 0x" << std::hex << kv.first << std::dec
           << " completes @" << kv.second << "\n";
    }
}

} // namespace ebcp
