/**
 * @file
 * Miss Status Holding Register file.
 *
 * Used by the timing model to bound the number of outstanding misses
 * (32 L2 MSHRs in the default configuration) and to merge requests to
 * a line that is already in flight. Entries whose completion time has
 * passed are retired lazily as simulated time advances.
 */

#ifndef EBCP_CACHE_MSHR_HH
#define EBCP_CACHE_MSHR_HH

#include <vector>

#include "stats/group.hh"
#include "util/flat_map.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;

/** A bounded set of in-flight line misses with completion times. */
class MshrFile
{
  public:
    MshrFile(const std::string &name, unsigned entries);

    /**
     * Retire entries that have completed by @p now.
     * Must be called with non-decreasing @p now (the one-pass timing
     * model guarantees issue times are presented in near order; the
     * file tolerates small regressions by simply not retiring).
     */
    void advance(Tick now);

    /**
     * @return the completion time of an in-flight request for
     *         @p line_addr, or MaxTick if none.
     */
    Tick inFlightCompletion(Addr line_addr) const;

    /**
     * Earliest time a new entry can be allocated at or after @p now
     * (now itself if a register is free, otherwise when the oldest
     * in-flight miss completes).
     */
    Tick whenCanAllocate(Tick now) const;

    /** Record a new in-flight miss completing at @p complete. */
    void allocate(Addr line_addr, Tick complete);

    std::size_t occupancy() const { return inflight_.size(); }
    unsigned capacity() const { return entries_; }

    /** Drop all tracked entries. */
    void clear();

    /** One-line-per-entry snapshot of the in-flight misses (watchdog
     * diagnostics); at most @p max_entries lines. */
    void dump(std::ostream &os, std::size_t max_entries = 8) const;

    StatGroup &stats() { return stats_; }

    /** Host hash-map probe counters (throughput bench). */
    const FlatMapStats &mapStats() const { return inflight_.stats(); }

    /**
     * Re-derive the file's structural invariants: occupancy within
     * the register count, the completion heap well-formed and
     * covering every tracked miss, and the hash map internally
     * intact. Stale heap entries for re-missed lines are expected
     * (advance() filters them), so the heap may be larger than the
     * map but never smaller.
     */
    void audit(AuditContext &ctx) const;

    /** Test-only: track more misses than the file has registers,
     * bypassing the completion heap, so audit() trips. */
    void corruptForTest();

    /** Serialize or restore all mutable state (checkpointing). */
    void ckpt(ckpt::Archiver &ar);

  private:
    unsigned entries_;
    // Reserved at construction so in-flight tracking never rehashes:
    // the miss path is allocation-free in steady state.
    FlatMap<Tick> inflight_;

    struct HeapEntry
    {
        Tick complete;
        Addr lineAddr;
        bool operator>(const HeapEntry &o) const
        {
            return complete > o.complete;
        }
    };
    // Min-heap over completion times, managed with std::push_heap /
    // std::pop_heap so clear() keeps the storage.
    std::vector<HeapEntry> heap_;

    StatGroup stats_;
    Scalar allocations_{"allocations", "misses tracked"};
    // Counted from const query paths; bookkeeping only.
    mutable Scalar merges_{"merges",
                           "requests merged into in-flight misses"};
    mutable Scalar fullStalls_{"full_stalls",
                               "allocations delayed by a full file"};
};

} // namespace ebcp

#endif // EBCP_CACHE_MSHR_HH
