#include "cache/cache.hh"

#include "ckpt/archiver.hh"

namespace ebcp
{

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg), tags_(cfg.sets(), cfg.ways, cfg.lineBytes, cfg.repl),
      stats_(cfg.name)
{
    cfg_.check();
    stats_.add(hits_);
    stats_.add(misses_);
    stats_.add(fills_);
    stats_.add(evictions_);
    stats_.add(writebacks_);
}

bool
Cache::access(Addr addr, bool write)
{
    if (tags_.access(addr, write)) {
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

Eviction
Cache::fill(Addr addr, bool dirty)
{
    ++fills_;
    Eviction ev = tags_.insert(addr, dirty);
    if (ev.valid) {
        ++evictions_;
        if (ev.dirty)
            ++writebacks_;
    }
    return ev;
}


void
Cache::ckpt(ckpt::Archiver &ar)
{
    tags_.ckpt(ar);
    stats_.ckpt(ar);
}

} // namespace ebcp
