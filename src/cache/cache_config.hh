/**
 * @file
 * Cache geometry and latency configuration.
 */

#ifndef EBCP_CACHE_CACHE_CONFIG_HH
#define EBCP_CACHE_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace ebcp
{

/** Replacement policy selector. */
enum class ReplPolicy
{
    Lru,
    Random,
};

/** Geometry/latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * KiB;
    unsigned ways = 4;
    unsigned lineBytes = 64;
    Tick hitLatency = 3;
    ReplPolicy repl = ReplPolicy::Lru;

    unsigned
    sets() const
    {
        return static_cast<unsigned>(sizeBytes / (ways * lineBytes));
    }

    /** Validate that the geometry is realizable. */
    void
    check() const
    {
        fatal_if(sizeBytes == 0 || ways == 0 || lineBytes == 0,
                 "cache ", name, ": zero-sized parameter");
        fatal_if(sizeBytes % (ways * std::uint64_t{lineBytes}) != 0,
                 "cache ", name, ": size not divisible by ways*line");
        fatal_if(!isPowerOf2(lineBytes),
                 "cache ", name, ": line size must be a power of two");
        fatal_if(!isPowerOf2(sets()),
                 "cache ", name, ": set count must be a power of two");
    }
};

} // namespace ebcp

#endif // EBCP_CACHE_CACHE_CONFIG_HH
