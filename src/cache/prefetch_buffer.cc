#include "cache/prefetch_buffer.hh"

#include "ckpt/archiver.hh"
#include "util/logging.hh"
#include "verify/audit.hh"

namespace ebcp
{

PrefetchBuffer::PrefetchBuffer(unsigned entries, unsigned ways,
                               unsigned line_bytes)
    : sets_(entries / ways), ways_(ways), lineShift_(floorLog2(line_bytes)),
      entries_(entries), stats_("prefetch_buffer")
{
    fatal_if(entries == 0 || ways == 0, "prefetch buffer with no entries");
    fatal_if(entries % ways != 0,
             "prefetch buffer entries must be a multiple of ways");
    fatal_if(!isPowerOf2(sets_),
             "prefetch buffer set count must be a power of two");
    stats_.add(hits_);
    stats_.add(lateHits_);
    stats_.add(inserts_);
    stats_.add(replacedUnused_);
}

PrefetchBuffer::Entry *
PrefetchBuffer::find(Addr line_addr)
{
    const unsigned set = setOf(line_addr);
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[set * ways_ + w];
        if (e.valid && e.lineAddr == line_addr)
            return &e;
    }
    return nullptr;
}

const PrefetchBuffer::Entry *
PrefetchBuffer::find(Addr line_addr) const
{
    return const_cast<PrefetchBuffer *>(this)->find(line_addr);
}

bool
PrefetchBuffer::contains(Addr addr) const
{
    return find(alignDown(addr, 1ULL << lineShift_)) != nullptr;
}

PrefBufHit
PrefetchBuffer::lookup(Addr addr, Tick now)
{
    const Addr line = alignDown(addr, 1ULL << lineShift_);
    Entry *e = find(line);
    PrefBufHit res;
    if (!e)
        return res;

    res.hit = true;
    res.readyTime = e->readyTime;
    res.corrIndex = e->corrIndex;
    res.hasCorrIndex = e->hasCorrIndex;
    res.source = e->source;
    ++hits_;
    if (e->readyTime > now)
        ++lateHits_;
    // Consumed: the line moves to the regular cache hierarchy.
    e->valid = false;
    return res;
}

PrefBufEvict
PrefetchBuffer::insert(Addr addr, Tick ready_time, std::uint64_t corr_index,
                       bool has_corr_index, std::uint8_t source)
{
    const Addr line = alignDown(addr, 1ULL << lineShift_);
    ++inserts_;

    if (Entry *e = find(line)) {
        // Refresh an existing entry (keep the earlier ready time: the
        // first prefetch's data arrives first).
        e->readyTime = std::min(e->readyTime, ready_time);
        e->stamp = ++stampCounter_;
        if (has_corr_index) {
            e->corrIndex = corr_index;
            e->hasCorrIndex = true;
        }
        return {};
    }

    const unsigned set = setOf(line);
    Entry *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[set * ways_ + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.stamp < victim->stamp)
            victim = &e;
    }
    PrefBufEvict evicted;
    if (victim->valid) {
        ++replacedUnused_;
        evicted.line = victim->lineAddr;
        evicted.source = victim->source;
    }

    victim->lineAddr = line;
    victim->readyTime = ready_time;
    victim->corrIndex = corr_index;
    victim->hasCorrIndex = has_corr_index;
    victim->valid = true;
    victim->stamp = ++stampCounter_;
    victim->source = source;
    return evicted;
}

void
PrefetchBuffer::flush()
{
    for (auto &e : entries_)
        e.valid = false;
}

unsigned
PrefetchBuffer::validCount() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

void
PrefetchBuffer::audit(AuditContext &ctx) const
{
    ctx.check(validCount() <= entries(), "occupancy_within_capacity",
              validCount(), " valid entries in a ", entries(),
              "-entry buffer");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        if (!e.valid)
            continue;
        const unsigned set = static_cast<unsigned>(i / ways_);
        ctx.check(setOf(e.lineAddr) == set, "entry_in_home_set",
                  "line 0x", std::hex, e.lineAddr, std::dec,
                  " stored in set ", set, " but indexes to set ",
                  setOf(e.lineAddr), " -- lookups will miss it");
        ctx.check(e.stamp <= stampCounter_, "stamp_not_from_future",
                  "entry ", i, " stamp ", e.stamp, " exceeds counter ",
                  stampCounter_);
        for (std::size_t j = i + 1; j < entries_.size(); ++j) {
            const Entry &o = entries_[j];
            ctx.check(!(o.valid && o.lineAddr == e.lineAddr),
                      "no_line_buffered_twice",
                      "line 0x", std::hex, e.lineAddr, std::dec,
                      " held by entries ", i, " and ", j);
        }
    }
}

void
PrefetchBuffer::corruptForTest()
{
    fatal_if(sets_ < 2, "corruptForTest needs at least two sets");
    // Clone the first valid entry into another set (duplicate + out of
    // home set), or fabricate a misplaced entry in an empty buffer.
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].valid)
            continue;
        const std::size_t other =
            (i + static_cast<std::size_t>(ways_)) % entries_.size();
        entries_[other] = entries_[i];
        return;
    }
    Addr line = 1ULL << lineShift_;
    while (setOf(line) == 0)
        line += 1ULL << lineShift_;
    entries_[0].lineAddr = line;
    entries_[0].readyTime = 0;
    entries_[0].valid = true;
    entries_[0].stamp = stampCounter_;
}


void
PrefetchBuffer::ckpt(ckpt::Archiver &ar)
{
    ar.fixedVec(entries_, [](ckpt::Archiver &a, Entry &e) {
        a.u64(e.lineAddr);
        a.u64(e.readyTime);
        a.u64(e.corrIndex);
        a.boolean(e.hasCorrIndex);
        a.boolean(e.valid);
        a.u64(e.stamp);
        a.u8(e.source);
    }, "prefetch buffer entries");
    ar.u64(stampCounter_);
    stats_.ckpt(ar);
}

} // namespace ebcp
