#include "cache/tag_array.hh"

#include "ckpt/containers.hh"
#include "verify/audit.hh"

namespace ebcp
{

TagArray::TagArray(unsigned sets, unsigned ways, unsigned line_bytes,
                   ReplPolicy repl)
    : sets_(sets), ways_(ways), lineBytes_(line_bytes),
      lineShift_(floorLog2(line_bytes)), repl_(repl),
      ways_v_(static_cast<std::size_t>(sets) * ways)
{
    fatal_if(!isPowerOf2(sets), "tag array set count must be power of two");
    fatal_if(!isPowerOf2(line_bytes),
             "tag array line size must be power of two");
    fatal_if(ways == 0, "tag array needs at least one way");
}

int
TagArray::findWay(unsigned set, Addr tag) const
{
    for (unsigned w = 0; w < ways_; ++w) {
        const Way &wy = way(set, w);
        if (wy.valid && wy.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

bool
TagArray::contains(Addr addr) const
{
    return findWay(setIndex(addr), tagOf(addr)) >= 0;
}

bool
TagArray::access(Addr addr, bool write)
{
    const unsigned set = setIndex(addr);
    int w = findWay(set, tagOf(addr));
    if (w < 0)
        return false;
    Way &wy = way(set, static_cast<unsigned>(w));
    wy.stamp = ++stampCounter_;
    if (write)
        wy.dirty = true;
    return true;
}

unsigned
TagArray::victimWay(unsigned set)
{
    // Invalid ways first, regardless of policy.
    for (unsigned w = 0; w < ways_; ++w)
        if (!way(set, w).valid)
            return w;

    if (repl_ == ReplPolicy::Random)
        return rng_.below(ways_);

    unsigned victim = 0;
    std::uint64_t oldest = way(set, 0).stamp;
    for (unsigned w = 1; w < ways_; ++w) {
        if (way(set, w).stamp < oldest) {
            oldest = way(set, w).stamp;
            victim = w;
        }
    }
    return victim;
}

Eviction
TagArray::insert(Addr addr, bool dirty)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);

    int existing = findWay(set, tag);
    if (existing >= 0) {
        Way &wy = way(set, static_cast<unsigned>(existing));
        wy.stamp = ++stampCounter_;
        wy.dirty = wy.dirty || dirty;
        return {};
    }

    unsigned w = victimWay(set);
    Way &wy = way(set, w);
    Eviction ev;
    if (wy.valid) {
        ev.valid = true;
        ev.dirty = wy.dirty;
        ev.lineAddr = (wy.tag << lineShift_);
    }
    wy.tag = tag;
    wy.valid = true;
    wy.dirty = dirty;
    wy.stamp = ++stampCounter_;
    return ev;
}

bool
TagArray::invalidate(Addr addr)
{
    const unsigned set = setIndex(addr);
    int w = findWay(set, tagOf(addr));
    if (w < 0)
        return false;
    way(set, static_cast<unsigned>(w)).valid = false;
    return true;
}

void
TagArray::reset()
{
    for (auto &w : ways_v_)
        w = Way{};
    stampCounter_ = 0;
}

std::size_t
TagArray::validCount() const
{
    std::size_t n = 0;
    for (const auto &w : ways_v_)
        if (w.valid)
            ++n;
    return n;
}

void
TagArray::audit(AuditContext &ctx) const
{
    for (unsigned s = 0; s < sets_; ++s) {
        for (unsigned w = 0; w < ways_; ++w) {
            const Way &wy = way(s, w);
            if (!wy.valid)
                continue;
            ctx.check(wy.stamp <= stampCounter_, "stamp_not_from_future",
                      "set ", s, " way ", w, " stamp ", wy.stamp,
                      " exceeds counter ", stampCounter_);
            for (unsigned w2 = w + 1; w2 < ways_; ++w2) {
                const Way &o = way(s, w2);
                ctx.check(!(o.valid && o.tag == wy.tag),
                          "no_duplicate_tags_in_set",
                          "set ", s, " holds tag 0x", std::hex, wy.tag,
                          std::dec, " in ways ", w, " and ", w2);
            }
        }
    }
}

void
TagArray::corruptForTest()
{
    fatal_if(ways_ < 2, "corruptForTest needs an associative array");
    // Clone (or fabricate) a duplicate tag within set 0, which lookup
    // can then resolve to either way: trips no_duplicate_tags_in_set.
    Way &a = way(0, 0);
    Way &b = way(0, 1);
    if (!a.valid) {
        a.tag = 0x1234;
        a.valid = true;
        a.stamp = stampCounter_;
    }
    b = a;
}

void
TagArray::ckpt(ckpt::Archiver &ar)
{
    ar.fixedVec(ways_v_, [](ckpt::Archiver &a, Way &w) {
        a.u64(w.tag);
        a.boolean(w.valid);
        a.boolean(w.dirty);
        a.u64(w.stamp);
    }, "tag array ways");
    ar.u64(stampCounter_);
    ckpt::ckptPcg32(ar, rng_);
}

} // namespace ebcp
