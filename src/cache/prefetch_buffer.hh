/**
 * @file
 * The prefetch buffer (Section 5.2, "prefetched lines are stored in a
 * prefetch buffer ... searched in parallel with the L2 cache").
 *
 * Prefetched lines land here rather than polluting the L2; a demand
 * access that finds its line here promotes it to the regular cache.
 * Each entry also remembers which correlation-table entry produced it
 * so a hit can refresh that entry's LRU state (Section 3.4.3).
 */

#ifndef EBCP_CACHE_PREFETCH_BUFFER_HH
#define EBCP_CACHE_PREFETCH_BUFFER_HH

#include <cstdint>
#include <vector>

#include "stats/group.hh"
#include "util/bitfield.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;

/** Result of probing the prefetch buffer. */
struct PrefBufHit
{
    bool hit = false;        //!< line present (possibly still in flight)
    Tick readyTime = 0;      //!< when the line's data is on chip
    std::uint64_t corrIndex = 0; //!< correlation-table entry that
                                 //!< generated the prefetch
    bool hasCorrIndex = false;
    std::uint8_t source = 0; //!< ledger source id of the issuer
};

/** Result of installing a line: the unused entry it displaced. */
struct PrefBufEvict
{
    Addr line = InvalidAddr; //!< evicted line, or InvalidAddr
    std::uint8_t source = 0; //!< ledger source id of its issuer
};

/** Set-associative buffer of prefetched lines. */
class PrefetchBuffer
{
  public:
    /**
     * @param entries total entry count (power of two)
     * @param ways associativity (4 in the paper)
     * @param line_bytes cache line size
     */
    PrefetchBuffer(unsigned entries, unsigned ways, unsigned line_bytes);

    /**
     * Probe for the line containing @p addr at time @p now; on a hit
     * the entry is consumed (the line is promoted to the regular
     * cache by the caller).
     */
    PrefBufHit lookup(Addr addr, Tick now);

    /** Probe without consuming or counting (used for filtering). */
    bool contains(Addr addr) const;

    /**
     * Install a prefetched line that becomes available at
     * @p ready_time, credited to ledger source @p source. Duplicate
     * inserts refresh the existing entry.
     *
     * @return the line address (and issuing source) of a valid,
     *         never-used entry this insert replaced, or InvalidAddr
     *         if none was displaced (the caller records the eviction
     *         in its lifecycle ledger/trace).
     */
    PrefBufEvict insert(Addr addr, Tick ready_time,
                        std::uint64_t corr_index, bool has_corr_index,
                        std::uint8_t source = 0);

    /** Drop all contents. */
    void flush();

    /** Valid (prefetched, not yet used) entries right now. */
    unsigned validCount() const;

    unsigned entries() const { return sets_ * ways_; }
    std::uint64_t hitsTotal() const { return hits_.value(); }
    std::uint64_t insertsTotal() const { return inserts_.value(); }

    StatGroup &stats() { return stats_; }

    /** Visit every valid entry's (line address, ready time). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const Entry &e : entries_)
            if (e.valid)
                fn(e.lineAddr, e.readyTime);
    }

    /** Re-derive structural invariants: occupancy within the entry
     * count, no line buffered twice, every valid entry indexed into
     * its home set, no recency stamp from the future. */
    void audit(AuditContext &ctx) const;

    /** Test-only: clone a buffered line into a foreign set (or
     * fabricate a misplaced entry) so audit() trips. */
    void corruptForTest();

    /** Serialize or restore all mutable state (checkpointing). */
    void ckpt(ckpt::Archiver &ar);

  private:
    struct Entry
    {
        Addr lineAddr = InvalidAddr;
        Tick readyTime = 0;
        std::uint64_t corrIndex = 0;
        bool hasCorrIndex = false;
        bool valid = false;
        std::uint64_t stamp = 0;
        std::uint8_t source = 0; //!< ledger source id of the issuer
    };

    Entry *find(Addr line_addr);
    const Entry *find(Addr line_addr) const;

    unsigned setOf(Addr line_addr) const
    {
        return static_cast<unsigned>(
            mix64(line_addr >> lineShift_) & (sets_ - 1));
    }

    unsigned sets_;
    unsigned ways_;
    unsigned lineShift_;
    std::vector<Entry> entries_;
    std::uint64_t stampCounter_ = 0;

    StatGroup stats_;
    Scalar hits_{"hits", "demand accesses satisfied from the buffer"};
    Scalar lateHits_{"late_hits", "hits on still-in-flight prefetches"};
    Scalar inserts_{"inserts", "prefetched lines installed"};
    Scalar replacedUnused_{"replaced_unused",
                           "valid entries evicted before any use"};
};

} // namespace ebcp

#endif // EBCP_CACHE_PREFETCH_BUFFER_HH
