/**
 * @file
 * Generic set-associative tag array with pluggable replacement.
 *
 * The tag array is purely functional (no timing); it is the shared
 * substrate for the instruction/data/L2 caches and for table-like
 * structures (e.g. the SMS pattern history table) that need realistic
 * set-conflict behaviour.
 */

#ifndef EBCP_CACHE_TAG_ARRAY_HH
#define EBCP_CACHE_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "util/bitfield.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;

/** Result of inserting a line: what (if anything) was evicted. */
struct Eviction
{
    bool valid = false;  //!< true if a valid line was displaced
    bool dirty = false;  //!< displaced line was dirty
    Addr lineAddr = InvalidAddr; //!< line address of the victim
};

/** A set-associative array of address tags plus LRU/dirty metadata. */
class TagArray
{
  public:
    TagArray(unsigned sets, unsigned ways, unsigned line_bytes,
             ReplPolicy repl = ReplPolicy::Lru);

    /** @return true if the line containing @p addr is present. */
    bool contains(Addr addr) const;

    /**
     * Look up @p addr; on a hit updates recency and (for writes) the
     * dirty bit.
     *
     * @return true on hit.
     */
    bool access(Addr addr, bool write);

    /**
     * Insert the line containing @p addr, evicting a victim if the set
     * is full. Inserting an already-present line just refreshes it.
     *
     * @return description of the displaced victim (if any).
     */
    Eviction insert(Addr addr, bool dirty = false);

    /** Remove the line containing @p addr if present. @return true if
     * it was present. */
    bool invalidate(Addr addr);

    /** Drop every line. */
    void reset();

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    unsigned lineBytes() const { return lineBytes_; }

    /** Line-aligned address of @p addr. */
    Addr lineAddr(Addr addr) const { return alignDown(addr, lineBytes_); }

    /** Set index of @p addr. */
    unsigned
    setIndex(Addr addr) const
    {
        return static_cast<unsigned>((addr >> lineShift_) & (sets_ - 1));
    }

    /** Count of valid lines (testing / occupancy checks). */
    std::size_t validCount() const;

    /** Visit every valid line address. */
    template <typename Fn>
    void
    forEachValidLine(Fn &&fn) const
    {
        for (unsigned s = 0; s < sets_; ++s)
            for (unsigned w = 0; w < ways_; ++w)
                if (way(s, w).valid)
                    fn(way(s, w).tag << lineShift_);
    }

    /** Re-derive structural invariants: within each set no two valid
     * ways share a tag, and no recency stamp is from the future. */
    void audit(AuditContext &ctx) const;

    /** Test-only: duplicate a tag within a set so audit() trips. */
    void corruptForTest();

    /** Serialize or restore all mutable state (checkpointing). */
    void ckpt(ckpt::Archiver &ar);

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t stamp = 0; //!< LRU recency stamp
    };

    /** @return way index of @p addr within its set, or -1. */
    int findWay(unsigned set, Addr tag) const;

    /** Choose the victim way in @p set per the replacement policy. */
    unsigned victimWay(unsigned set);

    Addr tagOf(Addr addr) const { return addr >> lineShift_; }
    Way &way(unsigned set, unsigned w) { return ways_v_[set * ways_ + w]; }
    const Way &
    way(unsigned set, unsigned w) const
    {
        return ways_v_[set * ways_ + w];
    }

    unsigned sets_;
    unsigned ways_;
    unsigned lineBytes_;
    unsigned lineShift_;
    ReplPolicy repl_;
    std::vector<Way> ways_v_;
    std::uint64_t stampCounter_ = 0;
    Pcg32 rng_{12345};
};

} // namespace ebcp

#endif // EBCP_CACHE_TAG_ARRAY_HH
