#include "verify/audit.hh"

#include <charconv>
#include <sstream>

#include "util/json.hh"
#include "util/profiler.hh"

namespace ebcp
{

Status
parseAuditCadence(std::string_view spec, AuditOptions &out)
{
    if (spec == "off") {
        out.cadence = AuditCadence::Off;
        out.everyTicks = 0;
        return Status();
    }
    if (spec == "retire") {
        out.cadence = AuditCadence::Retire;
        out.everyTicks = 0;
        return Status();
    }
    if (spec == "epoch") {
        out.cadence = AuditCadence::Epoch;
        out.everyTicks = 0;
        return Status();
    }
    constexpr std::string_view prefix = "every:";
    if (spec.substr(0, prefix.size()) == prefix) {
        const std::string_view num = spec.substr(prefix.size());
        std::uint64_t n = 0;
        const auto [ptr, ec] =
            std::from_chars(num.data(), num.data() + num.size(), n);
        if (ec != std::errc() || ptr != num.data() + num.size() || n == 0)
            return invalidArgError("audit=every:N needs a positive tick "
                                   "count, got '", std::string(num), "'");
        out.cadence = AuditCadence::EveryN;
        out.everyTicks = n;
        return Status();
    }
    return invalidArgError("unknown audit cadence '", std::string(spec),
                           "' (expected off, retire, epoch, or every:N)");
}

Status
parseAuditPolicy(std::string_view spec, AuditOptions &out)
{
    if (spec == "collect") {
        out.policy = AuditPolicy::Collect;
        return Status();
    }
    if (spec == "abort") {
        out.policy = AuditPolicy::Abort;
        return Status();
    }
    return invalidArgError("unknown audit policy '", std::string(spec),
                           "' (expected collect or abort)");
}

// --- AuditContext --------------------------------------------------

void
AuditContext::record(std::string_view invariant, std::string detail)
{
    ++totalViolations_;
    if (violations_.size() >= kMaxRecorded)
        return;
    AuditViolation v;
    v.component = component_;
    v.invariant = std::string(invariant);
    v.detail = std::move(detail);
    v.when = now_;
    violations_.push_back(std::move(v));
}

Status
AuditContext::toStatus() const
{
    if (clean())
        return Status();
    const AuditViolation &first = violations_.front();
    return invariantError(first.component, ": ", first.invariant, ": ",
                          first.detail, " (", totalViolations_,
                          " violation(s) across ", checksRun_, " checks)");
}

void
AuditContext::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("checks", checksRun_);
    w.kv("violation_count", totalViolations_);
    w.kv("violations_dropped",
         totalViolations_ - std::uint64_t(violations_.size()));
    w.key("violations").beginArray();
    for (const AuditViolation &v : violations_) {
        w.beginObject();
        w.kv("component", v.component);
        w.kv("invariant", v.invariant);
        w.kv("detail", v.detail);
        w.kv("tick", v.when);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
AuditContext::reset()
{
    component_ = "?";
    now_ = 0;
    checksRun_ = 0;
    totalViolations_ = 0;
    violations_.clear();
}

// --- Auditor -------------------------------------------------------

void
Auditor::runNow(Tick now)
{
    EBCP_PROFILE_SCOPE(Audit);
    ctx_.setNow(now);
    registry_.runAll(ctx_);
    ++passes_;
    if (opts_.cadence == AuditCadence::EveryN)
        nextDue_ = now + opts_.everyTicks;
    if (opts_.policy == AuditPolicy::Abort && !ctx_.clean())
        abort_ = true;
}

std::string
Auditor::summaryJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("passes", passes_);
    w.kv("policy",
         opts_.policy == AuditPolicy::Abort ? "abort" : "collect");
    w.kv("aborted", abort_);
    w.key("result");
    ctx_.writeJson(w);
    w.endObject();
    return os.str();
}

} // namespace ebcp
