/**
 * @file
 * Runtime invariant auditing.
 *
 * The timing model leans on structural invariants that goldens cannot
 * see: the ROB retires in age order, the MSHR file never tracks one
 * line twice, the prefetch buffer and L2 never both hold a line, the
 * epoch ids a tracker hands out only grow. A bug (or an injected
 * fault) that breaks one of these can leave every derived figure
 * subtly wrong while the pinned configs still "pass".
 *
 * This layer makes those invariants mechanical. Every stateful
 * component exposes `audit(AuditContext &)`, which re-derives its
 * invariants from live state and records violations; an Auditor owns
 * the cadence (each retire, each epoch boundary, or every N ticks)
 * and the policy (keep collecting vs. abort the run). Violations are
 * structured -- component, invariant, detail, tick -- and surface
 * both as a Status (StatusCode::InvariantViolation) and as an "audit"
 * object inside the ebcp-stats-v1 JSON document.
 *
 * Audits only ever *read* component state, so SimResults are
 * bit-identical whether auditing is off, on, or compiled away with
 * -DEBCP_AUDIT=OFF (which reduces each hook site below to nothing).
 */

#ifndef EBCP_VERIFY_AUDIT_HH
#define EBCP_VERIFY_AUDIT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/logging.hh"
#include "util/status.hh"
#include "util/types.hh"

namespace ebcp
{

class JsonWriter;

/** One broken invariant, as observed by a component's audit(). */
struct AuditViolation
{
    std::string component; //!< registry name ("core0", "l2", ...)
    std::string invariant; //!< short stable identifier of the rule
    std::string detail;    //!< human-readable specifics
    Tick when = 0;         //!< simulated tick of the audit pass
};

/** What to do when an audit pass finds violations. */
enum class AuditPolicy : std::uint8_t
{
    Collect, //!< keep simulating; violations surface in results
    Abort,   //!< stop the run; the driver returns the audit Status
};

/** When audit passes run. */
enum class AuditCadence : std::uint8_t
{
    Off,    //!< never (the default; auditing is opt-in)
    Retire, //!< after every retired instruction
    Epoch,  //!< at every epoch boundary
    EveryN, //!< whenever at least N ticks elapsed since the last pass
};

/** Parsed form of the audit= / audit_policy= CLI keys. */
struct AuditOptions
{
    AuditCadence cadence = AuditCadence::Off;
    std::uint64_t everyTicks = 0; //!< period for AuditCadence::EveryN
    AuditPolicy policy = AuditPolicy::Collect;

    bool enabled() const { return cadence != AuditCadence::Off; }
};

/** Parse "off" | "retire" | "epoch" | "every:N" into @p out. */
Status parseAuditCadence(std::string_view spec, AuditOptions &out);

/** Parse "collect" | "abort" into @p out. */
Status parseAuditPolicy(std::string_view spec, AuditOptions &out);

/**
 * Accumulates the outcome of audit passes. Components receive this in
 * audit() and call check()/fail(); violation records are capped so a
 * systematically broken structure cannot balloon memory -- the total
 * count keeps climbing past the cap, only details are dropped.
 */
class AuditContext
{
  public:
    /** Simulated time stamped onto subsequent violations. */
    void setNow(Tick now) { now_ = now; }
    Tick now() const { return now_; }

    /** Name stamped onto subsequent violations (set by the registry). */
    void beginComponent(std::string_view name) { component_ = name; }

    /**
     * Record a violation of @p invariant unless @p holds. Returns
     * @p holds so callers can skip dependent checks.
     */
    template <typename... Args>
    bool
    check(bool holds, std::string_view invariant, Args &&...detail)
    {
        ++checksRun_;
        if (holds)
            return true;
        record(invariant, logFormat(std::forward<Args>(detail)...));
        return false;
    }

    /** Unconditionally record a violation of @p invariant. */
    template <typename... Args>
    void
    fail(std::string_view invariant, Args &&...detail)
    {
        ++checksRun_;
        record(invariant, logFormat(std::forward<Args>(detail)...));
    }

    bool clean() const { return totalViolations_ == 0; }
    std::uint64_t checksRun() const { return checksRun_; }
    std::uint64_t totalViolations() const { return totalViolations_; }
    const std::vector<AuditViolation> &violations() const
    {
        return violations_;
    }

    /** Ok when clean, else an InvariantViolation Status naming the
     * first violation and the total count. */
    Status toStatus() const;

    /** Emit {"checks": n, "violations": [...], ...} via @p w. */
    void writeJson(JsonWriter &w) const;

    /** Forget everything (component names, counts, violations). */
    void reset();

  private:
    void record(std::string_view invariant, std::string detail);

    static constexpr std::size_t kMaxRecorded = 32;

    std::string component_ = "?";
    Tick now_ = 0;
    std::uint64_t checksRun_ = 0;
    std::uint64_t totalViolations_ = 0;
    std::vector<AuditViolation> violations_;
};

/**
 * Named list of audit functions. Drivers register one entry per
 * stateful component plus cross-component lambdas (conservation
 * between a producer and a consumer lives in neither).
 */
class AuditRegistry
{
  public:
    using AuditFn = std::function<void(AuditContext &)>;

    void
    add(std::string name, AuditFn fn)
    {
        entries_.emplace_back(std::move(name), std::move(fn));
    }

    /** Run every entry against @p ctx, tagging each by name. */
    void
    runAll(AuditContext &ctx) const
    {
        for (const auto &[name, fn] : entries_) {
            ctx.beginComponent(name);
            fn(ctx);
        }
    }

    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<std::pair<std::string, AuditFn>> entries_;
};

/**
 * Cadence + policy wrapper the simulators own. Hook sites call
 * onRetire()/onEpoch() through the EBCP_AUDIT_* macros below; the
 * inline cadence tests keep the per-instruction cost to a pointer
 * test and (for every:N) one comparison.
 */
class Auditor
{
  public:
    explicit Auditor(const AuditOptions &opts) : opts_(opts) {}

    AuditRegistry &registry() { return registry_; }
    const AuditOptions &options() const { return opts_; }
    bool enabled() const { return opts_.enabled(); }

    void
    onRetire(Tick now)
    {
        if (opts_.cadence == AuditCadence::Retire)
            runNow(now);
        else if (opts_.cadence == AuditCadence::EveryN && now >= nextDue_)
            runNow(now);
    }

    void
    onEpoch(Tick now)
    {
        if (opts_.cadence == AuditCadence::Epoch)
            runNow(now);
    }

    /** One full pass over the registry, unconditionally. */
    void runNow(Tick now);

    /** True once a pass found violations under AuditPolicy::Abort. */
    bool abortRequested() const { return abort_; }

    std::uint64_t passes() const { return passes_; }
    const AuditContext &context() const { return ctx_; }
    Status toStatus() const { return ctx_.toStatus(); }

    /** The audit summary as a rendered JSON object (for embedding in
     * the ebcp-stats-v1 document and CLI diagnostics). */
    std::string summaryJson() const;

  private:
    AuditOptions opts_;
    AuditRegistry registry_;
    AuditContext ctx_;
    Tick nextDue_ = 0;
    std::uint64_t passes_ = 0;
    bool abort_ = false;
};

/**
 * Hook-site macros. The pointer may be null (auditing not
 * configured); with -DEBCP_AUDIT=OFF the sites vanish entirely and
 * EBCP_AUDIT_ENABLED lets code (and tests) gate audit-only logic.
 */
#ifndef EBCP_DISABLE_AUDIT
#define EBCP_AUDIT_ENABLED 1
#define EBCP_AUDIT_RETIRE(aud, now)                                    \
    do {                                                               \
        if (aud)                                                       \
            (aud)->onRetire(now);                                      \
    } while (0)
#define EBCP_AUDIT_EPOCH(aud, now)                                     \
    do {                                                               \
        if (aud)                                                       \
            (aud)->onEpoch(now);                                       \
    } while (0)
#else
#define EBCP_AUDIT_ENABLED 0
#define EBCP_AUDIT_RETIRE(aud, now)                                    \
    do {                                                               \
    } while (0)
#define EBCP_AUDIT_EPOCH(aud, now)                                     \
    do {                                                               \
    } while (0)
#endif

} // namespace ebcp

#endif // EBCP_VERIFY_AUDIT_HH
