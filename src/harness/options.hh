/**
 * @file
 * Status-routed resolution of the sweep-level knobs every bench and
 * example shares:
 *
 *  - EBCP_BENCH_SCALE (env): multiplies the default warm/measure
 *    windows; must be a positive finite number.
 *  - warm=N / measure=N (CLI): absolute window overrides; measure
 *    must be positive.
 *  - EBCP_BENCH_JOBS (env) and jobs=N (CLI, which wins): worker
 *    threads for the parallel sweep engine; must be a positive
 *    integer. Default: hardware concurrency.
 *
 * Malformed values are coded errors, never silently replaced with
 * defaults: a typo must not invalidate an experiment (the same policy
 * as ConfigStore). The env text is passed in explicitly so tests can
 * exercise the parsing without mutating the process environment.
 */

#ifndef EBCP_HARNESS_OPTIONS_HH
#define EBCP_HARNESS_OPTIONS_HH

#include "harness/run_desc.hh"
#include "util/config.hh"
#include "util/status.hh"

namespace ebcp::harness
{

/**
 * Resolve the run scale from @p env_scale (the EBCP_BENCH_SCALE text,
 * or nullptr when unset) and the warm=/measure= keys of @p cs.
 */
StatusOr<RunScale> tryResolveScale(const ConfigStore &cs,
                                   const char *env_scale);

/**
 * Resolve the worker count from @p env_jobs (the EBCP_BENCH_JOBS
 * text, or nullptr when unset) and the jobs= key of @p cs.
 */
StatusOr<unsigned> tryResolveJobs(const ConfigStore &cs,
                                  const char *env_jobs);

/** tryResolveScale() against the real environment. */
StatusOr<RunScale> tryResolveScaleFromEnv(const ConfigStore &cs);

/** tryResolveJobs() against the real environment. */
StatusOr<unsigned> tryResolveJobsFromEnv(const ConfigStore &cs);

} // namespace ebcp::harness

#endif // EBCP_HARNESS_OPTIONS_HH
