/**
 * @file
 * A fully-specified simulation run for the parallel sweep engine.
 *
 * A RunDesc carries everything needed to execute one (workload x
 * configuration) point of a paper sweep: the named workload, the
 * system configuration, the prefetcher parameters, the measurement
 * windows and the workload seed. Execution is a pure function of the
 * descriptor -- never of submission order or of which worker thread
 * picks it up -- which is what makes sweeps bit-reproducible at any
 * job count.
 */

#ifndef EBCP_HARNESS_RUN_DESC_HH
#define EBCP_HARNESS_RUN_DESC_HH

#include <cstdint>
#include <string>

#include "sim/api.hh"

namespace ebcp::harness
{

/** Measurement window sizes for one run. */
struct RunScale
{
    std::uint64_t warm = 4'000'000;
    std::uint64_t measure = 8'000'000;
};

/** One simulation run, fully specified. */
struct RunDesc
{
    /** Display label for reports; defaults to workload/prefetcher. */
    std::string label;

    /** Named workload ("database", "tpcw", "specjbb", "specjas"). */
    std::string workload;

    SimConfig cfg;
    PrefetcherParams pf;
    RunScale scale;

    /**
     * Workload seed. 0 selects the workload's calibrated default, so
     * every configuration sharing a workload replays the identical
     * trace (the paper's same-trace comparison methodology). CMP runs
     * derive per-core seeds from this value.
     */
    std::uint64_t seed = 0;

    /** Core count; >1 runs a CmpSystem with a shared L2. */
    unsigned cores = 1;
};

/**
 * The effective workload seed of @p d: the descriptor's explicit seed,
 * or a stable per-workload default. A pure function of the descriptor,
 * independent of submission order.
 */
std::uint64_t runSeed(const RunDesc &d);

/** @return d.label, or "workload/prefetcher" when no label is set. */
std::string runLabel(const RunDesc &d);

} // namespace ebcp::harness

#endif // EBCP_HARNESS_RUN_DESC_HH
