/**
 * @file
 * The one stats.json schema ("ebcp-stats-v1").
 *
 * ebcp_cli, throughput_bench and the sweep runner all used to print
 * results in their own ad-hoc shapes; anything downstream (plots,
 * regression diffing) had to know three formats. This module is the
 * single definition: every producer frames its document with
 * beginStatsJson()/endStatsJson() and emits each run's SimResults
 * through writeSimResultsJson(), and every producer re-reads its own
 * artifact through validateStatsJson() before exiting.
 *
 * Document shape:
 *
 *   {
 *     "schema": "ebcp-stats-v1",
 *     "source": "<producer name>",
 *     "runs": [
 *       {
 *         "label": "<workload/prefetcher/...>",
 *         "results": { ...SimResults fields... },
 *         "stats": { ... },      // optional full StatGroup tree
 *         "intervals": { ... }   // optional IntervalSampler series
 *       }, ...
 *     ],
 *     "diagnostic": { ... },     // optional (stalled runs)
 *     "audit": { ... },          // optional (invariant-audit summary)
 *     "profile": { ... },        // optional (self-profiler phase tree)
 *     "host_counters": { ... }   // optional (perf_event availability)
 *   }
 */

#ifndef EBCP_HARNESS_STATS_JSON_HH
#define EBCP_HARNESS_STATS_JSON_HH

#include <string>
#include <string_view>

#include "sim/api.hh"
#include "util/json.hh"
#include "util/status.hh"

namespace ebcp
{

/** Schema identifier stamped into every document. */
inline constexpr std::string_view StatsJsonSchema = "ebcp-stats-v1";

/**
 * Open the document: "{ schema, source, runs: [". The caller then
 * emits run objects and finishes with endStatsJson().
 */
void beginStatsJson(JsonWriter &w, std::string_view source);

/**
 * Close the runs array and the document. @p diagnostic_raw, when
 * non-empty, must be a complete JSON value (e.g. a watchdog
 * diagnostic object) and becomes the top-level "diagnostic" member;
 * @p audit_raw likewise (an Auditor::summaryJson() object) becomes
 * the top-level "audit" member; @p profile_raw (a
 * prof::profileJsonString() object) becomes "profile"; @p host_raw
 * (a host-counter availability object: available/estimated/reason/
 * nominal_hz/nominal_source) becomes "host_counters".
 */
void endStatsJson(JsonWriter &w, std::string_view diagnostic_raw = {},
                  std::string_view audit_raw = {},
                  std::string_view profile_raw = {},
                  std::string_view host_raw = {});

/** Emit @p r as one JSON object value (a run's "results" member). */
void writeSimResultsJson(JsonWriter &w, const SimResults &r);

/**
 * Schema check: well-formed JSON, schema tag, source string, runs
 * array whose entries have a label and a results object carrying the
 * required numeric fields.
 */
Status validateStatsJson(const std::string &text);

/** Read @p path and validateStatsJson() its contents. */
Status validateStatsJsonFile(const std::string &path);

} // namespace ebcp

#endif // EBCP_HARNESS_STATS_JSON_HH
