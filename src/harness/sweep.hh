/**
 * @file
 * Parallel sweep engine: a fixed-size thread pool that executes a
 * list of RunDescs and returns per-run results in submission order.
 *
 * Guarantees (see tests/test_runner.cc):
 *
 *  - determinism: each run's SimResults are a pure function of its
 *    descriptor, so a sweep is bit-identical at jobs=1 and jobs=N;
 *  - isolation: each run builds its own Simulator/CmpSystem and trace
 *    source; a faulted run (watchdog stall, bad descriptor) yields a
 *    non-OK per-run Status without aborting or perturbing the rest of
 *    the sweep;
 *  - ordering: results[i] always corresponds to descs[i], regardless
 *    of which worker finished first.
 *
 * Durability (SweepOptions, see DESIGN.md and README "Checkpoint &
 * resume"):
 *
 *  - warm-state reuse: single-core descriptors sharing a warm
 *    fingerprint (same workload/config/prefetcher/warm window) build
 *    one warm checkpoint and fork every measurement from it; forked
 *    results are bit-identical to cold runs (golden-pinned);
 *  - journal: finished runs append one CRC'd JSON line keyed by the
 *    descriptor fingerprint, so a killed sweep resumes with only the
 *    unfinished descriptors and the merged results are bit-identical;
 *  - retry: failed runs retry up to RetryPolicy::maxAttempts with
 *    deterministic exponential backoff + jitter;
 *  - timeout: a per-run wall-clock budget trips the forward-progress
 *    watchdog path, so a wedged run fails with the usual Stalled
 *    diagnostic instead of hanging the sweep;
 *  - degradation: a corrupt or version-skewed warm checkpoint follows
 *    CkptPolicy -- Strict fails the run with the coded Status,
 *    Rebuild logs a structured warning and falls back to a cold
 *    warm-up; the sweep itself never aborts.
 *
 * Every paper bench (Figures 4-9, Table 1, extensions) funnels its
 * (workload x config) grid through this engine; see bench_common.hh
 * for the bench-side convenience wrapper.
 */

#ifndef EBCP_HARNESS_SWEEP_HH
#define EBCP_HARNESS_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "harness/run_desc.hh"
#include "sim/api.hh"
#include "trace/fault_injection.hh"
#include "util/status.hh"

namespace ebcp::harness
{

/** Outcome of one run: a Status plus, when OK, the results. */
struct RunResult
{
    Status status;
    SimResults results; //!< valid only when status.ok()

    unsigned attempts = 1;   //!< execution attempts consumed
    bool fromJournal = false; //!< replayed from the sweep journal
    bool warmForked = false;  //!< measured from a warm checkpoint
    bool coldFallback = false; //!< warm restore failed; ran cold

    bool ok() const { return status.ok(); }
};

/** Bounded deterministic retry of failed runs. */
struct RetryPolicy
{
    /** Total attempts per run (1 = no retry). */
    unsigned maxAttempts = 1;

    /** Backoff before attempt n+1: baseDelayMs * 2^(n-1), capped at
     * maxDelayMs, then jittered down to half deterministically. */
    std::uint64_t baseDelayMs = 50;
    std::uint64_t maxDelayMs = 2'000;

    /** Jitter seed; fixed seed => bit-identical backoff schedule. */
    std::uint64_t seed = 1;

    /** When false the delay is accounted but not slept (tests). */
    bool sleep = true;
};

/**
 * The backoff before retrying @p run_key's attempt @p attempt + 1:
 * exponential in the attempt number, capped, with deterministic
 * per-run jitter in [delay/2, delay]. A pure function of its
 * arguments, so a fixed policy seed fixes the whole schedule.
 */
std::uint64_t retryBackoffMs(const RetryPolicy &policy,
                             std::uint64_t run_key, unsigned attempt);

/**
 * @return true when retrying @p s could plausibly succeed. Bad input
 * (InvalidArgument, NotFound) is deterministic and never retried;
 * everything else (IoError, Corruption, Stalled, audit trips) is.
 */
bool statusRetryable(const Status &s);

/** Durability knobs for SweepRunner; the default is the historical
 * behaviour (no journal, no reuse, no retry, no timeout). */
struct SweepOptions
{
    /** Build one warm checkpoint per warm fingerprint and fork the
     * measurement of every matching single-core run from it. */
    bool warmReuse = false;

    /** What a corrupt/skewed warm checkpoint does to the run. */
    ckpt::CkptPolicy ckptPolicy = ckpt::CkptPolicy::Rebuild;

    RetryPolicy retry;

    /** Per-run wall-clock budget in seconds; 0 disables. Trips the
     * watchdog path, so the run fails Stalled with a diagnostic. */
    double runTimeoutSeconds = 0.0;

    /** JSON-lines journal path; empty disables. With a journal, runs
     * already recorded are replayed instead of re-executed. */
    std::string journalPath;

    /** JSON-lines telemetry stream path; empty disables. See
     * harness/telemetry.hh for the record contract (deterministic
     * submission-order records plus live progress records). */
    std::string telemetryPath;

    /** Prometheus text-exposition snapshot path; empty disables. The
     * file is atomically rewritten on each heartbeat and once more,
     * with ebcp_sweep_done=1, at completion. */
    std::string metricsPath;

    /** Heartbeat cadence in seconds for live telemetry records and
     * metrics snapshots; <= 0 disables the heartbeat thread. */
    double heartbeatSeconds = 1.0;
};

/**
 * Identity hash of everything that shapes @p d's results: workload,
 * seed, core count, both window sizes, the full SimConfig and the
 * full prefetcher parameter set. The journal key. The display label
 * is deliberately excluded.
 */
std::uint64_t descFingerprint(const RunDesc &d);

/** As descFingerprint() but without the measurement window: two runs
 * sharing it reach the identical warm state, so one checkpoint
 * serves both. */
std::uint64_t warmFingerprint(const RunDesc &d);

/** Aggregate accounting of one sweep execution. */
struct SweepStats
{
    std::size_t launched = 0;  //!< descriptors submitted
    std::size_t completed = 0; //!< runs that returned OK
    std::size_t failed = 0;    //!< runs that returned a non-OK Status
    unsigned jobs = 1;         //!< worker threads used
    double wallSeconds = 0.0;

    /** Instructions measured across successful runs (warm excluded). */
    std::uint64_t measuredInsts = 0;

    std::size_t resumed = 0;       //!< runs replayed from the journal
    std::size_t retries = 0;       //!< extra attempts performed
    std::size_t warmBuilds = 0;    //!< warm checkpoints built
    std::size_t warmForks = 0;     //!< runs forked from a warm ckpt
    std::size_t coldFallbacks = 0; //!< warm restores degraded to cold
    std::uint64_t backoffMsTotal = 0; //!< backoff accounted (all runs)
    std::size_t journalSkipped = 0;   //!< damaged journal lines

    /** Aggregate simulation throughput over the sweep's wall clock. */
    double instsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(measuredInsts) / wallSeconds
                   : 0.0;
    }
};

/**
 * Execute one descriptor in isolation. Bad workload / prefetcher
 * names, watchdog stalls and uncaught exceptions come back as the
 * Status; the simulation itself runs exactly as the serial
 * runOnce()/runCmp() paths would.
 */
RunResult executeRun(const RunDesc &d);

/** The default worker count: hardware concurrency, at least 1. */
unsigned defaultJobs();

/** Fixed-size thread-pool executor for run descriptors. */
class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 selects defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0, SweepOptions opts = {});

    /**
     * Execute every descriptor and return results in submission
     * order. Never throws and never aborts on a failed run; inspect
     * each RunResult::status. Also refreshes stats().
     */
    std::vector<RunResult> run(const std::vector<RunDesc> &descs);

    /** Accounting for the most recent run(). */
    const SweepStats &stats() const { return stats_; }

    unsigned jobs() const { return jobs_; }
    const SweepOptions &options() const { return opts_; }

    /**
     * Test hook: damage every warm checkpoint right after it is
     * built, so forked runs exercise the CkptPolicy degradation path
     * (Strict => coded per-run failure, Rebuild => cold fallback).
     */
    void
    corruptWarmCacheForTest(CkptFaultKind kind, std::uint64_t seed)
    {
        corruptWarm_ = true;
        corruptKind_ = kind;
        corruptSeed_ = seed;
    }

  private:
    unsigned jobs_;
    SweepOptions opts_;
    SweepStats stats_;

    bool corruptWarm_ = false;
    CkptFaultKind corruptKind_ = CkptFaultKind::CrcFlip;
    std::uint64_t corruptSeed_ = 1;
};

} // namespace ebcp::harness

#endif // EBCP_HARNESS_SWEEP_HH
