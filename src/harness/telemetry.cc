#include "harness/telemetry.hh"

#include <sstream>

#include "ckpt/checkpoint.hh"
#include "util/crc32.hh"
#include "util/logging.hh"

namespace ebcp::harness
{

TelemetryStream::TelemetryStream(const std::string &path)
{
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_)
        openStatus_ = ioError("cannot open telemetry stream '", path,
                              "' for writing");
}

std::string
TelemetryStream::formatLine(std::uint64_t seq, const std::string &type,
                            bool live, const std::string &data_raw)
{
    std::ostringstream os;
    // Hand-rolled envelope so the `data` splice point (and therefore
    // the CRC-covered byte range) is exact: `data` is always the last
    // member and the line ends with its closing brace plus one '}'.
    os << "{\"v\":1,\"seq\":" << seq << ",\"type\":\""
       << jsonEscape(type) << "\",\"live\":" << (live ? "true" : "false")
       << ",\"crc\":" << crc32(data_raw.data(), data_raw.size())
       << ",\"data\":" << data_raw << "}";
    return os.str();
}

bool
TelemetryStream::parseLine(const std::string &line, TelemetryRecord &out)
{
    // Recover the CRC-covered bytes positionally: `data` is the last
    // member, so its rendering spans from after `"data":` to the
    // line's final '}'.
    static const std::string kDataKey = "\"data\":";
    const std::size_t pos = line.find(kDataKey);
    if (pos == std::string::npos || line.empty() || line.back() != '}')
        return false;
    const std::size_t start = pos + kDataKey.size();
    if (start >= line.size() - 1)
        return false;
    const std::string data_raw =
        line.substr(start, line.size() - 1 - start);

    StatusOr<JsonValue> doc = parseJson(line);
    if (!doc.ok() || !doc.value().isObject())
        return false;
    const JsonValue &root = doc.value();
    if (!root.hasNumber("v") || root.find("v")->number != 1.0)
        return false;
    if (!root.hasNumber("seq") || !root.hasNumber("crc"))
        return false;
    const JsonValue *type = root.find("type");
    const JsonValue *live = root.find("live");
    const JsonValue *data = root.find("data");
    if (!type || !type->isString() || !live || !live->isBool() ||
        !data || !data->isObject())
        return false;
    const std::uint32_t want =
        static_cast<std::uint32_t>(root.find("crc")->number);
    if (crc32(data_raw.data(), data_raw.size()) != want)
        return false;

    out.seq = static_cast<std::uint64_t>(root.find("seq")->number);
    out.type = type->string;
    out.live = live->boolean;
    out.data = *data;
    out.dataRaw = data_raw;
    return true;
}

void
TelemetryStream::emit(const std::string &type, bool live,
                      const std::string &data_raw)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!out_)
        return;
    const std::uint64_t seq = live ? liveSeq_++ : detSeq_++;
    out_ << formatLine(seq, type, live, data_raw) << "\n";
    // Flushed line-at-a-time, so a killed sweep tears at most the
    // final line -- which parseLine() then skips.
    out_.flush();
    ++lines_;
}

void
TelemetryStream::emitDeterministic(const std::string &type,
                                   const std::string &data_raw)
{
    emit(type, false, data_raw);
}

void
TelemetryStream::emitLive(const std::string &type,
                          const std::string &data_raw)
{
    emit(type, true, data_raw);
}

std::uint64_t
TelemetryStream::linesWritten() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
}

StatusOr<TelemetryFile>
readTelemetryFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return ioError("cannot open telemetry stream '", path, "'");
    TelemetryFile out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        TelemetryRecord rec;
        if (TelemetryStream::parseLine(line, rec))
            out.records.push_back(std::move(rec));
        else
            ++out.skipped;
    }
    return out;
}

std::string
formatPrometheus(const MetricsSnapshot &m)
{
    std::ostringstream os;
    auto gauge = [&](const char *name, const char *help, double v) {
        os << "# HELP " << name << " " << help << "\n"
           << "# TYPE " << name << " gauge\n"
           << name << " " << v << "\n";
    };
    gauge("ebcp_sweep_runs_total", "descriptors submitted to the sweep",
          static_cast<double>(m.runsTotal));
    gauge("ebcp_sweep_runs_completed", "runs finished OK",
          static_cast<double>(m.completed));
    gauge("ebcp_sweep_runs_failed", "runs finished with a non-OK status",
          static_cast<double>(m.failed));
    gauge("ebcp_sweep_measured_insts",
          "instructions measured across completed runs",
          static_cast<double>(m.measuredInsts));
    gauge("ebcp_sweep_insts_per_sec",
          "aggregate simulated instructions per wall second",
          m.instsPerSec);
    gauge("ebcp_sweep_retries", "extra execution attempts performed",
          static_cast<double>(m.retries));
    gauge("ebcp_sweep_warm_builds", "warm checkpoints built",
          static_cast<double>(m.warmBuilds));
    gauge("ebcp_sweep_warm_forks", "runs forked from a warm checkpoint",
          static_cast<double>(m.warmForks));
    gauge("ebcp_sweep_cold_fallbacks",
          "warm restores that degraded to cold runs",
          static_cast<double>(m.coldFallbacks));
    gauge("ebcp_sweep_resumed", "runs replayed from the journal",
          static_cast<double>(m.resumed));
    gauge("ebcp_sweep_jobs", "worker threads in use",
          static_cast<double>(m.jobs));
    gauge("ebcp_sweep_elapsed_seconds", "wall seconds since sweep start",
          m.elapsedSeconds);
    gauge("ebcp_sweep_done", "1 once the sweep has finished",
          m.done ? 1.0 : 0.0);
    return os.str();
}

Status
writeMetricsSnapshot(const std::string &path, const MetricsSnapshot &m)
{
    return ckpt::atomicWriteFile(path, formatPrometheus(m));
}

} // namespace ebcp::harness
