#include "harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "harness/journal.hh"
#include "harness/telemetry.hh"
#include "sim/api.hh"
#include "trace/workloads.hh"
#include "util/random.hh"

namespace ebcp::harness
{

std::uint64_t
runSeed(const RunDesc &d)
{
    if (d.seed)
        return d.seed;
    // The workload table owns the calibrated default seeds; reuse it
    // so runSeed() and execution can never disagree.
    StatusOr<WorkloadConfig> cfg = tryWorkloadByName(d.workload, 0);
    return cfg.ok() ? cfg.value().seed : 0;
}

std::string
runLabel(const RunDesc &d)
{
    if (!d.label.empty())
        return d.label;
    return d.workload + "/" + d.pf.name;
}

unsigned
defaultJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

namespace
{

/** Everything result-shaping in @p d, in canonical archiver bytes. */
void
serializeDescIdentity(ckpt::Archiver &ar, const RunDesc &d,
                      bool include_measure)
{
    std::string workload = d.workload;
    std::uint64_t seed = d.seed;
    unsigned cores = d.cores;
    std::uint64_t warm = d.scale.warm;
    ar.str(workload);
    ar.u64(seed);
    ar.uns(cores);
    ar.u64(warm);
    serializeConfigIdentity(ar, d.cfg);
    serializePrefetcherIdentity(ar, d.pf);
    if (include_measure) {
        std::uint64_t measure = d.scale.measure;
        ar.u64(measure);
    }
}

std::uint64_t
descHash(const RunDesc &d, bool include_measure)
{
    std::string bytes;
    ckpt::Archiver ar = ckpt::Archiver::saver(bytes);
    serializeDescIdentity(ar, d, include_measure);
    return ckpt::fnv1a64(bytes.data(), bytes.size());
}

} // namespace

std::uint64_t
descFingerprint(const RunDesc &d)
{
    return descHash(d, true);
}

std::uint64_t
warmFingerprint(const RunDesc &d)
{
    return descHash(d, false);
}

std::uint64_t
retryBackoffMs(const RetryPolicy &policy, std::uint64_t run_key,
               unsigned attempt)
{
    if (policy.baseDelayMs == 0 || policy.maxDelayMs == 0)
        return 0;
    const unsigned exponent =
        std::min(attempt > 0 ? attempt - 1 : 0u, 20u);
    const std::uint64_t raw = std::min(policy.baseDelayMs << exponent,
                                       policy.maxDelayMs);
    // Deterministic per-(run, attempt) jitter in [raw/2, raw]: a
    // fixed policy seed fixes the whole schedule, and distinct runs
    // retrying the same attempt never thundering-herd in lockstep.
    Pcg32 rng(policy.seed ^ run_key, 0x5eedba11ULL + attempt);
    const std::uint64_t half = raw / 2;
    const std::uint64_t span = raw - half + 1;
    return half + rng.below(static_cast<std::uint32_t>(
                      std::min<std::uint64_t>(span, 0xffffffffULL)));
}

bool
statusRetryable(const Status &s)
{
    switch (s.code()) {
      case StatusCode::InvalidArgument:
      case StatusCode::NotFound:
        return false; // deterministic bad input; retrying cannot help
      default:
        return !s.ok();
    }
}

namespace
{

/** One warm checkpoint, built exactly once per fingerprint. */
struct WarmEntry
{
    std::once_flag once;
    std::string blob;
    Status status;
};

class WarmCache
{
  public:
    WarmEntry &
    entry(std::uint64_t key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::unique_ptr<WarmEntry> &slot = map_[key];
        if (!slot)
            slot = std::make_unique<WarmEntry>();
        return *slot;
    }

  private:
    std::mutex mu_;
    std::map<std::uint64_t, std::unique_ptr<WarmEntry>> map_;
};

/** Per-sweep execution context threaded into every run. */
struct ExecContext
{
    SweepOptions opts;
    WarmCache *warm = nullptr; //!< null = no warm reuse
    std::atomic<std::uint64_t> *warmBuilds = nullptr;
    std::atomic<std::uint64_t> *warmForks = nullptr;
    std::atomic<std::uint64_t> *coldFallbacks = nullptr;
    TelemetryStream *telemetry = nullptr; //!< null = no streaming
    bool corruptWarm = false;
    CkptFaultKind corruptKind = CkptFaultKind::CrcFlip;
    std::uint64_t corruptSeed = 1;
};

/** Rendered `data` object of a live run_state record. */
std::string
liveRunStateJson(const RunDesc &d, const char *state)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("label", runLabel(d));
    w.kv("state", state);
    w.endObject();
    return os.str();
}

void
armDeadline(CoreModel &core, double seconds)
{
    if (seconds <= 0.0)
        return;
    core.setWallDeadline(
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds)));
}

/** Name the failure when the wall budget, not a retire gap, tripped. */
Status
timeoutContext(Status s, const CoreModel &core, double seconds)
{
    if (!s.ok() && core.wallDeadlineTripped())
        return s.withContext(logFormat("run exceeded the ", seconds,
                                       "s wall-clock budget"));
    return s;
}

/** The trace-source stack + effective prefetcher params of one
 * single-core run; mirrors examples/ebcp_cli's wiring, including the
 * fault-injection wrapper and the EBCP-side fault plan. */
struct SingleSource
{
    std::unique_ptr<SyntheticWorkload> owned;
    std::unique_ptr<FaultInjectingTraceSource> injector;
    TraceSource *source = nullptr;
    PrefetcherParams pf;
    Status status;
};

SingleSource
buildSingleSource(const RunDesc &d)
{
    SingleSource out;
    StatusOr<std::unique_ptr<SyntheticWorkload>> src =
        tryMakeWorkload(d.workload, d.seed);
    if (!src.ok()) {
        out.status = src.status().withContext(runLabel(d));
        return out;
    }
    out.owned = src.take();
    out.source = out.owned.get();

    const FaultPlan &faults = d.cfg.faults;
    if (faults.traceBitflip || faults.traceTruncate ||
        faults.traceShortRead) {
        out.injector = std::make_unique<FaultInjectingTraceSource>(
            *out.source, faults);
        out.source = out.injector.get();
    }

    out.pf = d.pf;
    if (faults.any())
        out.pf.ebcp.faults = faults;

    // Validate the prefetcher name up front: the Simulator
    // constructor treats an unknown name as fatal, but a sweep
    // must degrade to a per-run error instead.
    StatusOr<std::unique_ptr<Prefetcher>> probe =
        tryCreatePrefetcher(out.pf);
    if (!probe.ok())
        out.status = probe.status().withContext(runLabel(d));
    return out;
}

/** Single-core run with a full (cold) warm-up window. */
RunResult
executeColdSingle(const RunDesc &d, const ExecContext &ctx)
{
    RunResult out;
    SingleSource ss = buildSingleSource(d);
    if (!ss.status.ok()) {
        out.status = ss.status;
        return out;
    }
    Simulator sim(d.cfg, ss.pf);
    armDeadline(sim.core(), ctx.opts.runTimeoutSeconds);
    StatusOr<SimResults> r =
        sim.tryRun(*ss.source, d.scale.warm, d.scale.measure);
    if (!r.ok()) {
        out.status = timeoutContext(r.status(), sim.core(),
                                    ctx.opts.runTimeoutSeconds)
                         .withContext(runLabel(d));
        return out;
    }
    out.results = r.take();
    return out;
}

/** Single-core run forking its measurement from the shared warm
 * checkpoint; degrades per CkptPolicy when the checkpoint is bad. */
RunResult
executeWarmSingle(const RunDesc &d, const ExecContext &ctx)
{
    WarmEntry &entry = ctx.warm->entry(warmFingerprint(d));
    std::call_once(entry.once, [&] {
        if (ctx.telemetry)
            ctx.telemetry->emitLive(
                "run_state", liveRunStateJson(d, "warm-building"));
        SingleSource ws = buildSingleSource(d);
        if (!ws.status.ok()) {
            entry.status = ws.status;
            return;
        }
        Simulator wsim(d.cfg, ws.pf);
        armDeadline(wsim.core(), ctx.opts.runTimeoutSeconds);
        Status s = wsim.runWarm(*ws.source, d.scale.warm);
        if (!s.ok()) {
            entry.status = timeoutContext(std::move(s), wsim.core(),
                                          ctx.opts.runTimeoutSeconds);
            return;
        }
        StatusOr<std::string> blob = wsim.serializeCheckpoint(*ws.source);
        if (!blob.ok()) {
            entry.status = blob.status();
            return;
        }
        entry.blob = blob.take();
        if (ctx.corruptWarm)
            injectCkptFault(entry.blob, ctx.corruptKind, ctx.corruptSeed);
        if (ctx.warmBuilds)
            ctx.warmBuilds->fetch_add(1, std::memory_order_relaxed);
    });

    auto coldFallback = [&](const char *why,
                            const Status &cause) -> RunResult {
        warn("sweep run ", runLabel(d), ": ", why, " (",
             cause.toString(),
             "); falling back to a cold warm-up (ckpt_policy=rebuild)");
        RunResult r = executeColdSingle(d, ctx);
        r.coldFallback = true;
        if (ctx.coldFallbacks)
            ctx.coldFallbacks->fetch_add(1, std::memory_order_relaxed);
        return r;
    };

    RunResult out;
    if (!entry.status.ok()) {
        if (ctx.opts.ckptPolicy == ckpt::CkptPolicy::Strict) {
            out.status = entry.status.withContext(runLabel(d));
            return out;
        }
        return coldFallback("warm checkpoint unavailable", entry.status);
    }

    SingleSource ss = buildSingleSource(d);
    if (!ss.status.ok()) {
        out.status = ss.status;
        return out;
    }
    Simulator sim(d.cfg, ss.pf);
    armDeadline(sim.core(), ctx.opts.runTimeoutSeconds);
    Status rs = sim.restoreCheckpoint(entry.blob, *ss.source);
    if (!rs.ok()) {
        // The failed restore half-wrote the simulator and the source;
        // both are abandoned here, never run.
        if (ctx.opts.ckptPolicy == ckpt::CkptPolicy::Strict) {
            out.status = rs.withContext(
                logFormat(runLabel(d), ": warm checkpoint restore"));
            return out;
        }
        return coldFallback("warm checkpoint restore failed", rs);
    }
    out.warmForked = true;
    if (ctx.warmForks)
        ctx.warmForks->fetch_add(1, std::memory_order_relaxed);
    if (ctx.telemetry)
        ctx.telemetry->emitLive("run_state",
                                liveRunStateJson(d, "warm-forked"));
    StatusOr<SimResults> r = sim.runMeasure(*ss.source, d.scale.measure);
    if (!r.ok()) {
        out.status = timeoutContext(r.status(), sim.core(),
                                    ctx.opts.runTimeoutSeconds)
                         .withContext(runLabel(d));
        return out;
    }
    out.results = r.take();
    return out;
}

RunResult
executeSingle(const RunDesc &d, const ExecContext &ctx)
{
    if (ctx.warm)
        return executeWarmSingle(d, ctx);
    return executeColdSingle(d, ctx);
}

/** CMP path: per-core workload instances with seeds derived from the
 * descriptor seed, as runCmp() does serially. Warm reuse is a
 * single-core feature; CMP descriptors always run cold. */
RunResult
executeCmp(const RunDesc &d, const ExecContext &ctx)
{
    RunResult out;
    std::vector<std::unique_ptr<SyntheticWorkload>> owned;
    std::vector<TraceSource *> sources;
    for (unsigned i = 0; i < d.cores; ++i) {
        const std::uint64_t seed = d.seed ? d.seed + i : 1000 + i;
        StatusOr<std::unique_ptr<SyntheticWorkload>> src =
            tryMakeWorkload(d.workload, seed);
        if (!src.ok()) {
            out.status = src.status().withContext(runLabel(d));
            return out;
        }
        owned.push_back(src.take());
        sources.push_back(owned.back().get());
    }

    {
        StatusOr<std::unique_ptr<Prefetcher>> probe =
            tryCreatePrefetcher(d.pf);
        if (!probe.ok()) {
            out.status = probe.status().withContext(runLabel(d));
            return out;
        }
    }

    CmpSystem sys(d.cfg, d.pf, d.cores);
    for (unsigned i = 0; i < d.cores; ++i)
        armDeadline(sys.core(i), ctx.opts.runTimeoutSeconds);
    StatusOr<CmpResults> r =
        sys.tryRun(sources, d.scale.warm, d.scale.measure);
    if (!r.ok()) {
        Status s = r.status();
        for (unsigned i = 0; i < d.cores; ++i)
            s = timeoutContext(std::move(s), sys.core(i),
                               ctx.opts.runTimeoutSeconds);
        out.status = s.withContext(runLabel(d));
        return out;
    }

    out.results = foldCmpResults(r.take());
    return out;
}

RunResult
executeRunCtx(const RunDesc &d, const ExecContext &ctx)
{
    try {
        return d.cores > 1 ? executeCmp(d, ctx) : executeSingle(d, ctx);
    } catch (const std::exception &e) {
        RunResult out;
        out.status = Status(StatusCode::Corruption,
                            logFormat(runLabel(d),
                                      ": uncaught exception: ", e.what()));
        return out;
    }
}

} // namespace

RunResult
executeRun(const RunDesc &d)
{
    ExecContext ctx;
    return executeRunCtx(d, ctx);
}

SweepRunner::SweepRunner(unsigned jobs, SweepOptions opts)
    : jobs_(jobs ? jobs : defaultJobs()), opts_(std::move(opts))
{}

std::vector<RunResult>
SweepRunner::run(const std::vector<RunDesc> &descs)
{
    const auto start = std::chrono::steady_clock::now();

    std::vector<RunResult> results(descs.size());
    std::vector<std::uint64_t> keys(descs.size());
    std::vector<char> todo(descs.size(), 1);

    std::unique_ptr<SweepJournal> journal;
    if (!opts_.journalPath.empty()) {
        journal = std::make_unique<SweepJournal>(opts_.journalPath);
        Status js = journal->load();
        if (!js.ok()) {
            // A journal that cannot even be read disables durability
            // for this invocation; it must never fail the sweep.
            warn("sweep journal disabled: ", js.toString());
            journal.reset();
        }
    }

    std::size_t resumed = 0;
    for (std::size_t i = 0; i < descs.size(); ++i) {
        keys[i] = descFingerprint(descs[i]);
        if (!journal)
            continue;
        JournalRecord rec;
        if (journal->lookup(keys[i], rec)) {
            results[i].status = rec.status();
            results[i].results = rec.results;
            results[i].attempts = rec.attempts;
            results[i].warmForked = rec.warmForked;
            results[i].coldFallback = rec.coldFallback;
            results[i].fromJournal = true;
            todo[i] = 0;
            ++resumed;
        }
    }

    std::unique_ptr<TelemetryStream> telemetry;
    if (!opts_.telemetryPath.empty()) {
        telemetry =
            std::make_unique<TelemetryStream>(opts_.telemetryPath);
        if (!telemetry->openStatus().ok()) {
            // Telemetry must never fail the sweep: an unopenable
            // stream degrades to none, with one structured warning.
            warn("sweep telemetry disabled: ",
                 telemetry->openStatus().toString());
            telemetry.reset();
        }
    }

    // Live progress counters, shared with the heartbeat thread and
    // seeded with the journal-replayed results.
    std::atomic<std::uint64_t> liveCompleted{0}, liveFailed{0},
        liveInsts{0};
    for (std::size_t i = 0; i < descs.size(); ++i) {
        if (todo[i])
            continue;
        if (results[i].ok()) {
            liveCompleted.fetch_add(1, std::memory_order_relaxed);
            liveInsts.fetch_add(results[i].results.insts,
                                std::memory_order_relaxed);
        } else {
            liveFailed.fetch_add(1, std::memory_order_relaxed);
        }
    }

    // Deterministic records: sweep_begin, then one terminal run_state
    // per descriptor in submission order. Finished runs park in a
    // reorder buffer until every earlier descriptor has reported, so
    // the deterministic subsequence is byte-identical at any jobs=N
    // (pinned by tests/test_telemetry.cc).
    std::mutex detMu;
    std::vector<std::string> detSlot(descs.size());
    std::vector<char> detReady(descs.size(), 0);
    std::size_t detNext = 0;
    auto terminalRunStateJson = [&](std::size_t i, const RunResult &r) {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.kv("index", static_cast<std::uint64_t>(i));
        w.kv("label", runLabel(descs[i]));
        w.kv("state", r.ok() ? "done" : "failed");
        w.kv("ok", r.ok());
        w.kv("code", statusCodeName(r.status.code()));
        w.kv("attempts", r.attempts);
        w.kv("from_journal", r.fromJournal);
        w.kv("warm_forked", r.warmForked);
        w.kv("cold_fallback", r.coldFallback);
        w.kv("insts", r.ok() ? r.results.insts : std::uint64_t(0));
        w.endObject();
        return os.str();
    };
    auto emitTerminal = [&](std::size_t i, const RunResult &r) {
        if (!telemetry)
            return;
        std::lock_guard<std::mutex> lock(detMu);
        detSlot[i] = terminalRunStateJson(i, r);
        detReady[i] = 1;
        while (detNext < detReady.size() && detReady[detNext]) {
            telemetry->emitDeterministic("run_state", detSlot[detNext]);
            detSlot[detNext].clear();
            ++detNext;
        }
    };
    if (telemetry) {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.kv("runs", static_cast<std::uint64_t>(descs.size()));
        w.kv("resumed", static_cast<std::uint64_t>(resumed));
        w.endObject();
        telemetry->emitDeterministic("sweep_begin", os.str());
        for (std::size_t i = 0; i < descs.size(); ++i)
            if (todo[i])
                telemetry->emitLive(
                    "run_state", liveRunStateJson(descs[i], "queued"));
        for (std::size_t i = 0; i < descs.size(); ++i)
            if (!todo[i])
                emitTerminal(i, results[i]);
    }

    WarmCache warm;
    std::atomic<std::uint64_t> retries{0}, backoffMs{0}, warmBuilds{0},
        warmForks{0}, coldFallbacks{0};
    ExecContext ctx;
    ctx.opts = opts_;
    ctx.warm = opts_.warmReuse ? &warm : nullptr;
    ctx.warmBuilds = &warmBuilds;
    ctx.warmForks = &warmForks;
    ctx.coldFallbacks = &coldFallbacks;
    ctx.telemetry = telemetry.get();
    ctx.corruptWarm = corruptWarm_;
    ctx.corruptKind = corruptKind_;
    ctx.corruptSeed = corruptSeed_;

    const unsigned max_attempts = std::max(1u, opts_.retry.maxAttempts);
    auto runOne = [&](std::size_t i) {
        const RunDesc &d = descs[i];
        RunResult out;
        for (unsigned attempt = 1;; ++attempt) {
            if (ctx.telemetry)
                ctx.telemetry->emitLive(
                    "run_state",
                    liveRunStateJson(d, attempt > 1 ? "retrying"
                                                    : "running"));
            out = executeRunCtx(d, ctx);
            out.attempts = attempt;
            if (out.ok() || attempt >= max_attempts ||
                !statusRetryable(out.status))
                break;
            const std::uint64_t delay =
                retryBackoffMs(opts_.retry, keys[i], attempt);
            backoffMs.fetch_add(delay, std::memory_order_relaxed);
            retries.fetch_add(1, std::memory_order_relaxed);
            if (opts_.retry.sleep && delay)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
        }
        results[i] = out;
        if (out.ok()) {
            liveCompleted.fetch_add(1, std::memory_order_relaxed);
            liveInsts.fetch_add(out.results.insts,
                                std::memory_order_relaxed);
        } else {
            liveFailed.fetch_add(1, std::memory_order_relaxed);
        }
        emitTerminal(i, out);
        if (journal) {
            JournalRecord rec;
            rec.key = keys[i];
            rec.code = out.status.code();
            rec.message = out.status.message();
            rec.results = out.results;
            rec.attempts = out.attempts;
            rec.warmForked = out.warmForked;
            rec.coldFallback = out.coldFallback;
            Status as = journal->append(rec);
            if (!as.ok())
                warn("sweep journal append failed: ", as.toString());
        }
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, descs.size()));

    auto snapshotNow = [&](bool done) {
        MetricsSnapshot m;
        m.runsTotal = descs.size();
        m.completed = liveCompleted.load(std::memory_order_relaxed);
        m.failed = liveFailed.load(std::memory_order_relaxed);
        m.measuredInsts = liveInsts.load(std::memory_order_relaxed);
        m.retries = retries.load(std::memory_order_relaxed);
        m.warmBuilds = warmBuilds.load(std::memory_order_relaxed);
        m.warmForks = warmForks.load(std::memory_order_relaxed);
        m.coldFallbacks =
            coldFallbacks.load(std::memory_order_relaxed);
        m.resumed = resumed;
        m.jobs = workers ? workers : 1;
        m.elapsedSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        m.instsPerSec = m.elapsedSeconds > 0.0
                            ? static_cast<double>(m.measuredInsts) /
                                  m.elapsedSeconds
                            : 0.0;
        m.done = done;
        return m;
    };
    auto heartbeatJson = [&](const MetricsSnapshot &m) {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.kv("runs", m.runsTotal);
        w.kv("completed", m.completed);
        w.kv("failed", m.failed);
        w.kv("measured_insts", m.measuredInsts);
        w.kv("insts_per_sec", m.instsPerSec);
        w.kv("elapsed_seconds", m.elapsedSeconds);
        // Naive proportional ETA: wrong early, honest late -- and
        // never pretends precision it does not have.
        const std::uint64_t finished = m.completed + m.failed;
        const std::uint64_t remaining =
            m.runsTotal - std::min(m.runsTotal, finished);
        w.kv("eta_seconds",
             finished > 0 ? m.elapsedSeconds *
                                static_cast<double>(remaining) /
                                static_cast<double>(finished)
                          : 0.0);
        w.endObject();
        return os.str();
    };

    std::thread heartbeat;
    std::mutex hbMu;
    std::condition_variable hbCv;
    bool hbStop = false;
    if (opts_.heartbeatSeconds > 0.0 &&
        (telemetry || !opts_.metricsPath.empty())) {
        heartbeat = std::thread([&] {
            std::unique_lock<std::mutex> lock(hbMu);
            while (!hbCv.wait_for(
                lock,
                std::chrono::duration<double>(opts_.heartbeatSeconds),
                [&] { return hbStop; })) {
                const MetricsSnapshot m = snapshotNow(false);
                if (telemetry)
                    telemetry->emitLive("heartbeat", heartbeatJson(m));
                if (!opts_.metricsPath.empty()) {
                    Status ms =
                        writeMetricsSnapshot(opts_.metricsPath, m);
                    if (!ms.ok())
                        warn("sweep metrics snapshot failed: ",
                             ms.toString());
                }
            }
        });
    }

    if (workers <= 1) {
        for (std::size_t i = 0; i < descs.size(); ++i)
            if (todo[i])
                runOne(i);
    } else {
        // Work stealing off a shared index: workers claim the next
        // unstarted descriptor and write results[i] in place, so the
        // output order is the submission order no matter who runs
        // what.
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= descs.size())
                    return;
                if (todo[i])
                    runOne(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    if (heartbeat.joinable()) {
        {
            std::lock_guard<std::mutex> lock(hbMu);
            hbStop = true;
        }
        hbCv.notify_all();
        heartbeat.join();
    }

    stats_ = SweepStats{};
    stats_.launched = descs.size();
    stats_.jobs = workers ? workers : 1;
    for (const RunResult &r : results) {
        if (r.ok()) {
            ++stats_.completed;
            stats_.measuredInsts += r.results.insts;
        } else {
            ++stats_.failed;
        }
    }
    stats_.resumed = resumed;
    stats_.retries =
        static_cast<std::size_t>(retries.load(std::memory_order_relaxed));
    stats_.warmBuilds = static_cast<std::size_t>(
        warmBuilds.load(std::memory_order_relaxed));
    stats_.warmForks = static_cast<std::size_t>(
        warmForks.load(std::memory_order_relaxed));
    stats_.coldFallbacks = static_cast<std::size_t>(
        coldFallbacks.load(std::memory_order_relaxed));
    stats_.backoffMsTotal = backoffMs.load(std::memory_order_relaxed);
    stats_.journalSkipped = journal ? journal->skippedLines() : 0;
    stats_.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    if (telemetry) {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.kv("runs", static_cast<std::uint64_t>(stats_.launched));
        w.kv("completed", static_cast<std::uint64_t>(stats_.completed));
        w.kv("failed", static_cast<std::uint64_t>(stats_.failed));
        w.kv("measured_insts", stats_.measuredInsts);
        w.kv("resumed", static_cast<std::uint64_t>(stats_.resumed));
        w.kv("retries", static_cast<std::uint64_t>(stats_.retries));
        w.kv("warm_builds",
             static_cast<std::uint64_t>(stats_.warmBuilds));
        w.kv("warm_forks",
             static_cast<std::uint64_t>(stats_.warmForks));
        w.kv("cold_fallbacks",
             static_cast<std::uint64_t>(stats_.coldFallbacks));
        w.endObject();
        telemetry->emitDeterministic("sweep_end", os.str());
    }
    if (!opts_.metricsPath.empty()) {
        Status ms =
            writeMetricsSnapshot(opts_.metricsPath, snapshotNow(true));
        if (!ms.ok())
            warn("sweep metrics snapshot failed: ", ms.toString());
    }
    return results;
}

} // namespace ebcp::harness
