/**
 * @file
 * Durable sweep journal: one JSON line per finished run, so a killed
 * sweep resumes with only the unfinished descriptors.
 *
 * Line format (append-only, one record per line):
 *
 *   {"v":1,"key":"<16 hex>","crc":<u32>,"blob":"<hex>"}
 *
 * `key` is the descriptor fingerprint (descFingerprint()), `blob` is
 * the archiver-serialized JournalRecord and `crc` its CRC-32. A line
 * that is torn (the process died mid-append), fails its CRC, or does
 * not parse is skipped and counted -- a damaged journal degrades to
 * re-running some descriptors, never to wrong results and never to a
 * crash. Appends are flushed line-at-a-time so at most the final line
 * can be torn.
 */

#ifndef EBCP_HARNESS_JOURNAL_HH
#define EBCP_HARNESS_JOURNAL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "sim/api.hh"
#include "util/status.hh"

namespace ebcp::ckpt
{
class Archiver;
}

namespace ebcp::harness
{

/** One finished run, as persisted in the journal. */
struct JournalRecord
{
    std::uint64_t key = 0; //!< descFingerprint() of the descriptor
    StatusCode code = StatusCode::Ok;
    std::string message;          //!< status message when code != Ok
    SimResults results;           //!< valid only when code == Ok
    std::uint32_t attempts = 1;   //!< execution attempts consumed
    bool warmForked = false;      //!< measured from a warm checkpoint
    bool coldFallback = false;    //!< warm restore failed; ran cold

    Status
    status() const
    {
        return code == StatusCode::Ok ? Status() : Status(code, message);
    }
};

/** Serialize or restore one record (shared with tests). */
void ckptJournalRecord(ckpt::Archiver &ar, JournalRecord &rec);

/** Serialize or restore a SimResults block (shared with tests). */
void ckptSimResults(ckpt::Archiver &ar, SimResults &r);

/** Append-only journal of finished runs, keyed by fingerprint. */
class SweepJournal
{
  public:
    /** @param path journal file; created on first append. */
    explicit SweepJournal(std::string path);

    /**
     * Load every valid record from the file. A missing file is a
     * fresh journal (OK, zero records); damaged lines are skipped and
     * counted in skippedLines(). Only an OS-level read failure on an
     * existing file is an error.
     */
    Status load();

    /** @return true and fill @p out when @p key has a record. */
    bool lookup(std::uint64_t key, JournalRecord &out) const;

    /** Serialize @p rec, append its line, and flush. Thread-safe. */
    Status append(const JournalRecord &rec);

    /** Records currently held (loaded + appended). */
    std::size_t size() const { return records_.size(); }

    /** Damaged/torn lines skipped by load(). */
    std::size_t skippedLines() const { return skipped_; }

    const std::string &path() const { return path_; }

    /** Render @p rec as one journal line (no trailing newline);
     * exposed for corpus tests that build damaged journals. */
    static std::string formatLine(const JournalRecord &rec);

    /** Parse one line; false when torn/corrupt/unparseable. */
    static bool parseLine(const std::string &line, JournalRecord &out);

  private:
    std::string path_;
    std::map<std::uint64_t, JournalRecord> records_;
    std::size_t skipped_ = 0;
    mutable std::mutex mu_;
};

} // namespace ebcp::harness

#endif // EBCP_HARNESS_JOURNAL_HH
