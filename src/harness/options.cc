#include "harness/options.hh"

#include <cmath>
#include <cstdlib>

#include "harness/sweep.hh"

namespace ebcp::harness
{

namespace
{

/** Strictly parse @p text as a positive finite double. */
StatusOr<double>
parsePositiveDouble(const char *what, const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !std::isfinite(v))
        return invalidArgError(what, " must be a number, got '", text,
                               "'");
    if (v <= 0.0)
        return invalidArgError(what, " must be positive, got '", text,
                               "'");
    return v;
}

} // namespace

StatusOr<RunScale>
tryResolveScale(const ConfigStore &cs, const char *env_scale)
{
    RunScale s;
    if (env_scale) {
        StatusOr<double> scale =
            parsePositiveDouble("EBCP_BENCH_SCALE", env_scale);
        if (!scale.ok())
            return scale.status();
        s.warm = static_cast<std::uint64_t>(
            static_cast<double>(s.warm) * scale.value());
        s.measure = static_cast<std::uint64_t>(
            static_cast<double>(s.measure) * scale.value());
    }

    StatusOr<std::uint64_t> warm = cs.tryGetU64("warm", s.warm);
    if (!warm.ok())
        return warm.status();
    StatusOr<std::uint64_t> measure = cs.tryGetU64("measure", s.measure);
    if (!measure.ok())
        return measure.status();

    s.warm = warm.value();
    s.measure = measure.value();
    if (s.measure == 0)
        return invalidArgError(
            "measurement window must be positive; got measure=0 (check "
            "measure= and EBCP_BENCH_SCALE)");
    return s;
}

StatusOr<unsigned>
tryResolveJobs(const ConfigStore &cs, const char *env_jobs)
{
    std::uint64_t jobs = defaultJobs();
    if (env_jobs) {
        // Route the env text through the same strict integer parsing
        // as a CLI key.
        ConfigStore env;
        env.set("EBCP_BENCH_JOBS", env_jobs);
        StatusOr<std::uint64_t> v =
            env.tryGetU64("EBCP_BENCH_JOBS", jobs);
        if (!v.ok())
            return v.status();
        jobs = v.value();
        if (jobs == 0)
            return invalidArgError(
                "EBCP_BENCH_JOBS must be a positive integer, got '",
                env_jobs, "'");
    }
    StatusOr<std::uint64_t> cli = cs.tryGetU64("jobs", jobs);
    if (!cli.ok())
        return cli.status();
    jobs = cli.value();
    if (jobs == 0)
        return invalidArgError("jobs must be a positive integer");
    if (jobs > 1024)
        return invalidArgError("jobs=", jobs,
                               " is not a sane worker count (max 1024)");
    return static_cast<unsigned>(jobs);
}

StatusOr<RunScale>
tryResolveScaleFromEnv(const ConfigStore &cs)
{
    return tryResolveScale(cs, std::getenv("EBCP_BENCH_SCALE"));
}

StatusOr<unsigned>
tryResolveJobsFromEnv(const ConfigStore &cs)
{
    return tryResolveJobs(cs, std::getenv("EBCP_BENCH_JOBS"));
}

} // namespace ebcp::harness
