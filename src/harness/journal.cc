#include "harness/journal.hh"

#include <cerrno>
#include <cstdio>

#include "ckpt/archiver.hh"
#include "util/crc32.hh"

namespace ebcp::harness
{

namespace
{

constexpr char kHexDigits[] = "0123456789abcdef";

std::string
hexEncode(const std::string &bytes)
{
    std::string out;
    out.reserve(bytes.size() * 2);
    for (unsigned char c : bytes) {
        out.push_back(kHexDigits[c >> 4]);
        out.push_back(kHexDigits[c & 0xf]);
    }
    return out;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

bool
hexDecode(const std::string &hex, std::string &out)
{
    if (hex.size() % 2)
        return false;
    out.clear();
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hexNibble(hex[i]);
        const int lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    return true;
}

std::string
hexU64(std::uint64_t v)
{
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i, v >>= 4)
        out[static_cast<std::size_t>(i)] = kHexDigits[v & 0xf];
    return out;
}

/** Consume the literal @p want at @p pos; false on mismatch. */
bool
expect(const std::string &s, std::size_t &pos, const char *want)
{
    const std::size_t n = std::char_traits<char>::length(want);
    if (s.compare(pos, n, want) != 0)
        return false;
    pos += n;
    return true;
}

} // namespace

void
ckptSimResults(ckpt::Archiver &ar, SimResults &r)
{
    ar.u64(r.insts);
    ar.u64(r.cycles);
    ar.u64(r.epochs);
    ar.f64(r.cpi);
    ar.f64(r.epochsPer1k);
    ar.f64(r.l2InstMissPer1k);
    ar.f64(r.l2LoadMissPer1k);
    ar.u64(r.usefulPrefetches);
    ar.u64(r.issuedPrefetches);
    ar.u64(r.droppedPrefetches);
    ar.u64(r.timelyPrefetches);
    ar.u64(r.latePrefetches);
    ar.u64(r.earlyEvictedPrefetches);
    ar.f64(r.coverage);
    ar.f64(r.accuracy);
    ar.f64(r.timeliness);
    ar.f64(r.readBusUtil);
    ar.f64(r.writeBusUtil);
}

void
ckptJournalRecord(ckpt::Archiver &ar, JournalRecord &rec)
{
    ar.u64(rec.key);
    ar.enum32(rec.code);
    ar.str(rec.message);
    ar.u32(rec.attempts);
    ar.boolean(rec.warmForked);
    ar.boolean(rec.coldFallback);
    ckptSimResults(ar, rec.results);
}

std::string
SweepJournal::formatLine(const JournalRecord &rec)
{
    std::string blob;
    ckpt::Archiver ar = ckpt::Archiver::saver(blob);
    ckptJournalRecord(ar, const_cast<JournalRecord &>(rec));
    std::string line = "{\"v\":1,\"key\":\"";
    line += hexU64(rec.key);
    line += "\",\"crc\":";
    line += std::to_string(crc32(blob.data(), blob.size()));
    line += ",\"blob\":\"";
    line += hexEncode(blob);
    line += "\"}";
    return line;
}

bool
SweepJournal::parseLine(const std::string &line, JournalRecord &out)
{
    std::size_t pos = 0;
    if (!expect(line, pos, "{\"v\":1,\"key\":\""))
        return false;
    if (line.size() < pos + 16)
        return false;
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < 16; ++i) {
        const int nib = hexNibble(line[pos + i]);
        if (nib < 0)
            return false;
        key = (key << 4) | static_cast<unsigned>(nib);
    }
    pos += 16;
    if (!expect(line, pos, "\",\"crc\":"))
        return false;
    std::uint64_t crc = 0;
    std::size_t digits = 0;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
        crc = crc * 10 + static_cast<unsigned>(line[pos] - '0');
        if (crc > 0xffffffffULL)
            return false;
        ++pos;
        ++digits;
    }
    if (!digits || !expect(line, pos, ",\"blob\":\""))
        return false;
    const std::size_t end = line.find('"', pos);
    if (end == std::string::npos)
        return false;
    std::string blob;
    if (!hexDecode(line.substr(pos, end - pos), blob))
        return false;
    pos = end;
    if (!expect(line, pos, "\"}") || pos != line.size())
        return false;
    if (crc32(blob.data(), blob.size()) != static_cast<std::uint32_t>(crc))
        return false;

    JournalRecord rec;
    ckpt::Archiver ar = ckpt::Archiver::loader(blob.data(), blob.size());
    ckptJournalRecord(ar, rec);
    if (!ar.ok() || ar.remaining() != 0)
        return false;
    // The key field exists twice (line header and blob) so a record
    // pasted under the wrong key is rejected, not silently reused.
    if (rec.key != key)
        return false;
    out = rec;
    return true;
}

SweepJournal::SweepJournal(std::string path) : path_(std::move(path)) {}

Status
SweepJournal::load()
{
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
    skipped_ = 0;

    std::FILE *f = std::fopen(path_.c_str(), "rb");
    if (!f) {
        if (errno == ENOENT)
            return Status(); // fresh journal
        return ioError("cannot open sweep journal ", path_, ": ",
                       errnoString());
    }
    std::string data;
    char buf[64 * 1024];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        data.append(buf, got);
    const bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err)
        return ioError("cannot read sweep journal ", path_);

    std::size_t start = 0;
    while (start < data.size()) {
        std::size_t nl = data.find('\n', start);
        if (nl == std::string::npos)
            nl = data.size(); // final line, possibly torn
        const std::string line = data.substr(start, nl - start);
        start = nl + 1;
        if (line.empty())
            continue;
        JournalRecord rec;
        if (parseLine(line, rec))
            records_[rec.key] = rec; // later lines win
        else
            ++skipped_;
    }
    return Status();
}

bool
SweepJournal::lookup(std::uint64_t key, JournalRecord &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find(key);
    if (it == records_.end())
        return false;
    out = it->second;
    return true;
}

Status
SweepJournal::append(const JournalRecord &rec)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::string line = formatLine(rec) + "\n";
    std::FILE *f = std::fopen(path_.c_str(), "ab");
    if (!f)
        return ioError("cannot append to sweep journal ", path_, ": ",
                       errnoString());
    const bool wrote =
        std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
        std::fflush(f) == 0;
    std::fclose(f);
    if (!wrote)
        return ioError("short write to sweep journal ", path_);
    records_[rec.key] = rec;
    return Status();
}

} // namespace ebcp::harness
