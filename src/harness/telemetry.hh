/**
 * @file
 * Sweep telemetry streaming: CRC-tagged JSON-lines progress records
 * plus a Prometheus-style text metrics snapshot.
 *
 * The sweep engine is the ROADMAP's path to a long-running daemon
 * serving queued RunDescs, and a daemon that reports nothing until it
 * finishes is unoperable. SweepRunner therefore emits two interleaved
 * record classes into one `telemetry_out=` stream:
 *
 *  - deterministic records (`"live": false`): sweep_begin, one
 *    terminal run_state per descriptor *in submission order* (a
 *    reorder buffer holds finished runs until their turn), and
 *    sweep_end. These carry no wall-clock fields and have their own
 *    seq counter, so the deterministic subsequence is byte-identical
 *    at jobs=1 and jobs=N (tests/test_telemetry.cc pins it);
 *  - live records (`"live": true`): transient run states (queued /
 *    warm-building / warm-forked / running / retrying) and periodic
 *    heartbeats (insts/s, ETA). Ordering and timing are scheduling-
 *    dependent by nature; consumers wanting determinism filter them.
 *
 * Line format (append-only, one record per line, flushed per line so
 * at most the final line can be torn):
 *
 *   {"v":1,"seq":N,"type":"<type>","live":<bool>,"crc":<u32>,
 *    "data":{...}}
 *
 * `crc` is the CRC-32 of the rendered `data` object exactly as it
 * appears in the line; `data` is always the last member, so a reader
 * recovers the covered bytes without re-serializing. A torn or
 * damaged line is skipped and counted, never fatal -- the same
 * degradation contract as the resume journal.
 *
 * The metrics side (`metrics_out=`) is a whole-file snapshot in
 * Prometheus text exposition format, rewritten atomically (temp +
 * rename) on each heartbeat and at completion, so a scraper never
 * sees a half-written file.
 */

#ifndef EBCP_HARNESS_TELEMETRY_HH
#define EBCP_HARNESS_TELEMETRY_HH

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hh"
#include "util/status.hh"

namespace ebcp::harness
{

/** One parsed telemetry line. */
struct TelemetryRecord
{
    std::uint64_t seq = 0;
    std::string type;
    bool live = false;
    JsonValue data;
    std::string dataRaw; //!< the CRC-covered rendering of `data`
};

/** Parsed stream plus the damaged-line count. */
struct TelemetryFile
{
    std::vector<TelemetryRecord> records;
    std::size_t skipped = 0;
};

/** Append-only JSON-lines telemetry writer. Thread-safe. */
class TelemetryStream
{
  public:
    /** Opens (truncating) @p path; a failure disables the stream --
     * telemetry must never fail a sweep -- and is reported once
     * through openStatus(). */
    explicit TelemetryStream(const std::string &path);

    Status openStatus() const { return openStatus_; }

    /** Emit one deterministic record (its own seq space, in emission
     * order -- the caller guarantees emission order is submission
     * order). @p data_raw must be a complete JSON object. */
    void emitDeterministic(const std::string &type,
                           const std::string &data_raw);

    /** Emit one live (scheduling-dependent) record. */
    void emitLive(const std::string &type, const std::string &data_raw);

    /** Lines successfully written so far. */
    std::uint64_t linesWritten() const;

    /** Render one telemetry line (no trailing newline); exposed for
     * tests that build damaged streams. */
    static std::string formatLine(std::uint64_t seq,
                                  const std::string &type, bool live,
                                  const std::string &data_raw);

    /** Parse one line; false when torn/corrupt/unparseable. */
    static bool parseLine(const std::string &line, TelemetryRecord &out);

  private:
    void emit(const std::string &type, bool live,
              const std::string &data_raw);

    mutable std::mutex mu_;
    std::ofstream out_;
    Status openStatus_;
    std::uint64_t detSeq_ = 0;
    std::uint64_t liveSeq_ = 0;
    std::uint64_t lines_ = 0;
};

/** Read @p path, parse every line, count the damaged ones. A missing
 * file is an IoError; damage is not. */
StatusOr<TelemetryFile> readTelemetryFile(const std::string &path);

/** Point-in-time sweep metrics for the Prometheus snapshot. */
struct MetricsSnapshot
{
    std::uint64_t runsTotal = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t measuredInsts = 0;
    std::uint64_t retries = 0;
    std::uint64_t warmBuilds = 0;
    std::uint64_t warmForks = 0;
    std::uint64_t coldFallbacks = 0;
    std::uint64_t resumed = 0;
    unsigned jobs = 0;
    double elapsedSeconds = 0.0;
    double instsPerSec = 0.0;
    bool done = false;
};

/** Render @p m in Prometheus text exposition format. */
std::string formatPrometheus(const MetricsSnapshot &m);

/** formatPrometheus() + atomic whole-file replace (temp + rename). */
Status writeMetricsSnapshot(const std::string &path,
                            const MetricsSnapshot &m);

} // namespace ebcp::harness

#endif // EBCP_HARNESS_TELEMETRY_HH
