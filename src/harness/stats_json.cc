#include "harness/stats_json.hh"

#include <fstream>
#include <sstream>

namespace ebcp
{

void
beginStatsJson(JsonWriter &w, std::string_view source)
{
    w.beginObject();
    w.kv("schema", StatsJsonSchema);
    w.kv("source", source);
    w.key("runs").beginArray();
}

void
endStatsJson(JsonWriter &w, std::string_view diagnostic_raw,
             std::string_view audit_raw, std::string_view profile_raw,
             std::string_view host_raw)
{
    w.endArray();
    if (!diagnostic_raw.empty()) {
        w.key("diagnostic");
        w.rawValue(diagnostic_raw);
    }
    if (!audit_raw.empty()) {
        w.key("audit");
        w.rawValue(audit_raw);
    }
    if (!profile_raw.empty()) {
        w.key("profile");
        w.rawValue(profile_raw);
    }
    if (!host_raw.empty()) {
        w.key("host_counters");
        w.rawValue(host_raw);
    }
    w.endObject();
}

void
writeSimResultsJson(JsonWriter &w, const SimResults &r)
{
    w.beginObject();
    w.kv("insts", r.insts);
    w.kv("cycles", r.cycles);
    w.kv("epochs", r.epochs);
    w.kv("cpi", r.cpi);
    w.kv("epochs_per_1k", r.epochsPer1k);
    w.kv("l2_inst_miss_per_1k", r.l2InstMissPer1k);
    w.kv("l2_load_miss_per_1k", r.l2LoadMissPer1k);
    w.kv("useful_prefetches", r.usefulPrefetches);
    w.kv("issued_prefetches", r.issuedPrefetches);
    w.kv("dropped_prefetches", r.droppedPrefetches);
    w.kv("timely_prefetches", r.timelyPrefetches);
    w.kv("late_prefetches", r.latePrefetches);
    w.kv("early_evicted_prefetches", r.earlyEvictedPrefetches);
    w.kv("coverage", r.coverage);
    w.kv("accuracy", r.accuracy);
    w.kv("timeliness", r.timeliness);
    w.kv("read_bus_util", r.readBusUtil);
    w.kv("write_bus_util", r.writeBusUtil);
    w.endObject();
}

Status
validateStatsJson(const std::string &text)
{
    StatusOr<JsonValue> doc = parseJson(text);
    if (!doc.ok())
        return doc.status();
    const JsonValue &root = doc.value();
    if (!root.isObject())
        return corruptionError("stats document is not an object");

    const JsonValue *schema = root.find("schema");
    if (!schema || !schema->isString() ||
        schema->string != StatsJsonSchema)
        return corruptionError("missing or wrong 'schema' tag (want '",
                               StatsJsonSchema, "')");
    const JsonValue *source = root.find("source");
    if (!source || !source->isString())
        return corruptionError("missing 'source' string");

    const JsonValue *runs = root.find("runs");
    if (!runs || !runs->isArray())
        return corruptionError("missing 'runs' array");

    static const char *required[] = {
        "insts", "cycles", "cpi", "issued_prefetches",
        "timely_prefetches", "late_prefetches",
        "early_evicted_prefetches", "coverage", "accuracy", "timeliness",
    };
    for (std::size_t i = 0; i < runs->array.size(); ++i) {
        const JsonValue &run = runs->array[i];
        if (!run.isObject())
            return corruptionError("runs[", i, "] is not an object");
        const JsonValue *label = run.find("label");
        if (!label || !label->isString())
            return corruptionError("runs[", i, "] lacks a 'label' string");
        const JsonValue *results = run.find("results");
        if (!results || !results->isObject())
            return corruptionError("runs[", i,
                                   "] lacks a 'results' object");
        for (const char *key : required)
            if (!results->hasNumber(key))
                return corruptionError("runs[", i, "].results lacks '",
                                       key, "'");
    }

    if (const JsonValue *diag = root.find("diagnostic");
        diag && !diag->isObject())
        return corruptionError("'diagnostic' is not an object");

    if (const JsonValue *audit = root.find("audit")) {
        if (!audit->isObject())
            return corruptionError("'audit' is not an object");
        if (!audit->hasNumber("passes"))
            return corruptionError("'audit' lacks a 'passes' number");
        const JsonValue *result = audit->find("result");
        if (!result || !result->isObject())
            return corruptionError("'audit' lacks a 'result' object");
        if (!result->hasNumber("checks") ||
            !result->hasNumber("violation_count"))
            return corruptionError(
                "'audit.result' lacks 'checks'/'violation_count'");
        const JsonValue *violations = result->find("violations");
        if (!violations || !violations->isArray())
            return corruptionError(
                "'audit.result' lacks a 'violations' array");
    }

    if (const JsonValue *profile = root.find("profile")) {
        if (!profile->isObject())
            return corruptionError("'profile' is not an object");
        const JsonValue *enabled = profile->find("enabled");
        if (!enabled || !enabled->isBool())
            return corruptionError(
                "'profile' lacks an 'enabled' boolean");
        const JsonValue *nodes = profile->find("nodes");
        if (!nodes || !nodes->isArray())
            return corruptionError("'profile' lacks a 'nodes' array");
        for (std::size_t i = 0; i < nodes->array.size(); ++i) {
            const JsonValue &n = nodes->array[i];
            if (!n.isObject())
                return corruptionError("profile.nodes[", i,
                                       "] is not an object");
            const JsonValue *path = n.find("path");
            if (!path || !path->isString())
                return corruptionError("profile.nodes[", i,
                                       "] lacks a 'path' string");
            for (const char *key : {"visits", "timed_visits",
                                    "est_wall_ns", "est_cpu_ns"})
                if (!n.hasNumber(key))
                    return corruptionError("profile.nodes[", i,
                                           "] lacks '", key, "'");
            const JsonValue *sampled = n.find("sampled");
            if (!sampled || !sampled->isBool())
                return corruptionError("profile.nodes[", i,
                                       "] lacks a 'sampled' boolean");
        }
    }

    if (const JsonValue *host = root.find("host_counters")) {
        if (!host->isObject())
            return corruptionError("'host_counters' is not an object");
        const JsonValue *available = host->find("available");
        if (!available || !available->isBool())
            return corruptionError(
                "'host_counters' lacks an 'available' boolean");
        const JsonValue *reason = host->find("reason");
        if (!reason || !reason->isString())
            return corruptionError(
                "'host_counters' lacks a 'reason' string");
        const JsonValue *src_member = host->find("nominal_source");
        if (!src_member || !src_member->isString())
            return corruptionError(
                "'host_counters' lacks a 'nominal_source' string");
        if (!host->hasNumber("nominal_hz"))
            return corruptionError(
                "'host_counters' lacks a 'nominal_hz' number");
    }
    return Status();
}

Status
validateStatsJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return ioError("cannot open '", path, "' for reading");
    std::ostringstream buf;
    buf << in.rdbuf();
    return validateStatsJson(buf.str()).withContext(path);
}

} // namespace ebcp
