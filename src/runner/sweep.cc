#include "runner/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "sim/cmp_system.hh"
#include "sim/simulator.hh"
#include "trace/fault_injection.hh"
#include "trace/workloads.hh"

namespace ebcp::runner
{

std::uint64_t
runSeed(const RunDesc &d)
{
    if (d.seed)
        return d.seed;
    // The workload table owns the calibrated default seeds; reuse it
    // so runSeed() and execution can never disagree.
    StatusOr<WorkloadConfig> cfg = tryWorkloadByName(d.workload, 0);
    return cfg.ok() ? cfg.value().seed : 0;
}

std::string
runLabel(const RunDesc &d)
{
    if (!d.label.empty())
        return d.label;
    return d.workload + "/" + d.pf.name;
}

unsigned
defaultJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

namespace
{

/** Single-core path: mirrors examples/ebcp_cli's wiring, including
 * the fault-injection wrapper and the EBCP-side fault plan. */
RunResult
executeSingle(const RunDesc &d)
{
    RunResult out;
    StatusOr<std::unique_ptr<SyntheticWorkload>> src =
        tryMakeWorkload(d.workload, d.seed);
    if (!src.ok()) {
        out.status = src.status().withContext(runLabel(d));
        return out;
    }
    std::unique_ptr<SyntheticWorkload> owned = src.take();
    TraceSource *source = owned.get();

    std::unique_ptr<FaultInjectingTraceSource> injector;
    const FaultPlan &faults = d.cfg.faults;
    if (faults.traceBitflip || faults.traceTruncate ||
        faults.traceShortRead) {
        injector =
            std::make_unique<FaultInjectingTraceSource>(*source, faults);
        source = injector.get();
    }

    PrefetcherParams pf = d.pf;
    if (faults.any())
        pf.ebcp.faults = faults;

    {
        // Validate the prefetcher name up front: the Simulator
        // constructor treats an unknown name as fatal, but a sweep
        // must degrade to a per-run error instead.
        StatusOr<std::unique_ptr<Prefetcher>> probe =
            tryCreatePrefetcher(pf);
        if (!probe.ok()) {
            out.status = probe.status().withContext(runLabel(d));
            return out;
        }
    }

    Simulator sim(d.cfg, pf);
    StatusOr<SimResults> r =
        sim.tryRun(*source, d.scale.warm, d.scale.measure);
    if (!r.ok()) {
        out.status = r.status().withContext(runLabel(d));
        return out;
    }
    out.results = r.take();
    return out;
}

/** CMP path: per-core workload instances with seeds derived from the
 * descriptor seed, as runCmp() does serially. */
RunResult
executeCmp(const RunDesc &d)
{
    RunResult out;
    std::vector<std::unique_ptr<SyntheticWorkload>> owned;
    std::vector<TraceSource *> sources;
    for (unsigned i = 0; i < d.cores; ++i) {
        const std::uint64_t seed = d.seed ? d.seed + i : 1000 + i;
        StatusOr<std::unique_ptr<SyntheticWorkload>> src =
            tryMakeWorkload(d.workload, seed);
        if (!src.ok()) {
            out.status = src.status().withContext(runLabel(d));
            return out;
        }
        owned.push_back(src.take());
        sources.push_back(owned.back().get());
    }

    {
        StatusOr<std::unique_ptr<Prefetcher>> probe =
            tryCreatePrefetcher(d.pf);
        if (!probe.ok()) {
            out.status = probe.status().withContext(runLabel(d));
            return out;
        }
    }

    CmpSystem sys(d.cfg, d.pf, d.cores);
    StatusOr<CmpResults> r =
        sys.tryRun(sources, d.scale.warm, d.scale.measure);
    if (!r.ok()) {
        out.status = r.status().withContext(runLabel(d));
        return out;
    }

    out.results = foldCmpResults(r.take());
    return out;
}

} // namespace

RunResult
executeRun(const RunDesc &d)
{
    try {
        return d.cores > 1 ? executeCmp(d) : executeSingle(d);
    } catch (const std::exception &e) {
        RunResult out;
        out.status = Status(StatusCode::Corruption,
                            logFormat(runLabel(d),
                                      ": uncaught exception: ", e.what()));
        return out;
    }
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{}

std::vector<RunResult>
SweepRunner::run(const std::vector<RunDesc> &descs)
{
    const auto start = std::chrono::steady_clock::now();

    std::vector<RunResult> results(descs.size());
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, descs.size()));

    if (workers <= 1) {
        for (std::size_t i = 0; i < descs.size(); ++i)
            results[i] = executeRun(descs[i]);
    } else {
        // Work stealing off a shared index: workers claim the next
        // unstarted descriptor and write results[i] in place, so the
        // output order is the submission order no matter who runs
        // what.
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= descs.size())
                    return;
                results[i] = executeRun(descs[i]);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    stats_ = SweepStats{};
    stats_.launched = descs.size();
    stats_.jobs = workers ? workers : 1;
    for (const RunResult &r : results) {
        if (r.ok()) {
            ++stats_.completed;
            stats_.measuredInsts += r.results.insts;
        } else {
            ++stats_.failed;
        }
    }
    stats_.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return results;
}

} // namespace ebcp::runner
