/**
 * @file
 * Parallel sweep engine: a fixed-size thread pool that executes a
 * list of RunDescs and returns per-run results in submission order.
 *
 * Guarantees (see tests/test_runner.cc):
 *
 *  - determinism: each run's SimResults are a pure function of its
 *    descriptor, so a sweep is bit-identical at jobs=1 and jobs=N;
 *  - isolation: each run builds its own Simulator/CmpSystem and trace
 *    source; a faulted run (watchdog stall, bad descriptor) yields a
 *    non-OK per-run Status without aborting or perturbing the rest of
 *    the sweep;
 *  - ordering: results[i] always corresponds to descs[i], regardless
 *    of which worker finished first.
 *
 * Every paper bench (Figures 4-9, Table 1, extensions) funnels its
 * (workload x config) grid through this engine; see bench_common.hh
 * for the bench-side convenience wrapper.
 */

#ifndef EBCP_RUNNER_SWEEP_HH
#define EBCP_RUNNER_SWEEP_HH

#include <cstdint>
#include <vector>

#include "runner/run_desc.hh"
#include "sim/results.hh"
#include "util/status.hh"

namespace ebcp::runner
{

/** Outcome of one run: a Status plus, when OK, the results. */
struct RunResult
{
    Status status;
    SimResults results; //!< valid only when status.ok()

    bool ok() const { return status.ok(); }
};

/** Aggregate accounting of one sweep execution. */
struct SweepStats
{
    std::size_t launched = 0;  //!< descriptors submitted
    std::size_t completed = 0; //!< runs that returned OK
    std::size_t failed = 0;    //!< runs that returned a non-OK Status
    unsigned jobs = 1;         //!< worker threads used
    double wallSeconds = 0.0;

    /** Instructions measured across successful runs (warm excluded). */
    std::uint64_t measuredInsts = 0;

    /** Aggregate simulation throughput over the sweep's wall clock. */
    double instsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(measuredInsts) / wallSeconds
                   : 0.0;
    }
};

/**
 * Execute one descriptor in isolation. Bad workload / prefetcher
 * names, watchdog stalls and uncaught exceptions come back as the
 * Status; the simulation itself runs exactly as the serial
 * runOnce()/runCmp() paths would.
 */
RunResult executeRun(const RunDesc &d);

/** The default worker count: hardware concurrency, at least 1. */
unsigned defaultJobs();

/** Fixed-size thread-pool executor for run descriptors. */
class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 selects defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0);

    /**
     * Execute every descriptor and return results in submission
     * order. Never throws and never aborts on a failed run; inspect
     * each RunResult::status. Also refreshes stats().
     */
    std::vector<RunResult> run(const std::vector<RunDesc> &descs);

    /** Accounting for the most recent run(). */
    const SweepStats &stats() const { return stats_; }

    unsigned jobs() const { return jobs_; }

  private:
    unsigned jobs_;
    SweepStats stats_;
};

} // namespace ebcp::runner

#endif // EBCP_RUNNER_SWEEP_HH
