/**
 * @file
 * ASCII table renderer for experiment output.
 *
 * The bench binaries print paper-style tables (one row per benchmark,
 * one column per configuration); this helper keeps their output code
 * trivial and uniform.
 */

#ifndef EBCP_STATS_TABLE_HH
#define EBCP_STATS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ebcp
{

/** A simple left-column-labelled table of strings. */
class AsciiTable
{
  public:
    /** @param title caption printed above the table. */
    explicit AsciiTable(std::string title) : title_(std::move(title)) {}

    /** Set the column headers (first header labels the row-name column). */
    void setHeader(const std::vector<std::string> &header)
    {
        header_ = header;
    }

    /** Append a row of cells (first cell is the row label). */
    void addRow(const std::vector<std::string> &row)
    {
        rows_.push_back(row);
    }

    /** Convenience: row label + numeric cells with fixed precision. */
    void addRow(const std::string &label, const std::vector<double> &vals,
                int prec = 2);

    /** Render with column alignment and separators. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ebcp

#endif // EBCP_STATS_TABLE_HH
