#include "stats/statistic.hh"

#include <sstream>

#include "ckpt/archiver.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace ebcp
{

void
StatBase::writeJson(JsonWriter &w) const
{
    w.value(render());
}

std::string
Scalar::render() const
{
    return std::to_string(value_);
}

void
Scalar::writeJson(JsonWriter &w) const
{
    w.value(value_);
}

void
Scalar::ckptValue(ckpt::Archiver &ar)
{
    ar.u64(value_);
}

std::string
Average::render() const
{
    std::ostringstream os;
    os << fmtDouble(mean(), 4) << " (n=" << count_ << ")";
    return os.str();
}

void
Average::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("mean", mean());
    w.kv("count", count_);
    w.endObject();
}

void
Average::ckptValue(ckpt::Archiver &ar)
{
    ar.f64(sum_);
    ar.u64(count_);
}

Distribution::Distribution(std::string name, std::string desc, double min,
                           double max, std::size_t buckets)
    : StatBase(std::move(name), std::move(desc)),
      min_(min), max_(max), width_((max - min) / buckets), counts_(buckets)
{
    panic_if(max <= min, "Distribution with max <= min");
    panic_if(buckets == 0, "Distribution with zero buckets");
}

void
Distribution::sample(double v)
{
    ++samples_;
    sum_ += v;
    if (v < min_) {
        ++underflow_;
    } else if (v > max_) {
        ++overflow_;
    } else {
        // The last bucket is closed ([..., max]), and the clamp also
        // absorbs float rounding where (v - min_) / width_ lands on
        // the bucket count for v just below max.
        std::size_t i = static_cast<std::size_t>((v - min_) / width_);
        if (i >= counts_.size())
            i = counts_.size() - 1;
        ++counts_[i];
    }
}

std::string
Distribution::render() const
{
    std::ostringstream os;
    os << "mean=" << fmtDouble(mean(), 4) << " n=" << samples_;
    os << " [";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            os << " ";
        os << counts_[i];
    }
    os << "]";
    if (underflow_)
        os << " under=" << underflow_;
    if (overflow_)
        os << " over=" << overflow_;
    return os.str();
}

void
Distribution::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("mean", mean());
    w.kv("samples", samples_);
    w.kv("underflow", underflow_);
    w.kv("overflow", overflow_);
    w.key("buckets").beginArray();
    for (std::uint64_t c : counts_)
        w.value(c);
    w.endArray();
    w.endObject();
}

void
Distribution::reset()
{
    for (auto &c : counts_)
        c = 0;
    underflow_ = overflow_ = samples_ = 0;
    sum_ = 0.0;
}

void
Distribution::ckptValue(ckpt::Archiver &ar)
{
    // The bucket count is fixed at construction; a mismatch means the
    // checkpoint was taken under different bucketing.
    ar.fixedVecU64(counts_, "distribution buckets");
    ar.u64(underflow_);
    ar.u64(overflow_);
    ar.u64(samples_);
    ar.f64(sum_);
}

} // namespace ebcp
