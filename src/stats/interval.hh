/**
 * @file
 * Interval sampling of a StatGroup tree.
 *
 * End-of-run aggregates average away phase behaviour: a workload that
 * spends half its run missing constantly and half hitting looks
 * identical to one that misses at a uniform rate. The sampler
 * snapshots every Scalar and Average reachable from a root group at
 * exact N-instruction boundaries of the measurement window, producing
 * a time series that plots directly against the epoch timeline.
 *
 * The sampler never resets live statistics -- per-interval ("delta")
 * values are computed by subtraction from the previous boundary, so
 * attaching a sampler cannot perturb the simulation (the end-of-run
 * aggregates and goldens stay bit-exact).
 */

#ifndef EBCP_STATS_INTERVAL_HH
#define EBCP_STATS_INTERVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/group.hh"
#include "util/json.hh"

namespace ebcp
{

/** Snapshots a statistic tree every N instructions. */
class IntervalSampler
{
  public:
    enum class Mode : std::uint8_t
    {
        Cumulative, //!< running totals at each boundary
        Delta,      //!< change since the previous boundary
    };

    /**
     * @param root group whose Scalars and Averages are sampled; the
     *        dotted paths are resolved once, here (never per sample)
     * @param interval instructions between snapshots (must be > 0)
     */
    IntervalSampler(const StatGroup &root, std::uint64_t interval,
                    Mode mode = Mode::Delta);

    std::uint64_t interval() const { return interval_; }
    Mode mode() const { return mode_; }

    /**
     * Record a snapshot at instruction boundary @p insts (the
     * cumulative measured-instruction count). The driver calls this
     * at exact interval multiples plus the final, possibly partial,
     * boundary.
     */
    void sample(std::uint64_t insts);

    /** One recorded boundary. */
    struct Snapshot
    {
        std::uint64_t insts = 0;   //!< boundary (cumulative insts)
        std::vector<double> values; //!< parallel to paths()
    };

    /** Dotted path of each sampled statistic, root name included. */
    const std::vector<std::string> &paths() const { return paths_; }

    const std::vector<Snapshot> &snapshots() const { return snaps_; }

    /** Drop recorded snapshots (paths stay resolved). */
    void clear();

    /**
     * Emit {"interval", "mode", "paths": [...], "samples":
     * [{"insts", "values": [...]}, ...]} as one JSON object value.
     */
    void writeJson(JsonWriter &w) const;

  private:
    // A sampled statistic reduced to (sum, count): Scalars are
    // (value, 1); Averages keep their real sum and count so Delta
    // mode can compute a true per-interval mean.
    struct Probe
    {
        const StatBase *stat = nullptr;
        bool isAverage = false;
    };

    void collect(const StatGroup &g, const std::string &prefix);
    void read(std::vector<double> &sum, std::vector<double> &count) const;

    std::uint64_t interval_;
    Mode mode_;
    std::vector<std::string> paths_;
    std::vector<Probe> probes_;
    std::vector<double> prevSum_;
    std::vector<double> prevCount_;
    std::vector<Snapshot> snaps_;
};

} // namespace ebcp

#endif // EBCP_STATS_INTERVAL_HH
