#include "stats/group.hh"

#include <iomanip>

namespace ebcp
{

void
StatGroup::resetAll()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *c : children_)
        c->resetAll();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto *s : stats_) {
        os << std::left << std::setw(44) << (full + "." + s->name())
           << " " << std::setw(20) << s->render()
           << " # " << s->desc() << "\n";
    }
    for (const auto *c : children_)
        c->dump(os, full);
}

} // namespace ebcp
