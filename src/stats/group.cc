#include "stats/group.hh"

#include <iomanip>

#include "ckpt/archiver.hh"
#include "util/json.hh"

namespace ebcp
{

void
StatGroup::resetAll()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *c : children_)
        c->resetAll();
}

void
StatGroup::ckpt(ckpt::Archiver &ar)
{
    std::uint32_t nstats = static_cast<std::uint32_t>(stats_.size());
    ar.u32(nstats);
    if (!ar.saving() && ar.ok() && nstats != stats_.size()) {
        ar.fail(invalidArgError("stat group '", name_, "' holds ",
                                stats_.size(),
                                " stats but the checkpoint recorded ",
                                nstats));
        return;
    }
    for (StatBase *s : stats_) {
        std::string name = s->name();
        ar.str(name);
        if (!ar.ok())
            return;
        if (!ar.saving() && name != s->name()) {
            ar.fail(invalidArgError("stat group '", name_, "' expected '",
                                    s->name(),
                                    "' but the checkpoint recorded '",
                                    name, "'"));
            return;
        }
        s->ckptValue(ar);
        if (!ar.ok())
            return;
    }
}

const StatBase *
StatGroup::find(std::string_view path) const
{
    const auto dot = path.find('.');
    if (dot == std::string_view::npos) {
        if (path.empty())
            return nullptr;
        for (const auto *s : stats_)
            if (s->name() == path)
                return s;
        return nullptr;
    }
    const std::string_view head = path.substr(0, dot);
    const std::string_view rest = path.substr(dot + 1);
    // An empty segment ("a..b", ".b", "a.") can never name anything:
    // groups and stats always have non-empty names, so reject it here
    // rather than walking children looking for a group named "".
    if (head.empty() || rest.empty())
        return nullptr;
    for (const auto *c : children_)
        if (c->name() == head)
            if (const StatBase *s = c->find(rest))
                return s;
    return nullptr;
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto *s : stats_) {
        os << std::left << std::setw(44) << (full + "." + s->name())
           << " " << std::setw(20) << s->render()
           << " # " << s->desc() << "\n";
    }
    for (const auto *c : children_)
        c->dump(os, full);
}

void
StatGroup::dumpJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto *s : stats_) {
        w.key(s->name());
        s->writeJson(w);
    }
    for (const auto *c : children_) {
        w.key(c->name());
        c->dumpJson(w);
    }
    w.endObject();
}

} // namespace ebcp
