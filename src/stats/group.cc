#include "stats/group.hh"

#include <iomanip>

namespace ebcp
{

void
StatGroup::resetAll()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *c : children_)
        c->resetAll();
}

const StatBase *
StatGroup::find(std::string_view path) const
{
    const auto dot = path.find('.');
    if (dot == std::string_view::npos) {
        for (const auto *s : stats_)
            if (s->name() == path)
                return s;
        return nullptr;
    }
    const std::string_view head = path.substr(0, dot);
    const std::string_view rest = path.substr(dot + 1);
    for (const auto *c : children_)
        if (c->name() == head)
            if (const StatBase *s = c->find(rest))
                return s;
    return nullptr;
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto *s : stats_) {
        os << std::left << std::setw(44) << (full + "." + s->name())
           << " " << std::setw(20) << s->render()
           << " # " << s->desc() << "\n";
    }
    for (const auto *c : children_)
        c->dump(os, full);
}

} // namespace ebcp
