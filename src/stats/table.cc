#include "stats/table.hh"

#include <algorithm>
#include <iomanip>

#include "util/str.hh"

namespace ebcp
{

void
AsciiTable::addRow(const std::string &label, const std::vector<double> &vals,
                   int prec)
{
    std::vector<std::string> row;
    row.push_back(label);
    for (double v : vals)
        row.push_back(fmtDouble(v, prec));
    rows_.push_back(row);
}

void
AsciiTable::print(std::ostream &os) const
{
    std::size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());

    std::vector<std::size_t> width(cols, 0);
    auto grow = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::size_t total = 1;
    for (std::size_t w : width)
        total += w + 3;

    os << "\n" << title_ << "\n" << std::string(total, '-') << "\n";
    auto emit = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t i = 0; i < cols; ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            os << " " << std::setw(static_cast<int>(width[i]))
               << (i == 0 ? std::left : std::right) << cell << " |";
            os << std::right;
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    os << std::string(total, '-') << "\n";
}

} // namespace ebcp
