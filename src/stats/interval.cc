#include "stats/interval.hh"

#include "util/logging.hh"

namespace ebcp
{

IntervalSampler::IntervalSampler(const StatGroup &root,
                                 std::uint64_t interval, Mode mode)
    : interval_(interval), mode_(mode)
{
    fatal_if(interval == 0, "interval sampler with a zero interval");
    collect(root, root.name());
    prevSum_.assign(probes_.size(), 0.0);
    prevCount_.assign(probes_.size(), 0.0);
}

void
IntervalSampler::collect(const StatGroup &g, const std::string &prefix)
{
    for (const StatBase *s : g.stats()) {
        const auto *avg = dynamic_cast<const Average *>(s);
        if (!avg && !dynamic_cast<const Scalar *>(s))
            continue; // Distributions are too wide for a time series.
        paths_.push_back(prefix + "." + s->name());
        probes_.push_back({s, avg != nullptr});
    }
    for (const StatGroup *c : g.children())
        collect(*c, prefix + "." + c->name());
}

void
IntervalSampler::read(std::vector<double> &sum,
                      std::vector<double> &count) const
{
    sum.resize(probes_.size());
    count.resize(probes_.size());
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        if (probes_[i].isAverage) {
            const auto *a = static_cast<const Average *>(probes_[i].stat);
            count[i] = static_cast<double>(a->count());
            sum[i] = a->mean() * count[i];
        } else {
            const auto *s = static_cast<const Scalar *>(probes_[i].stat);
            sum[i] = static_cast<double>(s->value());
            count[i] = 1.0;
        }
    }
}

void
IntervalSampler::sample(std::uint64_t insts)
{
    std::vector<double> sum, count;
    read(sum, count);

    Snapshot snap;
    snap.insts = insts;
    snap.values.resize(probes_.size());
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        if (mode_ == Mode::Cumulative) {
            snap.values[i] = probes_[i].isAverage
                                 ? (count[i] ? sum[i] / count[i] : 0.0)
                                 : sum[i];
        } else if (probes_[i].isAverage) {
            const double dc = count[i] - prevCount_[i];
            snap.values[i] = dc ? (sum[i] - prevSum_[i]) / dc : 0.0;
        } else {
            snap.values[i] = sum[i] - prevSum_[i];
        }
    }
    prevSum_ = std::move(sum);
    prevCount_ = std::move(count);
    snaps_.push_back(std::move(snap));
}

void
IntervalSampler::clear()
{
    snaps_.clear();
    prevSum_.assign(probes_.size(), 0.0);
    prevCount_.assign(probes_.size(), 0.0);
}

void
IntervalSampler::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("interval", interval_);
    w.kv("mode", mode_ == Mode::Delta ? "delta" : "cumulative");
    w.key("paths").beginArray();
    for (const std::string &p : paths_)
        w.value(p);
    w.endArray();
    w.key("samples").beginArray();
    for (const Snapshot &s : snaps_) {
        w.beginObject();
        w.kv("insts", s.insts);
        w.key("values").beginArray();
        for (double v : s.values)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace ebcp
