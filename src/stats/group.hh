/**
 * @file
 * Hierarchical statistic registration and reporting.
 */

#ifndef EBCP_STATS_GROUP_HH
#define EBCP_STATS_GROUP_HH

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "stats/statistic.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class JsonWriter;

/**
 * A named collection of statistics and child groups.
 *
 * Components own their stats as plain members and register pointers
 * here; the group never owns the registered objects (they live exactly
 * as long as their component).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a statistic; returns it for chaining. */
    template <typename S>
    S &
    add(S &stat)
    {
        stats_.push_back(&stat);
        return stat;
    }

    /** Register a child group. */
    void addChild(StatGroup &child) { children_.push_back(&child); }

    /** Reset all registered stats, recursively. */
    void resetAll();

    /**
     * Locate a statistic by dot-separated path relative to this group
     * (e.g. "corr_table.lookups"), or nullptr if absent.
     *
     * This is a one-time *setup* lookup for tools and benches that
     * need counters by name; it walks the registry linearly. Hot paths
     * must never call it per event -- components bump their counters
     * through the member objects registered once at construction, and
     * callers that sample repeatedly should cache the returned
     * pointer.
     */
    const StatBase *find(std::string_view path) const;

    /** find() and downcast to Scalar; nullptr if absent or not one. */
    const Scalar *
    findScalar(std::string_view path) const
    {
        return dynamic_cast<const Scalar *>(find(path));
    }

    /** Dump "group.stat = value # desc" lines, recursively. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Emit this group as one JSON object value: each statistic as a
     * member (Scalars as integers, Averages/Distributions as small
     * objects), each child group as a nested object.
     */
    void dumpJson(JsonWriter &w) const;

    const std::string &name() const { return name_; }
    const std::vector<StatBase *> &stats() const { return stats_; }
    const std::vector<StatGroup *> &children() const { return children_; }

    /**
     * Serialize or restore the statistics registered directly on this
     * group (children are component-owned and serialize with their
     * components, so the walk deliberately does not recurse).
     * Registration order is deterministic (components register their
     * stats at construction), so the walk order matches between save
     * and load; stat names travel with the values and are verified on
     * load to catch registry skew.
     */
    void ckpt(ckpt::Archiver &ar);

  private:
    std::string name_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace ebcp

#endif // EBCP_STATS_GROUP_HH
