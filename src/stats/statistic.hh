/**
 * @file
 * Lightweight statistics primitives.
 *
 * Every model component exposes its counters through these classes so
 * experiments can dump a uniform report. The design is a miniature
 * version of gem5's stats package: named statistics register with a
 * StatGroup, and groups can be dumped hierarchically.
 */

#ifndef EBCP_STATS_STATISTIC_HH
#define EBCP_STATS_STATISTIC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class JsonWriter;

/** Base class for a named, documented statistic. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    virtual ~StatBase() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render the value(s) as a printable string. */
    virtual std::string render() const = 0;

    /**
     * Emit the value(s) as one JSON value (used by
     * StatGroup::dumpJson). The default renders the printable string;
     * the concrete classes emit real numbers/objects.
     */
    virtual void writeJson(JsonWriter &w) const;

    /** Reset to initial state (used between warm-up and measurement). */
    virtual void reset() = 0;

    /** Serialize or restore the value through @p ar (checkpointing). */
    virtual void ckptValue(ckpt::Archiver &ar) = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A simple additive counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t v) { value_ += v; return *this; }

    std::uint64_t value() const { return value_; }
    void set(std::uint64_t v) { value_ = v; }

    std::string render() const override;
    void writeJson(JsonWriter &w) const override;
    void reset() override { value_ = 0; }
    void ckptValue(ckpt::Archiver &ar) override;

  private:
    std::uint64_t value_ = 0;
};

/** Mean of a stream of samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }

    std::string render() const override;
    void writeJson(JsonWriter &w) const override;
    void ckptValue(ckpt::Archiver &ar) override;

    void
    reset() override
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * A bucketed histogram over [min, max] with uniform bucket width.
 * Buckets are half-open except the last, which is closed: a sample
 * exactly equal to max lands in the last bucket, not in overflow.
 */
class Distribution : public StatBase
{
  public:
    Distribution(std::string name, std::string desc, double min, double max,
                 std::size_t buckets);

    void sample(double v);

    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t underflows() const { return underflow_; }
    std::uint64_t overflows() const { return overflow_; }
    std::uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }

    std::string render() const override;
    void writeJson(JsonWriter &w) const override;
    void reset() override;
    void ckptValue(ckpt::Archiver &ar) override;

  private:
    double min_;
    double max_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
};

} // namespace ebcp

#endif // EBCP_STATS_STATISTIC_HH
