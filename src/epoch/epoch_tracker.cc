#include "epoch/epoch_tracker.hh"

#include <algorithm>

#include "ckpt/archiver.hh"
#include "verify/audit.hh"

namespace ebcp
{

EpochTracker::EpochTracker() : stats_("epoch")
{
    stats_.add(epochCount_);
    stats_.add(offChipAccesses_);
    stats_.add(missesPerEpoch_);
    stats_.add(epochLength_);
}

EpochEvent
EpochTracker::observe(Tick issue, Tick complete)
{
    ++offChipAccesses_;
    EpochEvent ev;

    if (issue >= curEnd_) {
        // No off-chip access outstanding: this is an epoch trigger.
        if (missesInEpoch_ > 0) {
            missesPerEpoch_.sample(missesInEpoch_);
            epochLength_.sample(static_cast<double>(curEnd_ - curStart_));
            EBCP_TRACE_EVENT(trace_, TraceEventKind::EpochSpan, curStart_,
                             curEnd_ - curStart_, curEpoch_,
                             missesInEpoch_);
        }
        ++epochCount_;
        ++curEpoch_;
        curStart_ = issue;
        curEnd_ = complete;
        missesInEpoch_ = 1;
        ev.newEpoch = true;
    } else {
        // Overlaps the current group; extend its transitive end.
        curEnd_ = std::max(curEnd_, complete);
        ++missesInEpoch_;
    }
    ev.epoch = curEpoch_;
    return ev;
}

void
EpochTracker::beginMeasurement()
{
    stats_.resetAll();
    missesInEpoch_ = 0;
}

void
EpochTracker::audit(AuditContext &ctx) const
{
    ctx.check(curStart_ <= curEnd_, "epoch_span_well_formed",
              "epoch ", curEpoch_, " starts @", curStart_,
              " after its transitive end @", curEnd_);
    ctx.check(missesInEpoch_ == 0 || curEpoch_ > 0,
              "open_epoch_exclusivity", missesInEpoch_,
              " misses attributed to an epoch before any trigger");
}

void
EpochTracker::corruptForTest()
{
    curStart_ = curEnd_ + 1000;
}


void
EpochTracker::ckpt(ckpt::Archiver &ar)
{
    ar.u64(curEnd_);
    ar.u64(curStart_);
    ar.u64(curEpoch_);
    ar.uns(missesInEpoch_);
    stats_.ckpt(ar);
}

} // namespace ebcp
