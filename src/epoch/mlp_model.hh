/**
 * @file
 * The analytical epoch MLP model (Section 2.1).
 *
 *   CPI_overall = CPI_perf * (1 - Overlap) + EPI * MissPenalty
 *
 * These helpers let experiments check that measured CPI decomposes
 * per the model, and compute the Overlap term from measured runs.
 */

#ifndef EBCP_EPOCH_MLP_MODEL_HH
#define EBCP_EPOCH_MLP_MODEL_HH

#include "util/types.hh"

namespace ebcp
{

/** Inputs/outputs of the epoch CPI decomposition. */
struct EpochModel
{
    double cpiPerf = 0.0;   //!< CPI with a perfect last on-chip cache
    double overlap = 0.0;   //!< fraction of on-chip cycles hidden
    double epi = 0.0;       //!< epochs per instruction
    double missPenalty = 0.0; //!< off-chip miss penalty in ticks

    /** @return the modelled overall CPI. */
    double
    cpiOverall() const
    {
        return cpiPerf * (1.0 - overlap) + epi * missPenalty;
    }
};

/**
 * Solve the model for Overlap given a measured overall CPI.
 * @return overlap clamped to [0, 1].
 */
double solveOverlap(double cpi_overall, double cpi_perf, double epi,
                    double miss_penalty);

/**
 * Predict the overall CPI after a prefetcher removes a fraction of
 * epochs, holding CPI_perf and Overlap constant (the paper's linearity
 * argument: reducing EPI directly reduces off-chip CPI).
 */
double predictCpiAfterEpochReduction(const EpochModel &m,
                                     double epoch_reduction);

} // namespace ebcp

#endif // EBCP_EPOCH_MLP_MODEL_HH
