#include "epoch/mlp_model.hh"

#include <algorithm>

namespace ebcp
{

double
solveOverlap(double cpi_overall, double cpi_perf, double epi,
             double miss_penalty)
{
    if (cpi_perf <= 0.0)
        return 0.0;
    // CPI = CPI_perf (1 - ov) + EPI * penalty  =>
    // ov = 1 - (CPI - EPI * penalty) / CPI_perf
    double ov = 1.0 - (cpi_overall - epi * miss_penalty) / cpi_perf;
    return std::clamp(ov, 0.0, 1.0);
}

double
predictCpiAfterEpochReduction(const EpochModel &m, double epoch_reduction)
{
    EpochModel after = m;
    after.epi = m.epi * (1.0 - epoch_reduction);
    return after.cpiOverall();
}

} // namespace ebcp
