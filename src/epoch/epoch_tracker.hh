/**
 * @file
 * Epoch detection per Section 2.1 of the paper.
 *
 * "Epochs can be tracked by detecting epoch triggers ... when the
 * number of outstanding off-chip misses transitions from 0 to 1, the
 * epoch count is incremented."
 *
 * In the one-pass timing model each off-chip access is an interval
 * [issue, complete). The set of outstanding accesses is empty exactly
 * when a new access's issue time lies beyond the transitive-closure
 * end of the current overlap group, so the tracker maintains that end
 * and starts a new epoch when an access issues after it.
 */

#ifndef EBCP_EPOCH_EPOCH_TRACKER_HH
#define EBCP_EPOCH_EPOCH_TRACKER_HH

#include "stats/group.hh"
#include "util/event_trace.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;

/** What the tracker decided about one off-chip access. */
struct EpochEvent
{
    bool newEpoch = false; //!< this access is an epoch trigger
    EpochId epoch = 0;     //!< epoch the access belongs to
};

/** Detects epoch triggers in the stream of off-chip accesses. */
class EpochTracker
{
  public:
    EpochTracker();

    /**
     * Observe an off-chip access occupying [issue, complete).
     * Accesses must be presented in non-decreasing issue order (the
     * one-pass model provides nearly this; small inversions merge
     * into the current epoch, which is the conservative choice).
     */
    EpochEvent observe(Tick issue, Tick complete);

    /** Total epochs seen. */
    std::uint64_t epochs() const { return epochCount_.value(); }

    /** Epochs since the last beginMeasurement(). */
    std::uint64_t measuredEpochs() const
    {
        return epochCount_.value();
    }

    /** Current epoch id (0 before any off-chip access). */
    EpochId currentEpoch() const { return curEpoch_; }

    /** End tick of the current epoch's overlap group. */
    Tick currentEpochEnd() const { return curEnd_; }

    /** Reset statistics (epoch ids keep counting). */
    void beginMeasurement();

    /**
     * Emit one EpochSpan event per completed epoch into @p sink
     * (nullptr disables). Observation only: never affects timing.
     */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

    StatGroup &stats() { return stats_; }

    /**
     * Re-derive structural invariants: the single open epoch's span
     * well-formed (start never past its transitive end) and an open
     * epoch only once any trigger has been observed. Cross-run
     * monotonicity of the ids handed out lives in the driver's
     * registry entry, which remembers the last id it saw.
     */
    void audit(AuditContext &ctx) const;

    /** Test-only: invert the open epoch's span so audit() trips. */
    void corruptForTest();

    /** Serialize or restore all mutable state (checkpointing). */
    void ckpt(ckpt::Archiver &ar);

  private:
    TraceSink *trace_ = nullptr;
    Tick curEnd_ = 0;        //!< transitive end of current overlap group
    Tick curStart_ = 0;
    EpochId curEpoch_ = 0;
    unsigned missesInEpoch_ = 0;

    StatGroup stats_;
    Scalar epochCount_{"epochs", "epoch triggers observed"};
    Scalar offChipAccesses_{"offchip_accesses",
                            "off-chip accesses observed"};
    Average missesPerEpoch_{"misses_per_epoch",
                            "off-chip accesses per epoch (MLP)"};
    Average epochLength_{"epoch_length", "ticks per epoch"};
};

} // namespace ebcp

#endif // EBCP_EPOCH_EPOCH_TRACKER_HH
