#include "ckpt/checkpoint.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "util/crc32.hh"

namespace ebcp::ckpt
{

StatusOr<CkptPolicy>
ckptPolicyFromName(const std::string &name)
{
    if (name == "strict")
        return CkptPolicy::Strict;
    if (name == "rebuild")
        return CkptPolicy::Rebuild;
    return invalidArgError("unknown ckpt_policy '", name,
                           "' (expected strict or rebuild)");
}

const char *
ckptPolicyName(CkptPolicy policy)
{
    return policy == CkptPolicy::Strict ? "strict" : "rebuild";
}

namespace
{

void
packU32(std::string &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
packU64(std::string &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

class Cursor
{
  public:
    Cursor(const std::string &buf) : buf_(buf) {}

    std::size_t remaining() const { return buf_.size() - pos_; }
    std::size_t pos() const { return pos_; }

    bool
    take(void *dst, std::size_t len)
    {
        if (len > remaining())
            return false;
        std::memcpy(dst, buf_.data() + pos_, len);
        pos_ += len;
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        unsigned char b[4];
        if (!take(b, 4))
            return false;
        v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= std::uint32_t{b[i]} << (8 * i);
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        unsigned char b[8];
        if (!take(b, 8))
            return false;
        v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= std::uint64_t{b[i]} << (8 * i);
        return true;
    }

    bool
    strN(std::string &v, std::size_t len)
    {
        if (len > remaining())
            return false;
        v.assign(buf_.data() + pos_, len);
        pos_ += len;
        return true;
    }

  private:
    const std::string &buf_;
    std::size_t pos_ = 0;
};

} // namespace

Status
CheckpointWriter::section(const std::string &name,
                          const std::function<void(Archiver &)> &fill)
{
    if (!status_.ok())
        return status_;
    for (const Section &s : sections_) {
        if (s.name == name) {
            status_ = invalidArgError("duplicate checkpoint section '",
                                      name, "'");
            return status_;
        }
    }
    sections_.push_back(Section{name, {}});
    Archiver ar = Archiver::saver(sections_.back().payload);
    fill(ar);
    if (!ar.ok()) {
        status_ = ar.status().withContext("checkpoint section '" + name +
                                          "'");
        sections_.pop_back();
    }
    return status_;
}

StatusOr<std::string>
CheckpointWriter::serialize() const
{
    if (!status_.ok())
        return status_;
    std::string out;
    out.append(kCkptMagic, sizeof kCkptMagic);
    packU32(out, kCkptFormatVersion);
    packU64(out, fingerprint_);
    packU32(out, static_cast<std::uint32_t>(sections_.size()));
    packU32(out, crc32(out.data(), out.size()));
    for (const Section &s : sections_) {
        packU32(out, static_cast<std::uint32_t>(s.name.size()));
        out.append(s.name);
        packU64(out, s.payload.size());
        packU32(out, crc32(s.payload.data(), s.payload.size()));
        out.append(s.payload);
    }
    return out;
}

Status
CheckpointWriter::writeAtomic(const std::string &path) const
{
    StatusOr<std::string> data = serialize();
    if (!data.ok())
        return data.status();
    return atomicWriteFile(path, data.value());
}

StatusOr<CheckpointReader>
CheckpointReader::fromBuffer(const std::string &buffer,
                             std::uint64_t expect_fingerprint)
{
    Cursor cur(buffer);
    char magic[sizeof kCkptMagic];
    if (!cur.take(magic, sizeof magic))
        return corruptionError("checkpoint shorter than its magic (",
                               buffer.size(), " bytes)");
    if (std::memcmp(magic, kCkptMagic, sizeof magic) != 0)
        return corruptionError("bad checkpoint magic (not an EBCP "
                               "checkpoint)");
    std::uint32_t version = 0, count = 0, header_crc = 0;
    std::uint64_t fingerprint = 0;
    if (!cur.u32(version) || !cur.u64(fingerprint) || !cur.u32(count))
        return corruptionError("checkpoint header truncated");
    const std::size_t header_len = cur.pos();
    if (!cur.u32(header_crc))
        return corruptionError("checkpoint header truncated");
    const std::uint32_t want = crc32(buffer.data(), header_len);
    if (header_crc != want)
        return corruptionError("checkpoint header CRC mismatch (stored ",
                               header_crc, ", computed ", want, ")");
    if (version != kCkptFormatVersion)
        return invalidArgError("checkpoint format version ", version,
                               " is not the supported version ",
                               kCkptFormatVersion);
    if (fingerprint != expect_fingerprint)
        return invalidArgError(
            "checkpoint configuration fingerprint mismatch: checkpoint "
            "was taken under a different SimConfig/prefetcher setup");

    // Every section costs at least 16 bytes of framing (name length,
    // payload length, payload CRC), so a section count the remaining
    // bytes cannot possibly hold is corruption up front -- not a loop
    // that discovers truncation on iteration N.
    constexpr std::size_t kMinSectionBytes = 16;
    if (count > cur.remaining() / kMinSectionBytes)
        return corruptionError("checkpoint claims ", count,
                               " sections but only ", cur.remaining(),
                               " bytes follow the header");
    // Section names are short identifiers ("sim", "trace_source");
    // a multi-kilobyte length field is corrupt even when the buffer
    // happens to be big enough to satisfy the allocation.
    constexpr std::uint32_t kMaxSectionName = 256;

    CheckpointReader r;
    r.fingerprint_ = fingerprint;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t name_len = 0, payload_crc = 0;
        std::uint64_t payload_len = 0;
        Section s;
        if (!cur.u32(name_len))
            return corruptionError("checkpoint section ", i,
                                   " truncated");
        if (name_len > kMaxSectionName)
            return corruptionError("checkpoint section ", i,
                                   " name length ", name_len,
                                   " exceeds the ", kMaxSectionName,
                                   "-byte cap");
        if (!cur.strN(s.name, name_len) || !cur.u64(payload_len) ||
            !cur.u32(payload_crc) ||
            !cur.strN(s.payload, static_cast<std::size_t>(payload_len)))
            return corruptionError("checkpoint section ", i,
                                   " truncated");
        const std::uint32_t got =
            crc32(s.payload.data(), s.payload.size());
        if (got != payload_crc)
            return corruptionError("checkpoint section '", s.name,
                                   "' CRC mismatch (stored ",
                                   payload_crc, ", computed ", got, ")");
        r.sections_.push_back(std::move(s));
    }
    if (cur.remaining() != 0)
        return corruptionError("checkpoint holds ", cur.remaining(),
                               " trailing bytes after the last section");
    return r;
}

StatusOr<CheckpointReader>
CheckpointReader::fromFile(const std::string &path,
                           std::uint64_t expect_fingerprint)
{
    StatusOr<std::string> data = readFile(path);
    if (!data.ok())
        return data.status();
    StatusOr<CheckpointReader> r =
        fromBuffer(data.value(), expect_fingerprint);
    if (!r.ok())
        return r.status().withContext(path);
    return r;
}

bool
CheckpointReader::hasSection(const std::string &name) const
{
    for (const Section &s : sections_)
        if (s.name == name)
            return true;
    return false;
}

Status
CheckpointReader::section(const std::string &name,
                          const std::function<void(Archiver &)> &load) const
{
    for (const Section &s : sections_) {
        if (s.name != name)
            continue;
        Archiver ar = Archiver::loader(s.payload.data(), s.payload.size());
        load(ar);
        if (!ar.ok())
            return ar.status().withContext("checkpoint section '" + name +
                                           "'");
        if (ar.remaining() != 0)
            return corruptionError("checkpoint section '", name,
                                   "' has ", ar.remaining(),
                                   " unconsumed bytes (layout skew)");
        return Status();
    }
    return corruptionError("checkpoint is missing section '", name, "'");
}

Status
atomicWriteFile(const std::string &path, const std::string &data)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return ioError("cannot create '", tmp, "': ", errnoString());
    bool write_ok =
        data.empty() ||
        std::fwrite(data.data(), 1, data.size(), f) == data.size();
    write_ok = write_ok && std::fflush(f) == 0;
    // fsync before rename: the rename must not become durable before
    // the data it points at.
    write_ok = write_ok && ::fsync(fileno(f)) == 0;
    const std::string io_err = write_ok ? "" : errnoString();
    if (std::fclose(f) != 0 && write_ok)
        return ioError("cannot close '", tmp, "': ", errnoString());
    if (!write_ok) {
        std::remove(tmp.c_str());
        return ioError("cannot write '", tmp, "': ", io_err);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const std::string err = errnoString();
        std::remove(tmp.c_str());
        return ioError("cannot rename '", tmp, "' to '", path,
                       "': ", err);
    }
    return Status();
}

StatusOr<std::string>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return notFoundError("cannot open '", path, "': ", errnoString());
    std::string data;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        data.append(buf, n);
    const bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err)
        return ioError("cannot read '", path, "'");
    return data;
}

} // namespace ebcp::ckpt
