/**
 * @file
 * Archiver helpers for the simulator's container types.
 *
 * FlatMap is serialized in canonical key order, not slot order: the
 * restored map is rebuilt by insertion, so its physical slot layout is
 * a function of insertion order, and a canonical order makes
 * save -> restore -> save produce byte-identical output. No simulator
 * behaviour depends on slot layout (FlatMap iteration order is
 * documented as unspecified), so restoring into a different layout is
 * observationally identical.
 */

#ifndef EBCP_CKPT_CONTAINERS_HH
#define EBCP_CKPT_CONTAINERS_HH

#include <algorithm>
#include <utility>
#include <vector>

#include "ckpt/archiver.hh"
#include "util/circular_buffer.hh"
#include "util/flat_map.hh"
#include "util/random.hh"

namespace ebcp::ckpt
{

/** Serialize or restore a PCG32 generator's raw state. */
inline void
ckptPcg32(Archiver &ar, Pcg32 &rng)
{
    std::uint64_t state = rng.rawState();
    std::uint64_t inc = rng.rawInc();
    ar.u64(state);
    ar.u64(inc);
    if (!ar.saving() && ar.ok())
        rng.setRaw(state, inc);
}

/**
 * Serialize or restore a FlatMap. @p value_fn (Archiver&, V&) handles
 * one payload value. Restore clears the map and re-inserts, so the
 * probe-chain invariant holds by construction afterwards.
 */
template <typename V, typename Hash, typename Fn>
void
ckptFlatMap(Archiver &ar, FlatMap<V, Hash> &map, Fn &&value_fn)
{
    if (ar.saving()) {
        std::vector<std::pair<std::uint64_t, const V *>> items;
        items.reserve(map.size());
        map.forEach([&](std::uint64_t key, const V &v) {
            items.emplace_back(key, &v);
        });
        std::sort(items.begin(), items.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        std::uint64_t n = items.size();
        ar.u64(n);
        for (auto &[key, vp] : items) {
            std::uint64_t k = key;
            ar.u64(k);
            // The archiver never writes through the value in save
            // mode; the const_cast lets one value_fn serve both
            // directions.
            value_fn(ar, const_cast<V &>(*vp));
            if (!ar.ok())
                return;
        }
    } else {
        std::uint64_t n = 0;
        ar.u64(n);
        if (!ar.ok())
            return;
        if (n > ar.remaining()) {
            ar.fail(corruptionError("checkpoint FlatMap count ", n,
                                    " exceeds ", ar.remaining(),
                                    " remaining bytes"));
            return;
        }
        map.clear();
        std::uint64_t prev_key = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t key = 0;
            ar.u64(key);
            if (!ar.ok())
                return;
            if (i > 0 && key <= prev_key) {
                ar.fail(corruptionError(
                    "checkpoint FlatMap keys not strictly increasing"));
                return;
            }
            prev_key = key;
            V v{};
            value_fn(ar, v);
            if (!ar.ok())
                return;
            map.insert(key, std::move(v));
        }
    }
}

/** Serialize or restore a CircularBuffer's ordered contents. */
template <typename T, typename Fn>
void
ckptCircularBuffer(Archiver &ar, CircularBuffer<T> &buf, Fn &&elem_fn)
{
    std::uint64_t n = buf.size();
    ar.u64(n);
    if (!ar.ok())
        return;
    if (ar.saving()) {
        for (std::size_t i = 0; i < buf.size(); ++i) {
            elem_fn(ar, buf.at(i));
            if (!ar.ok())
                return;
        }
    } else {
        if (n > buf.capacity()) {
            ar.fail(invalidArgError("checkpoint ring holds ", n,
                                    " elements but capacity is ",
                                    buf.capacity()));
            return;
        }
        buf.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            elem_fn(ar, buf.pushSlot());
            if (!ar.ok())
                return;
        }
    }
}

} // namespace ebcp::ckpt

#endif // EBCP_CKPT_CONTAINERS_HH
