/**
 * @file
 * Versioned, section-tagged checkpoint container.
 *
 * On-disk layout (all integers little-endian), mirroring the trace v2
 * file format's header + CRC discipline:
 *
 *   magic          8 bytes  "EBCPCKPT"
 *   version        u32      kCkptFormatVersion
 *   fingerprint    u64      configuration identity hash; a checkpoint
 *                           restored against a different SimConfig or
 *                           prefetcher setup is a coded error, not UB
 *   section count  u32
 *   header CRC     u32      CRC-32 of the fields above
 *   per section:
 *     name length  u32
 *     name         bytes
 *     payload len  u64
 *     payload CRC  u32      CRC-32 of the payload bytes
 *     payload      bytes
 *
 * All CRCs are verified eagerly when a checkpoint is opened, so a
 * flipped bit anywhere surfaces as StatusCode::Corruption before any
 * component state is touched. Writing goes through a temp file +
 * fsync + rename so a crash mid-save never leaves a torn file behind.
 */

#ifndef EBCP_CKPT_CHECKPOINT_HH
#define EBCP_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "ckpt/archiver.hh"
#include "util/status.hh"

namespace ebcp::ckpt
{

/** Bump whenever the serialized layout of any section changes; the
 * ckpt_lint CI stage enforces this. */
constexpr std::uint32_t kCkptFormatVersion = 3;

/** 8-byte file magic. */
constexpr char kCkptMagic[8] = {'E', 'B', 'C', 'P', 'C', 'K', 'P', 'T'};

/** What to do when a checkpoint fails validation during a sweep. */
enum class CkptPolicy
{
    Strict,  //!< propagate the coded error; the run fails
    Rebuild, //!< log a structured warning and fall back to a cold
             //!< warm-up; the sweep continues
};

/** Parse "strict" / "rebuild". */
StatusOr<CkptPolicy> ckptPolicyFromName(const std::string &name);

/** @return printable policy name. */
const char *ckptPolicyName(CkptPolicy policy);

/**
 * Assembles named sections and serializes them into the container
 * format. Sections are written in the order they are added; the order
 * is part of the format only in that readers look sections up by name.
 */
class CheckpointWriter
{
  public:
    explicit CheckpointWriter(std::uint64_t fingerprint)
        : fingerprint_(fingerprint)
    {}

    /**
     * Add a section: @p fill receives a save-mode Archiver bound to
     * the section payload. Returns the archiver's status (a failing
     * fill marks the whole writer failed).
     */
    Status section(const std::string &name,
                   const std::function<void(Archiver &)> &fill);

    /** Serialize every section into the container format. */
    StatusOr<std::string> serialize() const;

    /** Serialize and write to @p path atomically (temp file + fsync +
     * rename). */
    Status writeAtomic(const std::string &path) const;

  private:
    struct Section
    {
        std::string name;
        std::string payload;
    };

    std::uint64_t fingerprint_;
    std::deque<Section> sections_;
    Status status_;
};

/**
 * Parses and validates a serialized checkpoint, then hands out
 * load-mode Archivers per section. All header and payload CRCs are
 * verified up front by fromBuffer()/fromFile().
 */
class CheckpointReader
{
  public:
    /**
     * Parse @p buffer. @p expect_fingerprint must match the stored
     * fingerprint (InvalidArgument on mismatch -- the checkpoint was
     * taken under a different configuration).
     */
    static StatusOr<CheckpointReader>
    fromBuffer(const std::string &buffer, std::uint64_t expect_fingerprint);

    /** Read @p path fully and parse it. */
    static StatusOr<CheckpointReader>
    fromFile(const std::string &path, std::uint64_t expect_fingerprint);

    bool hasSection(const std::string &name) const;

    /**
     * Run @p load with a load-mode Archiver over section @p name.
     * Fails with Corruption when the section is missing, when @p load
     * latches an error, or when it leaves bytes unconsumed (a layout
     * skew the version check should have caught).
     */
    Status section(const std::string &name,
                   const std::function<void(Archiver &)> &load) const;

    std::uint64_t fingerprint() const { return fingerprint_; }

  private:
    struct Section
    {
        std::string name;
        std::string payload;
    };

    CheckpointReader() = default;

    std::uint64_t fingerprint_ = 0;
    std::deque<Section> sections_;
};

/** Write @p data to @p path via temp file + fsync + rename. */
Status atomicWriteFile(const std::string &path, const std::string &data);

/** Read a whole file into a string. */
StatusOr<std::string> readFile(const std::string &path);

} // namespace ebcp::ckpt

#endif // EBCP_CKPT_CHECKPOINT_HH
