/**
 * @file
 * Bidirectional binary archiver for simulator checkpoints.
 *
 * One ckpt(Archiver &) method per component serves both directions:
 * in save mode each primitive call appends the field to a byte buffer,
 * in load mode the same call reads it back. Field order is therefore
 * identical by construction, which removes the classic save/load
 * asymmetry bug where one side gains a field the other lacks.
 *
 * Encoding rules:
 *  - all integers little-endian, fixed width (u8/u32/u64/i64)
 *  - doubles are bit-cast to u64, so a save/restore cycle is
 *    bit-exact even for NaNs and signed zeros
 *  - vectors are a u64 count followed by the elements; on load the
 *    count is bounds-checked against the remaining payload before any
 *    allocation, so corrupt data cannot drive a huge resize
 *  - strings are a u32 length plus raw bytes, capped at 64 KiB
 *
 * Error handling is sticky: the first failure is latched and every
 * later call becomes a no-op, so component ckpt() methods can be
 * written straight-line and the caller checks ok() once at the end.
 */

#ifndef EBCP_CKPT_ARCHIVER_HH
#define EBCP_CKPT_ARCHIVER_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.hh"

namespace ebcp::ckpt
{

/** FNV-1a 64-bit over a byte buffer (config fingerprints). */
inline std::uint64_t
fnv1a64(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Bidirectional little-endian byte archiver. */
class Archiver
{
  public:
    /** An archiver that appends fields to @p out. */
    static Archiver
    saver(std::string &out)
    {
        Archiver ar;
        ar.out_ = &out;
        return ar;
    }

    /** An archiver that reads fields back from @p len bytes at
     * @p data (not owned; must outlive the archiver). */
    static Archiver
    loader(const void *data, std::size_t len)
    {
        Archiver ar;
        ar.in_ = static_cast<const unsigned char *>(data);
        ar.inLen_ = len;
        return ar;
    }

    bool saving() const { return out_ != nullptr; }
    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    /** Latch @p s as the archiver's failure (first failure wins). */
    void
    fail(Status s)
    {
        if (status_.ok() && !s.ok())
            status_ = std::move(s);
    }

    /** Bytes not yet consumed (load mode). */
    std::size_t
    remaining() const
    {
        return inLen_ - pos_;
    }

    void
    u8(std::uint8_t &v)
    {
        ioBytes(&v, 1);
    }

    void
    u32(std::uint32_t &v)
    {
        if (!ok())
            return;
        if (saving()) {
            unsigned char b[4];
            pack(b, v, 4);
            append(b, 4);
        } else {
            unsigned char b[4];
            if (!consume(b, 4))
                return;
            v = static_cast<std::uint32_t>(unpack(b, 4));
        }
    }

    void
    u64(std::uint64_t &v)
    {
        if (!ok())
            return;
        if (saving()) {
            unsigned char b[8];
            pack(b, v, 8);
            append(b, 8);
        } else {
            unsigned char b[8];
            if (!consume(b, 8))
                return;
            v = unpack(b, 8);
        }
    }

    void
    i64(std::int64_t &v)
    {
        std::uint64_t u = static_cast<std::uint64_t>(v);
        u64(u);
        v = static_cast<std::int64_t>(u);
    }

    /** Double, bit-cast through u64 for bit-exact round trips. */
    void
    f64(double &v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
        std::memcpy(&v, &bits, sizeof v);
    }

    void
    boolean(bool &v)
    {
        std::uint8_t b = v ? 1 : 0;
        u8(b);
        if (!saving() && ok() && b > 1) {
            fail(corruptionError("checkpoint bool field holds ",
                                 unsigned(b)));
            return;
        }
        v = b != 0;
    }

    /** `unsigned` fields travel as u32. */
    void
    uns(unsigned &v)
    {
        std::uint32_t u = v;
        u32(u);
        v = u;
    }

    /** size_t fields travel as u64. */
    void
    sz(std::size_t &v)
    {
        std::uint64_t u = v;
        u64(u);
        v = static_cast<std::size_t>(u);
    }

    /**
     * Ring/stack cursor: travels like sz()/uns(), but on load the
     * value must index into a structure of @p limit elements. Found
     * by the checkpoint fuzzers: a cursor is dereferenced on the very
     * next simulated instruction (`ring[idx]`), so a corrupt one that
     * survives the payload CRC -- which covers transport damage, not
     * a hostile or bit-rotted image -- was a wild read, not a coded
     * error.
     */
    void
    cursor(std::size_t &v, std::size_t limit, const char *what)
    {
        sz(v);
        checkCursor(v, limit, what);
    }

    void
    cursor(unsigned &v, std::size_t limit, const char *what)
    {
        uns(v);
        checkCursor(v, limit, what);
    }

    /** Enum with a fixed underlying encoding as u32. */
    template <typename E>
    void
    enum32(E &v)
    {
        static_assert(std::is_enum_v<E>);
        std::uint32_t u = static_cast<std::uint32_t>(v);
        u32(u);
        v = static_cast<E>(u);
    }

    /** Length-prefixed string, capped at 64 KiB. */
    void
    str(std::string &v)
    {
        if (!ok())
            return;
        std::uint32_t n = static_cast<std::uint32_t>(v.size());
        if (saving() && v.size() > MaxStr) {
            fail(invalidArgError("checkpoint string of ", v.size(),
                                 " bytes exceeds the ", MaxStr,
                                 "-byte cap"));
            return;
        }
        u32(n);
        if (!ok())
            return;
        if (saving()) {
            append(v.data(), v.size());
        } else {
            if (n > MaxStr || n > remaining()) {
                fail(corruptionError("checkpoint string length ", n,
                                     " exceeds ", remaining(),
                                     " remaining bytes"));
                return;
            }
            v.assign(reinterpret_cast<const char *>(in_ + pos_), n);
            pos_ += n;
        }
    }

    /**
     * Vector of elements serialized by @p fn(Archiver&, T&). The
     * element count travels as u64 and is bounds-checked against the
     * remaining payload on load *before any allocation*:
     * @p min_elem_bytes is the smallest number of payload bytes one
     * element can possibly occupy (1 by default; 8 for the u64
     * helpers below), so a corrupt count can never drive a resize
     * larger than the payload itself could justify. This matters
     * because resize() allocates n * sizeof(T) host bytes -- for
     * multi-word elements that is a large multiple of n -- and the
     * fuzzers exercise exactly this path.
     */
    template <typename T, typename Fn>
    void
    vec(std::vector<T> &v, Fn &&fn, std::size_t min_elem_bytes = 1)
    {
        if (!ok())
            return;
        std::uint64_t n = v.size();
        u64(n);
        if (!ok())
            return;
        if (!saving()) {
            if (min_elem_bytes == 0)
                min_elem_bytes = 1;
            if (n > remaining() / min_elem_bytes) {
                fail(corruptionError("checkpoint vector count ", n,
                                     " exceeds the ", remaining(),
                                     " remaining bytes (at ",
                                     min_elem_bytes,
                                     " bytes per element)"));
                return;
            }
            v.resize(static_cast<std::size_t>(n));
        }
        for (auto &e : v) {
            fn(*this, e);
            if (!ok())
                return;
        }
    }

    /**
     * Vector whose size is fixed by configuration: the stored count
     * must equal the live size on load, otherwise the checkpoint was
     * taken against a different configuration.
     */
    template <typename T, typename Fn>
    void
    fixedVec(std::vector<T> &v, Fn &&fn, const char *what)
    {
        if (!ok())
            return;
        std::uint64_t n = v.size();
        u64(n);
        if (!ok())
            return;
        if (!saving() && n != v.size()) {
            fail(invalidArgError("checkpoint ", what, " holds ", n,
                                 " elements but the configured size is ",
                                 v.size()));
            return;
        }
        for (auto &e : v) {
            fn(*this, e);
            if (!ok())
                return;
        }
    }

    /** Vector of u64-width integers (Tick/Addr/EpochId/u64). */
    template <typename T>
    void
    vecU64(std::vector<T> &v)
    {
        static_assert(sizeof(T) == 8 && std::is_integral_v<T>);
        vec(v, [](Archiver &ar, T &e) {
            std::uint64_t u = static_cast<std::uint64_t>(e);
            ar.u64(u);
            e = static_cast<T>(u);
        }, sizeof(std::uint64_t));
    }

    /** Fixed-size vector of u64-width integers. */
    template <typename T>
    void
    fixedVecU64(std::vector<T> &v, const char *what)
    {
        static_assert(sizeof(T) == 8 && std::is_integral_v<T>);
        fixedVec(v, [](Archiver &ar, T &e) {
            std::uint64_t u = static_cast<std::uint64_t>(e);
            ar.u64(u);
            e = static_cast<T>(u);
        }, what);
    }

    /** Vector of raw bytes (u8). */
    void
    vecU8(std::vector<std::uint8_t> &v)
    {
        vec(v, [](Archiver &ar, std::uint8_t &e) { ar.u8(e); });
    }

  private:
    static constexpr std::size_t MaxStr = 64 * 1024;

    Archiver() = default;

    void
    checkCursor(std::uint64_t v, std::size_t limit, const char *what)
    {
        if (!saving() && ok() && v >= limit)
            fail(corruptionError("checkpoint ", what, " cursor ", v,
                                 " is outside its ", limit,
                                 "-entry structure"));
    }

    static void
    pack(unsigned char *b, std::uint64_t v, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
    }

    static std::uint64_t
    unpack(const unsigned char *b, unsigned n)
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < n; ++i)
            v |= std::uint64_t{b[i]} << (8 * i);
        return v;
    }

    void
    append(const void *data, std::size_t len)
    {
        out_->append(static_cast<const char *>(data), len);
    }

    bool
    consume(void *dst, std::size_t len)
    {
        if (len > remaining()) {
            fail(corruptionError("checkpoint payload truncated: need ",
                                 len, " bytes, ", remaining(), " left"));
            return false;
        }
        std::memcpy(dst, in_ + pos_, len);
        pos_ += len;
        return true;
    }

    void
    ioBytes(void *data, std::size_t len)
    {
        if (!ok())
            return;
        if (saving())
            append(data, len);
        else
            consume(data, len);
    }

    std::string *out_ = nullptr;
    const unsigned char *in_ = nullptr;
    std::size_t inLen_ = 0;
    std::size_t pos_ = 0;
    Status status_;
};

} // namespace ebcp::ckpt

#endif // EBCP_CKPT_ARCHIVER_HH
