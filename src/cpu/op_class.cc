#include "cpu/op_class.hh"

namespace ebcp
{

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:    return "alu";
      case OpClass::FpAdd:     return "fadd";
      case OpClass::FpMul:     return "fmul";
      case OpClass::Load:      return "load";
      case OpClass::Store:     return "store";
      case OpClass::Branch:    return "branch";
      case OpClass::Call:      return "call";
      case OpClass::Return:    return "return";
      case OpClass::Serialize: return "serialize";
      case OpClass::Nop:       return "nop";
    }
    return "?";
}

} // namespace ebcp
